#include "faults/injection.h"

#include <memory>
#include <string>

#include "faults/fault.h"
#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/instruction.h"
#include "ir/module.h"
#include "ir/type.h"
#include "passes/pass.h"
#include "support/error.h"
#include "support/fuel.h"

namespace posetrl {

namespace {

class ThrowPass : public Pass {
 public:
  std::string_view name() const override { return "fault-throw"; }
  bool run(Module&) override {
    throw PassFaultError("injected fault: fault-throw always throws");
  }
};

class CheckFailPass : public Pass {
 public:
  std::string_view name() const override { return "fault-check"; }
  bool run(Module&) override {
    POSETRL_CHECK(false, "injected fault: fault-check trips an invariant");
    return false;
  }
};

/// Roughly 32x instruction growth per application: for every instruction
/// already in a block, append 31 redundant i64 adds before the terminator.
class BloatPass : public Pass {
 public:
  std::string_view name() const override { return "fault-bloat"; }
  bool run(Module& module) override {
    bool changed = false;
    for (const auto& f : module.functions()) {
      if (f->isDeclaration()) continue;
      for (const auto& bb : f->blocks()) {
        Instruction* term = bb->terminator();
        if (term == nullptr) continue;
        const std::size_t existing = bb->insts().size();
        for (std::size_t i = 0; i + 1 < existing * 32; ++i) {
          FuelScope::consume();
          bb->insertBefore(
              term, std::make_unique<BinaryInst>(
                        Opcode::Add, module.types().i64(),
                        module.i64Const(0), module.i64Const(1),
                        "bloat." + std::to_string(next_name_++)));
          changed = true;
        }
      }
    }
    return changed;
  }

 private:
  std::size_t next_name_ = 0;
};

class HangPass : public Pass {
 public:
  std::string_view name() const override { return "fault-hang"; }
  bool run(Module&) override {
    // Without an armed fuel budget this loop would genuinely never return;
    // refuse instead of wedging the caller.
    if (!FuelScope::active()) {
      throw PassFaultError(
          "fault-hang run without a fuel budget; it would spin forever");
    }
    for (;;) FuelScope::consume();
  }
};

/// Verifier-clean miscompile: rewrites the constant operand of the first
/// add it finds, changing observable behaviour without breaking the IR.
class MiscompilePass : public Pass {
 public:
  std::string_view name() const override { return "fault-miscompile"; }
  // Deliberately false: the pass rewrites a constant, so this claim lets
  // the contract checker attribute the miscompile statically — no
  // interpreter run needed.
  PreservedAnalyses preserved() const override {
    return PreservedAnalyses::all();
  }
  bool run(Module& module) override {
    for (const auto& f : module.functions()) {
      for (const auto& bb : f->blocks()) {
        for (const auto& inst : bb->insts()) {
          if (inst->opcode() != Opcode::Add) continue;
          const auto* c = dynCast<ConstantInt>(inst->operand(1));
          if (c == nullptr) continue;
          inst->setOperand(1, module.i64Const(c->value() + 41));
          return true;
        }
      }
    }
    return false;
  }
};

}  // namespace

const std::vector<const char*>& faultInjectionPassNames() {
  static const std::vector<const char*> names = {
      "fault-throw", "fault-check", "fault-bloat", "fault-hang",
      "fault-miscompile"};
  return names;
}

void registerFaultInjectionPasses() {
  registerPass("fault-throw", [] { return std::make_unique<ThrowPass>(); });
  registerPass("fault-check",
               [] { return std::make_unique<CheckFailPass>(); });
  registerPass("fault-bloat", [] { return std::make_unique<BloatPass>(); });
  registerPass("fault-hang", [] { return std::make_unique<HangPass>(); });
  registerPass("fault-miscompile",
               [] { return std::make_unique<MiscompilePass>(); });
}

}  // namespace posetrl
