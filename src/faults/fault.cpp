#include "faults/fault.h"

#include <sstream>

#include "lint/diagnostic.h"
#include "support/error.h"

namespace posetrl {

const char* faultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::None: return "none";
    case FaultKind::PassException: return "pass-exception";
    case FaultKind::CheckFailure: return "check-failure";
    case FaultKind::IrGrowth: return "ir-growth";
    case FaultKind::FuelExhausted: return "fuel-exhausted";
    case FaultKind::VerifyFailure: return "verify-failure";
    case FaultKind::OracleDivergence: return "oracle-divergence";
    case FaultKind::DeadlineExpired: return "deadline-expired";
    case FaultKind::ContractViolation: return "contract-violation";
  }
  POSETRL_UNREACHABLE("unknown FaultKind");
}

std::string FaultReport::str() const {
  std::ostringstream os;
  os << "fault [" << faultKindName(kind) << "] step " << pass_step << " -"
     << pass;
  if (action != kNoAction) os << " (action " << action << ")";
  // First line only; multi-line verifier output belongs in toJson().
  os << ": " << detail.substr(0, detail.find('\n'));
  return os.str();
}

std::string FaultReport::toJson() const {
  std::ostringstream os;
  os << "{\"kind\":\"" << faultKindName(kind) << "\"";
  if (action != kNoAction) os << ",\"action\":" << action;
  os << ",\"pass\":\"" << jsonEscape(pass) << "\",\"step\":" << pass_step
     << ",\"detail\":\"" << jsonEscape(detail)
     << "\",\"instructions_before\":" << instructions_before
     << ",\"instructions_after\":" << instructions_after
     << ",\"fuel_used\":" << fuel_used << ",\"fuel_budget\":" << fuel_budget
     << "}";
  return os.str();
}

}  // namespace posetrl
