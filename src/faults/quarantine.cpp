#include "faults/quarantine.h"

#include <istream>
#include <ostream>
#include <string>

#include "support/error.h"

namespace posetrl {

ActionQuarantine::ActionQuarantine(std::size_t num_actions,
                                   std::size_t threshold)
    : threshold_(threshold),
      counts_(num_actions, 0),
      mask_(num_actions, false),
      unmasked_(num_actions) {
  POSETRL_CHECK(num_actions > 0, "quarantine needs a non-empty action space");
}

void ActionQuarantine::recordFault(std::size_t action) {
  POSETRL_CHECK(action < counts_.size(), "action index out of range");
  ++counts_[action];
  if (threshold_ == 0 || mask_[action]) return;
  if (counts_[action] >= threshold_ && unmasked_ > 1) {
    mask_[action] = true;
    --unmasked_;
  }
}

std::size_t ActionQuarantine::totalFaults() const {
  std::size_t n = 0;
  for (std::size_t c : counts_) n += c;
  return n;
}

std::size_t ActionQuarantine::numQuarantined() const {
  return counts_.size() - unmasked_;
}

void ActionQuarantine::save(std::ostream& os) const {
  os << "quarantine " << counts_.size() << " " << threshold_;
  for (std::size_t c : counts_) os << " " << c;
  for (bool b : mask_) os << " " << (b ? 1 : 0);
  os << "\n";
}

void ActionQuarantine::load(std::istream& is) {
  std::string tag;
  std::size_t n = 0;
  is >> tag >> n >> threshold_;
  POSETRL_CHECK(tag == "quarantine", "bad quarantine header: ", tag);
  POSETRL_CHECK(n == counts_.size(),
                "quarantine action-count mismatch on load");
  unmasked_ = n;
  for (std::size_t& c : counts_) is >> c;
  for (std::size_t i = 0; i < n; ++i) {
    int b = 0;
    is >> b;
    mask_[i] = b != 0;
    if (mask_[i]) --unmasked_;
  }
  POSETRL_CHECK(static_cast<bool>(is), "truncated quarantine state");
  POSETRL_CHECK(unmasked_ > 0, "quarantine state blocks every action");
}

}  // namespace posetrl
