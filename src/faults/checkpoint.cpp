#include "faults/checkpoint.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/error.h"
#include "support/io.h"

namespace posetrl {

void writeFileAtomic(const std::string& path, const std::string& content) {
  // Delegates to the shimmed durable primitive: tmp write -> fdatasync ->
  // rename -> dir fsync, with the orphaned tmp unlinked on any failure.
  // Checkpoint and agent saves thereby survive machine crashes (not just
  // process crashes) and are fault-injectable in tests.
  io::writeFileAtomicDurable(path, content);
}

std::size_t gcCheckpointTmp(const std::string& path) {
  const std::string tmp = path + ".tmp";
  std::error_code ec;
  if (!std::filesystem::exists(tmp, ec)) return 0;
  return io::removeIfExists(tmp) ? 1 : 0;
}

std::string encodeCheckpoint(const TrainerCheckpoint& ckpt) {
  std::ostringstream os;
  os << "posetrl-train-ckpt v1\n";
  os << "steps " << ckpt.steps << " episodes " << ckpt.episodes << "\n";
  os.precision(17);
  os << "rewards " << ckpt.episode_rewards.size();
  for (double r : ckpt.episode_rewards) os << " " << r;
  os << "\n";
  ckpt.rng.save(os);
  os << "quarantines " << ckpt.quarantines.size() << "\n";
  for (const QuarantineSnapshot& q : ckpt.quarantines) {
    os << q.program_index << " " << q.blob;
    if (q.blob.empty() || q.blob.back() != '\n') os << "\n";
  }
  os << "agent " << ckpt.agent_blob.size() << "\n" << ckpt.agent_blob;
  os << "end\n";
  return os.str();
}

TrainerCheckpoint decodeCheckpoint(const std::string& content) {
  // Any malformed token leaves the stream failed; the checks below convert
  // that into a FatalError instead of returning garbage state.
  std::istringstream is(content);
  TrainerCheckpoint ckpt;
  std::string tag, version;
  is >> tag >> version;
  if (tag != "posetrl-train-ckpt" || version != "v1") {
    raiseError("not a posetrl checkpoint (bad header)");
  }
  std::string key;
  is >> key >> ckpt.steps;
  if (key != "steps") raiseError("corrupt checkpoint: expected steps");
  is >> key >> ckpt.episodes;
  if (key != "episodes") raiseError("corrupt checkpoint: expected episodes");
  std::size_t n = 0;
  is >> key >> n;
  if (key != "rewards" || !is) raiseError("corrupt checkpoint: rewards");
  ckpt.episode_rewards.resize(n);
  for (double& r : ckpt.episode_rewards) is >> r;
  {
    ScopedFaultTrap trap;  // Rng::load checks become FatalError.
    ckpt.rng.load(is);
  }
  is >> key >> n;
  if (key != "quarantines" || !is) {
    raiseError("corrupt checkpoint: quarantines");
  }
  is.ignore();  // consume the newline before getline
  ckpt.quarantines.resize(n);
  for (QuarantineSnapshot& q : ckpt.quarantines) {
    is >> q.program_index;
    std::getline(is, q.blob);
    q.blob += "\n";
  }
  std::size_t blob_size = 0;
  is >> key >> blob_size;
  if (key != "agent" || !is) raiseError("corrupt checkpoint: agent");
  is.ignore();  // newline after the size
  ckpt.agent_blob.resize(blob_size);
  is.read(ckpt.agent_blob.data(),
          static_cast<std::streamsize>(blob_size));
  if (is.gcount() != static_cast<std::streamsize>(blob_size)) {
    raiseError("corrupt checkpoint: short agent payload");
  }
  is >> key;
  if (key != "end") raiseError("corrupt checkpoint: missing end marker");
  return ckpt;
}

void saveCheckpointFile(const std::string& path,
                        const TrainerCheckpoint& ckpt) {
  writeFileAtomic(path, encodeCheckpoint(ckpt));
}

TrainerCheckpoint loadCheckpointFile(const std::string& path) {
  std::ifstream isf(path, std::ios::binary);
  if (!isf.good()) raiseError("cannot open checkpoint: " + path);
  std::stringstream ss;
  ss << isf.rdbuf();
  return decodeCheckpoint(ss.str());
}

}  // namespace posetrl
