#pragma once

/// \file quarantine.h
/// Per-program action quarantine. Each PhaseOrderEnv owns one instance:
/// after an action faults `threshold` times on that program, it is masked
/// out of the agent's action selection so episodes route around pathological
/// (program, sub-sequence) pairs instead of re-triggering the same rollback
/// forever. At least one action always stays available, and the full state
/// serializes into trainer checkpoints so resumed runs behave identically.

#include <cstddef>
#include <iosfwd>
#include <vector>

namespace posetrl {

class ActionQuarantine {
 public:
  /// \p threshold faults on the same action mask it (0 disables masking).
  explicit ActionQuarantine(std::size_t num_actions,
                            std::size_t threshold = 2);

  std::size_t numActions() const { return counts_.size(); }
  std::size_t threshold() const { return threshold_; }

  /// Records one fault of \p action; masks it once the threshold is reached,
  /// unless that would leave no action selectable.
  void recordFault(std::size_t action);

  bool quarantined(std::size_t action) const { return mask_[action]; }
  std::size_t faultCount(std::size_t action) const { return counts_[action]; }
  std::size_t totalFaults() const;
  std::size_t numQuarantined() const;

  /// blocked-mask view for DoubleDqn::act (true = do not select).
  const std::vector<bool>& mask() const { return mask_; }

  /// Checkpoint support: the exact counts and mask round-trip.
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  std::size_t threshold_;
  std::vector<std::size_t> counts_;
  std::vector<bool> mask_;
  std::size_t unmasked_;
};

}  // namespace posetrl
