#pragma once

/// \file checkpoint.h
/// Crash-safe trainer checkpoints. A TrainerCheckpoint captures everything
/// the training loop needs to continue bit-exactly after the process dies:
/// the corpus-sampling RNG, step/episode counters, per-episode rewards, the
/// per-program quarantine states, and the agent's full state (weights, Adam
/// moments, target net, replay buffer, exploration RNG) as an opaque blob
/// written by DoubleDqn::saveCheckpoint. Files are written atomically
/// (tmp + rename), so a crash mid-write leaves the previous checkpoint
/// intact; loads raise FatalError on short or corrupt files.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "support/rng.h"

namespace posetrl {

/// Per-program quarantine state, serialized via ActionQuarantine::save.
struct QuarantineSnapshot {
  std::size_t program_index = 0;
  std::string blob;  ///< One "quarantine ..." line.
};

struct TrainerCheckpoint {
  std::size_t steps = 0;
  std::size_t episodes = 0;
  std::vector<double> episode_rewards;
  Rng rng;                  ///< Trainer's corpus-sampling RNG.
  std::string agent_blob;   ///< DoubleDqn::saveCheckpoint payload.
  std::vector<QuarantineSnapshot> quarantines;
};

/// Writes \p content to \p path via "path.tmp" + fdatasync + atomic rename
/// + directory fsync (io::writeFileAtomicDurable); raises IoError on
/// failure, unlinking the orphaned tmp file first.
void writeFileAtomic(const std::string& path, const std::string& content);

/// Unlinks the orphaned "path.tmp" a crashed save may have left next to
/// checkpoint \p path. Returns the number of files removed (0 or 1). Called
/// at the start of every checkpointed training run.
std::size_t gcCheckpointTmp(const std::string& path);

/// Serializes / parses the checkpoint file format.
std::string encodeCheckpoint(const TrainerCheckpoint& ckpt);
TrainerCheckpoint decodeCheckpoint(const std::string& content);

/// File-level helpers. saveCheckpointFile is atomic; loadCheckpointFile
/// raises FatalError when the file is missing, short, or corrupt.
void saveCheckpointFile(const std::string& path,
                        const TrainerCheckpoint& ckpt);
TrainerCheckpoint loadCheckpointFile(const std::string& path);

}  // namespace posetrl
