#pragma once

/// \file sandbox.h
/// Sandboxed execution of one pass sub-sequence with snapshot/rollback.
/// The caller's module is encoded into a flat ModuleSnapshot before
/// anything runs (no clone, no second object graph); if any pass throws,
/// trips a POSETRL_CHECK, exceeds the IR-growth cap, exhausts its fuel
/// budget, breaks the structural verifier or diverges under the miscompile
/// oracle, the snapshot is restored *in place* — same Module object, same
/// interned constants and types, and (unless the action added/removed
/// symbols) the same Function/GlobalVariable objects — byte-for-byte
/// identical text, and a FaultReport describes what happened. On success
/// the module keeps the transformed state, exactly as an unsandboxed run
/// would leave it. Pass execution runs under the module's ArenaScope, so
/// instruction/block churn stays inside the module's bump arena.

#include <memory>
#include <string>
#include <vector>

#include "faults/fault.h"
#include "support/deadline.h"

namespace posetrl {

class FastVerifier;
class Module;
class ModuleSnapshot;

/// Budgets and checks for one sandboxed action.
struct SandboxConfig {
  /// Run the structural verifier after every pass; failures roll back with
  /// per-pass attribution instead of aborting. Default-on: the fast
  /// incremental verifier (analysis/fast_verifier.h) re-verifies only
  /// functions whose content hash changed, so this is cheap enough for
  /// every training step and every serving request.
  bool verify = true;
  /// Diff each pass's declared preserved analyses against the observed IR
  /// delta (the pass-contract checker); a broken promise rolls back with a
  /// FaultKind::ContractViolation attributed to the pass — statically, with
  /// no interpreter run.
  bool contracts = true;
  /// Run the differential miscompile oracle after every pass (expensive;
  /// interpreter executions per pass).
  bool oracle = false;
  /// Cap on the working module's instruction count after any single pass:
  /// pre-action count × this factor, plus a small absolute headroom so tiny
  /// modules are not over-constrained. <= 0 disables the cap.
  double max_ir_growth = 16.0;
  /// Absolute headroom added to the growth cap.
  std::size_t ir_growth_headroom = 64;
  /// Cooperative fuel units each pass may spend (see support/fuel.h);
  /// 0 disables the budget.
  std::uint64_t pass_fuel = 2'000'000;
  /// Interpreter fuel per oracle execution.
  std::uint64_t oracle_fuel = 200'000;
  /// Convert POSETRL_CHECK failures inside a pass into contained faults
  /// (ScopedFaultTrap) instead of aborting the process.
  bool trap_check_failures = true;
  /// Wall-clock deadline for the whole action. Checked at every pass
  /// boundary and (via the fuel hooks, see support/deadline.h) inside
  /// long-running passes; expiry rolls back to the snapshot with a
  /// FaultKind::DeadlineExpired report. Defaults to never.
  Deadline deadline;
  /// Externally owned fast verifier (see InstrumentOptions::
  /// shared_fast_verifier): keeps the clean-hash skip cache warm across
  /// actions instead of re-verifying the whole module on each action's
  /// first pass. The owner must clearCache() on every module replacement.
  FastVerifier* fast_verifier = nullptr;
  /// Keep the armed contract-boundary snapshot across actions (see
  /// InstrumentOptions::trust_armed_boundary). Only safe when the caller
  /// guarantees no mutation between sandboxed actions.
  bool trust_armed_boundary = false;
  /// Optional caller-owned snapshot buffer. The sandbox captures into it
  /// instead of a stack-local one, so a long-lived caller (the environment,
  /// one capture per step) reuses the flat buffers' capacity instead of
  /// re-allocating them every action.
  ModuleSnapshot* snapshot_scratch = nullptr;
};

/// Outcome of one sandboxed action.
struct SandboxOutcome {
  bool ok = true;        ///< False when a fault was contained.
  bool changed = false;  ///< Whether any pass changed the IR (when ok).
  /// Meaningful after a rollback (!ok): true when every module-level
  /// symbol object (Function/GlobalVariable) survived the in-place restore
  /// — pointer-keyed caches over those symbols (the fast verifier's
  /// clean-function cache) remain valid. When false the sandbox has
  /// already cleared config.fast_verifier's cache; callers holding other
  /// symbol-keyed state must clear theirs.
  bool symbols_preserved = true;
  FaultReport fault;     ///< Valid when !ok.
};

/// Runs \p pass_names over \p module under \p config. \p module must be
/// non-null; on fault it is restored in place to the pre-action snapshot
/// (the Module object itself is never replaced).
SandboxOutcome runActionSandboxed(std::unique_ptr<Module>& module,
                                  const std::vector<std::string>& pass_names,
                                  const SandboxConfig& config);

}  // namespace posetrl
