#include "faults/sandbox.h"

#include <cmath>
#include <exception>

#include "analysis/analysis_manager.h"
#include "analysis/fast_verifier.h"
#include "ir/module.h"
#include "ir/snapshot.h"
#include "lint/instrumentation.h"
#include "passes/pass.h"
#include "support/arena.h"
#include "support/error.h"
#include "support/fuel.h"

namespace posetrl {

SandboxOutcome runActionSandboxed(std::unique_ptr<Module>& module,
                                  const std::vector<std::string>& pass_names,
                                  const SandboxConfig& config) {
  POSETRL_CHECK(module != nullptr, "sandbox needs a module");
  // All instruction/block churn below draws from the module's bump arena.
  ArenaScope arena_scope(module->arena());
  ModuleSnapshot local_snapshot;
  ModuleSnapshot& snapshot = config.snapshot_scratch != nullptr
                                 ? *config.snapshot_scratch
                                 : local_snapshot;
  // A reused scratch snapshot whose capture-time content stamp still
  // matches already encodes the module's current bytes (the previous
  // action was a contract-verified no-op or a rollback) — skip the
  // O(instructions) re-encode.
  if (!snapshot.matches(*module)) snapshot.capture(*module);
  const std::size_t base_instrs = module->instructionCount();
  const std::size_t growth_cap =
      config.max_ir_growth > 0.0
          ? static_cast<std::size_t>(
                std::ceil(static_cast<double>(base_instrs) *
                          config.max_ir_growth)) +
                config.ir_growth_headroom
          : 0;

  // Verifier/oracle attribution reuses the lint instrumentation layer; the
  // sandbox never aborts, it rolls back.
  InstrumentOptions iopts;
  iopts.verify = config.verify;
  iopts.contracts = config.contracts;
  iopts.oracle = config.oracle;
  iopts.abort_on_failure = false;
  iopts.shared_fast_verifier = config.fast_verifier;
  iopts.trust_armed_boundary = config.trust_armed_boundary;
  iopts.oracle_options.max_steps = config.oracle_fuel;
  const bool instrumented =
      config.verify || config.oracle || config.contracts;
  PassInstrumentation instr(iopts);

  SandboxOutcome outcome;
  FaultReport& fault = outcome.fault;
  fault.instructions_before = base_instrs;
  fault.fuel_budget = config.pass_fuel;

  const auto failAt = [&](FaultKind kind, std::size_t step,
                          const std::string& pass, std::string detail,
                          std::uint64_t fuel_used) {
    fault.kind = kind;
    fault.pass_step = step;
    fault.pass = pass;
    fault.detail = std::move(detail);
    fault.instructions_after = module->instructionCount();
    fault.fuel_used = fuel_used;
    // Roll back in place: same Module object, same symbols whenever the
    // action left the symbol table alone. Blocks/instructions are
    // recreated, so restoreInto bumps the module's irGeneration — the
    // ambient manager's generation-stamped entries self-invalidate on
    // their next query instead of being dropped wholesale here.
    const ModuleSnapshot::RestoreResult restored =
        snapshot.restoreInto(*module);
    outcome.symbols_preserved = restored.symbols_preserved;
    if (AnalysisManager* am = AnalysisManager::current()) {
      // The armed boundary (if any) fingerprints post-pass content that no
      // longer exists; re-arm lazily at the next recordBoundary.
      am->disarmBoundary();
    }
    if (!restored.symbols_preserved && config.fast_verifier != nullptr) {
      // A function/global was created or erased between capture and
      // rollback: clean-cache keys may dangle or alias recycled addresses.
      config.fast_verifier->clearCache();
    }
    outcome.ok = false;
  };

  if (instrumented) instr.beginSequence(*module);

  for (std::size_t i = 0; i < pass_names.size(); ++i) {
    const std::string& name = pass_names[i];
    const std::size_t step = i + 1;
    // Pass-boundary deadline check: a request that ran out of time between
    // passes rolls back before the next pass starts, bounding response
    // latency to deadline + one pass of work.
    if (config.deadline.expired()) {
      failAt(FaultKind::DeadlineExpired, step, name,
             "deadline expired before pass", 0);
      return outcome;
    }
    std::unique_ptr<Pass> pass = createPass(name);
    if (pass == nullptr) {
      failAt(FaultKind::PassException, step, name, "unknown pass", 0);
      return outcome;
    }

    if (instrumented) instr.beforePass(*pass, *module);

    std::uint64_t fuel_used = 0;
    bool pass_changed = false;
    try {
      FuelScope fuel(config.pass_fuel);
      DeadlineScope deadline(config.deadline);
      std::unique_ptr<ScopedFaultTrap> trap;
      if (config.trap_check_failures) trap = std::make_unique<ScopedFaultTrap>();
      try {
        pass_changed = pass->run(*module);
        outcome.changed |= pass_changed;
      } catch (...) {
        fuel_used = fuel.consumed();
        throw;
      }
      fuel_used = fuel.consumed();
    } catch (const FuelExhaustedError& e) {
      failAt(FaultKind::FuelExhausted, step, name, e.what(), fuel_used);
      return outcome;
    } catch (const DeadlineExpiredError& e) {
      failAt(FaultKind::DeadlineExpired, step, name, e.what(), fuel_used);
      return outcome;
    } catch (const FatalError& e) {
      failAt(FaultKind::CheckFailure, step, name, e.what(), fuel_used);
      return outcome;
    } catch (const std::exception& e) {
      failAt(FaultKind::PassException, step, name, e.what(), fuel_used);
      return outcome;
    }

    if (growth_cap > 0 && module->instructionCount() > growth_cap) {
      failAt(FaultKind::IrGrowth, step, name,
             std::to_string(module->instructionCount()) +
                 " instructions exceed cap " + std::to_string(growth_cap) +
                 " (" + std::to_string(base_instrs) + " pre-action)",
             fuel_used);
      return outcome;
    }

    if (instrumented) {
      const std::size_t prior = instr.failures().size();
      try {
        ScopedFaultTrap trap;
        DeadlineScope deadline(config.deadline);
        DeadlineScope::poll();
        instr.afterPass(*pass, *module, pass_changed);
      } catch (const DeadlineExpiredError& e) {
        failAt(FaultKind::DeadlineExpired, step, name, e.what(), fuel_used);
        return outcome;
      } catch (const std::exception& e) {
        failAt(FaultKind::VerifyFailure, step, name,
               std::string("instrumentation failed: ") + e.what(), fuel_used);
        return outcome;
      }
      if (instr.failures().size() > prior) {
        const PassFailure& f = instr.failures().back();
        const FaultKind kind = f.stage == "oracle"
                                   ? FaultKind::OracleDivergence
                                   : f.stage == "contract"
                                         ? FaultKind::ContractViolation
                                         : FaultKind::VerifyFailure;
        failAt(kind, step, name, f.detail, fuel_used);
        return outcome;
      }
    }
  }
  // Content-stamp maintenance for O(1) embedding-cache keys: bump on any
  // action that (possibly) mutated the IR. With the contract checker on,
  // `changed` is trustworthy — a lying pass is caught and rolled back —
  // so honest no-op actions keep their stamp (and their cached hash).
  // Without contracts, bump unconditionally.
  if (outcome.changed || !config.contracts) module->bumpContentStamp();
  return outcome;
}

}  // namespace posetrl
