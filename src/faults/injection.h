#pragma once

/// \file injection.h
/// Deterministic fault-injection harness. Registers pathological passes via
/// the normal registerPass hook so every sandbox recovery path is
/// exercisable from tests, the trainer smoke gate (tools/check.sh) and the
/// opt_driver --inject-faults flag:
///
///   fault-throw       always throws PassFaultError
///   fault-check       trips a POSETRL_CHECK (contained by ScopedFaultTrap)
///   fault-bloat       multiplies the module's instruction count (~32x) to
///                     trip the IR-growth cap
///   fault-hang        spins forever, terminated only by the fuel budget
///   fault-miscompile  verifier-clean behaviour change (oracle fodder),
///                     reusing PR 1's injected-breaker technique

#include <vector>

namespace posetrl {

/// Registers all injection passes (idempotent). Returns their names.
const std::vector<const char*>& faultInjectionPassNames();
void registerFaultInjectionPasses();

}  // namespace posetrl
