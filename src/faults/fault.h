#pragma once

/// \file fault.h
/// Structured description of a contained pass failure. The sandbox
/// (faults/sandbox.h) converts throwing passes, invariant violations,
/// budget overruns and verifier/oracle findings into FaultReports instead of
/// crashing the training run; the environment threads the report into
/// StepResult and the trainer aggregates it into TrainStats.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace posetrl {

/// What kind of failure the sandbox contained.
enum class FaultKind {
  None,             ///< No fault (default-constructed report).
  PassException,    ///< The pass threw a C++ exception.
  CheckFailure,     ///< A POSETRL_CHECK fired inside the pass (trapped).
  IrGrowth,         ///< Working module exceeded the IR-growth cap.
  FuelExhausted,    ///< The per-action pass-step fuel budget ran out.
  VerifyFailure,    ///< Structural verifier failed after the pass.
  OracleDivergence, ///< Miscompile oracle observed a behaviour change.
  DeadlineExpired,  ///< The request's wall-clock deadline passed mid-action.
  ContractViolation,///< Pass broke its declared preserved-analyses contract.
};

const char* faultKindName(FaultKind kind);

/// One contained failure, attributed to the pass that caused it.
struct FaultReport {
  static constexpr std::size_t kNoAction = static_cast<std::size_t>(-1);

  FaultKind kind = FaultKind::None;
  std::size_t action = kNoAction;  ///< Action index (filled by the env).
  std::string pass;                ///< Offending pass name.
  std::size_t pass_step = 0;       ///< 1-based position in the sub-sequence.
  std::string detail;              ///< Human-readable cause.
  std::size_t instructions_before = 0;  ///< Module size entering the action.
  std::size_t instructions_after = 0;   ///< Size when the fault fired.
  std::uint64_t fuel_used = 0;     ///< Fuel consumed by the faulting pass.
  std::uint64_t fuel_budget = 0;   ///< Armed fuel budget (0 = unlimited).

  bool faulted() const { return kind != FaultKind::None; }

  /// One-line rendering, e.g.
  /// "fault [ir-growth] step 2 -fault-bloat: 812 instrs (cap 224)".
  std::string str() const;
  /// JSON object (same shape the opt_driver --json diagnostics use).
  std::string toJson() const;
};

/// Exception type for passes that deliberately fail (fault injection) and
/// for budget violations raised inside the sandbox.
class PassFaultError : public std::runtime_error {
 public:
  explicit PassFaultError(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace posetrl
