#pragma once

/// \file service.h
/// Deadline-aware compile service: concurrent phase-ordering policy serving
/// with graceful degradation (see DESIGN.md "Serving and graceful
/// degradation").
///
/// A CompileService owns a pool of worker threads over a bounded request
/// queue. Each request carries a monotonic Deadline; workers roll out the
/// shared trained agent greedily on the request's module, with every action
/// executed inside PR 2's fault sandbox and the deadline propagated into
/// SandboxConfig so wall-clock expiry is contained exactly like a fault.
///
/// Robustness machinery per request:
///  - admission control: a full queue load-sheds immediately (structured
///    ServeStatus::Rejected) instead of blocking the caller;
///  - transient contained faults are retried with exponential backoff +
///    jitter (per-worker RNG, no shared stream);
///  - repeat offenders trip a per-action circuit breaker shared across all
///    requests (closed → open → half-open, serve/circuit_breaker.h), layered
///    on top of the environment's per-program quarantine;
///  - every response lands on an explicit degradation ladder:
///      FullRollout  — the greedy rollout ran all episode steps;
///      BestPrefix   — the rollout was cut short (deadline, exhausted
///                     actions); the best-so-far prefix output is returned;
///      OzPipeline   — the stock -Oz pipeline beat (or replaced) the rollout;
///      Identity     — nothing could be done in time; input returned as-is.
///    Whenever the -Oz rung completes (`oz_verified`), the response is
///    guaranteed no worse than stock -Oz by modeled size.
///
/// With an OnlineLearner attached (ServeConfig::online), the service also
/// closes the serve -> train loop: each request pins the current policy
/// snapshot for its whole lifetime (hot-swaps never affect in-flight work),
/// each served episode is appended to a write-ahead log and fed to the
/// background learner, and each response is reported to the promotion
/// watchdog that can roll a bad policy back. Inference is micro-batched
/// across workers (ServeConfig::batch_inference) either way.
///
/// Thread-safety contract: the agent is shared by const reference and only
/// its pure-const inference surface is used (see rl/dqn.h); all registered
/// passes must be registered before start() (the pass registry is read-only
/// while serving); request modules must stay alive until their future
/// resolves.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/environment.h"
#include "core/oz_sequence.h"
#include "online/batcher.h"
#include "online/online_learner.h"
#include "rl/dqn.h"
#include "serve/circuit_breaker.h"
#include "support/deadline.h"
#include "support/rng.h"

namespace posetrl {

class Module;

/// Where on the degradation ladder a response landed (best to worst).
enum class ServiceLevel { FullRollout, BestPrefix, OzPipeline, Identity };
const char* serviceLevelName(ServiceLevel level);

/// Request disposition.
enum class ServeStatus {
  Ok,        ///< Processed; `level` says how well.
  Rejected,  ///< Load-shed at admission (queue full); no work done.
  ShutDown,  ///< Service shut down before the request was processed.
};
const char* serveStatusName(ServeStatus status);

struct ServeConfig {
  std::size_t workers = 4;
  /// Bounded queue: submissions beyond this are rejected immediately.
  std::size_t queue_capacity = 64;
  /// Retries per faulting action within one request (beyond the first try).
  std::size_t max_retries = 2;
  /// Backoff before retry k is `backoff_base * 2^k`, jittered by
  /// ±backoff_jitter (fraction), capped by the request deadline.
  std::chrono::milliseconds backoff_base{1};
  double backoff_jitter = 0.5;
  /// Fraction of the request's remaining deadline reserved for the -Oz
  /// fallback rung; the rollout gets the rest.
  double oz_reserve = 0.35;
  /// Compare every rollout output against stock -Oz (modeled size) and
  /// degrade to the -Oz result when it wins. Costs one -Oz pipeline per
  /// request; buys the "never worse than -Oz" guarantee.
  bool verify_against_oz = true;
  CircuitBreakerConfig breaker;
  /// Environment settings for rollouts (sandboxing is forced on; the
  /// per-request deadline overwrites env.sandbox.deadline).
  EnvConfig env;
  /// The reaper thread sweeps the queue at this interval, resolving
  /// requests whose deadline expired while still queued (Identity rung)
  /// instead of letting them wait for a busy worker — this is what bounds
  /// an expired request's response time under full load. Zero disables.
  std::chrono::milliseconds reap_interval{5};
  /// Seed for the per-worker RNG streams (backoff jitter).
  std::uint64_t seed = 0x5e27e;
  /// Spawn workers in the constructor. With false, call start() explicitly
  /// (lets tests fill the queue deterministically first).
  bool start_workers = true;
  /// Online learning loop (wal.h / online_learner.h). Null serves the fixed
  /// constructor agent. Non-null changes three things: requests pin the
  /// learner's current policy snapshot at admission (and finish on it across
  /// hot-swaps), every served episode is durably ingested for training, and
  /// every response feeds the promotion watchdog. Must outlive the service.
  OnlineLearner* online = nullptr;
  /// Micro-batch greedy inference across concurrent workers: one
  /// Mlp::forwardBatch GEMM per gathered batch instead of N matVec chains.
  /// Bit-identical action selection either way (see online/batcher.h); only
  /// the started worker pool batches — compile() on a stopped service falls
  /// back to unbatched inference.
  bool batch_inference = true;
  BatcherConfig batcher;
};

/// Outcome of one request.
struct ServeResult {
  ServeStatus status = ServeStatus::Ok;
  ServiceLevel level = ServiceLevel::Identity;
  std::unique_ptr<Module> optimized;  ///< Null unless status == Ok.
  double size_bytes = 0.0;            ///< Modeled size of `optimized`.
  double base_size_bytes = 0.0;       ///< Modeled size of the input.
  double oz_size_bytes = 0.0;         ///< Valid when `oz_verified`.
  /// The -Oz rung ran to completion and the response was verified no worse
  /// than it (by modeled size).
  bool oz_verified = false;
  /// Actions whose output is being returned (empty for Oz/Identity).
  std::vector<std::size_t> action_sequence;
  std::size_t steps_attempted = 0;  ///< Env steps consumed (incl. retries).
  std::size_t retries = 0;
  std::size_t faults = 0;  ///< Contained faults, including deadline expiry.
  std::map<std::string, std::size_t> faults_by_kind;
  bool deadline_expired = false;
  double queue_ms = 0.0;    ///< Time spent waiting for a worker.
  double latency_ms = 0.0;  ///< Submit-to-response wall time.
  std::uint64_t request_id = 0;
  /// Policy snapshot version the request was served on (0 = the fixed
  /// constructor agent, i.e. no online learner configured or no pin taken).
  std::uint64_t policy_version = 0;
  /// Why the response is not FullRollout (empty when it is).
  std::string degraded_reason;
};

/// Monotonic service-wide counters (snapshot via CompileService::stats()).
struct ServiceStats {
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;
  std::size_t shut_down = 0;
  std::size_t level_full = 0;
  std::size_t level_prefix = 0;
  std::size_t level_oz = 0;
  std::size_t level_identity = 0;
  std::size_t retries = 0;
  std::size_t faults = 0;
  std::size_t deadline_expired = 0;
  double total_latency_ms = 0.0;
  double max_latency_ms = 0.0;
};

/// Thread-pool policy server over one shared trained agent.
class CompileService {
 public:
  /// \p agent must outlive the service; only const inference is used.
  /// \p actions is the action space the agent was trained over.
  CompileService(const DoubleDqn& agent, std::vector<SubSequence> actions,
                 ServeConfig config = {});
  ~CompileService();
  CompileService(const CompileService&) = delete;
  CompileService& operator=(const CompileService&) = delete;

  /// Enqueues \p program (must stay alive until the future resolves). A
  /// full queue or a shut-down service resolves the future immediately with
  /// Rejected / ShutDown — submit never blocks on service capacity.
  std::future<ServeResult> submit(const Module& program, Deadline deadline);

  /// Synchronous single request on the caller's thread (no queue, no
  /// admission control) — same ladder, same breakers.
  ServeResult compile(const Module& program, Deadline deadline);

  /// Spawns the worker pool (no-op when already started).
  void start();
  /// Stops workers; queued-but-unprocessed requests resolve with ShutDown.
  /// Idempotent; also run by the destructor.
  void shutdown();

  std::size_t queueDepth() const;
  ServiceStats stats() const;
  BreakerBank& breakers() { return breakers_; }
  const std::vector<SubSequence>& actions() const { return actions_; }
  InferenceBatcher::Stats batcherStats() const { return batcher_.stats(); }

 private:
  struct Request {
    const Module* program = nullptr;
    Deadline deadline;
    std::promise<ServeResult> promise;
    std::uint64_t id = 0;
    Deadline::TimePoint submitted_at;
  };

  void workerLoop(std::size_t worker_index);
  void reaperLoop();
  ServeResult process(const Module& program, Deadline deadline,
                      std::uint64_t id, Rng& rng);
  /// Cheap Identity response for a request whose deadline expired before
  /// any optimization work started.
  ServeResult expireRequest(const Module& program, std::uint64_t id,
                            const char* where);
  void recordResult(const ServeResult& r);
  /// Greedy action under \p net (the pinned snapshot's network, or the
  /// fixed agent's online net) — micro-batched when the batcher runs.
  std::size_t selectAction(const Mlp& net, std::uint64_t net_key,
                           const Embedding& state,
                           const std::vector<bool>& mask);
  /// Feeds the online learner after a response: durable episode ingest plus
  /// one watchdog observation. No-op without an online learner.
  void notifyOnline(const ServeResult& r, const Module& program,
                    std::vector<Transition> episode);

  const DoubleDqn* agent_;
  std::vector<SubSequence> actions_;
  ServeConfig config_;
  BreakerBank breakers_;
  InferenceBatcher batcher_;
  std::atomic<bool> batching_{false};

  mutable std::mutex mu_;
  std::condition_variable cv_;       ///< Wakes workers (new request/shutdown).
  std::condition_variable reap_cv_;  ///< Wakes the reaper; never shared with
                                     ///< workers, so submit()'s notify_one()
                                     ///< cannot be swallowed by the reaper.
  std::deque<Request> queue_;
  bool accepting_ = true;
  bool started_ = false;
  std::vector<std::thread> workers_;
  std::thread reaper_;
  std::uint64_t next_id_ = 1;
  std::uint64_t sync_streams_ = 0;  ///< RNG streams handed to compile().

  mutable std::mutex stats_mu_;
  ServiceStats stats_;
};

}  // namespace posetrl
