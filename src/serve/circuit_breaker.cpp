#include "serve/circuit_breaker.h"

#include "support/error.h"

namespace posetrl {

const char* breakerStateName(BreakerState s) {
  switch (s) {
    case BreakerState::Closed: return "closed";
    case BreakerState::Open: return "open";
    case BreakerState::HalfOpen: return "half-open";
  }
  POSETRL_UNREACHABLE("unknown BreakerState");
}

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config)
    : config_(config) {}

BreakerState CircuitBreaker::state(TimePoint now) {
  if (state_ == BreakerState::Open && now - opened_at_ >= config_.open_cooldown) {
    state_ = BreakerState::HalfOpen;
    probe_successes_ = 0;
    probe_in_flight_ = false;
  }
  return state_;
}

void CircuitBreaker::trip(TimePoint now) {
  state_ = BreakerState::Open;
  opened_at_ = now;
  probe_in_flight_ = false;
  probe_successes_ = 0;
  ++trips_;
}

bool CircuitBreaker::tryAcquire(TimePoint now) {
  switch (state(now)) {
    case BreakerState::Closed:
      return true;
    case BreakerState::Open:
      return false;
    case BreakerState::HalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  POSETRL_UNREACHABLE("unknown BreakerState");
}

void CircuitBreaker::recordSuccess(TimePoint now) {
  switch (state(now)) {
    case BreakerState::Closed:
      consecutive_failures_ = 0;
      return;
    case BreakerState::HalfOpen:
      probe_in_flight_ = false;
      if (++probe_successes_ >= config_.close_after_successes) {
        state_ = BreakerState::Closed;
        consecutive_failures_ = 0;
      }
      return;
    case BreakerState::Open:
      // A success from an attempt granted before the breaker re-opened;
      // ignore — the open cooldown governs recovery.
      return;
  }
}

void CircuitBreaker::recordFailure(TimePoint now) {
  switch (state(now)) {
    case BreakerState::Closed:
      if (++consecutive_failures_ >= config_.failure_threshold &&
          config_.failure_threshold > 0) {
        trip(now);
      }
      return;
    case BreakerState::HalfOpen:
      // The probe failed: straight back to open, restarting the cooldown.
      trip(now);
      return;
    case BreakerState::Open:
      return;
  }
}

void CircuitBreaker::release(TimePoint now) {
  if (state(now) == BreakerState::HalfOpen) probe_in_flight_ = false;
}

bool CircuitBreaker::blocked(TimePoint now) {
  switch (state(now)) {
    case BreakerState::Closed:
      return false;
    case BreakerState::Open:
      return true;
    case BreakerState::HalfOpen:
      return probe_in_flight_;
  }
  POSETRL_UNREACHABLE("unknown BreakerState");
}

BreakerBank::BreakerBank(std::size_t num_actions, CircuitBreakerConfig config)
    : breakers_(num_actions, CircuitBreaker(config)) {}

std::vector<bool> BreakerBank::blockedMask(TimePoint now) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<bool> mask(breakers_.size(), false);
  for (std::size_t i = 0; i < breakers_.size(); ++i) {
    mask[i] = breakers_[i].blocked(now);
  }
  return mask;
}

bool BreakerBank::tryAcquire(std::size_t action, TimePoint now) {
  std::lock_guard<std::mutex> lock(mu_);
  POSETRL_CHECK(action < breakers_.size(), "breaker action out of range");
  return breakers_[action].tryAcquire(now);
}

void BreakerBank::recordSuccess(std::size_t action, TimePoint now) {
  std::lock_guard<std::mutex> lock(mu_);
  POSETRL_CHECK(action < breakers_.size(), "breaker action out of range");
  breakers_[action].recordSuccess(now);
}

void BreakerBank::recordFailure(std::size_t action, TimePoint now) {
  std::lock_guard<std::mutex> lock(mu_);
  POSETRL_CHECK(action < breakers_.size(), "breaker action out of range");
  breakers_[action].recordFailure(now);
}

void BreakerBank::release(std::size_t action, TimePoint now) {
  std::lock_guard<std::mutex> lock(mu_);
  POSETRL_CHECK(action < breakers_.size(), "breaker action out of range");
  breakers_[action].release(now);
}

BreakerState BreakerBank::state(std::size_t action, TimePoint now) {
  std::lock_guard<std::mutex> lock(mu_);
  POSETRL_CHECK(action < breakers_.size(), "breaker action out of range");
  return breakers_[action].state(now);
}

std::size_t BreakerBank::totalTrips() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const CircuitBreaker& b : breakers_) total += b.trips();
  return total;
}

}  // namespace posetrl
