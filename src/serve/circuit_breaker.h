#pragma once

/// \file circuit_breaker.h
/// Per-action circuit breakers for the compile service. The quarantine of
/// faults/quarantine.h is per-program and permanent; breakers are the
/// cross-request complement: an action that keeps faulting *across*
/// requests (any program) trips open and is masked out of policy selection
/// service-wide, then heals through a half-open probe once a cooldown
/// elapses — the classic closed → open → half-open state machine.
///
/// The state machine itself (CircuitBreaker) is single-threaded and takes
/// explicit time points, so tests drive it deterministically without
/// sleeping; BreakerBank wraps one breaker per action behind a mutex for
/// concurrent workers.

#include <chrono>
#include <cstddef>
#include <mutex>
#include <vector>

namespace posetrl {

struct CircuitBreakerConfig {
  /// Consecutive failures that trip a closed breaker open.
  std::size_t failure_threshold = 3;
  /// Time an open breaker waits before allowing a half-open probe.
  std::chrono::milliseconds open_cooldown{250};
  /// Consecutive probe successes that close a half-open breaker.
  std::size_t close_after_successes = 1;
};

enum class BreakerState { Closed, Open, HalfOpen };

const char* breakerStateName(BreakerState s);

/// Breaker for one action. Not thread-safe; see BreakerBank.
class CircuitBreaker {
 public:
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;

  explicit CircuitBreaker(CircuitBreakerConfig config = {});

  /// Current state; an open breaker whose cooldown has elapsed reports (and
  /// becomes) HalfOpen.
  BreakerState state(TimePoint now);

  /// Whether a caller may attempt this action now. Closed: always. Open:
  /// only once the cooldown elapses, which transitions to HalfOpen and
  /// claims the single probe slot. HalfOpen: only when no probe is already
  /// in flight. Claims the probe slot when it grants a half-open attempt.
  bool tryAcquire(TimePoint now);

  /// Outcome of an attempt granted by tryAcquire (or of a closed-state
  /// attempt that never needed a grant).
  void recordSuccess(TimePoint now);
  void recordFailure(TimePoint now);

  /// Relinquish a tryAcquire grant whose attempt produced no verdict on the
  /// action itself (e.g. the request's deadline expired mid-step). Frees the
  /// half-open probe slot without counting a success or failure, so the next
  /// caller can probe; no-op outside HalfOpen.
  void release(TimePoint now);

  /// Whether selection should mask this action out right now (open with
  /// cooldown pending, or half-open with the probe slot taken).
  bool blocked(TimePoint now);

  std::size_t consecutiveFailures() const { return consecutive_failures_; }
  std::size_t trips() const { return trips_; }

 private:
  void trip(TimePoint now);

  CircuitBreakerConfig config_;
  BreakerState state_ = BreakerState::Closed;
  std::size_t consecutive_failures_ = 0;
  std::size_t probe_successes_ = 0;
  bool probe_in_flight_ = false;
  std::size_t trips_ = 0;  ///< Times the breaker went Closed/HalfOpen→Open.
  TimePoint opened_at_{};
};

/// One breaker per action, shared across all requests and worker threads.
class BreakerBank {
 public:
  using Clock = CircuitBreaker::Clock;
  using TimePoint = CircuitBreaker::TimePoint;

  BreakerBank(std::size_t num_actions, CircuitBreakerConfig config = {});

  std::size_t numActions() const { return breakers_.size(); }

  /// Blocked-mask snapshot for DoubleDqn::actGreedy (true = masked). The
  /// mask can go stale the moment the lock drops — selection must still
  /// tryAcquire() the chosen action and re-pick on refusal.
  std::vector<bool> blockedMask(TimePoint now = Clock::now());

  bool tryAcquire(std::size_t action, TimePoint now = Clock::now());
  void recordSuccess(std::size_t action, TimePoint now = Clock::now());
  void recordFailure(std::size_t action, TimePoint now = Clock::now());
  void release(std::size_t action, TimePoint now = Clock::now());

  BreakerState state(std::size_t action, TimePoint now = Clock::now());
  /// Total Closed/HalfOpen→Open transitions across all actions.
  std::size_t totalTrips() const;

 private:
  mutable std::mutex mu_;
  std::vector<CircuitBreaker> breakers_;
};

}  // namespace posetrl
