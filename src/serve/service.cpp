#include "serve/service.h"

#include <algorithm>
#include <utility>

#include "faults/sandbox.h"
#include "ir/clone.h"
#include "ir/module.h"
#include "support/error.h"
#include "target/size_model.h"

namespace posetrl {

const char* serviceLevelName(ServiceLevel level) {
  switch (level) {
    case ServiceLevel::FullRollout: return "full-rollout";
    case ServiceLevel::BestPrefix: return "best-prefix";
    case ServiceLevel::OzPipeline: return "oz-pipeline";
    case ServiceLevel::Identity: return "identity";
  }
  POSETRL_UNREACHABLE("unknown ServiceLevel");
}

const char* serveStatusName(ServeStatus status) {
  switch (status) {
    case ServeStatus::Ok: return "ok";
    case ServeStatus::Rejected: return "rejected";
    case ServeStatus::ShutDown: return "shut-down";
  }
  POSETRL_UNREACHABLE("unknown ServeStatus");
}

namespace {

double millisSince(Deadline::TimePoint t0) {
  return std::chrono::duration<double, std::milli>(Deadline::Clock::now() - t0)
      .count();
}

}  // namespace

CompileService::CompileService(const DoubleDqn& agent,
                               std::vector<SubSequence> actions,
                               ServeConfig config)
    : agent_(&agent),
      actions_(std::move(actions)),
      config_(config),
      breakers_(actions_.size(), config.breaker),
      batcher_(config.batcher) {
  POSETRL_CHECK(!actions_.empty(), "service needs a non-empty action space");
  POSETRL_CHECK(config_.workers > 0, "service needs at least one worker");
  // Serving depends on containment: an uncontained pass fault must never
  // take down the process, so the sandbox is not optional here.
  config_.env.sandbox_actions = true;
  if (config_.start_workers) start();
}

CompileService::~CompileService() { shutdown(); }

void CompileService::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_ || !accepting_) return;
  started_ = true;
  if (config_.batch_inference) {
    batcher_.start();
    batching_.store(true, std::memory_order_release);
  }
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this, i] { workerLoop(i); });
  }
  if (config_.reap_interval.count() > 0) {
    reaper_ = std::thread([this] { reaperLoop(); });
  }
}

void CompileService::shutdown() {
  std::vector<std::thread> workers;
  std::thread reaper;
  {
    std::lock_guard<std::mutex> lock(mu_);
    accepting_ = false;
    workers.swap(workers_);
    reaper.swap(reaper_);
  }
  cv_.notify_all();
  reap_cv_.notify_all();
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
  if (reaper.joinable()) reaper.join();
  // Workers are gone; the batcher can stop (it drains before joining, so
  // nothing a worker queued is dropped). Synchronous compile() callers fall
  // back to unbatched inference from here on.
  batching_.store(false, std::memory_order_release);
  batcher_.stop();
  std::deque<Request> leftover;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftover.swap(queue_);
  }
  for (Request& req : leftover) {
    ServeResult r;
    r.status = ServeStatus::ShutDown;
    r.request_id = req.id;
    r.latency_ms = millisSince(req.submitted_at);
    recordResult(r);
    req.promise.set_value(std::move(r));
  }
}

std::future<ServeResult> CompileService::submit(const Module& program,
                                                Deadline deadline) {
  std::promise<ServeResult> promise;
  std::future<ServeResult> future = promise.get_future();
  const auto now = Deadline::Clock::now();

  std::unique_lock<std::mutex> lock(mu_);
  const std::uint64_t id = next_id_++;
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.submitted;
  }
  if (!accepting_) {
    lock.unlock();
    ServeResult r;
    r.status = ServeStatus::ShutDown;
    r.request_id = id;
    recordResult(r);
    promise.set_value(std::move(r));
    return future;
  }
  if (queue_.size() >= config_.queue_capacity) {
    // Load shedding: reject immediately rather than blocking the caller or
    // growing the queue without bound.
    lock.unlock();
    ServeResult r;
    r.status = ServeStatus::Rejected;
    r.request_id = id;
    r.degraded_reason = "queue full (capacity " +
                        std::to_string(config_.queue_capacity) + ")";
    recordResult(r);
    promise.set_value(std::move(r));
    return future;
  }
  Request req;
  req.program = &program;
  req.deadline = deadline;
  req.promise = std::move(promise);
  req.id = id;
  req.submitted_at = now;
  queue_.push_back(std::move(req));
  lock.unlock();
  cv_.notify_one();
  return future;
}

ServeResult CompileService::compile(const Module& program, Deadline deadline) {
  std::uint64_t id, stream;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    stream = config_.workers + sync_streams_++;
  }
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.submitted;
  }
  Rng rng = Rng::forStream(config_.seed, stream);
  ServeResult r = process(program, deadline, id, rng);
  recordResult(r);
  return r;
}

void CompileService::workerLoop(std::size_t worker_index) {
  // Private jitter stream per worker: deterministic, no sharing, no locks.
  Rng rng = Rng::forStream(config_.seed, worker_index);
  for (;;) {
    Request req;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return !queue_.empty() || !accepting_; });
      if (queue_.empty()) return;  // shutting down, queue drained by owner
      if (!accepting_) return;     // shutdown: leftover queue gets ShutDown
      req = std::move(queue_.front());
      queue_.pop_front();
    }
    ServeResult r = process(*req.program, req.deadline, req.id, rng);
    const double processing_ms = r.latency_ms;
    r.latency_ms = millisSince(req.submitted_at);
    r.queue_ms = std::max(0.0, r.latency_ms - processing_ms);
    recordResult(r);
    req.promise.set_value(std::move(r));
  }
}

void CompileService::reaperLoop() {
  // Under full load a queued request can outlive its deadline long before a
  // worker frees up; sweeping expired requests out of the queue here is what
  // keeps the "expired requests return promptly" bound independent of how
  // busy the workers are.
  std::unique_lock<std::mutex> lock(mu_);
  while (accepting_) {
    reap_cv_.wait_for(lock, config_.reap_interval);
    const auto now = Deadline::Clock::now();
    std::vector<Request> expired;
    for (auto it = queue_.begin(); it != queue_.end();) {
      if (it->deadline.expired(now)) {
        expired.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    if (expired.empty()) continue;
    lock.unlock();
    for (Request& req : expired) {
      ServeResult r = expireRequest(*req.program, req.id, "while queued");
      r.latency_ms = millisSince(req.submitted_at);
      r.queue_ms = r.latency_ms;
      recordResult(r);
      req.promise.set_value(std::move(r));
    }
    lock.lock();
  }
}

ServeResult CompileService::expireRequest(const Module& program,
                                          std::uint64_t id,
                                          const char* where) {
  ServeResult r;
  r.request_id = id;
  r.level = ServiceLevel::Identity;
  r.deadline_expired = true;
  r.degraded_reason = std::string("deadline expired ") + where;
  r.optimized = cloneModule(program);
  SizeModel size_model(TargetInfo::forArch(config_.env.arch));
  r.base_size_bytes = size_model.objectBytes(*r.optimized);
  r.size_bytes = r.base_size_bytes;
  return r;
}

ServeResult CompileService::process(const Module& program, Deadline deadline,
                                    std::uint64_t id, Rng& rng) {
  const auto t0 = Deadline::Clock::now();
  if (deadline.expired(t0)) {
    // Too late for any rung: skip even environment construction.
    ServeResult r = expireRequest(program, id, "before processing");
    r.latency_ms = millisSince(t0);
    return r;
  }
  ServeResult r;
  r.request_id = id;

  // Pin the policy for the whole request: with an online learner the
  // request is served on the snapshot current at admission and keeps using
  // it across any number of hot-swaps (the pin blocks its reclamation);
  // without one, the fixed constructor agent serves with key 0.
  SnapshotRegistry::Pin pin;
  const Mlp* policy = &agent_->onlineNet();
  std::uint64_t policy_key = 0;
  if (config_.online != nullptr) {
    pin = config_.online->registry().pin();
    if (pin) {
      policy = &pin->net;
      policy_key = pin->version;
      r.policy_version = pin->version;
    }
  }
  std::vector<Transition> episode;

  // The rollout gets the head of the deadline; the tail is reserved for the
  // -Oz fallback rung so a slow rollout cannot starve the safety net.
  const Deadline rollout_deadline =
      deadline.fractionFromNow(1.0 - config_.oz_reserve, t0);

  EnvConfig env_cfg = config_.env;
  env_cfg.sandbox_actions = true;
  env_cfg.sandbox.deadline = rollout_deadline;

  SizeModel size_model(TargetInfo::forArch(env_cfg.arch));

  PhaseOrderEnv env(program, actions_, env_cfg);
  Embedding state = env.reset();
  r.base_size_bytes = env.baseSize();

  // Best-prefix-so-far tracking; the empty prefix (input as-is) is the
  // starting point, so a rollout that never improves degrades cleanly.
  double best_size = env.currentSize();
  std::unique_ptr<Module> best_module;
  std::vector<std::size_t> best_actions;
  std::vector<std::size_t> taken;

  std::vector<bool> exhausted(actions_.size(), false);  // retries spent
  bool done = false;
  bool rollout_cut = false;  // stopped before the episode finished
  std::size_t acquire_races = 0;

  const auto onFault = [&](const FaultReport& fault) {
    ++r.faults;
    ++r.faults_by_kind[faultKindName(fault.kind)];
    if (fault.kind == FaultKind::DeadlineExpired) r.deadline_expired = true;
  };

  while (!done) {
    if (rollout_deadline.expired()) {
      r.deadline_expired = true;
      rollout_cut = true;
      if (r.degraded_reason.empty()) r.degraded_reason = "deadline expired mid-rollout";
      break;
    }

    // Selection mask: per-program quarantine + service-wide breakers +
    // actions that already exhausted their retries in this request.
    std::vector<bool> mask = breakers_.blockedMask();
    const std::vector<bool>& qmask = env.actionMask();
    std::size_t available = 0;
    for (std::size_t i = 0; i < mask.size(); ++i) {
      mask[i] = mask[i] || qmask[i] || exhausted[i];
      if (!mask[i]) ++available;
    }
    if (available == 0) {
      rollout_cut = true;
      if (r.degraded_reason.empty()) {
        r.degraded_reason = "all actions masked (quarantine/breakers)";
      }
      break;
    }

    const std::size_t action = selectAction(*policy, policy_key, state, mask);
    if (!breakers_.tryAcquire(action)) {
      // Raced with another worker (breaker opened or probe slot claimed
      // between mask snapshot and acquire); re-pick with a fresh mask.
      if (++acquire_races > 4 * actions_.size()) {
        rollout_cut = true;
        r.degraded_reason = "breaker contention";
        break;
      }
      continue;
    }
    acquire_races = 0;

    // Attempt the action, retrying contained transient faults with
    // exponential backoff + jitter while time and retry budget remain.
    std::size_t attempt = 0;
    PhaseOrderEnv::StepResult sr;
    for (;;) {
      sr = env.step(action);
      ++r.steps_attempted;
      // Every attempt (faulted ones included — their penalty reward is the
      // signal that teaches the learner to avoid the action) becomes one
      // replay transition, mirroring the trainer's episode collection.
      Transition t;
      t.state = state;
      t.action = action;
      t.reward = sr.reward;
      t.next_state = sr.state;
      t.done = sr.done;
      episode.push_back(std::move(t));
      if (!sr.faulted) break;
      onFault(sr.fault);
      if (sr.fault.kind == FaultKind::DeadlineExpired) {
        // Deadline expiry says nothing about the action's health: hand back
        // the tryAcquire grant (frees a half-open probe slot) instead of
        // counting a success or failure. Without this the probe slot leaks
        // and the action stays masked service-wide forever. The rollout-cut
        // path below sees the same fault and ends the rollout.
        breakers_.release(action);
        break;
      }
      breakers_.recordFailure(action);
      if (sr.done || attempt >= config_.max_retries ||
          rollout_deadline.expired()) {
        break;
      }
      ++attempt;
      ++r.retries;
      const double jitter =
          1.0 + config_.backoff_jitter * (2.0 * rng.nextDouble() - 1.0);
      const double backoff_ms =
          static_cast<double>(config_.backoff_base.count()) *
          static_cast<double>(1ull << std::min<std::size_t>(attempt - 1, 20)) *
          jitter;
      auto backoff = std::chrono::duration_cast<Deadline::Clock::duration>(
          std::chrono::duration<double, std::milli>(backoff_ms));
      backoff = std::min(backoff, rollout_deadline.remaining());
      if (backoff > Deadline::Clock::duration::zero()) {
        std::this_thread::sleep_for(backoff);
      }
      if (!breakers_.tryAcquire(action)) break;  // tripped while backing off
    }

    done = sr.done;
    state = std::move(sr.state);
    if (sr.faulted) {
      if (sr.fault.kind == FaultKind::DeadlineExpired) {
        rollout_cut = true;
        if (r.degraded_reason.empty()) {
          r.degraded_reason = "deadline expired mid-rollout";
        }
        break;
      }
      // Out of retries for this action: stop re-picking it this request.
      exhausted[action] = true;
      continue;
    }

    breakers_.recordSuccess(action);
    taken.push_back(action);
    if (env.currentSize() < best_size) {
      best_size = env.currentSize();
      best_module = cloneModule(env.workingModule());
      best_actions = taken;
    }
  }

  // Ladder rungs 1 & 2: the rollout's output.
  std::unique_ptr<Module> candidate;
  double candidate_size = 0.0;
  if (done && !rollout_cut) {
    candidate = cloneModule(env.workingModule());
    candidate_size = env.currentSize();
    r.action_sequence = taken;
    r.level = ServiceLevel::FullRollout;
  } else if (best_module != nullptr) {
    candidate = std::move(best_module);
    candidate_size = best_size;
    r.action_sequence = best_actions;
    r.level = ServiceLevel::BestPrefix;
    if (r.degraded_reason.empty()) r.degraded_reason = "rollout cut short";
  }

  // Ladder rung 3: stock -Oz, inside the full request deadline, sandboxed so
  // even a misbehaving stock pipeline degrades to identity instead of
  // crashing the worker.
  const bool want_oz = config_.verify_against_oz || candidate == nullptr;
  if (want_oz && !deadline.expired()) {
    std::unique_ptr<Module> oz = cloneModule(program);
    SandboxConfig oz_sc = env_cfg.sandbox;
    oz_sc.deadline = deadline;
    oz_sc.verify = env_cfg.verify_actions;
    oz_sc.oracle = env_cfg.oracle_actions;
    const SandboxOutcome out = runActionSandboxed(oz, ozPassNames(), oz_sc);
    if (out.ok) {
      r.oz_verified = true;
      r.oz_size_bytes = size_model.objectBytes(*oz);
      if (candidate == nullptr || r.oz_size_bytes < candidate_size) {
        if (candidate != nullptr) {
          r.degraded_reason = "stock -Oz beat the rollout output";
        } else if (r.degraded_reason.empty()) {
          r.degraded_reason = "rollout produced no candidate";
        }
        candidate = std::move(oz);
        candidate_size = r.oz_size_bytes;
        r.action_sequence.clear();
        r.level = ServiceLevel::OzPipeline;
      }
    } else {
      onFault(out.fault);
      if (candidate == nullptr && r.degraded_reason.empty()) {
        r.degraded_reason = std::string("-Oz rung faulted: ") +
                            faultKindName(out.fault.kind);
      }
    }
  }

  // Ladder rung 4: identity — hand the input back unchanged.
  if (candidate == nullptr) {
    candidate = cloneModule(program);
    candidate_size = r.base_size_bytes;
    r.level = ServiceLevel::Identity;
    if (r.degraded_reason.empty()) r.degraded_reason = "no time for any rung";
  }

  r.optimized = std::move(candidate);
  r.size_bytes = candidate_size;
  r.latency_ms = millisSince(t0);
  notifyOnline(r, program, std::move(episode));
  return r;
}

std::size_t CompileService::selectAction(const Mlp& net, std::uint64_t net_key,
                                         const Embedding& state,
                                         const std::vector<bool>& mask) {
  if (batching_.load(std::memory_order_acquire)) {
    return batcher_.actGreedy(net, net_key, state, &mask);
  }
  return maskedArgmax(net.forward(state), &mask);
}

void CompileService::notifyOnline(const ServeResult& r, const Module& program,
                                  std::vector<Transition> episode) {
  OnlineLearner* online = config_.online;
  if (online == nullptr) return;
  online->noteRequestModule(program);
  if (!episode.empty()) {
    annotateMonteCarloReturns(episode, agent_->config().gamma);
    EpisodeRecord rec;
    rec.shard =
        static_cast<std::uint32_t>(r.request_id % online->numShards());
    rec.request_id = r.request_id;
    rec.policy_version = r.policy_version;
    rec.faults = static_cast<std::uint32_t>(r.faults);
    rec.steps = std::move(episode);
    online->ingest(std::move(rec));
  }
  ServeObservation obs;
  obs.policy_version = r.policy_version;
  obs.degraded = r.level == ServiceLevel::OzPipeline ||
                 r.level == ServiceLevel::Identity;
  obs.faults = r.faults;
  // By ladder construction this cannot fire — it is the invariant the
  // watchdog enforces against regressions in the ladder itself.
  obs.oz_violation =
      r.oz_verified && r.size_bytes > r.oz_size_bytes * (1.0 + 1e-9);
  online->observe(obs);
}

void CompileService::recordResult(const ServeResult& r) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  switch (r.status) {
    case ServeStatus::Rejected:
      ++stats_.rejected;
      return;
    case ServeStatus::ShutDown:
      ++stats_.shut_down;
      return;
    case ServeStatus::Ok:
      break;
  }
  ++stats_.completed;
  switch (r.level) {
    case ServiceLevel::FullRollout: ++stats_.level_full; break;
    case ServiceLevel::BestPrefix: ++stats_.level_prefix; break;
    case ServiceLevel::OzPipeline: ++stats_.level_oz; break;
    case ServiceLevel::Identity: ++stats_.level_identity; break;
  }
  stats_.retries += r.retries;
  stats_.faults += r.faults;
  if (r.deadline_expired) ++stats_.deadline_expired;
  stats_.total_latency_ms += r.latency_ms;
  stats_.max_latency_ms = std::max(stats_.max_latency_ms, r.latency_ms);
}

std::size_t CompileService::queueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

ServiceStats CompileService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace posetrl
