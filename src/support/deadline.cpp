#include "support/deadline.h"

#include <algorithm>
#include <limits>
#include <string>

namespace posetrl {

Deadline::Clock::duration Deadline::remaining(TimePoint now) const {
  if (never_) return Clock::duration::max();
  if (now >= when_) return Clock::duration::zero();
  return when_ - now;
}

std::int64_t Deadline::remainingMillis(TimePoint now) const {
  if (never_) return std::numeric_limits<std::int64_t>::max();
  return std::chrono::duration_cast<std::chrono::milliseconds>(remaining(now))
      .count();
}

Deadline Deadline::fractionFromNow(double fraction, TimePoint now) const {
  if (never_) return never();
  fraction = std::clamp(fraction, 0.0, 1.0);
  const Clock::duration left = remaining(now);
  return Deadline::at(now + std::chrono::duration_cast<Clock::duration>(
                                left * fraction));
}

Deadline Deadline::earlier(const Deadline& a, const Deadline& b) {
  if (a.isNever()) return b;
  if (b.isNever()) return a;
  return a.when() <= b.when() ? a : b;
}

namespace {

thread_local Deadline g_deadline;  // never() when no scope armed.

}  // namespace

DeadlineScope::DeadlineScope(Deadline deadline) : prev_(g_deadline) {
  // An enclosing scope's tighter deadline keeps binding inside a nested one.
  g_deadline = Deadline::earlier(prev_, deadline);
}

DeadlineScope::~DeadlineScope() { g_deadline = prev_; }

bool DeadlineScope::active() { return !g_deadline.isNever(); }

Deadline DeadlineScope::current() { return g_deadline; }

void DeadlineScope::poll() {
  if (g_deadline.isNever()) return;
  const auto now = Deadline::Clock::now();
  if (g_deadline.expired(now)) {
    throw DeadlineExpiredError(
        "deadline expired " +
        std::to_string(std::chrono::duration_cast<std::chrono::microseconds>(
                           now - g_deadline.when())
                           .count()) +
        "us ago");
  }
}

}  // namespace posetrl
