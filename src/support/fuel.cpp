#include "support/fuel.h"

#include <string>

#include "support/deadline.h"

namespace posetrl {

namespace {

struct FuelState {
  bool active = false;
  std::uint64_t budget = 0;
  std::uint64_t used = 0;
  /// Calls since the last deadline poll (clock reads are throttled).
  std::uint32_t since_poll = 0;
};

thread_local FuelState g_fuel;

/// Deadline polls happen every this many consume() calls; small enough that
/// a deadline-expired pass is cut within a pass-boundary-sized slice of
/// work, large enough that the steady_clock read stays off the hot path.
constexpr std::uint32_t kDeadlinePollInterval = 256;

}  // namespace

FuelScope::FuelScope(std::uint64_t budget)
    : budget_(budget),
      prev_active_(g_fuel.active),
      prev_budget_(g_fuel.budget),
      prev_used_(g_fuel.used) {
  g_fuel.active = budget > 0;
  g_fuel.budget = budget;
  g_fuel.used = 0;
}

FuelScope::~FuelScope() {
  g_fuel.active = prev_active_;
  g_fuel.budget = prev_budget_;
  g_fuel.used = prev_used_;
}

std::uint64_t FuelScope::consumed() const { return g_fuel.used; }

bool FuelScope::active() { return g_fuel.active; }

void FuelScope::consume(std::uint64_t n) {
  // Wall-clock complement to the fuel budget: an armed DeadlineScope is
  // polled (throttled) from the same instrumentation hook, so a pass that is
  // slow without being runaway still gets interrupted on deadline expiry.
  if (++g_fuel.since_poll >= kDeadlinePollInterval) {
    g_fuel.since_poll = 0;
    DeadlineScope::poll();
  }
  if (!g_fuel.active) return;
  g_fuel.used += n;
  if (g_fuel.used > g_fuel.budget) {
    throw FuelExhaustedError("execution fuel exhausted: " +
                             std::to_string(g_fuel.used) + " of " +
                             std::to_string(g_fuel.budget) + " units");
  }
}

}  // namespace posetrl
