#include "support/rng.h"

#include <bit>
#include <cmath>
#include <istream>
#include <ostream>
#include <string>

#include "support/error.h"

namespace posetrl {

std::uint64_t splitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitMix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::nextBelow(std::uint64_t bound) {
  POSETRL_CHECK(bound > 0, "nextBelow bound must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::nextInt(std::int64_t lo, std::int64_t hi) {
  POSETRL_CHECK(lo <= hi, "nextInt requires lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  return lo + static_cast<std::int64_t>(nextBelow(span));
}

double Rng::nextDouble() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::nextDouble(double lo, double hi) {
  return lo + (hi - lo) * nextDouble();
}

double Rng::nextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = nextDouble();
  } while (u1 <= 1e-300);
  const double u2 = nextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

bool Rng::nextBool(double p) { return nextDouble() < p; }

std::size_t Rng::nextWeighted(const std::vector<double>& weights) {
  POSETRL_CHECK(!weights.empty(), "nextWeighted needs at least one weight");
  double total = 0.0;
  for (double w : weights) {
    POSETRL_CHECK(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  POSETRL_CHECK(total > 0.0, "weights must not all be zero");
  double pick = nextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    pick -= weights[i];
    if (pick <= 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() { return Rng(next()); }

Rng Rng::forStream(std::uint64_t seed, std::uint64_t stream) {
  // Mix the stream index through SplitMix64 so adjacent indices land far
  // apart in seed space before xoshiro expansion.
  std::uint64_t state = seed + 0x9e3779b97f4a7c15ull * (stream + 1);
  return Rng(splitMix64(state));
}

void Rng::save(std::ostream& os) const {
  os << "rng";
  for (std::uint64_t s : s_) os << " " << s;
  // The cached Box–Muller value is part of the stream position; store its
  // exact bit pattern so restore is lossless.
  os << " " << std::bit_cast<std::uint64_t>(cached_gaussian_) << " "
     << (has_cached_gaussian_ ? 1 : 0) << "\n";
}

void Rng::load(std::istream& is) {
  std::string tag;
  is >> tag;
  POSETRL_CHECK(tag == "rng", "bad RNG state header: ", tag);
  for (std::uint64_t& s : s_) is >> s;
  std::uint64_t bits = 0;
  int has = 0;
  is >> bits >> has;
  POSETRL_CHECK(static_cast<bool>(is), "truncated RNG state");
  cached_gaussian_ = std::bit_cast<double>(bits);
  has_cached_gaussian_ = has != 0;
}

}  // namespace posetrl
