#include "support/stats.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace posetrl {

SampleStats computeStats(const std::vector<double>& values) {
  SampleStats s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(sq / static_cast<double>(values.size()));
  return s;
}

double geometricMean(const std::vector<double>& values) {
  POSETRL_CHECK(!values.empty(), "geometricMean of empty sample");
  double log_sum = 0.0;
  for (double v : values) {
    POSETRL_CHECK(v > 0.0, "geometricMean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double percentReduction(double base, double now) {
  POSETRL_CHECK(base != 0.0, "percentReduction with zero base");
  return 100.0 * (base - now) / base;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  POSETRL_CHECK(p >= 0.0 && p <= 100.0, "percentile out of range: ", p);
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  if (lo == hi) return values[lo];
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

}  // namespace posetrl
