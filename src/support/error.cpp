#include "support/error.h"

#include <cstdio>

namespace posetrl {

namespace {
thread_local int g_trap_depth = 0;
}  // namespace

void fatalError(const std::string& message, const char* file, int line) {
  if (g_trap_depth > 0) {
    std::ostringstream os;
    os << message << " (at " << file << ":" << line << ")";
    throw FatalError(os.str());
  }
  std::fprintf(stderr, "posetrl fatal error at %s:%d: %s\n", file, line,
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

void raiseError(const std::string& message) { throw FatalError(message); }

ScopedFaultTrap::ScopedFaultTrap() { ++g_trap_depth; }
ScopedFaultTrap::~ScopedFaultTrap() { --g_trap_depth; }
bool ScopedFaultTrap::active() { return g_trap_depth > 0; }

}  // namespace posetrl
