#include "support/error.h"

#include <cstdio>

namespace posetrl {

void fatalError(const std::string& message, const char* file, int line) {
  std::fprintf(stderr, "posetrl fatal error at %s:%d: %s\n", file, line,
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace posetrl
