#include "support/table.h"

#include <algorithm>

namespace posetrl {

void TextTable::addRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  if (rows_.empty()) return "";
  std::vector<std::size_t> widths;
  for (const auto& row : rows_) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      out += "| ";
      out += cell;
      out.append(widths[i] - cell.size() + 1, ' ');
    }
    out += "|\n";
  };
  emit_row(rows_[0]);
  for (std::size_t i = 0; i < widths.size(); ++i) {
    out += "|";
    out.append(widths[i] + 2, '-');
  }
  out += "|\n";
  for (std::size_t r = 1; r < rows_.size(); ++r) emit_row(rows_[r]);
  return out;
}

}  // namespace posetrl
