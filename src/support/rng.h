#pragma once

/// \file rng.h
/// Deterministic pseudo-random number generation.
///
/// All stochastic components in the library (workload generation, embedding
/// vocabulary seeding, epsilon-greedy exploration, replay sampling, network
/// initialization) draw from this RNG so that every experiment is exactly
/// reproducible from a seed. The generator is xoshiro256** seeded via
/// SplitMix64, following the reference implementations of Blackman & Vigna.

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace posetrl {

/// SplitMix64 step; also usable as a standalone integer mixer.
std::uint64_t splitMix64(std::uint64_t& state);

/// Deterministic, seedable random number generator (xoshiro256**).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound) — bound must be > 0.
  std::uint64_t nextBelow(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t nextInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double nextDouble();

  /// Uniform double in [lo, hi).
  double nextDouble(double lo, double hi);

  /// Standard normal variate (Box–Muller; one cached value).
  double nextGaussian();

  /// True with probability \p p.
  bool nextBool(double p = 0.5);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  std::size_t nextWeighted(const std::vector<double>& weights);

  /// Derives an independent child generator (stable given call order).
  Rng fork();

  /// Derives the \p stream-th independent generator from \p seed without
  /// consuming any state — deterministic and order-free, so N worker threads
  /// can each own a private stream (e.g. retry-backoff jitter in the serving
  /// layer) with no shared RNG and no locking.
  static Rng forStream(std::uint64_t seed, std::uint64_t stream);

  /// Serializes the full generator state (stream position included), so a
  /// restored generator continues the exact same sequence. Used by the
  /// crash-safe trainer checkpoints.
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  std::uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace posetrl
