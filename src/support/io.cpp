#include "support/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cmath>
#include <cstring>

namespace posetrl {
namespace io {

namespace {

std::atomic<IoPolicy*> g_policy{nullptr};

struct AtomicStats {
  std::atomic<std::size_t> ops[kNumOps] = {};
  std::atomic<std::size_t> injected_failures{0};
  std::atomic<std::size_t> short_writes{0};
};
AtomicStats g_stats;

/// Consults the installed policy and bumps the op counter. Returns the
/// errno to inject (0 = proceed). With no policy installed this is one
/// atomic load and a predicted branch — the accounting rides the injection
/// path so production appends don't pay a locked RMW per syscall (measured
/// by bench/io_shim_bench, gated <2% in tools/check.sh --bench).
int checkOp(Op op, const std::string& path) {
  IoPolicy* p = g_policy.load(std::memory_order_acquire);
  if (p == nullptr) return 0;
  g_stats.ops[static_cast<std::size_t>(op)].fetch_add(
      1, std::memory_order_relaxed);
  const int injected = p->beforeOp(op, path);
  if (injected != 0) {
    g_stats.injected_failures.fetch_add(1, std::memory_order_relaxed);
  }
  return injected;
}

[[noreturn]] void raiseIo(Op op, const std::string& path, int errnum) {
  throw IoError(std::string(opName(op)) + " failed for " + path + ": " +
                    std::strerror(errnum),
                errnum);
}

}  // namespace

const char* opName(Op op) {
  switch (op) {
    case Op::CreateFile: return "create";
    case Op::Write: return "write";
    case Op::DataSync: return "fdatasync";
    case Op::CloseFile: return "close";
    case Op::SyncDir: return "fsync-dir";
    case Op::Rename: return "rename";
    case Op::Unlink: return "unlink";
    case Op::Truncate: return "ftruncate";
  }
  return "unknown";
}

IoPolicy* setPolicy(IoPolicy* policy) {
  return g_policy.exchange(policy, std::memory_order_acq_rel);
}

IoPolicy* policy() { return g_policy.load(std::memory_order_acquire); }

Stats statsSnapshot() {
  Stats s;
  for (std::size_t i = 0; i < kNumOps; ++i) {
    s.ops[i] = g_stats.ops[i].load(std::memory_order_relaxed);
  }
  s.injected_failures =
      g_stats.injected_failures.load(std::memory_order_relaxed);
  s.short_writes = g_stats.short_writes.load(std::memory_order_relaxed);
  return s;
}

void resetStats() {
  for (std::size_t i = 0; i < kNumOps; ++i) {
    g_stats.ops[i].store(0, std::memory_order_relaxed);
  }
  g_stats.injected_failures.store(0, std::memory_order_relaxed);
  g_stats.short_writes.store(0, std::memory_order_relaxed);
}

// --- IoFile ----------------------------------------------------------------

IoFile& IoFile::operator=(IoFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.path_.clear();
  }
  return *this;
}

IoFile::~IoFile() {
  // Best-effort: the checked close() is the API; by the time the destructor
  // runs the caller either already closed or is unwinding from a failure,
  // and a second error has nowhere to go.
  if (fd_ >= 0) ::close(fd_);
}

IoFile IoFile::open(const std::string& path, int flags) {
  const int injected = checkOp(Op::CreateFile, path);
  if (injected != 0) raiseIo(Op::CreateFile, path, injected);
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) raiseIo(Op::CreateFile, path, errno);
  return IoFile(fd, path);
}

IoFile IoFile::createAppendExclusive(const std::string& path) {
  return open(path, O_WRONLY | O_CREAT | O_EXCL | O_APPEND | O_CLOEXEC);
}

IoFile IoFile::createTruncate(const std::string& path) {
  return open(path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC);
}

void IoFile::writeAll(const char* data, std::size_t n) {
  POSETRL_CHECK(fd_ >= 0, "write on a closed IoFile");
  std::size_t off = 0;
  while (off < n) {
    const std::size_t remaining = n - off;
    const int injected = checkOp(Op::Write, path_);
    if (injected != 0) raiseIo(Op::Write, path_, injected);
    std::size_t chunk = remaining;
    if (IoPolicy* p = g_policy.load(std::memory_order_acquire)) {
      chunk = p->writeLimit(path_, remaining);
      if (chunk < 1) chunk = 1;
      if (chunk > remaining) chunk = remaining;
      if (chunk < remaining) {
        g_stats.short_writes.fetch_add(1, std::memory_order_relaxed);
      }
    }
    const ssize_t written = ::write(fd_, data + off, chunk);
    if (written < 0) {
      if (errno == EINTR) continue;
      raiseIo(Op::Write, path_, errno);
    }
    off += static_cast<std::size_t>(written);
  }
}

void IoFile::dataSync() {
  POSETRL_CHECK(fd_ >= 0, "fdatasync on a closed IoFile");
  const int injected = checkOp(Op::DataSync, path_);
  if (injected != 0) raiseIo(Op::DataSync, path_, injected);
  if (::fdatasync(fd_) != 0) raiseIo(Op::DataSync, path_, errno);
}

void IoFile::truncate(std::size_t length) {
  POSETRL_CHECK(fd_ >= 0, "ftruncate on a closed IoFile");
  const int injected = checkOp(Op::Truncate, path_);
  if (injected != 0) raiseIo(Op::Truncate, path_, injected);
  if (::ftruncate(fd_, static_cast<off_t>(length)) != 0) {
    raiseIo(Op::Truncate, path_, errno);
  }
}

void IoFile::close() {
  if (fd_ < 0) return;
  const int injected = checkOp(Op::CloseFile, path_);
  // The descriptor is process state, not disk state: release it even when
  // the (simulated or real) close fails, then report the failure.
  const int rc = ::close(fd_);
  const int saved = errno;
  fd_ = -1;
  if (injected != 0) raiseIo(Op::CloseFile, path_, injected);
  if (rc != 0) raiseIo(Op::CloseFile, path_, saved);
}

// --- directory / path operations -------------------------------------------

void fsyncDir(const std::string& dir) {
  const int injected = checkOp(Op::SyncDir, dir);
  if (injected != 0) raiseIo(Op::SyncDir, dir, injected);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) raiseIo(Op::SyncDir, dir, errno);
  if (::fsync(dfd) != 0) {
    const int saved = errno;
    ::close(dfd);
    raiseIo(Op::SyncDir, dir, saved);
  }
  if (::close(dfd) != 0) raiseIo(Op::SyncDir, dir, errno);
}

void renameFile(const std::string& from, const std::string& to) {
  const int injected = checkOp(Op::Rename, from);
  if (injected != 0) raiseIo(Op::Rename, from, injected);
  if (::rename(from.c_str(), to.c_str()) != 0) {
    raiseIo(Op::Rename, from, errno);
  }
}

bool removeIfExists(const std::string& path) {
  const int injected = checkOp(Op::Unlink, path);
  if (injected != 0) raiseIo(Op::Unlink, path, injected);
  if (::unlink(path.c_str()) != 0) {
    if (errno == ENOENT) return false;
    raiseIo(Op::Unlink, path, errno);
  }
  return true;
}

void truncateFile(const std::string& path, std::size_t length) {
  const int injected = checkOp(Op::Truncate, path);
  if (injected != 0) raiseIo(Op::Truncate, path, injected);
  if (::truncate(path.c_str(), static_cast<off_t>(length)) != 0) {
    raiseIo(Op::Truncate, path, errno);
  }
}

void writeFileAtomicDurable(const std::string& path,
                            const std::string& content) {
  const std::string tmp = path + ".tmp";
  try {
    IoFile f = IoFile::createTruncate(tmp);
    f.writeAll(content);
    // Data must be durable BEFORE the rename publishes the name: otherwise
    // a machine crash after the rename could expose an empty or partial
    // file under the final path.
    f.dataSync();
    f.close();
    renameFile(tmp, path);
    std::string parent = path;
    const std::size_t slash = parent.find_last_of('/');
    parent = slash == std::string::npos ? std::string(".")
                                        : parent.substr(0, slash);
    fsyncDir(parent);
  } catch (const FatalError&) {
    // A failed publish must leave no debris: unlink the orphaned tmp
    // (best-effort — the disk may be refusing unlinks too; startup GC of
    // the owning component sweeps what this misses).
    try {
      removeIfExists(tmp);
    } catch (const FatalError&) {
    }
    throw;
  }
}

// --- reusable fault policies ----------------------------------------------

int CrashPointPolicy::beforeOp(Op op, const std::string& path) {
  (void)path;
  if (crashed_.load(std::memory_order_acquire)) return errnum_;
  const std::size_t index = next_op_.fetch_add(1, std::memory_order_acq_rel);
  if (index < crash_at_) return 0;
  if (index == crash_at_ && op == Op::Write && partial_write_ > 0.0) {
    // Mid-write crash: let this write through clamped (writeLimit below),
    // then die — the disk keeps a torn prefix of the frame.
    partial_pending_.store(true, std::memory_order_release);
    crashed_.store(true, std::memory_order_release);
    return 0;
  }
  crashed_.store(true, std::memory_order_release);
  return errnum_;
}

std::size_t CrashPointPolicy::writeLimit(const std::string& path,
                                         std::size_t nbytes) {
  (void)path;
  if (partial_pending_.exchange(false, std::memory_order_acq_rel)) {
    const auto clamped = static_cast<std::size_t>(
        std::ceil(static_cast<double>(nbytes) * partial_write_));
    return clamped < 1 ? 1 : (clamped >= nbytes ? nbytes - (nbytes > 1) : clamped);
  }
  return nbytes;
}

int FaultWindowPolicy::beforeOp(Op op, const std::string& path) {
  (void)op;
  (void)path;
  const std::size_t index = next_op_.fetch_add(1, std::memory_order_acq_rel);
  if (index >= fail_from_ && index < fail_until_) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    return errnum_;
  }
  return 0;
}

int TracePolicy::beforeOp(Op op, const std::string& path) {
  (void)path;
  std::lock_guard<std::mutex> lock(mu_);
  trace_.push_back(op);
  return 0;
}

}  // namespace io
}  // namespace posetrl
