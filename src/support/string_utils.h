#pragma once

/// \file string_utils.h
/// Minimal string helpers shared by the IR parser, pass-name parsing and the
/// benchmark table printers.

#include <string>
#include <string_view>
#include <vector>

namespace posetrl {

/// Splits \p text on \p sep; empty pieces are dropped when \p keep_empty is
/// false (the default).
std::vector<std::string> splitString(std::string_view text, char sep,
                                     bool keep_empty = false);

/// Joins \p parts with \p sep between consecutive elements.
std::string joinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Strips leading/trailing ASCII whitespace.
std::string_view trimString(std::string_view text);

bool startsWith(std::string_view text, std::string_view prefix);
bool endsWith(std::string_view text, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string formatString(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace posetrl
