#include "support/string_utils.h"

#include <cstdarg>
#include <cstdio>

namespace posetrl {

std::vector<std::string> splitString(std::string_view text, char sep,
                                     bool keep_empty) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      if (i > start || keep_empty) out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string joinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trimString(std::string_view text) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && is_space(text[b])) ++b;
  while (e > b && is_space(text[e - 1])) --e;
  return text.substr(b, e - b);
}

bool startsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string formatString(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out(needed > 0 ? static_cast<std::size_t>(needed) : 0, '\0');
  if (needed > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

}  // namespace posetrl
