#pragma once

/// \file stats.h
/// Descriptive statistics helpers used by the benchmark harnesses when
/// aggregating per-program results into the paper's min/avg/max tables.

#include <cstddef>
#include <vector>

namespace posetrl {

/// Summary of a sample (all values are 0 for an empty sample except count).
struct SampleStats {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
};

/// Computes count/min/max/mean/population-stddev of \p values.
SampleStats computeStats(const std::vector<double>& values);

/// Geometric mean; requires all values > 0 (checked).
double geometricMean(const std::vector<double>& values);

/// Percentage change helper: positive when \p now improved (shrank) relative
/// to \p base, i.e. 100 * (base - now) / base.
double percentReduction(double base, double now);

}  // namespace posetrl
