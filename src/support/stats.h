#pragma once

/// \file stats.h
/// Descriptive statistics helpers used by the benchmark harnesses when
/// aggregating per-program results into the paper's min/avg/max tables.

#include <cstddef>
#include <vector>

namespace posetrl {

/// Summary of a sample (all values are 0 for an empty sample except count).
struct SampleStats {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
};

/// Computes count/min/max/mean/population-stddev of \p values.
SampleStats computeStats(const std::vector<double>& values);

/// Geometric mean; requires all values > 0 (checked).
double geometricMean(const std::vector<double>& values);

/// Percentage change helper: positive when \p now improved (shrank) relative
/// to \p base, i.e. 100 * (base - now) / base.
double percentReduction(double base, double now);

/// The \p p-th percentile (0 <= p <= 100) of \p values by linear
/// interpolation between closest ranks (the common "exclusive of
/// extrapolation" definition: p=0 is the min, p=100 the max). Copies and
/// sorts internally; returns 0 for an empty sample. Used by the serving
/// stress driver for p50/p99 latency reporting.
double percentile(std::vector<double> values, double p);

}  // namespace posetrl
