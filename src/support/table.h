#pragma once

/// \file table.h
/// Plain-text table rendering for the benchmark binaries that regenerate the
/// paper's tables (Table IV, Table V, ...). Columns are auto-sized; the first
/// row added is treated as the header.

#include <string>
#include <vector>

namespace posetrl {

/// Accumulates rows of strings and renders them as an aligned ASCII table.
class TextTable {
 public:
  /// Adds a row; the first row becomes the header.
  void addRow(std::vector<std::string> cells);

  /// Renders the table (header, separator, body) to a string.
  std::string render() const;

  std::size_t rowCount() const { return rows_.size(); }

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace posetrl
