#pragma once

/// \file hashing.h
/// Small stable hashing utilities (FNV-1a and hash combining).
///
/// Used wherever the library needs hashes that are stable across runs and
/// platforms — e.g. the embedding vocabulary derives each entity's seed
/// vector from a stable hash of its name, and the interpreter fingerprints
/// observable program behaviour.

#include <cstdint>
#include <string_view>

namespace posetrl {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// FNV-1a over a byte string.
constexpr std::uint64_t fnv1a(std::string_view data,
                              std::uint64_t seed = kFnvOffset) {
  std::uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// Strong 64-bit mixer (final avalanche of SplitMix64).
constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Order-dependent hash combiner.
constexpr std::uint64_t hashCombine(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2)));
}

}  // namespace posetrl
