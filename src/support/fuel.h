#pragma once

/// \file fuel.h
/// Cooperative execution fuel. A FuelScope arms a thread-local budget;
/// instrumented loops (pass drivers, injected stress passes) call
/// FuelScope::consume(), which throws FuelExhaustedError once the budget is
/// spent. Outside any scope consume() is a no-op, so the hooks cost nothing
/// on un-sandboxed paths. Scopes nest: an inner scope gets its own budget
/// and restores the outer one on destruction.

#include <cstdint>
#include <stdexcept>

namespace posetrl {

/// Thrown by FuelScope::consume() when the armed budget is exhausted.
class FuelExhaustedError : public std::runtime_error {
 public:
  explicit FuelExhaustedError(const std::string& what)
      : std::runtime_error(what) {}
};

/// RAII guard arming a fuel budget for the current thread.
class FuelScope {
 public:
  explicit FuelScope(std::uint64_t budget);
  ~FuelScope();
  FuelScope(const FuelScope&) = delete;
  FuelScope& operator=(const FuelScope&) = delete;

  /// Fuel spent inside this scope so far.
  std::uint64_t consumed() const;
  std::uint64_t budget() const { return budget_; }

  /// True when any scope is armed on this thread.
  static bool active();

  /// Spends \p n units from the innermost active scope; throws
  /// FuelExhaustedError when the budget runs out. No-op when inactive —
  /// except that an armed DeadlineScope (support/deadline.h) is polled
  /// periodically here too, throwing DeadlineExpiredError on wall-clock
  /// expiry through the same containment path.
  static void consume(std::uint64_t n = 1);

 private:
  std::uint64_t budget_ = 0;
  // Saved state of the enclosing scope (restored on destruction).
  bool prev_active_ = false;
  std::uint64_t prev_budget_ = 0;
  std::uint64_t prev_used_ = 0;
};

}  // namespace posetrl
