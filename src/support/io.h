#pragma once

/// \file io.h
/// Deterministic I/O fault-injection shim for the durability layer
/// (DESIGN.md "Failure model").
///
/// Every write-side syscall the durability code issues — WAL appends,
/// snapshot publishes, trainer checkpoints, agent saves — goes through this
/// layer instead of calling open/write/fdatasync/rename directly. In
/// production the shim is a pass-through (one atomic load plus relaxed
/// counters per syscall; bench/io_shim_bench measures the cost). In tests a
/// process-global IoPolicy can be installed to inject the faults a real
/// disk produces:
///
///   - EIO / ENOSPC (or any errno) on any operation,
///   - short writes (write(2) accepting fewer bytes than asked),
///   - failed fdatasync / directory fsync / rename / close,
///   - a seeded "crash after syscall N" trap (CrashPointPolicy) that
///     freezes the on-disk state exactly as a process killed at that
///     syscall would leave it — the substrate of the crash-point model
///     checker in tests/io_fault_test.cpp.
///
/// Failure surface: every operation that fails (for real or by injection)
/// raises IoError, a catchable FatalError carrying the errno. Callers on
/// the serve path catch it and degrade (online_learner.h "durability
/// degradation"); callers with no fallback let it propagate.
///
/// Crash semantics modeled: a *process* crash (kill -9, abort) keeps every
/// write that returned — the page cache belongs to the kernel. A crashed
/// CrashPointPolicy therefore fails all further operations without touching
/// the disk, leaving exactly the bytes written before the trap fired.
/// Machine crashes (losing unsynced page-cache data) are modeled separately
/// by the torn-write truncation tests.

#include <atomic>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "support/error.h"

namespace posetrl {

/// Catchable I/O failure: a FatalError that also carries the errno of the
/// failed operation (real or injected).
class IoError : public FatalError {
 public:
  IoError(const std::string& what, int errnum)
      : FatalError(what), errnum_(errnum) {}
  int errnum() const { return errnum_; }

 private:
  int errnum_;
};

namespace io {

/// The physical operations the shim mediates. fsyncDir() is one SyncDir op
/// (its internal open/fsync/close of the directory fd is not separately
/// injectable — a directory-fsync either happens or it does not).
enum class Op {
  CreateFile,  ///< open(O_WRONLY|O_CREAT|...)
  Write,       ///< write(2) (possibly one of several per logical write)
  DataSync,    ///< fdatasync(2)
  CloseFile,   ///< close(2) of a file opened for writing
  SyncDir,     ///< fsync of a directory fd (dirent durability)
  Rename,      ///< rename(2)
  Unlink,      ///< unlink(2)
  Truncate,    ///< ftruncate(2) (torn-tail repair)
};
const char* opName(Op op);
constexpr std::size_t kNumOps = 8;

/// Injectable fault policy. Consulted before every physical operation;
/// implementations must be thread-safe (serving-path I/O is concurrent).
class IoPolicy {
 public:
  virtual ~IoPolicy() = default;
  /// Return 0 to let the operation through, or an errno value to inject a
  /// failure — the physical syscall is then NOT performed (except close,
  /// which always releases the real descriptor; see IoFile::close).
  virtual int beforeOp(Op op, const std::string& path) {
    (void)op;
    (void)path;
    return 0;
  }
  /// Clamp for one physical write: return how many of \p nbytes the write
  /// may accept (a short write). Values are clamped to [1, nbytes]; the
  /// caller's full-write loop re-consults beforeOp for the remainder.
  virtual std::size_t writeLimit(const std::string& path, std::size_t nbytes) {
    (void)path;
    return nbytes;
  }
};

/// Installs \p policy as the process-global fault policy (nullptr restores
/// pass-through). The policy is borrowed, not owned; the caller keeps it
/// alive until reset. Returns the previous policy.
IoPolicy* setPolicy(IoPolicy* policy);
IoPolicy* policy();

/// RAII policy installation for tests: installs on construction, restores
/// the previous policy on destruction.
class ScopedIoPolicy {
 public:
  explicit ScopedIoPolicy(IoPolicy* p) : previous_(setPolicy(p)) {}
  ~ScopedIoPolicy() { setPolicy(previous_); }
  ScopedIoPolicy(const ScopedIoPolicy&) = delete;
  ScopedIoPolicy& operator=(const ScopedIoPolicy&) = delete;

 private:
  IoPolicy* previous_;
};

/// Process-wide shim counters (relaxed atomics; snapshot is not a
/// linearizable cut across ops). Ops are only counted while a policy is
/// installed: the production fast path must stay one atomic load + branch
/// per syscall, so the accounting rides the injection path.
struct Stats {
  std::size_t ops[kNumOps] = {};
  std::size_t injected_failures = 0;
  std::size_t short_writes = 0;  ///< Physical writes clamped by a policy.
};
Stats statsSnapshot();
void resetStats();

/// Write-side file handle. All methods raise IoError on failure (real
/// errno or injected); the destructor closes best-effort and never throws.
class IoFile {
 public:
  /// O_WRONLY|O_CREAT|O_EXCL|O_APPEND — a fresh WAL segment: creation
  /// fails if the file exists (single-writer protection).
  static IoFile createAppendExclusive(const std::string& path);
  /// O_WRONLY|O_CREAT|O_TRUNC — a tmp file for atomic publication.
  static IoFile createTruncate(const std::string& path);

  IoFile() = default;
  IoFile(IoFile&& other) noexcept { *this = std::move(other); }
  IoFile& operator=(IoFile&& other) noexcept;
  IoFile(const IoFile&) = delete;
  IoFile& operator=(const IoFile&) = delete;
  ~IoFile();

  bool isOpen() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Writes all \p n bytes (looping over short writes and EINTR). An
  /// injected or real failure partway leaves a prefix on disk — exactly a
  /// torn write — and raises IoError.
  void writeAll(const char* data, std::size_t n);
  void writeAll(const std::string& data) { writeAll(data.data(), data.size()); }

  /// fdatasync(2).
  void dataSync();

  /// Truncates the file to \p length bytes (torn-tail repair).
  void truncate(std::size_t length);

  /// Checked close: raises IoError when close(2) fails or the policy
  /// injects a failure. The real descriptor is ALWAYS released — a file
  /// descriptor is process state, not disk state, so even a simulated-dead
  /// process must not leak it.
  void close();

 private:
  IoFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  static IoFile open(const std::string& path, int flags);

  int fd_ = -1;
  std::string path_;
};

/// fsyncs the directory entry list of \p dir (dirent durability after
/// create/rename/unlink). Raises IoError on failure — callers that can
/// degrade catch it; none silently ignore it.
void fsyncDir(const std::string& dir);

/// rename(2); raises IoError on failure.
void renameFile(const std::string& from, const std::string& to);

/// unlink(2). Returns false when the file does not exist; raises IoError
/// on any other failure.
bool removeIfExists(const std::string& path);

/// truncate(2) by path (torn-tail repair of a closed segment); raises
/// IoError on failure.
void truncateFile(const std::string& path, std::size_t length);

/// Atomic durable publication of \p content at \p path:
///   write path.tmp → fdatasync → close → rename over path → fsync dir.
/// On any failure the orphaned tmp file is unlinked (best-effort) before
/// IoError propagates, so a failed publish leaves no debris and the
/// previous file intact. This is the primitive behind checkpoint saves,
/// agent saves, and snapshot publication.
void writeFileAtomicDurable(const std::string& path,
                            const std::string& content);

// --- reusable fault policies ----------------------------------------------

/// Deterministic "crash after syscall N" trap. Operations 0..crash_at-1
/// execute normally; operation crash_at and everything after it fail with
/// ENOSPC-style errno without touching the disk, freezing the on-disk state
/// exactly as a process killed at that syscall boundary would leave it.
/// With partial_write in (0,1), a Write landing on the crash point is let
/// through clamped to ceil(nbytes * partial_write) bytes first — the
/// mid-write (torn) crash variant.
class CrashPointPolicy : public IoPolicy {
 public:
  explicit CrashPointPolicy(std::size_t crash_at, double partial_write = 0.0,
                            int errnum = EIO)
      : crash_at_(crash_at), partial_write_(partial_write), errnum_(errnum) {}

  int beforeOp(Op op, const std::string& path) override;
  std::size_t writeLimit(const std::string& path, std::size_t nbytes) override;

  std::size_t opsSeen() const { return next_op_.load(); }
  bool crashed() const { return crashed_.load(); }

 private:
  const std::size_t crash_at_;
  const double partial_write_;
  const int errnum_;
  std::atomic<std::size_t> next_op_{0};
  std::atomic<bool> crashed_{false};
  std::atomic<bool> partial_pending_{false};
};

/// Injects \p errnum on every operation whose global index falls inside
/// [fail_from, fail_from + fail_count) — a disk that breaks mid-run and
/// heals later (the chaos serve smoke). Operations outside the window pass
/// through untouched.
class FaultWindowPolicy : public IoPolicy {
 public:
  FaultWindowPolicy(std::size_t fail_from, std::size_t fail_count, int errnum)
      : fail_from_(fail_from), fail_until_(fail_from + fail_count),
        errnum_(errnum) {}

  int beforeOp(Op op, const std::string& path) override;

  std::size_t opsSeen() const { return next_op_.load(); }
  std::size_t injected() const { return injected_.load(); }
  bool healed() const { return next_op_.load() >= fail_until_; }

 private:
  const std::size_t fail_from_;
  const std::size_t fail_until_;
  const int errnum_;
  std::atomic<std::size_t> next_op_{0};
  std::atomic<std::size_t> injected_{0};
};

/// Records the operation sequence (for crash-point enumeration: run once
/// with a TracePolicy to learn how many syscalls the scenario issues and
/// which of them are writes). Pass-through otherwise.
class TracePolicy : public IoPolicy {
 public:
  int beforeOp(Op op, const std::string& path) override;

  /// The recorded op kinds, in issue order. Not thread-safe against
  /// concurrent shim traffic — use from single-threaded scenarios only.
  const std::vector<Op>& trace() const { return trace_; }

 private:
  std::vector<Op> trace_;
  std::mutex mu_;
};

}  // namespace io
}  // namespace posetrl
