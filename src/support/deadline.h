#pragma once

/// \file deadline.h
/// Monotonic-clock deadlines for the serving layer. A Deadline is a point on
/// std::chrono::steady_clock (immune to wall-clock adjustments) or "never".
/// Deadlines complement the cooperative fuel budgets of support/fuel.h: fuel
/// bounds *work* deterministically, a deadline bounds *wall time* — a pass
/// that is slow without being runaway still gets interrupted when a serving
/// request runs out of time.
///
/// A DeadlineScope arms a thread-local deadline; FuelScope::consume() — the
/// instrumentation hook already threaded through every pass driver — polls it
/// periodically and throws DeadlineExpiredError once the clock runs out, so
/// wall-clock expiry surfaces through the exact same containment path as
/// fuel exhaustion (sandbox rollback + FaultReport).

#include <chrono>
#include <cstdint>
#include <stdexcept>

namespace posetrl {

/// Thrown by DeadlineScope::poll() when the armed deadline has passed.
class DeadlineExpiredError : public std::runtime_error {
 public:
  explicit DeadlineExpiredError(const std::string& what)
      : std::runtime_error(what) {}
};

/// A monotonic point in time a piece of work must finish by, or "never".
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;

  /// Default-constructed deadlines never expire.
  Deadline() = default;

  static Deadline never() { return Deadline(); }
  static Deadline at(TimePoint tp) { return Deadline(tp); }
  static Deadline after(Clock::duration d) { return Deadline(Clock::now() + d); }
  static Deadline afterMillis(std::int64_t ms) {
    return after(std::chrono::milliseconds(ms));
  }

  bool isNever() const { return never_; }

  bool expired(TimePoint now = Clock::now()) const {
    return !never_ && now >= when_;
  }

  /// Time left on the clock, clamped at zero. Effectively unbounded for
  /// never-deadlines (Clock::duration::max()).
  Clock::duration remaining(TimePoint now = Clock::now()) const;
  std::int64_t remainingMillis(TimePoint now = Clock::now()) const;

  /// The underlying time point; only meaningful when !isNever().
  TimePoint when() const { return when_; }

  /// A deadline \p fraction (in [0,1]) of the way from \p now to this one —
  /// used to reserve the tail of a request's budget for fallback work (e.g.
  /// the -Oz rung of the degradation ladder). Never stays never.
  Deadline fractionFromNow(double fraction,
                           TimePoint now = Clock::now()) const;

  /// The earlier of two deadlines (never counts as latest).
  static Deadline earlier(const Deadline& a, const Deadline& b);

 private:
  explicit Deadline(TimePoint tp) : when_(tp), never_(false) {}

  TimePoint when_{};
  bool never_ = true;
};

/// RAII guard arming a deadline for the current thread (mirror of FuelScope;
/// scopes nest, the destructor restores the enclosing deadline). While armed,
/// poll() throws DeadlineExpiredError once the deadline passes — checked
/// cheaply (throttled clock reads) from FuelScope::consume().
class DeadlineScope {
 public:
  explicit DeadlineScope(Deadline deadline);
  ~DeadlineScope();
  DeadlineScope(const DeadlineScope&) = delete;
  DeadlineScope& operator=(const DeadlineScope&) = delete;

  /// True when a (non-never) deadline is armed on this thread.
  static bool active();

  /// The armed deadline (never() when inactive).
  static Deadline current();

  /// Throws DeadlineExpiredError when an armed deadline has passed; no-op
  /// otherwise. Reads the clock on every call — callers in hot loops should
  /// throttle (FuelScope::consume does).
  static void poll();

 private:
  Deadline prev_;
};

}  // namespace posetrl
