#include "support/arena.h"

#include <cstring>
#include <new>

#include "support/error.h"

namespace posetrl {

namespace {

std::size_t roundUp(std::size_t n, std::size_t align) {
  return (n + align - 1) & ~(align - 1);
}

}  // namespace

BumpArena::BumpArena(std::size_t first_chunk_bytes) {
  addChunk(first_chunk_bytes);
}

BumpArena::~BumpArena() = default;

void BumpArena::addChunk(std::size_t min_bytes) {
  std::size_t size = chunks_.empty() ? min_bytes : chunks_.back().size * 2;
  if (size < min_bytes) size = min_bytes;
  if (size < kAlign) size = kAlign;
  Chunk c;
  c.data = std::make_unique<std::byte[]>(size);
  c.size = size;
  chunks_.push_back(std::move(c));
  used_ = 0;
}

void* BumpArena::allocate(std::size_t bytes) {
  const std::size_t rounded = roundUp(bytes, kAlign);
  POSETRL_CHECK(rounded <= kMaxBlock,
                "BumpArena::allocate beyond kMaxBlock: ", bytes);
  bytes_allocated_ += rounded;
  const std::size_t bucket = rounded / kAlign - 1;
  if (FreeNode* node = free_lists_[bucket]) {
    free_lists_[bucket] = node->next;
    bytes_recycled_ += rounded;
    return node;
  }
  if (used_ + rounded > chunks_.back().size) addChunk(rounded);
  void* p = chunks_.back().data.get() + used_;
  used_ += rounded;
  return p;
}

void BumpArena::deallocate(void* p, std::size_t bytes) noexcept {
  const std::size_t rounded = roundUp(bytes, kAlign);
  const std::size_t bucket = rounded / kAlign - 1;
  FreeNode* node = static_cast<FreeNode*>(p);
  node->next = free_lists_[bucket];
  free_lists_[bucket] = node;
}

void BumpArena::rewindTo(Marker m) noexcept {
  if (m.chunk_index + 1 < chunks_.size()) {
    chunks_.resize(m.chunk_index + 1);
  }
  used_ = m.used;
  std::memset(free_lists_, 0, sizeof(free_lists_));
}

namespace {
thread_local BumpArena* g_current_arena = nullptr;
}  // namespace

ArenaScope::ArenaScope(BumpArena& arena) : prev_(g_current_arena) {
  g_current_arena = &arena;
}

ArenaScope::~ArenaScope() { g_current_arena = prev_; }

BumpArena* ArenaScope::current() { return g_current_arena; }

namespace {

/// Header preceding every arenaAllocate() block: which arena (nullptr =
/// heap) and the total size including the header. 16 bytes keeps the
/// payload 16-aligned.
struct AllocHeader {
  BumpArena* arena;
  std::uint64_t total_size;
};
static_assert(sizeof(AllocHeader) == 16);

}  // namespace

void* arenaAllocate(std::size_t bytes) {
  const std::size_t total = bytes + sizeof(AllocHeader);
  BumpArena* arena = ArenaScope::current();
  void* base;
  if (arena != nullptr && total <= BumpArena::kMaxBlock) {
    base = arena->allocate(total);
  } else {
    base = ::operator new(total);
    arena = nullptr;
  }
  auto* header = static_cast<AllocHeader*>(base);
  header->arena = arena;
  header->total_size = total;
  return static_cast<std::byte*>(base) + sizeof(AllocHeader);
}

void arenaDeallocate(void* p) noexcept {
  if (p == nullptr) return;
  auto* base = reinterpret_cast<AllocHeader*>(static_cast<std::byte*>(p) -
                                              sizeof(AllocHeader));
  if (base->arena != nullptr) {
    base->arena->deallocate(base, static_cast<std::size_t>(base->total_size));
  } else {
    ::operator delete(base);
  }
}

}  // namespace posetrl
