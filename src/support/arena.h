#pragma once

/// \file arena.h
/// Bump-pointer arena for MiniIR objects. A Module owns one BumpArena;
/// Instructions and BasicBlocks created while an ArenaScope for that arena
/// is active are carved out of large chunks instead of individual heap
/// allocations. Pass pipelines churn through instructions (create/erase per
/// pass), so the arena recycles freed blocks through size-bucketed free
/// lists rather than rewinding: interned constants, functions and analysis
/// side tables hold pointers into earlier allocations, and a rewind would
/// turn those into dangling references.
///
/// Ownership rules (see DESIGN.md, "Memory layout and arenas"):
///   - The arena is a memory source, not an owner. Object lifetime is still
///     managed by unique_ptr in the IR containers; `operator delete` returns
///     the block to the arena's free list (or the heap, for objects created
///     outside any scope).
///   - Every allocation carries a 16-byte header recording its source arena
///     and size, so deallocation dispatches correctly no matter which scope
///     (or none) is active at destruction time.
///   - mark()/rewindTo() exists for bulk-discard use cases (and tests); the
///     Module never rewinds its own arena, because live interned values may
///     predate any mark. Rewinding also empties the free lists, since freed
///     blocks may chain through memory past the mark.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace posetrl {

/// Chunked bump allocator with size-bucketed intrusive free lists.
/// Not thread-safe; each Module's arena is touched only by the thread
/// mutating that module (the same contract the IR itself has).
class BumpArena {
 public:
  /// Largest block served from the arena; bigger requests fall back to the
  /// heap (the header marks them so deallocation still works).
  static constexpr std::size_t kMaxBlock = 512;

  explicit BumpArena(std::size_t first_chunk_bytes = 64 * 1024);
  ~BumpArena();
  BumpArena(const BumpArena&) = delete;
  BumpArena& operator=(const BumpArena&) = delete;

  /// Returns a 16-byte-aligned block of at least \p bytes (<= kMaxBlock),
  /// reusing a freed block of the same size class when one is available.
  void* allocate(std::size_t bytes);

  /// Recycles \p p (a block previously returned by allocate with the same
  /// rounded size) into the matching free list.
  void deallocate(void* p, std::size_t bytes) noexcept;

  /// Bulk-discard marker: everything allocated after mark() is invalidated
  /// by rewindTo(). Free lists are emptied as well (freed blocks may live
  /// past the mark). Only safe when no live object allocated after the mark
  /// remains reachable.
  struct Marker {
    std::size_t chunk_index = 0;
    std::size_t used = 0;
  };
  Marker mark() const { return {chunks_.size() - 1, used_}; }
  void rewindTo(Marker m) noexcept;

  // --- introspection (tests, bench) ---
  std::size_t bytesAllocated() const { return bytes_allocated_; }
  std::size_t bytesRecycled() const { return bytes_recycled_; }
  std::size_t chunkCount() const { return chunks_.size(); }

 private:
  static constexpr std::size_t kAlign = 16;
  static constexpr std::size_t kNumBuckets = kMaxBlock / kAlign;

  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };
  struct FreeNode {
    FreeNode* next;
  };

  void addChunk(std::size_t min_bytes);

  std::vector<Chunk> chunks_;
  std::size_t used_ = 0;  ///< bump offset into chunks_.back()
  FreeNode* free_lists_[kNumBuckets] = {};
  std::size_t bytes_allocated_ = 0;
  std::size_t bytes_recycled_ = 0;
};

/// RAII thread-local arena scope: while active, arena-aware `operator new`
/// overloads (Instruction, BasicBlock) draw from this arena. Scopes nest;
/// the innermost wins. Installed around every site that materializes IR for
/// a specific module: parsing, program generation, cloneModule, sandboxed
/// actions, pass sequences, and snapshot restore.
class ArenaScope {
 public:
  explicit ArenaScope(BumpArena& arena);
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  /// The innermost active arena on this thread, or nullptr.
  static BumpArena* current();

 private:
  BumpArena* prev_;
};

/// Allocates \p bytes from the current ArenaScope's arena (heap fallback
/// when none is active or the request exceeds kMaxBlock). The returned
/// block is preceded by a header identifying its source, so
/// arenaDeallocate() works regardless of the scope active at free time.
void* arenaAllocate(std::size_t bytes);
void arenaDeallocate(void* p) noexcept;

}  // namespace posetrl
