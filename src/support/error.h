#pragma once

/// \file error.h
/// Fatal-error and assertion helpers used across the library.
///
/// The library treats internal invariant violations as unrecoverable: a
/// failed check prints a diagnostic (with file/line) and aborts. This mirrors
/// the behaviour of compiler infrastructure (e.g. LLVM's report_fatal_error)
/// where continuing after a broken invariant would corrupt the IR.

#include <cstdlib>
#include <sstream>
#include <string>

namespace posetrl {

/// Prints \p message to stderr with a "posetrl fatal error" banner and aborts.
[[noreturn]] void fatalError(const std::string& message, const char* file,
                             int line);

namespace detail {

/// Builds the textual message for a failed check from a variadic pack.
template <typename... Args>
std::string formatCheckMessage(const char* expr, Args&&... args) {
  std::ostringstream os;
  os << "check failed: " << expr;
  if constexpr (sizeof...(Args) > 0) {
    os << " — ";
    (os << ... << args);
  }
  return os.str();
}

}  // namespace detail

}  // namespace posetrl

/// Always-on invariant check. Usage: POSETRL_CHECK(x > 0, "x was ", x);
#define POSETRL_CHECK(expr, ...)                                         \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::posetrl::fatalError(                                             \
          ::posetrl::detail::formatCheckMessage(#expr, ##__VA_ARGS__),   \
          __FILE__, __LINE__);                                           \
    }                                                                    \
  } while (false)

/// Marks unreachable code paths.
#define POSETRL_UNREACHABLE(msg) \
  ::posetrl::fatalError(std::string("unreachable: ") + (msg), __FILE__, __LINE__)
