#pragma once

/// \file error.h
/// Fatal-error and assertion helpers used across the library.
///
/// The library treats internal invariant violations as unrecoverable: a
/// failed check prints a diagnostic (with file/line) and aborts. This mirrors
/// the behaviour of compiler infrastructure (e.g. LLVM's report_fatal_error)
/// where continuing after a broken invariant would corrupt the IR.

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace posetrl {

/// Catchable form of a fatal error. Raised instead of aborting while a
/// ScopedFaultTrap is active on the current thread (see below), and by
/// recoverable-I/O helpers like loadAgentFromFile on corrupt input.
class FatalError : public std::runtime_error {
 public:
  explicit FatalError(const std::string& what) : std::runtime_error(what) {}
};

/// Prints \p message to stderr with a "posetrl fatal error" banner and
/// aborts — unless a ScopedFaultTrap is active on this thread, in which case
/// it throws FatalError so the caller can contain the failure.
[[noreturn]] void fatalError(const std::string& message, const char* file,
                             int line);

/// Always throws FatalError (for recoverable conditions like corrupt files,
/// where aborting the process would be hostile).
[[noreturn]] void raiseError(const std::string& message);

/// While alive, converts fatalError (and thus POSETRL_CHECK failures) on the
/// current thread into thrown FatalError exceptions. Used by the fault
/// sandbox to contain invariant violations inside a pass instead of killing
/// a long training run. Nests; the outermost destructor disarms the trap.
class ScopedFaultTrap {
 public:
  ScopedFaultTrap();
  ~ScopedFaultTrap();
  ScopedFaultTrap(const ScopedFaultTrap&) = delete;
  ScopedFaultTrap& operator=(const ScopedFaultTrap&) = delete;

  static bool active();
};

namespace detail {

/// Builds the textual message for a failed check from a variadic pack.
template <typename... Args>
std::string formatCheckMessage(const char* expr, Args&&... args) {
  std::ostringstream os;
  os << "check failed: " << expr;
  if constexpr (sizeof...(Args) > 0) {
    os << " — ";
    (os << ... << args);
  }
  return os.str();
}

}  // namespace detail

}  // namespace posetrl

/// Always-on invariant check. Usage: POSETRL_CHECK(x > 0, "x was ", x);
#define POSETRL_CHECK(expr, ...)                                         \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::posetrl::fatalError(                                             \
          ::posetrl::detail::formatCheckMessage(#expr, ##__VA_ARGS__),   \
          __FILE__, __LINE__);                                           \
    }                                                                    \
  } while (false)

/// Marks unreachable code paths.
#define POSETRL_UNREACHABLE(msg) \
  ::posetrl::fatalError(std::string("unreachable: ") + (msg), __FILE__, __LINE__)
