#pragma once

/// \file interpreter.h
/// Deterministic MiniIR executor. Plays two roles in the reproduction:
///
///  1. *Measured execution time*: the paper runs real binaries; we execute
///     MiniIR under a per-target cycle cost model and report modeled cycles.
///  2. *Semantics oracle*: every optimization pass must preserve the
///     observable behaviour (return value + ordered pr.sink effects) of the
///     program — enforced by property tests that compare fingerprints
///     before and after each pass.
///
/// External input is modeled by the pr.input intrinsic, which returns a
/// deterministic value derived from the run's input seed, so executions are
/// exactly reproducible.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "target/target_info.h"

namespace posetrl {

class Module;
class Function;

/// Options controlling one execution.
struct ExecOptions {
  std::string entry = "main";        ///< Entry function (no parameters).
  std::uint64_t input_seed = 1;      ///< Seed for pr.input values.
  std::uint64_t max_steps = 5'000'000;  ///< Fuel (instructions).
  unsigned max_call_depth = 256;
  TargetArch arch = TargetArch::X86_64;  ///< Cost model for cycle account.
};

/// Outcome of one execution.
struct ExecResult {
  bool ok = false;
  std::string trap;              ///< Why execution failed (when !ok).
  bool has_return = false;
  std::int64_t return_value = 0;
  std::uint64_t observed = 0;    ///< Hash of ordered pr.sink/pr.sinkf calls.
  /// First observations feeding `observed` (quantized for pr.sinkf), capped
  /// at kMaxTracedEffects so traces stay cheap; lets the miscompile oracle
  /// point at the first diverging side effect instead of just hash-mismatch.
  std::vector<std::int64_t> effect_trace;
  static constexpr std::size_t kMaxTracedEffects = 64;
  std::uint64_t steps = 0;       ///< Instructions executed.
  double cycles = 0.0;           ///< Modeled dynamic cycles.

  /// Combined behaviour fingerprint (return value + observations); two
  /// semantically equivalent programs must produce equal fingerprints for
  /// the same options.
  std::uint64_t fingerprint() const;
};

/// Executes \p module's entry function under \p options.
ExecResult runModule(Module& module, const ExecOptions& options = {});

}  // namespace posetrl
