#include "interp/interpreter.h"

#include <cstring>
#include <unordered_map>

#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/global_variable.h"
#include "ir/instruction.h"
#include "ir/module.h"
#include "support/error.h"
#include "support/hashing.h"

namespace posetrl {

std::uint64_t ExecResult::fingerprint() const {
  std::uint64_t h = observed;
  h = hashCombine(h, has_return ? static_cast<std::uint64_t>(return_value)
                                : 0x517cc1b727220a95ull);
  h = hashCombine(h, ok ? 1 : 0);
  return h;
}

namespace {

/// A runtime scalar (integers/pointers in `i`, floats in `f`).
struct RtValue {
  std::int64_t i = 0;
  double f = 0.0;
};

/// Thrown to abort execution with a trap reason.
struct Trap {
  std::string reason;
};

/// Byte-addressable simulated memory made of disjoint regions.
class SimMemory {
 public:
  std::uint64_t allocate(std::uint64_t size) {
    const std::uint64_t base = next_;
    next_ += (size + 31) & ~31ull;
    regions_[base] = std::vector<std::uint8_t>(size, 0);
    return base;
  }

  void release(std::uint64_t base) { regions_.erase(base); }

  std::uint8_t* locate(std::uint64_t addr, std::uint64_t size) {
    if (addr == 0) throw Trap{"null pointer access"};
    auto it = regions_.upper_bound(addr);
    if (it == regions_.begin()) throw Trap{"wild pointer access"};
    --it;
    const std::uint64_t off = addr - it->first;
    if (off + size > it->second.size()) {
      throw Trap{"out-of-bounds memory access"};
    }
    return it->second.data() + off;
  }

 private:
  std::map<std::uint64_t, std::vector<std::uint8_t>> regions_;
  std::uint64_t next_ = 0x10000;
};

class Machine {
 public:
  Machine(Module& m, const ExecOptions& opts)
      : module_(m), opts_(opts), target_(TargetInfo::forArch(opts.arch)) {
    initGlobals();
  }

  ExecResult run() {
    ExecResult result;
    Function* entry = module_.getFunction(opts_.entry);
    if (entry == nullptr || entry->isDeclaration()) {
      result.trap = "entry function not found: " + opts_.entry;
      return result;
    }
    if (entry->numArgs() != 0) {
      result.trap = "entry function must take no arguments";
      return result;
    }
    try {
      RtValue ret = callFunction(entry, {}, 0);
      result.ok = true;
      if (!entry->returnType()->isVoid()) {
        result.has_return = true;
        result.return_value = entry->returnType()->isFloat()
                                  ? static_cast<std::int64_t>(ret.f * 4096.0)
                                  : ret.i;
      }
    } catch (const Trap& trap) {
      result.trap = trap.reason;
    }
    result.observed = observed_;
    result.effect_trace = std::move(effect_trace_);
    result.steps = steps_;
    result.cycles = cycles_;
    return result;
  }

 private:
  using Env = std::unordered_map<const Value*, RtValue>;

  void initGlobals() {
    for (const auto& g : module_.globals()) {
      const std::uint64_t size = g->valueType()->byteSize();
      const std::uint64_t base = memory_.allocate(size == 0 ? 8 : size);
      global_addr_[g.get()] = base;
    }
    // Function "addresses" for indirect calls.
    std::uint64_t fn_addr = 0x1000;
    for (const auto& f : module_.functions()) {
      fn_addr += 16;
      fn_by_addr_[fn_addr] = f.get();
      fn_addr_[f.get()] = fn_addr;
    }
    // Initializers (may reference function addresses).
    for (const auto& g : module_.globals()) {
      const std::uint64_t base = global_addr_.at(g.get());
      const GlobalInit& init = g->init();
      Type* vt = g->valueType();
      switch (init.kind) {
        case GlobalInit::Kind::Zero:
          break;
        case GlobalInit::Kind::Int:
          storeBits(base, static_cast<std::uint64_t>(init.int_value),
                    vt->byteSize());
          break;
        case GlobalInit::Kind::Float: {
          std::uint64_t bits = 0;
          std::memcpy(&bits, &init.float_value, 8);
          storeBits(base, bits, 8);
          break;
        }
        case GlobalInit::Kind::IntArray: {
          const std::uint64_t esize = vt->arrayElement()->byteSize();
          for (std::size_t i = 0; i < init.elements.size(); ++i) {
            storeBits(base + i * esize,
                      static_cast<std::uint64_t>(init.elements[i]), esize);
          }
          break;
        }
        case GlobalInit::Kind::FuncPtr:
          storeBits(base, fn_addr_.at(init.function), 8);
          break;
      }
    }
  }

  void storeBits(std::uint64_t addr, std::uint64_t bits, std::uint64_t size) {
    std::uint8_t* p = memory_.locate(addr, size);
    for (std::uint64_t i = 0; i < size; ++i) {
      p[i] = static_cast<std::uint8_t>(bits >> (8 * i));
    }
  }

  std::uint64_t loadBits(std::uint64_t addr, std::uint64_t size) {
    const std::uint8_t* p = memory_.locate(addr, size);
    std::uint64_t bits = 0;
    for (std::uint64_t i = 0; i < size; ++i) {
      bits |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    }
    return bits;
  }

  RtValue evaluate(const Value* v, const Env& env) {
    switch (v->kind()) {
      case Value::Kind::ConstantInt:
        return {static_cast<const ConstantInt*>(v)->value(), 0.0};
      case Value::Kind::ConstantFloat:
        return {0, static_cast<const ConstantFloat*>(v)->value()};
      case Value::Kind::ConstantNull:
        return {0, 0.0};
      case Value::Kind::Undef:
        // Deterministic choice keeps equivalence checks stable.
        return {0, 0.0};
      case Value::Kind::GlobalVariable:
        return {static_cast<std::int64_t>(
                    global_addr_.at(static_cast<const GlobalVariable*>(v))),
                0.0};
      case Value::Kind::Function:
        return {static_cast<std::int64_t>(
                    fn_addr_.at(const_cast<Function*>(
                        static_cast<const Function*>(v)))),
                0.0};
      case Value::Kind::Argument:
      case Value::Kind::Instruction: {
        auto it = env.find(v);
        if (it == env.end()) throw Trap{"read of unset SSA value"};
        return it->second;
      }
      case Value::Kind::BasicBlock:
        throw Trap{"block used as data operand"};
    }
    POSETRL_UNREACHABLE("bad value kind");
  }

  static std::int64_t canon(std::int64_t v, Type* t) {
    return ConstantInt::canonicalize(v, t->intBits());
  }

  RtValue execBinary(const Instruction& inst, RtValue a, RtValue b) {
    Type* t = inst.type();
    switch (inst.opcode()) {
      case Opcode::Add: return {canon(a.i + b.i, t), 0.0};
      case Opcode::Sub: return {canon(a.i - b.i, t), 0.0};
      case Opcode::Mul: return {canon(a.i * b.i, t), 0.0};
      case Opcode::SDiv:
        if (b.i == 0) throw Trap{"division by zero"};
        if (a.i == INT64_MIN && b.i == -1) throw Trap{"division overflow"};
        return {canon(a.i / b.i, t), 0.0};
      case Opcode::UDiv: {
        if (b.i == 0) throw Trap{"division by zero"};
        const std::uint64_t ua = zextBits(a.i, t);
        const std::uint64_t ub = zextBits(b.i, t);
        return {canon(static_cast<std::int64_t>(ua / ub), t), 0.0};
      }
      case Opcode::SRem:
        if (b.i == 0) throw Trap{"remainder by zero"};
        if (a.i == INT64_MIN && b.i == -1) throw Trap{"remainder overflow"};
        return {canon(a.i % b.i, t), 0.0};
      case Opcode::URem: {
        if (b.i == 0) throw Trap{"remainder by zero"};
        const std::uint64_t ua = zextBits(a.i, t);
        const std::uint64_t ub = zextBits(b.i, t);
        return {canon(static_cast<std::int64_t>(ua % ub), t), 0.0};
      }
      case Opcode::Shl: {
        const std::uint64_t sh = zextBits(b.i, t) % t->intBits();
        return {canon(static_cast<std::int64_t>(zextBits(a.i, t) << sh), t),
                0.0};
      }
      case Opcode::LShr: {
        const std::uint64_t sh = zextBits(b.i, t) % t->intBits();
        return {canon(static_cast<std::int64_t>(zextBits(a.i, t) >> sh), t),
                0.0};
      }
      case Opcode::AShr: {
        const std::uint64_t sh = zextBits(b.i, t) % t->intBits();
        return {canon(a.i >> sh, t), 0.0};
      }
      case Opcode::And: return {canon(a.i & b.i, t), 0.0};
      case Opcode::Or: return {canon(a.i | b.i, t), 0.0};
      case Opcode::Xor: return {canon(a.i ^ b.i, t), 0.0};
      case Opcode::FAdd: return {0, a.f + b.f};
      case Opcode::FSub: return {0, a.f - b.f};
      case Opcode::FMul: return {0, a.f * b.f};
      case Opcode::FDiv: return {0, a.f / b.f};
      default:
        POSETRL_UNREACHABLE("non-binary opcode in execBinary");
    }
  }

  static std::uint64_t zextBits(std::int64_t v, Type* t) {
    const unsigned bits = t->intBits();
    if (bits == 64) return static_cast<std::uint64_t>(v);
    return static_cast<std::uint64_t>(v) & ((1ull << bits) - 1);
  }

  std::uint64_t gepAddress(const GepInst& gep, const Env& env) {
    const RtValue base = evaluate(gep.base(), env);
    std::uint64_t addr = static_cast<std::uint64_t>(base.i);
    Type* cur = gep.sourceElement();
    for (std::size_t k = 0; k < gep.numIndices(); ++k) {
      const std::int64_t idx = evaluate(gep.index(k), env).i;
      if (k == 0) {
        addr += static_cast<std::uint64_t>(idx) * cur->byteSize();
      } else if (cur->isArray()) {
        cur = cur->arrayElement();
        addr += static_cast<std::uint64_t>(idx) * cur->byteSize();
      } else if (cur->isStruct()) {
        addr += cur->structFieldOffset(static_cast<std::size_t>(idx));
        cur = cur->structFields().at(static_cast<std::size_t>(idx));
      } else {
        throw Trap{"gep into non-aggregate"};
      }
    }
    return addr;
  }

  RtValue loadTyped(std::uint64_t addr, Type* t) {
    if (t->isFloat()) {
      const std::uint64_t bits = loadBits(addr, 8);
      double d = 0.0;
      std::memcpy(&d, &bits, 8);
      return {0, d};
    }
    if (t->isPointer()) {
      return {static_cast<std::int64_t>(loadBits(addr, 8)), 0.0};
    }
    if (t->isInteger()) {
      const std::uint64_t size = t->byteSize();
      const std::uint64_t bits = loadBits(addr, size);
      return {canon(static_cast<std::int64_t>(bits), t), 0.0};
    }
    throw Trap{"load of non-scalar type"};
  }

  void storeTyped(std::uint64_t addr, Type* t, RtValue v) {
    if (t->isFloat()) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &v.f, 8);
      storeBits(addr, bits, 8);
      return;
    }
    if (t->isPointer()) {
      storeBits(addr, static_cast<std::uint64_t>(v.i), 8);
      return;
    }
    if (t->isInteger()) {
      storeBits(addr, static_cast<std::uint64_t>(v.i), t->byteSize());
      return;
    }
    throw Trap{"store of non-scalar type"};
  }

  void recordEffect(std::int64_t v) {
    if (effect_trace_.size() < ExecResult::kMaxTracedEffects) {
      effect_trace_.push_back(v);
    }
  }

  RtValue handleIntrinsic(Function* callee, const std::vector<RtValue>& args) {
    switch (callee->intrinsicId()) {
      case IntrinsicId::Input: {
        const std::uint64_t key = static_cast<std::uint64_t>(args.at(0).i);
        const std::uint64_t raw =
            mix64(opts_.input_seed * 0x9e3779b97f4a7c15ull + key);
        // Keep inputs small and non-negative so trip counts stay bounded.
        return {static_cast<std::int64_t>(raw % 1024), 0.0};
      }
      case IntrinsicId::Sink:
        observed_ = hashCombine(observed_,
                                static_cast<std::uint64_t>(args.at(0).i));
        recordEffect(args.at(0).i);
        return {};
      case IntrinsicId::SinkF64: {
        // Quantize so algebraically equal results with tiny representation
        // differences still fingerprint identically.
        const double q = args.at(0).f * 4096.0;
        observed_ = hashCombine(
            observed_, static_cast<std::uint64_t>(static_cast<std::int64_t>(q)));
        recordEffect(static_cast<std::int64_t>(q));
        return {};
      }
      case IntrinsicId::Memset: {
        const std::uint64_t addr = static_cast<std::uint64_t>(args.at(0).i);
        const std::uint8_t byte = static_cast<std::uint8_t>(args.at(1).i);
        // The count argument is in elements of the pointee type (1 byte for
        // the plain pr.memset variant).
        Type* ptr_param = callee->functionType()->funcParams().at(0);
        const std::uint64_t elem_size = ptr_param->pointee()->byteSize();
        const std::uint64_t len =
            static_cast<std::uint64_t>(args.at(2).i) * elem_size;
        if (len > 0) {
          std::uint8_t* p = memory_.locate(addr, len);
          std::memset(p, byte, len);
        }
        return {};
      }
      case IntrinsicId::Expect:
        return args.at(0);
      case IntrinsicId::Assume:
      case IntrinsicId::AssumeAligned:
        return {};
      case IntrinsicId::None:
        throw Trap{"call to undefined external function @" + callee->name()};
    }
    POSETRL_UNREACHABLE("bad intrinsic");
  }

  RtValue callFunction(Function* f, const std::vector<RtValue>& args,
                       unsigned depth) {
    if (depth > opts_.max_call_depth) throw Trap{"call depth exceeded"};
    Env env;
    for (std::size_t i = 0; i < f->numArgs(); ++i) env[f->arg(i)] = args[i];
    std::vector<std::uint64_t> frame_allocas;

    BasicBlock* block = f->entry();
    BasicBlock* prev = nullptr;
    for (;;) {
      // Phase 1: evaluate all phis against the incoming edge.
      if (prev != nullptr) {
        std::vector<std::pair<const PhiInst*, RtValue>> phi_values;
        for (PhiInst* phi : block->phis()) {
          phi_values.emplace_back(
              phi, evaluate(phi->incomingForBlock(prev), env));
        }
        for (auto& [phi, v] : phi_values) env[phi] = v;
      } else {
        for (PhiInst* phi : block->phis()) {
          if (phi->numIncoming() > 0) {
            throw Trap{"phi in entry block with incoming edges"};
          }
        }
      }

      for (auto it = block->firstNonPhi(); it != block->end(); ++it) {
        Instruction* inst = it->get();
        if (++steps_ > opts_.max_steps) throw Trap{"fuel exhausted"};
        {
          const InstCost c = target_.cost(*inst);
          cycles_ += c.rthroughput + 0.25 * c.latency +
                     c.uops / target_.dispatchWidth();
        }
        switch (inst->opcode()) {
          case Opcode::Alloca: {
            const auto* a = static_cast<const AllocaInst*>(inst);
            const std::uint64_t size = a->allocatedType()->byteSize();
            const std::uint64_t base = memory_.allocate(size == 0 ? 8 : size);
            frame_allocas.push_back(base);
            env[inst] = {static_cast<std::int64_t>(base), 0.0};
            break;
          }
          case Opcode::Load: {
            const auto* l = static_cast<const LoadInst*>(inst);
            const RtValue p = evaluate(l->pointer(), env);
            env[inst] =
                loadTyped(static_cast<std::uint64_t>(p.i), l->type());
            break;
          }
          case Opcode::Store: {
            const auto* s = static_cast<const StoreInst*>(inst);
            const RtValue v = evaluate(s->value(), env);
            const RtValue p = evaluate(s->pointer(), env);
            storeTyped(static_cast<std::uint64_t>(p.i), s->value()->type(),
                       v);
            break;
          }
          case Opcode::Gep: {
            const auto* g = static_cast<const GepInst*>(inst);
            env[inst] = {static_cast<std::int64_t>(gepAddress(*g, env)),
                         0.0};
            break;
          }
          case Opcode::Select: {
            const auto* s = static_cast<const SelectInst*>(inst);
            const RtValue c = evaluate(s->condition(), env);
            env[inst] = evaluate(c.i != 0 ? s->trueValue() : s->falseValue(),
                                 env);
            break;
          }
          case Opcode::ICmp: {
            const auto* c = static_cast<const ICmpInst*>(inst);
            const RtValue a = evaluate(c->lhs(), env);
            const RtValue b = evaluate(c->rhs(), env);
            Type* t = c->lhs()->type();
            const unsigned bits = t->isPointer() ? 64 : t->intBits();
            env[inst] = {ICmpInst::evaluate(c->pred(), a.i, b.i, bits) ? 1
                                                                       : 0,
                         0.0};
            break;
          }
          case Opcode::FCmp: {
            const auto* c = static_cast<const FCmpInst*>(inst);
            const RtValue a = evaluate(c->lhs(), env);
            const RtValue b = evaluate(c->rhs(), env);
            env[inst] = {FCmpInst::evaluate(c->pred(), a.f, b.f) ? 1 : 0,
                         0.0};
            break;
          }
          case Opcode::ZExt: {
            const RtValue v = evaluate(inst->operand(0), env);
            env[inst] = {canon(static_cast<std::int64_t>(zextBits(
                                   v.i, inst->operand(0)->type())),
                               inst->type()),
                         0.0};
            break;
          }
          case Opcode::SExt:
            env[inst] = {canon(evaluate(inst->operand(0), env).i,
                               inst->type()),
                         0.0};
            break;
          case Opcode::Trunc:
            env[inst] = {canon(evaluate(inst->operand(0), env).i,
                               inst->type()),
                         0.0};
            break;
          case Opcode::SIToFP:
            env[inst] = {0, static_cast<double>(
                                evaluate(inst->operand(0), env).i)};
            break;
          case Opcode::FPToSI: {
            const double d = evaluate(inst->operand(0), env).f;
            if (!(d >= -9.2e18 && d <= 9.2e18)) {
              throw Trap{"fptosi out of range"};
            }
            env[inst] = {canon(static_cast<std::int64_t>(d), inst->type()),
                         0.0};
            break;
          }
          case Opcode::Call: {
            const auto* call = static_cast<const CallInst*>(inst);
            Function* callee = call->calledFunction();
            if (callee == nullptr) {
              const RtValue target = evaluate(call->callee(), env);
              auto fit = fn_by_addr_.find(
                  static_cast<std::uint64_t>(target.i));
              if (fit == fn_by_addr_.end()) {
                throw Trap{"indirect call to invalid address"};
              }
              callee = fit->second;
            }
            std::vector<RtValue> call_args;
            call_args.reserve(call->numArgs());
            for (std::size_t i = 0; i < call->numArgs(); ++i) {
              call_args.push_back(evaluate(call->arg(i), env));
            }
            RtValue ret;
            if (callee->isDeclaration()) {
              ret = handleIntrinsic(callee, call_args);
            } else {
              ret = callFunction(callee, call_args, depth + 1);
            }
            if (!inst->type()->isVoid()) env[inst] = ret;
            break;
          }
          case Opcode::Ret: {
            const auto* r = static_cast<const RetInst*>(inst);
            RtValue ret;
            if (r->hasValue()) ret = evaluate(r->value(), env);
            for (std::uint64_t base : frame_allocas) memory_.release(base);
            return ret;
          }
          case Opcode::Br:
            prev = block;
            block = inst->successor(0);
            goto next_block;
          case Opcode::CondBr: {
            const auto* cbr = static_cast<const CondBrInst*>(inst);
            const RtValue c = evaluate(cbr->condition(), env);
            prev = block;
            block = c.i != 0 ? cbr->thenBlock() : cbr->elseBlock();
            goto next_block;
          }
          case Opcode::Switch: {
            const auto* sw = static_cast<const SwitchInst*>(inst);
            const RtValue c = evaluate(sw->condition(), env);
            BasicBlock* target = sw->defaultBlock();
            for (std::size_t i = 0; i < sw->numCases(); ++i) {
              if (sw->caseValue(i)->value() == c.i) {
                target = sw->caseBlock(i);
                break;
              }
            }
            prev = block;
            block = target;
            goto next_block;
          }
          case Opcode::Unreachable:
            throw Trap{"executed unreachable"};
          default:
            if (inst->isBinaryOp()) {
              const RtValue a = evaluate(inst->operand(0), env);
              const RtValue b = evaluate(inst->operand(1), env);
              env[inst] = execBinary(*inst, a, b);
              break;
            }
            POSETRL_UNREACHABLE("unhandled opcode in interpreter");
        }
      }
      throw Trap{"fell off end of block " + block->name()};
    next_block:;
    }
  }

  Module& module_;
  const ExecOptions& opts_;
  const TargetInfo& target_;
  SimMemory memory_;
  std::map<const GlobalVariable*, std::uint64_t> global_addr_;
  std::map<std::uint64_t, Function*> fn_by_addr_;
  std::map<Function*, std::uint64_t> fn_addr_;
  std::uint64_t observed_ = kFnvOffset;
  std::vector<std::int64_t> effect_trace_;
  std::uint64_t steps_ = 0;
  double cycles_ = 0.0;
};

}  // namespace

ExecResult runModule(Module& module, const ExecOptions& options) {
  Machine machine(module, options);
  return machine.run();
}

}  // namespace posetrl
