#pragma once

/// \file module.h
/// Top-level MiniIR container: owns the type context, interned constants,
/// global variables, and functions. One Module corresponds to one translation
/// unit / one RL-environment state in the POSET-RL loop.

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>

#include "ir/function.h"
#include "ir/global_variable.h"
#include "ir/type.h"
#include "ir/value.h"

namespace posetrl {

/// A MiniIR translation unit.
class Module {
 public:
  explicit Module(std::string name);
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }
  TypeContext& types() { return types_; }

  // --- Constants (interned; stable for the module's lifetime) ---
  ConstantInt* constantInt(Type* type, std::int64_t value);
  ConstantInt* i64Const(std::int64_t value);
  ConstantInt* i32Const(std::int64_t value);
  ConstantInt* i1Const(bool value);
  ConstantFloat* constantFloat(double value);
  ConstantNull* nullConst(Type* ptr_type);
  UndefValue* undef(Type* type);

  // --- Functions ---
  using FuncList = std::list<std::unique_ptr<Function>>;
  const FuncList& functions() const { return functions_; }
  FuncList::iterator functionsBegin() { return functions_.begin(); }
  FuncList::iterator functionsEnd() { return functions_.end(); }
  Function* getFunction(const std::string& name) const;
  /// Creates a new function (name must be unused).
  Function* createFunction(const std::string& name, Type* func_type,
                           Function::Linkage linkage);
  /// Returns the existing function of this name or creates a declaration.
  Function* getOrInsertFunction(const std::string& name, Type* func_type);
  /// Unlinks and destroys \p f (must have no uses).
  void eraseFunction(Function* f);

  /// Declaration of a modeled intrinsic (created on demand).
  Function* getIntrinsic(IntrinsicId id);
  /// Alignment-assumption intrinsic specialized on pointee type \p elem.
  Function* getAssumeAligned(Type* elem);

  /// Memset intrinsic specialized on element type \p elem:
  /// pr.memset.<T>(ptr<T>, i8 byte, i64 count) fills count*sizeof(T) bytes.
  Function* getMemsetFor(Type* elem);

  // --- Globals ---
  using GlobalList = std::list<std::unique_ptr<GlobalVariable>>;
  const GlobalList& globals() const { return globals_; }
  GlobalVariable* getGlobal(const std::string& name) const;
  GlobalVariable* createGlobal(const std::string& name, Type* value_type,
                               GlobalInit init,
                               GlobalVariable::Linkage linkage,
                               bool is_const = false);
  void eraseGlobal(GlobalVariable* g);

  /// Total instruction count over all function bodies.
  std::size_t instructionCount() const;

 private:
  std::string name_;
  TypeContext types_;
  FuncList functions_;
  GlobalList globals_;

  std::map<std::pair<Type*, std::int64_t>, std::unique_ptr<ConstantInt>>
      int_constants_;
  std::map<std::uint64_t, std::unique_ptr<ConstantFloat>> float_constants_;
  std::map<Type*, std::unique_ptr<ConstantNull>> null_constants_;
  std::map<Type*, std::unique_ptr<UndefValue>> undef_constants_;
};

}  // namespace posetrl
