#pragma once

/// \file module.h
/// Top-level MiniIR container: owns the type context, interned constants,
/// global variables, and functions. One Module corresponds to one translation
/// unit / one RL-environment state in the POSET-RL loop.

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>

#include "ir/function.h"
#include "ir/global_variable.h"
#include "ir/type.h"
#include "ir/value.h"
#include "support/arena.h"

namespace posetrl {

/// A MiniIR translation unit.
class Module {
 public:
  explicit Module(std::string name);
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }
  TypeContext& types() { return types_; }

  /// Bump arena feeding Instruction/BasicBlock storage while an ArenaScope
  /// for it is active (parsing, generation, cloning, pass execution,
  /// snapshot restore). Declared first in the member list so it outlives
  /// every IR container during destruction.
  BumpArena& arena() { return arena_; }

  /// Object-identity generation: bumped whenever IR objects of this module
  /// are destroyed and recreated wholesale (ModuleSnapshot::restoreInto).
  /// Pointer-holding caches (AnalysisManager results) compare their
  /// recorded generation against this and self-invalidate on mismatch even
  /// when the content fingerprint matches — restored blocks/instructions
  /// are new objects at new addresses.
  std::uint64_t irGeneration() const { return ir_generation_; }
  void bumpIrGeneration() { ++ir_generation_; }

  /// Content stamp: a cheap O(1) proxy for "has the IR changed since".
  /// Bumped after every pass execution that may have mutated the module;
  /// restored (not re-bumped) on snapshot rollback, so a stamp value maps
  /// to exactly one module content for the module's lifetime (the monotonic
  /// high-water counter is never rolled back). Consumers: the environment's
  /// embedding-hash memo (O(1) cache hits).
  std::uint64_t contentStamp() const { return content_stamp_; }
  void bumpContentStamp() { content_stamp_ = ++next_content_stamp_; }

  // --- Constants (interned; stable for the module's lifetime) ---
  ConstantInt* constantInt(Type* type, std::int64_t value);
  ConstantInt* i64Const(std::int64_t value);
  ConstantInt* i32Const(std::int64_t value);
  ConstantInt* i1Const(bool value);
  ConstantFloat* constantFloat(double value);
  ConstantNull* nullConst(Type* ptr_type);
  UndefValue* undef(Type* type);

  // --- Functions ---
  using FuncList = std::list<std::unique_ptr<Function>>;
  const FuncList& functions() const { return functions_; }
  FuncList::iterator functionsBegin() { return functions_.begin(); }
  FuncList::iterator functionsEnd() { return functions_.end(); }
  Function* getFunction(const std::string& name) const;
  /// Creates a new function (name must be unused).
  Function* createFunction(const std::string& name, Type* func_type,
                           Function::Linkage linkage);
  /// Returns the existing function of this name or creates a declaration.
  Function* getOrInsertFunction(const std::string& name, Type* func_type);
  /// Unlinks and destroys \p f (must have no uses).
  void eraseFunction(Function* f);

  /// Declaration of a modeled intrinsic (created on demand).
  Function* getIntrinsic(IntrinsicId id);
  /// Alignment-assumption intrinsic specialized on pointee type \p elem.
  Function* getAssumeAligned(Type* elem);

  /// Memset intrinsic specialized on element type \p elem:
  /// pr.memset.<T>(ptr<T>, i8 byte, i64 count) fills count*sizeof(T) bytes.
  Function* getMemsetFor(Type* elem);

  // --- Globals ---
  using GlobalList = std::list<std::unique_ptr<GlobalVariable>>;
  const GlobalList& globals() const { return globals_; }
  GlobalVariable* getGlobal(const std::string& name) const;
  GlobalVariable* createGlobal(const std::string& name, Type* value_type,
                               GlobalInit init,
                               GlobalVariable::Linkage linkage,
                               bool is_const = false);
  void eraseGlobal(GlobalVariable* g);

  /// Total instruction count over all function bodies.
  std::size_t instructionCount() const;

 private:
  friend class ModuleSnapshot;

  /// Restore-only: reinstates a recorded stamp after rollback. Private so
  /// ordinary code can only move the stamp forward via bumpContentStamp().
  void restoreContentStamp(std::uint64_t stamp) { content_stamp_ = stamp; }

  BumpArena arena_;  // first: outlives all IR containers below
  std::string name_;
  TypeContext types_;
  FuncList functions_;
  GlobalList globals_;
  std::uint64_t ir_generation_ = 0;
  std::uint64_t content_stamp_ = 0;
  std::uint64_t next_content_stamp_ = 0;

  std::map<std::pair<Type*, std::int64_t>, std::unique_ptr<ConstantInt>>
      int_constants_;
  std::map<std::uint64_t, std::unique_ptr<ConstantFloat>> float_constants_;
  std::map<Type*, std::unique_ptr<ConstantNull>> null_constants_;
  std::map<Type*, std::unique_ptr<UndefValue>> undef_constants_;
};

}  // namespace posetrl
