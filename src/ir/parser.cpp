#include "ir/parser.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/global_variable.h"
#include "ir/instruction.h"
#include "ir/module.h"

namespace posetrl {

namespace {

/// Thrown internally on parse errors; converted to the error string at the
/// API boundary.
struct ParseError {
  std::string message;
  int line;
};

/// Character-level tokenizer + recursive-descent parser.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::unique_ptr<Module> run() {
    expectWord("module");
    module_ = std::make_unique<Module>(parseQuotedString());
    ArenaScope arena_scope(module_->arena());
    skipSpace();
    while (!atEnd()) {
      const std::string word = peekWord();
      if (word == "global") {
        parseGlobal();
      } else if (word == "declare") {
        parseDeclare();
      } else if (word == "define") {
        parseDefine();
      } else {
        fail("expected 'global', 'declare' or 'define', got '" + word + "'");
      }
      skipSpace();
    }
    for (const auto& [global_name, fn_name] : pending_funcptrs_) {
      Function* f = module_->getFunction(fn_name);
      if (f == nullptr) {
        fail("funcptr init references unknown @" + fn_name);
      }
      module_->getGlobal(global_name)->setInit(GlobalInit::ofFuncPtr(f));
    }
    return std::move(module_);
  }

 private:
  // ---- character/token layer ----

  [[noreturn]] void fail(const std::string& msg) {
    throw ParseError{msg, line_};
  }

  bool atEnd() {
    skipSpace();
    return pos_ >= text_.size();
  }

  void skipSpace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (c == ' ' || c == '\t' || c == '\r') {
        ++pos_;
      } else if (c == ';') {  // Line comment.
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  char peekChar() {
    skipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool tryConsume(char c) {
    if (peekChar() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!tryConsume(c)) {
      fail(std::string("expected '") + c + "'");
    }
  }

  bool tryConsumeArrow() {
    skipSpace();
    if (pos_ + 1 < text_.size() && text_[pos_] == '-' &&
        text_[pos_ + 1] == '>') {
      pos_ += 2;
      return true;
    }
    return false;
  }

  static bool isWordChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.' || c == '-';
  }

  /// Reads an identifier-like word (letters, digits, '_', '.', '-').
  std::string parseWord() {
    skipSpace();
    std::size_t start = pos_;
    while (pos_ < text_.size() && isWordChar(text_[pos_])) ++pos_;
    if (pos_ == start) fail("expected identifier");
    return text_.substr(start, pos_ - start);
  }

  std::string peekWord() {
    skipSpace();
    std::size_t p = pos_;
    while (p < text_.size() && isWordChar(text_[p])) ++p;
    return text_.substr(pos_, p - pos_);
  }

  void expectWord(const std::string& w) {
    const std::string got = parseWord();
    if (got != w) fail("expected '" + w + "', got '" + got + "'");
  }

  bool tryWord(const std::string& w) {
    skipSpace();
    std::size_t p = pos_;
    std::size_t i = 0;
    while (i < w.size() && p < text_.size() && text_[p] == w[i]) {
      ++p;
      ++i;
    }
    if (i == w.size() && (p >= text_.size() || !isWordChar(text_[p]))) {
      pos_ = p;
      return true;
    }
    return false;
  }

  std::string parseQuotedString() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      out += text_[pos_++];
    }
    expect('"');
    return out;
  }

  std::int64_t parseInt() {
    skipSpace();
    std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) fail("expected integer");
    return std::strtoll(text_.substr(start, pos_ - start).c_str(), nullptr,
                        10);
  }

  double parseDouble() {
    skipSpace();
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) fail("expected floating-point literal");
    pos_ += static_cast<std::size_t>(end - begin);
    return v;
  }

  // ---- types ----

  Type* parseType() {
    TypeContext& tc = module_->types();
    if (tryConsume('[')) {
      const std::int64_t n = parseInt();
      expectWord("x");
      Type* elem = parseType();
      expect(']');
      return tc.arrayOf(elem, static_cast<std::uint64_t>(n));
    }
    if (tryConsume('{')) {
      std::vector<Type*> fields;
      if (!tryConsume('}')) {
        do {
          fields.push_back(parseType());
        } while (tryConsume(','));
        expect('}');
      }
      return tc.structOf(std::move(fields));
    }
    const std::string w = parseWord();
    if (w == "void") return tc.voidTy();
    if (w == "i1") return tc.i1();
    if (w == "i8") return tc.i8();
    if (w == "i16") return tc.i16();
    if (w == "i32") return tc.i32();
    if (w == "i64") return tc.i64();
    if (w == "f64") return tc.f64();
    if (w == "ptr") {
      expect('<');
      Type* p = parseType();
      expect('>');
      return tc.ptrTo(p);
    }
    if (w == "fn") {
      expect('(');
      std::vector<Type*> params;
      if (!tryConsume(')')) {
        do {
          params.push_back(parseType());
        } while (tryConsume(','));
        expect(')');
      }
      if (!tryConsumeArrow()) fail("expected '->' in function type");
      Type* ret = parseType();
      return tc.funcType(ret, std::move(params));
    }
    fail("unknown type '" + w + "'");
  }

  // ---- module-level entities ----

  void parseGlobal() {
    expectWord("global");
    expect('@');
    const std::string name = parseWord();
    expect(':');
    Type* vt = parseType();
    expect('=');
    GlobalInit init;
    const std::string kind = parseWord();
    if (kind == "zero") {
      init = GlobalInit::zero();
    } else if (kind == "int") {
      init = GlobalInit::ofInt(parseInt());
    } else if (kind == "float") {
      init = GlobalInit::ofFloat(parseDouble());
    } else if (kind == "array") {
      expect('[');
      std::vector<std::int64_t> elems;
      if (!tryConsume(']')) {
        do {
          elems.push_back(parseInt());
        } while (tryConsume(','));
        expect(']');
      }
      init = GlobalInit::ofIntArray(std::move(elems));
    } else if (kind == "funcptr") {
      expect('@');
      const std::string fname = parseWord();
      if (Function* f = module_->getFunction(fname)) {
        init = GlobalInit::ofFuncPtr(f);
      } else {
        // The function may be declared later in the module; resolve at the
        // end of parsing.
        init = GlobalInit::zero();
        pending_funcptrs_.emplace_back(name, fname);
      }
    } else {
      fail("unknown global initializer kind '" + kind + "'");
    }
    expect(',');
    const std::string linkage = parseWord();
    auto lk = GlobalVariable::Linkage::External;
    if (linkage == "internal") {
      lk = GlobalVariable::Linkage::Internal;
    } else if (linkage != "external") {
      fail("bad linkage '" + linkage + "'");
    }
    bool is_const = false;
    if (tryConsume(',')) {
      expectWord("const");
      is_const = true;
    }
    module_->createGlobal(name, vt, std::move(init), lk, is_const);
  }

  std::uint32_t parseAttrList() {
    std::uint32_t attrs = 0;
    expect('[');
    if (tryConsume(']')) return attrs;
    do {
      const std::string a = parseWord();
      if (a == "noinline") attrs |= static_cast<std::uint32_t>(FnAttr::NoInline);
      else if (a == "alwaysinline") attrs |= static_cast<std::uint32_t>(FnAttr::AlwaysInline);
      else if (a == "readnone") attrs |= static_cast<std::uint32_t>(FnAttr::ReadNone);
      else if (a == "readonly") attrs |= static_cast<std::uint32_t>(FnAttr::ReadOnly);
      else if (a == "nounwind") attrs |= static_cast<std::uint32_t>(FnAttr::NoUnwind);
      else if (a == "noreturn") attrs |= static_cast<std::uint32_t>(FnAttr::NoReturn);
      else if (a == "cold") attrs |= static_cast<std::uint32_t>(FnAttr::Cold);
      else if (a == "optsize") attrs |= static_cast<std::uint32_t>(FnAttr::OptSize);
      else fail("unknown attribute '" + a + "'");
    } while (tryConsume(','));
    expect(']');
    return attrs;
  }

  IntrinsicId parseIntrinsicId() {
    const std::string w = parseWord();
    if (w == "input") return IntrinsicId::Input;
    if (w == "sink") return IntrinsicId::Sink;
    if (w == "sinkf64") return IntrinsicId::SinkF64;
    if (w == "memset") return IntrinsicId::Memset;
    if (w == "expect") return IntrinsicId::Expect;
    if (w == "assume") return IntrinsicId::Assume;
    if (w == "assume_aligned") return IntrinsicId::AssumeAligned;
    fail("unknown intrinsic id '" + w + "'");
  }

  void parseDeclare() {
    expectWord("declare");
    expect('@');
    const std::string name = parseWord();
    expect(':');
    Type* fty = parseType();
    Function* f = module_->createFunction(name, fty,
                                          Function::Linkage::External);
    if (tryWord("attrs")) f->setRawAttrs(parseAttrList());
    if (tryWord("intrinsic")) f->setIntrinsicId(parseIntrinsicId());
  }

  void parseDefine() {
    expectWord("define");
    expect('@');
    const std::string name = parseWord();
    expect(':');
    Type* fty = parseType();
    const std::string linkage = parseWord();
    auto lk = Function::Linkage::External;
    if (linkage == "internal") {
      lk = Function::Linkage::Internal;
    } else if (linkage != "external") {
      fail("bad linkage '" + linkage + "'");
    }
    Function* f = module_->createFunction(name, fty, lk);
    if (tryWord("attrs")) f->setRawAttrs(parseAttrList());
    expect('{');
    parseBody(f);
    expect('}');
  }

  // ---- function bodies ----

  struct Placeholder {
    std::unique_ptr<UndefValue> value;
    int line;  ///< First reference, for diagnostics.
  };

  void parseBody(Function* f) {
    values_.clear();
    placeholders_.clear();
    blocks_.clear();
    for (const auto& a : f->args()) values_[a->name()] = a.get();

    // Pre-scan for block labels so branches can reference them forward.
    preScanBlocks(f);

    BasicBlock* current = nullptr;
    while (peekChar() != '}') {
      if (tryWord("block")) {
        const std::string label = parseWord();
        expect(':');
        current = blocks_.at(label);
        continue;
      }
      if (current == nullptr) fail("instruction outside of a block");
      parseInstruction(f, current);
    }
    for (const auto& [name, ph] : placeholders_) {
      if (ph.value != nullptr && ph.value->hasUses()) {
        throw ParseError{"undefined value %" + name, ph.line};
      }
    }
  }

  /// Scans ahead (without consuming) to create all blocks of the body and
  /// to register a typed placeholder for every instruction result. Blocks
  /// may appear in non-topological order, so any operand can be a forward
  /// reference; the explicit "%name : type =" result syntax makes this
  /// resolvable in one look-ahead pass.
  void preScanBlocks(Function* f) {
    const std::size_t save_pos = pos_;
    const int save_line = line_;
    int depth = 0;
    while (pos_ < text_.size()) {
      skipSpace();
      if (pos_ >= text_.size()) break;
      const char c = text_[pos_];
      if (c == '}') {
        if (depth == 0) break;
        --depth;
        ++pos_;
        continue;
      }
      if (c == '{') {  // Struct type literal inside an instruction.
        ++depth;
        ++pos_;
        continue;
      }
      if (c == '%' && depth == 0) {
        ++pos_;
        const std::string name = parseWord();
        skipSpace();
        // Only result declarations are followed by ": <type> =".
        if (pos_ < text_.size() && text_[pos_] == ':') {
          ++pos_;
          Type* type = parseType();
          skipSpace();
          if (pos_ < text_.size() && text_[pos_] == '=') {
            if (!placeholders_.count(name)) {
              Placeholder ph;
              ph.value = std::make_unique<UndefValue>(type);
              ph.line = line_;
              placeholders_[name] = std::move(ph);
            }
          }
        }
        continue;
      }
      if (isWordChar(c)) {
        const std::string w = parseWord();
        if (w == "block" && depth == 0) {
          const std::string label = parseWord();
          if (blocks_.count(label)) fail("duplicate block label " + label);
          BasicBlock* bb = f->addBlock("x");
          bb->setName(label);
          blocks_[label] = bb;
        }
        continue;
      }
      ++pos_;
    }
    pos_ = save_pos;
    line_ = save_line;
  }

  /// Looks up %name; falls back to the pre-registered typed placeholder for
  /// not-yet-defined results.
  Value* lookupValue(const std::string& name, Type* /*expected*/) {
    auto it = values_.find(name);
    if (it != values_.end()) return it->second;
    auto ph_it = placeholders_.find(name);
    if (ph_it != placeholders_.end() && ph_it->second.value != nullptr) {
      return ph_it->second.value.get();
    }
    fail("reference to undefined value %" + name);
  }

  /// Parses an operand reference. \p expected may be null when the operand's
  /// type is self-evident (typed literals, globals, labels, known values).
  Value* parseOperand(Type* expected) {
    skipSpace();
    const char c = peekChar();
    if (c == '%') {
      ++pos_;
      const std::string name = parseWord();
      return lookupValue(name, expected);
    }
    if (c == '@') {
      ++pos_;
      const std::string name = parseWord();
      if (Function* f = module_->getFunction(name)) return f;
      if (GlobalVariable* g = module_->getGlobal(name)) return g;
      fail("unknown global reference @" + name);
    }
    if (tryWord("label")) {
      const std::string name = parseWord();
      auto it = blocks_.find(name);
      if (it == blocks_.end()) fail("unknown block label " + name);
      return it->second;
    }
    if (tryWord("null")) return module_->nullConst(parseType());
    if (tryWord("undef")) return module_->undef(parseType());
    // Typed literal: "<type> <number>".
    Type* t = parseType();
    if (t->isFloat()) return module_->constantFloat(parseDouble());
    if (t->isInteger()) return module_->constantInt(t, parseInt());
    fail("literal of unsupported type " + t->str());
  }

  ICmpInst::Pred parseICmpPred() {
    const std::string w = parseWord();
    if (w == "eq") return ICmpInst::Pred::EQ;
    if (w == "ne") return ICmpInst::Pred::NE;
    if (w == "slt") return ICmpInst::Pred::SLT;
    if (w == "sle") return ICmpInst::Pred::SLE;
    if (w == "sgt") return ICmpInst::Pred::SGT;
    if (w == "sge") return ICmpInst::Pred::SGE;
    if (w == "ult") return ICmpInst::Pred::ULT;
    if (w == "ule") return ICmpInst::Pred::ULE;
    if (w == "ugt") return ICmpInst::Pred::UGT;
    if (w == "uge") return ICmpInst::Pred::UGE;
    fail("unknown icmp predicate '" + w + "'");
  }

  FCmpInst::Pred parseFCmpPred() {
    const std::string w = parseWord();
    if (w == "oeq") return FCmpInst::Pred::OEQ;
    if (w == "one") return FCmpInst::Pred::ONE;
    if (w == "olt") return FCmpInst::Pred::OLT;
    if (w == "ole") return FCmpInst::Pred::OLE;
    if (w == "ogt") return FCmpInst::Pred::OGT;
    if (w == "oge") return FCmpInst::Pred::OGE;
    fail("unknown fcmp predicate '" + w + "'");
  }

  static std::optional<Opcode> opcodeFromName(const std::string& w) {
    static const std::map<std::string, Opcode> table = {
        {"alloca", Opcode::Alloca},   {"load", Opcode::Load},
        {"store", Opcode::Store},     {"gep", Opcode::Gep},
        {"ret", Opcode::Ret},         {"br", Opcode::Br},
        {"condbr", Opcode::CondBr},   {"switch", Opcode::Switch},
        {"unreachable", Opcode::Unreachable},
        {"phi", Opcode::Phi},         {"call", Opcode::Call},
        {"select", Opcode::Select},   {"add", Opcode::Add},
        {"sub", Opcode::Sub},         {"mul", Opcode::Mul},
        {"sdiv", Opcode::SDiv},       {"udiv", Opcode::UDiv},
        {"srem", Opcode::SRem},       {"urem", Opcode::URem},
        {"shl", Opcode::Shl},         {"lshr", Opcode::LShr},
        {"ashr", Opcode::AShr},       {"and", Opcode::And},
        {"or", Opcode::Or},           {"xor", Opcode::Xor},
        {"fadd", Opcode::FAdd},       {"fsub", Opcode::FSub},
        {"fmul", Opcode::FMul},       {"fdiv", Opcode::FDiv},
        {"icmp", Opcode::ICmp},       {"fcmp", Opcode::FCmp},
        {"zext", Opcode::ZExt},       {"sext", Opcode::SExt},
        {"trunc", Opcode::Trunc},     {"sitofp", Opcode::SIToFP},
        {"fptosi", Opcode::FPToSI},
    };
    auto it = table.find(w);
    if (it == table.end()) return std::nullopt;
    return it->second;
  }

  void defineResult(const std::string& name, Instruction* inst) {
    auto ph_it = placeholders_.find(name);
    if (ph_it != placeholders_.end() && ph_it->second.value != nullptr) {
      if (ph_it->second.value->type() != inst->type()) {
        fail("forward reference %" + name + " type mismatch");
      }
      ph_it->second.value->replaceAllUsesWith(inst);
      ph_it->second.value.reset();
    }
    if (values_.count(name)) fail("redefinition of %" + name);
    values_[name] = inst;
  }

  void parseInstruction(Function* f, BasicBlock* bb) {
    TypeContext& tc = module_->types();
    std::string result_name;
    Type* result_type = nullptr;
    if (peekChar() == '%') {
      ++pos_;
      result_name = parseWord();
      expect(':');
      result_type = parseType();
      expect('=');
    }
    const std::string opname = parseWord();
    const auto op = opcodeFromName(opname);
    if (!op) fail("unknown opcode '" + opname + "'");

    std::unique_ptr<Instruction> inst;
    switch (*op) {
      case Opcode::Alloca: {
        Type* at = parseType();
        if (result_type == nullptr || !result_type->isPointer()) {
          fail("alloca needs a pointer result type");
        }
        inst = std::make_unique<AllocaInst>(result_type, at, result_name);
        break;
      }
      case Opcode::Load: {
        if (result_type == nullptr) fail("load needs a result type");
        Value* ptr = parseOperand(tc.ptrTo(result_type));
        auto load = std::make_unique<LoadInst>(result_type, ptr, result_name);
        if (tryWord("align")) {
          load->setAlignment(static_cast<unsigned>(parseInt()));
        }
        inst = std::move(load);
        break;
      }
      case Opcode::Store: {
        Value* val = parseOperand(nullptr);
        expect(',');
        Value* ptr = parseOperand(tc.ptrTo(val->type()));
        auto store = std::make_unique<StoreInst>(tc.voidTy(), val, ptr);
        if (tryWord("align")) {
          store->setAlignment(static_cast<unsigned>(parseInt()));
        }
        inst = std::move(store);
        break;
      }
      case Opcode::Gep: {
        if (result_type == nullptr) fail("gep needs a result type");
        Value* base = parseOperand(nullptr);
        if (!base->type()->isPointer()) fail("gep base is not a pointer");
        expect('[');
        std::vector<Value*> indices;
        if (!tryConsume(']')) {
          do {
            indices.push_back(parseOperand(tc.i64()));
          } while (tryConsume(','));
          expect(']');
        }
        inst = std::make_unique<GepInst>(result_type, base->type()->pointee(),
                                         base, std::move(indices), result_name);
        break;
      }
      case Opcode::Phi: {
        if (result_type == nullptr) fail("phi needs a result type");
        auto phi = std::make_unique<PhiInst>(result_type, result_name);
        do {
          expect('[');
          Value* v = parseOperand(result_type);
          expect(',');
          const std::string label = parseWord();
          auto it = blocks_.find(label);
          if (it == blocks_.end()) fail("unknown block label " + label);
          expect(']');
          phi->addIncoming(v, it->second);
        } while (tryConsume(','));
        // Phis must sit at the head of their block.
        PhiInst* placed = phi.get();
        bb->pushBack(std::move(phi));
        if (!result_name.empty()) defineResult(result_name, placed);
        return;
      }
      case Opcode::Call: {
        Value* callee = nullptr;
        Type* fty = nullptr;
        if (tryWord("indirect")) {
          callee = parseOperand(nullptr);
          if (!callee->type()->isPointer() ||
              !callee->type()->pointee()->isFunction()) {
            fail("indirect call callee must be a function pointer");
          }
          fty = callee->type()->pointee();
        } else {
          expect('@');
          const std::string fname = parseWord();
          Function* fn = module_->getFunction(fname);
          if (fn == nullptr) fail("call to unknown function @" + fname);
          callee = fn;
          fty = fn->functionType();
        }
        expect('(');
        std::vector<Value*> args;
        const auto& params = fty->funcParams();
        if (!tryConsume(')')) {
          std::size_t i = 0;
          do {
            Type* expected =
                i < params.size() ? params[i] : nullptr;
            args.push_back(parseOperand(expected));
            ++i;
          } while (tryConsume(','));
          expect(')');
        }
        inst = std::make_unique<CallInst>(fty->funcReturn(), callee,
                                          std::move(args), result_name);
        break;
      }
      case Opcode::Ret: {
        if (tryWord("void")) {
          inst = std::make_unique<RetInst>(tc.voidTy(), nullptr);
        } else {
          inst = std::make_unique<RetInst>(tc.voidTy(),
                                           parseOperand(f->returnType()));
        }
        break;
      }
      case Opcode::Br: {
        expectWord("label");
        const std::string label = parseWord();
        auto it = blocks_.find(label);
        if (it == blocks_.end()) fail("unknown block label " + label);
        inst = std::make_unique<BrInst>(tc.voidTy(), it->second);
        break;
      }
      case Opcode::CondBr: {
        Value* cond = parseOperand(tc.i1());
        expect(',');
        expectWord("label");
        BasicBlock* t = lookupBlock(parseWord());
        expect(',');
        expectWord("label");
        BasicBlock* e = lookupBlock(parseWord());
        inst = std::make_unique<CondBrInst>(tc.voidTy(), cond, t, e);
        break;
      }
      case Opcode::Switch: {
        Value* cond = parseOperand(nullptr);
        expect(',');
        expectWord("default");
        expectWord("label");
        BasicBlock* def = lookupBlock(parseWord());
        auto sw = std::make_unique<SwitchInst>(tc.voidTy(), cond, def);
        expect(',');
        expect('[');
        if (!tryConsume(']')) {
          do {
            const std::int64_t v = parseInt();
            if (!tryConsumeArrow()) fail("expected '->' in switch case");
            expectWord("label");
            BasicBlock* target = lookupBlock(parseWord());
            sw->addCase(module_->constantInt(cond->type(), v), target);
          } while (tryConsume(','));
          expect(']');
        }
        inst = std::move(sw);
        break;
      }
      case Opcode::Unreachable:
        inst = std::make_unique<UnreachableInst>(tc.voidTy());
        break;
      case Opcode::Select: {
        if (result_type == nullptr) fail("select needs a result type");
        Value* cond = parseOperand(tc.i1());
        expect(',');
        Value* tv = parseOperand(result_type);
        expect(',');
        Value* fv = parseOperand(result_type);
        inst = std::make_unique<SelectInst>(result_type, cond, tv, fv,
                                            result_name);
        break;
      }
      case Opcode::ICmp: {
        const auto pred = parseICmpPred();
        Value* lhs = parseOperand(nullptr);
        expect(',');
        Value* rhs = parseOperand(lhs->type());
        inst = std::make_unique<ICmpInst>(tc.i1(), pred, lhs, rhs, result_name);
        break;
      }
      case Opcode::FCmp: {
        const auto pred = parseFCmpPred();
        Value* lhs = parseOperand(tc.f64());
        expect(',');
        Value* rhs = parseOperand(tc.f64());
        inst = std::make_unique<FCmpInst>(tc.i1(), pred, lhs, rhs, result_name);
        break;
      }
      case Opcode::ZExt:
      case Opcode::SExt:
      case Opcode::Trunc:
      case Opcode::SIToFP:
      case Opcode::FPToSI: {
        if (result_type == nullptr) fail("cast needs a result type");
        Value* v = parseOperand(nullptr);
        inst = std::make_unique<CastInst>(*op, result_type, v, result_name);
        break;
      }
      default: {  // Binary ops.
        if (result_type == nullptr) fail("binary op needs a result type");
        Value* lhs = parseOperand(result_type);
        expect(',');
        Value* rhs = parseOperand(result_type);
        inst = std::make_unique<BinaryInst>(*op, result_type, lhs, rhs,
                                            result_name);
        break;
      }
    }
    if (tryWord("vec")) {
      inst->setVectorWidth(static_cast<unsigned>(parseInt()));
    }
    Instruction* placed = inst.get();
    bb->pushBack(std::move(inst));
    if (!result_name.empty()) defineResult(result_name, placed);
  }

  BasicBlock* lookupBlock(const std::string& label) {
    auto it = blocks_.find(label);
    if (it == blocks_.end()) fail("unknown block label " + label);
    return it->second;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  std::unique_ptr<Module> module_;
  std::map<std::string, Value*> values_;
  std::map<std::string, Placeholder> placeholders_;
  std::map<std::string, BasicBlock*> blocks_;
  std::vector<std::pair<std::string, std::string>> pending_funcptrs_;
};

}  // namespace

std::unique_ptr<Module> parseModule(const std::string& text,
                                    std::string* error) {
  Parser parser(text);
  try {
    return parser.run();
  } catch (const ParseError& e) {
    if (error != nullptr) {
      std::ostringstream os;
      os << "parse error at line " << e.line << ": " << e.message;
      *error = os.str();
    }
    return nullptr;
  }
}

}  // namespace posetrl
