#include "ir/value.h"

#include <algorithm>

#include "ir/instruction.h"

namespace posetrl {

namespace {

thread_local int g_user_tracking_suspended = 0;

}  // namespace

UserTrackingSuspender::UserTrackingSuspender() { ++g_user_tracking_suspended; }

UserTrackingSuspender::~UserTrackingSuspender() {
  --g_user_tracking_suspended;
}

bool UserTrackingSuspender::active() {
  return g_user_tracking_suspended > 0;
}

namespace {

thread_local std::uint64_t g_stamp_generation = 0;

}  // namespace

std::uint64_t Value::nextStampGeneration() { return ++g_stamp_generation; }

void Value::replaceAllUsesWith(Value* replacement) {
  POSETRL_CHECK(replacement != this, "RAUW with self");
  // Users are mutated as operands change, so iterate over a snapshot.
  const std::vector<Instruction*> snapshot = users_;
  for (Instruction* user : snapshot) {
    for (std::size_t i = 0; i < user->numOperands(); ++i) {
      if (user->operand(i) == this) user->setOperand(i, replacement);
    }
  }
}

void Value::removeUser(Instruction* user) {
  auto it = std::find(users_.begin(), users_.end(), user);
  POSETRL_CHECK(it != users_.end(), "removing non-existent user");
  users_.erase(it);
}

std::uint64_t ConstantInt::zextValue() const {
  const unsigned bits = type()->intBits();
  if (bits == 64) return static_cast<std::uint64_t>(value_);
  return static_cast<std::uint64_t>(value_) & ((1ull << bits) - 1);
}

std::int64_t ConstantInt::canonicalize(std::int64_t v, unsigned bits) {
  if (bits == 64) return v;
  const std::uint64_t mask = (1ull << bits) - 1;
  std::uint64_t u = static_cast<std::uint64_t>(v) & mask;
  // Sign-extend from `bits`.
  const std::uint64_t sign = 1ull << (bits - 1);
  if (u & sign) u |= ~mask;
  return static_cast<std::int64_t>(u);
}

}  // namespace posetrl
