#pragma once

/// \file basic_block.h
/// Basic blocks: ordered instruction lists ending in exactly one terminator.
/// Blocks are Values (their label can be a branch/phi operand).

#include <list>
#include <memory>
#include <string>
#include <vector>

#include "ir/instruction.h"
#include "ir/value.h"

namespace posetrl {

class Function;

/// A basic block. Owns its instructions; instruction order is significant.
class BasicBlock : public Value {
 public:
  using InstList = std::list<std::unique_ptr<Instruction>>;
  using iterator = InstList::iterator;

  BasicBlock(Type* label_type, std::string name, Function* parent)
      : Value(Kind::BasicBlock, label_type, std::move(name)),
        parent_(parent) {}

  /// Arena-backed like Instruction (see instruction.h): blocks churn under
  /// simplifycfg/loop passes, so they share the module's bump arena.
  static void* operator new(std::size_t bytes);
  static void operator delete(void* p) noexcept;
  static void operator delete(void* p, std::size_t) noexcept;

  Function* parent() const { return parent_; }
  void setParent(Function* f) { parent_ = f; }

  const InstList& insts() const { return insts_; }
  iterator begin() { return insts_.begin(); }
  iterator end() { return insts_.end(); }
  bool empty() const { return insts_.empty(); }
  std::size_t size() const { return insts_.size(); }
  Instruction* front() const { return insts_.front().get(); }
  Instruction* back() const { return insts_.back().get(); }

  /// Appends \p inst (taking ownership); returns the raw pointer.
  Instruction* pushBack(std::unique_ptr<Instruction> inst);
  /// Inserts \p inst before \p pos (which must be in this block).
  Instruction* insertBefore(Instruction* pos,
                            std::unique_ptr<Instruction> inst);
  /// Inserts at the front of the block (used for phi placement).
  Instruction* pushFront(std::unique_ptr<Instruction> inst);

  /// The terminator, or nullptr if the block is unterminated (only legal
  /// transiently during construction/transformation).
  Instruction* terminator() const;

  /// Successor blocks (possibly with duplicates, mirroring terminator edges).
  std::vector<BasicBlock*> successors() const;
  /// Unique predecessor blocks, in discovery order over this block's users.
  std::vector<BasicBlock*> predecessors() const;
  /// The single predecessor, or nullptr if zero or many.
  BasicBlock* singlePredecessor() const;
  /// The single successor, or nullptr if zero or many.
  BasicBlock* singleSuccessor() const;
  bool hasPredecessor(BasicBlock* bb) const;

  /// First non-phi instruction position.
  iterator firstNonPhi();
  /// All phi nodes at the head of the block.
  std::vector<PhiInst*> phis() const;

  /// Removes this block's incoming entries from all successor phis.
  void removeFromSuccessorPhis();

  /// Moves instructions [pos, end) into a fresh block appended to the parent
  /// function, and returns it; no branch is created (caller's job).
  BasicBlock* splitAt(Instruction* pos, const std::string& new_name);

  /// Unlinks and destroys this (must be use-free and unlinked from CFG).
  void eraseFromParent();

  static bool classof(const Value* v) { return v->kind() == Kind::BasicBlock; }

 private:
  friend class Instruction;
  friend class Function;

  Function* parent_;
  InstList insts_;
};

}  // namespace posetrl
