#pragma once

/// \file parser.h
/// Parser for the MiniIR textual format produced by printer.h. Supports
/// forward references (phi back-edges, blocks in any order) by declaring
/// result types explicitly in the text.

#include <memory>
#include <string>

namespace posetrl {

class Module;

/// Parses \p text into a Module. On failure returns nullptr and, if
/// \p error is non-null, stores a diagnostic including the line number.
std::unique_ptr<Module> parseModule(const std::string& text,
                                    std::string* error = nullptr);

}  // namespace posetrl
