#pragma once

/// \file global_variable.h
/// Module-level global variables with simple initializers. The initializer
/// forms cover what the Oz-analog passes need: zeroinit, scalar constants,
/// constant integer arrays (constmerge / globalopt), and function pointers
/// (called-value-propagation).

#include <cstdint>
#include <string>
#include <vector>

#include "ir/value.h"

namespace posetrl {

class Function;

/// Initializer of a global variable.
struct GlobalInit {
  enum class Kind { Zero, Int, Float, IntArray, FuncPtr };

  Kind kind = Kind::Zero;
  std::int64_t int_value = 0;
  double float_value = 0.0;
  std::vector<std::int64_t> elements;  ///< For IntArray.
  Function* function = nullptr;        ///< For FuncPtr.

  static GlobalInit zero() { return {}; }
  static GlobalInit ofInt(std::int64_t v) {
    GlobalInit g;
    g.kind = Kind::Int;
    g.int_value = v;
    return g;
  }
  static GlobalInit ofFloat(double v) {
    GlobalInit g;
    g.kind = Kind::Float;
    g.float_value = v;
    return g;
  }
  static GlobalInit ofIntArray(std::vector<std::int64_t> elems) {
    GlobalInit g;
    g.kind = Kind::IntArray;
    g.elements = std::move(elems);
    return g;
  }
  static GlobalInit ofFuncPtr(Function* f) {
    GlobalInit g;
    g.kind = Kind::FuncPtr;
    g.function = f;
    return g;
  }

  bool operator==(const GlobalInit& other) const {
    return kind == other.kind && int_value == other.int_value &&
           float_value == other.float_value && elements == other.elements &&
           function == other.function;
  }
};

/// A global variable; its Value type is ptr<valueType()>.
class GlobalVariable : public Value {
 public:
  enum class Linkage { External, Internal };

  GlobalVariable(Type* ptr_type, Type* value_type, std::string name,
                 GlobalInit init, Linkage linkage, bool is_const)
      : Value(Kind::GlobalVariable, ptr_type, std::move(name)),
        value_type_(value_type),
        init_(std::move(init)),
        linkage_(linkage),
        is_const_(is_const) {}

  Type* valueType() const { return value_type_; }
  const GlobalInit& init() const { return init_; }
  void setInit(GlobalInit init) { init_ = std::move(init); }
  Linkage linkage() const { return linkage_; }
  void setLinkage(Linkage l) { linkage_ = l; }
  bool isInternal() const { return linkage_ == Linkage::Internal; }
  bool isConst() const { return is_const_; }
  void setConst(bool c) { is_const_ = c; }

  static bool classof(const Value* v) {
    return v->kind() == Kind::GlobalVariable;
  }

 private:
  Type* value_type_;
  GlobalInit init_;
  Linkage linkage_;
  bool is_const_;
};

}  // namespace posetrl
