#pragma once

/// \file function.h
/// Functions: argument lists, basic-block lists, linkage and attributes.
/// Attribute flags mirror the LLVM attributes the Oz passes manipulate
/// (functionattrs / rpo-functionattrs / inferattrs / forceattrs / attributor).

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <vector>

#include "ir/basic_block.h"
#include "ir/value.h"

namespace posetrl {

class Module;

/// Function attribute bit flags.
enum class FnAttr : std::uint32_t {
  NoInline = 1u << 0,
  AlwaysInline = 1u << 1,
  ReadNone = 1u << 2,  ///< Accesses no memory (pure).
  ReadOnly = 1u << 3,  ///< Reads but never writes memory.
  NoUnwind = 1u << 4,
  NoReturn = 1u << 5,
  Cold = 1u << 6,
  OptSize = 1u << 7,
};

/// Known intrinsic/runtime functions (declarations with modeled semantics).
enum class IntrinsicId {
  None,
  Input,          ///< pr.input(i64) -> i64 : deterministic external input.
  Sink,           ///< pr.sink(i64) : observable side effect.
  SinkF64,        ///< pr.sinkf(f64) : observable side effect.
  Memset,         ///< pr.memset(ptr<i8>, i8, i64) : fill memory.
  Expect,         ///< pr.expect(i64, i64) -> i64 : branch-weight hint.
  Assume,         ///< pr.assume(i1) : optimizer hint, no runtime effect.
  AssumeAligned,  ///< pr.assume_aligned.<T>(ptr<T>, i64) : alignment hint.
};

/// A function definition or declaration.
class Function : public Value {
 public:
  using BlockList = std::list<std::unique_ptr<BasicBlock>>;

  Function(Type* func_type, std::string name, Module* parent);

  Module* parent() const { return parent_; }
  Type* functionType() const { return type(); }
  Type* returnType() const { return type()->funcReturn(); }

  enum class Linkage { External, Internal };
  Linkage linkage() const { return linkage_; }
  void setLinkage(Linkage l) { linkage_ = l; }
  bool isInternal() const { return linkage_ == Linkage::Internal; }

  bool isDeclaration() const { return blocks_.empty(); }

  IntrinsicId intrinsicId() const { return intrinsic_; }
  void setIntrinsicId(IntrinsicId id) { intrinsic_ = id; }
  bool isIntrinsic() const { return intrinsic_ != IntrinsicId::None; }

  bool hasAttr(FnAttr a) const {
    return (attrs_ & static_cast<std::uint32_t>(a)) != 0;
  }
  void addAttr(FnAttr a) { attrs_ |= static_cast<std::uint32_t>(a); }
  void removeAttr(FnAttr a) { attrs_ &= ~static_cast<std::uint32_t>(a); }
  std::uint32_t rawAttrs() const { return attrs_; }
  void setRawAttrs(std::uint32_t attrs) { attrs_ = attrs; }

  // Arguments.
  std::size_t numArgs() const { return args_.size(); }
  Argument* arg(std::size_t i) const { return args_[i].get(); }
  const std::vector<std::unique_ptr<Argument>>& args() const { return args_; }
  /// Removes argument \p i (dead-argument elimination); the function type is
  /// updated and remaining argument indices are renumbered.
  void removeArg(std::size_t i);

  /// Rewrites the function type in place. Callers (attributor's dead-return
  /// elimination, deadargelim) are responsible for fixing returns and call
  /// sites; \p new_type must keep the parameter list consistent with args().
  void setFunctionTypeUnchecked(Type* new_type) { mutateType(new_type); }

  // Blocks.
  const BlockList& blocks() const { return blocks_; }
  BlockList::iterator blocksBegin() { return blocks_.begin(); }
  BlockList::iterator blocksEnd() { return blocks_.end(); }
  std::size_t numBlocks() const { return blocks_.size(); }
  BasicBlock* entry() const {
    POSETRL_CHECK(!blocks_.empty(), "entry() on declaration");
    return blocks_.front().get();
  }

  /// Appends a fresh block named \p name (made unique within the function).
  BasicBlock* addBlock(const std::string& name);
  /// Inserts a fresh block right after \p after.
  BasicBlock* addBlockAfter(BasicBlock* after, const std::string& name);
  /// Unlinks and destroys \p bb (must have no uses).
  void eraseBlock(BasicBlock* bb);
  /// Moves \p bb to the front, making it the entry block.
  void makeEntry(BasicBlock* bb);

  /// Fresh SSA value name ("t0", "t1", ...) unique within this function.
  std::string nextValueName();
  /// Fresh block name derived from \p base.
  std::string uniqueBlockName(const std::string& base);

  /// Total instruction count across all blocks.
  std::size_t instructionCount() const;

  static bool classof(const Value* v) { return v->kind() == Kind::Function; }

 private:
  friend class BasicBlock;
  /// Snapshot restore rebuilds blocks_/args_ and reinstates the name
  /// counters in place (ir/snapshot.cpp).
  friend class ModuleSnapshot;

  Module* parent_;
  Linkage linkage_ = Linkage::External;
  IntrinsicId intrinsic_ = IntrinsicId::None;
  std::uint32_t attrs_ = 0;
  std::vector<std::unique_ptr<Argument>> args_;
  BlockList blocks_;
  std::uint64_t next_value_ = 0;
  std::uint64_t next_block_ = 0;
};

}  // namespace posetrl
