#include "ir/clone.h"

#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/global_variable.h"
#include "ir/instruction.h"
#include "ir/module.h"
#include "support/error.h"

namespace posetrl {

Type* mapType(TypeContext& dst, const Type* src) {
  switch (src->kind()) {
    case Type::Kind::Void: return dst.voidTy();
    case Type::Kind::I1: return dst.i1();
    case Type::Kind::I8: return dst.i8();
    case Type::Kind::I16: return dst.i16();
    case Type::Kind::I32: return dst.i32();
    case Type::Kind::I64: return dst.i64();
    case Type::Kind::F64: return dst.f64();
    case Type::Kind::Ptr:
      return dst.ptrTo(mapType(dst, src->pointee()));
    case Type::Kind::Array:
      return dst.arrayOf(mapType(dst, src->arrayElement()),
                         src->arrayCount());
    case Type::Kind::Struct: {
      std::vector<Type*> fields;
      for (Type* f : src->structFields()) fields.push_back(mapType(dst, f));
      return dst.structOf(std::move(fields));
    }
    case Type::Kind::Func: {
      std::vector<Type*> params;
      for (Type* p : src->funcParams()) params.push_back(mapType(dst, p));
      return dst.funcType(mapType(dst, src->funcReturn()),
                          std::move(params));
    }
  }
  POSETRL_UNREACHABLE("bad type kind");
}

namespace {

/// Maps an operand into the destination module: vmap entries win; constants
/// are re-interned; everything else must have been mapped already.
Value* mapOperandCrossModule(Module& dst, const ValueMap& vmap,
                             const Value* v) {
  auto it = vmap.find(v);
  if (it != vmap.end()) return it->second;
  switch (v->kind()) {
    case Value::Kind::ConstantInt: {
      const auto* c = static_cast<const ConstantInt*>(v);
      return dst.constantInt(mapType(dst.types(), c->type()), c->value());
    }
    case Value::Kind::ConstantFloat:
      return dst.constantFloat(
          static_cast<const ConstantFloat*>(v)->value());
    case Value::Kind::ConstantNull:
      return dst.nullConst(mapType(dst.types(), v->type()));
    case Value::Kind::Undef:
      return dst.undef(mapType(dst.types(), v->type()));
    default:
      POSETRL_UNREACHABLE("unmapped value during module clone");
  }
}

/// Re-creates \p inst with destination-context types. Operands are left as
/// source-module pointers; the caller remaps them afterwards. Successor
/// blocks must already exist in \p vmap (they are remapped later too).
Instruction* recreateInstruction(Module& dst, const Instruction& inst) {
  TypeContext& tc = dst.types();
  Type* ty = mapType(tc, inst.type());
  const std::string& name = inst.name();
  Instruction* out = nullptr;
  switch (inst.opcode()) {
    case Opcode::Alloca: {
      const auto& a = static_cast<const AllocaInst&>(inst);
      out = new AllocaInst(ty, mapType(tc, a.allocatedType()), name);
      break;
    }
    case Opcode::Load: {
      const auto& l = static_cast<const LoadInst&>(inst);
      auto* n = new LoadInst(ty, l.pointer(), name);
      n->setAlignment(l.alignment());
      out = n;
      break;
    }
    case Opcode::Store: {
      const auto& s = static_cast<const StoreInst&>(inst);
      auto* n = new StoreInst(ty, s.value(), s.pointer());
      n->setAlignment(s.alignment());
      out = n;
      break;
    }
    case Opcode::Gep: {
      const auto& g = static_cast<const GepInst&>(inst);
      std::vector<Value*> indices;
      for (std::size_t i = 0; i < g.numIndices(); ++i) {
        indices.push_back(g.index(i));
      }
      out = new GepInst(ty, mapType(tc, g.sourceElement()), g.base(),
                        std::move(indices), name);
      break;
    }
    case Opcode::Phi: {
      const auto& p = static_cast<const PhiInst&>(inst);
      auto* n = new PhiInst(ty, name);
      for (std::size_t i = 0; i < p.numIncoming(); ++i) {
        n->addIncoming(p.incomingValue(i), p.incomingBlock(i));
      }
      out = n;
      break;
    }
    case Opcode::Call: {
      const auto& c = static_cast<const CallInst&>(inst);
      std::vector<Value*> args;
      for (std::size_t i = 0; i < c.numArgs(); ++i) args.push_back(c.arg(i));
      out = new CallInst(ty, c.callee(), std::move(args), name);
      break;
    }
    case Opcode::Ret: {
      const auto& r = static_cast<const RetInst&>(inst);
      out = new RetInst(ty, r.hasValue() ? r.value() : nullptr);
      break;
    }
    case Opcode::Br:
      out = new BrInst(ty, inst.successor(0));
      break;
    case Opcode::CondBr: {
      const auto& b = static_cast<const CondBrInst&>(inst);
      out = new CondBrInst(ty, b.condition(), b.thenBlock(), b.elseBlock());
      break;
    }
    case Opcode::Switch: {
      const auto& s = static_cast<const SwitchInst&>(inst);
      auto* n = new SwitchInst(ty, s.condition(), s.defaultBlock());
      for (std::size_t i = 0; i < s.numCases(); ++i) {
        n->addCase(s.caseValue(i), s.caseBlock(i));
      }
      out = n;
      break;
    }
    case Opcode::Unreachable:
      out = new UnreachableInst(ty);
      break;
    case Opcode::Select: {
      const auto& s = static_cast<const SelectInst&>(inst);
      out = new SelectInst(ty, s.condition(), s.trueValue(), s.falseValue(),
                           name);
      break;
    }
    case Opcode::ICmp: {
      const auto& c = static_cast<const ICmpInst&>(inst);
      out = new ICmpInst(ty, c.pred(), c.lhs(), c.rhs(), name);
      break;
    }
    case Opcode::FCmp: {
      const auto& c = static_cast<const FCmpInst&>(inst);
      out = new FCmpInst(ty, c.pred(), c.lhs(), c.rhs(), name);
      break;
    }
    default: {
      if (inst.isBinaryOp()) {
        out = new BinaryInst(inst.opcode(), ty, inst.operand(0),
                             inst.operand(1), name);
      } else if (inst.isCast()) {
        out = new CastInst(inst.opcode(), ty, inst.operand(0), name);
      } else {
        POSETRL_UNREACHABLE("unhandled opcode in recreateInstruction");
      }
      break;
    }
  }
  out->setVectorWidth(inst.vectorWidth());
  return out;
}

}  // namespace

std::unique_ptr<Module> cloneModule(const Module& src) {
  auto dst = std::make_unique<Module>(src.name());
  // Clone bodies into the destination's own bump arena.
  ArenaScope arena_scope(dst->arena());
  ValueMap vmap;

  // Pass 1: create all function shells and globals so references resolve.
  for (const auto& f : src.functions()) {
    Type* fty = mapType(dst->types(), f->functionType());
    Function* nf = dst->createFunction(f->name(), fty, f->linkage());
    nf->setRawAttrs(f->rawAttrs());
    nf->setIntrinsicId(f->intrinsicId());
    vmap[f.get()] = nf;
    for (std::size_t i = 0; i < f->numArgs(); ++i) {
      nf->arg(i)->setName(f->arg(i)->name());
      vmap[f->arg(i)] = nf->arg(i);
    }
  }
  for (const auto& g : src.globals()) {
    GlobalInit init = g->init();
    if (init.kind == GlobalInit::Kind::FuncPtr) {
      init.function = cast<Function>(vmap.at(init.function));
    }
    GlobalVariable* ng = dst->createGlobal(
        g->name(), mapType(dst->types(), g->valueType()), std::move(init),
        g->linkage(), g->isConst());
    vmap[g.get()] = ng;
  }

  // Pass 2: clone bodies — blocks first, then instructions with original
  // operand pointers, then a remap sweep.
  for (const auto& f : src.functions()) {
    if (f->isDeclaration()) continue;
    Function* nf = cast<Function>(vmap.at(f.get()));
    for (const auto& bb : f->blocks()) {
      BasicBlock* nb = nf->addBlock("c");
      nb->setName(bb->name());  // Keep the exact original label.
      vmap[bb.get()] = nb;
    }
    std::vector<Instruction*> new_insts;
    {
      // The clones are built holding source-module operand pointers;
      // suspend user registration so construction never mutates the source
      // — it may be shared with other threads cloning it concurrently
      // (e.g. one serving request fanned out across workers).
      UserTrackingSuspender suspend;
      for (const auto& bb : f->blocks()) {
        auto* nb = cast<BasicBlock>(vmap.at(bb.get()));
        for (const auto& inst : bb->insts()) {
          Instruction* cloned = recreateInstruction(*dst, *inst);
          nb->pushBack(std::unique_ptr<Instruction>(cloned));
          vmap[inst.get()] = cloned;
          new_insts.push_back(cloned);
        }
      }
    }
    for (Instruction* inst : new_insts) {
      for (std::size_t i = 0; i < inst->numOperands(); ++i) {
        inst->rebindOperandForClone(
            i, mapOperandCrossModule(*dst, vmap, inst->operand(i)));
      }
    }
  }
  return dst;
}

std::vector<BasicBlock*> cloneBlocksInto(Function* dst_func,
                                         const Function& src,
                                         ValueMap& map) {
  std::vector<BasicBlock*> new_blocks;
  for (const auto& bb : src.blocks()) {
    BasicBlock* nb = dst_func->addBlock(bb->name());
    map[bb.get()] = nb;
    new_blocks.push_back(nb);
  }
  std::vector<Instruction*> new_insts;
  for (const auto& bb : src.blocks()) {
    auto* nb = cast<BasicBlock>(map.at(bb.get()));
    for (const auto& inst : bb->insts()) {
      Instruction* cloned = inst->clone();
      if (!cloned->type()->isVoid()) {
        cloned->setName(dst_func->nextValueName());
      }
      nb->pushBack(std::unique_ptr<Instruction>(cloned));
      map[inst.get()] = cloned;
      new_insts.push_back(cloned);
    }
  }
  for (Instruction* inst : new_insts) {
    for (std::size_t i = 0; i < inst->numOperands(); ++i) {
      auto it = map.find(inst->operand(i));
      if (it != map.end()) inst->setOperand(i, it->second);
    }
  }
  return new_blocks;
}

}  // namespace posetrl
