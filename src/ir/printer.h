#pragma once

/// \file printer.h
/// Textual serialization of MiniIR modules. The format round-trips through
/// the parser (see parser.h); result types are printed explicitly so the
/// parser can pre-register forward references (phi back-edges).

#include <cstdint>
#include <string>

namespace posetrl {

class Module;
class Function;
class Instruction;

/// Prints the whole module.
std::string printModule(const Module& module);

/// Process-wide count of printModule calls. Hot paths (embedding-cache
/// keys) must never print; regression tests assert this counter stays flat
/// across environment steps.
std::uint64_t printModuleCallCount();

/// Prints one function (definition or declaration line).
std::string printFunction(const Function& function);

/// Prints a single instruction (one line, no trailing newline).
std::string printInstruction(const Instruction& inst);

}  // namespace posetrl
