#pragma once

/// \file value.h
/// Base class of the MiniIR value hierarchy plus constants and function
/// arguments. Every SSA value (instruction result, argument, constant,
/// global address, basic-block label, function address) is a Value.
///
/// Use-def bookkeeping: every Instruction records its operand Values, and
/// every Value keeps the (multi-)list of instructions using it, enabling
/// `replaceAllUsesWith` — the workhorse of nearly every optimization pass.

#include <cstdint>
#include <string>
#include <vector>

#include "ir/type.h"
#include "support/error.h"

namespace posetrl {

class Instruction;

/// RAII guard suspending user-list registration on the current thread.
///
/// cloneModule constructs destination instructions that transiently hold
/// operand pointers into the *source* module; registering those clones as
/// users would mutate the source's user lists — and the source may be a
/// module other threads are cloning concurrently (the serving layer clones
/// one shared request module from many workers at once). While a suspender
/// is alive, Value::addUser is a no-op; the clone's remap sweep then rebinds
/// every operand into the destination module
/// (Instruction::rebindOperandForClone), which re-establishes exact
/// bookkeeping there. Do not use outside cross-module cloning: an
/// instruction built under suspension has inconsistent use-def state until
/// every one of its operands is rebound.
class UserTrackingSuspender {
 public:
  UserTrackingSuspender();
  ~UserTrackingSuspender();
  UserTrackingSuspender(const UserTrackingSuspender&) = delete;
  UserTrackingSuspender& operator=(const UserTrackingSuspender&) = delete;

  /// True while any suspender is alive on this thread.
  static bool active();
};

/// Root of the MiniIR value hierarchy.
class Value {
 public:
  enum class Kind {
    ConstantInt,
    ConstantFloat,
    ConstantNull,
    Undef,
    Argument,
    BasicBlock,
    GlobalVariable,
    Function,
    Instruction,
  };

  virtual ~Value() = default;
  Value(const Value&) = delete;
  Value& operator=(const Value&) = delete;

  Kind kind() const { return kind_; }
  Type* type() const { return type_; }

  const std::string& name() const { return name_; }
  void setName(std::string name) { name_ = std::move(name); }

  /// Instructions using this value, one entry per operand slot (so an
  /// instruction using the value twice appears twice).
  const std::vector<Instruction*>& users() const { return users_; }
  bool hasUses() const { return !users_.empty(); }
  std::size_t numUses() const { return users_.size(); }

  /// Rewrites every use of this value to \p replacement.
  void replaceAllUsesWith(Value* replacement);

  bool isConstant() const {
    return kind_ == Kind::ConstantInt || kind_ == Kind::ConstantFloat ||
           kind_ == Kind::ConstantNull || kind_ == Kind::Undef;
  }

  /// Scratch value-numbering slot for the analysis fingerprint walk
  /// (analysis/analysis_manager.cpp). The id is only meaningful while
  /// \p generation matches the walk that stamped it, so no clearing pass is
  /// ever needed. The generation counter is thread-local and modules are
  /// never fingerprinted from two threads at once, so the slot is safe for
  /// the parallel trainer's per-actor environments.
  void stampFingerprintId(std::uint64_t generation, std::uint64_t id) const {
    fp_gen_ = generation;
    fp_id_ = id;
  }
  bool fingerprintIdValid(std::uint64_t generation) const {
    return fp_gen_ == generation;
  }
  std::uint64_t fingerprintId() const { return fp_id_; }

  /// Fresh generation for a stamping walk over the scratch slot above. All
  /// walkers (analysis fingerprints, module snapshots, the structural
  /// content hash) must draw from this single thread-local counter: two
  /// walkers with independent counters could hand out the same generation
  /// and silently accept each other's stale ids.
  static std::uint64_t nextStampGeneration();

 protected:
  Value(Kind kind, Type* type, std::string name)
      : kind_(kind), type_(type), name_(std::move(name)) {}

  /// Re-seats the value's type. Only Function uses this (dead-argument
  /// elimination rewrites signatures); all other values have fixed types.
  void mutateType(Type* t) { type_ = t; }

 private:
  friend class Instruction;
  void addUser(Instruction* user) {
    if (UserTrackingSuspender::active()) return;
    users_.push_back(user);
  }
  void removeUser(Instruction* user);

  Kind kind_;
  Type* type_;
  std::string name_;
  std::vector<Instruction*> users_;
  mutable std::uint64_t fp_gen_ = 0;
  mutable std::uint64_t fp_id_ = 0;
};

/// LLVM-style lightweight RTTI helpers.
template <typename T>
bool isa(const Value* v) {
  return v != nullptr && T::classof(v);
}

template <typename T>
T* dynCast(Value* v) {
  return isa<T>(v) ? static_cast<T*>(v) : nullptr;
}

template <typename T>
const T* dynCast(const Value* v) {
  return isa<T>(v) ? static_cast<const T*>(v) : nullptr;
}

template <typename T>
T* cast(Value* v) {
  POSETRL_CHECK(isa<T>(v), "bad cast of IR value");
  return static_cast<T*>(v);
}

template <typename T>
const T* cast(const Value* v) {
  POSETRL_CHECK(isa<T>(v), "bad cast of IR value");
  return static_cast<const T*>(v);
}

/// Integer constant. Stored sign-extended to 64 bits; the value is always
/// kept truncated to the type's width (two's complement).
class ConstantInt : public Value {
 public:
  ConstantInt(Type* type, std::int64_t value)
      : Value(Kind::ConstantInt, type, ""), value_(value) {
    POSETRL_CHECK(type->isInteger(), "ConstantInt needs integer type");
  }

  /// Sign-extended value.
  std::int64_t value() const { return value_; }
  /// Zero-extended (bit-pattern) value.
  std::uint64_t zextValue() const;
  bool isZero() const { return value_ == 0; }
  bool isOne() const { return value_ == 1; }
  bool isAllOnes() const { return value_ == -1; }

  /// Truncates \p v to \p bits and sign-extends back (canonical storage).
  static std::int64_t canonicalize(std::int64_t v, unsigned bits);

  static bool classof(const Value* v) { return v->kind() == Kind::ConstantInt; }

 private:
  std::int64_t value_;
};

/// Floating-point constant (f64).
class ConstantFloat : public Value {
 public:
  ConstantFloat(Type* type, double value)
      : Value(Kind::ConstantFloat, type, ""), value_(value) {
    POSETRL_CHECK(type->isFloat(), "ConstantFloat needs float type");
  }

  double value() const { return value_; }

  static bool classof(const Value* v) {
    return v->kind() == Kind::ConstantFloat;
  }

 private:
  double value_;
};

/// Null pointer constant.
class ConstantNull : public Value {
 public:
  explicit ConstantNull(Type* type) : Value(Kind::ConstantNull, type, "") {
    POSETRL_CHECK(type->isPointer(), "ConstantNull needs pointer type");
  }

  static bool classof(const Value* v) {
    return v->kind() == Kind::ConstantNull;
  }
};

/// Undefined value of a first-class type.
class UndefValue : public Value {
 public:
  explicit UndefValue(Type* type) : Value(Kind::Undef, type, "") {}

  static bool classof(const Value* v) { return v->kind() == Kind::Undef; }
};

class Function;

/// Formal parameter of a function.
class Argument : public Value {
 public:
  Argument(Type* type, std::string name, Function* parent, unsigned index)
      : Value(Kind::Argument, type, std::move(name)),
        parent_(parent),
        index_(index) {}

  Function* parent() const { return parent_; }
  unsigned index() const { return index_; }
  void setIndex(unsigned index) { index_ = index; }

  static bool classof(const Value* v) { return v->kind() == Kind::Argument; }

 private:
  Function* parent_;
  unsigned index_;
};

}  // namespace posetrl
