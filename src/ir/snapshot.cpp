#include "ir/snapshot.h"

#include <string_view>
#include <unordered_map>

#include "ir/basic_block.h"
#include "ir/module.h"
#include "support/arena.h"
#include "support/error.h"

namespace posetrl {

ModuleSnapshot::NameRef ModuleSnapshot::intern(const std::string& s) {
  NameRef r;
  r.offset = static_cast<std::uint32_t>(names_.size());
  r.length = static_cast<std::uint32_t>(s.size());
  names_.append(s);
  return r;
}

std::uint64_t ModuleSnapshot::encodeOperand(const Value* v,
                                            std::uint64_t gen) const {
  if (v->fingerprintIdValid(gen)) return (v->fingerprintId() << 1) | 1u;
  // Not stamped: must be an interned constant (stable pointer). Anything
  // else here means the module references a value outside itself.
  POSETRL_CHECK(v->isConstant(),
                "snapshot: operand is neither local nor constant");
  const auto p = reinterpret_cast<std::uint64_t>(v);
  return p;  // heap pointers are >= 8-aligned, so LSB is 0
}

bool ModuleSnapshot::matches(const Module& m) const {
  return source_ == &m && content_stamp_ == m.contentStamp();
}

void ModuleSnapshot::capture(const Module& m) {
  source_ = &m;
  content_stamp_ = m.contentStamp();
  funcs_.clear();
  arg_names_.clear();
  globals_.clear();
  blocks_.clear();
  insts_.clear();
  operands_.clear();
  names_.clear();

  // Pass 1: stamp dense ids on every module-local value, in the exact
  // order restoreInto() recreates them: functions and their arguments,
  // globals, then per function all blocks followed by all instructions.
  const std::uint64_t gen = Value::nextStampGeneration();
  std::uint64_t next_id = 0;
  for (const auto& f : m.functions()) {
    f->stampFingerprintId(gen, next_id++);
    for (const auto& a : f->args()) a->stampFingerprintId(gen, next_id++);
  }
  for (const auto& g : m.globals()) g->stampFingerprintId(gen, next_id++);
  for (const auto& f : m.functions()) {
    for (const auto& bb : f->blocks()) {
      bb->stampFingerprintId(gen, next_id++);
    }
    for (const auto& bb : f->blocks()) {
      for (const auto& inst : bb->insts()) {
        inst->stampFingerprintId(gen, next_id++);
      }
    }
  }
  num_ids_ = next_id;

  // Pass 2: write the flat records.
  std::int32_t func_index = 0;
  std::unordered_map<const Function*, std::int32_t> func_indices;
  for (const auto& f : m.functions()) {
    func_indices[f.get()] = func_index++;
    FuncRec rec;
    rec.name = intern(f->name());
    rec.type = f->functionType();
    rec.linkage = f->linkage();
    rec.intrinsic = f->intrinsicId();
    rec.attrs = f->rawAttrs();
    rec.next_value = f->next_value_;
    rec.next_block = f->next_block_;
    rec.first_arg = static_cast<std::uint32_t>(arg_names_.size());
    rec.num_args = static_cast<std::uint32_t>(f->numArgs());
    for (const auto& a : f->args()) arg_names_.push_back(intern(a->name()));
    rec.first_block = static_cast<std::uint32_t>(blocks_.size());
    rec.num_blocks = static_cast<std::uint32_t>(f->numBlocks());
    for (const auto& bb : f->blocks()) {
      BlockRec brec;
      brec.name = intern(bb->name());
      brec.first_inst = static_cast<std::uint32_t>(insts_.size());
      brec.num_insts = static_cast<std::uint32_t>(bb->size());
      for (const auto& inst : bb->insts()) {
        InstRec irec;
        irec.op = inst->opcode();
        irec.vector_width = inst->vectorWidth();
        irec.type = inst->type();
        irec.name = intern(inst->name());
        switch (inst->opcode()) {
          case Opcode::Alloca:
            irec.extra_type =
                static_cast<const AllocaInst&>(*inst).allocatedType();
            break;
          case Opcode::Load:
            irec.align = static_cast<const LoadInst&>(*inst).alignment();
            break;
          case Opcode::Store:
            irec.align = static_cast<const StoreInst&>(*inst).alignment();
            break;
          case Opcode::Gep:
            irec.extra_type =
                static_cast<const GepInst&>(*inst).sourceElement();
            break;
          case Opcode::ICmp:
            irec.pred = static_cast<int>(
                static_cast<const ICmpInst&>(*inst).pred());
            break;
          case Opcode::FCmp:
            irec.pred = static_cast<int>(
                static_cast<const FCmpInst&>(*inst).pred());
            break;
          default:
            break;
        }
        irec.first_op = static_cast<std::uint32_t>(operands_.size());
        irec.num_ops = static_cast<std::uint32_t>(inst->numOperands());
        for (Value* op : inst->operands()) {
          operands_.push_back(encodeOperand(op, gen));
        }
        insts_.push_back(irec);
      }
      blocks_.push_back(brec);
    }
    funcs_.push_back(rec);
  }
  for (const auto& g : m.globals()) {
    GlobalRec rec;
    rec.name = intern(g->name());
    rec.value_type = g->valueType();
    rec.linkage = g->linkage();
    rec.is_const = g->isConst();
    rec.init = g->init();
    if (rec.init.kind == GlobalInit::Kind::FuncPtr) {
      auto it = func_indices.find(rec.init.function);
      POSETRL_CHECK(it != func_indices.end(),
                    "snapshot: global initializer targets foreign function");
      rec.init_func = it->second;
      rec.init.function = nullptr;
    }
    globals_.push_back(rec);
  }
}

namespace {

Value* decodeConstant(std::uint64_t entry) {
  return reinterpret_cast<Value*>(entry);
}

/// Operand during instruction construction: already-materialized values
/// resolve for real; forward references get \p placeholder (any non-null
/// Value; the rebind sweep installs the real operand afterwards).
Value* resolveEarly(std::uint64_t entry, const std::vector<Value*>& table,
                    Value* placeholder) {
  if ((entry & 1u) == 0) return decodeConstant(entry);
  Value* v = table[entry >> 1];
  return v != nullptr ? v : placeholder;
}

Value* resolveFinal(std::uint64_t entry, const std::vector<Value*>& table) {
  if ((entry & 1u) == 0) return decodeConstant(entry);
  Value* v = table[entry >> 1];
  POSETRL_CHECK(v != nullptr, "snapshot: unresolved operand id");
  return v;
}

BasicBlock* resolveBlock(std::uint64_t entry,
                         const std::vector<Value*>& table) {
  return cast<BasicBlock>(resolveFinal(entry, table));
}

}  // namespace

ModuleSnapshot::RestoreResult ModuleSnapshot::restoreInto(Module& m) const {
  POSETRL_CHECK(source_ == &m,
                "ModuleSnapshot::restoreInto on a different module");
  ArenaScope arena_scope(m.arena());
  RestoreResult result;

  // 1. Teardown: drop every operand reference in every body so all user
  // lists empty out; then the old blocks/instructions can be destroyed in
  // any order, and surviving symbols carry no stale use edges.
  for (const auto& f : m.functions_) {
    for (const auto& bb : f->blocks_) {
      for (const auto& inst : bb->insts()) inst->dropAllOperands();
    }
  }
  for (const auto& f : m.functions_) f->blocks_.clear();

  // 2. Reconcile functions by name, in snapshot order. A function that
  // existed at capture time with the same signature is reused in place —
  // this is the symbol-identity gold standard that keeps pointer-keyed
  // caches meaningful across rollback. Functions the action created are
  // dropped; functions it erased or re-signatured are recreated.
  Module::FuncList old_funcs = std::move(m.functions_);
  m.functions_.clear();
  std::unordered_map<std::string_view, Module::FuncList::iterator> by_name;
  for (auto it = old_funcs.begin(); it != old_funcs.end(); ++it) {
    by_name.emplace(std::string_view((*it)->name()), it);
  }
  std::vector<Function*> func_ptrs;
  func_ptrs.reserve(funcs_.size());
  for (const FuncRec& rec : funcs_) {
    const std::string_view name = view(rec.name);
    Function* f = nullptr;
    auto it = by_name.find(name);
    if (it != by_name.end()) {
      m.functions_.splice(m.functions_.end(), old_funcs, it->second);
      by_name.erase(it);
      f = m.functions_.back().get();
      if (f->functionType() != rec.type) {
        // Signature changed (deadargelim / attributor): rebuild the
        // argument objects from the recorded type. The Function object
        // itself keeps its identity; stale Argument* in analysis caches
        // are covered by the irGeneration bump below.
        f->setFunctionTypeUnchecked(rec.type);
        f->args_.clear();
        const auto& params = rec.type->funcParams();
        for (std::size_t i = 0; i < params.size(); ++i) {
          f->args_.push_back(std::make_unique<Argument>(
              params[i], "", f, static_cast<unsigned>(i)));
        }
      }
    } else {
      result.symbols_preserved = false;
      m.functions_.push_back(
          std::make_unique<Function>(rec.type, std::string(name), &m));
      f = m.functions_.back().get();
    }
    f->setLinkage(rec.linkage);
    f->setIntrinsicId(rec.intrinsic);
    f->setRawAttrs(rec.attrs);
    f->next_value_ = rec.next_value;
    f->next_block_ = rec.next_block;
    POSETRL_CHECK(f->numArgs() == rec.num_args,
                  "snapshot: argument count drifted from function type");
    for (std::size_t i = 0; i < rec.num_args; ++i) {
      f->arg(i)->setName(std::string(view(arg_names_[rec.first_arg + i])));
    }
    func_ptrs.push_back(f);
  }
  if (!old_funcs.empty()) result.symbols_preserved = false;

  // 3. Reconcile globals by name (same protocol).
  Module::GlobalList old_globals = std::move(m.globals_);
  m.globals_.clear();
  std::unordered_map<std::string_view, Module::GlobalList::iterator>
      globals_by_name;
  for (auto it = old_globals.begin(); it != old_globals.end(); ++it) {
    globals_by_name.emplace(std::string_view((*it)->name()), it);
  }
  std::vector<GlobalVariable*> global_ptrs;
  global_ptrs.reserve(globals_.size());
  for (const GlobalRec& rec : globals_) {
    const std::string_view name = view(rec.name);
    GlobalVariable* g = nullptr;
    auto it = globals_by_name.find(name);
    if (it != globals_by_name.end() &&
        (*it->second)->valueType() == rec.value_type) {
      m.globals_.splice(m.globals_.end(), old_globals, it->second);
      globals_by_name.erase(it);
      g = m.globals_.back().get();
    } else {
      if (it != globals_by_name.end()) {
        // Same name, different value type: the old object cannot be
        // re-typed in place; leave it in old_globals for destruction.
        globals_by_name.erase(it);
      }
      result.symbols_preserved = false;
      m.globals_.push_back(std::make_unique<GlobalVariable>(
          m.types_.ptrTo(rec.value_type), rec.value_type, std::string(name),
          GlobalInit::zero(), rec.linkage, rec.is_const));
      g = m.globals_.back().get();
    }
    GlobalInit init = rec.init;
    if (init.kind == GlobalInit::Kind::FuncPtr) {
      init.function = func_ptrs[static_cast<std::size_t>(rec.init_func)];
    }
    g->setInit(std::move(init));
    g->setLinkage(rec.linkage);
    g->setConst(rec.is_const);
    global_ptrs.push_back(g);
  }
  if (!old_globals.empty()) result.symbols_preserved = false;

  // 4. Rebuild the value table in capture order, recreating bodies.
  std::vector<Value*> table(num_ids_, nullptr);
  std::size_t id = 0;
  for (std::size_t i = 0; i < funcs_.size(); ++i) {
    table[id++] = func_ptrs[i];
    for (const auto& a : func_ptrs[i]->args()) table[id++] = a.get();
  }
  for (GlobalVariable* g : global_ptrs) table[id++] = g;

  Type* label_type = m.types_.voidTy();
  for (std::size_t fi = 0; fi < funcs_.size(); ++fi) {
    const FuncRec& frec = funcs_[fi];
    Function* f = func_ptrs[fi];
    for (std::uint32_t bi = 0; bi < frec.num_blocks; ++bi) {
      const BlockRec& brec = blocks_[frec.first_block + bi];
      f->blocks_.push_back(std::make_unique<BasicBlock>(
          label_type, std::string(view(brec.name)), f));
      table[id++] = f->blocks_.back().get();
    }
    std::vector<Instruction*> created;
    {
      // Construction transiently holds placeholder operands for forward
      // references; suspend user registration so bookkeeping is
      // established exactly once, by the rebind sweep below (the same
      // protocol cloneModule uses).
      UserTrackingSuspender suspend;
      auto block_it = f->blocks_.begin();
      for (std::uint32_t bi = 0; bi < frec.num_blocks; ++bi, ++block_it) {
        const BlockRec& brec = blocks_[frec.first_block + bi];
        BasicBlock* nb = block_it->get();
        for (std::uint32_t ii = 0; ii < brec.num_insts; ++ii) {
          const InstRec& irec = insts_[brec.first_inst + ii];
          auto opv = [&](std::uint32_t j) {
            return resolveEarly(operands_[irec.first_op + j], table, f);
          };
          auto blk = [&](std::uint32_t j) {
            return resolveBlock(operands_[irec.first_op + j], table);
          };
          std::string name(view(irec.name));
          Instruction* out = nullptr;
          switch (irec.op) {
            case Opcode::Alloca:
              out = new AllocaInst(irec.type, irec.extra_type,
                                   std::move(name));
              break;
            case Opcode::Load: {
              auto* n = new LoadInst(irec.type, opv(0), std::move(name));
              n->setAlignment(irec.align);
              out = n;
              break;
            }
            case Opcode::Store: {
              auto* n = new StoreInst(irec.type, opv(0), opv(1));
              n->setAlignment(irec.align);
              out = n;
              break;
            }
            case Opcode::Gep: {
              std::vector<Value*> indices;
              indices.reserve(irec.num_ops - 1);
              for (std::uint32_t j = 1; j < irec.num_ops; ++j) {
                indices.push_back(opv(j));
              }
              out = new GepInst(irec.type, irec.extra_type, opv(0),
                                std::move(indices), std::move(name));
              break;
            }
            case Opcode::Phi: {
              auto* n = new PhiInst(irec.type, std::move(name));
              for (std::uint32_t j = 0; j + 1 < irec.num_ops; j += 2) {
                n->addIncoming(opv(j), blk(j + 1));
              }
              out = n;
              break;
            }
            case Opcode::Call: {
              std::vector<Value*> call_args;
              call_args.reserve(irec.num_ops - 1);
              for (std::uint32_t j = 1; j < irec.num_ops; ++j) {
                call_args.push_back(opv(j));
              }
              out = new CallInst(irec.type, opv(0), std::move(call_args),
                                 std::move(name));
              break;
            }
            case Opcode::Ret:
              out = new RetInst(irec.type,
                                irec.num_ops != 0 ? opv(0) : nullptr);
              break;
            case Opcode::Br:
              out = new BrInst(irec.type, blk(0));
              break;
            case Opcode::CondBr:
              out = new CondBrInst(irec.type, opv(0), blk(1), blk(2));
              break;
            case Opcode::Switch: {
              auto* n = new SwitchInst(irec.type, opv(0), blk(1));
              for (std::uint32_t j = 2; j + 1 < irec.num_ops; j += 2) {
                n->addCase(
                    cast<ConstantInt>(
                        decodeConstant(operands_[irec.first_op + j])),
                    blk(j + 1));
              }
              out = n;
              break;
            }
            case Opcode::Unreachable:
              out = new UnreachableInst(irec.type);
              break;
            case Opcode::Select:
              out = new SelectInst(irec.type, opv(0), opv(1), opv(2),
                                   std::move(name));
              break;
            case Opcode::ICmp:
              out = new ICmpInst(irec.type,
                                 static_cast<ICmpInst::Pred>(irec.pred),
                                 opv(0), opv(1), std::move(name));
              break;
            case Opcode::FCmp:
              out = new FCmpInst(irec.type,
                                 static_cast<FCmpInst::Pred>(irec.pred),
                                 opv(0), opv(1), std::move(name));
              break;
            default: {
              if (irec.op >= Opcode::Add && irec.op <= Opcode::FDiv) {
                out = new BinaryInst(irec.op, irec.type, opv(0), opv(1),
                                     std::move(name));
              } else if (irec.op >= Opcode::ZExt) {
                out = new CastInst(irec.op, irec.type, opv(0),
                                   std::move(name));
              } else {
                POSETRL_UNREACHABLE("snapshot: unhandled opcode");
              }
              break;
            }
          }
          out->setVectorWidth(irec.vector_width);
          nb->pushBack(std::unique_ptr<Instruction>(out));
          table[id++] = out;
          created.push_back(out);
        }
      }
    }
    // Rebind sweep: every operand slot gets its final value and registers
    // its use exactly once (construction ran suspended).
    std::size_t ci = 0;
    for (std::uint32_t bi = 0; bi < frec.num_blocks; ++bi) {
      const BlockRec& brec = blocks_[frec.first_block + bi];
      for (std::uint32_t ii = 0; ii < brec.num_insts; ++ii, ++ci) {
        const InstRec& irec = insts_[brec.first_inst + ii];
        Instruction* inst = created[ci];
        POSETRL_CHECK(inst->numOperands() == irec.num_ops,
                      "snapshot: operand count drifted in reconstruction");
        for (std::uint32_t j = 0; j < irec.num_ops; ++j) {
          inst->rebindOperandForClone(
              j, resolveFinal(operands_[irec.first_op + j], table));
        }
      }
    }
  }
  POSETRL_CHECK(id == num_ids_, "snapshot: id walk out of sync");

  // 5. Blocks and instructions are new objects: invalidate pointer-holding
  // caches via the generation stamp, and revert the content stamp (the
  // content is bit-for-bit the captured one again).
  m.bumpIrGeneration();
  m.restoreContentStamp(content_stamp_);
  return result;
}

}  // namespace posetrl
