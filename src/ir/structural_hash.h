#pragma once

/// \file structural_hash.h
/// Structural content hash of a module: a single O(instructions) walk that
/// covers everything the textual printer serializes (names, types,
/// opcodes, operands, predicates, alignments, vector widths, linkage,
/// attributes, globals and their initializers). Replaces hashing
/// `printModule(m)` as the embedding-cache key — the walk allocates
/// nothing and never materializes the module text.
///
/// Guarantees: modules with equal printed form hash equally, even across
/// distinct Module objects (types are hashed structurally, not by their
/// interning address); distinct contents collide only with 64-bit-hash
/// probability, the same contract the previous print-then-FNV key had.

#include <cstdint>

namespace posetrl {

class Module;
class Type;

/// Structural type hash, independent of interning addresses (so hashes and
/// analysis fingerprints agree across module clones). Memoized in the Type
/// itself (Type::analysisHashCache) — types are immutable, and every walk
/// hits the same handful of types for every operand of every instruction.
std::uint64_t structuralTypeHash(const Type* t);

std::uint64_t moduleContentHash(const Module& m);

}  // namespace posetrl
