#include "ir/function.h"

#include "ir/module.h"

namespace posetrl {

Function::Function(Type* func_type, std::string name, Module* parent)
    : Value(Kind::Function, func_type, std::move(name)), parent_(parent) {
  POSETRL_CHECK(func_type->isFunction(), "Function needs a function type");
  const auto& params = func_type->funcParams();
  args_.reserve(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    args_.push_back(std::make_unique<Argument>(
        params[i], "arg" + std::to_string(i), this,
        static_cast<unsigned>(i)));
  }
}

void Function::removeArg(std::size_t i) {
  POSETRL_CHECK(i < args_.size(), "argument index out of range");
  POSETRL_CHECK(!args_[i]->hasUses(), "removing argument with uses");
  args_.erase(args_.begin() + static_cast<std::ptrdiff_t>(i));
  for (std::size_t j = i; j < args_.size(); ++j) {
    args_[j]->setIndex(static_cast<unsigned>(j));
  }
  // Rebuild the function type without the removed parameter.
  std::vector<Type*> params;
  params.reserve(args_.size());
  for (const auto& a : args_) params.push_back(a->type());
  Type* new_type = parent_->types().funcType(returnType(), std::move(params));
  mutateType(new_type);
}

BasicBlock* Function::addBlock(const std::string& name) {
  POSETRL_CHECK(parent_ != nullptr, "function has no module");
  Type* label = parent_->types().voidTy();
  blocks_.push_back(
      std::make_unique<BasicBlock>(label, uniqueBlockName(name), this));
  return blocks_.back().get();
}

BasicBlock* Function::addBlockAfter(BasicBlock* after,
                                    const std::string& name) {
  Type* label = parent_->types().voidTy();
  auto block =
      std::make_unique<BasicBlock>(label, uniqueBlockName(name), this);
  BasicBlock* raw = block.get();
  for (auto it = blocks_.begin(); it != blocks_.end(); ++it) {
    if (it->get() == after) {
      blocks_.insert(std::next(it), std::move(block));
      return raw;
    }
  }
  POSETRL_UNREACHABLE("addBlockAfter: block not in function");
}

void Function::eraseBlock(BasicBlock* bb) {
  // Drop all operand references first so sibling user lists stay valid, then
  // require all results dead.
  for (auto& inst : bb->insts_) inst->dropAllOperands();
  for (auto& inst : bb->insts_) {
    POSETRL_CHECK(!inst->hasUses(),
                  "erasing block whose instruction still has uses");
  }
  POSETRL_CHECK(!bb->hasUses(), "erasing block that is still referenced");
  for (auto it = blocks_.begin(); it != blocks_.end(); ++it) {
    if (it->get() == bb) {
      blocks_.erase(it);
      return;
    }
  }
  POSETRL_UNREACHABLE("eraseBlock: block not in function");
}

void Function::makeEntry(BasicBlock* bb) {
  for (auto it = blocks_.begin(); it != blocks_.end(); ++it) {
    if (it->get() == bb) {
      std::unique_ptr<BasicBlock> owned = std::move(*it);
      blocks_.erase(it);
      blocks_.push_front(std::move(owned));
      return;
    }
  }
  POSETRL_UNREACHABLE("makeEntry: block not in function");
}

std::string Function::nextValueName() {
  return "t" + std::to_string(next_value_++);
}

std::string Function::uniqueBlockName(const std::string& base) {
  return base + "." + std::to_string(next_block_++);
}

std::size_t Function::instructionCount() const {
  std::size_t n = 0;
  for (const auto& bb : blocks_) n += bb->size();
  return n;
}

}  // namespace posetrl
