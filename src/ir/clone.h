#pragma once

/// \file clone.h
/// Cloning utilities: whole-module cloning (used by the RL environment to
/// restore pristine state at episode boundaries) and intra-module block
/// cloning (used by the inliner, loop unroller and loop unswitch).

#include <map>
#include <memory>
#include <vector>

namespace posetrl {

class Module;
class Function;
class BasicBlock;
class Value;
class Type;
class TypeContext;

using ValueMap = std::map<const Value*, Value*>;

/// Re-creates \p src in \p dst's type context (types are per-module interned).
Type* mapType(TypeContext& dst, const Type* src);

/// Deep-copies a module, including globals, declarations, attributes,
/// intrinsic ids and all function bodies.
std::unique_ptr<Module> cloneModule(const Module& src);

/// Clones all basic blocks of \p src into \p dst_func (appended at the end,
/// source entry first). \p map must already map the values the caller wants
/// substituted (typically src arguments); on return it additionally maps
/// every source block and instruction to its clone. Operands not found in
/// the map are kept as-is (constants, globals, same-module functions).
/// Returns the cloned blocks in source order.
std::vector<BasicBlock*> cloneBlocksInto(Function* dst_func,
                                         const Function& src, ValueMap& map);

}  // namespace posetrl
