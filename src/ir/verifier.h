#pragma once

/// \file verifier.h
/// Structural and semantic well-formedness checks for MiniIR. Run after
/// every pass in the test suite's property checks; a failure indicates a
/// bug in the producing pass, not in user input.

#include <set>
#include <string>
#include <vector>

namespace posetrl {

class BasicBlock;
class Module;
class Function;

/// Result of verification: empty error list means the IR is well formed.
struct VerifyResult {
  std::vector<std::string> errors;

  bool ok() const { return errors.empty(); }
  /// All error messages joined with newlines.
  std::string message() const;
};

/// Verifies an entire module (globals, declarations, every function body).
VerifyResult verifyModule(const Module& module);

/// Verifies a single function body.
VerifyResult verifyFunction(const Function& function);

class Instruction;

/// Appends per-opcode type-rule violations of one instruction to \p out.
/// Shared with the fast per-pass verifier in src/analysis/fast_verifier.h.
void checkInstructionTypes(const Function* f, const Instruction& inst,
                           VerifyResult& out);

/// Appends global-variable initializer violations to \p out (also shared
/// with the fast verifier).
void checkGlobalInits(const Module& module, VerifyResult& out);

/// Blocks reachable from \p f's entry (empty for declarations). Shared by
/// the verifier's dominance checks and the lint checkers, which need a
/// const view that analysis/cfg.h does not provide.
std::set<const BasicBlock*> reachableBlockSet(const Function& f);

}  // namespace posetrl
