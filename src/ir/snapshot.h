#pragma once

/// \file snapshot.h
/// Flat-buffer module snapshots with in-place restore: the sandbox's
/// rollback primitive. capture() encodes every function body into dense
/// POD records (no IR objects, no per-value allocations); restoreInto()
/// rebuilds the bodies inside the *same* Module object, drawing
/// instruction/block storage from the module's bump arena.
///
/// Contrast with cloneModule: a clone materializes a second full object
/// graph up front (the dominant cost of every environment step), and
/// rolling back by swapping modules destroys all symbol identity —
/// forcing wholesale invalidation of the AnalysisManager and the fast
/// verifier's clean-function cache. The snapshot keeps the Module,
/// TypeContext, interned constants, and (whenever the action did not add
/// or remove symbols) the Function/GlobalVariable objects themselves
/// stable across a rollback, so pointer-keyed caches can be rehydrated
/// precisely instead of dropped (see DESIGN.md, "Memory layout and
/// arenas").
///
/// Identity contract after restoreInto():
///   - Module, TypeContext (all Type*), and interned constants: same
///     objects, always.
///   - Function / GlobalVariable / Argument objects: same objects iff the
///     symbol existed at capture time with the same signature; the result's
///     `symbols_preserved` reports whether this held for *all* symbols.
///   - BasicBlock / Instruction objects: always recreated (new addresses).
///     Module::irGeneration() is bumped so generation-stamped caches
///     (AnalysisManager) self-invalidate even though the content
///     fingerprint reverts to its pre-action value.
///   - Module::contentStamp() is restored to its capture-time value (the
///     stamp uniquely identifies this content; see module.h).

#include <cstdint>
#include <string>
#include <vector>

#include "ir/function.h"
#include "ir/global_variable.h"
#include "ir/instruction.h"

namespace posetrl {

class Module;

/// One captured module state. Reusable: capture() clears and refills the
/// buffers (the environment keeps one scratch snapshot per step to avoid
/// re-allocating them), and restoreInto() may be called any number of
/// times. A snapshot is only valid for the module it was captured from —
/// it stores raw Type* and interned-constant pointers, which are stable
/// for that module's lifetime but meaningless in any other.
class ModuleSnapshot {
 public:
  /// Encodes \p m's current state, replacing any previous capture.
  void capture(const Module& m);

  struct RestoreResult {
    /// True when every Function/GlobalVariable object present at capture
    /// time survived in place (nothing created, erased, or re-signatured in
    /// between). When false, pointer caches keyed by module-level symbols
    /// (the fast verifier's clean-function cache) must be cleared: their
    /// keys may dangle or alias recycled addresses.
    bool symbols_preserved = true;
  };

  /// Rebuilds the captured state inside \p m (must be the captured module).
  RestoreResult restoreInto(Module& m) const;

  bool valid() const { return source_ != nullptr; }
  /// True when this snapshot was captured from \p m and m's content stamp
  /// still equals the capture-time stamp. Stamps are never reused for
  /// different content (module.h), so a matching snapshot already encodes
  /// the module's current state and capture() can be skipped.
  bool matches(const Module& m) const;
  const Module* source() const { return source_; }
  std::size_t instructionCount() const { return insts_.size(); }

 private:
  struct NameRef {
    std::uint32_t offset = 0;
    std::uint32_t length = 0;
  };
  struct InstRec {
    Opcode op;
    int pred = 0;           ///< ICmp/FCmp predicate (as int).
    unsigned align = 1;     ///< Load/Store alignment.
    unsigned vector_width = 1;
    Type* type = nullptr;
    Type* extra_type = nullptr;  ///< Alloca allocated / Gep source element.
    NameRef name;
    std::uint32_t first_op = 0, num_ops = 0;
  };
  struct BlockRec {
    NameRef name;
    std::uint32_t first_inst = 0, num_insts = 0;
  };
  struct FuncRec {
    NameRef name;
    Type* type = nullptr;
    Function::Linkage linkage = Function::Linkage::External;
    IntrinsicId intrinsic = IntrinsicId::None;
    std::uint32_t attrs = 0;
    std::uint64_t next_value = 0, next_block = 0;
    std::uint32_t first_arg = 0, num_args = 0;
    std::uint32_t first_block = 0, num_blocks = 0;
  };
  struct GlobalRec {
    NameRef name;
    Type* value_type = nullptr;
    GlobalVariable::Linkage linkage = GlobalVariable::Linkage::External;
    bool is_const = false;
    GlobalInit init;        ///< init.function cleared; see init_func.
    std::int32_t init_func = -1;  ///< FuncPtr target as index into funcs_.
  };

  NameRef intern(const std::string& s);
  std::string_view view(NameRef r) const {
    return std::string_view(names_).substr(r.offset, r.length);
  }
  std::uint64_t encodeOperand(const Value* v, std::uint64_t gen) const;

  const Module* source_ = nullptr;
  std::uint64_t content_stamp_ = 0;
  std::uint64_t num_ids_ = 0;
  std::vector<FuncRec> funcs_;
  std::vector<NameRef> arg_names_;
  std::vector<GlobalRec> globals_;
  std::vector<BlockRec> blocks_;
  std::vector<InstRec> insts_;
  /// Operand entries: LSB set → dense value id (table index << 1 | 1);
  /// LSB clear → raw Value* of an interned constant (stable for the
  /// module's lifetime; heap pointers are at least 8-aligned).
  std::vector<std::uint64_t> operands_;
  std::string names_;
};

}  // namespace posetrl
