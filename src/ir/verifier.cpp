#include "ir/verifier.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/instruction.h"
#include "ir/module.h"
#include "ir/printer.h"

namespace posetrl {

std::string VerifyResult::message() const {
  std::string out;
  for (const auto& e : errors) {
    out += e;
    out += "\n";
  }
  return out;
}

namespace {

/// Collects verification errors with contextual prefixes.
class Checker {
 public:
  explicit Checker(VerifyResult& result) : result_(result) {}

  void error(const Function* f, const Instruction* inst,
             const std::string& msg) {
    std::ostringstream os;
    if (f != nullptr) os << "in @" << f->name() << ": ";
    os << msg;
    if (inst != nullptr) os << "  [" << printInstruction(*inst) << "]";
    result_.errors.push_back(os.str());
  }

 private:
  VerifyResult& result_;
};

/// Simple iterative dominator computation over reachable blocks. Returns
/// dom[b] = set of blocks dominating b (including b itself).
std::map<const BasicBlock*, std::set<const BasicBlock*>> computeDominators(
    const Function& f, const std::set<const BasicBlock*>& reachable) {
  std::map<const BasicBlock*, std::set<const BasicBlock*>> dom;
  std::vector<const BasicBlock*> blocks(reachable.begin(), reachable.end());
  const BasicBlock* entry = f.entry();
  for (const BasicBlock* b : blocks) {
    if (b == entry) {
      dom[b] = {b};
    } else {
      dom[b] = std::set<const BasicBlock*>(reachable.begin(),
                                           reachable.end());
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const BasicBlock* b : blocks) {
      if (b == entry) continue;
      std::set<const BasicBlock*> merged;
      bool first = true;
      for (const BasicBlock* p : b->predecessors()) {
        if (!reachable.count(p)) continue;
        if (first) {
          merged = dom[p];
          first = false;
        } else {
          std::set<const BasicBlock*> tmp;
          std::set_intersection(merged.begin(), merged.end(), dom[p].begin(),
                                dom[p].end(),
                                std::inserter(tmp, tmp.begin()));
          merged = std::move(tmp);
        }
      }
      merged.insert(b);
      if (merged != dom[b]) {
        dom[b] = std::move(merged);
        changed = true;
      }
    }
  }
  return dom;
}

bool isValidCast(Opcode op, Type* from, Type* to) {
  switch (op) {
    case Opcode::ZExt:
    case Opcode::SExt:
      return from->isInteger() && to->isInteger() &&
             from->intBits() < to->intBits();
    case Opcode::Trunc:
      return from->isInteger() && to->isInteger() &&
             from->intBits() > to->intBits();
    case Opcode::SIToFP:
      return from->isInteger() && to->isFloat();
    case Opcode::FPToSI:
      return from->isFloat() && to->isInteger();
    default:
      return false;
  }
}

void checkInstructionTypeRules(Checker& ck, const Function* f,
                               const Instruction& inst) {
  const Opcode op = inst.opcode();
  if (inst.isBinaryOp()) {
    if (inst.operand(0)->type() != inst.type() ||
        inst.operand(1)->type() != inst.type()) {
      ck.error(f, &inst, "binary operand/result type mismatch");
    }
    if (inst.isIntBinaryOp() && !inst.type()->isInteger()) {
      ck.error(f, &inst, "integer binary op on non-integer type");
    }
    if (inst.isFloatBinaryOp() && !inst.type()->isFloat()) {
      ck.error(f, &inst, "float binary op on non-float type");
    }
    return;
  }
  switch (op) {
    case Opcode::Load: {
      const auto& load = static_cast<const LoadInst&>(inst);
      if (!load.pointer()->type()->isPointer()) {
        ck.error(f, &inst, "load pointer operand is not a pointer");
      } else if (load.pointer()->type()->pointee() != load.type()) {
        ck.error(f, &inst, "load result type mismatch");
      }
      break;
    }
    case Opcode::Store: {
      const auto& store = static_cast<const StoreInst&>(inst);
      if (!store.pointer()->type()->isPointer()) {
        ck.error(f, &inst, "store pointer operand is not a pointer");
      } else if (store.pointer()->type()->pointee() !=
                 store.value()->type()) {
        ck.error(f, &inst, "store value type mismatch");
      }
      break;
    }
    case Opcode::Gep: {
      const auto& gep = static_cast<const GepInst&>(inst);
      if (!gep.base()->type()->isPointer()) {
        ck.error(f, &inst, "gep base is not a pointer");
        break;
      }
      if (gep.base()->type()->pointee() != gep.sourceElement()) {
        ck.error(f, &inst, "gep source element mismatch with base pointee");
      }
      for (std::size_t i = 0; i < gep.numIndices(); ++i) {
        if (!gep.index(i)->type()->isInteger()) {
          ck.error(f, &inst, "gep index is not an integer");
        }
      }
      break;
    }
    case Opcode::ICmp: {
      if (inst.operand(0)->type() != inst.operand(1)->type()) {
        ck.error(f, &inst, "icmp operand type mismatch");
      }
      Type* t = inst.operand(0)->type();
      if (!t->isInteger() && !t->isPointer()) {
        ck.error(f, &inst, "icmp on non-integer/pointer type");
      }
      if (!inst.type()->isInteger() || inst.type()->intBits() != 1) {
        ck.error(f, &inst, "icmp result must be i1");
      }
      break;
    }
    case Opcode::FCmp: {
      if (inst.operand(0)->type() != inst.operand(1)->type() ||
          !inst.operand(0)->type()->isFloat()) {
        ck.error(f, &inst, "fcmp operand types invalid");
      }
      break;
    }
    case Opcode::Select: {
      const auto& sel = static_cast<const SelectInst&>(inst);
      if (!sel.condition()->type()->isInteger() ||
          sel.condition()->type()->intBits() != 1) {
        ck.error(f, &inst, "select condition must be i1");
      }
      if (sel.trueValue()->type() != inst.type() ||
          sel.falseValue()->type() != inst.type()) {
        ck.error(f, &inst, "select arm type mismatch");
      }
      break;
    }
    case Opcode::ZExt:
    case Opcode::SExt:
    case Opcode::Trunc:
    case Opcode::SIToFP:
    case Opcode::FPToSI:
      if (!isValidCast(op, inst.operand(0)->type(), inst.type())) {
        ck.error(f, &inst, "invalid cast");
      }
      break;
    case Opcode::Call: {
      const auto& call = static_cast<const CallInst&>(inst);
      Type* callee_ty = call.callee()->type();
      Type* fty = nullptr;
      if (callee_ty->isFunction()) {
        fty = callee_ty;
      } else if (callee_ty->isPointer() &&
                 callee_ty->pointee()->isFunction()) {
        fty = callee_ty->pointee();
      } else {
        ck.error(f, &inst, "call callee is not a function");
        break;
      }
      if (fty->funcReturn() != inst.type()) {
        ck.error(f, &inst, "call result type mismatch");
      }
      const auto& params = fty->funcParams();
      if (params.size() != call.numArgs()) {
        ck.error(f, &inst, "call argument count mismatch");
        break;
      }
      for (std::size_t i = 0; i < params.size(); ++i) {
        if (call.arg(i)->type() != params[i]) {
          ck.error(f, &inst, "call argument type mismatch");
        }
      }
      break;
    }
    case Opcode::Ret: {
      const auto& ret = static_cast<const RetInst&>(inst);
      Type* rt = f->returnType();
      if (rt->isVoid()) {
        if (ret.hasValue()) ck.error(f, &inst, "ret value in void function");
      } else if (!ret.hasValue()) {
        ck.error(f, &inst, "ret void in non-void function");
      } else if (ret.value()->type() != rt) {
        ck.error(f, &inst, "ret value type mismatch");
      }
      break;
    }
    case Opcode::CondBr: {
      const auto& cbr = static_cast<const CondBrInst&>(inst);
      Type* ct = cbr.condition()->type();
      if (!ct->isInteger() || ct->intBits() != 1) {
        ck.error(f, &inst, "condbr condition must be i1");
      }
      break;
    }
    case Opcode::Switch: {
      const auto& sw = static_cast<const SwitchInst&>(inst);
      if (!sw.condition()->type()->isInteger()) {
        ck.error(f, &inst, "switch condition must be integer");
      }
      for (std::size_t i = 0; i < sw.numCases(); ++i) {
        if (sw.caseValue(i)->type() != sw.condition()->type()) {
          ck.error(f, &inst, "switch case type mismatch");
        }
      }
      break;
    }
    default:
      break;
  }
}

void verifyFunctionBody(Checker& ck, const Function& f) {
  // Entry block must have no predecessors.
  if (!f.entry()->predecessors().empty()) {
    ck.error(&f, nullptr, "entry block has predecessors");
  }

  std::set<const BasicBlock*> block_set;
  for (const auto& bb : f.blocks()) block_set.insert(bb.get());

  for (const auto& bb : f.blocks()) {
    if (bb->parent() != &f) {
      ck.error(&f, nullptr, "block parent pointer wrong: " + bb->name());
    }
    if (bb->empty()) {
      ck.error(&f, nullptr, "empty basic block: " + bb->name());
      continue;
    }
    // Exactly one terminator, at the end; phis only at the head.
    bool seen_non_phi = false;
    std::size_t idx = 0;
    const std::size_t last = bb->size() - 1;
    for (const auto& inst : bb->insts()) {
      if (inst->parent() != bb.get()) {
        ck.error(&f, inst.get(), "instruction parent pointer wrong");
      }
      if (inst->isTerminator() != (idx == last)) {
        ck.error(&f, inst.get(),
                 idx == last ? "block does not end with a terminator"
                             : "terminator in the middle of a block");
      }
      if (inst->opcode() == Opcode::Phi) {
        if (seen_non_phi) ck.error(&f, inst.get(), "phi after non-phi");
      } else {
        seen_non_phi = true;
      }
      if (!inst->type()->isVoid() && inst->name().empty()) {
        ck.error(&f, inst.get(), "unnamed instruction result");
      }
      // Successor targets must live in this function.
      for (std::size_t s = 0; s < inst->numSuccessors(); ++s) {
        if (!block_set.count(inst->successor(s))) {
          ck.error(&f, inst.get(), "branch to block of another function");
        }
      }
      checkInstructionTypeRules(ck, &f, *inst);
      ++idx;
    }
  }

  // Phi incoming edges must exactly match predecessor sets.
  for (const auto& bb : f.blocks()) {
    const auto preds = bb->predecessors();
    for (PhiInst* phi : bb->phis()) {
      if (phi->numIncoming() != preds.size()) {
        ck.error(&f, phi, "phi incoming count != predecessor count of " +
                              bb->name());
        continue;
      }
      std::set<const BasicBlock*> incoming;
      for (std::size_t i = 0; i < phi->numIncoming(); ++i) {
        incoming.insert(phi->incomingBlock(i));
        if (phi->incomingValue(i)->type() != phi->type()) {
          ck.error(&f, phi, "phi incoming value type mismatch");
        }
      }
      for (const BasicBlock* p : preds) {
        if (!incoming.count(p)) {
          ck.error(&f, phi, "phi missing incoming edge from " + p->name());
        }
      }
    }
  }

  // SSA dominance over reachable blocks.
  const auto reachable = reachableBlockSet(f);
  const auto dom = computeDominators(f, reachable);
  const auto dominates = [&](const BasicBlock* a, const BasicBlock* b) {
    auto it = dom.find(b);
    return it != dom.end() && it->second.count(a) > 0;
  };
  // Per-block instruction order index for same-block checks.
  std::map<const Instruction*, std::size_t> order;
  for (const auto& bb : f.blocks()) {
    std::size_t i = 0;
    for (const auto& inst : bb->insts()) order[inst.get()] = i++;
  }
  for (const auto& bb : f.blocks()) {
    if (!reachable.count(bb.get())) continue;
    for (const auto& inst : bb->insts()) {
      for (std::size_t oi = 0; oi < inst->numOperands(); ++oi) {
        const auto* def = dynCast<Instruction>(inst->operand(oi));
        if (def == nullptr) continue;
        if (def->parent() == nullptr ||
            def->parent()->parent() != &f) {
          ck.error(&f, inst.get(), "operand from another function");
          continue;
        }
        if (inst->opcode() == Opcode::Phi) {
          if (oi % 2 != 0) continue;  // Block operands.
          const auto* phi = static_cast<const PhiInst*>(inst.get());
          const BasicBlock* pred = phi->incomingBlock(oi / 2);
          if (!reachable.count(pred)) continue;
          if (!dominates(def->parent(), pred)) {
            ck.error(&f, inst.get(),
                     "phi incoming value does not dominate its edge");
          }
        } else if (def->parent() == bb.get()) {
          if (order[def] >= order[inst.get()]) {
            ck.error(&f, inst.get(), "use before def in block");
          }
        } else if (!dominates(def->parent(), bb.get())) {
          ck.error(&f, inst.get(), "operand does not dominate use");
        }
      }
    }
  }
}

/// Checks that operand/user bookkeeping is globally consistent.
void verifyUseDefIntegrity(Checker& ck, const Module& m) {
  // value -> number of operand slots referencing it.
  std::map<const Value*, std::size_t> operand_counts;
  for (const auto& f : m.functions()) {
    for (const auto& bb : f->blocks()) {
      for (const auto& inst : bb->insts()) {
        for (const Value* op : inst->operands()) ++operand_counts[op];
      }
    }
  }
  const auto check_value = [&](const Value* v, const std::string& what) {
    const std::size_t expected = operand_counts.count(v)
                                     ? operand_counts.at(v)
                                     : 0;
    if (v->numUses() != expected) {
      ck.error(nullptr, nullptr,
               "use-list size mismatch for " + what + " (" +
                   std::to_string(v->numUses()) + " recorded vs " +
                   std::to_string(expected) + " actual)");
    }
  };
  for (const auto& f : m.functions()) {
    check_value(f.get(), "@" + f->name());
    for (const auto& a : f->args()) check_value(a.get(), "%" + a->name());
    for (const auto& bb : f->blocks()) {
      check_value(bb.get(), "label " + bb->name());
      for (const auto& inst : bb->insts()) {
        check_value(inst.get(), "%" + inst->name());
      }
    }
  }
  for (const auto& g : m.globals()) check_value(g.get(), "@" + g->name());
}

}  // namespace

void checkInstructionTypes(const Function* f, const Instruction& inst,
                           VerifyResult& out) {
  Checker ck(out);
  checkInstructionTypeRules(ck, f, inst);
}

std::set<const BasicBlock*> reachableBlockSet(const Function& f) {
  std::set<const BasicBlock*> seen;
  if (f.isDeclaration()) return seen;
  std::vector<const BasicBlock*> stack{f.entry()};
  seen.insert(f.entry());
  while (!stack.empty()) {
    const BasicBlock* bb = stack.back();
    stack.pop_back();
    const Instruction* term = bb->terminator();
    if (term == nullptr) continue;
    for (std::size_t i = 0; i < term->numSuccessors(); ++i) {
      const BasicBlock* s = term->successor(i);
      if (seen.insert(s).second) stack.push_back(s);
    }
  }
  return seen;
}

VerifyResult verifyFunction(const Function& function) {
  VerifyResult result;
  Checker ck(result);
  if (!function.isDeclaration()) verifyFunctionBody(ck, function);
  return result;
}

void checkGlobalInits(const Module& module, VerifyResult& out) {
  Checker ck(out);
  for (const auto& g : module.globals()) {
    const GlobalInit& init = g->init();
    Type* vt = g->valueType();
    switch (init.kind) {
      case GlobalInit::Kind::Int:
        if (!vt->isInteger()) {
          ck.error(nullptr, nullptr, "int init on non-integer global @" +
                                         g->name());
        }
        break;
      case GlobalInit::Kind::Float:
        if (!vt->isFloat()) {
          ck.error(nullptr, nullptr,
                   "float init on non-float global @" + g->name());
        }
        break;
      case GlobalInit::Kind::IntArray:
        if (!vt->isArray() || !vt->arrayElement()->isInteger()) {
          ck.error(nullptr, nullptr,
                   "array init on non-int-array global @" + g->name());
        } else if (init.elements.size() > vt->arrayCount()) {
          ck.error(nullptr, nullptr,
                   "array init longer than global @" + g->name());
        }
        break;
      case GlobalInit::Kind::FuncPtr:
        if (!vt->isPointer() || !vt->pointee()->isFunction()) {
          ck.error(nullptr, nullptr,
                   "funcptr init on non-function-pointer global @" +
                       g->name());
        } else if (init.function == nullptr ||
                   init.function->functionType() != vt->pointee()) {
          ck.error(nullptr, nullptr,
                   "funcptr init type mismatch on @" + g->name());
        }
        break;
      case GlobalInit::Kind::Zero:
        break;
    }
  }
}

VerifyResult verifyModule(const Module& module) {
  VerifyResult result;
  Checker ck(result);
  std::set<std::string> names;
  for (const auto& f : module.functions()) {
    if (!names.insert(f->name()).second) {
      ck.error(nullptr, nullptr, "duplicate function name @" + f->name());
    }
    if (!f->isDeclaration()) verifyFunctionBody(ck, *f);
  }
  checkGlobalInits(module, result);
  verifyUseDefIntegrity(ck, module);
  return result;
}

}  // namespace posetrl
