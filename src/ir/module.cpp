#include "ir/module.h"

#include <cstring>

namespace posetrl {

Module::Module(std::string name) : name_(std::move(name)) {}

ConstantInt* Module::constantInt(Type* type, std::int64_t value) {
  POSETRL_CHECK(type->isInteger(), "constantInt needs an integer type");
  const std::int64_t canon = ConstantInt::canonicalize(value, type->intBits());
  const auto key = std::make_pair(type, canon);
  auto it = int_constants_.find(key);
  if (it != int_constants_.end()) return it->second.get();
  auto owned = std::make_unique<ConstantInt>(type, canon);
  ConstantInt* raw = owned.get();
  int_constants_[key] = std::move(owned);
  return raw;
}

ConstantInt* Module::i64Const(std::int64_t value) {
  return constantInt(types_.i64(), value);
}

ConstantInt* Module::i32Const(std::int64_t value) {
  return constantInt(types_.i32(), value);
}

ConstantInt* Module::i1Const(bool value) {
  return constantInt(types_.i1(), value ? 1 : 0);
}

ConstantFloat* Module::constantFloat(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  auto it = float_constants_.find(bits);
  if (it != float_constants_.end()) return it->second.get();
  auto owned = std::make_unique<ConstantFloat>(types_.f64(), value);
  ConstantFloat* raw = owned.get();
  float_constants_[bits] = std::move(owned);
  return raw;
}

ConstantNull* Module::nullConst(Type* ptr_type) {
  auto it = null_constants_.find(ptr_type);
  if (it != null_constants_.end()) return it->second.get();
  auto owned = std::make_unique<ConstantNull>(ptr_type);
  ConstantNull* raw = owned.get();
  null_constants_[ptr_type] = std::move(owned);
  return raw;
}

UndefValue* Module::undef(Type* type) {
  auto it = undef_constants_.find(type);
  if (it != undef_constants_.end()) return it->second.get();
  auto owned = std::make_unique<UndefValue>(type);
  UndefValue* raw = owned.get();
  undef_constants_[type] = std::move(owned);
  return raw;
}

Function* Module::getFunction(const std::string& name) const {
  for (const auto& f : functions_) {
    if (f->name() == name) return f.get();
  }
  return nullptr;
}

Function* Module::createFunction(const std::string& name, Type* func_type,
                                 Function::Linkage linkage) {
  POSETRL_CHECK(getFunction(name) == nullptr, "duplicate function name: ",
                name);
  functions_.push_back(std::make_unique<Function>(func_type, name, this));
  functions_.back()->setLinkage(linkage);
  return functions_.back().get();
}

Function* Module::getOrInsertFunction(const std::string& name,
                                      Type* func_type) {
  if (Function* f = getFunction(name)) {
    POSETRL_CHECK(f->functionType() == func_type,
                  "function redeclared with different type: ", name);
    return f;
  }
  return createFunction(name, func_type, Function::Linkage::External);
}

void Module::eraseFunction(Function* f) {
  POSETRL_CHECK(!f->hasUses(), "erasing function that is still referenced");
  // Drop every operand reference held by the body so other values' user
  // lists stay consistent, then require the results themselves unused
  // outside the function (guaranteed since instructions can only be used
  // inside their function).
  for (const auto& bb : f->blocks()) {
    for (const auto& inst : bb->insts()) inst->dropAllOperands();
  }
  for (auto it = functions_.begin(); it != functions_.end(); ++it) {
    if (it->get() == f) {
      functions_.erase(it);
      return;
    }
  }
  POSETRL_UNREACHABLE("eraseFunction: function not in module");
}

Function* Module::getIntrinsic(IntrinsicId id) {
  const char* name = nullptr;
  Type* fty = nullptr;
  switch (id) {
    case IntrinsicId::Input:
      name = "pr.input";
      fty = types_.funcType(types_.i64(), {types_.i64()});
      break;
    case IntrinsicId::Sink:
      name = "pr.sink";
      fty = types_.funcType(types_.voidTy(), {types_.i64()});
      break;
    case IntrinsicId::SinkF64:
      name = "pr.sinkf";
      fty = types_.funcType(types_.voidTy(), {types_.f64()});
      break;
    case IntrinsicId::Memset:
      name = "pr.memset";
      fty = types_.funcType(types_.voidTy(), {types_.ptrTo(types_.i8()),
                                              types_.i8(), types_.i64()});
      break;
    case IntrinsicId::Expect:
      name = "pr.expect";
      fty = types_.funcType(types_.i64(), {types_.i64(), types_.i64()});
      break;
    case IntrinsicId::Assume:
      name = "pr.assume";
      fty = types_.funcType(types_.voidTy(), {types_.i1()});
      break;
    case IntrinsicId::AssumeAligned:
    case IntrinsicId::None:
      POSETRL_UNREACHABLE("getIntrinsic on parametric/none intrinsic");
  }
  Function* f = getOrInsertFunction(name, fty);
  f->setIntrinsicId(id);
  if (id == IntrinsicId::Input || id == IntrinsicId::Expect) {
    f->addAttr(FnAttr::ReadNone);
  }
  f->addAttr(FnAttr::NoUnwind);
  return f;
}

namespace {

/// Type spelling restricted to identifier-safe characters, for use inside
/// intrinsic names (the textual IR format requires plain words).
std::string mangleType(const Type* t) {
  std::string out;
  for (char c : t->str()) {
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      out += c;
    } else if (c == '[' || c == '<' || c == '{') {
      out += '_';
    }
    // Everything else (spaces, commas, closers) is dropped.
  }
  return out;
}

}  // namespace

Function* Module::getMemsetFor(Type* elem) {
  if (elem == types_.i8()) return getIntrinsic(IntrinsicId::Memset);
  const std::string name = "pr.memset." + mangleType(elem);
  Type* fty = types_.funcType(
      types_.voidTy(), {types_.ptrTo(elem), types_.i8(), types_.i64()});
  Function* f = getOrInsertFunction(name, fty);
  f->setIntrinsicId(IntrinsicId::Memset);
  f->addAttr(FnAttr::NoUnwind);
  return f;
}

Function* Module::getAssumeAligned(Type* elem) {
  const std::string name = "pr.assume_aligned." + mangleType(elem);
  Type* fty = types_.funcType(types_.voidTy(),
                              {types_.ptrTo(elem), types_.i64()});
  Function* f = getOrInsertFunction(name, fty);
  f->setIntrinsicId(IntrinsicId::AssumeAligned);
  f->addAttr(FnAttr::NoUnwind);
  return f;
}

GlobalVariable* Module::getGlobal(const std::string& name) const {
  for (const auto& g : globals_) {
    if (g->name() == name) return g.get();
  }
  return nullptr;
}

GlobalVariable* Module::createGlobal(const std::string& name,
                                     Type* value_type, GlobalInit init,
                                     GlobalVariable::Linkage linkage,
                                     bool is_const) {
  POSETRL_CHECK(getGlobal(name) == nullptr, "duplicate global name: ", name);
  globals_.push_back(std::make_unique<GlobalVariable>(
      types_.ptrTo(value_type), value_type, name, std::move(init), linkage,
      is_const));
  return globals_.back().get();
}

void Module::eraseGlobal(GlobalVariable* g) {
  POSETRL_CHECK(!g->hasUses(), "erasing global that is still referenced");
  for (auto it = globals_.begin(); it != globals_.end(); ++it) {
    if (it->get() == g) {
      globals_.erase(it);
      return;
    }
  }
  POSETRL_UNREACHABLE("eraseGlobal: global not in module");
}

std::size_t Module::instructionCount() const {
  std::size_t n = 0;
  for (const auto& f : functions_) n += f->instructionCount();
  return n;
}

}  // namespace posetrl
