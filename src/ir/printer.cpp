#include "ir/printer.h"

#include <atomic>
#include <sstream>

#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/global_variable.h"
#include "ir/instruction.h"
#include "ir/module.h"
#include "support/error.h"
#include "support/string_utils.h"

namespace posetrl {

namespace {

std::string formatDouble(double v) {
  return formatString("%.17g", v);
}

/// Prints an operand reference (typed literals for constants, %/@/label
/// references for named values).
std::string operandRef(const Value* v) {
  switch (v->kind()) {
    case Value::Kind::ConstantInt: {
      const auto* c = static_cast<const ConstantInt*>(v);
      return c->type()->str() + " " + std::to_string(c->value());
    }
    case Value::Kind::ConstantFloat: {
      const auto* c = static_cast<const ConstantFloat*>(v);
      return c->type()->str() + " " + formatDouble(c->value());
    }
    case Value::Kind::ConstantNull:
      return "null " + v->type()->str();
    case Value::Kind::Undef:
      return "undef " + v->type()->str();
    case Value::Kind::Argument:
    case Value::Kind::Instruction:
      return "%" + v->name();
    case Value::Kind::BasicBlock:
      return "label " + v->name();
    case Value::Kind::Function:
    case Value::Kind::GlobalVariable:
      return "@" + v->name();
  }
  POSETRL_UNREACHABLE("bad value kind");
}

std::string attrList(const Function& f) {
  std::vector<std::string> names;
  const auto check = [&](FnAttr a, const char* n) {
    if (f.hasAttr(a)) names.emplace_back(n);
  };
  check(FnAttr::NoInline, "noinline");
  check(FnAttr::AlwaysInline, "alwaysinline");
  check(FnAttr::ReadNone, "readnone");
  check(FnAttr::ReadOnly, "readonly");
  check(FnAttr::NoUnwind, "nounwind");
  check(FnAttr::NoReturn, "noreturn");
  check(FnAttr::Cold, "cold");
  check(FnAttr::OptSize, "optsize");
  return joinStrings(names, ", ");
}

const char* intrinsicName(IntrinsicId id) {
  switch (id) {
    case IntrinsicId::None: return "none";
    case IntrinsicId::Input: return "input";
    case IntrinsicId::Sink: return "sink";
    case IntrinsicId::SinkF64: return "sinkf64";
    case IntrinsicId::Memset: return "memset";
    case IntrinsicId::Expect: return "expect";
    case IntrinsicId::Assume: return "assume";
    case IntrinsicId::AssumeAligned: return "assume_aligned";
  }
  POSETRL_UNREACHABLE("bad intrinsic id");
}

void printGlobal(std::ostringstream& os, const GlobalVariable& g) {
  os << "global @" << g.name() << " : " << g.valueType()->str() << " = ";
  const GlobalInit& init = g.init();
  switch (init.kind) {
    case GlobalInit::Kind::Zero:
      os << "zero";
      break;
    case GlobalInit::Kind::Int:
      os << "int " << init.int_value;
      break;
    case GlobalInit::Kind::Float:
      os << "float " << formatDouble(init.float_value);
      break;
    case GlobalInit::Kind::IntArray: {
      os << "array [";
      for (std::size_t i = 0; i < init.elements.size(); ++i) {
        if (i) os << ", ";
        os << init.elements[i];
      }
      os << "]";
      break;
    }
    case GlobalInit::Kind::FuncPtr:
      os << "funcptr @" << init.function->name();
      break;
  }
  os << (g.isInternal() ? ", internal" : ", external");
  if (g.isConst()) os << ", const";
  os << "\n";
}

}  // namespace

std::string printInstruction(const Instruction& inst) {
  std::ostringstream os;
  if (!inst.type()->isVoid()) {
    os << "%" << inst.name() << " : " << inst.type()->str() << " = ";
  }
  const Opcode op = inst.opcode();
  os << opcodeName(op);
  switch (op) {
    case Opcode::Alloca:
      os << " " << static_cast<const AllocaInst&>(inst).allocatedType()->str();
      break;
    case Opcode::Load: {
      const auto& load = static_cast<const LoadInst&>(inst);
      os << " " << operandRef(load.pointer());
      if (load.alignment() != 1) os << " align " << load.alignment();
      break;
    }
    case Opcode::Store: {
      const auto& store = static_cast<const StoreInst&>(inst);
      os << " " << operandRef(store.value()) << ", "
         << operandRef(store.pointer());
      if (store.alignment() != 1) os << " align " << store.alignment();
      break;
    }
    case Opcode::Gep: {
      const auto& gep = static_cast<const GepInst&>(inst);
      os << " " << operandRef(gep.base()) << " [";
      for (std::size_t i = 0; i < gep.numIndices(); ++i) {
        if (i) os << ", ";
        os << operandRef(gep.index(i));
      }
      os << "]";
      break;
    }
    case Opcode::Phi: {
      const auto& phi = static_cast<const PhiInst&>(inst);
      for (std::size_t i = 0; i < phi.numIncoming(); ++i) {
        os << (i == 0 ? " " : ", ") << "[ " << operandRef(phi.incomingValue(i))
           << ", " << phi.incomingBlock(i)->name() << " ]";
      }
      break;
    }
    case Opcode::Call: {
      const auto& call = static_cast<const CallInst&>(inst);
      if (Function* f = call.calledFunction()) {
        os << " @" << f->name();
      } else {
        os << " indirect " << operandRef(call.callee());
      }
      os << "(";
      for (std::size_t i = 0; i < call.numArgs(); ++i) {
        if (i) os << ", ";
        os << operandRef(call.arg(i));
      }
      os << ")";
      break;
    }
    case Opcode::Ret: {
      const auto& ret = static_cast<const RetInst&>(inst);
      os << (ret.hasValue() ? " " + operandRef(ret.value()) : " void");
      break;
    }
    case Opcode::Br:
      os << " label " << inst.successor(0)->name();
      break;
    case Opcode::CondBr: {
      const auto& cbr = static_cast<const CondBrInst&>(inst);
      os << " " << operandRef(cbr.condition()) << ", label "
         << cbr.thenBlock()->name() << ", label " << cbr.elseBlock()->name();
      break;
    }
    case Opcode::Switch: {
      const auto& sw = static_cast<const SwitchInst&>(inst);
      os << " " << operandRef(sw.condition()) << ", default label "
         << sw.defaultBlock()->name() << ", [";
      for (std::size_t i = 0; i < sw.numCases(); ++i) {
        if (i) os << ", ";
        os << sw.caseValue(i)->value() << " -> label "
           << sw.caseBlock(i)->name();
      }
      os << "]";
      break;
    }
    case Opcode::Unreachable:
      break;
    case Opcode::Select: {
      const auto& sel = static_cast<const SelectInst&>(inst);
      os << " " << operandRef(sel.condition()) << ", "
         << operandRef(sel.trueValue()) << ", "
         << operandRef(sel.falseValue());
      break;
    }
    case Opcode::ICmp: {
      const auto& cmp = static_cast<const ICmpInst&>(inst);
      os << " " << ICmpInst::predName(cmp.pred()) << " "
         << operandRef(cmp.lhs()) << ", " << operandRef(cmp.rhs());
      break;
    }
    case Opcode::FCmp: {
      const auto& cmp = static_cast<const FCmpInst&>(inst);
      os << " " << FCmpInst::predName(cmp.pred()) << " "
         << operandRef(cmp.lhs()) << ", " << operandRef(cmp.rhs());
      break;
    }
    case Opcode::ZExt:
    case Opcode::SExt:
    case Opcode::Trunc:
    case Opcode::SIToFP:
    case Opcode::FPToSI:
      os << " " << operandRef(inst.operand(0));
      break;
    default:
      // Binary ops.
      os << " " << operandRef(inst.operand(0)) << ", "
         << operandRef(inst.operand(1));
      break;
  }
  if (inst.vectorWidth() > 1) os << " vec " << inst.vectorWidth();
  return os.str();
}

std::string printFunction(const Function& f) {
  std::ostringstream os;
  if (f.isDeclaration()) {
    os << "declare @" << f.name() << " : " << f.functionType()->str();
    const std::string attrs = attrList(f);
    if (!attrs.empty()) os << " attrs [" << attrs << "]";
    if (f.isIntrinsic()) os << " intrinsic " << intrinsicName(f.intrinsicId());
    os << "\n";
    return os.str();
  }
  os << "define @" << f.name() << " : " << f.functionType()->str();
  os << (f.isInternal() ? " internal" : " external");
  const std::string attrs = attrList(f);
  if (!attrs.empty()) os << " attrs [" << attrs << "]";
  os << " {\n";
  for (const auto& bb : f.blocks()) {
    os << "block " << bb->name() << ":\n";
    for (const auto& inst : bb->insts()) {
      os << "  " << printInstruction(*inst) << "\n";
    }
  }
  os << "}\n";
  return os.str();
}

namespace {
std::atomic<std::uint64_t> g_print_module_calls{0};
}  // namespace

std::uint64_t printModuleCallCount() {
  return g_print_module_calls.load(std::memory_order_relaxed);
}

std::string printModule(const Module& module) {
  g_print_module_calls.fetch_add(1, std::memory_order_relaxed);
  std::ostringstream os;
  os << "module \"" << module.name() << "\"\n\n";
  for (const auto& g : module.globals()) printGlobal(os, *g);
  if (!module.globals().empty()) os << "\n";
  // Declarations first for readability.
  for (const auto& f : module.functions()) {
    if (f->isDeclaration()) os << printFunction(*f);
  }
  os << "\n";
  for (const auto& f : module.functions()) {
    if (!f->isDeclaration()) os << printFunction(*f) << "\n";
  }
  return os.str();
}

}  // namespace posetrl
