#pragma once

/// \file instruction.h
/// MiniIR instruction hierarchy. Instructions are Values (their result is the
/// SSA value) and hold their operand list; operand edits keep the global
/// use-def bookkeeping consistent automatically.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/value.h"

namespace posetrl {

class BasicBlock;
class Function;

/// Instruction opcode. The set mirrors the LLVM-10 instructions exercised by
/// the Oz pipeline (memory, control flow, integer/FP arithmetic, casts).
enum class Opcode {
  // Memory.
  Alloca,
  Load,
  Store,
  Gep,
  // Control flow (terminators).
  Ret,
  Br,
  CondBr,
  Switch,
  Unreachable,
  // Other.
  Phi,
  Call,
  Select,
  // Integer binary ops.
  Add,
  Sub,
  Mul,
  SDiv,
  UDiv,
  SRem,
  URem,
  Shl,
  LShr,
  AShr,
  And,
  Or,
  Xor,
  // Floating-point binary ops.
  FAdd,
  FSub,
  FMul,
  FDiv,
  // Comparisons.
  ICmp,
  FCmp,
  // Casts.
  ZExt,
  SExt,
  Trunc,
  SIToFP,
  FPToSI,
};

/// Spelling used by the printer/parser, e.g. "add", "condbr".
const char* opcodeName(Opcode op);

/// Base instruction class.
class Instruction : public Value {
 public:
  ~Instruction() override;

  /// Instructions are the highest-churn IR objects (every pass creates and
  /// erases them), so they draw storage from the active ArenaScope's bump
  /// arena (support/arena.h) — the module's own arena on all hot paths —
  /// with transparent heap fallback when no scope is installed. Ownership
  /// is unchanged: unique_ptr in the block's InstList still controls
  /// lifetime; only the memory source differs.
  static void* operator new(std::size_t bytes);
  static void operator delete(void* p) noexcept;
  static void operator delete(void* p, std::size_t) noexcept;

  Opcode opcode() const { return opcode_; }
  BasicBlock* parent() const { return parent_; }
  Function* function() const;

  std::size_t numOperands() const { return operands_.size(); }
  Value* operand(std::size_t i) const {
    POSETRL_CHECK(i < operands_.size(), "operand index out of range");
    return operands_[i];
  }
  void setOperand(std::size_t i, Value* v);
  const std::vector<Value*>& operands() const { return operands_; }

  /// Clone-remap only: rebinds operand \p i without unregistering from the
  /// old value's user list. The old pointer targets the source module of a
  /// cross-module clone, where this instruction was never registered as a
  /// user (construction ran under a UserTrackingSuspender) — unregistering
  /// there would both fail and mutate a module other threads may be reading.
  void rebindOperandForClone(std::size_t i, Value* v);

  /// Detaches all operands (removing this from their user lists).
  void dropAllOperands();

  /// Unlinks from the parent block and destroys the instruction. The result
  /// must have no remaining uses.
  void eraseFromParent();

  /// Unlinks from the parent block without destroying (caller takes
  /// ownership); used when moving instructions between blocks.
  std::unique_ptr<Instruction> removeFromParent();

  /// Moves this instruction before \p pos (same or different block).
  void moveBefore(Instruction* pos);
  /// Moves this instruction to the end of \p block, before its terminator if
  /// one exists.
  void moveBeforeTerminator(BasicBlock* block);

  bool isTerminator() const;
  bool isBinaryOp() const {
    return opcode_ >= Opcode::Add && opcode_ <= Opcode::FDiv;
  }
  bool isIntBinaryOp() const {
    return opcode_ >= Opcode::Add && opcode_ <= Opcode::Xor;
  }
  bool isFloatBinaryOp() const {
    return opcode_ >= Opcode::FAdd && opcode_ <= Opcode::FDiv;
  }
  bool isCast() const { return opcode_ >= Opcode::ZExt; }
  bool isCommutative() const;
  /// Division/remainder by a non-constant or zero can trap.
  bool mayTrap() const;

  /// Writes memory or has other observable effects (stores, most calls,
  /// returns/branches excluded).
  bool mayWriteMemory() const;
  bool mayReadMemory() const;
  /// True if the instruction can be removed when its result is unused.
  bool isRemovableIfUnused() const;

  /// Terminator successor access (checked).
  std::size_t numSuccessors() const;
  BasicBlock* successor(std::size_t i) const;
  void setSuccessor(std::size_t i, BasicBlock* block);

  /// Structural clone with identical operands; the clone is unparented.
  virtual Instruction* clone() const = 0;

  /// Modeled vectorization factor (1 = scalar). Set by the loop-vectorize
  /// analog; consumed by the size and throughput models.
  unsigned vectorWidth() const { return vector_width_; }
  void setVectorWidth(unsigned w) { vector_width_ = w; }

  static bool classof(const Value* v) {
    return v->kind() == Kind::Instruction;
  }

 protected:
  Instruction(Opcode opcode, Type* type, std::string name,
              std::vector<Value*> operands);

  /// Copies base-class metadata (vector width) into \p clone.
  void copyMetaTo(Instruction* clone) const {
    clone->vector_width_ = vector_width_;
  }

  void appendOperand(Value* v);
  void removeOperandAt(std::size_t i);

 private:
  friend class BasicBlock;

  Opcode opcode_;
  BasicBlock* parent_ = nullptr;
  std::vector<Value*> operands_;
  unsigned vector_width_ = 1;
};

/// Stack allocation of `allocatedType()`, yielding ptr<allocatedType>.
class AllocaInst : public Instruction {
 public:
  AllocaInst(Type* result_ptr_type, Type* allocated, std::string name)
      : Instruction(Opcode::Alloca, result_ptr_type, std::move(name), {}),
        allocated_(allocated) {}

  Type* allocatedType() const { return allocated_; }

  Instruction* clone() const override;

  static bool classof(const Value* v) {
    auto* i = dynCast<Instruction>(v);
    return i && i->opcode() == Opcode::Alloca;
  }

 private:
  Type* allocated_;
};

/// Load from operand(0) (a pointer).
class LoadInst : public Instruction {
 public:
  LoadInst(Type* loaded, Value* ptr, std::string name)
      : Instruction(Opcode::Load, loaded, std::move(name), {ptr}) {}

  Value* pointer() const { return operand(0); }
  unsigned alignment() const { return align_; }
  void setAlignment(unsigned a) { align_ = a; }

  Instruction* clone() const override;

  static bool classof(const Value* v) {
    auto* i = dynCast<Instruction>(v);
    return i && i->opcode() == Opcode::Load;
  }

 private:
  unsigned align_ = 1;
};

/// Store operand(0) to pointer operand(1).
class StoreInst : public Instruction {
 public:
  StoreInst(Type* void_type, Value* value, Value* ptr)
      : Instruction(Opcode::Store, void_type, "", {value, ptr}) {}

  Value* value() const { return operand(0); }
  Value* pointer() const { return operand(1); }
  unsigned alignment() const { return align_; }
  void setAlignment(unsigned a) { align_ = a; }

  Instruction* clone() const override;

  static bool classof(const Value* v) {
    auto* i = dynCast<Instruction>(v);
    return i && i->opcode() == Opcode::Store;
  }

 private:
  unsigned align_ = 1;
};

/// Pointer arithmetic: base operand(0) of type ptr<sourceElement()>, then
/// LLVM-style indices (first index scales by the full element size, later
/// indices step into arrays/structs).
class GepInst : public Instruction {
 public:
  GepInst(Type* result_ptr, Type* source_elem, Value* base,
          std::vector<Value*> indices, std::string name)
      : Instruction(Opcode::Gep, result_ptr, std::move(name),
                    prepend(base, std::move(indices))),
        source_elem_(source_elem) {}

  Type* sourceElement() const { return source_elem_; }
  Value* base() const { return operand(0); }
  std::size_t numIndices() const { return numOperands() - 1; }
  Value* index(std::size_t i) const { return operand(i + 1); }

  /// True when every index is a ConstantInt.
  bool hasAllConstantIndices() const;

  Instruction* clone() const override;

  static bool classof(const Value* v) {
    auto* i = dynCast<Instruction>(v);
    return i && i->opcode() == Opcode::Gep;
  }

 private:
  static std::vector<Value*> prepend(Value* base, std::vector<Value*> rest) {
    std::vector<Value*> all;
    all.reserve(rest.size() + 1);
    all.push_back(base);
    for (Value* r : rest) all.push_back(r);
    return all;
  }

  Type* source_elem_;
};

/// SSA phi node; operands alternate [value0, block0, value1, block1, ...].
class PhiInst : public Instruction {
 public:
  PhiInst(Type* type, std::string name)
      : Instruction(Opcode::Phi, type, std::move(name), {}) {}

  std::size_t numIncoming() const { return numOperands() / 2; }
  Value* incomingValue(std::size_t i) const { return operand(2 * i); }
  BasicBlock* incomingBlock(std::size_t i) const;
  void setIncomingValue(std::size_t i, Value* v) { setOperand(2 * i, v); }
  void addIncoming(Value* value, BasicBlock* block);
  /// Removes the incoming edge from \p block (must exist).
  void removeIncoming(BasicBlock* block);
  /// Value flowing in from \p block (checked).
  Value* incomingForBlock(BasicBlock* block) const;
  /// Index of \p block among incoming edges, or npos.
  std::size_t indexOfBlock(BasicBlock* block) const;

  /// If all incoming values are the same value V (ignoring self-references),
  /// returns V; otherwise nullptr.
  Value* uniformValue() const;

  Instruction* clone() const override;

  static bool classof(const Value* v) {
    auto* i = dynCast<Instruction>(v);
    return i && i->opcode() == Opcode::Phi;
  }
};

/// Direct or indirect call; operand(0) is the callee.
class CallInst : public Instruction {
 public:
  CallInst(Type* result, Value* callee, std::vector<Value*> args,
           std::string name);

  Value* callee() const { return operand(0); }
  /// Callee as a Function when the call is direct, else nullptr.
  Function* calledFunction() const;
  std::size_t numArgs() const { return numOperands() - 1; }
  Value* arg(std::size_t i) const { return operand(i + 1); }
  void setArg(std::size_t i, Value* v) { setOperand(i + 1, v); }
  /// Removes argument \p i (used by dead-argument elimination).
  void removeArg(std::size_t i) { removeOperandAt(i + 1); }

  Instruction* clone() const override;

  static bool classof(const Value* v) {
    auto* i = dynCast<Instruction>(v);
    return i && i->opcode() == Opcode::Call;
  }
};

/// Return; optional value operand.
class RetInst : public Instruction {
 public:
  RetInst(Type* void_type, Value* value)
      : Instruction(Opcode::Ret, void_type, "",
                    value ? std::vector<Value*>{value}
                          : std::vector<Value*>{}) {}

  bool hasValue() const { return numOperands() == 1; }
  Value* value() const { return operand(0); }

  Instruction* clone() const override;

  static bool classof(const Value* v) {
    auto* i = dynCast<Instruction>(v);
    return i && i->opcode() == Opcode::Ret;
  }
};

/// Unconditional branch to successor(0).
class BrInst : public Instruction {
 public:
  BrInst(Type* void_type, BasicBlock* target);

  BasicBlock* target() const { return successor(0); }

  Instruction* clone() const override;

  static bool classof(const Value* v) {
    auto* i = dynCast<Instruction>(v);
    return i && i->opcode() == Opcode::Br;
  }
};

/// Conditional branch: condition operand(0), then successor, else successor.
class CondBrInst : public Instruction {
 public:
  CondBrInst(Type* void_type, Value* cond, BasicBlock* then_block,
             BasicBlock* else_block);

  Value* condition() const { return operand(0); }
  BasicBlock* thenBlock() const { return successor(0); }
  BasicBlock* elseBlock() const { return successor(1); }

  Instruction* clone() const override;

  static bool classof(const Value* v) {
    auto* i = dynCast<Instruction>(v);
    return i && i->opcode() == Opcode::CondBr;
  }
};

/// Switch: condition operand(0), default operand(1), then [const, block]...
class SwitchInst : public Instruction {
 public:
  SwitchInst(Type* void_type, Value* cond, BasicBlock* default_block);

  Value* condition() const { return operand(0); }
  BasicBlock* defaultBlock() const;
  std::size_t numCases() const { return (numOperands() - 2) / 2; }
  ConstantInt* caseValue(std::size_t i) const;
  BasicBlock* caseBlock(std::size_t i) const;
  void addCase(ConstantInt* value, BasicBlock* block);
  void removeCase(std::size_t i);

  Instruction* clone() const override;

  static bool classof(const Value* v) {
    auto* i = dynCast<Instruction>(v);
    return i && i->opcode() == Opcode::Switch;
  }
};

/// Unreachable terminator.
class UnreachableInst : public Instruction {
 public:
  explicit UnreachableInst(Type* void_type)
      : Instruction(Opcode::Unreachable, void_type, "", {}) {}

  Instruction* clone() const override;

  static bool classof(const Value* v) {
    auto* i = dynCast<Instruction>(v);
    return i && i->opcode() == Opcode::Unreachable;
  }
};

/// select cond, tval, fval.
class SelectInst : public Instruction {
 public:
  SelectInst(Type* type, Value* cond, Value* tval, Value* fval,
             std::string name)
      : Instruction(Opcode::Select, type, std::move(name),
                    {cond, tval, fval}) {}

  Value* condition() const { return operand(0); }
  Value* trueValue() const { return operand(1); }
  Value* falseValue() const { return operand(2); }

  Instruction* clone() const override;

  static bool classof(const Value* v) {
    auto* i = dynCast<Instruction>(v);
    return i && i->opcode() == Opcode::Select;
  }
};

/// Integer or floating binary operation; opcode selects the operation.
class BinaryInst : public Instruction {
 public:
  BinaryInst(Opcode op, Type* type, Value* lhs, Value* rhs, std::string name)
      : Instruction(op, type, std::move(name), {lhs, rhs}) {
    POSETRL_CHECK(isBinaryOp(), "BinaryInst with non-binary opcode");
  }

  Value* lhs() const { return operand(0); }
  Value* rhs() const { return operand(1); }

  Instruction* clone() const override;

  static bool classof(const Value* v) {
    auto* i = dynCast<Instruction>(v);
    return i && i->isBinaryOp();
  }
};

/// Integer comparison, result i1.
class ICmpInst : public Instruction {
 public:
  enum class Pred { EQ, NE, SLT, SLE, SGT, SGE, ULT, ULE, UGT, UGE };

  ICmpInst(Type* i1_type, Pred pred, Value* lhs, Value* rhs, std::string name)
      : Instruction(Opcode::ICmp, i1_type, std::move(name), {lhs, rhs}),
        pred_(pred) {}

  Pred pred() const { return pred_; }
  void setPred(Pred p) { pred_ = p; }
  Value* lhs() const { return operand(0); }
  Value* rhs() const { return operand(1); }

  /// Predicate with operands swapped (e.g. SLT -> SGT).
  static Pred swapped(Pred p);
  /// Logical negation (e.g. SLT -> SGE).
  static Pred inverse(Pred p);
  static const char* predName(Pred p);
  /// Evaluates the predicate over canonical (sign-extended) constants.
  static bool evaluate(Pred p, std::int64_t lhs, std::int64_t rhs,
                       unsigned bits);

  Instruction* clone() const override;

  static bool classof(const Value* v) {
    auto* i = dynCast<Instruction>(v);
    return i && i->opcode() == Opcode::ICmp;
  }

 private:
  Pred pred_;
};

/// Floating-point comparison (ordered predicates only), result i1.
class FCmpInst : public Instruction {
 public:
  enum class Pred { OEQ, ONE, OLT, OLE, OGT, OGE };

  FCmpInst(Type* i1_type, Pred pred, Value* lhs, Value* rhs, std::string name)
      : Instruction(Opcode::FCmp, i1_type, std::move(name), {lhs, rhs}),
        pred_(pred) {}

  Pred pred() const { return pred_; }
  Value* lhs() const { return operand(0); }
  Value* rhs() const { return operand(1); }

  static const char* predName(Pred p);
  static bool evaluate(Pred p, double lhs, double rhs);

  Instruction* clone() const override;

  static bool classof(const Value* v) {
    auto* i = dynCast<Instruction>(v);
    return i && i->opcode() == Opcode::FCmp;
  }

 private:
  Pred pred_;
};

/// Conversion instruction; opcode selects the conversion.
class CastInst : public Instruction {
 public:
  CastInst(Opcode op, Type* to, Value* value, std::string name)
      : Instruction(op, to, std::move(name), {value}) {
    POSETRL_CHECK(isCast(), "CastInst with non-cast opcode");
  }

  Value* value() const { return operand(0); }

  Instruction* clone() const override;

  static bool classof(const Value* v) {
    auto* i = dynCast<Instruction>(v);
    return i && i->isCast();
  }
};

}  // namespace posetrl
