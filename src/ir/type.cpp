#include "ir/type.h"

#include "support/error.h"

namespace posetrl {

unsigned Type::intBits() const {
  switch (kind_) {
    case Kind::I1: return 1;
    case Kind::I8: return 8;
    case Kind::I16: return 16;
    case Kind::I32: return 32;
    case Kind::I64: return 64;
    default: POSETRL_UNREACHABLE("intBits on non-integer type");
  }
}

std::uint64_t Type::byteSize() const {
  switch (kind_) {
    case Kind::Void: return 0;
    case Kind::I1: return 1;
    case Kind::I8: return 1;
    case Kind::I16: return 2;
    case Kind::I32: return 4;
    case Kind::I64: return 8;
    case Kind::F64: return 8;
    case Kind::Ptr: return 8;
    case Kind::Array: return count_ * elem_->byteSize();
    case Kind::Struct: {
      std::uint64_t total = 0;
      for (Type* f : fields_) total += f->byteSize();
      return total;
    }
    case Kind::Func: return 0;
  }
  POSETRL_UNREACHABLE("bad type kind");
}

Type* Type::pointee() const {
  POSETRL_CHECK(isPointer(), "pointee() on non-pointer");
  return pointee_;
}

Type* Type::arrayElement() const {
  POSETRL_CHECK(isArray(), "arrayElement() on non-array");
  return elem_;
}

std::uint64_t Type::arrayCount() const {
  POSETRL_CHECK(isArray(), "arrayCount() on non-array");
  return count_;
}

const std::vector<Type*>& Type::structFields() const {
  POSETRL_CHECK(isStruct(), "structFields() on non-struct");
  return fields_;
}

std::uint64_t Type::structFieldOffset(std::size_t index) const {
  POSETRL_CHECK(isStruct() && index < fields_.size(), "bad struct field");
  std::uint64_t off = 0;
  for (std::size_t i = 0; i < index; ++i) off += fields_[i]->byteSize();
  return off;
}

Type* Type::funcReturn() const {
  POSETRL_CHECK(isFunction(), "funcReturn() on non-function");
  return ret_;
}

const std::vector<Type*>& Type::funcParams() const {
  POSETRL_CHECK(isFunction(), "funcParams() on non-function");
  return params_;
}

std::string Type::str() const {
  switch (kind_) {
    case Kind::Void: return "void";
    case Kind::I1: return "i1";
    case Kind::I8: return "i8";
    case Kind::I16: return "i16";
    case Kind::I32: return "i32";
    case Kind::I64: return "i64";
    case Kind::F64: return "f64";
    case Kind::Ptr: return "ptr<" + pointee_->str() + ">";
    case Kind::Array:
      return "[" + std::to_string(count_) + " x " + elem_->str() + "]";
    case Kind::Struct: {
      std::string s = "{";
      for (std::size_t i = 0; i < fields_.size(); ++i) {
        if (i) s += ", ";
        s += fields_[i]->str();
      }
      return s + "}";
    }
    case Kind::Func: {
      std::string s = "fn(";
      for (std::size_t i = 0; i < params_.size(); ++i) {
        if (i) s += ", ";
        s += params_[i]->str();
      }
      return s + ") -> " + ret_->str();
    }
  }
  POSETRL_UNREACHABLE("bad type kind");
}

TypeContext::TypeContext() {
  void_ = make(Type::Kind::Void);
  i1_ = make(Type::Kind::I1);
  i8_ = make(Type::Kind::I8);
  i16_ = make(Type::Kind::I16);
  i32_ = make(Type::Kind::I32);
  i64_ = make(Type::Kind::I64);
  f64_ = make(Type::Kind::F64);
}

Type* TypeContext::make(Type::Kind kind) {
  owned_.push_back(std::unique_ptr<Type>(new Type(kind)));
  return owned_.back().get();
}

Type* TypeContext::intType(unsigned bits) {
  switch (bits) {
    case 1: return i1_;
    case 8: return i8_;
    case 16: return i16_;
    case 32: return i32_;
    case 64: return i64_;
    default: POSETRL_UNREACHABLE("unsupported integer width");
  }
}

Type* TypeContext::ptrTo(Type* pointee) {
  auto it = ptr_cache_.find(pointee);
  if (it != ptr_cache_.end()) return it->second;
  Type* t = make(Type::Kind::Ptr);
  t->pointee_ = pointee;
  ptr_cache_[pointee] = t;
  return t;
}

Type* TypeContext::arrayOf(Type* element, std::uint64_t count) {
  const auto key = std::make_pair(element, count);
  auto it = array_cache_.find(key);
  if (it != array_cache_.end()) return it->second;
  Type* t = make(Type::Kind::Array);
  t->elem_ = element;
  t->count_ = count;
  array_cache_[key] = t;
  return t;
}

Type* TypeContext::structOf(std::vector<Type*> fields) {
  auto it = struct_cache_.find(fields);
  if (it != struct_cache_.end()) return it->second;
  Type* t = make(Type::Kind::Struct);
  t->fields_ = fields;
  struct_cache_[std::move(fields)] = t;
  return t;
}

Type* TypeContext::funcType(Type* ret, std::vector<Type*> params) {
  const auto key = std::make_pair(ret, params);
  auto it = func_cache_.find(key);
  if (it != func_cache_.end()) return it->second;
  Type* t = make(Type::Kind::Func);
  t->ret_ = ret;
  t->params_ = std::move(params);
  func_cache_[key] = t;
  return t;
}

}  // namespace posetrl
