#pragma once

/// \file type.h
/// Type system of MiniIR, the LLVM-IR analog used throughout this
/// reproduction (see DESIGN.md §2). Types are immutable and interned in a
/// TypeContext owned by the Module, so pointer equality is type equality.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace posetrl {

class TypeContext;

/// A MiniIR type. Obtain instances only through TypeContext.
class Type {
 public:
  enum class Kind {
    Void,
    I1,
    I8,
    I16,
    I32,
    I64,
    F64,
    Ptr,     ///< Typed pointer (pointee recorded for GEP/load/store checks).
    Array,   ///< Fixed-length array.
    Struct,  ///< Anonymous literal struct.
    Func,    ///< Function signature.
  };

  Kind kind() const { return kind_; }

  bool isVoid() const { return kind_ == Kind::Void; }
  bool isInteger() const {
    return kind_ == Kind::I1 || kind_ == Kind::I8 || kind_ == Kind::I16 ||
           kind_ == Kind::I32 || kind_ == Kind::I64;
  }
  bool isFloat() const { return kind_ == Kind::F64; }
  bool isPointer() const { return kind_ == Kind::Ptr; }
  bool isArray() const { return kind_ == Kind::Array; }
  bool isStruct() const { return kind_ == Kind::Struct; }
  bool isFunction() const { return kind_ == Kind::Func; }
  bool isAggregate() const { return isArray() || isStruct(); }
  /// True for types a virtual register can hold.
  bool isFirstClass() const {
    return isInteger() || isFloat() || isPointer();
  }

  /// Bit width of an integer type (checked).
  unsigned intBits() const;

  /// Byte size of the type in the abstract data layout (pointers are 8).
  std::uint64_t byteSize() const;

  /// Pointee of a pointer type (checked).
  Type* pointee() const;

  /// Element type of an array (checked).
  Type* arrayElement() const;
  std::uint64_t arrayCount() const;

  /// Struct field access (checked).
  const std::vector<Type*>& structFields() const;
  /// Byte offset of field \p index inside the struct (packed layout).
  std::uint64_t structFieldOffset(std::size_t index) const;

  /// Function signature access (checked).
  Type* funcReturn() const;
  const std::vector<Type*>& funcParams() const;

  /// Human-readable spelling, e.g. "i32", "ptr<i64>", "[4 x i32]".
  std::string str() const;

  /// Lazily cached structural hash slot for analysis fingerprinting and the
  /// module content hash (0 = not computed yet). Types are immutable, so a
  /// computed value never goes stale; the cache dies with the owning module.
  /// The hash function is structuralTypeHash (ir/structural_hash.h) — this
  /// is storage only.
  std::uint64_t analysisHashCache() const { return hash_cache_; }
  void setAnalysisHashCache(std::uint64_t h) const { hash_cache_ = h; }

 private:
  friend class TypeContext;
  explicit Type(Kind kind) : kind_(kind) {}

  Kind kind_;
  mutable std::uint64_t hash_cache_ = 0;
  // Composite payloads (unused fields left empty for scalar kinds).
  Type* pointee_ = nullptr;
  Type* elem_ = nullptr;
  std::uint64_t count_ = 0;
  std::vector<Type*> fields_;
  Type* ret_ = nullptr;
  std::vector<Type*> params_;
};

/// Owns and interns all types of a module.
class TypeContext {
 public:
  TypeContext();
  TypeContext(const TypeContext&) = delete;
  TypeContext& operator=(const TypeContext&) = delete;

  Type* voidTy() { return void_; }
  Type* i1() { return i1_; }
  Type* i8() { return i8_; }
  Type* i16() { return i16_; }
  Type* i32() { return i32_; }
  Type* i64() { return i64_; }
  Type* f64() { return f64_; }
  /// Integer type of the given bit width (1/8/16/32/64).
  Type* intType(unsigned bits);

  Type* ptrTo(Type* pointee);
  Type* arrayOf(Type* element, std::uint64_t count);
  Type* structOf(std::vector<Type*> fields);
  Type* funcType(Type* ret, std::vector<Type*> params);

 private:
  Type* make(Type::Kind kind);

  std::vector<std::unique_ptr<Type>> owned_;
  Type* void_;
  Type* i1_;
  Type* i8_;
  Type* i16_;
  Type* i32_;
  Type* i64_;
  Type* f64_;
  std::map<Type*, Type*> ptr_cache_;
  std::map<std::pair<Type*, std::uint64_t>, Type*> array_cache_;
  std::map<std::vector<Type*>, Type*> struct_cache_;
  std::map<std::pair<Type*, std::vector<Type*>>, Type*> func_cache_;
};

}  // namespace posetrl
