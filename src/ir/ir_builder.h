#pragma once

/// \file ir_builder.h
/// Convenience builder for constructing MiniIR. Maintains an insertion point
/// (end of a block) and auto-names SSA results; used by the workload
/// generator, the parser, tests, and by passes that materialize new code.

#include <string>
#include <vector>

#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/instruction.h"
#include "ir/module.h"

namespace posetrl {

/// Builds instructions at the end of a basic block.
class IRBuilder {
 public:
  explicit IRBuilder(Module* module) : module_(module) {}

  Module* module() const { return module_; }
  BasicBlock* insertBlock() const { return block_; }
  void setInsertPoint(BasicBlock* block) { block_ = block; }

  // --- Memory ---
  AllocaInst* alloca_(Type* allocated, const std::string& name = "");
  LoadInst* load(Value* ptr, const std::string& name = "");
  StoreInst* store(Value* value, Value* ptr);
  GepInst* gep(Value* base, std::vector<Value*> indices,
               const std::string& name = "");

  // --- Arithmetic ---
  Value* binary(Opcode op, Value* lhs, Value* rhs,
                const std::string& name = "");
  Value* add(Value* l, Value* r) { return binary(Opcode::Add, l, r); }
  Value* sub(Value* l, Value* r) { return binary(Opcode::Sub, l, r); }
  Value* mul(Value* l, Value* r) { return binary(Opcode::Mul, l, r); }

  ICmpInst* icmp(ICmpInst::Pred pred, Value* lhs, Value* rhs,
                 const std::string& name = "");
  FCmpInst* fcmp(FCmpInst::Pred pred, Value* lhs, Value* rhs,
                 const std::string& name = "");
  CastInst* castOp(Opcode op, Type* to, Value* v,
                   const std::string& name = "");
  SelectInst* select(Value* cond, Value* tval, Value* fval,
                     const std::string& name = "");

  // --- Calls ---
  CallInst* call(Function* callee, std::vector<Value*> args,
                 const std::string& name = "");
  CallInst* callIndirect(Type* result, Value* callee,
                         std::vector<Value*> args,
                         const std::string& name = "");

  // --- Control flow ---
  PhiInst* phi(Type* type, const std::string& name = "");
  BrInst* br(BasicBlock* target);
  CondBrInst* condBr(Value* cond, BasicBlock* then_block,
                     BasicBlock* else_block);
  SwitchInst* switchOp(Value* cond, BasicBlock* default_block);
  RetInst* ret(Value* value);
  RetInst* retVoid();
  UnreachableInst* unreachable();

 private:
  Instruction* emit(Instruction* inst);
  std::string pick(const std::string& name);

  Module* module_;
  BasicBlock* block_ = nullptr;
};

}  // namespace posetrl
