#include "ir/basic_block.h"

#include <algorithm>
#include <set>

#include "ir/function.h"
#include "support/arena.h"

namespace posetrl {

void* BasicBlock::operator new(std::size_t bytes) {
  return arenaAllocate(bytes);
}

void BasicBlock::operator delete(void* p) noexcept { arenaDeallocate(p); }

void BasicBlock::operator delete(void* p, std::size_t) noexcept {
  arenaDeallocate(p);
}

Instruction* BasicBlock::pushBack(std::unique_ptr<Instruction> inst) {
  Instruction* raw = inst.get();
  POSETRL_CHECK(raw->parent() == nullptr, "instruction already parented");
  raw->parent_ = this;
  insts_.push_back(std::move(inst));
  return raw;
}

Instruction* BasicBlock::pushFront(std::unique_ptr<Instruction> inst) {
  Instruction* raw = inst.get();
  POSETRL_CHECK(raw->parent() == nullptr, "instruction already parented");
  raw->parent_ = this;
  insts_.push_front(std::move(inst));
  return raw;
}

Instruction* BasicBlock::insertBefore(Instruction* pos,
                                      std::unique_ptr<Instruction> inst) {
  POSETRL_CHECK(pos->parent() == this, "position not in this block");
  Instruction* raw = inst.get();
  POSETRL_CHECK(raw->parent() == nullptr, "instruction already parented");
  for (auto it = insts_.begin(); it != insts_.end(); ++it) {
    if (it->get() == pos) {
      raw->parent_ = this;
      insts_.insert(it, std::move(inst));
      return raw;
    }
  }
  POSETRL_UNREACHABLE("position instruction not found in block");
}

Instruction* BasicBlock::terminator() const {
  if (insts_.empty()) return nullptr;
  Instruction* last = insts_.back().get();
  return last->isTerminator() ? last : nullptr;
}

std::vector<BasicBlock*> BasicBlock::successors() const {
  std::vector<BasicBlock*> out;
  Instruction* term = terminator();
  if (term == nullptr) return out;
  for (std::size_t i = 0; i < term->numSuccessors(); ++i) {
    out.push_back(term->successor(i));
  }
  return out;
}

std::vector<BasicBlock*> BasicBlock::predecessors() const {
  std::vector<BasicBlock*> out;
  for (Instruction* user : users()) {
    if (!user->isTerminator()) continue;
    bool targets_this = false;
    for (std::size_t i = 0; i < user->numSuccessors(); ++i) {
      if (user->successor(i) == this) {
        targets_this = true;
        break;
      }
    }
    if (!targets_this) continue;
    BasicBlock* pred = user->parent();
    if (std::find(out.begin(), out.end(), pred) == out.end()) {
      out.push_back(pred);
    }
  }
  return out;
}

BasicBlock* BasicBlock::singlePredecessor() const {
  auto preds = predecessors();
  return preds.size() == 1 ? preds[0] : nullptr;
}

BasicBlock* BasicBlock::singleSuccessor() const {
  auto succs = successors();
  if (succs.empty()) return nullptr;
  for (BasicBlock* s : succs) {
    if (s != succs[0]) return nullptr;
  }
  return succs[0];
}

bool BasicBlock::hasPredecessor(BasicBlock* bb) const {
  auto preds = predecessors();
  return std::find(preds.begin(), preds.end(), bb) != preds.end();
}

BasicBlock::iterator BasicBlock::firstNonPhi() {
  auto it = insts_.begin();
  while (it != insts_.end() && (*it)->opcode() == Opcode::Phi) ++it;
  return it;
}

std::vector<PhiInst*> BasicBlock::phis() const {
  std::vector<PhiInst*> out;
  for (const auto& inst : insts_) {
    if (inst->opcode() != Opcode::Phi) break;
    out.push_back(static_cast<PhiInst*>(inst.get()));
  }
  return out;
}

void BasicBlock::removeFromSuccessorPhis() {
  for (BasicBlock* succ : successors()) {
    for (PhiInst* phi : succ->phis()) {
      if (phi->indexOfBlock(this) != static_cast<std::size_t>(-1)) {
        phi->removeIncoming(this);
      }
    }
  }
}

BasicBlock* BasicBlock::splitAt(Instruction* pos,
                                const std::string& new_name) {
  POSETRL_CHECK(pos->parent() == this, "split position not in block");
  BasicBlock* tail = parent_->addBlockAfter(this, new_name);
  // Move [pos, end) into tail, preserving order.
  auto it = insts_.begin();
  while (it != insts_.end() && it->get() != pos) ++it;
  POSETRL_CHECK(it != insts_.end(), "split position vanished");
  while (it != insts_.end()) {
    std::unique_ptr<Instruction> owned = std::move(*it);
    it = insts_.erase(it);
    owned->parent_ = nullptr;
    tail->pushBack(std::move(owned));
  }
  // If the terminator moved, successor phis now receive control from the
  // tail block, not from this one.
  if (Instruction* term = tail->terminator()) {
    std::set<BasicBlock*> seen;
    for (std::size_t i = 0; i < term->numSuccessors(); ++i) {
      BasicBlock* succ = term->successor(i);
      if (!seen.insert(succ).second) continue;
      for (PhiInst* phi : succ->phis()) {
        const std::size_t idx = phi->indexOfBlock(this);
        if (idx != static_cast<std::size_t>(-1)) {
          phi->setOperand(2 * idx + 1, tail);
        }
      }
    }
  }
  return tail;
}

void BasicBlock::eraseFromParent() {
  POSETRL_CHECK(parent_ != nullptr, "block has no parent");
  parent_->eraseBlock(this);
}

}  // namespace posetrl
