#include "ir/instruction.h"

#include <algorithm>

#include "ir/basic_block.h"
#include "ir/function.h"
#include "support/arena.h"

namespace posetrl {

void* Instruction::operator new(std::size_t bytes) {
  return arenaAllocate(bytes);
}

void Instruction::operator delete(void* p) noexcept { arenaDeallocate(p); }

void Instruction::operator delete(void* p, std::size_t) noexcept {
  arenaDeallocate(p);
}

const char* opcodeName(Opcode op) {
  switch (op) {
    case Opcode::Alloca: return "alloca";
    case Opcode::Load: return "load";
    case Opcode::Store: return "store";
    case Opcode::Gep: return "gep";
    case Opcode::Ret: return "ret";
    case Opcode::Br: return "br";
    case Opcode::CondBr: return "condbr";
    case Opcode::Switch: return "switch";
    case Opcode::Unreachable: return "unreachable";
    case Opcode::Phi: return "phi";
    case Opcode::Call: return "call";
    case Opcode::Select: return "select";
    case Opcode::Add: return "add";
    case Opcode::Sub: return "sub";
    case Opcode::Mul: return "mul";
    case Opcode::SDiv: return "sdiv";
    case Opcode::UDiv: return "udiv";
    case Opcode::SRem: return "srem";
    case Opcode::URem: return "urem";
    case Opcode::Shl: return "shl";
    case Opcode::LShr: return "lshr";
    case Opcode::AShr: return "ashr";
    case Opcode::And: return "and";
    case Opcode::Or: return "or";
    case Opcode::Xor: return "xor";
    case Opcode::FAdd: return "fadd";
    case Opcode::FSub: return "fsub";
    case Opcode::FMul: return "fmul";
    case Opcode::FDiv: return "fdiv";
    case Opcode::ICmp: return "icmp";
    case Opcode::FCmp: return "fcmp";
    case Opcode::ZExt: return "zext";
    case Opcode::SExt: return "sext";
    case Opcode::Trunc: return "trunc";
    case Opcode::SIToFP: return "sitofp";
    case Opcode::FPToSI: return "fptosi";
  }
  POSETRL_UNREACHABLE("bad opcode");
}

Instruction::Instruction(Opcode opcode, Type* type, std::string name,
                         std::vector<Value*> operands)
    : Value(Kind::Instruction, type, std::move(name)), opcode_(opcode) {
  for (Value* v : operands) appendOperand(v);
}

Instruction::~Instruction() = default;

Function* Instruction::function() const {
  return parent_ ? parent_->parent() : nullptr;
}

void Instruction::setOperand(std::size_t i, Value* v) {
  POSETRL_CHECK(i < operands_.size(), "operand index out of range");
  POSETRL_CHECK(v != nullptr, "null operand");
  operands_[i]->removeUser(this);
  operands_[i] = v;
  v->addUser(this);
}

void Instruction::rebindOperandForClone(std::size_t i, Value* v) {
  POSETRL_CHECK(i < operands_.size(), "operand index out of range");
  POSETRL_CHECK(v != nullptr, "null operand");
  operands_[i] = v;
  v->addUser(this);
}

void Instruction::appendOperand(Value* v) {
  POSETRL_CHECK(v != nullptr, "null operand");
  operands_.push_back(v);
  v->addUser(this);
}

void Instruction::removeOperandAt(std::size_t i) {
  POSETRL_CHECK(i < operands_.size(), "operand index out of range");
  operands_[i]->removeUser(this);
  operands_.erase(operands_.begin() + static_cast<std::ptrdiff_t>(i));
}

void Instruction::dropAllOperands() {
  for (Value* v : operands_) v->removeUser(this);
  operands_.clear();
}

std::unique_ptr<Instruction> Instruction::removeFromParent() {
  POSETRL_CHECK(parent_ != nullptr, "instruction has no parent");
  BasicBlock* bb = parent_;
  for (auto it = bb->insts_.begin(); it != bb->insts_.end(); ++it) {
    if (it->get() == this) {
      std::unique_ptr<Instruction> owned = std::move(*it);
      bb->insts_.erase(it);
      parent_ = nullptr;
      return owned;
    }
  }
  POSETRL_UNREACHABLE("instruction not found in its parent block");
}

void Instruction::eraseFromParent() {
  POSETRL_CHECK(!hasUses(), "erasing instruction that still has uses: ",
                name().empty() ? opcodeName(opcode_) : name());
  dropAllOperands();
  removeFromParent();  // unique_ptr released at end of statement
}

void Instruction::moveBefore(Instruction* pos) {
  POSETRL_CHECK(pos != nullptr && pos->parent() != nullptr, "bad position");
  std::unique_ptr<Instruction> owned = removeFromParent();
  pos->parent()->insertBefore(pos, std::move(owned));
}

void Instruction::moveBeforeTerminator(BasicBlock* block) {
  Instruction* term = block->terminator();
  if (term != nullptr) {
    moveBefore(term);
  } else {
    std::unique_ptr<Instruction> owned = removeFromParent();
    block->pushBack(std::move(owned));
  }
}

bool Instruction::isTerminator() const {
  switch (opcode_) {
    case Opcode::Ret:
    case Opcode::Br:
    case Opcode::CondBr:
    case Opcode::Switch:
    case Opcode::Unreachable:
      return true;
    default:
      return false;
  }
}

bool Instruction::isCommutative() const {
  switch (opcode_) {
    case Opcode::Add:
    case Opcode::Mul:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::FAdd:
    case Opcode::FMul:
      return true;
    default:
      return false;
  }
}

bool Instruction::mayTrap() const {
  switch (opcode_) {
    case Opcode::SDiv:
    case Opcode::UDiv:
    case Opcode::SRem:
    case Opcode::URem: {
      // Safe only when dividing by a known non-zero constant.
      auto* c = dynCast<ConstantInt>(operand(1));
      return c == nullptr || c->isZero();
    }
    default:
      return false;
  }
}

bool Instruction::mayWriteMemory() const {
  switch (opcode_) {
    case Opcode::Store:
      return true;
    case Opcode::Call: {
      Function* callee = static_cast<const CallInst*>(this)->calledFunction();
      if (callee == nullptr) return true;  // Indirect: assume the worst.
      if (callee->hasAttr(FnAttr::ReadNone) ||
          callee->hasAttr(FnAttr::ReadOnly)) {
        return false;
      }
      if (callee->intrinsicId() == IntrinsicId::Assume ||
          callee->intrinsicId() == IntrinsicId::AssumeAligned) {
        return false;
      }
      return true;
    }
    default:
      return false;
  }
}

bool Instruction::mayReadMemory() const {
  switch (opcode_) {
    case Opcode::Load:
      return true;
    case Opcode::Call: {
      Function* callee = static_cast<const CallInst*>(this)->calledFunction();
      if (callee == nullptr) return true;
      if (callee->hasAttr(FnAttr::ReadNone)) return false;
      if (callee->intrinsicId() == IntrinsicId::Assume ||
          callee->intrinsicId() == IntrinsicId::AssumeAligned) {
        return false;
      }
      return true;
    }
    default:
      return false;
  }
}

bool Instruction::isRemovableIfUnused() const {
  if (isTerminator()) return false;
  if (mayTrap()) return false;
  switch (opcode_) {
    case Opcode::Store:
      return false;
    case Opcode::Call: {
      Function* callee = static_cast<const CallInst*>(this)->calledFunction();
      if (callee == nullptr) return false;
      // Optimizer hints can always be dropped.
      if (callee->intrinsicId() == IntrinsicId::Assume ||
          callee->intrinsicId() == IntrinsicId::AssumeAligned ||
          callee->intrinsicId() == IntrinsicId::Expect) {
        return true;
      }
      return callee->hasAttr(FnAttr::ReadNone) ||
             callee->hasAttr(FnAttr::ReadOnly);
    }
    default:
      return true;
  }
}

std::size_t Instruction::numSuccessors() const {
  switch (opcode_) {
    case Opcode::Br: return 1;
    case Opcode::CondBr: return 2;
    case Opcode::Switch: return 1 + (numOperands() - 2) / 2;
    default: return 0;
  }
}

BasicBlock* Instruction::successor(std::size_t i) const {
  POSETRL_CHECK(i < numSuccessors(), "successor index out of range");
  switch (opcode_) {
    case Opcode::Br:
      return cast<BasicBlock>(operand(0));
    case Opcode::CondBr:
      return cast<BasicBlock>(operand(1 + i));
    case Opcode::Switch:
      if (i == 0) return cast<BasicBlock>(operand(1));
      return cast<BasicBlock>(operand(1 + 2 * i));
    default:
      POSETRL_UNREACHABLE("successor on non-branch");
  }
}

void Instruction::setSuccessor(std::size_t i, BasicBlock* block) {
  POSETRL_CHECK(i < numSuccessors(), "successor index out of range");
  switch (opcode_) {
    case Opcode::Br:
      setOperand(0, block);
      return;
    case Opcode::CondBr:
      setOperand(1 + i, block);
      return;
    case Opcode::Switch:
      setOperand(i == 0 ? 1 : 1 + 2 * i, block);
      return;
    default:
      POSETRL_UNREACHABLE("setSuccessor on non-branch");
  }
}

// --- clone() implementations ---

Instruction* AllocaInst::clone() const {
  auto* c = new AllocaInst(type(), allocated_, name());
  copyMetaTo(c);
  return c;
}

Instruction* LoadInst::clone() const {
  auto* c = new LoadInst(type(), pointer(), name());
  c->setAlignment(align_);
  copyMetaTo(c);
  return c;
}

Instruction* StoreInst::clone() const {
  auto* c = new StoreInst(type(), value(), pointer());
  c->setAlignment(align_);
  copyMetaTo(c);
  return c;
}

Instruction* GepInst::clone() const {
  std::vector<Value*> indices;
  for (std::size_t i = 0; i < numIndices(); ++i) indices.push_back(index(i));
  auto* c = new GepInst(type(), source_elem_, base(), std::move(indices),
                        name());
  copyMetaTo(c);
  return c;
}

bool GepInst::hasAllConstantIndices() const {
  for (std::size_t i = 0; i < numIndices(); ++i) {
    if (!isa<ConstantInt>(index(i))) return false;
  }
  return true;
}

BasicBlock* PhiInst::incomingBlock(std::size_t i) const {
  return cast<BasicBlock>(operand(2 * i + 1));
}

void PhiInst::addIncoming(Value* value, BasicBlock* block) {
  appendOperand(value);
  appendOperand(block);
}

void PhiInst::removeIncoming(BasicBlock* block) {
  const std::size_t i = indexOfBlock(block);
  POSETRL_CHECK(i != static_cast<std::size_t>(-1),
                "phi has no incoming edge from block");
  removeOperandAt(2 * i + 1);
  removeOperandAt(2 * i);
}

Value* PhiInst::incomingForBlock(BasicBlock* block) const {
  const std::size_t i = indexOfBlock(block);
  POSETRL_CHECK(i != static_cast<std::size_t>(-1),
                "phi has no incoming edge from block");
  return incomingValue(i);
}

std::size_t PhiInst::indexOfBlock(BasicBlock* block) const {
  for (std::size_t i = 0; i < numIncoming(); ++i) {
    if (incomingBlock(i) == block) return i;
  }
  return static_cast<std::size_t>(-1);
}

Value* PhiInst::uniformValue() const {
  Value* uniform = nullptr;
  for (std::size_t i = 0; i < numIncoming(); ++i) {
    Value* v = incomingValue(i);
    if (v == this) continue;
    if (uniform == nullptr) {
      uniform = v;
    } else if (uniform != v) {
      return nullptr;
    }
  }
  return uniform;
}

Instruction* PhiInst::clone() const {
  auto* c = new PhiInst(type(), name());
  for (std::size_t i = 0; i < numIncoming(); ++i) {
    c->addIncoming(incomingValue(i), incomingBlock(i));
  }
  copyMetaTo(c);
  return c;
}

CallInst::CallInst(Type* result, Value* callee, std::vector<Value*> args,
                   std::string name)
    : Instruction(Opcode::Call, result, std::move(name), {}) {
  appendOperand(callee);
  for (Value* a : args) appendOperand(a);
}

Function* CallInst::calledFunction() const {
  return dynCast<Function>(callee());
}

Instruction* CallInst::clone() const {
  std::vector<Value*> args;
  for (std::size_t i = 0; i < numArgs(); ++i) args.push_back(arg(i));
  auto* c = new CallInst(type(), callee(), std::move(args), name());
  copyMetaTo(c);
  return c;
}

Instruction* RetInst::clone() const {
  auto* c = new RetInst(type(), hasValue() ? value() : nullptr);
  copyMetaTo(c);
  return c;
}

BrInst::BrInst(Type* void_type, BasicBlock* target)
    : Instruction(Opcode::Br, void_type, "",
                  {static_cast<Value*>(target)}) {}

Instruction* BrInst::clone() const {
  auto* c = new BrInst(type(), target());
  copyMetaTo(c);
  return c;
}

CondBrInst::CondBrInst(Type* void_type, Value* cond, BasicBlock* then_block,
                       BasicBlock* else_block)
    : Instruction(Opcode::CondBr, void_type, "",
                  {cond, static_cast<Value*>(then_block),
                   static_cast<Value*>(else_block)}) {}

Instruction* CondBrInst::clone() const {
  auto* c = new CondBrInst(type(), condition(), thenBlock(), elseBlock());
  copyMetaTo(c);
  return c;
}

SwitchInst::SwitchInst(Type* void_type, Value* cond, BasicBlock* default_block)
    : Instruction(Opcode::Switch, void_type, "",
                  {cond, static_cast<Value*>(default_block)}) {}

BasicBlock* SwitchInst::defaultBlock() const {
  return cast<BasicBlock>(operand(1));
}

ConstantInt* SwitchInst::caseValue(std::size_t i) const {
  POSETRL_CHECK(i < numCases(), "case index out of range");
  return cast<ConstantInt>(operand(2 + 2 * i));
}

BasicBlock* SwitchInst::caseBlock(std::size_t i) const {
  POSETRL_CHECK(i < numCases(), "case index out of range");
  return cast<BasicBlock>(operand(3 + 2 * i));
}

void SwitchInst::addCase(ConstantInt* value, BasicBlock* block) {
  appendOperand(value);
  appendOperand(block);
}

void SwitchInst::removeCase(std::size_t i) {
  POSETRL_CHECK(i < numCases(), "case index out of range");
  removeOperandAt(3 + 2 * i);
  removeOperandAt(2 + 2 * i);
}

Instruction* SwitchInst::clone() const {
  auto* c = new SwitchInst(type(), condition(), defaultBlock());
  for (std::size_t i = 0; i < numCases(); ++i) {
    c->addCase(caseValue(i), caseBlock(i));
  }
  copyMetaTo(c);
  return c;
}

Instruction* UnreachableInst::clone() const {
  auto* c = new UnreachableInst(type());
  copyMetaTo(c);
  return c;
}

Instruction* SelectInst::clone() const {
  auto* c = new SelectInst(type(), condition(), trueValue(), falseValue(),
                           name());
  copyMetaTo(c);
  return c;
}

Instruction* BinaryInst::clone() const {
  auto* c = new BinaryInst(opcode(), type(), lhs(), rhs(), name());
  copyMetaTo(c);
  return c;
}

ICmpInst::Pred ICmpInst::swapped(Pred p) {
  switch (p) {
    case Pred::EQ: return Pred::EQ;
    case Pred::NE: return Pred::NE;
    case Pred::SLT: return Pred::SGT;
    case Pred::SLE: return Pred::SGE;
    case Pred::SGT: return Pred::SLT;
    case Pred::SGE: return Pred::SLE;
    case Pred::ULT: return Pred::UGT;
    case Pred::ULE: return Pred::UGE;
    case Pred::UGT: return Pred::ULT;
    case Pred::UGE: return Pred::ULE;
  }
  POSETRL_UNREACHABLE("bad icmp predicate");
}

ICmpInst::Pred ICmpInst::inverse(Pred p) {
  switch (p) {
    case Pred::EQ: return Pred::NE;
    case Pred::NE: return Pred::EQ;
    case Pred::SLT: return Pred::SGE;
    case Pred::SLE: return Pred::SGT;
    case Pred::SGT: return Pred::SLE;
    case Pred::SGE: return Pred::SLT;
    case Pred::ULT: return Pred::UGE;
    case Pred::ULE: return Pred::UGT;
    case Pred::UGT: return Pred::ULE;
    case Pred::UGE: return Pred::ULT;
  }
  POSETRL_UNREACHABLE("bad icmp predicate");
}

const char* ICmpInst::predName(Pred p) {
  switch (p) {
    case Pred::EQ: return "eq";
    case Pred::NE: return "ne";
    case Pred::SLT: return "slt";
    case Pred::SLE: return "sle";
    case Pred::SGT: return "sgt";
    case Pred::SGE: return "sge";
    case Pred::ULT: return "ult";
    case Pred::ULE: return "ule";
    case Pred::UGT: return "ugt";
    case Pred::UGE: return "uge";
  }
  POSETRL_UNREACHABLE("bad icmp predicate");
}

bool ICmpInst::evaluate(Pred p, std::int64_t lhs, std::int64_t rhs,
                        unsigned bits) {
  const std::uint64_t mask =
      bits == 64 ? ~0ull : ((1ull << bits) - 1);
  const std::uint64_t ul = static_cast<std::uint64_t>(lhs) & mask;
  const std::uint64_t ur = static_cast<std::uint64_t>(rhs) & mask;
  switch (p) {
    case Pred::EQ: return lhs == rhs;
    case Pred::NE: return lhs != rhs;
    case Pred::SLT: return lhs < rhs;
    case Pred::SLE: return lhs <= rhs;
    case Pred::SGT: return lhs > rhs;
    case Pred::SGE: return lhs >= rhs;
    case Pred::ULT: return ul < ur;
    case Pred::ULE: return ul <= ur;
    case Pred::UGT: return ul > ur;
    case Pred::UGE: return ul >= ur;
  }
  POSETRL_UNREACHABLE("bad icmp predicate");
}

Instruction* ICmpInst::clone() const {
  auto* c = new ICmpInst(type(), pred_, lhs(), rhs(), name());
  copyMetaTo(c);
  return c;
}

const char* FCmpInst::predName(Pred p) {
  switch (p) {
    case Pred::OEQ: return "oeq";
    case Pred::ONE: return "one";
    case Pred::OLT: return "olt";
    case Pred::OLE: return "ole";
    case Pred::OGT: return "ogt";
    case Pred::OGE: return "oge";
  }
  POSETRL_UNREACHABLE("bad fcmp predicate");
}

bool FCmpInst::evaluate(Pred p, double lhs, double rhs) {
  switch (p) {
    case Pred::OEQ: return lhs == rhs;
    case Pred::ONE: return lhs != rhs;
    case Pred::OLT: return lhs < rhs;
    case Pred::OLE: return lhs <= rhs;
    case Pred::OGT: return lhs > rhs;
    case Pred::OGE: return lhs >= rhs;
  }
  POSETRL_UNREACHABLE("bad fcmp predicate");
}

Instruction* FCmpInst::clone() const {
  auto* c = new FCmpInst(type(), pred_, lhs(), rhs(), name());
  copyMetaTo(c);
  return c;
}

Instruction* CastInst::clone() const {
  auto* c = new CastInst(opcode(), type(), value(), name());
  copyMetaTo(c);
  return c;
}

}  // namespace posetrl
