#include "ir/structural_hash.h"

#include <cstring>

#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/global_variable.h"
#include "ir/instruction.h"
#include "ir/module.h"
#include "support/hashing.h"

namespace posetrl {

std::uint64_t structuralTypeHash(const Type* t) {
  if (t == nullptr) return 0x9e3779b97f4a7c15ull;
  if (const std::uint64_t cached = t->analysisHashCache(); cached != 0)
    return cached;
  std::uint64_t h =
      hashCombine(0x51ed2701, static_cast<std::uint64_t>(t->kind()));
  switch (t->kind()) {
    case Type::Kind::Ptr:
      h = hashCombine(h, structuralTypeHash(t->pointee()));
      break;
    case Type::Kind::Array:
      h = hashCombine(hashCombine(h, structuralTypeHash(t->arrayElement())),
                      t->arrayCount());
      break;
    case Type::Kind::Struct:
      for (const Type* field : t->structFields())
        h = hashCombine(h, structuralTypeHash(field));
      break;
    case Type::Kind::Func:
      h = hashCombine(h, structuralTypeHash(t->funcReturn()));
      for (const Type* p : t->funcParams())
        h = hashCombine(h, structuralTypeHash(p));
      break;
    default:
      break;
  }
  h |= 1;  // Reserve 0 as the not-yet-computed sentinel.
  t->setAnalysisHashCache(h);
  return h;
}

namespace {

std::uint64_t hashTypePtr(const Type* t) { return structuralTypeHash(t); }

std::uint64_t hashOperand(const Value* v, std::uint64_t gen) {
  if (v->fingerprintIdValid(gen)) return hashCombine(1, v->fingerprintId());
  switch (v->kind()) {
    case Value::Kind::ConstantInt: {
      const auto* c = static_cast<const ConstantInt*>(v);
      return hashCombine(hashCombine(2, hashTypePtr(c->type())),
                         static_cast<std::uint64_t>(c->value()));
    }
    case Value::Kind::ConstantFloat: {
      std::uint64_t bits = 0;
      const double d = static_cast<const ConstantFloat*>(v)->value();
      std::memcpy(&bits, &d, sizeof(bits));
      return hashCombine(3, bits);
    }
    case Value::Kind::ConstantNull:
      return hashCombine(4, hashTypePtr(v->type()));
    case Value::Kind::Undef:
      return hashCombine(5, hashTypePtr(v->type()));
    default:
      // A value outside this module: should not happen on verified IR.
      return 9;
  }
}

}  // namespace

std::uint64_t moduleContentHash(const Module& m) {
  const std::uint64_t gen = Value::nextStampGeneration();
  std::uint64_t next_id = 0;
  for (const auto& f : m.functions()) {
    f->stampFingerprintId(gen, next_id++);
    for (const auto& a : f->args()) a->stampFingerprintId(gen, next_id++);
    for (const auto& bb : f->blocks()) {
      bb->stampFingerprintId(gen, next_id++);
      for (const auto& inst : bb->insts()) {
        inst->stampFingerprintId(gen, next_id++);
      }
    }
  }
  for (const auto& g : m.globals()) g->stampFingerprintId(gen, next_id++);

  std::uint64_t h = fnv1a(m.name());
  for (const auto& g : m.globals()) {
    h = hashCombine(h, fnv1a(g->name()));
    h = hashCombine(h, hashTypePtr(g->valueType()));
    h = hashCombine(h, static_cast<std::uint64_t>(g->linkage()));
    h = hashCombine(h, g->isConst() ? 1u : 0u);
    const GlobalInit& init = g->init();
    h = hashCombine(h, static_cast<std::uint64_t>(init.kind));
    switch (init.kind) {
      case GlobalInit::Kind::Zero:
        break;
      case GlobalInit::Kind::Int:
        h = hashCombine(h, static_cast<std::uint64_t>(init.int_value));
        break;
      case GlobalInit::Kind::Float: {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &init.float_value, sizeof(bits));
        h = hashCombine(h, bits);
        break;
      }
      case GlobalInit::Kind::IntArray:
        h = hashCombine(h, init.elements.size());
        for (std::int64_t e : init.elements) {
          h = hashCombine(h, static_cast<std::uint64_t>(e));
        }
        break;
      case GlobalInit::Kind::FuncPtr:
        h = hashCombine(h, fnv1a(init.function->name()));
        break;
    }
  }
  for (const auto& f : m.functions()) {
    h = hashCombine(h, fnv1a(f->name()));
    h = hashCombine(h, hashTypePtr(f->functionType()));
    h = hashCombine(h, static_cast<std::uint64_t>(f->linkage()));
    h = hashCombine(h, f->rawAttrs());
    h = hashCombine(h, static_cast<std::uint64_t>(f->intrinsicId()));
    for (const auto& a : f->args()) h = hashCombine(h, fnv1a(a->name()));
    for (const auto& bb : f->blocks()) {
      h = hashCombine(h, fnv1a(bb->name()));
      h = hashCombine(h, bb->size());
      for (const auto& inst : bb->insts()) {
        h = hashCombine(h, static_cast<std::uint64_t>(inst->opcode()));
        h = hashCombine(h, hashTypePtr(inst->type()));
        h = hashCombine(h, fnv1a(inst->name()));
        h = hashCombine(h, inst->vectorWidth());
        switch (inst->opcode()) {
          case Opcode::Alloca:
            h = hashCombine(h, hashTypePtr(static_cast<const AllocaInst&>(
                                               *inst).allocatedType()));
            break;
          case Opcode::Load:
            h = hashCombine(
                h, static_cast<const LoadInst&>(*inst).alignment());
            break;
          case Opcode::Store:
            h = hashCombine(
                h, static_cast<const StoreInst&>(*inst).alignment());
            break;
          case Opcode::Gep:
            h = hashCombine(h, hashTypePtr(static_cast<const GepInst&>(
                                               *inst).sourceElement()));
            break;
          case Opcode::ICmp:
            h = hashCombine(h, static_cast<std::uint64_t>(
                                   static_cast<const ICmpInst&>(*inst)
                                       .pred()));
            break;
          case Opcode::FCmp:
            h = hashCombine(h, static_cast<std::uint64_t>(
                                   static_cast<const FCmpInst&>(*inst)
                                       .pred()));
            break;
          default:
            break;
        }
        for (const Value* op : inst->operands()) {
          h = hashCombine(h, hashOperand(op, gen));
        }
      }
    }
  }
  return h;
}

}  // namespace posetrl
