#include "ir/ir_builder.h"

namespace posetrl {

Instruction* IRBuilder::emit(Instruction* inst) {
  POSETRL_CHECK(block_ != nullptr, "IRBuilder has no insertion point");
  block_->pushBack(std::unique_ptr<Instruction>(inst));
  return inst;
}

std::string IRBuilder::pick(const std::string& name) {
  if (!name.empty()) return name;
  POSETRL_CHECK(block_ != nullptr, "IRBuilder has no insertion point");
  return block_->parent()->nextValueName();
}

AllocaInst* IRBuilder::alloca_(Type* allocated, const std::string& name) {
  Type* ptr = module_->types().ptrTo(allocated);
  return static_cast<AllocaInst*>(
      emit(new AllocaInst(ptr, allocated, pick(name))));
}

LoadInst* IRBuilder::load(Value* ptr, const std::string& name) {
  POSETRL_CHECK(ptr->type()->isPointer(), "load from non-pointer");
  return static_cast<LoadInst*>(
      emit(new LoadInst(ptr->type()->pointee(), ptr, pick(name))));
}

StoreInst* IRBuilder::store(Value* value, Value* ptr) {
  POSETRL_CHECK(ptr->type()->isPointer(), "store to non-pointer");
  POSETRL_CHECK(ptr->type()->pointee() == value->type(),
                "store type mismatch");
  return static_cast<StoreInst*>(
      emit(new StoreInst(module_->types().voidTy(), value, ptr)));
}

GepInst* IRBuilder::gep(Value* base, std::vector<Value*> indices,
                        const std::string& name) {
  POSETRL_CHECK(base->type()->isPointer(), "gep base must be a pointer");
  POSETRL_CHECK(!indices.empty(), "gep needs at least one index");
  Type* source = base->type()->pointee();
  // Resolve the result type by stepping through indices (LLVM semantics:
  // the first index does not change the element type).
  Type* cur = source;
  for (std::size_t i = 1; i < indices.size(); ++i) {
    if (cur->isArray()) {
      cur = cur->arrayElement();
    } else if (cur->isStruct()) {
      auto* c = dynCast<ConstantInt>(indices[i]);
      POSETRL_CHECK(c != nullptr, "struct gep index must be constant");
      cur = cur->structFields().at(static_cast<std::size_t>(c->value()));
    } else {
      POSETRL_UNREACHABLE("gep steps into non-aggregate type");
    }
  }
  Type* result = module_->types().ptrTo(cur);
  return static_cast<GepInst*>(
      emit(new GepInst(result, source, base, std::move(indices), pick(name))));
}

Value* IRBuilder::binary(Opcode op, Value* lhs, Value* rhs,
                         const std::string& name) {
  POSETRL_CHECK(lhs->type() == rhs->type(), "binary operand type mismatch");
  return emit(new BinaryInst(op, lhs->type(), lhs, rhs, pick(name)));
}

ICmpInst* IRBuilder::icmp(ICmpInst::Pred pred, Value* lhs, Value* rhs,
                          const std::string& name) {
  POSETRL_CHECK(lhs->type() == rhs->type(), "icmp operand type mismatch");
  return static_cast<ICmpInst*>(
      emit(new ICmpInst(module_->types().i1(), pred, lhs, rhs, pick(name))));
}

FCmpInst* IRBuilder::fcmp(FCmpInst::Pred pred, Value* lhs, Value* rhs,
                          const std::string& name) {
  POSETRL_CHECK(lhs->type() == rhs->type(), "fcmp operand type mismatch");
  return static_cast<FCmpInst*>(
      emit(new FCmpInst(module_->types().i1(), pred, lhs, rhs, pick(name))));
}

CastInst* IRBuilder::castOp(Opcode op, Type* to, Value* v,
                            const std::string& name) {
  return static_cast<CastInst*>(emit(new CastInst(op, to, v, pick(name))));
}

SelectInst* IRBuilder::select(Value* cond, Value* tval, Value* fval,
                              const std::string& name) {
  POSETRL_CHECK(tval->type() == fval->type(), "select arm type mismatch");
  return static_cast<SelectInst*>(
      emit(new SelectInst(tval->type(), cond, tval, fval, pick(name))));
}

CallInst* IRBuilder::call(Function* callee, std::vector<Value*> args,
                          const std::string& name) {
  Type* ret = callee->returnType();
  const std::string result_name = ret->isVoid() ? "" : pick(name);
  return static_cast<CallInst*>(
      emit(new CallInst(ret, callee, std::move(args), result_name)));
}

CallInst* IRBuilder::callIndirect(Type* result, Value* callee,
                                  std::vector<Value*> args,
                                  const std::string& name) {
  const std::string result_name = result->isVoid() ? "" : pick(name);
  return static_cast<CallInst*>(
      emit(new CallInst(result, callee, std::move(args), result_name)));
}

PhiInst* IRBuilder::phi(Type* type, const std::string& name) {
  POSETRL_CHECK(block_ != nullptr, "IRBuilder has no insertion point");
  auto owned = std::make_unique<PhiInst>(type, pick(name));
  PhiInst* raw = owned.get();
  block_->pushFront(std::move(owned));
  return raw;
}

BrInst* IRBuilder::br(BasicBlock* target) {
  return static_cast<BrInst*>(
      emit(new BrInst(module_->types().voidTy(), target)));
}

CondBrInst* IRBuilder::condBr(Value* cond, BasicBlock* then_block,
                              BasicBlock* else_block) {
  return static_cast<CondBrInst*>(emit(
      new CondBrInst(module_->types().voidTy(), cond, then_block,
                     else_block)));
}

SwitchInst* IRBuilder::switchOp(Value* cond, BasicBlock* default_block) {
  return static_cast<SwitchInst*>(
      emit(new SwitchInst(module_->types().voidTy(), cond, default_block)));
}

RetInst* IRBuilder::ret(Value* value) {
  return static_cast<RetInst*>(
      emit(new RetInst(module_->types().voidTy(), value)));
}

RetInst* IRBuilder::retVoid() {
  return static_cast<RetInst*>(
      emit(new RetInst(module_->types().voidTy(), nullptr)));
}

UnreachableInst* IRBuilder::unreachable() {
  return static_cast<UnreachableInst*>(
      emit(new UnreachableInst(module_->types().voidTy())));
}

}  // namespace posetrl
