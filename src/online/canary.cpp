#include "online/canary.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "faults/sandbox.h"
#include "ir/clone.h"
#include "ir/module.h"
#include "online/snapshot.h"
#include "target/size_model.h"
#include "target/target_info.h"

namespace posetrl {

CanaryRollout canaryRollout(const Mlp& net, const Module& program,
                            const std::vector<SubSequence>& actions,
                            const EnvConfig& env) {
  EnvConfig cfg = env;
  cfg.sandbox_actions = true;  // never let an eval rollout crash the gate
  PhaseOrderEnv rollout_env(program, actions, cfg);
  Embedding state = rollout_env.reset();
  CanaryRollout out;
  out.base_size = rollout_env.baseSize();
  out.best_size = out.base_size;
  for (int step = 0; step < cfg.episode_length; ++step) {
    const std::vector<bool>& mask = rollout_env.actionMask();
    if (std::all_of(mask.begin(), mask.end(), [](bool b) { return b; })) {
      break;  // everything quarantined on this program
    }
    const std::size_t action = maskedArgmax(net.forward(state), &mask);
    const PhaseOrderEnv::StepResult sr = rollout_env.step(action);
    state = sr.state;
    if (sr.faulted) ++out.faults;
    out.best_size = std::min(out.best_size, rollout_env.currentSize());
    if (sr.done) break;
  }
  return out;
}

namespace {

/// Modeled size of \p program after a sandboxed stock -Oz run; negative when
/// the -Oz pipeline itself faulted (the module is then excluded from the
/// floor comparison — matching the serving ladder, which also skips the -Oz
/// rung when it faults).
double sandboxedOzSize(const Module& program, const EnvConfig& env,
                       const SizeModel& size_model) {
  std::unique_ptr<Module> oz = cloneModule(program);
  SandboxConfig sc = env.sandbox;
  sc.verify = env.verify_actions;
  sc.oracle = env.oracle_actions;
  const SandboxOutcome out = runActionSandboxed(oz, ozPassNames(), sc);
  if (!out.ok) return -1.0;
  return size_model.objectBytes(*oz);
}

}  // namespace

CanaryReport runCanary(const Mlp& candidate, const Mlp& incumbent,
                       const std::vector<const Module*>& holdout,
                       const std::vector<const Module*>& shadow,
                       const std::vector<SubSequence>& actions,
                       const EnvConfig& env, const CanaryConfig& config) {
  const auto t0 = std::chrono::steady_clock::now();
  CanaryReport report;
  const SizeModel size_model(TargetInfo::forArch(env.arch));

  std::vector<const Module*> modules;
  for (const Module* m : holdout) {
    if (m != nullptr) {
      modules.push_back(m);
      ++report.holdout_modules;
    }
  }
  for (const Module* m : shadow) {
    if (m != nullptr) {
      modules.push_back(m);
      ++report.shadow_modules;
    }
  }
  if (modules.empty()) {
    report.reason = "no evaluation modules";
    return report;
  }

  double cand_ratio_sum = 0.0, inc_ratio_sum = 0.0, oz_ratio_sum = 0.0;
  for (const Module* m : modules) {
    const CanaryRollout cand = canaryRollout(candidate, *m, actions, env);
    const CanaryRollout inc = canaryRollout(incumbent, *m, actions, env);
    report.candidate_faults += cand.faults;
    report.incumbent_faults += inc.faults;
    cand_ratio_sum += cand.best_size / cand.base_size;
    inc_ratio_sum += inc.best_size / inc.base_size;
    const double oz_size = sandboxedOzSize(*m, env, size_model);
    if (oz_size >= 0.0) {
      oz_ratio_sum += oz_size / cand.base_size;
      ++report.oz_completed;
    }
  }
  const double n = static_cast<double>(modules.size());
  report.candidate_ratio = cand_ratio_sum / n;
  report.incumbent_ratio = inc_ratio_sum / n;
  report.oz_ratio = report.oz_completed > 0
                        ? oz_ratio_sum / static_cast<double>(report.oz_completed)
                        : 0.0;
  report.eval_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();

  std::ostringstream why;
  if (report.candidate_faults > config.max_faults) {
    why << "fault budget exceeded: " << report.candidate_faults << " > "
        << config.max_faults;
    report.reason = why.str();
    return report;
  }
  if (report.oz_completed > 0 &&
      report.candidate_ratio >
          report.oz_ratio * (1.0 + config.oz_tolerance)) {
    why << "candidate mean ratio " << report.candidate_ratio
        << " misses the -Oz floor " << report.oz_ratio << " (tolerance "
        << config.oz_tolerance << ")";
    report.reason = why.str();
    return report;
  }
  if (report.candidate_ratio >
      report.incumbent_ratio * (1.0 + config.incumbent_tolerance)) {
    why << "candidate mean ratio " << report.candidate_ratio
        << " regresses the incumbent " << report.incumbent_ratio
        << " (tolerance " << config.incumbent_tolerance << ")";
    report.reason = why.str();
    return report;
  }
  report.accepted = true;
  report.reason = "ok";
  return report;
}

}  // namespace posetrl
