#pragma once

/// \file canary.h
/// Canary gate for candidate policies: before a freshly trained network is
/// promoted to serving, it must prove itself on (a) a pinned held-out module
/// set and (b) shadow replays of recent real requests. Every evaluation
/// rollout runs fully sandboxed, so a catastrophically bad candidate is
/// rejected without ever touching live traffic.
///
/// The gate measures mean modeled-size ratios (optimized / unoptimized,
/// best-prefix semantics matching the serving ladder) for the candidate, the
/// incumbent, and the stock -Oz pipeline over the same modules, and promotes
/// only a candidate that
///   1. stays within fault budget,
///   2. beats (or ties within tolerance) the -Oz floor, and
///   3. does not regress the incumbent beyond tolerance.

#include <cstddef>
#include <string>
#include <vector>

#include "core/environment.h"
#include "core/oz_sequence.h"
#include "rl/mlp.h"

namespace posetrl {

class Module;

struct CanaryConfig {
  /// Candidate mean size ratio may exceed the -Oz mean ratio by at most
  /// this fraction (0.05 = 5% worse than -Oz still promotes — the serving
  /// ladder's -Oz rung backstops individual requests regardless).
  double oz_tolerance = 0.05;
  /// Candidate mean size ratio may exceed the incumbent's by at most this
  /// fraction. Negative forces strict improvement.
  double incumbent_tolerance = 0.02;
  /// Contained faults the candidate may incur across all evaluation
  /// rollouts before being rejected outright.
  std::size_t max_faults = 4;
};

/// One evaluation rollout's outcome.
struct CanaryRollout {
  double base_size = 0.0;
  double best_size = 0.0;  ///< Best-prefix modeled size under the policy.
  std::size_t faults = 0;
};

/// Full gate verdict.
struct CanaryReport {
  bool accepted = false;
  std::string reason;  ///< Human-readable verdict ("ok" when accepted).
  std::size_t holdout_modules = 0;
  std::size_t shadow_modules = 0;
  /// Mean best-prefix size ratios (size / base) over all evaluated modules.
  double candidate_ratio = 0.0;
  double incumbent_ratio = 0.0;
  double oz_ratio = 0.0;          ///< Over modules where -Oz completed.
  std::size_t oz_completed = 0;   ///< Modules whose sandboxed -Oz ran clean.
  std::size_t candidate_faults = 0;
  std::size_t incumbent_faults = 0;
  double eval_ms = 0.0;
};

/// Sandboxed greedy rollout of \p net on \p program; returns best-prefix
/// size, base size, and contained-fault count. Mirrors the serving ladder's
/// rollout semantics (greedy masked argmax, quarantine-aware).
CanaryRollout canaryRollout(const Mlp& net, const Module& program,
                            const std::vector<SubSequence>& actions,
                            const EnvConfig& env);

/// Runs the full gate: candidate vs incumbent vs -Oz over holdout + shadow
/// modules. Sandboxing is forced on regardless of \p env. Null entries in
/// the module lists are skipped.
CanaryReport runCanary(const Mlp& candidate, const Mlp& incumbent,
                       const std::vector<const Module*>& holdout,
                       const std::vector<const Module*>& shadow,
                       const std::vector<SubSequence>& actions,
                       const EnvConfig& env, const CanaryConfig& config);

}  // namespace posetrl
