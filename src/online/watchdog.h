#pragma once

/// \file watchdog.h
/// Post-promotion health watchdog. Passing the canary gate proves a
/// candidate on held-out and shadow modules; the watchdog covers what the
/// gate cannot see — live traffic. It is armed for exactly one policy
/// version at promotion time, observes only requests served on that
/// version, and over a sliding window delivers one of two verdicts:
///
///   Breach    — the armed version is degrading live traffic (too many
///               requests falling to the -Oz/Identity rungs, fault rate
///               blowing up, or any violated -Oz guarantee). The caller
///               rolls back to the last-good snapshot; the watchdog disarms
///               so the restored incumbent is not judged by the breaching
///               window (no rollback loops).
///   Graduate  — the version survived a full healthy window. The caller
///               marks it last-good; the watchdog disarms until the next
///               promotion.
///
/// Requests served on other versions (in-flight on the predecessor, or
/// post-rollback traffic) are ignored by design.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>

namespace posetrl {

/// One served request as the watchdog sees it (translated from ServeResult
/// by the serving layer; the online library stays independent of serve/).
struct ServeObservation {
  std::uint64_t policy_version = 0;  ///< Snapshot the request was served on.
  bool degraded = false;  ///< Landed on the OzPipeline or Identity rung.
  std::size_t faults = 0; ///< Contained faults during the request.
  /// The response violated the "never worse than verified -Oz" guarantee —
  /// must never happen; a single occurrence is grounds for breach.
  bool oz_violation = false;
};

struct WatchdogConfig {
  /// Sliding window length (observations of the armed version).
  std::size_t window = 64;
  /// No verdict before this many observations of the armed version.
  std::size_t min_observations = 8;
  /// Healthy observations needed to graduate the version to last-good.
  std::size_t graduate_observations = 24;
  /// Breach when more than this fraction of the window degraded.
  double max_degraded_fraction = 0.5;
  /// Breach when mean contained faults per request exceeds this.
  double max_fault_rate = 3.0;
  /// Breach when the window holds more than this many oz violations
  /// (default 0: one violation is one too many).
  std::size_t max_oz_violations = 0;
};

class PromotionWatchdog {
 public:
  explicit PromotionWatchdog(WatchdogConfig config = {});

  enum class Verdict { None, Breach, Graduate };

  /// Arms the watchdog for \p version, clearing any previous window.
  void arm(std::uint64_t version);
  void disarm();
  bool armed() const;
  std::uint64_t armedVersion() const;

  /// Feeds one served request. Returns a verdict for the armed version
  /// (None while unarmed, for other versions, or while the window is too
  /// small). A Breach or Graduate verdict disarms the watchdog before
  /// returning — each promotion gets exactly one verdict.
  Verdict observe(const ServeObservation& obs);

  struct Stats {
    std::size_t observed = 0;  ///< Armed-version observations consumed.
    std::size_t breaches = 0;
    std::size_t graduations = 0;
  };
  Stats stats() const;

 private:
  WatchdogConfig config_;
  mutable std::mutex mu_;
  bool armed_ = false;
  std::uint64_t armed_version_ = 0;
  std::deque<ServeObservation> window_;
  Stats stats_;
};

}  // namespace posetrl
