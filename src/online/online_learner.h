#pragma once

/// \file online_learner.h
/// The online-learning loop behind CompileService (DESIGN.md "Online
/// learning and policy lifecycle"): served episodes flow in, policy
/// snapshots flow out, and every hand-off is crash-safe.
///
///   workers --ingest()--> WAL (durable) --> learner thread --> replay
///   shards --> DQN updates --> candidate --> canary gate --> publish()
///   --> watchdog --observe()--> graduate | breach --> rollback
///
/// Durability contract: ingest() appends the episode to the write-ahead log
/// and enqueues it for the learner under one mutex, so WAL order equals
/// replay-buffer push order; after a crash, the constructor replays the WAL
/// into the sharded buffer and rebuilds the exact pre-crash contents (each
/// record carries its shard index, so recovery is independent of the
/// original worker threading). Promoted snapshots are persisted atomically;
/// a restarted service resumes serving the last promoted policy.
///
/// Durability degradation: a disk fault (EIO, ENOSPC, failed fsync) on the
/// ingest path must not take serving down. When a WAL append raises
/// IoError, the learner enters a counted no-durability mode: requests keep
/// being served, but episodes are DROPPED (`ingest_dropped`) rather than
/// queued — pushing unlogged episodes would break the WAL-order ==
/// shard-order recovery contract. Ingest attempts re-arm with exponential
/// backoff (`durability_retry_*`): each probe rebuilds the WAL writer,
/// whose constructor garbage-collects and repairs whatever the failed
/// appends left on disk. On success the mode clears (`durability_rearms`)
/// and episodes flow durably again. Snapshot-persist failures likewise
/// degrade to in-memory publication (`snapshot_persist_failures`) — a
/// restart then resumes from the last snapshot that did reach the disk,
/// which is always a safe, older policy.
///
/// Promotion contract: every published version strictly increases — a
/// rollback does not republish an old pointer, it publishes a *new* version
/// carrying the last-good weights and `rollback = true`, so in-flight pins
/// and the version history stay coherent.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/environment.h"
#include "core/oz_sequence.h"
#include "online/canary.h"
#include "online/snapshot.h"
#include "online/wal.h"
#include "online/watchdog.h"
#include "rl/dqn.h"
#include "rl/replay_buffer.h"
#include "support/rng.h"

namespace posetrl {

class Module;

struct OnlineLearnerConfig {
  /// State root: the WAL lives in `dir + "/wal"`, the persisted snapshot in
  /// `dir` itself. Required.
  std::string dir;
  /// Replay shards (ingest distributes episodes round-robin by request id).
  std::size_t num_shards = 4;
  std::size_t shard_capacity = 4096;
  /// WAL tuning (see WalConfig).
  std::size_t wal_segment_bytes = 4u << 20;
  std::size_t wal_sync_every = 16;
  /// Gradient steps per promotion attempt.
  std::size_t train_batches = 8;
  /// Ingested episodes between promotion attempts (0 disables automatic
  /// promotion — candidates then only appear via forcePromote()).
  std::size_t promote_every = 8;
  /// Recent request modules cloned for shadow-mode canary evaluation.
  std::size_t shadow_capacity = 4;
  CanaryConfig canary;
  WatchdogConfig watchdog;
  /// Environment for canary rollouts (sandboxing forced on).
  EnvConfig env;
  std::uint64_t seed = 0x0e11a;
  /// First re-arm probe after entering durability degradation fires this
  /// many ms after the failure; consecutive probe failures double the wait
  /// up to `durability_retry_max_ms`.
  std::size_t durability_retry_initial_ms = 100;
  std::size_t durability_retry_max_ms = 5000;
};

/// Monotonic counters; snapshot via OnlineLearner::stats().
struct OnlineStats {
  std::size_t recovered_records = 0;  ///< WAL records replayed at startup.
  bool recovered_torn_tail = false;   ///< Startup replay hit a torn record.
  std::size_t ingested_episodes = 0;
  std::size_t ingested_steps = 0;
  std::size_t trained_batches = 0;
  std::size_t promotions = 0;   ///< Canary-accepted or forced publishes.
  std::size_t rejections = 0;   ///< Canary-rejected candidates.
  std::size_t rollbacks = 0;    ///< Watchdog breaches acted on.
  std::size_t graduations = 0;  ///< Versions promoted to last-good.
  std::uint64_t current_version = 0;
  std::uint64_t last_good_version = 0;
  // Durability degradation (see file comment).
  std::size_t wal_failures = 0;    ///< WAL appends/rebuilds that raised.
  std::size_t ingest_dropped = 0;  ///< Episodes dropped while degraded.
  std::size_t durability_rearms = 0;  ///< Degraded -> durable transitions.
  std::size_t snapshot_persist_failures = 0;
  bool durability_degraded = false;   ///< Currently in no-durability mode.
  // Startup recovery detail.
  std::size_t startup_gc_removed = 0;  ///< Orphaned snapshot tmp files swept.
  bool snapshot_from_fallback = false;  ///< Loaded snapshot-prev.txt.
  bool snapshot_reseeded = false;  ///< No generation loadable; reseeded v1.
};

/// Owns the durable ingest path, the background learner, and the policy
/// lifecycle. One instance per CompileService; the service keeps it alive.
class OnlineLearner {
 public:
  /// \p seed_agent provides the network architecture and the initial
  /// weights of version 1 (unless a persisted snapshot takes precedence);
  /// \p actions is the serving action space (canary rollouts replay it).
  /// The constructor performs full crash recovery: replays the WAL into the
  /// replay shards and republishes the persisted current snapshot.
  OnlineLearner(const DoubleDqn& seed_agent, std::vector<SubSequence> actions,
                OnlineLearnerConfig config);
  ~OnlineLearner();
  OnlineLearner(const OnlineLearner&) = delete;
  OnlineLearner& operator=(const OnlineLearner&) = delete;

  /// Spawns the learner thread (no-op when running).
  void start();
  /// Drains pending episodes into the replay shards and joins. Idempotent.
  void stop();
  /// Blocks until every episode ingested so far has reached the replay
  /// shards (the learner must be running).
  void drain();

  /// Durable ingest: appends \p record to the WAL and queues it for the
  /// learner. Called by service workers; thread-safe. The episode's
  /// transitions must already carry Monte-Carlo annotations (the WAL stores
  /// exactly what the replay buffer will hold). Never raises on disk
  /// faults: a failed append degrades durability (the episode is dropped
  /// and counted) instead of propagating into the serving worker.
  void ingest(EpisodeRecord record);

  /// Feeds one served request to the promotion watchdog; a breach verdict
  /// triggers an automatic rollback to last-good, a graduation marks the
  /// armed version last-good. Thread-safe.
  void observe(const ServeObservation& obs);

  /// Clones \p program into the pinned held-out canary set (call before
  /// serving starts; not thread-safe against a running learner).
  void addHoldoutModule(const Module& program);
  /// Clones \p program into the bounded shadow set of recent real requests
  /// (called by service workers; thread-safe).
  void noteRequestModule(const Module& program);

  /// Publishes \p net as a new version without canary gating, arming the
  /// watchdog — the hook tests and smokes use to inject a known-bad policy
  /// and exercise the rollback path. Returns the published version.
  std::uint64_t forcePromote(Mlp net);

  /// Snapshot registry for per-request pins (service side).
  const SnapshotRegistry& registry() const { return registry_; }
  std::uint64_t currentVersion() const { return registry_.currentVersion(); }

  std::size_t numShards() const { return buffer_.numShards(); }
  /// Read access for recovery-equivalence tests (sync points only).
  const ShardedReplayBuffer& buffer() const { return buffer_; }

  OnlineStats stats() const;
  /// Last canary rejection reason (empty when none).
  std::string lastRejectReason() const;
  /// WAL counters accumulated across every writer instance this learner
  /// created (re-arm probes replace the writer; totals do not reset).
  TrajectoryWal::Stats walStats() const;
  SnapshotRegistry::Stats registryStats() const { return registry_.stats(); }
  PromotionWatchdog::Stats watchdogStats() const { return watchdog_.stats(); }

 private:
  void learnerLoop();
  /// Pushes \p record into its replay shard (learner thread only).
  void applyRecord(EpisodeRecord record);
  void trainAndMaybePromote();
  /// Publishes \p net as currentVersion()+1. Caller holds promote_mu_.
  std::uint64_t promoteLocked(Mlp net, bool rollback, bool arm_watchdog);
  void rollbackToLastGood();
  /// Folds the live writer's counters into the accumulated totals and
  /// destroys it. Caller holds ingest_mu_.
  void retireWalLocked();
  /// Enters no-durability mode and schedules the first re-arm probe.
  /// Caller holds ingest_mu_.
  void enterDegradedLocked();
  /// While degraded: attempts to rebuild the WAL writer once the backoff
  /// deadline has passed. Returns true when durable ingestion is re-armed.
  /// Caller holds ingest_mu_.
  bool probeDurabilityLocked();

  std::vector<SubSequence> actions_;
  OnlineLearnerConfig config_;
  DoubleDqn agent_;  ///< Learner-owned; trained on the learner thread only.
  Rng rng_;
  ShardedReplayBuffer buffer_;
  SnapshotRegistry registry_;
  PromotionWatchdog watchdog_;
  std::unique_ptr<TrajectoryWal> wal_;

  /// Serializes WAL appends with pending-queue pushes (the order contract).
  mutable std::mutex ingest_mu_;
  std::condition_variable ingest_cv_;
  /// Durability degradation state (guarded by ingest_mu_).
  bool degraded_ = false;
  std::chrono::milliseconds probe_backoff_{0};
  std::chrono::steady_clock::time_point next_probe_;
  TrajectoryWal::Stats wal_stats_base_;  ///< Totals from retired writers.
  std::deque<EpisodeRecord> pending_;
  std::condition_variable drained_cv_;
  std::size_t applied_episodes_ = 0;  ///< Episodes moved into the shards.
  bool running_ = false;
  bool stopping_ = false;
  std::thread learner_;

  /// Serializes publishes, rollback state, and the armed-candidate record.
  mutable std::mutex promote_mu_;
  Mlp last_good_net_;
  std::uint64_t last_good_version_ = 0;
  Mlp armed_net_;  ///< Weights of the version the watchdog is judging.
  std::uint64_t armed_version_ = 0;
  std::string last_reject_reason_;

  mutable std::mutex shadow_mu_;
  std::deque<std::shared_ptr<const Module>> shadow_;
  std::vector<std::unique_ptr<const Module>> holdout_;

  mutable std::mutex stats_mu_;
  OnlineStats stats_;
};

}  // namespace posetrl
