#pragma once

/// \file wal.h
/// Write-ahead trajectory log: the durable-ingestion layer of the online
/// learning subsystem (DESIGN.md "Online learning and policy lifecycle").
///
/// CompileService workers serialize every served episode into an
/// EpisodeRecord and append it to the log *before* it is queued for the
/// background learner, so a process killed at any instant can rebuild the
/// exact replay-buffer state it had by replaying the log.
///
/// On-disk format — a directory of append-only segment files
/// (`wal-NNNNNN.log`, monotonically numbered). Each record is one frame:
///
///   u32 magic ("PWL1") | u32 payload_len | u64 fnv1a(payload) | payload
///
/// written with a single write(2) call, so an interrupted append (kill -9,
/// power loss mid-write) leaves at most one torn frame, and only at the very
/// tail of the highest-numbered segment. Appends fsync in batches
/// (`sync_every_records`); segment rotation is atomic — the new segment is
/// created O_EXCL, the old one fsync'd and closed, and the directory entry
/// fsync'd, so a crash between any two steps loses no acknowledged record.
/// A restarted writer never appends to an existing segment (it opens the
/// next index), so a torn tail stays confined to the pre-crash segment.
///
/// replayWal() reads segments in index order, validating every frame.
/// A truncated or checksum-corrupt tail at the *logical end of the log*
/// (the last segment, or a segment followed only by empty segments — the
/// signature of a crash during rotation) is the expected kill -9 outcome
/// and is tolerated (reported as `torn_tail`); any malformed frame with
/// intact records after it is real corruption and raises a recoverable
/// FatalError.
///
/// Every syscall goes through the support/io shim (support/io.h), so disk
/// faults — EIO, ENOSPC, short writes, failed fsyncs — surface as
/// catchable IoError and are injectable in tests. A fresh writer repairs
/// what a crashed predecessor left behind: zero-byte segments (a crash
/// between segment creation and the first append, or a failed re-arm
/// probe) are unlinked, and a torn tail on the highest surviving segment
/// is truncated away so the next crash's torn tail is again the only one
/// in the log.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "rl/replay_buffer.h"
#include "support/io.h"

namespace posetrl {

/// Writer configuration.
struct WalConfig {
  std::string dir;  ///< Segment directory (created if missing).
  /// Rotate to a fresh segment once the current one holds at least this
  /// many bytes.
  std::size_t segment_bytes = 4u << 20;
  /// fsync after every N appended records (1 = every record, 0 = never —
  /// the OS page cache still survives process death, only machine crashes
  /// can lose unsynced records).
  std::size_t sync_every_records = 16;
};

/// One served episode: the unit of WAL appends and of replay-buffer pushes.
/// `shard` pins which ShardedReplayBuffer shard the episode lands in, so a
/// recovery replay rebuilds bit-identical shard contents regardless of which
/// worker thread originally served the request.
struct EpisodeRecord {
  std::uint32_t shard = 0;
  std::uint64_t request_id = 0;
  std::uint64_t policy_version = 0;  ///< Snapshot the episode was served on.
  std::uint32_t faults = 0;          ///< Contained faults during the rollout.
  std::vector<Transition> steps;
};

/// Binary payload (the checksummed frame body) for one record.
std::string encodeEpisodeRecord(const EpisodeRecord& record);
/// Inverse of encodeEpisodeRecord; raises FatalError on a malformed payload
/// (a frame whose checksum passed but whose body does not parse is
/// corruption, not a torn write).
EpisodeRecord decodeEpisodeRecord(std::string_view payload);

/// Append-only segment writer. Thread-compatibility: one writer at a time —
/// the ingest path serializes appends under its own mutex so WAL order
/// equals replay-buffer push order (the bit-exact recovery contract).
class TrajectoryWal {
 public:
  /// Opens a *fresh* segment numbered one past the highest existing segment
  /// in `config.dir` (creating the directory when missing).
  explicit TrajectoryWal(WalConfig config);
  ~TrajectoryWal();
  TrajectoryWal(const TrajectoryWal&) = delete;
  TrajectoryWal& operator=(const TrajectoryWal&) = delete;

  /// Frames and appends \p record; fsyncs when the batch interval is due;
  /// rotates segments when the size threshold is crossed. Raises IoError
  /// when the disk refuses (EIO/ENOSPC/failed sync): a write that failed
  /// partway leaves a torn frame, which append() repairs in place
  /// (truncating back to the last committed record) when the disk lets it —
  /// otherwise the writer is poisoned and every later append raises until
  /// a fresh TrajectoryWal re-runs the startup repair.
  void append(const EpisodeRecord& record);

  /// Forces an fsync of any unsynced appends. Raises IoError on failure.
  void sync();

  struct Stats {
    std::size_t records = 0;
    std::size_t bytes = 0;
    std::size_t segments_created = 0;
    std::size_t syncs = 0;
    /// Zero-byte segments from a killed predecessor unlinked at startup.
    std::size_t gc_removed_segments = 0;
    /// Torn-tail bytes truncated off the predecessor's last segment.
    std::size_t repaired_torn_bytes = 0;
    /// Total wall time spent inside append() (encode + write + any fsync /
    /// rotation it triggered) — append_us / records is the per-record
    /// durability overhead the serving path pays.
    double append_us = 0.0;
  };
  const Stats& stats() const { return stats_; }
  std::size_t currentSegmentIndex() const { return segment_index_; }

 private:
  void openSegment(std::size_t index);

  WalConfig config_;
  io::IoFile file_;
  std::size_t segment_index_ = 0;
  std::size_t segment_bytes_written_ = 0;
  std::size_t unsynced_records_ = 0;
  /// A failed append left a torn frame the disk refused to truncate away;
  /// appending past it would strand unparseable bytes mid-log.
  bool poisoned_ = false;
  Stats stats_;
};

/// Result of replaying a WAL directory.
struct WalReplay {
  std::vector<EpisodeRecord> episodes;  ///< Every intact record, log order.
  std::size_t segments_read = 0;
  std::size_t records_read = 0;
  bool torn_tail = false;     ///< The last segment ended mid-record.
  std::size_t torn_bytes = 0; ///< Bytes discarded at the torn tail.
};

/// Sorted segment file paths of \p dir (empty when the directory is missing).
std::vector<std::string> walSegmentFiles(const std::string& dir);

/// Replays every intact record of \p dir in log order. Tolerates a torn
/// final record (see file comment); raises FatalError on corruption earlier
/// in the log.
WalReplay replayWal(const std::string& dir);

}  // namespace posetrl
