#include "online/snapshot.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "support/error.h"
#include "support/hashing.h"
#include "support/io.h"

namespace posetrl {

std::size_t maskedArgmax(const std::vector<double>& q,
                         const std::vector<bool>* blocked) {
  POSETRL_CHECK(!q.empty(), "argmax of empty Q-vector");
  bool any_blocked = false;
  if (blocked != nullptr) {
    POSETRL_CHECK(blocked->size() == q.size(),
                  "mask width must match the Q-vector");
    for (bool b : *blocked) any_blocked |= b;
  }
  if (!any_blocked) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < q.size(); ++i) {
      if (q[i] > q[best]) best = i;
    }
    return best;
  }
  std::size_t best = q.size();
  for (std::size_t i = 0; i < q.size(); ++i) {
    if ((*blocked)[i]) continue;
    if (best == q.size() || q[i] > q[best]) best = i;
  }
  POSETRL_CHECK(best < q.size(), "all actions blocked");
  return best;
}

std::uint64_t hashMlpWeights(const Mlp& net) {
  std::ostringstream os;
  net.save(os);
  return fnv1a(os.str());
}

PolicySnapshot::PolicySnapshot(std::uint64_t version,
                               std::uint64_t parent_hash, Mlp net,
                               bool rollback)
    : version(version),
      hash(hashMlpWeights(net)),
      parent_hash(parent_hash),
      rollback(rollback),
      net(std::move(net)) {}

std::size_t PolicySnapshot::actGreedy(const std::vector<double>& state,
                                      const std::vector<bool>* blocked) const {
  return maskedArgmax(net.forward(state), blocked);
}

// --- SnapshotRegistry ------------------------------------------------------

SnapshotRegistry::SnapshotRegistry(std::size_t reader_slots)
    : slots_(reader_slots) {
  POSETRL_CHECK(reader_slots > 0, "registry needs at least one reader slot");
}

SnapshotRegistry::~SnapshotRegistry() {
  for (const Slot& slot : slots_) {
    POSETRL_CHECK(slot.state.load() == 0,
                  "SnapshotRegistry destroyed with an active pin");
  }
  delete current_.load();
  for (auto& [snap, epoch] : retired_) delete snap;
}

SnapshotRegistry::Pin& SnapshotRegistry::Pin::operator=(Pin&& other) noexcept {
  if (this != &other) {
    release();
    owner_ = other.owner_;
    slot_ = other.slot_;
    snap_ = other.snap_;
    other.owner_ = nullptr;
    other.snap_ = nullptr;
  }
  return *this;
}

void SnapshotRegistry::Pin::release() {
  if (owner_ != nullptr) owner_->unpin(slot_);
  owner_ = nullptr;
  snap_ = nullptr;
}

SnapshotRegistry::Pin SnapshotRegistry::pin() const {
  for (;;) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      std::uint64_t expected = 0;
      std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
      if (!slots_[i].state.compare_exchange_strong(
              expected, e + 1, std::memory_order_seq_cst)) {
        continue;  // slot busy, try the next one
      }
      // We own slot i, stamped with epoch e. A publish may have advanced the
      // epoch between the load and the stamp; restamp until the stamp is
      // provably current — then any pointer loaded below is either the
      // snapshot current at our stamped epoch or newer, and the reclaimer
      // (which only frees snapshots retired at epochs <= every active
      // stamp) cannot free it while we hold the slot.
      for (;;) {
        const std::uint64_t e2 = epoch_.load(std::memory_order_seq_cst);
        if (e2 == e) break;
        e = e2;
        slots_[i].state.store(e + 1, std::memory_order_seq_cst);
      }
      const PolicySnapshot* snap = current_.load(std::memory_order_seq_cst);
      if (snap == nullptr) {
        unpin(i);
        return Pin();
      }
      return Pin(this, i, snap);
    }
    // Every slot simultaneously held — rare (slots >> workers); yield and
    // retry rather than blocking on a lock.
    std::this_thread::yield();
  }
}

void SnapshotRegistry::unpin(std::size_t slot) const {
  slots_[slot].state.store(0, std::memory_order_seq_cst);
}

std::uint64_t SnapshotRegistry::publish(std::unique_ptr<PolicySnapshot> snap) {
  POSETRL_CHECK(snap != nullptr, "publish of a null snapshot");
  const auto t0 = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(retire_mu_);
  // Validate before taking ownership: a rejected snapshot must die with
  // the caller's unique_ptr, not leak out of the raw-pointer hand-off.
  POSETRL_CHECK(snap->version > currentVersion(),
                "snapshot versions must be strictly increasing");
  const PolicySnapshot* incoming = snap.release();
  // Swap first, then bump the epoch: a reader stamped at or past the new
  // epoch provably loaded the new pointer (or a successor), which is what
  // makes the reclamation rule below safe.
  const PolicySnapshot* outgoing =
      current_.exchange(incoming, std::memory_order_seq_cst);
  const std::uint64_t retire_epoch =
      epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  if (outgoing != nullptr) retired_.emplace_back(outgoing, retire_epoch);
  reclaimLocked();
  ++stats_.published;
  stats_.retired_pending = retired_.size();
  stats_.last_publish_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - t0)
          .count();
  return incoming->version;
}

void SnapshotRegistry::reclaimLocked() {
  // A retired snapshot is freed once every *active* reader slot carries an
  // epoch >= its retirement epoch: such readers pinned after the successor
  // was already published, so they cannot hold the retiree.
  std::uint64_t min_active = UINT64_MAX;
  for (const Slot& slot : slots_) {
    const std::uint64_t s = slot.state.load(std::memory_order_seq_cst);
    if (s != 0) min_active = std::min(min_active, s - 1);
  }
  auto keep = retired_.begin();
  for (auto it = retired_.begin(); it != retired_.end(); ++it) {
    if (it->second <= min_active) {
      delete it->first;
      ++stats_.reclaimed;
    } else {
      *keep++ = *it;
    }
  }
  retired_.erase(keep, retired_.end());
}

std::uint64_t SnapshotRegistry::currentVersion() const {
  const PolicySnapshot* snap = current_.load(std::memory_order_seq_cst);
  return snap != nullptr ? snap->version : 0;
}

SnapshotRegistry::Stats SnapshotRegistry::stats() const {
  std::lock_guard<std::mutex> lock(retire_mu_);
  return stats_;
}

// --- persistence -----------------------------------------------------------

namespace {

const char* kSnapshotFile = "snapshot-current.txt";
const char* kSnapshotPrevFile = "snapshot-prev.txt";

enum class ParseResult { Missing, Ok, Corrupt };

/// Parses one snapshot file, verifying every integrity field the format
/// version carries. Never raises — a corrupt generation must not prevent
/// the caller from trying the other one.
ParseResult parseSnapshotFile(const std::string& path, PersistedSnapshot* out) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return ParseResult::Missing;
  std::string header;
  if (!std::getline(is, header)) return ParseResult::Corrupt;
  std::istringstream hs(header);
  std::string tag, fmt;
  hs >> tag >> fmt;
  if (tag != "policy-snapshot") return ParseResult::Corrupt;
  int rollback = 0;
  if (fmt == "v1") {
    // Legacy: no checksums. Parse best-effort for upgrade compatibility.
    if (!(hs >> out->version >> out->hash >> out->parent_hash >> rollback)) {
      return ParseResult::Corrupt;
    }
    out->rollback = rollback != 0;
    std::ostringstream blob;
    blob << is.rdbuf();
    out->net_blob = blob.str();
    return out->net_blob.empty() ? ParseResult::Corrupt : ParseResult::Ok;
  }
  if (fmt != "v2") return ParseResult::Corrupt;
  std::uint64_t blob_len = 0, blob_fnv = 0, header_crc = 0;
  if (!(hs >> out->version >> out->hash >> out->parent_hash >> rollback >>
        blob_len >> blob_fnv >> header_crc)) {
    return ParseResult::Corrupt;
  }
  // The crc covers everything before itself: a flipped bit in any metadata
  // field is caught before that field is trusted.
  const std::size_t crc_start = header.rfind(' ');
  if (crc_start == std::string::npos ||
      fnv1a(std::string_view(header).substr(0, crc_start)) != header_crc) {
    return ParseResult::Corrupt;
  }
  out->rollback = rollback != 0;
  std::ostringstream blob;
  blob << is.rdbuf();
  out->net_blob = blob.str();
  if (out->net_blob.size() != blob_len || fnv1a(out->net_blob) != blob_fnv) {
    return ParseResult::Corrupt;
  }
  return ParseResult::Ok;
}

}  // namespace

void savePolicySnapshotFile(const std::string& dir,
                            const PolicySnapshot& snap) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) raiseError("cannot create snapshot directory " + dir);
  std::ostringstream body;
  snap.net.save(body);
  const std::string blob = body.str();
  std::ostringstream header;
  header << "policy-snapshot v2 " << snap.version << " " << snap.hash << " "
         << snap.parent_hash << " " << (snap.rollback ? 1 : 0) << " "
         << blob.size() << " " << fnv1a(blob);
  const std::uint64_t crc = fnv1a(header.str());
  const std::string current = dir + "/" + kSnapshotFile;
  const std::string prev = dir + "/" + kSnapshotPrevFile;
  // Rotate current → prev before publishing, so a crash at ANY point leaves
  // at least one loadable generation: before the rotation both files are the
  // old pair; between rotation and publish `prev` holds the old current
  // (the loader's fallback); after publish both generations are fresh.
  if (std::filesystem::exists(current)) io::renameFile(current, prev);
  io::writeFileAtomicDurable(current,
                             header.str() + " " + std::to_string(crc) + "\n" +
                                 blob);
}

bool loadPolicySnapshotFile(const std::string& dir, PersistedSnapshot* out) {
  const std::string current = dir + "/" + kSnapshotFile;
  const std::string prev = dir + "/" + kSnapshotPrevFile;
  const ParseResult cur = parseSnapshotFile(current, out);
  if (cur == ParseResult::Ok) {
    out->from_fallback = false;
    return true;
  }
  PersistedSnapshot fallback;
  const ParseResult prv = parseSnapshotFile(prev, &fallback);
  if (prv == ParseResult::Ok) {
    *out = std::move(fallback);
    out->from_fallback = true;
    return true;
  }
  if (cur == ParseResult::Missing && prv == ParseResult::Missing) return false;
  raiseError("no loadable policy snapshot generation in " + dir +
             " (current: " +
             (cur == ParseResult::Missing ? "missing" : "corrupt") +
             ", prev: " +
             (prv == ParseResult::Missing ? "missing" : "corrupt") + ")");
}

std::size_t gcSnapshotDir(const std::string& dir) {
  std::size_t removed = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      if (io::removeIfExists(entry.path().string())) ++removed;
    }
  }
  if (removed > 0) io::fsyncDir(dir);
  return removed;
}

}  // namespace posetrl
