#pragma once

/// \file snapshot.h
/// Versioned, immutable policy snapshots and the lock-free hot-swap registry
/// that serves them (DESIGN.md "Online learning and policy lifecycle").
///
/// A PolicySnapshot freezes one version of the policy network: the version
/// number, a content hash of the weights, the parent snapshot's hash (so the
/// promotion lineage is a verifiable chain), and a private copy of the Mlp.
/// Snapshots are immutable after construction — the whole point is that a
/// request can keep using one while the learner publishes successors.
///
/// SnapshotRegistry is the swap point. Readers pin() the current snapshot
/// (wait-free apart from slot contention: claim a reader slot, stamp the
/// global epoch, re-validate, load the pointer) and hold the returned RAII
/// Pin for as long as they use the snapshot — an in-flight request pins once
/// at admission and finishes on the snapshot it started with, no matter how
/// many promotions happen meanwhile. publish() swaps the current pointer,
/// bumps the epoch, and retires the predecessor; a retired snapshot is
/// reclaimed only once every active reader slot has stamped an epoch at or
/// past the retirement epoch (epoch-based reclamation — readers never take a
/// lock, are never blocked by the writer, and never observe a torn or freed
/// snapshot).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "rl/mlp.h"

namespace posetrl {

/// First-strictly-greatest argmax over \p q, skipping blocked actions when
/// \p blocked is non-null — exactly DoubleDqn::actGreedy's tie-breaking, so
/// snapshot-served and agent-served inference pick identical actions for
/// identical Q-values.
std::size_t maskedArgmax(const std::vector<double>& q,
                         const std::vector<bool>* blocked);

/// Stable content hash of a network's inference parameters (weights +
/// biases, not Adam state): snapshots with equal weights hash equally.
std::uint64_t hashMlpWeights(const Mlp& net);

/// One immutable published policy version.
struct PolicySnapshot {
  std::uint64_t version = 0;
  std::uint64_t hash = 0;         ///< hashMlpWeights(net).
  std::uint64_t parent_hash = 0;  ///< Hash of the predecessor (0 = root).
  bool rollback = false;          ///< Published by an automatic rollback.
  Mlp net;

  PolicySnapshot(std::uint64_t version, std::uint64_t parent_hash, Mlp net,
                 bool rollback = false);

  /// Greedy action under this snapshot (pure const, thread-safe).
  std::size_t actGreedy(const std::vector<double>& state,
                        const std::vector<bool>* blocked = nullptr) const;
};

/// Lock-free publication point for policy snapshots (see file comment).
class SnapshotRegistry {
 public:
  /// \p reader_slots bounds the number of *concurrent* pins (not threads —
  /// slots are claimed per pin and released on unpin).
  explicit SnapshotRegistry(std::size_t reader_slots = 64);
  ~SnapshotRegistry();
  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  /// RAII read guard. Movable; the pinned snapshot stays valid (never
  /// reclaimed, never mutated) until destruction. A default-constructed /
  /// empty Pin holds nothing.
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& other) noexcept { *this = std::move(other); }
    Pin& operator=(Pin&& other) noexcept;
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { release(); }

    const PolicySnapshot* get() const { return snap_; }
    const PolicySnapshot* operator->() const { return snap_; }
    const PolicySnapshot& operator*() const { return *snap_; }
    explicit operator bool() const { return snap_ != nullptr; }
    void release();

   private:
    friend class SnapshotRegistry;
    Pin(const SnapshotRegistry* owner, std::size_t slot,
        const PolicySnapshot* snap)
        : owner_(owner), slot_(slot), snap_(snap) {}

    const SnapshotRegistry* owner_ = nullptr;
    std::size_t slot_ = 0;
    const PolicySnapshot* snap_ = nullptr;
  };

  /// Pins the current snapshot (null Pin when nothing is published yet).
  /// Lock-free: spins only while every reader slot is simultaneously held.
  Pin pin() const;

  /// Publishes \p snap as the new current version and retires the
  /// predecessor. Versions must be strictly increasing. Returns the
  /// published version. Reclaims any retired snapshots that no reader can
  /// still hold. Thread-safe against concurrent pins and publishes.
  std::uint64_t publish(std::unique_ptr<PolicySnapshot> snap);

  /// Version of the current snapshot (0 when nothing is published).
  std::uint64_t currentVersion() const;

  struct Stats {
    std::size_t published = 0;
    std::size_t reclaimed = 0;
    std::size_t retired_pending = 0;  ///< Retired but not yet reclaimable.
    double last_publish_us = 0.0;     ///< Swap + reclaim latency.
  };
  Stats stats() const;

 private:
  struct alignas(64) Slot {
    /// 0 = free; otherwise epoch + 1 of the pin that holds it.
    std::atomic<std::uint64_t> state{0};
  };

  void unpin(std::size_t slot) const;
  /// Frees retired snapshots no active reader can reference. Caller holds
  /// retire_mu_.
  void reclaimLocked();

  mutable std::vector<Slot> slots_;
  std::atomic<const PolicySnapshot*> current_{nullptr};
  std::atomic<std::uint64_t> epoch_{0};

  mutable std::mutex retire_mu_;  ///< Publisher-side state below.
  std::vector<std::pair<const PolicySnapshot*, std::uint64_t>> retired_;
  Stats stats_;
};

// --- snapshot persistence --------------------------------------------------
// Promoted snapshots are persisted so a restarted service resumes on the
// last promoted policy. Two generations live in the snapshot directory:
// `snapshot-current.txt` (newest promoted version) and `snapshot-prev.txt`
// (its predecessor). A save rotates current → prev, then publishes the new
// file with write-tmp → fdatasync → rename → dir-fsync, so the directory
// never references a half-written snapshot and always holds at least one
// loadable generation — a crash or corruption of `current` falls back to
// `prev`.
//
// File format v2: one header line
//   policy-snapshot v2 <version> <hash> <parent_hash> <rollback>
//                      <blob_len> <blob_fnv> <header_crc>
// followed by the Mlp::save payload. `header_crc` is an fnv1a over the
// preceding header fields (a flipped bit in the metadata is caught before
// any field is trusted); `blob_len`/`blob_fnv` pin the payload's length and
// content (truncation at any byte offset and single-bit flips both fail
// verification instead of loading garbage weights). v1 files (no
// checksums) remain readable.

struct PersistedSnapshot {
  std::uint64_t version = 0;
  std::uint64_t hash = 0;
  std::uint64_t parent_hash = 0;
  bool rollback = false;
  bool from_fallback = false;  ///< Loaded from snapshot-prev.txt.
  std::string net_blob;  ///< Mlp::save payload.
};

/// Durably writes \p snap as the directory's current snapshot, rotating the
/// previous current to `snapshot-prev.txt` first. Raises IoError when the
/// disk refuses; the previous generation stays loadable in every failure
/// case.
void savePolicySnapshotFile(const std::string& dir,
                            const PolicySnapshot& snap);

/// Loads the persisted current snapshot, falling back to the previous
/// generation when `current` is missing or fails verification (sets
/// `out->from_fallback`). Returns false when no generation exists; raises
/// FatalError only when a snapshot file exists but no generation verifies.
bool loadPolicySnapshotFile(const std::string& dir, PersistedSnapshot* out);

/// Unlinks orphaned publication temporaries (`*.tmp`) a crashed save left
/// in \p dir. Returns the number removed. Safe to call on a missing
/// directory (returns 0).
std::size_t gcSnapshotDir(const std::string& dir);

}  // namespace posetrl
