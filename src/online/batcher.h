#pragma once

/// \file batcher.h
/// Micro-batched greedy inference for the serving layer: concurrent request
/// workers queue their (network, state, mask) triples and a single batcher
/// thread runs one Mlp::forwardBatch GEMM over each gathered batch instead
/// of N independent matVec chains — the PR-5 batch infrastructure, finally
/// on the serving path (ROADMAP "Online continuous learning").
///
/// Correctness contract: results are bit-identical to unbatched inference —
/// forwardBatch is bit-identical per row to forward(), and the masked
/// argmax replicates DoubleDqn::actGreedy's tie-breaking. Batches never mix
/// networks: entries are grouped by the caller-supplied net key (the policy
/// snapshot version), so a request pinned to snapshot v keeps inferring
/// under v mid-swap while newer requests batch under v+1.
///
/// Shutdown drains: stop() processes every queued entry before the thread
/// exits, so no in-flight request is ever dropped by a batcher shutdown.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "rl/mlp.h"

namespace posetrl {

struct BatcherConfig {
  /// Entries gathered per forwardBatch call, at most.
  std::size_t max_batch = 16;
  /// After the first entry arrives, how long the batcher waits for more
  /// before running a partial batch. Zero runs immediately (batches still
  /// form under bursts because the batcher drains whatever queued while the
  /// previous GEMM ran).
  std::chrono::microseconds max_wait{200};
};

/// Single-threaded micro-batcher over caller-owned networks. Callers must
/// keep the network alive until their actGreedy() call returns (the serving
/// layer holds the snapshot pin across the whole request, which covers it).
class InferenceBatcher {
 public:
  explicit InferenceBatcher(BatcherConfig config = {});
  ~InferenceBatcher();
  InferenceBatcher(const InferenceBatcher&) = delete;
  InferenceBatcher& operator=(const InferenceBatcher&) = delete;

  /// Spawns the batcher thread (no-op when already running).
  void start();
  /// Drains the queue and joins the thread. Idempotent.
  void stop();

  /// Blocking greedy inference: queues the entry, wakes the batcher, and
  /// returns argmax over unblocked actions of net.forward(state) — computed
  /// inside a batch GEMM shared with whatever else queued. \p net_key
  /// groups batchable entries (same key == same network). \p blocked may be
  /// null. Must not be called before start() or after stop().
  std::size_t actGreedy(const Mlp& net, std::uint64_t net_key,
                        const std::vector<double>& state,
                        const std::vector<bool>* blocked);

  struct Stats {
    std::size_t calls = 0;
    std::size_t batches = 0;        ///< forwardBatch invocations.
    std::size_t batched_calls = 0;  ///< Calls served in a batch of >= 2.
    std::size_t max_batch = 0;      ///< Largest batch observed.
  };
  Stats stats() const;

 private:
  struct Entry {
    const Mlp* net = nullptr;
    std::uint64_t key = 0;
    const std::vector<double>* state = nullptr;
    const std::vector<bool>* blocked = nullptr;
    std::size_t result = 0;
    bool done = false;
  };

  void batcherLoop();
  /// Pops one same-key batch off the queue. Caller holds mu_.
  std::vector<Entry*> takeBatchLocked();
  void runBatch(const std::vector<Entry*>& batch);

  BatcherConfig config_;
  mutable std::mutex mu_;
  std::condition_variable arrival_cv_;  ///< Wakes the batcher thread.
  std::condition_variable done_cv_;     ///< Wakes callers whose entry ran.
  std::deque<Entry*> queue_;
  bool running_ = false;
  bool stopping_ = false;
  std::thread thread_;
  Stats stats_;
};

}  // namespace posetrl
