#include "online/online_learner.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "ir/clone.h"
#include "ir/module.h"
#include "support/error.h"

namespace posetrl {

namespace {

std::string walDir(const OnlineLearnerConfig& config) {
  return config.dir + "/wal";
}

WalConfig makeWalConfig(const OnlineLearnerConfig& config) {
  WalConfig wal_cfg;
  wal_cfg.dir = walDir(config);
  wal_cfg.segment_bytes = config.wal_segment_bytes;
  wal_cfg.sync_every_records = config.wal_sync_every;
  return wal_cfg;
}

/// Copies the seed agent's inference weights into a fresh learner agent
/// (same architecture, fresh Adam state — online fine-tuning starts from
/// the trained policy, not from random initialization).
DoubleDqn makeLearnerAgent(const DoubleDqn& seed_agent) {
  DoubleDqn agent(seed_agent.config());
  std::stringstream model;
  seed_agent.saveModel(model);
  agent.loadModel(model);
  return agent;
}

}  // namespace

OnlineLearner::OnlineLearner(const DoubleDqn& seed_agent,
                             std::vector<SubSequence> actions,
                             OnlineLearnerConfig config)
    : actions_(std::move(actions)),
      config_(std::move(config)),
      agent_(makeLearnerAgent(seed_agent)),
      rng_(Rng::forStream(config_.seed, 1)),
      buffer_(config_.num_shards, config_.shard_capacity),
      watchdog_(config_.watchdog),
      last_good_net_(agent_.onlineNet()),
      armed_net_(agent_.onlineNet()) {
  POSETRL_CHECK(!config_.dir.empty(), "online learner needs a state dir");
  POSETRL_CHECK(config_.num_shards > 0, "online learner needs >= 1 shard");

  // --- crash recovery: WAL -> replay shards ---
  const WalReplay replay = replayWal(walDir(config_));
  for (const EpisodeRecord& rec : replay.episodes) {
    buffer_.pushEpisode(rec.shard % buffer_.numShards(), rec.steps);
    stats_.ingested_steps += rec.steps.size();
  }
  applied_episodes_ = replay.episodes.size();
  stats_.ingested_episodes = replay.episodes.size();
  stats_.recovered_records = replay.records_read;
  stats_.recovered_torn_tail = replay.torn_tail;

  try {
    wal_ = std::make_unique<TrajectoryWal>(makeWalConfig(config_));
  } catch (const FatalError&) {
    // A disk that refuses at startup must not keep the service down:
    // come up degraded and let ingest-time probes re-arm durability.
    ++stats_.wal_failures;
    enterDegradedLocked();
  }

  // --- crash recovery: persisted snapshot -> registry, else seed -> v1 ---
  stats_.startup_gc_removed = gcSnapshotDir(config_.dir);
  PersistedSnapshot persisted;
  bool loaded = false;
  try {
    loaded = loadPolicySnapshotFile(config_.dir, &persisted);
  } catch (const FatalError&) {
    // Snapshot files exist but no generation verifies. Total persisted-state
    // loss: reseed below rather than refuse to serve.
    stats_.snapshot_reseeded = true;
  }
  if (loaded) {
    try {
      ScopedFaultTrap trap;  // Mlp::load checks become FatalError.
      Mlp net = agent_.onlineNet();  // right architecture; weights replaced
      std::istringstream blob(persisted.net_blob);
      net.load(blob);
      auto snap = std::make_unique<PolicySnapshot>(
          persisted.version, persisted.parent_hash, std::move(net),
          persisted.rollback);
      if (snap->hash != persisted.hash) {
        raiseError("persisted snapshot weights do not match their hash");
      }
      stats_.snapshot_from_fallback = persisted.from_fallback;
      last_good_net_ = snap->net;
      last_good_version_ = snap->version;
      stats_.current_version = registry_.publish(std::move(snap));
    } catch (const FatalError&) {
      // The blob parsed as a file but not as a network (or hashes
      // disagree) — treat like total corruption and reseed.
      loaded = false;
      stats_.snapshot_reseeded = true;
    }
  }
  if (!loaded) {
    auto snap = std::make_unique<PolicySnapshot>(1, 0, agent_.onlineNet());
    try {
      savePolicySnapshotFile(config_.dir, *snap);
    } catch (const FatalError&) {
      ++stats_.snapshot_persist_failures;  // serve in-memory regardless
    }
    last_good_net_ = snap->net;
    last_good_version_ = 1;
    stats_.current_version = registry_.publish(std::move(snap));
  }
  stats_.last_good_version = last_good_version_;
}

OnlineLearner::~OnlineLearner() { stop(); }

void OnlineLearner::start() {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  if (running_) return;
  running_ = true;
  stopping_ = false;
  learner_ = std::thread([this] { learnerLoop(); });
}

void OnlineLearner::stop() {
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    if (!running_) return;
    stopping_ = true;
  }
  ingest_cv_.notify_all();
  learner_.join();
  std::lock_guard<std::mutex> lock(ingest_mu_);
  running_ = false;
  POSETRL_CHECK(pending_.empty(), "learner stopped with undrained episodes");
}

void OnlineLearner::drain() {
  std::size_t target = 0;
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    target = stats_.ingested_episodes;
  }
  std::unique_lock<std::mutex> lock(ingest_mu_);
  POSETRL_CHECK(running_, "drain() needs a running learner");
  drained_cv_.wait(lock,
                   [this, target] { return applied_episodes_ >= target; });
}

void OnlineLearner::ingest(EpisodeRecord record) {
  record.shard = static_cast<std::uint32_t>(record.shard %
                                            buffer_.numShards());
  std::lock_guard<std::mutex> lock(ingest_mu_);
  if (degraded_ && !probeDurabilityLocked()) {
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.ingest_dropped;
    return;
  }
  // Append-then-enqueue under one lock: WAL order is exactly the order the
  // learner pushes episodes into the shards, which is what makes a replay
  // of the WAL rebuild bit-identical shard contents. An episode the WAL
  // refused is dropped, NOT queued — queuing it would put an unlogged
  // episode in the shards and break that equality.
  try {
    wal_->append(record);
  } catch (const FatalError&) {
    enterDegradedLocked();
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.wal_failures;
    ++stats_.ingest_dropped;
    return;
  }
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.ingested_episodes;
    stats_.ingested_steps += record.steps.size();
  }
  pending_.push_back(std::move(record));
  ingest_cv_.notify_one();
}

void OnlineLearner::retireWalLocked() {
  if (wal_ == nullptr) return;
  const TrajectoryWal::Stats& s = wal_->stats();
  wal_stats_base_.records += s.records;
  wal_stats_base_.bytes += s.bytes;
  wal_stats_base_.segments_created += s.segments_created;
  wal_stats_base_.syncs += s.syncs;
  wal_stats_base_.gc_removed_segments += s.gc_removed_segments;
  wal_stats_base_.repaired_torn_bytes += s.repaired_torn_bytes;
  wal_stats_base_.append_us += s.append_us;
  wal_.reset();  // best-effort final sync; destructor never throws
}

void OnlineLearner::enterDegradedLocked() {
  retireWalLocked();
  degraded_ = true;
  probe_backoff_ =
      std::chrono::milliseconds(config_.durability_retry_initial_ms);
  next_probe_ = std::chrono::steady_clock::now() + probe_backoff_;
  std::lock_guard<std::mutex> slock(stats_mu_);
  stats_.durability_degraded = true;
}

bool OnlineLearner::probeDurabilityLocked() {
  const auto now = std::chrono::steady_clock::now();
  if (now < next_probe_) return false;
  try {
    // Rebuild the writer from scratch: its constructor garbage-collects
    // empty segments and truncates any torn tail the failed appends left,
    // so a successful probe re-arms onto a clean log.
    wal_ = std::make_unique<TrajectoryWal>(makeWalConfig(config_));
  } catch (const FatalError&) {
    probe_backoff_ = std::min(
        probe_backoff_ * 2,
        std::chrono::milliseconds(config_.durability_retry_max_ms));
    next_probe_ = now + probe_backoff_;
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.wal_failures;
    return false;
  }
  degraded_ = false;
  std::lock_guard<std::mutex> slock(stats_mu_);
  ++stats_.durability_rearms;
  stats_.durability_degraded = false;
  return true;
}

void OnlineLearner::observe(const ServeObservation& obs) {
  switch (watchdog_.observe(obs)) {
    case PromotionWatchdog::Verdict::None:
      return;
    case PromotionWatchdog::Verdict::Breach:
      rollbackToLastGood();
      return;
    case PromotionWatchdog::Verdict::Graduate: {
      std::lock_guard<std::mutex> lock(promote_mu_);
      last_good_net_ = armed_net_;
      last_good_version_ = armed_version_;
      std::lock_guard<std::mutex> slock(stats_mu_);
      ++stats_.graduations;
      stats_.last_good_version = last_good_version_;
      return;
    }
  }
}

void OnlineLearner::addHoldoutModule(const Module& program) {
  holdout_.push_back(cloneModule(program));
}

void OnlineLearner::noteRequestModule(const Module& program) {
  if (config_.shadow_capacity == 0) return;
  std::shared_ptr<const Module> clone = cloneModule(program);
  std::lock_guard<std::mutex> lock(shadow_mu_);
  shadow_.push_back(std::move(clone));
  while (shadow_.size() > config_.shadow_capacity) shadow_.pop_front();
}

std::uint64_t OnlineLearner::forcePromote(Mlp net) {
  std::lock_guard<std::mutex> lock(promote_mu_);
  return promoteLocked(std::move(net), /*rollback=*/false,
                       /*arm_watchdog=*/true);
}

std::uint64_t OnlineLearner::promoteLocked(Mlp net, bool rollback,
                                           bool arm_watchdog) {
  const std::uint64_t version = registry_.currentVersion() + 1;
  std::uint64_t parent_hash = 0;
  {
    const SnapshotRegistry::Pin incumbent = registry_.pin();
    if (incumbent) parent_hash = incumbent->hash;
  }
  auto snap = std::make_unique<PolicySnapshot>(version, parent_hash,
                                               std::move(net), rollback);
  if (arm_watchdog) {
    armed_net_ = snap->net;
    armed_version_ = version;
  }
  try {
    savePolicySnapshotFile(config_.dir, *snap);
  } catch (const FatalError&) {
    // Publish in memory anyway: serving continuity beats durability here.
    // A restart before the next successful save resumes from the last
    // snapshot that reached the disk — an older but trusted policy.
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.snapshot_persist_failures;
  }
  registry_.publish(std::move(snap));
  if (arm_watchdog) watchdog_.arm(version);
  std::lock_guard<std::mutex> slock(stats_mu_);
  if (rollback) {
    ++stats_.rollbacks;
  } else {
    ++stats_.promotions;
  }
  stats_.current_version = version;
  return version;
}

void OnlineLearner::rollbackToLastGood() {
  std::lock_guard<std::mutex> lock(promote_mu_);
  // The breach already disarmed the watchdog; the restored incumbent is
  // trusted (it graduated or seeded the service), so it is not re-judged —
  // that is what prevents breach -> rollback -> breach loops.
  promoteLocked(last_good_net_, /*rollback=*/true, /*arm_watchdog=*/false);
  std::lock_guard<std::mutex> slock(stats_mu_);
  stats_.last_good_version = last_good_version_;
}

void OnlineLearner::learnerLoop() {
  std::size_t since_attempt = 0;
  for (;;) {
    std::vector<EpisodeRecord> batch;
    {
      std::unique_lock<std::mutex> lock(ingest_mu_);
      ingest_cv_.wait(lock,
                      [this] { return stopping_ || !pending_.empty(); });
      while (!pending_.empty()) {
        batch.push_back(std::move(pending_.front()));
        pending_.pop_front();
      }
      if (batch.empty()) return;  // stopping and fully drained
    }
    for (EpisodeRecord& rec : batch) applyRecord(std::move(rec));
    {
      std::lock_guard<std::mutex> lock(ingest_mu_);
      applied_episodes_ += batch.size();
      drained_cv_.notify_all();
      if (stopping_) {
        // Drain-only while stopping: episodes reach the shards, but no
        // further training or promotion runs.
        if (pending_.empty()) return;
        continue;
      }
    }
    since_attempt += batch.size();
    if (config_.promote_every > 0 && since_attempt >= config_.promote_every) {
      since_attempt = 0;
      trainAndMaybePromote();
    }
  }
}

void OnlineLearner::applyRecord(EpisodeRecord record) {
  buffer_.pushEpisode(record.shard, std::move(record.steps));
}

void OnlineLearner::trainAndMaybePromote() {
  if (buffer_.size() < agent_.warmupThreshold()) return;
  for (std::size_t i = 0; i < config_.train_batches; ++i) {
    const std::vector<const Transition*> batch =
        buffer_.sample(agent_.config().batch_size, rng_);
    agent_.trainOnBatch(batch);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.trained_batches += config_.train_batches;
  }
  if (watchdog_.armed()) return;  // one candidate on trial at a time

  Mlp candidate = agent_.onlineNet();
  const SnapshotRegistry::Pin incumbent = registry_.pin();
  POSETRL_CHECK(incumbent, "no incumbent snapshot while promoting");

  std::vector<const Module*> holdout;
  for (const auto& m : holdout_) holdout.push_back(m.get());
  std::vector<std::shared_ptr<const Module>> shadow_refs;
  {
    std::lock_guard<std::mutex> lock(shadow_mu_);
    shadow_refs.assign(shadow_.begin(), shadow_.end());
  }
  std::vector<const Module*> shadow;
  for (const auto& m : shadow_refs) shadow.push_back(m.get());

  const CanaryReport report =
      runCanary(candidate, incumbent->net, holdout, shadow, actions_,
                config_.env, config_.canary);
  if (!report.accepted) {
    std::lock_guard<std::mutex> lock(promote_mu_);
    last_reject_reason_ = report.reason;
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.rejections;
    return;
  }
  std::lock_guard<std::mutex> lock(promote_mu_);
  promoteLocked(std::move(candidate), /*rollback=*/false,
                /*arm_watchdog=*/true);
}

OnlineStats OnlineLearner::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

std::string OnlineLearner::lastRejectReason() const {
  std::lock_guard<std::mutex> lock(promote_mu_);
  return last_reject_reason_;
}

TrajectoryWal::Stats OnlineLearner::walStats() const {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  TrajectoryWal::Stats total = wal_stats_base_;
  if (wal_ != nullptr) {
    const TrajectoryWal::Stats& s = wal_->stats();
    total.records += s.records;
    total.bytes += s.bytes;
    total.segments_created += s.segments_created;
    total.syncs += s.syncs;
    total.gc_removed_segments += s.gc_removed_segments;
    total.repaired_torn_bytes += s.repaired_torn_bytes;
    total.append_us += s.append_us;
  }
  return total;
}

}  // namespace posetrl
