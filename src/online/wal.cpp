#include "online/wal.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "support/error.h"
#include "support/hashing.h"
#include "support/io.h"

namespace posetrl {

namespace {

constexpr std::uint32_t kRecordMagic = 0x314c5750;  // "PWL1" little-endian
constexpr std::size_t kFrameHeaderBytes = 4 + 4 + 8;
constexpr std::size_t kMaxPayloadBytes = 64u << 20;

// --- little binary writer/reader over std::string ------------------------

template <typename T>
void putRaw(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

void putU32(std::string& out, std::uint32_t v) { putRaw(out, v); }
void putU64(std::string& out, std::uint64_t v) { putRaw(out, v); }
void putF64(std::string& out, double v) { putRaw(out, v); }

void putVec(std::string& out, const std::vector<double>& v) {
  putU32(out, static_cast<std::uint32_t>(v.size()));
  for (double x : v) putF64(out, x);
}

class PayloadReader {
 public:
  explicit PayloadReader(std::string_view data) : data_(data) {}

  template <typename T>
  T raw() {
    if (pos_ + sizeof(T) > data_.size()) {
      raiseError("WAL payload underrun while decoding an episode record");
    }
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::uint32_t u32() { return raw<std::uint32_t>(); }
  std::uint64_t u64() { return raw<std::uint64_t>(); }
  double f64() { return raw<double>(); }

  std::vector<double> vec() {
    const std::uint32_t n = u32();
    if (n > (1u << 24)) raiseError("implausible vector length in WAL record");
    std::vector<double> v(n);
    for (double& x : v) x = f64();
    return v;
  }

  bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

std::string segmentName(std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%06zu.log", index);
  return buf;
}

/// Parses the index out of a "wal-NNNNNN.log" basename; 0 when not a
/// segment file (segment numbering starts at 1).
std::size_t segmentIndexOf(const std::string& basename) {
  if (basename.size() != 14 || basename.rfind("wal-", 0) != 0 ||
      basename.substr(10) != ".log") {
    return 0;
  }
  std::size_t index = 0;
  for (std::size_t i = 4; i < 10; ++i) {
    const char c = basename[i];
    if (c < '0' || c > '9') return 0;
    index = index * 10 + static_cast<std::size_t>(c - '0');
  }
  return index;
}

/// Length of the longest prefix of \p data that is a sequence of intact
/// frames — everything past it is a torn tail (or corruption; the caller
/// decides which by context).
std::size_t validFramePrefixBytes(const std::string& data) {
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t remaining = data.size() - pos;
    if (remaining < kFrameHeaderBytes) break;
    std::uint32_t magic = 0, len = 0;
    std::uint64_t checksum = 0;
    std::memcpy(&magic, data.data() + pos, 4);
    std::memcpy(&len, data.data() + pos + 4, 4);
    std::memcpy(&checksum, data.data() + pos + 8, 8);
    if (magic != kRecordMagic || len > kMaxPayloadBytes ||
        remaining < kFrameHeaderBytes + len) {
      break;
    }
    const auto payload =
        std::string_view(data).substr(pos + kFrameHeaderBytes, len);
    if (fnv1a(payload) != checksum) break;
    pos += kFrameHeaderBytes + len;
  }
  return pos;
}

std::string readWholeFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) raiseError("cannot open WAL segment " + path);
  return std::string((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
}

}  // namespace

std::string encodeEpisodeRecord(const EpisodeRecord& record) {
  std::string out;
  putU32(out, record.shard);
  putU64(out, record.request_id);
  putU64(out, record.policy_version);
  putU32(out, record.faults);
  putU32(out, static_cast<std::uint32_t>(record.steps.size()));
  for (const Transition& t : record.steps) {
    putVec(out, t.state);
    putU64(out, static_cast<std::uint64_t>(t.action));
    putF64(out, t.reward);
    putVec(out, t.next_state);
    out.push_back(t.done ? 1 : 0);
    putF64(out, t.mc_return);
    out.push_back(t.use_mc ? 1 : 0);
  }
  return out;
}

EpisodeRecord decodeEpisodeRecord(std::string_view payload) {
  PayloadReader r(payload);
  EpisodeRecord rec;
  rec.shard = r.u32();
  rec.request_id = r.u64();
  rec.policy_version = r.u64();
  rec.faults = r.u32();
  const std::uint32_t steps = r.u32();
  if (steps > (1u << 22)) raiseError("implausible step count in WAL record");
  rec.steps.resize(steps);
  for (Transition& t : rec.steps) {
    t.state = r.vec();
    t.action = static_cast<std::size_t>(r.u64());
    t.reward = r.f64();
    t.next_state = r.vec();
    t.done = r.raw<char>() != 0;
    t.mc_return = r.f64();
    t.use_mc = r.raw<char>() != 0;
  }
  if (!r.exhausted()) raiseError("trailing bytes in WAL episode record");
  return rec;
}

// --- writer ----------------------------------------------------------------

TrajectoryWal::TrajectoryWal(WalConfig config) : config_(std::move(config)) {
  POSETRL_CHECK(!config_.dir.empty(), "WAL needs a directory");
  std::error_code ec;
  std::filesystem::create_directories(config_.dir, ec);
  if (ec) raiseError("cannot create WAL directory " + config_.dir);
  // Repair what a killed predecessor left behind, so the torn tail this
  // process may eventually leave is again the only one in the log:
  //   1. unlink zero-byte segments (a crash between segment creation and the
  //      first append, or a failed re-arm probe that never wrote),
  //   2. truncate a torn tail off the new highest segment.
  std::vector<std::string> segments = walSegmentFiles(config_.dir);
  bool removed_any = false;
  while (!segments.empty()) {
    std::error_code size_ec;
    const auto size = std::filesystem::file_size(segments.back(), size_ec);
    if (size_ec || size != 0) break;
    io::removeIfExists(segments.back());
    segments.pop_back();
    ++stats_.gc_removed_segments;
    removed_any = true;
  }
  if (removed_any) io::fsyncDir(config_.dir);
  if (!segments.empty()) {
    const std::string data = readWholeFile(segments.back());
    const std::size_t keep = validFramePrefixBytes(data);
    if (keep < data.size()) {
      io::truncateFile(segments.back(), keep);
      stats_.repaired_torn_bytes += data.size() - keep;
    }
  }
  // Never append to an existing segment: a pre-crash segment may end in a
  // torn frame the disk refused to repair, and replay only tolerates torn
  // frames at the logical end of the log. Starting a fresh segment keeps
  // that invariant across restarts.
  std::size_t highest = 0;
  for (const std::string& path : segments) {
    highest = std::max(
        highest, segmentIndexOf(std::filesystem::path(path).filename()));
  }
  openSegment(highest + 1);
}

TrajectoryWal::~TrajectoryWal() {
  // Best-effort flush: the destructor runs on shutdown and on unwind from a
  // durability failure, where a second throw would terminate the process.
  try {
    sync();
  } catch (const FatalError&) {
  }
  // IoFile's destructor releases the descriptor without throwing.
}

void TrajectoryWal::openSegment(std::size_t index) {
  const std::string path = config_.dir + "/" + segmentName(index);
  file_ = io::IoFile::createAppendExclusive(path);
  io::fsyncDir(config_.dir);  // make the new dirent durable
  segment_index_ = index;
  segment_bytes_written_ = 0;
  ++stats_.segments_created;
}

void TrajectoryWal::append(const EpisodeRecord& record) {
  POSETRL_CHECK(file_.isOpen(), "append on a closed WAL");
  POSETRL_CHECK(!poisoned_,
                "append on a poisoned WAL segment (unrepaired torn frame)");
  const auto t0 = std::chrono::steady_clock::now();
  const std::string payload = encodeEpisodeRecord(record);
  POSETRL_CHECK(payload.size() <= kMaxPayloadBytes, "WAL record too large");
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  putU32(frame, kRecordMagic);
  putU32(frame, static_cast<std::uint32_t>(payload.size()));
  putU64(frame, fnv1a(payload));
  frame.append(payload);
  try {
    // One logical write per frame: an interrupted append leaves a prefix of
    // the frame (a torn tail replay detects), never interleaved garbage.
    file_.writeAll(frame);
  } catch (const FatalError&) {
    // The frame may sit torn on disk. Appending past it would strand every
    // later record behind unparseable bytes — silent loss of acked data.
    // Truncate back to the last committed record; if even that fails, poison
    // the writer (a fresh TrajectoryWal repairs at startup).
    try {
      file_.truncate(segment_bytes_written_);
    } catch (const FatalError&) {
      poisoned_ = true;
    }
    throw;
  }
  segment_bytes_written_ += frame.size();
  stats_.bytes += frame.size();
  ++stats_.records;
  ++unsynced_records_;
  if (config_.sync_every_records > 0 &&
      unsynced_records_ >= config_.sync_every_records) {
    sync();
  }
  if (segment_bytes_written_ >= config_.segment_bytes) {
    // Atomic rotation: the outgoing segment is fully durable before the
    // next one accepts records.
    sync();
    file_.close();
    openSegment(segment_index_ + 1);
  }
  stats_.append_us += std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
}

void TrajectoryWal::sync() {
  if (!file_.isOpen() || unsynced_records_ == 0) return;
  file_.dataSync();
  unsynced_records_ = 0;
  ++stats_.syncs;
}

// --- replay ----------------------------------------------------------------

std::vector<std::string> walSegmentFiles(const std::string& dir) {
  std::vector<std::pair<std::size_t, std::string>> indexed;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::size_t index = segmentIndexOf(entry.path().filename());
    if (index > 0) indexed.emplace_back(index, entry.path().string());
  }
  std::sort(indexed.begin(), indexed.end());
  std::vector<std::string> out;
  out.reserve(indexed.size());
  for (auto& [index, path] : indexed) out.push_back(std::move(path));
  return out;
}

WalReplay replayWal(const std::string& dir) {
  WalReplay replay;
  const std::vector<std::string> segments = walSegmentFiles(dir);
  std::vector<std::string> contents(segments.size());
  for (std::size_t si = 0; si < segments.size(); ++si) {
    contents[si] = readWholeFile(segments[si]);
  }
  for (std::size_t si = 0; si < segments.size(); ++si) {
    // A torn frame is tolerable only at the *logical* end of the log: the
    // last segment, or one followed exclusively by empty segments — the
    // state a crash during rotation (segment created, nothing appended)
    // leaves behind. Intact records after a torn frame mean real corruption.
    bool at_logical_end = true;
    for (std::size_t sj = si + 1; sj < segments.size(); ++sj) {
      if (!contents[sj].empty()) {
        at_logical_end = false;
        break;
      }
    }
    const std::string& data = contents[si];
    ++replay.segments_read;
    std::size_t pos = 0;
    while (pos < data.size()) {
      const std::size_t remaining = data.size() - pos;
      bool intact = remaining >= kFrameHeaderBytes;
      std::uint32_t magic = 0, len = 0;
      std::uint64_t checksum = 0;
      if (intact) {
        std::memcpy(&magic, data.data() + pos, 4);
        std::memcpy(&len, data.data() + pos + 4, 4);
        std::memcpy(&checksum, data.data() + pos + 8, 8);
        intact = magic == kRecordMagic && len <= kMaxPayloadBytes &&
                 remaining >= kFrameHeaderBytes + len;
      }
      std::string_view payload;
      if (intact) {
        payload = std::string_view(data).substr(pos + kFrameHeaderBytes, len);
        intact = fnv1a(payload) == checksum;
      }
      if (!intact) {
        if (!at_logical_end) {
          raiseError("corrupt WAL frame mid-log in " + segments[si] +
                     " at offset " + std::to_string(pos));
        }
        replay.torn_tail = true;
        replay.torn_bytes = remaining;
        break;
      }
      replay.episodes.push_back(decodeEpisodeRecord(payload));
      ++replay.records_read;
      pos += kFrameHeaderBytes + len;
    }
  }
  return replay;
}

}  // namespace posetrl
