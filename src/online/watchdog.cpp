#include "online/watchdog.h"

#include "support/error.h"

namespace posetrl {

PromotionWatchdog::PromotionWatchdog(WatchdogConfig config)
    : config_(config) {
  POSETRL_CHECK(config_.window > 0, "watchdog window must be positive");
  POSETRL_CHECK(config_.min_observations > 0,
                "watchdog needs at least one observation before a verdict");
}

void PromotionWatchdog::arm(std::uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_ = true;
  armed_version_ = version;
  window_.clear();
}

void PromotionWatchdog::disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_ = false;
  window_.clear();
}

bool PromotionWatchdog::armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return armed_;
}

std::uint64_t PromotionWatchdog::armedVersion() const {
  std::lock_guard<std::mutex> lock(mu_);
  return armed_version_;
}

PromotionWatchdog::Verdict PromotionWatchdog::observe(
    const ServeObservation& obs) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_ || obs.policy_version != armed_version_) return Verdict::None;
  window_.push_back(obs);
  if (window_.size() > config_.window) window_.pop_front();
  ++stats_.observed;
  if (window_.size() < config_.min_observations) return Verdict::None;

  std::size_t degraded = 0, faults = 0, oz_violations = 0;
  for (const ServeObservation& o : window_) {
    degraded += o.degraded ? 1 : 0;
    faults += o.faults;
    oz_violations += o.oz_violation ? 1 : 0;
  }
  const double n = static_cast<double>(window_.size());
  const bool breach =
      oz_violations > config_.max_oz_violations ||
      static_cast<double>(degraded) / n > config_.max_degraded_fraction ||
      static_cast<double>(faults) / n > config_.max_fault_rate;
  if (breach) {
    ++stats_.breaches;
    armed_ = false;
    window_.clear();
    return Verdict::Breach;
  }
  if (window_.size() >= config_.graduate_observations) {
    ++stats_.graduations;
    armed_ = false;
    window_.clear();
    return Verdict::Graduate;
  }
  return Verdict::None;
}

PromotionWatchdog::Stats PromotionWatchdog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace posetrl
