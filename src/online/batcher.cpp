#include "online/batcher.h"

#include <algorithm>

#include "online/snapshot.h"
#include "support/error.h"

namespace posetrl {

InferenceBatcher::InferenceBatcher(BatcherConfig config) : config_(config) {
  POSETRL_CHECK(config_.max_batch > 0, "batcher needs max_batch >= 1");
}

InferenceBatcher::~InferenceBatcher() { stop(); }

void InferenceBatcher::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  stopping_ = false;
  thread_ = std::thread([this] { batcherLoop(); });
}

void InferenceBatcher::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stopping_ = true;
  }
  arrival_cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
  POSETRL_CHECK(queue_.empty(), "batcher stopped with undrained entries");
}

std::size_t InferenceBatcher::actGreedy(const Mlp& net, std::uint64_t net_key,
                                        const std::vector<double>& state,
                                        const std::vector<bool>* blocked) {
  Entry entry;
  entry.net = &net;
  entry.key = net_key;
  entry.state = &state;
  entry.blocked = blocked;
  std::unique_lock<std::mutex> lock(mu_);
  POSETRL_CHECK(running_ && !stopping_, "actGreedy on a stopped batcher");
  queue_.push_back(&entry);
  ++stats_.calls;
  arrival_cv_.notify_one();
  done_cv_.wait(lock, [&entry] { return entry.done; });
  return entry.result;
}

std::vector<InferenceBatcher::Entry*> InferenceBatcher::takeBatchLocked() {
  std::vector<Entry*> batch;
  if (queue_.empty()) return batch;
  const std::uint64_t key = queue_.front()->key;
  // Same-key entries may interleave with other keys in the queue during a
  // hot swap; collect matching ones anywhere in the deque (order within the
  // batch is irrelevant — each entry gets its own result row).
  for (auto it = queue_.begin();
       it != queue_.end() && batch.size() < config_.max_batch;) {
    if ((*it)->key == key) {
      batch.push_back(*it);
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  return batch;
}

void InferenceBatcher::runBatch(const std::vector<Entry*>& batch) {
  const Mlp& net = *batch.front()->net;
  Matrix x(batch.size(), net.inputSize());
  for (std::size_t r = 0; r < batch.size(); ++r) {
    const std::vector<double>& state = *batch[r]->state;
    POSETRL_CHECK(state.size() == net.inputSize(),
                  "batched state width must match the network input");
    std::copy(state.begin(), state.end(), x.data() + r * net.inputSize());
  }
  const Matrix q = net.forwardBatch(x);
  for (std::size_t r = 0; r < batch.size(); ++r) {
    std::vector<double> row(q.data() + r * q.cols(),
                            q.data() + (r + 1) * q.cols());
    batch[r]->result = maskedArgmax(row, batch[r]->blocked);
  }
}

void InferenceBatcher::batcherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    arrival_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping and fully drained
    if (!stopping_ && queue_.size() < config_.max_batch &&
        config_.max_wait.count() > 0) {
      // Linger briefly for batch-mates. Waking on every arrival would
      // restart the clock; a single bounded wait keeps tail latency flat.
      arrival_cv_.wait_for(lock, config_.max_wait, [this] {
        return stopping_ || queue_.size() >= config_.max_batch;
      });
    }
    const std::vector<Entry*> batch = takeBatchLocked();
    if (batch.empty()) continue;
    ++stats_.batches;
    stats_.max_batch = std::max(stats_.max_batch, batch.size());
    if (batch.size() >= 2) stats_.batched_calls += batch.size();
    lock.unlock();
    runBatch(batch);
    lock.lock();
    for (Entry* entry : batch) entry->done = true;
    done_cv_.notify_all();
  }
}

InferenceBatcher::Stats InferenceBatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace posetrl
