#pragma once

/// \file instrumentation.h
/// Per-pass instrumentation for pass pipelines. Threaded through
/// runPassSequence (and from there the RL environment), it runs any
/// combination of {structural verify, lint, miscompile oracle} after every
/// pass and attributes each failure to the pass that introduced it — turning
/// "this 60-pass sequence broke the program" into "pass 37, -loop-unswitch,
/// diverged on seed 7".

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/analysis_manager.h"
#include "analysis/fast_verifier.h"
#include "lint/diagnostic.h"
#include "lint/oracle.h"

namespace posetrl {

class Module;
class Pass;

/// Which checks run after each pass.
struct InstrumentOptions {
  bool verify = true;   ///< Structural verifier (ir/verifier.h).
  /// Use the incremental fast verifier (analysis/fast_verifier.h) for the
  /// verify stage instead of the full O(n^2) one. Same check coverage;
  /// unchanged functions are skipped via content hashes.
  bool fast_verify = true;
  /// Diff each pass's declared preserved analyses (Pass::preserved) against
  /// the observed IR delta and fail the pass on a broken promise. Needs the
  /// beforePass/afterPass(Pass&,...) entry points; the name-only afterPass
  /// overload cannot attribute contracts and skips this stage.
  bool contracts = false;
  bool lint = false;    ///< Semantic lint checkers (lint/lint.h).
  bool oracle = false;  ///< Differential behaviour oracle (lint/oracle.h).
  /// Lint findings at or above this severity count as failures (milder ones
  /// are still recorded as attributed diagnostics).
  LintSeverity lint_failure_threshold = LintSeverity::Error;
  /// Abort the process on the first failure (fatalError with the offending
  /// pass name) instead of recording and continuing.
  bool abort_on_failure = false;
  /// Externally owned fast verifier to use instead of this instrumentation's
  /// private one. Lets an owner with a longer lifetime (PhaseOrderEnv) keep
  /// the clean-hash skip cache warm across per-action instrumentation
  /// instances; the owner must clearCache() whenever the module object is
  /// replaced (reset, rollback).
  FastVerifier* shared_fast_verifier = nullptr;
  /// Keep an armed boundary snapshot across beginSequence instead of
  /// disarming it. Only safe when the caller guarantees the module is not
  /// mutated between instrumented sequences (the environment's step loop
  /// does: between-action work is read-only and every module swap runs
  /// invalidateAll, which disarms).
  bool trust_armed_boundary = false;
  OracleOptions oracle_options;
};

/// One check failure pinned to the pass that caused it.
struct PassFailure {
  std::size_t step = 0;  ///< 1-based position in the pass sequence.
  std::string pass;      ///< Name of the offending pass.
  std::string stage;     ///< "verify", "lint" or "oracle".
  std::string detail;

  std::string str() const;
};

/// A lint finding first observed after a specific pass.
struct AttributedDiagnostic {
  std::size_t step = 0;
  std::string pass;
  LintDiagnostic diagnostic;
};

/// Runs configured checks after every pass of a sequence and collects
/// pass-attributed failures. One instance covers one sequence run; call
/// beginSequence again to reuse it.
class PassInstrumentation {
 public:
  explicit PassInstrumentation(InstrumentOptions options = {});

  const InstrumentOptions& options() const { return options_; }

  /// Snapshots \p m's pre-sequence state: lint baseline (so only *new*
  /// findings are attributed) and oracle behaviour baseline.
  void beginSequence(Module& m);

  /// Records the pass-boundary fingerprint snapshot for the contract
  /// checker. Called by runPasses right before each pass runs.
  void beforePass(const Pass& pass, Module& m);

  /// Runs the configured checks on \p m, attributing anything new to
  /// \p pass; \p reported_changed is the pass's own run() return value
  /// (a changed=false lie is a contract violation).
  void afterPass(const Pass& pass, Module& m, bool reported_changed);

  /// Name-only variant for callers without a Pass object; runs every stage
  /// except the contract checker.
  void afterPass(std::string_view pass_name, Module& m);

  std::size_t stepsRun() const { return step_; }
  bool clean() const { return failures_.empty(); }
  const std::vector<PassFailure>& failures() const { return failures_; }
  const std::vector<AttributedDiagnostic>& attributedDiagnostics() const {
    return attributed_;
  }

  /// Aligned table of failures and attributed diagnostics.
  std::string toText() const;
  /// {"steps": N, "failures": [...], "diagnostics": [...]}.
  std::string toJson() const;

  /// The analysis manager the verify/contract stages use: the ambient
  /// scope-installed one when a pipeline owner (e.g. PhaseOrderEnv)
  /// provides it, else a private fallback.
  AnalysisManager& manager() { return AnalysisManager::currentOr(local_am_); }
  const FastVerifier& fastVerifier() const {
    return options_.shared_fast_verifier != nullptr
               ? *options_.shared_fast_verifier
               : fast_verifier_;
  }

 private:
  void runChecks(std::string_view pass_name, Module& m, const Pass* pass,
                 bool reported_changed);
  FastVerifier& activeFastVerifier() {
    return options_.shared_fast_verifier != nullptr
               ? *options_.shared_fast_verifier
               : fast_verifier_;
  }

  InstrumentOptions options_;
  MiscompileOracle oracle_;
  LintReport last_lint_;
  std::size_t step_ = 0;
  std::vector<PassFailure> failures_;
  std::vector<AttributedDiagnostic> attributed_;
  AnalysisManager local_am_;
  FastVerifier fast_verifier_;
};

}  // namespace posetrl
