#pragma once

/// \file instrumentation.h
/// Per-pass instrumentation for pass pipelines. Threaded through
/// runPassSequence (and from there the RL environment), it runs any
/// combination of {structural verify, lint, miscompile oracle} after every
/// pass and attributes each failure to the pass that introduced it — turning
/// "this 60-pass sequence broke the program" into "pass 37, -loop-unswitch,
/// diverged on seed 7".

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "lint/diagnostic.h"
#include "lint/oracle.h"

namespace posetrl {

class Module;

/// Which checks run after each pass.
struct InstrumentOptions {
  bool verify = true;   ///< Structural verifier (ir/verifier.h).
  bool lint = false;    ///< Semantic lint checkers (lint/lint.h).
  bool oracle = false;  ///< Differential behaviour oracle (lint/oracle.h).
  /// Lint findings at or above this severity count as failures (milder ones
  /// are still recorded as attributed diagnostics).
  LintSeverity lint_failure_threshold = LintSeverity::Error;
  /// Abort the process on the first failure (fatalError with the offending
  /// pass name) instead of recording and continuing.
  bool abort_on_failure = false;
  OracleOptions oracle_options;
};

/// One check failure pinned to the pass that caused it.
struct PassFailure {
  std::size_t step = 0;  ///< 1-based position in the pass sequence.
  std::string pass;      ///< Name of the offending pass.
  std::string stage;     ///< "verify", "lint" or "oracle".
  std::string detail;

  std::string str() const;
};

/// A lint finding first observed after a specific pass.
struct AttributedDiagnostic {
  std::size_t step = 0;
  std::string pass;
  LintDiagnostic diagnostic;
};

/// Runs configured checks after every pass of a sequence and collects
/// pass-attributed failures. One instance covers one sequence run; call
/// beginSequence again to reuse it.
class PassInstrumentation {
 public:
  explicit PassInstrumentation(InstrumentOptions options = {});

  const InstrumentOptions& options() const { return options_; }

  /// Snapshots \p m's pre-sequence state: lint baseline (so only *new*
  /// findings are attributed) and oracle behaviour baseline.
  void beginSequence(Module& m);

  /// Runs the configured checks on \p m, attributing anything new to
  /// \p pass_name. Called by runPassSequence after every pass.
  void afterPass(std::string_view pass_name, Module& m);

  std::size_t stepsRun() const { return step_; }
  bool clean() const { return failures_.empty(); }
  const std::vector<PassFailure>& failures() const { return failures_; }
  const std::vector<AttributedDiagnostic>& attributedDiagnostics() const {
    return attributed_;
  }

  /// Aligned table of failures and attributed diagnostics.
  std::string toText() const;
  /// {"steps": N, "failures": [...], "diagnostics": [...]}.
  std::string toJson() const;

 private:
  InstrumentOptions options_;
  MiscompileOracle oracle_;
  LintReport last_lint_;
  std::size_t step_ = 0;
  std::vector<PassFailure> failures_;
  std::vector<AttributedDiagnostic> attributed_;
};

}  // namespace posetrl
