#include "lint/oracle.h"

#include <sstream>

#include "ir/module.h"

namespace posetrl {

std::string OracleDivergence::str() const {
  std::ostringstream os;
  os << "[seed " << input_seed << "] " << kind << ": " << detail;
  return os.str();
}

std::string OracleVerdict::message() const {
  std::string out;
  for (const auto& d : divergences) {
    out += d.str();
    out += "\n";
  }
  return out;
}

MiscompileOracle::MiscompileOracle(OracleOptions options)
    : options_(std::move(options)) {}

ExecResult MiscompileOracle::runOne(Module& m, std::uint64_t seed) const {
  ExecOptions opts;
  opts.entry = options_.entry;
  opts.input_seed = seed;
  opts.max_steps = options_.max_steps;
  opts.arch = options_.arch;
  return runModule(m, opts);
}

void MiscompileOracle::capture(Module& m) {
  baseline_.clear();
  for (std::uint64_t seed : options_.input_seeds) {
    baseline_.push_back(runOne(m, seed));
  }
}

namespace {

bool isFuelTrap(const ExecResult& r) {
  return !r.ok && r.trap.find("fuel") != std::string::npos;
}

/// Index of the first differing trace entry, or the shorter length.
std::size_t firstTraceDelta(const std::vector<std::int64_t>& a,
                            const std::vector<std::int64_t>& b) {
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return i;
  }
  return n;
}

}  // namespace

OracleVerdict MiscompileOracle::compare(Module& m) const {
  OracleVerdict verdict;
  for (std::size_t i = 0; i < options_.input_seeds.size(); ++i) {
    const std::uint64_t seed = options_.input_seeds[i];
    const ExecResult& before = baseline_.at(i);
    const ExecResult after = runOne(m, seed);

    // Fuel exhaustion on either side says nothing about semantics (the
    // transform may just have changed the instruction count).
    if (isFuelTrap(before) || isFuelTrap(after)) {
      verdict.inconclusive_seeds.push_back(seed);
      continue;
    }

    OracleDivergence d;
    d.input_seed = seed;
    if (before.ok != after.ok) {
      d.kind = "trap-state";
      d.detail = before.ok
                     ? "baseline ran ok, candidate trapped: " + after.trap
                     : "baseline trapped (" + before.trap +
                           "), candidate ran ok";
      verdict.divergences.push_back(std::move(d));
      continue;
    }
    if (!before.ok) {
      // Both trapped: the trap kind is observable (e.g. a transform must not
      // turn a division-by-zero trap into an out-of-bounds trap).
      if (before.trap != after.trap) {
        d.kind = "trap-reason";
        d.detail = "baseline: " + before.trap + " vs candidate: " + after.trap;
        verdict.divergences.push_back(std::move(d));
      }
      continue;
    }
    if (before.has_return != after.has_return ||
        before.return_value != after.return_value) {
      d.kind = "return-value";
      std::ostringstream os;
      os << "baseline returned " << before.return_value << ", candidate "
         << after.return_value;
      d.detail = os.str();
      verdict.divergences.push_back(std::move(d));
      continue;
    }
    if (before.observed != after.observed) {
      d.kind = "side-effects";
      const std::size_t at =
          firstTraceDelta(before.effect_trace, after.effect_trace);
      std::ostringstream os;
      os << "side-effect traces diverge";
      if (at < before.effect_trace.size() && at < after.effect_trace.size()) {
        os << " at observation " << at << " (baseline "
           << before.effect_trace[at] << ", candidate "
           << after.effect_trace[at] << ")";
      } else if (before.effect_trace.size() != after.effect_trace.size()) {
        os << " in length (baseline " << before.effect_trace.size()
           << ", candidate " << after.effect_trace.size() << ")";
      } else {
        os << " beyond the traced prefix";
      }
      d.detail = os.str();
      verdict.divergences.push_back(std::move(d));
    }
  }
  return verdict;
}

OracleVerdict MiscompileOracle::diff(Module& before, Module& after,
                                     OracleOptions options) {
  MiscompileOracle oracle(std::move(options));
  oracle.capture(before);
  return oracle.compare(after);
}

}  // namespace posetrl
