#pragma once

/// \file lint.h
/// Pluggable semantic checkers over MiniIR. Where the structural verifier
/// (ir/verifier.h) proves the IR is *well formed*, the lint checkers flag IR
/// that is well formed but *suspicious* — the typical residue of a buggy or
/// half-finished transform in an RL-explored pass ordering: uses of undef,
/// unreachable blocks, dead internal functions, stores into constant
/// globals, call/callee signature drift, and constant GEP indices that are
/// provably out of bounds.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lint/diagnostic.h"

namespace posetrl {

class Module;

/// One pluggable lint rule.
class LintChecker {
 public:
  virtual ~LintChecker() = default;

  /// Stable checker id, e.g. "undef-use".
  virtual std::string_view name() const = 0;

  /// Appends findings on \p m to \p report.
  virtual void check(const Module& m, LintReport& report) const = 0;
};

/// Fresh instances of every registered checker.
std::vector<std::unique_ptr<LintChecker>> createAllLintCheckers();

/// Ids of all registered checkers.
std::vector<std::string> lintCheckerNames();

/// Instance of the checker named \p name (nullptr for unknown names).
std::unique_ptr<LintChecker> createLintChecker(std::string_view name);

/// Runs every registered checker over \p m.
LintReport runLint(const Module& m);

}  // namespace posetrl
