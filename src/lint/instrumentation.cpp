#include "lint/instrumentation.h"

#include <sstream>

#include "ir/module.h"
#include "ir/verifier.h"
#include "lint/lint.h"
#include "passes/pass.h"
#include "support/error.h"
#include "support/table.h"

namespace posetrl {

std::string PassFailure::str() const {
  std::ostringstream os;
  os << "step " << step << " -" << pass << " [" << stage << "]: " << detail;
  return os.str();
}

PassInstrumentation::PassInstrumentation(InstrumentOptions options)
    : options_(std::move(options)), oracle_(options_.oracle_options) {}

void PassInstrumentation::beginSequence(Module& m) {
  step_ = 0;
  failures_.clear();
  attributed_.clear();
  last_lint_ = LintReport{};
  // A snapshot re-armed by a previous sequence's reconcile may describe a
  // different module (or a since-mutated one); force the first beforePass
  // of this sequence to rehash from the actual state. Owners that guarantee
  // no mutation between sequences (the environment's step loop) opt out and
  // keep the snapshot warm across actions.
  if (options_.contracts && !options_.trust_armed_boundary)
    manager().disarmBoundary();
  if (options_.lint) last_lint_ = runLint(m);
  if (options_.oracle) oracle_.capture(m);
}

void PassInstrumentation::beforePass(const Pass& pass, Module& m) {
  (void)pass;
  if (options_.contracts) manager().recordBoundary(m);
}

void PassInstrumentation::afterPass(const Pass& pass, Module& m,
                                    bool reported_changed) {
  runChecks(pass.name(), m, &pass, reported_changed);
}

void PassInstrumentation::afterPass(std::string_view pass_name, Module& m) {
  runChecks(pass_name, m, nullptr, /*reported_changed=*/true);
}

void PassInstrumentation::runChecks(std::string_view pass_name, Module& m,
                                    const Pass* pass_obj,
                                    bool reported_changed) {
  ++step_;
  // No pass runs for the duration of the checks, so each function needs at
  // most one hash validation across all stages (the verifier's fused walk
  // covers the analysis queries and the contract reconcile).
  AnalysisFreezeScope freeze(manager());
  const std::string pass(pass_name);
  const auto fail = [&](const char* stage, std::string detail) {
    PassFailure f;
    f.step = step_;
    f.pass = pass;
    f.stage = stage;
    f.detail = std::move(detail);
    POSETRL_CHECK(!options_.abort_on_failure, "pass instrumentation: ",
                  f.str());
    failures_.push_back(std::move(f));
  };

  if (options_.verify) {
    const VerifyResult r = options_.fast_verify
                               ? activeFastVerifier().verify(m, manager())
                               : verifyModule(m);
    if (!r.ok()) {
      fail("verify", r.message());
      // Structurally broken IR: linting it would double-report the damage
      // and interpreting it is unsafe, so stop checking this step here.
      // The skipped reconcile leaves the pre-pass snapshot armed; drop it
      // so a continued sequence rehashes instead of misattributing this
      // pass's damage to the next one.
      if (options_.contracts) manager().disarmBoundary();
      return;
    }
  }

  if (options_.contracts) {
    if (pass_obj != nullptr) {
      // The fast-verify stage just hash-validated every defined function's
      // cache entry, so the reconcile can trust those fingerprints instead
      // of walking the module a second time.
      const bool trust = options_.verify && options_.fast_verify;
      const BoundaryReport report = manager().reconcileBoundary(
          m, pass_obj->preserved(), reported_changed, trust);
      for (const ContractViolation& v : report.violations)
        fail("contract", v.detail);
    } else {
      // No pass object means no declarations to reconcile; disarm so the
      // next boundary snapshots the actual (possibly mutated) state.
      manager().disarmBoundary();
    }
  }

  if (options_.lint) {
    LintReport now = runLint(m);
    for (LintDiagnostic& d : now.newSince(last_lint_)) {
      if (static_cast<int>(d.severity) >=
          static_cast<int>(options_.lint_failure_threshold)) {
        fail("lint", d.str());
      }
      attributed_.push_back({step_, pass, std::move(d)});
    }
    last_lint_ = std::move(now);
  }

  if (options_.oracle) {
    const OracleVerdict verdict = oracle_.compare(m);
    if (!verdict.equivalent()) {
      fail("oracle", verdict.message());
      // Re-baseline on the diverged behaviour so each later pass is judged
      // against its own predecessor, not the long-lost original — one
      // miscompile must not smear across the rest of the sequence.
      oracle_.capture(m);
    }
  }
}

std::string PassInstrumentation::toText() const {
  std::ostringstream os;
  os << "instrumented " << step_ << " passes: " << failures_.size()
     << " failure(s), " << attributed_.size()
     << " attributed lint finding(s)\n";
  if (!failures_.empty()) {
    TextTable table;
    table.addRow({"step", "pass", "stage", "detail"});
    for (const auto& f : failures_) {
      // First line only; multi-line verifier output stays in toJson().
      std::string first = f.detail.substr(0, f.detail.find('\n'));
      table.addRow({std::to_string(f.step), f.pass, f.stage, first});
    }
    os << table.render();
  }
  if (!attributed_.empty()) {
    TextTable table;
    table.addRow({"step", "pass", "checker", "severity", "message"});
    for (const auto& a : attributed_) {
      table.addRow({std::to_string(a.step), a.pass, a.diagnostic.checker,
                    lintSeverityName(a.diagnostic.severity),
                    a.diagnostic.message});
    }
    os << table.render();
  }
  return os.str();
}

std::string PassInstrumentation::toJson() const {
  std::ostringstream os;
  os << "{\"steps\":" << step_ << ",\"failures\":[";
  for (std::size_t i = 0; i < failures_.size(); ++i) {
    const PassFailure& f = failures_[i];
    if (i > 0) os << ",";
    os << "{\"step\":" << f.step << ",\"pass\":\"" << jsonEscape(f.pass)
       << "\",\"stage\":\"" << jsonEscape(f.stage) << "\",\"detail\":\""
       << jsonEscape(f.detail) << "\"}";
  }
  os << "],\"diagnostics\":[";
  for (std::size_t i = 0; i < attributed_.size(); ++i) {
    const AttributedDiagnostic& a = attributed_[i];
    if (i > 0) os << ",";
    os << "{\"step\":" << a.step << ",\"pass\":\"" << jsonEscape(a.pass)
       << "\",\"finding\":";
    LintReport one;
    one.diagnostics.push_back(a.diagnostic);
    const std::string arr = one.toJson();
    // toJson renders an array; embed the single element.
    os << arr.substr(1, arr.size() - 2) << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace posetrl
