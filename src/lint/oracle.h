#pragma once

/// \file oracle.h
/// Differential miscompile oracle. The structural verifier and the lint
/// checkers judge the IR's *shape*; the oracle judges its *behaviour*: it
/// snapshots a module's observable behaviour (return value, trap state,
/// ordered side-effect trace) on a set of deterministic generated inputs,
/// and flags any divergence after a transformation — the ground truth for
/// "this pass miscompiled the program".

#include <cstdint>
#include <string>
#include <vector>

#include "interp/interpreter.h"

namespace posetrl {

class Module;

/// Knobs for one oracle instance.
struct OracleOptions {
  /// pr.input seeds to execute under; more seeds = more behaviour covered.
  std::vector<std::uint64_t> input_seeds = {1, 7, 1337};
  std::uint64_t max_steps = 2'000'000;  ///< Fuel per execution.
  std::string entry = "main";
  TargetArch arch = TargetArch::X86_64;
};

/// One observable-behaviour difference between baseline and candidate.
struct OracleDivergence {
  std::uint64_t input_seed = 0;
  std::string kind;    ///< "trap-state", "trap-reason", "return-value",
                       ///< "side-effects".
  std::string detail;  ///< Human explanation with both sides' values.

  std::string str() const;
};

/// Outcome of one differential comparison.
struct OracleVerdict {
  std::vector<OracleDivergence> divergences;
  /// Seeds skipped because either side exhausted its fuel (inconclusive).
  std::vector<std::uint64_t> inconclusive_seeds;

  bool equivalent() const { return divergences.empty(); }
  /// All divergences joined with newlines (empty when equivalent).
  std::string message() const;
};

/// Captures a reference behaviour and compares candidates against it.
class MiscompileOracle {
 public:
  explicit MiscompileOracle(OracleOptions options = {});

  /// Records \p m's behaviour on every configured input seed as the
  /// baseline for subsequent compare() calls.
  void capture(Module& m);
  bool hasBaseline() const { return !baseline_.empty(); }

  /// Compares \p m's behaviour against the captured baseline.
  OracleVerdict compare(Module& m) const;

  /// One-shot convenience: capture \p before, compare \p after.
  static OracleVerdict diff(Module& before, Module& after,
                            OracleOptions options = {});

  const OracleOptions& options() const { return options_; }

 private:
  ExecResult runOne(Module& m, std::uint64_t seed) const;

  OracleOptions options_;
  std::vector<ExecResult> baseline_;  ///< One entry per input seed.
};

}  // namespace posetrl
