#pragma once

/// \file diagnostic.h
/// Diagnostic model of the lint subsystem (see DESIGN.md "Correctness
/// tooling"). A LintDiagnostic pins one finding to a checker and an IR
/// location; a LintReport aggregates them and renders machine-readable JSON
/// or a human-readable table.

#include <cstddef>
#include <string>
#include <vector>

namespace posetrl {

/// How bad a lint finding is.
enum class LintSeverity {
  Note,     ///< Expected mid-pipeline states (e.g. undef phi inputs).
  Warning,  ///< Suspicious but legal IR (dead code, unreachable blocks).
  Error,    ///< Almost certainly a pass bug (e.g. store to a const global).
};

/// Spelling used in reports ("note" / "warning" / "error").
const char* lintSeverityName(LintSeverity s);

/// One finding of one checker, located as precisely as the checker can.
struct LintDiagnostic {
  std::string checker;      ///< Checker id, e.g. "undef-use".
  LintSeverity severity = LintSeverity::Warning;
  std::string function;     ///< Enclosing function name ("" = module level).
  std::string block;        ///< Enclosing block label ("" when n/a).
  std::string instruction;  ///< Offending instruction text ("" when n/a).
  std::string message;      ///< Human explanation of the finding.

  /// Stable identity used to de-duplicate findings across pipeline stages
  /// (same checker + location + message).
  std::string key() const;
  /// "checker severity @function(block): message" one-liner.
  std::string str() const;
};

/// All findings of one lint run.
struct LintReport {
  std::vector<LintDiagnostic> diagnostics;

  bool clean() const { return diagnostics.empty(); }
  std::size_t count(LintSeverity s) const;
  bool hasErrors() const { return count(LintSeverity::Error) > 0; }

  void add(LintDiagnostic d) { diagnostics.push_back(std::move(d)); }

  /// Findings present here but absent from \p baseline (keyed by
  /// LintDiagnostic::key) — the heart of per-pass attribution.
  std::vector<LintDiagnostic> newSince(const LintReport& baseline) const;

  /// Aligned table (checker | severity | location | message).
  std::string toText() const;
  /// JSON array of finding objects.
  std::string toJson() const;
};

/// Escapes \p text for inclusion inside a JSON string literal.
std::string jsonEscape(const std::string& text);

}  // namespace posetrl
