#include "lint/diagnostic.h"

#include <cstdio>
#include <set>
#include <sstream>

#include "support/table.h"

namespace posetrl {

const char* lintSeverityName(LintSeverity s) {
  switch (s) {
    case LintSeverity::Note: return "note";
    case LintSeverity::Warning: return "warning";
    case LintSeverity::Error: return "error";
  }
  return "unknown";
}

std::string LintDiagnostic::key() const {
  return checker + "\x1f" + function + "\x1f" + block + "\x1f" + instruction +
         "\x1f" + message;
}

std::string LintDiagnostic::str() const {
  std::ostringstream os;
  os << checker << " " << lintSeverityName(severity);
  if (!function.empty()) {
    os << " @" << function;
    if (!block.empty()) os << "(" << block << ")";
  }
  os << ": " << message;
  if (!instruction.empty()) os << "  [" << instruction << "]";
  return os.str();
}

std::size_t LintReport::count(LintSeverity s) const {
  std::size_t n = 0;
  for (const auto& d : diagnostics) {
    if (d.severity == s) ++n;
  }
  return n;
}

std::vector<LintDiagnostic> LintReport::newSince(
    const LintReport& baseline) const {
  std::set<std::string> seen;
  for (const auto& d : baseline.diagnostics) seen.insert(d.key());
  std::vector<LintDiagnostic> fresh;
  for (const auto& d : diagnostics) {
    if (!seen.count(d.key())) fresh.push_back(d);
  }
  return fresh;
}

std::string LintReport::toText() const {
  if (diagnostics.empty()) return "lint: clean\n";
  TextTable table;
  table.addRow({"checker", "severity", "function", "block", "message"});
  for (const auto& d : diagnostics) {
    table.addRow({d.checker, lintSeverityName(d.severity), d.function,
                  d.block, d.message});
  }
  return table.render();
}

std::string jsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string LintReport::toJson() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const LintDiagnostic& d = diagnostics[i];
    if (i > 0) os << ",";
    os << "{\"checker\":\"" << jsonEscape(d.checker) << "\","
       << "\"severity\":\"" << lintSeverityName(d.severity) << "\","
       << "\"function\":\"" << jsonEscape(d.function) << "\","
       << "\"block\":\"" << jsonEscape(d.block) << "\","
       << "\"instruction\":\"" << jsonEscape(d.instruction) << "\","
       << "\"message\":\"" << jsonEscape(d.message) << "\"}";
  }
  os << "]";
  return os.str();
}

}  // namespace posetrl
