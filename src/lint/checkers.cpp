#include "lint/lint.h"

#include <functional>

#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/global_variable.h"
#include "ir/instruction.h"
#include "ir/module.h"
#include "ir/printer.h"
#include "ir/verifier.h"

namespace posetrl {

namespace {

/// Shared helper: build a diagnostic located at \p inst.
LintDiagnostic at(std::string_view checker, LintSeverity sev,
                  const Instruction* inst, std::string message) {
  LintDiagnostic d;
  d.checker = std::string(checker);
  d.severity = sev;
  if (inst != nullptr && inst->parent() != nullptr) {
    d.block = inst->parent()->name();
    if (inst->parent()->parent() != nullptr) {
      d.function = inst->parent()->parent()->name();
    }
    d.instruction = printInstruction(*inst);
  }
  d.message = std::move(message);
  return d;
}

/// Follows a pointer value through GEPs to its base object.
const Value* pointerBase(const Value* p) {
  while (const auto* gep = dynCast<GepInst>(p)) p = gep->base();
  return p;
}

// --- undef-use ------------------------------------------------------------
// A transform that folds away a definition but forgets a user typically
// patches the hole with undef; executing such IR is nondeterministic, so any
// non-phi use is suspicious. Phi inputs from never-taken edges are a common
// and benign intermediate state, reported as notes.
class UndefUseChecker : public LintChecker {
 public:
  std::string_view name() const override { return "undef-use"; }

  void check(const Module& m, LintReport& report) const override {
    for (const auto& f : m.functions()) {
      for (const auto& bb : f->blocks()) {
        for (const auto& inst : bb->insts()) {
          for (std::size_t i = 0; i < inst->numOperands(); ++i) {
            if (!isa<UndefValue>(inst->operand(i))) continue;
            const bool is_phi = inst->opcode() == Opcode::Phi;
            report.add(at(name(),
                          is_phi ? LintSeverity::Note : LintSeverity::Warning,
                          inst.get(),
                          "operand " + std::to_string(i) + " is undef"));
          }
        }
      }
    }
  }
};

// --- unreachable-block ----------------------------------------------------
// Blocks no path from the entry can reach are dead weight the size model
// still pays for; a CFG transform that rewired edges without cleaning up
// leaves them behind.
class UnreachableBlockChecker : public LintChecker {
 public:
  std::string_view name() const override { return "unreachable-block"; }

  void check(const Module& m, LintReport& report) const override {
    for (const auto& f : m.functions()) {
      if (f->isDeclaration()) continue;
      const auto reachable = reachableBlockSet(*f);
      for (const auto& bb : f->blocks()) {
        if (reachable.count(bb.get())) continue;
        LintDiagnostic d;
        d.checker = std::string(name());
        d.severity = LintSeverity::Warning;
        d.function = f->name();
        d.block = bb->name();
        d.message = "block is unreachable from the entry";
        report.add(std::move(d));
      }
    }
  }
};

// --- dead-internal-function -----------------------------------------------
// Internal functions with no callers (and no address taken via a global
// initializer) should have been deleted by globaldce; survivors inflate the
// size reward for free.
class DeadInternalFunctionChecker : public LintChecker {
 public:
  std::string_view name() const override { return "dead-internal-function"; }

  void check(const Module& m, LintReport& report) const override {
    for (const auto& f : m.functions()) {
      if (!f->isInternal() || f->isIntrinsic()) continue;
      if (f->name() == "main") continue;
      if (f->hasUses()) continue;
      bool in_global_init = false;
      for (const auto& g : m.globals()) {
        if (g->init().kind == GlobalInit::Kind::FuncPtr &&
            g->init().function == f.get()) {
          in_global_init = true;
          break;
        }
      }
      if (in_global_init) continue;
      LintDiagnostic d;
      d.checker = std::string(name());
      d.severity = LintSeverity::Warning;
      d.function = f->name();
      d.message = f->isDeclaration()
                      ? "unused internal declaration"
                      : "internal function has no uses and is not the entry";
      report.add(std::move(d));
    }
  }
};

// --- store-to-constant-global ---------------------------------------------
// Writing through a pointer that provably aliases a `const` global is
// undefined behaviour at the LLVM level; a pass that forgot a constness
// check (globalopt marking too eagerly, DSE resurrecting a store) produces
// exactly this shape.
class StoreToConstGlobalChecker : public LintChecker {
 public:
  std::string_view name() const override { return "store-to-constant-global"; }

  void check(const Module& m, LintReport& report) const override {
    for (const auto& f : m.functions()) {
      for (const auto& bb : f->blocks()) {
        for (const auto& inst : bb->insts()) {
          const auto* store = dynCast<StoreInst>(inst.get());
          if (store == nullptr) continue;
          const auto* g = dynCast<GlobalVariable>(pointerBase(store->pointer()));
          if (g == nullptr || !g->isConst()) continue;
          report.add(at(name(), LintSeverity::Error, inst.get(),
                        "store into constant global @" + g->name()));
        }
      }
    }
  }
};

// --- call-signature-mismatch ----------------------------------------------
// Two blind spots of the structural verifier: (1) a function whose type was
// rewritten in place (setFunctionTypeUnchecked, used by deadargelim /
// attributor) can disagree with its own argument list; (2) an indirect call
// through a constant function-pointer global has a statically known target
// whose signature the verifier never cross-checks.
class CallSignatureChecker : public LintChecker {
 public:
  std::string_view name() const override { return "call-signature-mismatch"; }

  void check(const Module& m, LintReport& report) const override {
    for (const auto& f : m.functions()) {
      checkOwnSignature(*f, report);
      for (const auto& bb : f->blocks()) {
        for (const auto& inst : bb->insts()) {
          const auto* call = dynCast<CallInst>(inst.get());
          if (call == nullptr) continue;
          const Function* target = resolveTarget(*call);
          if (target != nullptr) checkCallAgainst(*call, *target, report);
        }
      }
    }
  }

 private:
  void checkOwnSignature(const Function& f, LintReport& report) const {
    const auto& params = f.functionType()->funcParams();
    if (params.size() != f.numArgs()) {
      LintDiagnostic d;
      d.checker = std::string(name());
      d.severity = LintSeverity::Error;
      d.function = f.name();
      d.message = "function type has " + std::to_string(params.size()) +
                  " parameters but " + std::to_string(f.numArgs()) +
                  " arguments";
      report.add(std::move(d));
      return;
    }
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (f.arg(i)->type() == params[i]) continue;
      LintDiagnostic d;
      d.checker = std::string(name());
      d.severity = LintSeverity::Error;
      d.function = f.name();
      d.message = "argument " + std::to_string(i) + " has type " +
                  f.arg(i)->type()->str() + " but the function type says " +
                  params[i]->str();
      report.add(std::move(d));
    }
  }

  /// The statically known callee: a direct call's function, or the
  /// initializer of a constant function-pointer global loaded right before
  /// an indirect call.
  static const Function* resolveTarget(const CallInst& call) {
    if (const Function* direct = call.calledFunction()) return direct;
    const auto* load = dynCast<LoadInst>(call.callee());
    if (load == nullptr) return nullptr;
    const auto* g = dynCast<GlobalVariable>(pointerBase(load->pointer()));
    if (g == nullptr || !g->isConst()) return nullptr;
    if (g->init().kind != GlobalInit::Kind::FuncPtr) return nullptr;
    return g->init().function;
  }

  void checkCallAgainst(const CallInst& call, const Function& target,
                        LintReport& report) const {
    const Type* fty = target.functionType();
    const auto& params = fty->funcParams();
    if (call.type() != fty->funcReturn()) {
      report.add(at(name(), LintSeverity::Error, &call,
                    "call result type " + call.type()->str() +
                        " does not match @" + target.name() + " returning " +
                        fty->funcReturn()->str()));
    }
    if (call.numArgs() != params.size()) {
      report.add(at(name(), LintSeverity::Error, &call,
                    "call passes " + std::to_string(call.numArgs()) +
                        " arguments but @" + target.name() + " takes " +
                        std::to_string(params.size())));
      return;
    }
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (call.arg(i)->type() == params[i]) continue;
      report.add(at(name(), LintSeverity::Error, &call,
                    "argument " + std::to_string(i) + " has type " +
                        call.arg(i)->type()->str() + " but @" +
                        target.name() + " expects " + params[i]->str()));
    }
  }
};

// --- gep-out-of-bounds-constant-index -------------------------------------
// GEPs whose indices are all compile-time constants can be bounds-checked
// statically against the indexed type; an index past an array's length (or a
// nonzero first index off a single stack/global object) will trap — or
// worse, silently alias — at run time.
class GepBoundsChecker : public LintChecker {
 public:
  std::string_view name() const override {
    return "gep-out-of-bounds-constant-index";
  }

  void check(const Module& m, LintReport& report) const override {
    for (const auto& f : m.functions()) {
      for (const auto& bb : f->blocks()) {
        for (const auto& inst : bb->insts()) {
          const auto* gep = dynCast<GepInst>(inst.get());
          if (gep != nullptr) checkGep(*gep, report);
        }
      }
    }
  }

 private:
  void checkGep(const GepInst& gep, LintReport& report) const {
    // First index: offsets whole source elements. Any nonzero constant is
    // out of bounds when the base is a single allocated object.
    if (gep.numIndices() == 0) return;
    const Value* base = pointerBase(gep.base());
    if (const auto* first = dynCast<ConstantInt>(gep.index(0))) {
      const bool single_object =
          isa<AllocaInst>(base) || isa<GlobalVariable>(base);
      if (single_object && first->value() != 0) {
        report.add(at(name(), LintSeverity::Error, &gep,
                      "first index " + std::to_string(first->value()) +
                          " steps off a single allocated object"));
      }
    }
    // Later indices: step into the source element type, which carries exact
    // bounds for arrays and structs.
    const Type* cur = gep.sourceElement();
    for (std::size_t i = 1; i < gep.numIndices(); ++i) {
      const auto* idx = dynCast<ConstantInt>(gep.index(i));
      if (cur->isArray()) {
        if (idx != nullptr &&
            (idx->value() < 0 ||
             static_cast<std::uint64_t>(idx->value()) >= cur->arrayCount())) {
          report.add(at(name(), LintSeverity::Error, &gep,
                        "index " + std::to_string(idx->value()) +
                            " out of bounds for " + cur->str()));
        }
        cur = cur->arrayElement();
      } else if (cur->isStruct()) {
        if (idx == nullptr) return;  // Dynamic struct index: not checkable.
        if (idx->value() < 0 ||
            static_cast<std::size_t>(idx->value()) >=
                cur->structFields().size()) {
          report.add(at(name(), LintSeverity::Error, &gep,
                        "field index " + std::to_string(idx->value()) +
                            " out of bounds for " + cur->str()));
          return;
        }
        cur = cur->structFields()[static_cast<std::size_t>(idx->value())];
      } else {
        return;  // Scalar: trailing indices are the verifier's problem.
      }
    }
  }
};

using CheckerFactory = std::function<std::unique_ptr<LintChecker>()>;

const std::vector<std::pair<std::string, CheckerFactory>>& checkerTable() {
  static const std::vector<std::pair<std::string, CheckerFactory>> table = {
      {"undef-use", [] { return std::make_unique<UndefUseChecker>(); }},
      {"unreachable-block",
       [] { return std::make_unique<UnreachableBlockChecker>(); }},
      {"dead-internal-function",
       [] { return std::make_unique<DeadInternalFunctionChecker>(); }},
      {"store-to-constant-global",
       [] { return std::make_unique<StoreToConstGlobalChecker>(); }},
      {"call-signature-mismatch",
       [] { return std::make_unique<CallSignatureChecker>(); }},
      {"gep-out-of-bounds-constant-index",
       [] { return std::make_unique<GepBoundsChecker>(); }},
  };
  return table;
}

}  // namespace

std::vector<std::unique_ptr<LintChecker>> createAllLintCheckers() {
  std::vector<std::unique_ptr<LintChecker>> out;
  for (const auto& [name, factory] : checkerTable()) out.push_back(factory());
  return out;
}

std::vector<std::string> lintCheckerNames() {
  std::vector<std::string> out;
  for (const auto& [name, factory] : checkerTable()) out.push_back(name);
  return out;
}

std::unique_ptr<LintChecker> createLintChecker(std::string_view name) {
  for (const auto& [id, factory] : checkerTable()) {
    if (id == name) return factory();
  }
  return nullptr;
}

LintReport runLint(const Module& m) {
  LintReport report;
  for (const auto& checker : createAllLintCheckers()) {
    checker->check(m, report);
  }
  return report;
}

}  // namespace posetrl
