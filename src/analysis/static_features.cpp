#include "analysis/static_features.h"

#include <cmath>

#include "analysis/analysis_manager.h"
#include "analysis/def_use.h"
#include "analysis/liveness.h"
#include "analysis/loop_info.h"
#include "analysis/reaching_defs.h"
#include "analysis/value_range.h"
#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/instruction.h"
#include "ir/module.h"

namespace posetrl {

namespace {

const char* const kFeatureNames[kStaticFeatureDim] = {
    "functions",           // 0
    "blocks",              // 1
    "instructions",        // 2
    "avg_block_size",      // 3
    "cfg_edges",           // 4
    "blocks_single_succ",  // 5
    "blocks_two_succ",     // 6
    "blocks_multi_pred",   // 7
    "critical_edges",      // 8
    "phis",                // 9
    "phi_incoming",        // 10
    "args",                // 11
    "allocas",             // 12
    "loads",               // 13
    "stores",              // 14
    "geps",                // 15
    "calls",               // 16
    "rets",                // 17
    "brs",                 // 18
    "condbrs",             // 19
    "switches",            // 20
    "selects",             // 21
    "icmps",               // 22
    "fcmps",               // 23
    "int_binops",          // 24
    "float_binops",        // 25
    "casts",               // 26
    "const_int_operands",  // 27
    "loops",               // 28
    "max_loop_depth",      // 29
    "blocks_in_loops",     // 30
    "loop_preheaders",     // 31
    "max_live_pressure",   // 32
    "avg_live_in",         // 33
    "dead_defs",           // 34
    "single_use_defs",     // 35
    "avg_uses_per_def",    // 36
    "single_reach_loads",  // 37
    "range_bounded_defs",  // 38
    "avg_range_width",     // 39
};

}  // namespace

const char* staticFeatureName(std::size_t i) {
  return i < kStaticFeatureDim ? kFeatureNames[i] : "unknown";
}

std::vector<double> extractStaticFeatures(Module& m, AnalysisManager& am) {
  double raw[kStaticFeatureDim] = {0.0};

  double live_in_weighted = 0.0;
  double uses_weighted = 0.0;
  double range_width_weighted = 0.0;
  double def_total = 0.0;
  double tracked_total = 0.0;
  double block_total = 0.0;

  for (const auto& fptr : m.functions()) {
    Function& f = *fptr;
    if (f.isDeclaration()) continue;
    raw[0] += 1;
    raw[11] += static_cast<double>(f.numArgs());

    for (const auto& b : f.blocks()) {
      raw[1] += 1;
      const auto succs = b->successors();
      raw[4] += static_cast<double>(succs.size());
      if (succs.size() == 1) raw[5] += 1;
      if (succs.size() == 2) raw[6] += 1;
      if (b->predecessors().size() >= 2) raw[7] += 1;
      // Critical edge: multi-successor source into multi-predecessor sink.
      if (succs.size() >= 2)
        for (BasicBlock* s : succs)
          if (s->predecessors().size() >= 2) raw[8] += 1;

      for (const auto& inst : b->insts()) {
        raw[2] += 1;
        switch (inst->opcode()) {
          case Opcode::Phi:
            raw[9] += 1;
            raw[10] += static_cast<double>(
                cast<PhiInst>(inst.get())->numIncoming());
            break;
          case Opcode::Alloca: raw[12] += 1; break;
          case Opcode::Load: raw[13] += 1; break;
          case Opcode::Store: raw[14] += 1; break;
          case Opcode::Gep: raw[15] += 1; break;
          case Opcode::Call: raw[16] += 1; break;
          case Opcode::Ret: raw[17] += 1; break;
          case Opcode::Br: raw[18] += 1; break;
          case Opcode::CondBr: raw[19] += 1; break;
          case Opcode::Switch: raw[20] += 1; break;
          case Opcode::Select: raw[21] += 1; break;
          case Opcode::ICmp: raw[22] += 1; break;
          case Opcode::FCmp: raw[23] += 1; break;
          default:
            if (inst->isIntBinaryOp()) raw[24] += 1;
            else if (inst->isFloatBinaryOp()) raw[25] += 1;
            else if (inst->isCast()) raw[26] += 1;
            break;
        }
        for (const Value* op : inst->operands())
          if (isa<ConstantInt>(op)) raw[27] += 1;
      }
    }

    const LoopInfo& li = am.loopInfo(f);
    raw[28] += static_cast<double>(li.loopCount());
    for (const Loop* l : li.loopsInnermostFirst()) {
      if (static_cast<double>(l->depth()) > raw[29])
        raw[29] = static_cast<double>(l->depth());
      if (l->preheader() != nullptr) raw[31] += 1;
    }
    for (const auto& b : f.blocks())
      if (li.loopFor(b.get()) != nullptr) raw[30] += 1;

    const LivenessInfo& lv = am.liveness(f);
    if (static_cast<double>(lv.maxPressure()) > raw[32])
      raw[32] = static_cast<double>(lv.maxPressure());
    live_in_weighted += lv.avgLiveIn() * static_cast<double>(f.numBlocks());
    block_total += static_cast<double>(f.numBlocks());

    const DefUseInfo& du = am.defUse(f);
    raw[34] += static_cast<double>(du.deadDefs());
    raw[35] += static_cast<double>(du.singleUseDefs());
    uses_weighted += du.avgUsesPerDef() * static_cast<double>(du.defCount());
    def_total += static_cast<double>(du.defCount());

    const ReachingDefs& rd = am.reachingDefs(f);
    raw[37] += static_cast<double>(rd.singleReachingLoads());

    const ValueRanges& vr = am.valueRanges(f);
    raw[38] += static_cast<double>(vr.boundedCount());
    range_width_weighted +=
        vr.avgWidthLog2() * static_cast<double>(vr.trackedCount());
    tracked_total += static_cast<double>(vr.trackedCount());
  }

  raw[3] = raw[1] == 0.0 ? 0.0 : raw[2] / raw[1];
  raw[33] = block_total == 0.0 ? 0.0 : live_in_weighted / block_total;
  raw[36] = def_total == 0.0 ? 0.0 : uses_weighted / def_total;
  raw[39] =
      tracked_total == 0.0 ? 0.0 : range_width_weighted / tracked_total;

  std::vector<double> out(kStaticFeatureDim);
  for (std::size_t i = 0; i < kStaticFeatureDim; ++i)
    out[i] = std::log1p(raw[i]);
  return out;
}

}  // namespace posetrl
