#pragma once

/// \file loop_info.h
/// Natural-loop detection from back edges in the dominator tree. Provides
/// the loop structure queried by every loop pass (loop-simplify, licm,
/// loop-rotate, unroll, deletion, idiom, vectorize, ...).

#include <map>
#include <memory>
#include <set>
#include <vector>

namespace posetrl {

class BasicBlock;
class Function;
class DominatorTree;
class Value;
class PhiInst;

/// One natural loop: a header plus the blocks of all back edges into it.
class Loop {
 public:
  BasicBlock* header() const { return header_; }
  const std::set<BasicBlock*>& blocks() const { return blocks_; }
  bool contains(BasicBlock* b) const { return blocks_.count(b) > 0; }

  Loop* parent() const { return parent_; }
  const std::vector<Loop*>& subLoops() const { return sub_loops_; }
  /// 1 for outermost loops, +1 per nesting level.
  unsigned depth() const;

  /// Blocks inside the loop that branch back to the header.
  std::vector<BasicBlock*> latches() const;
  /// The unique latch, or nullptr.
  BasicBlock* singleLatch() const;
  /// The unique out-of-loop predecessor of the header whose only successor
  /// is the header (canonical preheader), or nullptr.
  BasicBlock* preheader() const;
  /// All out-of-loop predecessor blocks of the header.
  std::vector<BasicBlock*> outsidePredecessors() const;
  /// In-loop blocks with a successor outside the loop.
  std::vector<BasicBlock*> exitingBlocks() const;
  /// Out-of-loop successor blocks of in-loop blocks.
  std::vector<BasicBlock*> exitBlocks() const;
  /// True when every exit block's predecessors are all inside the loop
  /// ("dedicated exits", guaranteed by loop-simplify).
  bool hasDedicatedExits() const;

  /// Total instruction count of the loop body.
  std::size_t instructionCount() const;

 private:
  friend class LoopInfo;

  BasicBlock* header_ = nullptr;
  std::set<BasicBlock*> blocks_;
  Loop* parent_ = nullptr;
  std::vector<Loop*> sub_loops_;
};

/// All natural loops of a function.
class LoopInfo {
 public:
  LoopInfo(Function& f, const DominatorTree& dt);

  /// Innermost loop containing \p b, or nullptr.
  Loop* loopFor(BasicBlock* b) const;
  unsigned loopDepth(BasicBlock* b) const;

  /// Outermost loops (no parent).
  const std::vector<Loop*>& topLevelLoops() const { return top_level_; }
  /// Every loop, innermost-first (so transforms can work inside-out).
  std::vector<Loop*> loopsInnermostFirst() const;
  std::size_t loopCount() const { return loops_.size(); }

 private:
  std::vector<std::unique_ptr<Loop>> loops_;
  std::vector<Loop*> top_level_;
  std::map<BasicBlock*, Loop*> innermost_;
};

}  // namespace posetrl
