#include "analysis/value_range.h"

#include <cmath>

#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/instruction.h"

namespace posetrl {

namespace {

/// [min, max] representable by an integer type of \p bits in canonical
/// (sign-extended) form. i1 is {-1, 0} under canonicalization.
std::int64_t typeMin(unsigned bits) {
  if (bits >= 64) return INT64_MIN;
  return -(std::int64_t{1} << (bits - 1));
}
std::int64_t typeMax(unsigned bits) {
  if (bits >= 64) return INT64_MAX;
  return (std::int64_t{1} << (bits - 1)) - 1;
}

bool addOv(std::int64_t a, std::int64_t b, std::int64_t* out) {
  return __builtin_add_overflow(a, b, out);
}
bool subOv(std::int64_t a, std::int64_t b, std::int64_t* out) {
  return __builtin_sub_overflow(a, b, out);
}
bool mulOv(std::int64_t a, std::int64_t b, std::int64_t* out) {
  return __builtin_mul_overflow(a, b, out);
}

}  // namespace

bool ValueRange::isFull(unsigned bits) const {
  return lo <= typeMin(bits) && hi >= typeMax(bits);
}

double ValueRange::widthLog2() const {
  const double width =
      static_cast<double>(hi) - static_cast<double>(lo) + 1.0;
  const double l = std::log2(width);
  return l < 0.0 ? 0.0 : (l > 64.0 ? 64.0 : l);
}

ValueRange ValueRange::full(unsigned bits) {
  return {typeMin(bits), typeMax(bits)};
}

namespace {

/// Interval binary op with wraparound detection: any overflow, or a result
/// outside the type's canonical range, degrades to the full type range
/// (MiniIR arithmetic wraps, so a partial interval would be unsound).
ValueRange applyBinary(Opcode op, const ValueRange& a, const ValueRange& b,
                       unsigned bits) {
  const ValueRange full = ValueRange::full(bits);
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  switch (op) {
    case Opcode::Add:
      if (addOv(a.lo, b.lo, &lo) || addOv(a.hi, b.hi, &hi)) return full;
      break;
    case Opcode::Sub:
      if (subOv(a.lo, b.hi, &lo) || subOv(a.hi, b.lo, &hi)) return full;
      break;
    case Opcode::Mul: {
      const std::int64_t xs[2] = {a.lo, a.hi};
      const std::int64_t ys[2] = {b.lo, b.hi};
      bool first = true;
      for (std::int64_t x : xs)
        for (std::int64_t y : ys) {
          std::int64_t p = 0;
          if (mulOv(x, y, &p)) return full;
          if (first || p < lo) lo = p;
          if (first || p > hi) hi = p;
          first = false;
        }
      break;
    }
    case Opcode::And:
      // Both operands non-negative: result in [0, min(hi_a, hi_b)].
      if (a.lo >= 0 && b.lo >= 0)
        return {0, a.hi < b.hi ? a.hi : b.hi};
      return full;
    case Opcode::Or:
    case Opcode::Xor:
      if (a.isConstant() && b.isConstant()) {
        const std::int64_t v = op == Opcode::Or ? (a.lo | b.lo)
                                                : (a.lo ^ b.lo);
        lo = hi = v;
        break;
      }
      return full;
    default:
      return full;
  }
  if (lo < full.lo || hi > full.hi) return full;  // Would wrap.
  return {lo, hi};
}

}  // namespace

ValueRanges::ValueRanges(Function& f) {
  const auto bitsOf = [](const Value* v) -> unsigned {
    return v->type()->isInteger() ? v->type()->intBits() : 0;
  };

  // Resolve an operand's current range (constants exact, tracked defs from
  // the map, everything else the full type range).
  const auto rangeOf = [&](const Value* v) -> ValueRange {
    if (const auto* c = dynCast<ConstantInt>(v))
      return ValueRange::constant(c->value());
    if (auto it = ranges_.find(v); it != ranges_.end()) return it->second;
    const unsigned bits = v->type()->isInteger() ? v->type()->intBits() : 64;
    return ValueRange::full(bits);
  };

  // Bounded forward propagation. After the widening round starts, any range
  // that still grows snaps to the full type range, so each value changes at
  // most once more and the loop terminates quickly.
  constexpr int kMaxRounds = 6;
  constexpr int kWidenAfter = 3;
  for (int round = 0; round < kMaxRounds; ++round) {
    bool changed = false;
    for (const auto& b : f.blocks()) {
      for (const auto& inst : b->insts()) {
        const unsigned bits = bitsOf(inst.get());
        if (bits == 0) continue;
        ValueRange r = ValueRange::full(bits);
        switch (inst->opcode()) {
          case Opcode::Add:
          case Opcode::Sub:
          case Opcode::Mul:
          case Opcode::And:
          case Opcode::Or:
          case Opcode::Xor:
            r = applyBinary(inst->opcode(), rangeOf(inst->operand(0)),
                            rangeOf(inst->operand(1)), bits);
            break;
          case Opcode::Phi: {
            const auto* phi = cast<PhiInst>(inst.get());
            bool first = true;
            for (std::size_t i = 0; i < phi->numIncoming(); ++i) {
              const Value* in = phi->incomingValue(i);
              if (in == inst.get()) continue;  // Self-loop contributes nothing.
              const ValueRange ir = rangeOf(in);
              r = first ? ir : ValueRange::join(r, ir);
              first = false;
            }
            if (first) r = ValueRange::full(bits);
            break;
          }
          case Opcode::Select:
            r = ValueRange::join(rangeOf(inst->operand(1)),
                                 rangeOf(inst->operand(2)));
            break;
          case Opcode::SExt:
            r = rangeOf(inst->operand(0));  // Canonical form is sign-extended.
            break;
          case Opcode::ZExt: {
            const ValueRange src = rangeOf(inst->operand(0));
            if (src.lo >= 0)
              r = src;  // Non-negative values are unchanged by zext.
            break;
          }
          case Opcode::Trunc: {
            const ValueRange src = rangeOf(inst->operand(0));
            if (src.lo >= ValueRange::full(bits).lo &&
                src.hi <= ValueRange::full(bits).hi)
              r = src;  // Fits: truncation is the identity.
            break;
          }
          default:
            break;  // Loads, calls, shifts, divisions: full range.
        }
        auto it = ranges_.find(inst.get());
        if (it == ranges_.end()) {
          ranges_.emplace(inst.get(), r);
          changed = true;
        } else if (!(it->second.lo == r.lo && it->second.hi == r.hi)) {
          it->second =
              round >= kWidenAfter ? ValueRange::full(bits) : r;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }

  double width_total = 0.0;
  for (const auto& b : f.blocks()) {
    for (const auto& inst : b->insts()) {
      const unsigned bits = bitsOf(inst.get());
      if (bits == 0) continue;
      ++tracked_;
      const ValueRange r = rangeOf(inst.get());
      if (!r.isFull(bits)) ++bounded_;
      width_total += r.widthLog2();
    }
  }
  avg_width_log2_ =
      tracked_ == 0 ? 64.0 : width_total / static_cast<double>(tracked_);
}

ValueRange ValueRanges::range(const Value* v) const {
  if (const auto* c = dynCast<ConstantInt>(v))
    return ValueRange::constant(c->value());
  auto it = ranges_.find(v);
  if (it != ranges_.end()) return it->second;
  const unsigned bits = v->type()->isInteger() ? v->type()->intBits() : 64;
  return ValueRange::full(bits);
}

}  // namespace posetrl
