#pragma once

/// \file cfg.h
/// CFG traversal helpers shared by analyses and passes.

#include <set>
#include <vector>

namespace posetrl {

class BasicBlock;
class Function;

/// Blocks reachable from the entry, in depth-first discovery order.
std::vector<BasicBlock*> reachableBlocks(Function& f);

/// Reverse post-order over reachable blocks (defs-before-uses friendly).
std::vector<BasicBlock*> reversePostOrder(Function& f);

/// Post-order over reachable blocks.
std::vector<BasicBlock*> postOrder(Function& f);

}  // namespace posetrl
