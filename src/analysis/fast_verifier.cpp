#include "analysis/fast_verifier.h"

#include <string>
#include <unordered_set>

#include "analysis/def_use.h"
#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/global_variable.h"
#include "ir/instruction.h"
#include "ir/module.h"
#include "support/hashing.h"

namespace posetrl {

namespace {

void error(VerifyResult& out, const Function& f, const std::string& msg) {
  out.errors.push_back("in @" + f.name() + ": " + msg);
}

}  // namespace

VerifyResult FastVerifier::verify(Module& m, AnalysisManager& am) {
  VerifyResult result;

  // Reused scratch containers: clear() keeps the bucket arrays, so the
  // per-pass steady state allocates nothing here.
  thread_local std::unordered_set<std::string> names;
  names.clear();
  for (const auto& f : m.functions())
    if (!names.insert(f->name()).second)
      result.errors.push_back("duplicate function name @" + f->name());

  checkGlobalInits(m, result);

  // Module-scoped use counts (functions, globals) accumulate across every
  // function's cached def-use summary; function-local values are checked
  // per function below.
  thread_local std::unordered_map<const Value*, std::size_t> module_uses;
  module_uses.clear();

  for (const auto& fptr : m.functions()) {
    Function& f = *fptr;
    if (f.isDeclaration()) continue;

    // One fused walk computes the structural fingerprint and the auxiliary
    // use-count/name key (what the fingerprint deliberately ignores but the
    // verifier checks — use-list drift without an operand change is exactly
    // a bookkeeping corruption). The result is donated to the manager, so
    // neither the analysis queries below nor the contract reconcile after
    // this verify walks the function again.
    std::uint64_t aux = 0;
    const FunctionFingerprint fp = fingerprintFunction(f, &aux);
    am.noteFingerprint(f, fp);
    const std::uint64_t key = hashCombine(fp.instrs, aux);
    if (auto it = clean_.find(&f); it != clean_.end() && it->second.key == key) {
      ++functions_skipped_;
      for (const auto& [v, n] : it->second.module_refs) module_uses[v] += n;
      continue;
    }

    const DefUseInfo& du = am.defUse(f);
    std::vector<std::pair<const Value*, std::size_t>> module_refs;
    for (const auto& [v, n] : du.operandCounts()) {
      if (v->kind() == Value::Kind::Function ||
          v->kind() == Value::Kind::GlobalVariable) {
        module_uses[v] += n;
        module_refs.emplace_back(v, n);
      }
    }

    const std::size_t errors_before = result.errors.size();

    // --- single structural walk ---
    if (!f.entry()->predecessors().empty())
      error(result, f, "entry block has predecessors");

    std::unordered_set<const BasicBlock*> block_set;
    for (const auto& b : f.blocks()) block_set.insert(b.get());

    for (const auto& b : f.blocks()) {
      if (b->parent() != &f)
        error(result, f, "block parent pointer wrong: " + b->name());
      if (b->empty()) {
        error(result, f, "empty basic block: " + b->name());
        continue;
      }
      bool seen_non_phi = false;
      std::size_t idx = 0;
      const std::size_t last = b->size() - 1;
      for (const auto& inst : b->insts()) {
        ++instructions_checked_;
        if (inst->parent() != b.get())
          error(result, f, "instruction parent pointer wrong");
        if (inst->isTerminator() != (idx == last))
          error(result, f,
                idx == last ? "block does not end with a terminator"
                            : "terminator in the middle of a block");
        if (inst->opcode() == Opcode::Phi) {
          if (seen_non_phi) error(result, f, "phi after non-phi");
        } else {
          seen_non_phi = true;
        }
        if (!inst->type()->isVoid() && inst->name().empty())
          error(result, f, "unnamed instruction result");
        for (std::size_t s = 0; s < inst->numSuccessors(); ++s)
          if (block_set.count(inst->successor(s)) == 0)
            error(result, f, "branch to block of another function");
        checkInstructionTypes(&f, *inst, result);
        ++idx;
      }
    }

    // --- phi incoming edges vs predecessors ---
    for (const auto& b : f.blocks()) {
      const auto preds = b->predecessors();
      for (PhiInst* phi : b->phis()) {
        if (phi->numIncoming() != preds.size()) {
          error(result, f,
                "phi incoming count != predecessor count of " + b->name());
          continue;
        }
        std::unordered_set<const BasicBlock*> incoming;
        for (std::size_t i = 0; i < phi->numIncoming(); ++i) {
          incoming.insert(phi->incomingBlock(i));
          if (phi->incomingValue(i)->type() != phi->type())
            error(result, f, "phi incoming value type mismatch");
        }
        for (const BasicBlock* p : preds)
          if (incoming.count(p) == 0)
            error(result, f, "phi missing incoming edge from " + p->name());
      }
    }

    // --- use-list integrity for function-local values ---
    const auto check_uses = [&](const Value* v, const std::string& what) {
      const std::size_t expected = du.operandUses(v);
      if (v->numUses() != expected)
        error(result, f,
              "use-list size mismatch for " + what + " (" +
                  std::to_string(v->numUses()) + " recorded vs " +
                  std::to_string(expected) + " actual)");
    };
    for (const auto& a : f.args()) check_uses(a.get(), "%" + a->name());
    for (const auto& b : f.blocks()) {
      check_uses(b.get(), "label " + b->name());
      for (const auto& inst : b->insts())
        check_uses(inst.get(), "%" + inst->name());
    }

    // --- SSA dominance, only on structurally clean functions (the cached
    // dominator tree asserts on malformed CFGs) ---
    if (result.errors.size() == errors_before) {
      const DominatorTree& dt = am.dominators(f);
      // Reused scratch: clear() keeps the bucket array, so re-verifying a
      // changed function allocates nothing in the steady state.
      thread_local std::unordered_map<const Instruction*, std::size_t> order;
      order.clear();
      for (const auto& b : f.blocks()) {
        std::size_t i = 0;
        for (const auto& inst : b->insts()) order[inst.get()] = i++;
      }
      for (const auto& b : f.blocks()) {
        if (!dt.isReachable(b.get())) continue;
        for (const auto& inst : b->insts()) {
          for (std::size_t oi = 0; oi < inst->numOperands(); ++oi) {
            auto* def = dynCast<Instruction>(inst->operand(oi));
            if (def == nullptr) continue;
            if (def->parent() == nullptr || def->parent()->parent() != &f) {
              error(result, f, "operand from another function");
              continue;
            }
            if (inst->opcode() == Opcode::Phi) {
              if (oi % 2 != 0) continue;  // Block operands.
              auto* phi = static_cast<PhiInst*>(inst.get());
              BasicBlock* pred = phi->incomingBlock(oi / 2);
              if (!dt.isReachable(pred)) continue;
              if (!dt.dominates(def->parent(), pred))
                error(result, f,
                      "phi incoming value does not dominate its edge");
            } else if (def->parent() == b.get()) {
              if (order[def] >= order[inst.get()])
                error(result, f, "use before def in block");
            } else if (!dt.dominates(def->parent(), b.get())) {
              error(result, f, "operand does not dominate use");
            }
          }
        }
      }
    }

    if (result.errors.size() == errors_before)
      clean_[&f] = {key, std::move(module_refs)};
    else
      clean_.erase(&f);
  }

  for (const auto& g : m.globals())
    if (g->numUses() != module_uses[g.get()])
      result.errors.push_back("use-list size mismatch for @" + g->name());
  for (const auto& fn : m.functions())
    if (fn->numUses() != module_uses[fn.get()])
      result.errors.push_back("use-list size mismatch for @" + fn->name());

  return result;
}

}  // namespace posetrl
