#pragma once

/// \file block_frequency.h
/// Static block-frequency estimate used to weight the throughput model
/// (llvm-mca analog): entry blocks get weight 1, each loop level multiplies
/// by a fixed trip-count guess, and conditional successors split the parent
/// frequency (biased by pr.expect hints when present).

#include <map>

namespace posetrl {

class BasicBlock;
class Function;

/// Frequency estimates for every reachable block of a function.
class BlockFrequency {
 public:
  /// \p assumed_trip_count is the static multiplier per loop level.
  explicit BlockFrequency(Function& f, double assumed_trip_count = 8.0);

  /// Estimated executions of \p b per function invocation (0 when
  /// unreachable).
  double frequency(BasicBlock* b) const;

 private:
  std::map<BasicBlock*, double> freq_;
};

}  // namespace posetrl
