#pragma once

/// \file value_range.h
/// Conservative integer value-range (interval) analysis. Forward
/// propagation over the reverse post-order with a bounded number of rounds
/// and widening: constants are exact, arithmetic composes with saturation,
/// phis join, and anything unknown (arguments, loads, calls) spans its
/// type's full range. No branch refinement — the result is a sound
/// over-approximation on every path, cheap enough to run per query.

#include <cstddef>
#include <cstdint>
#include <unordered_map>

namespace posetrl {

class Function;
class Value;

/// Closed interval [lo, hi] of canonical (sign-extended) integer values.
struct ValueRange {
  std::int64_t lo = INT64_MIN;
  std::int64_t hi = INT64_MAX;

  bool isFull(unsigned bits) const;
  bool isConstant() const { return lo == hi; }
  /// log2 of the interval cardinality, saturated to [0, 64].
  double widthLog2() const;

  static ValueRange full(unsigned bits);
  static ValueRange constant(std::int64_t v) { return {v, v}; }
  static ValueRange join(const ValueRange& a, const ValueRange& b) {
    return {a.lo < b.lo ? a.lo : b.lo, a.hi > b.hi ? a.hi : b.hi};
  }
};

class ValueRanges {
 public:
  explicit ValueRanges(Function& f);

  /// Range of \p v. Full range of the type for unknown/untracked values.
  ValueRange range(const Value* v) const;

  /// Integer-typed defs whose range is narrower than the full type range.
  std::size_t boundedCount() const { return bounded_; }
  /// All integer-typed defs considered.
  std::size_t trackedCount() const { return tracked_; }
  /// Mean widthLog2 over tracked defs (64 = nothing known).
  double avgWidthLog2() const { return avg_width_log2_; }

 private:
  std::unordered_map<const Value*, ValueRange> ranges_;
  std::size_t bounded_ = 0;
  std::size_t tracked_ = 0;
  double avg_width_log2_ = 0.0;
};

}  // namespace posetrl
