#pragma once

/// \file fast_verifier.h
/// Per-pass structural IR verifier, cheap enough to default-on in the
/// training sandbox and the compile service. Differences from the full
/// verifier in ir/verifier.h:
///   - functions whose content hash matches the last clean verification are
///     skipped entirely (a pass touching one function re-verifies one
///     function);
///   - SSA dominance uses the AnalysisManager's cached dominator tree
///     instead of the O(n^2) set-based computation, and only runs when the
///     structural checks (terminators, phi placement, parents, types,
///     use lists) came back clean — the tree construction asserts on
///     malformed CFGs.
/// The check set is the same: anything the full verifier flags, this
/// flags too (and vice versa).

#include <cstddef>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/analysis_manager.h"
#include "ir/verifier.h"

namespace posetrl {

class Module;
class Value;

/// Stateful fast verifier. Keep one instance alive across passes/steps so
/// the clean-hash skip cache pays off; it holds no pointers into the IR
/// that it dereferences without revalidation, so module swaps are safe.
class FastVerifier {
 public:
  /// Verifies \p m, pulling cached analyses from \p am.
  VerifyResult verify(Module& m, AnalysisManager& am);

  /// Total instructions walked by structural checks (skipped functions
  /// contribute nothing). Basis for the ns/instruction benchmark metric.
  std::size_t instructionsChecked() const { return instructions_checked_; }
  /// Functions skipped because their content hash was verified clean before.
  std::size_t functionsSkipped() const { return functions_skipped_; }

  void resetStats() {
    instructions_checked_ = 0;
    functions_skipped_ = 0;
  }

  /// Drops the clean-hash skip cache. Owners sharing one verifier across
  /// sequences must call this whenever the module object is replaced
  /// (reset, sandbox rollback): the cache is keyed by Function pointers,
  /// and a recycled address could otherwise replay a stale module-use
  /// contribution.
  void clearCache() { clean_.clear(); }

 private:
  /// State of the last *clean* verification per function. The key includes
  /// a use-count/name-presence hash on top of the structural fingerprint
  /// because the fingerprint deliberately ignores both but the verifier
  /// checks them. module_refs caches the function's contribution to the
  /// module-wide use-count check so a skipped function costs no def-use
  /// query at all.
  struct CleanEntry {
    std::uint64_t key = 0;
    std::vector<std::pair<const Value*, std::size_t>> module_refs;
  };
  std::unordered_map<const Function*, CleanEntry> clean_;
  std::size_t instructions_checked_ = 0;
  std::size_t functions_skipped_ = 0;
};

}  // namespace posetrl
