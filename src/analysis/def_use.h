#pragma once

/// \file def_use.h
/// Def-use / SSA-form summary of one function: the operand-derived use
/// counts the verifier cross-checks against the IR's incremental use lists,
/// plus aggregate def/use statistics consumed by the static feature
/// extractor.

#include <cstddef>
#include <unordered_map>

namespace posetrl {

class Function;
class Value;

class DefUseInfo {
 public:
  explicit DefUseInfo(Function& f);

  /// Number of operand slots referencing \p v inside the function, computed
  /// from operands (not from v's use list). The ground truth the use-list
  /// integrity check compares against.
  std::size_t operandUses(const Value* v) const;
  const std::unordered_map<const Value*, std::size_t>& operandCounts() const {
    return counts_;
  }

  std::size_t defCount() const { return defs_; }        ///< Non-void results.
  std::size_t deadDefs() const { return dead_defs_; }   ///< Zero-use defs.
  std::size_t singleUseDefs() const { return single_use_defs_; }
  std::size_t maxUses() const { return max_uses_; }
  double avgUsesPerDef() const { return avg_uses_; }

 private:
  std::unordered_map<const Value*, std::size_t> counts_;
  std::size_t defs_ = 0;
  std::size_t dead_defs_ = 0;
  std::size_t single_use_defs_ = 0;
  std::size_t max_uses_ = 0;
  double avg_uses_ = 0.0;
};

}  // namespace posetrl
