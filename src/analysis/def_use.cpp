#include "analysis/def_use.h"

#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/instruction.h"

namespace posetrl {

DefUseInfo::DefUseInfo(Function& f) {
  for (const auto& b : f.blocks())
    for (const auto& inst : b->insts())
      for (const Value* op : inst->operands()) ++counts_[op];

  std::size_t use_total = 0;
  for (const auto& b : f.blocks()) {
    for (const auto& inst : b->insts()) {
      if (inst->type()->isVoid()) continue;
      ++defs_;
      const std::size_t uses = operandUses(inst.get());
      use_total += uses;
      if (uses == 0) ++dead_defs_;
      if (uses == 1) ++single_use_defs_;
      if (uses > max_uses_) max_uses_ = uses;
    }
  }
  avg_uses_ = defs_ == 0 ? 0.0
                         : static_cast<double>(use_total) /
                               static_cast<double>(defs_);
}

std::size_t DefUseInfo::operandUses(const Value* v) const {
  auto it = counts_.find(v);
  return it == counts_.end() ? 0 : it->second;
}

}  // namespace posetrl
