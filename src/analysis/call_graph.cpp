#include "analysis/call_graph.h"

#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/global_variable.h"
#include "ir/instruction.h"
#include "ir/module.h"

namespace posetrl {

const std::set<Function*> CallGraph::kEmpty;

CallGraph::CallGraph(Module& m) {
  for (const auto& f : m.functions()) functions_.push_back(f.get());

  for (const auto& f : m.functions()) {
    for (const auto& bb : f->blocks()) {
      for (const auto& inst : bb->insts()) {
        const auto* call = dynCast<CallInst>(inst.get());
        if (call == nullptr) continue;
        if (Function* callee = call->calledFunction()) {
          callees_[f.get()].insert(callee);
          callers_[callee].insert(f.get());
        } else {
          has_indirect_.insert(f.get());
        }
        // A function passed as an argument (not the callee slot) escapes.
        for (std::size_t i = 0; i < call->numArgs(); ++i) {
          if (auto* fn = dynCast<Function>(call->arg(i))) {
            address_taken_.insert(fn);
          }
        }
      }
    }
  }
  // Functions referenced from global initializers escape.
  for (const auto& g : m.globals()) {
    if (g->init().kind == GlobalInit::Kind::FuncPtr) {
      address_taken_.insert(g->init().function);
    }
  }
  // Functions stored by instructions (e.g. store @f, %p) escape.
  for (const auto& f : m.functions()) {
    for (const auto& bb : f->blocks()) {
      for (const auto& inst : bb->insts()) {
        if (auto* store = dynCast<StoreInst>(inst.get())) {
          if (auto* fn = dynCast<Function>(store->value())) {
            address_taken_.insert(fn);
          }
        }
      }
    }
  }
}

const std::set<Function*>& CallGraph::callees(Function* f) const {
  auto it = callees_.find(f);
  return it == callees_.end() ? kEmpty : it->second;
}

const std::set<Function*>& CallGraph::callers(Function* f) const {
  auto it = callers_.find(f);
  return it == callers_.end() ? kEmpty : it->second;
}

std::vector<Function*> CallGraph::bottomUpOrder() const {
  std::vector<Function*> order;
  std::set<Function*> done;
  std::set<Function*> in_progress;

  // Iterative DFS emitting callees before callers; cycles are cut at the
  // re-entry edge.
  struct Frame {
    Function* f;
    std::vector<Function*> callees;
    std::size_t next = 0;
  };
  for (Function* root : functions_) {
    if (done.count(root)) continue;
    std::vector<Frame> stack;
    const auto push = [&](Function* f) {
      in_progress.insert(f);
      const auto& cs = callees(f);
      stack.push_back({f, {cs.begin(), cs.end()}});
    };
    push(root);
    while (!stack.empty()) {
      Frame& top = stack.back();
      if (top.next < top.callees.size()) {
        Function* c = top.callees[top.next++];
        if (!done.count(c) && !in_progress.count(c)) push(c);
      } else {
        order.push_back(top.f);
        done.insert(top.f);
        in_progress.erase(top.f);
        stack.pop_back();
      }
    }
  }
  return order;
}

}  // namespace posetrl
