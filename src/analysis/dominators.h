#pragma once

/// \file dominators.h
/// Dominator tree (Cooper–Harvey–Kennedy algorithm) and dominance frontiers.
/// Used by mem2reg (phi placement), LICM, GVN/early-CSE scoping, and the
/// loop analyses.

#include <map>
#include <set>
#include <vector>

namespace posetrl {

class BasicBlock;
class Function;
class Instruction;
class Value;

/// Immutable dominator tree over the reachable blocks of one function.
class DominatorTree {
 public:
  explicit DominatorTree(Function& f);

  /// Immediate dominator; nullptr for the entry block and for blocks not
  /// reachable from entry.
  BasicBlock* idom(BasicBlock* b) const;

  /// True when \p a dominates \p b (reflexive).
  bool dominates(BasicBlock* a, BasicBlock* b) const;

  /// True when instruction \p def dominates the use site \p user. Phi uses
  /// are checked against the incoming edge's predecessor terminator.
  bool dominatesUse(const Instruction* def, const Instruction* user) const;

  /// Children in the dominator tree.
  const std::vector<BasicBlock*>& children(BasicBlock* b) const;

  /// Dominance frontier of \p b.
  const std::set<BasicBlock*>& frontier(BasicBlock* b) const;

  /// Blocks in reverse post-order (entry first).
  const std::vector<BasicBlock*>& rpo() const { return rpo_; }

  bool isReachable(BasicBlock* b) const { return rpo_index_.count(b) > 0; }

 private:
  Function& function_;
  std::vector<BasicBlock*> rpo_;
  std::map<BasicBlock*, std::size_t> rpo_index_;
  std::map<BasicBlock*, BasicBlock*> idom_;
  std::map<BasicBlock*, std::vector<BasicBlock*>> children_;
  std::map<BasicBlock*, std::set<BasicBlock*>> frontier_;
  static const std::vector<BasicBlock*> kEmptyChildren;
  static const std::set<BasicBlock*> kEmptyFrontier;
};

}  // namespace posetrl
