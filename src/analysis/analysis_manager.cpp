#include "analysis/analysis_manager.h"

#include <cstring>
#include <utility>

#include "analysis/def_use.h"
#include "analysis/liveness.h"
#include "analysis/reaching_defs.h"
#include "analysis/value_range.h"
#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/global_variable.h"
#include "ir/instruction.h"
#include "ir/module.h"
#include "ir/structural_hash.h"
#include "support/hashing.h"

namespace posetrl {

const char* analysisKindName(AnalysisKind kind) {
  switch (kind) {
    case AnalysisKind::Dominators: return "dominators";
    case AnalysisKind::Loops: return "loops";
    case AnalysisKind::Liveness: return "liveness";
    case AnalysisKind::ReachingDefs: return "reaching-defs";
    case AnalysisKind::DefUse: return "def-use";
    case AnalysisKind::ValueRanges: return "value-ranges";
  }
  return "unknown";
}

namespace {

/// Structural type hash, independent of interning addresses (so fingerprints
/// agree across module clones). The shared memoized implementation lives in
/// ir/structural_hash.cpp — fingerprints and the module content hash must
/// agree on the value stored in Type::analysisHashCache.
std::uint64_t hashType(const Type* t) { return structuralTypeHash(t); }

std::uint64_t bitsOfDouble(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

}  // namespace

FunctionFingerprint fingerprintFunction(const Function& f,
                                        std::uint64_t* aux_key) {
  // Value-number blocks and instructions so the hash is position-based and
  // independent of pointer addresses and SSA names. Blocks are numbered by
  // their position among blocks only, so that instruction-level edits leave
  // the CFG hash untouched. Ids are stamped into a generation-tagged
  // scratch slot on the Value itself (Value::stampFingerprintId): operand
  // resolution is then two member loads instead of a hash-map probe, which
  // dominated this walk — and it runs once per function per pass boundary.
  const std::uint64_t gen = Value::nextStampGeneration();
  std::uint64_t next_block = 1;
  std::uint64_t next_inst = 1;
  for (const auto& b : f.blocks()) {
    b->stampFingerprintId(gen, hashCombine(10, next_block++));
    for (const auto& inst : b->insts())
      inst->stampFingerprintId(gen, hashCombine(1, next_inst++));
  }

  const auto valueId = [&](const Value* v) -> std::uint64_t {
    if (v == nullptr) return 0;
    if (v->fingerprintIdValid(gen)) return v->fingerprintId();
    switch (v->kind()) {
      case Value::Kind::ConstantInt: {
        const auto* c = cast<ConstantInt>(v);
        return hashCombine(hashCombine(2, hashType(v->type())),
                           static_cast<std::uint64_t>(c->value()));
      }
      case Value::Kind::ConstantFloat:
        return hashCombine(3, bitsOfDouble(cast<ConstantFloat>(v)->value()));
      case Value::Kind::ConstantNull:
        return hashCombine(4, hashType(v->type()));
      case Value::Kind::Undef:
        return hashCombine(5, hashType(v->type()));
      case Value::Kind::Argument:
        return hashCombine(6, cast<Argument>(v)->index());
      case Value::Kind::GlobalVariable:
        return hashCombine(7, fnv1a(v->name()));
      case Value::Kind::Function:
        return hashCombine(8, fnv1a(v->name()));
      default:
        return 9;  // Foreign block — never well-formed, but stay total.
    }
  };

  FunctionFingerprint fp;

  std::uint64_t cfg = kFnvOffset;
  cfg = hashCombine(cfg, f.blocks().size());
  for (const auto& b : f.blocks()) {
    cfg = hashCombine(cfg, b->fingerprintId());
    for (const BasicBlock* s : b->successors())
      // A successor outside this function is never well-formed (the
      // verifier flags it), but the hash stays total: unstamped → marker.
      cfg = hashCombine(cfg, s->fingerprintIdValid(gen) ? s->fingerprintId()
                                                        : 9);
  }
  fp.cfg = cfg;

  // The instruction-level hash covers everything the CFG hash does (it is
  // seeded with it) plus the signature and every instruction's structure.
  // Names, linkage and function attributes are deliberately excluded:
  // renames and attribute-only passes are no-ops to every cached analysis.
  std::uint64_t aux = kFnvOffset;
  if (aux_key != nullptr)
    for (const auto& a : f.args()) aux = hashCombine(aux, a->numUses());

  std::uint64_t h = hashCombine(cfg, hashType(f.functionType()));
  for (const auto& b : f.blocks()) {
    h = hashCombine(h, b->fingerprintId());
    if (aux_key != nullptr) aux = hashCombine(aux, b->numUses());
    for (const auto& inst : b->insts()) {
      if (aux_key != nullptr) {
        aux = hashCombine(aux, inst->numUses());
        aux = hashCombine(aux, inst->name().empty() ? 0u : 1u);
      }
      h = hashCombine(h, static_cast<std::uint64_t>(inst->opcode()));
      h = hashCombine(h, hashType(inst->type()));
      h = hashCombine(h, inst->numOperands());
      for (const Value* op : inst->operands()) h = hashCombine(h, valueId(op));
      if (inst->vectorWidth() != 1) h = hashCombine(h, inst->vectorWidth());
      switch (inst->opcode()) {
        case Opcode::Alloca:
          h = hashCombine(h, hashType(cast<AllocaInst>(inst.get())
                                          ->allocatedType()));
          break;
        case Opcode::Load:
          h = hashCombine(h, cast<LoadInst>(inst.get())->alignment());
          break;
        case Opcode::Store:
          h = hashCombine(h, cast<StoreInst>(inst.get())->alignment());
          break;
        case Opcode::Gep:
          h = hashCombine(h, hashType(cast<GepInst>(inst.get())
                                          ->sourceElement()));
          break;
        case Opcode::ICmp:
          h = hashCombine(h, static_cast<std::uint64_t>(
                                 cast<ICmpInst>(inst.get())->pred()));
          break;
        case Opcode::FCmp:
          h = hashCombine(h, static_cast<std::uint64_t>(
                                 cast<FCmpInst>(inst.get())->pred()));
          break;
        default:
          break;
      }
    }
  }
  fp.instrs = h;
  if (aux_key != nullptr) *aux_key = aux;
  return fp;
}

std::uint64_t fingerprintModuleData(const Module& m) {
  std::uint64_t h = kFnvOffset;
  for (const auto& g : m.globals()) {
    h = hashCombine(h, fnv1a(g->name()));
    h = hashCombine(h, hashType(g->valueType()));
    const GlobalInit& init = g->init();
    h = hashCombine(h, static_cast<std::uint64_t>(init.kind));
    h = hashCombine(h, static_cast<std::uint64_t>(init.int_value));
    h = hashCombine(h, bitsOfDouble(init.float_value));
    for (std::int64_t e : init.elements)
      h = hashCombine(h, static_cast<std::uint64_t>(e));
    if (init.function != nullptr)
      h = hashCombine(h, fnv1a(init.function->name()));
  }
  return h;
}

/// Cached analyses plus the fingerprint they were computed at.
struct AnalysisManager::FuncEntry {
  FunctionFingerprint fp;
  std::unique_ptr<DominatorTree> dom;
  std::unique_ptr<LoopInfo> loops;
  std::unique_ptr<LivenessInfo> liveness;
  std::unique_ptr<ReachingDefs> reaching;
  std::unique_ptr<DefUseInfo> def_use;
  std::unique_ptr<ValueRanges> ranges;

  void clear() {
    // LoopInfo holds pointers into the DominatorTree; drop it first.
    loops.reset();
    dom.reset();
    liveness.reset();
    reaching.reset();
    def_use.reset();
    ranges.reset();
  }
  /// Drops only the analyses that depend on instruction content. Dominators
  /// and loops survive: they read nothing but the block graph, and blocks
  /// are stable objects — instruction edits never move or free them.
  void clearInstructionLevel() {
    liveness.reset();
    reaching.reset();
    def_use.reset();
    ranges.reset();
  }
  bool hasAny() const {
    return dom || loops || liveness || reaching || def_use || ranges;
  }

  /// Freeze-window stamp: when it equals the manager's current epoch, the
  /// entry's fingerprint was validated inside the active freeze and later
  /// queries skip the hash walk.
  std::uint64_t freeze_stamp = 0;

  /// Module::irGeneration() the cached analyses were built against. A
  /// snapshot rollback (ModuleSnapshot::restoreInto) reverts the content —
  /// so the fingerprint matches again — but recreates every block and
  /// instruction at new addresses; the generation bump it performs makes
  /// this comparison fail and forces a full clear. Without it the
  /// fingerprint check would happily serve a DominatorTree full of dangling
  /// block pointers.
  std::uint64_t ir_gen = 0;
};

AnalysisManager::AnalysisManager() = default;
AnalysisManager::~AnalysisManager() = default;

AnalysisManager::FuncEntry& AnalysisManager::validated(Function& f) {
  std::unique_ptr<FuncEntry>& slot = funcs_[&f];
  if (frozen_ && slot && slot->freeze_stamp == freeze_epoch_ &&
      slot->ir_gen == f.parent()->irGeneration()) {
    return *slot;
  }
  noteFingerprint(f, fingerprintFunction(f));
  return *funcs_[&f];
}

void AnalysisManager::noteFingerprint(Function& f,
                                      const FunctionFingerprint& fp) {
  std::unique_ptr<FuncEntry>& slot = funcs_[&f];
  const std::uint64_t ir_gen = f.parent()->irGeneration();
  if (!slot) {
    slot = std::make_unique<FuncEntry>();
    slot->fp = fp;
  } else if (slot->ir_gen != ir_gen) {
    // Snapshot rollback recreated the body objects: even a matching
    // fingerprint (content reverted) means every cached pointer dangles.
    if (slot->hasAny()) ++stats_.invalidations;
    slot->clear();
    slot->fp = fp;
  } else if (!(slot->fp == fp)) {
    if (slot->hasAny()) ++stats_.invalidations;
    if (slot->fp.cfg == fp.cfg) {
      // Instruction-only edit: the block graph is intact, so the CFG-shape
      // analyses stay valid and only the instruction-level ones are stale.
      slot->clearInstructionLevel();
    } else {
      slot->clear();
    }
    slot->fp = fp;
  }
  slot->ir_gen = ir_gen;
  if (frozen_) slot->freeze_stamp = freeze_epoch_;
}

const FunctionFingerprint* AnalysisManager::validatedFingerprint(
    const Function& f) const {
  auto it = funcs_.find(&f);
  return it == funcs_.end() ? nullptr : &it->second->fp;
}

const DominatorTree& AnalysisManager::dominators(Function& f) {
  FuncEntry& e = validated(f);
  if (e.dom) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
    e.dom = std::make_unique<DominatorTree>(f);
  }
  return *e.dom;
}

const LoopInfo& AnalysisManager::loopInfo(Function& f) {
  const DominatorTree& dt = dominators(f);
  FuncEntry& e = *funcs_[&f];  // Validated by the dominators query.
  if (e.loops) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
    e.loops = std::make_unique<LoopInfo>(f, dt);
  }
  return *e.loops;
}

const LivenessInfo& AnalysisManager::liveness(Function& f) {
  FuncEntry& e = validated(f);
  if (e.liveness) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
    e.liveness = std::make_unique<LivenessInfo>(f);
  }
  return *e.liveness;
}

const ReachingDefs& AnalysisManager::reachingDefs(Function& f) {
  FuncEntry& e = validated(f);
  if (e.reaching) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
    e.reaching = std::make_unique<ReachingDefs>(f);
  }
  return *e.reaching;
}

const DefUseInfo& AnalysisManager::defUse(Function& f) {
  FuncEntry& e = validated(f);
  if (e.def_use) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
    e.def_use = std::make_unique<DefUseInfo>(f);
  }
  return *e.def_use;
}

const ValueRanges& AnalysisManager::valueRanges(Function& f) {
  FuncEntry& e = validated(f);
  if (e.ranges) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
    e.ranges = std::make_unique<ValueRanges>(f);
  }
  return *e.ranges;
}

void AnalysisManager::invalidate(Function& f) {
  auto it = funcs_.find(&f);
  if (it == funcs_.end()) return;
  if (it->second->hasAny()) ++stats_.invalidations;
  funcs_.erase(it);
}

void AnalysisManager::invalidateAll() {
  for (const auto& [fn, entry] : funcs_) {
    (void)fn;
    if (entry->hasAny()) ++stats_.invalidations;
  }
  funcs_.clear();
  boundary_.clear();
  boundary_recorded_ = false;
}

void AnalysisManager::recordBoundary(Module& m) {
  // reconcileBoundary re-arms the snapshot with the fingerprints it just
  // computed; between that reconcile and this record nothing in an
  // instrumented sequence touches the module, so the snapshot is current
  // and the rehash can be skipped. New sequences disarm first.
  if (boundary_recorded_) return;
  boundary_.clear();
  for (const auto& f : m.functions())
    boundary_.emplace(f.get(), fingerprintFunction(*f));
  boundary_data_hash_ = fingerprintModuleData(m);
  boundary_recorded_ = true;
}

BoundaryReport AnalysisManager::reconcileBoundary(
    Module& m, const PreservedAnalyses& declared, bool reported_changed,
    bool trust_validated) {
  BoundaryReport report;
  if (!boundary_recorded_) return report;
  ++stats_.contract_checks;

  // Reused scratch, swapped with boundary_ below: the two bucket arrays
  // recycle between passes, so the steady state allocates nothing here.
  thread_local std::unordered_map<const Function*, FunctionFingerprint> post;
  post.clear();
  for (const auto& f : m.functions()) {
    // Declarations are excluded from trust: the fast verifier never queries
    // them, so their stored fingerprint (if any) may predate this pass.
    const FunctionFingerprint* known =
        trust_validated && !f->isDeclaration() ? validatedFingerprint(*f)
                                               : nullptr;
    const FunctionFingerprint fp =
        known != nullptr ? *known : fingerprintFunction(*f);
    post.emplace(f.get(), fp);
    auto it = boundary_.find(f.get());
    if (it == boundary_.end()) {
      // Function added by the pass.
      report.ir_changed = true;
      report.cfg_changed = true;
      if (declared.preservesAny())
        report.violations.push_back(
            {f->name(), "pass declared analyses preserved but added function '" +
                            f->name() + "'"});
      continue;
    }
    if (fp == it->second) continue;
    report.ir_changed = true;
    const bool cfg_changed = fp.cfg != it->second.cfg;
    if (cfg_changed) report.cfg_changed = true;
    if (cfg_changed && declared.preservesCfgShape())
      report.violations.push_back(
          {f->name(),
           "pass declared CFG analyses preserved but changed the block "
           "graph of '" + f->name() + "'"});
    if (declared.preservesInstructionLevel())
      report.violations.push_back(
          {f->name(),
           "pass declared instruction-level analyses preserved but mutated "
           "the body of '" + f->name() + "'"});
  }

  // Functions removed by the pass (in the pre-pass snapshot but not the
  // just-built post map). Their cache entries are keyed by a now-dangling
  // pointer; erase without dereferencing.
  for (const auto& [fn, fp] : boundary_) {
    (void)fp;
    if (post.count(fn) != 0) continue;
    report.ir_changed = true;
    report.cfg_changed = true;
    auto it = funcs_.find(fn);
    if (it != funcs_.end()) {
      if (it->second->hasAny()) ++stats_.invalidations;
      funcs_.erase(it);
    }
    if (declared.preservesAny())
      report.violations.push_back(
          {"", "pass declared analyses preserved but removed a function"});
  }

  const std::uint64_t data_hash = fingerprintModuleData(m);
  if (data_hash != boundary_data_hash_) report.ir_changed = true;

  if (report.ir_changed && !reported_changed)
    report.violations.push_back(
        {"", "pass reported changed=false but the IR changed"});

  stats_.contract_violations += report.violations.size();

  // Re-arm: the post-pass state just fingerprinted is exactly the pre-pass
  // state of the next pass in this sequence, so the snapshot carries over
  // and the next recordBoundary is free.
  std::swap(boundary_, post);
  boundary_data_hash_ = data_hash;
  boundary_recorded_ = true;
  return report;
}

namespace {
thread_local AnalysisManager* g_current_manager = nullptr;
}  // namespace

AnalysisManager* AnalysisManager::current() { return g_current_manager; }

AnalysisManager& AnalysisManager::currentOr(AnalysisManager& fallback) {
  return g_current_manager != nullptr ? *g_current_manager : fallback;
}

AnalysisScope::AnalysisScope(AnalysisManager& m) : prev_(g_current_manager) {
  g_current_manager = &m;
}

AnalysisScope::~AnalysisScope() { g_current_manager = prev_; }

}  // namespace posetrl
