#pragma once

/// \file liveness.h
/// Backward live-variable analysis over SSA values (instruction results and
/// arguments). Classic iterative dataflow on the CFG: LiveOut(B) unions the
/// LiveIn of successors (minus their phi defs, plus the phi inputs flowing
/// along the B edge); LiveIn(B) = upward-exposed uses ∪ (LiveOut \ defs).
/// Used by the static feature extractor (register-pressure features) and as
/// a cached AnalysisManager analysis.

#include <cstddef>
#include <unordered_map>
#include <unordered_set>

namespace posetrl {

class BasicBlock;
class Function;
class Value;

class LivenessInfo {
 public:
  using ValueSet = std::unordered_set<const Value*>;

  explicit LivenessInfo(Function& f);

  /// Values live on entry to \p b (empty set for unknown blocks).
  const ValueSet& liveIn(const BasicBlock* b) const;
  /// Values live on exit from \p b.
  const ValueSet& liveOut(const BasicBlock* b) const;

  /// Maximum number of simultaneously live values at any program point
  /// (a static register-pressure proxy).
  std::size_t maxPressure() const { return max_pressure_; }
  /// Mean of per-block live-in sizes.
  double avgLiveIn() const { return avg_live_in_; }

 private:
  std::unordered_map<const BasicBlock*, ValueSet> live_in_;
  std::unordered_map<const BasicBlock*, ValueSet> live_out_;
  std::size_t max_pressure_ = 0;
  double avg_live_in_ = 0.0;
  static const ValueSet kEmpty;
};

}  // namespace posetrl
