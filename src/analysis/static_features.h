#pragma once

/// \file static_features.h
/// AutoPhase-style static feature vector: 40 cheap counts/ratios summarizing
/// a module's IR, backed by the cached analyses of an AnalysisManager
/// (liveness pressure, loop structure, def-use shape, reaching stores,
/// value-range tightness). Serves as an alternative observation space for
/// PhaseOrderEnv next to the IR2Vec-like flow embedding: 40 dims instead of
/// 300, no flow iterations, and fully incremental across untouched
/// functions.

#include <cstddef>
#include <vector>

namespace posetrl {

class AnalysisManager;
class Module;

constexpr std::size_t kStaticFeatureDim = 40;

/// Extracts the feature vector for \p m. Every component is log1p-squashed
/// so magnitudes stay comparable across module sizes (counts grow
/// logarithmically, ratios stay near their raw scale).
std::vector<double> extractStaticFeatures(Module& m, AnalysisManager& am);

/// Stable name of feature component \p i (for diagnostics and benchmarks).
const char* staticFeatureName(std::size_t i);

}  // namespace posetrl
