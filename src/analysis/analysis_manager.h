#pragma once

/// \file analysis_manager.h
/// Cached dataflow-analysis framework. An AnalysisManager memoizes the
/// per-function analyses (dominators, loop info, liveness, reaching
/// definitions, def-use summary, integer value ranges) behind content-hash
/// validation: every query rehashes the function (a single cheap FNV walk)
/// and rebuilds only when the IR actually changed, so a pass pipeline that
/// leaves a function untouched pays O(instrs) per query instead of a full
/// analysis reconstruction.
///
/// Passes declare which analyses they preserve (Pass::preserved); the
/// pass-boundary protocol (recordBoundary/reconcileBoundary) statically
/// diffs those declarations against the hash-observed mutation and flags
/// lying passes — the pass-contract checker that attributes verifier-clean
/// miscompiles (e.g. a silently rewritten constant) to the offending pass
/// without running the interpreter.
///
/// A thread-local AnalysisScope makes one manager ambient for a pipeline
/// run; pass bodies and block-frequency estimation query
/// AnalysisManager::current() and transparently fall back to a local
/// throwaway manager when no scope is installed (exactly the old
/// compute-from-scratch behaviour).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/dominators.h"
#include "analysis/loop_info.h"

namespace posetrl {

class Function;
class Module;
class LivenessInfo;
class ReachingDefs;
class DefUseInfo;
class ValueRanges;

/// The analyses the manager caches. CFG-level analyses (Dominators, Loops)
/// depend only on the block graph; instruction-level analyses (Liveness,
/// ReachingDefs, DefUse, ValueRanges) depend on every instruction.
enum class AnalysisKind : unsigned {
  Dominators = 0,
  Loops,
  Liveness,
  ReachingDefs,
  DefUse,
  ValueRanges,
};
constexpr std::size_t kNumAnalysisKinds = 6;
const char* analysisKindName(AnalysisKind kind);

/// Set of analyses a pass promises to keep valid. The default for every
/// pass is none() — a pass must opt in to each promise, and the contract
/// checker verifies promises against the observed IR delta.
class PreservedAnalyses {
 public:
  static PreservedAnalyses none() { return PreservedAnalyses(0); }
  static PreservedAnalyses all() {
    return PreservedAnalyses((1u << kNumAnalysisKinds) - 1);
  }
  /// The CFG-shape analyses only: correct for passes that rewrite
  /// instructions but never add/remove blocks or retarget branches.
  static PreservedAnalyses cfg() {
    return none().preserve(AnalysisKind::Dominators)
        .preserve(AnalysisKind::Loops);
  }

  PreservedAnalyses preserve(AnalysisKind kind) const {
    return PreservedAnalyses(bits_ | (1u << static_cast<unsigned>(kind)));
  }
  bool preserves(AnalysisKind kind) const {
    return (bits_ & (1u << static_cast<unsigned>(kind))) != 0;
  }
  bool preservesAny() const { return bits_ != 0; }
  bool preservesCfgShape() const {
    return preserves(AnalysisKind::Dominators) ||
           preserves(AnalysisKind::Loops);
  }
  bool preservesInstructionLevel() const {
    return preserves(AnalysisKind::Liveness) ||
           preserves(AnalysisKind::ReachingDefs) ||
           preserves(AnalysisKind::DefUse) ||
           preserves(AnalysisKind::ValueRanges);
  }

 private:
  explicit PreservedAnalyses(unsigned bits) : bits_(bits) {}
  unsigned bits_;
};

/// Structural content hashes of one function, split by what the cached
/// analyses depend on. Names are excluded (renames invalidate nothing);
/// function attributes are excluded (attribute-only passes are no-ops to
/// every dataflow analysis).
struct FunctionFingerprint {
  std::uint64_t cfg = 0;    ///< Block list + successor edges.
  std::uint64_t instrs = 0; ///< Everything: opcodes, operands, types,
                            ///< predicates, constants, block structure.
  bool operator==(const FunctionFingerprint& o) const {
    return cfg == o.cfg && instrs == o.instrs;
  }
};

/// Stable structural fingerprint of \p f (see FunctionFingerprint). When
/// \p aux_key is non-null, the same walk also hashes what the fingerprint
/// deliberately ignores but the fast verifier checks — per-value use-list
/// lengths and result-name presence — so the verifier's skip key costs no
/// second traversal.
FunctionFingerprint fingerprintFunction(const Function& f,
                                        std::uint64_t* aux_key = nullptr);
/// Fingerprint of module-level data: global variables and their
/// initializers (function bodies are covered per function).
std::uint64_t fingerprintModuleData(const Module& m);

/// Cache counters. hits/misses count analysis queries; validations counts
/// the hash walks spent confirming cached entries.
struct AnalysisCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t invalidations = 0;
  std::size_t contract_checks = 0;
  std::size_t contract_violations = 0;

  double hitRate() const {
    const std::size_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }

  /// Fold another environment's counters into this one (trainer aggregation).
  void accumulate(const AnalysisCacheStats& other) {
    hits += other.hits;
    misses += other.misses;
    invalidations += other.invalidations;
    contract_checks += other.contract_checks;
    contract_violations += other.contract_violations;
  }
};

/// One pass-contract violation observed at a pass boundary.
struct ContractViolation {
  std::string function;  ///< Function whose state broke the promise.
  std::string detail;    ///< Human-readable description.
};

/// Result of reconciling one pass boundary against the pass's declarations.
struct BoundaryReport {
  bool ir_changed = false;   ///< Any function or global data changed.
  bool cfg_changed = false;  ///< Any function's block graph changed.
  std::vector<ContractViolation> violations;

  bool clean() const { return violations.empty(); }
};

/// Per-function analysis cache with hash validation and the pass-contract
/// boundary protocol. Not thread-safe; owned by one pipeline/environment.
class AnalysisManager {
 public:
  AnalysisManager();
  ~AnalysisManager();
  AnalysisManager(const AnalysisManager&) = delete;
  AnalysisManager& operator=(const AnalysisManager&) = delete;

  // --- cached queries (rebuild only when the function's hash changed) ---
  const DominatorTree& dominators(Function& f);
  const LoopInfo& loopInfo(Function& f);
  const LivenessInfo& liveness(Function& f);
  const ReachingDefs& reachingDefs(Function& f);
  const DefUseInfo& defUse(Function& f);
  const ValueRanges& valueRanges(Function& f);

  /// Drops every cached analysis for \p f.
  void invalidate(Function& f);
  /// Drops all cached state (use when the underlying module is replaced,
  /// e.g. after a sandbox rollback swaps in the snapshot clone).
  void invalidateAll();

  const AnalysisCacheStats& stats() const { return stats_; }

  /// The fingerprint stored by the most recent query of \p f, or nullptr if
  /// \p f was never queried. Current only while nothing has mutated \p f
  /// since that query — callers that just issued a query (e.g. the fast
  /// verifier) use it to avoid a second hash walk.
  const FunctionFingerprint* validatedFingerprint(const Function& f) const;

  /// Installs \p fp as \p f's validated fingerprint exactly as a query
  /// would: a mismatch against the cached entry invalidates (two-level).
  /// For callers like the fast verifier that compute fingerprints in their
  /// own walk. \p fp must be \p f's actual current fingerprint.
  void noteFingerprint(Function& f, const FunctionFingerprint& fp);

  /// Freeze window: between beginFreeze and endFreeze the caller guarantees
  /// nothing mutates the IR, so each function is hash-validated at most once
  /// — later queries (and noteFingerprint stamps) are trusted without a
  /// rehash. PassInstrumentation freezes for the span of its post-pass
  /// checks, collapsing the verify/contract stages to one walk per function.
  void beginFreeze() { ++freeze_epoch_; frozen_ = true; }
  void endFreeze() { frozen_ = false; }

  // --- pass-boundary protocol (contract checker) ---
  /// Snapshots every function's fingerprint before a pass runs. When the
  /// boundary is already armed (reconcileBoundary re-arms it with the
  /// post-pass fingerprints it computed), this is a no-op: inside one
  /// instrumented sequence nothing runs between a reconcile and the next
  /// record, so the snapshot is already current. Callers starting a new
  /// sequence must disarmBoundary() first (PassInstrumentation does).
  void recordBoundary(Module& m);
  /// Drops the armed boundary snapshot; the next recordBoundary rehashes.
  void disarmBoundary() { boundary_recorded_ = false; }
  /// Diffs the post-pass fingerprints against the recorded snapshot,
  /// invalidates what actually changed, and reports declared-preserved
  /// analyses the pass broke plus changed=false lies. \p reported_changed
  /// is the pass's own run() return value. With \p trust_validated, reuses
  /// each function's last-query fingerprint instead of rehashing — only
  /// valid when every defined function was queried after the pass ran and
  /// before this call (the fast-verify stage guarantees exactly that).
  BoundaryReport reconcileBoundary(Module& m, const PreservedAnalyses& declared,
                                   bool reported_changed,
                                   bool trust_validated = false);

  /// The scope-installed ambient manager, or nullptr.
  static AnalysisManager* current();
  /// current() if a scope is installed, else \p fallback — the pattern pass
  /// bodies use so they work both inside managed pipelines and standalone.
  static AnalysisManager& currentOr(AnalysisManager& fallback);

 private:
  friend class AnalysisScope;

  struct FuncEntry;

  /// The entry for \p f, hash-validated: a stale entry is cleared (counted
  /// as invalidation) before being returned.
  FuncEntry& validated(Function& f);

  std::unordered_map<const Function*, std::unique_ptr<FuncEntry>> funcs_;
  /// Pre-pass snapshot for the boundary protocol.
  std::unordered_map<const Function*, FunctionFingerprint> boundary_;
  std::uint64_t boundary_data_hash_ = 0;
  bool boundary_recorded_ = false;
  std::uint64_t freeze_epoch_ = 0;
  bool frozen_ = false;
  AnalysisCacheStats stats_;
};

/// RAII freeze window (see AnalysisManager::beginFreeze).
class AnalysisFreezeScope {
 public:
  explicit AnalysisFreezeScope(AnalysisManager& m) : m_(m) { m.beginFreeze(); }
  ~AnalysisFreezeScope() { m_.endFreeze(); }
  AnalysisFreezeScope(const AnalysisFreezeScope&) = delete;
  AnalysisFreezeScope& operator=(const AnalysisFreezeScope&) = delete;

 private:
  AnalysisManager& m_;
};

/// RAII scope making \p m the thread-local ambient manager returned by
/// AnalysisManager::current(). Scopes nest (inner wins).
class AnalysisScope {
 public:
  explicit AnalysisScope(AnalysisManager& m);
  ~AnalysisScope();
  AnalysisScope(const AnalysisScope&) = delete;
  AnalysisScope& operator=(const AnalysisScope&) = delete;

 private:
  AnalysisManager* prev_;
};

}  // namespace posetrl
