#include "analysis/reaching_defs.h"

#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/global_variable.h"
#include "ir/instruction.h"

namespace posetrl {

const Value* ReachingDefs::baseObject(const Value* ptr) {
  while (const auto* gep = dynCast<GepInst>(ptr)) ptr = gep->base();
  if (isa<AllocaInst>(ptr) || isa<GlobalVariable>(ptr)) return ptr;
  return nullptr;  // Argument, load result, call result, phi/select, ...
}

namespace {

/// May the store \p s reach a load with base \p load_base? Unknown bases
/// alias everything.
bool mayAlias(const Value* store_base, const Value* load_base) {
  if (store_base == nullptr || load_base == nullptr) return true;
  return store_base == load_base;
}

}  // namespace

ReachingDefs::ReachingDefs(Function& f) {
  if (f.isDeclaration()) return;

  std::vector<const BasicBlock*> blocks;
  blocks.reserve(f.numBlocks());
  for (const auto& b : f.blocks()) {
    blocks.push_back(b.get());
    reach_in_[b.get()];
  }

  std::unordered_map<const Instruction*, const Value*> store_base;
  for (const auto& b : f.blocks())
    for (const auto& inst : b->insts())
      if (inst->opcode() == Opcode::Store) {
        ++store_count_;
        store_base[inst.get()] =
            baseObject(cast<StoreInst>(inst.get())->pointer());
      }

  // Block transfer: sequential, with strong updates when a store overwrites
  // the exact same pointer SSA value (the common pattern after mem2reg's
  // failure cases: repeated stores to one alloca).
  const auto transfer = [&](const BasicBlock* bb, StoreSet set,
                            bool record) {
    for (const auto& inst : bb->insts()) {
      if (inst->opcode() == Opcode::Load) {
        if (!record) continue;
        const Value* base =
            baseObject(cast<LoadInst>(inst.get())->pointer());
        std::vector<const Instruction*> reaching;
        for (const Instruction* s : set)
          if (base == nullptr || mayAlias(store_base[s], base))
            reaching.push_back(s);
        per_load_[inst.get()] = std::move(reaching);
      } else if (inst->opcode() == Opcode::Store) {
        const Value* ptr = cast<StoreInst>(inst.get())->pointer();
        for (auto it = set.begin(); it != set.end();)
          if (cast<StoreInst>(*it)->pointer() == ptr)
            it = set.erase(it);
          else
            ++it;
        set.insert(inst.get());
      }
    }
    return set;
  };

  // Forward may-reach union dataflow to fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const BasicBlock* bb : blocks) {
      StoreSet out = transfer(bb, reach_in_[bb], /*record=*/false);
      for (BasicBlock* s : bb->successors()) {
        StoreSet& in = reach_in_[s];
        const std::size_t before = in.size();
        in.insert(out.begin(), out.end());
        if (in.size() != before) changed = true;
      }
    }
  }

  // Final recording pass over the stable solution.
  for (const BasicBlock* bb : blocks)
    transfer(bb, reach_in_[bb], /*record=*/true);

  std::size_t reaching_total = 0;
  for (const auto& [load, stores] : per_load_) {
    (void)load;
    ++load_count_;
    reaching_total += stores.size();
    if (stores.size() == 1) ++single_reaching_loads_;
  }
  avg_reaching_per_load_ =
      load_count_ == 0 ? 0.0
                       : static_cast<double>(reaching_total) /
                             static_cast<double>(load_count_);
}

std::vector<const Instruction*> ReachingDefs::reachingStores(
    const Instruction* load) const {
  auto it = per_load_.find(load);
  return it == per_load_.end() ? std::vector<const Instruction*>{}
                               : it->second;
}

}  // namespace posetrl
