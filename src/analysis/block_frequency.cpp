#include "analysis/block_frequency.h"

#include <algorithm>
#include <map>

#include "analysis/analysis_manager.h"
#include "analysis/cfg.h"
#include "analysis/dominators.h"
#include "analysis/loop_info.h"
#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/instruction.h"

namespace posetrl {

namespace {

/// Estimated executions of a loop body per entry of the loop: the exact
/// trip count for counted loops with constant bounds (capped), otherwise
/// the static default. Trip-count awareness keeps the static throughput
/// model consistent with real execution when unrolling/vectorization
/// change the iteration structure.
double loopTripEstimate(Loop* loop, double fallback) {
  constexpr std::int64_t kSimLimit = 1 << 14;
  constexpr double kCap = 256.0;

  // Inline counted-loop matching (loop_utils lives in the passes layer;
  // the analysis layer re-derives the small amount it needs).
  BasicBlock* preheader = loop->preheader();
  BasicBlock* latch = loop->singleLatch();
  if (preheader == nullptr || latch == nullptr) return fallback;
  PhiInst* iv = nullptr;
  Instruction* iv_next = nullptr;
  std::int64_t step = 0;
  for (PhiInst* phi : loop->header()->phis()) {
    if (!phi->type()->isInteger() || phi->numIncoming() != 2) continue;
    const std::size_t latch_idx = phi->indexOfBlock(latch);
    const std::size_t ph_idx = phi->indexOfBlock(preheader);
    if (latch_idx == static_cast<std::size_t>(-1) ||
        ph_idx == static_cast<std::size_t>(-1)) {
      continue;
    }
    auto* next = dynCast<Instruction>(phi->incomingValue(latch_idx));
    if (next == nullptr || next->opcode() != Opcode::Add) continue;
    auto* step_c = dynCast<ConstantInt>(next->operand(1));
    if (step_c == nullptr || step_c->isZero() || next->operand(0) != phi) {
      continue;
    }
    auto* init_c = dynCast<ConstantInt>(phi->incomingValue(ph_idx));
    if (init_c == nullptr) continue;
    iv = phi;
    iv_next = next;
    step = step_c->value();
    // Find the exiting conditional branch in header or latch.
    for (BasicBlock* cand : {loop->header(), latch}) {
      auto* cbr = dynCast<CondBrInst>(cand->terminator());
      if (cbr == nullptr) continue;
      const bool then_in = loop->contains(cbr->thenBlock());
      const bool else_in = loop->contains(cbr->elseBlock());
      if (then_in == else_in) continue;
      auto* cmp = dynCast<ICmpInst>(cbr->condition());
      if (cmp == nullptr) continue;
      BasicBlock* exit_bb = then_in ? cbr->elseBlock() : cbr->thenBlock();
      // Simulate.
      const unsigned bits = iv->type()->intBits();
      std::int64_t ivv = init_c->value();
      for (std::int64_t k = 0; k < kSimLimit; ++k) {
        const std::int64_t nextv =
            ConstantInt::canonicalize(ivv + step, bits);
        bool ok = true;
        const auto operand_value = [&](const Value* v) -> std::int64_t {
          if (v == iv) return ivv;
          if (v == iv_next) return nextv;
          if (const auto* c = dynCast<ConstantInt>(v)) return c->value();
          ok = false;
          return 0;
        };
        const std::int64_t lhs = operand_value(cmp->lhs());
        const std::int64_t rhs = operand_value(cmp->rhs());
        if (!ok) break;
        const bool cv = ICmpInst::evaluate(cmp->pred(), lhs, rhs, bits);
        if ((cbr->thenBlock() == exit_bb) == cv) {
          return std::min(kCap, static_cast<double>(k + 1));
        }
        ivv = nextv;
      }
      return fallback;
    }
  }
  return fallback;
}

}  // namespace

BlockFrequency::BlockFrequency(Function& f, double assumed_trip_count) {
  if (f.isDeclaration()) return;
  AnalysisManager local_am;
  AnalysisManager& am = AnalysisManager::currentOr(local_am);
  const DominatorTree& dt = am.dominators(f);
  const LoopInfo& li = am.loopInfo(f);
  // Per-loop trip estimates (exact for constant-bound counted loops).
  std::map<Loop*, double> trips;
  for (Loop* loop : li.loopsInnermostFirst()) {
    trips[loop] = loopTripEstimate(loop, assumed_trip_count);
  }
  for (BasicBlock* b : dt.rpo()) {
    double w = 1.0;
    for (Loop* l = li.loopFor(b); l != nullptr; l = l->parent()) {
      w *= std::max(1.0, trips[l]);
    }
    freq_[b] = w;
  }
}

double BlockFrequency::frequency(BasicBlock* b) const {
  auto it = freq_.find(b);
  return it == freq_.end() ? 0.0 : it->second;
}

}  // namespace posetrl
