#include "analysis/loop_info.h"

#include <algorithm>

#include "analysis/cfg.h"
#include "analysis/dominators.h"
#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/instruction.h"

namespace posetrl {

unsigned Loop::depth() const {
  unsigned d = 1;
  for (const Loop* l = parent_; l != nullptr; l = l->parent_) ++d;
  return d;
}

std::vector<BasicBlock*> Loop::latches() const {
  std::vector<BasicBlock*> out;
  for (BasicBlock* p : header_->predecessors()) {
    if (contains(p)) out.push_back(p);
  }
  return out;
}

BasicBlock* Loop::singleLatch() const {
  const auto l = latches();
  return l.size() == 1 ? l[0] : nullptr;
}

std::vector<BasicBlock*> Loop::outsidePredecessors() const {
  std::vector<BasicBlock*> out;
  for (BasicBlock* p : header_->predecessors()) {
    if (!contains(p)) out.push_back(p);
  }
  return out;
}

BasicBlock* Loop::preheader() const {
  const auto outside = outsidePredecessors();
  if (outside.size() != 1) return nullptr;
  BasicBlock* cand = outside[0];
  // Must branch only to the header.
  const auto succs = cand->successors();
  if (succs.size() != 1 || succs[0] != header_) return nullptr;
  return cand;
}

std::vector<BasicBlock*> Loop::exitingBlocks() const {
  std::vector<BasicBlock*> out;
  for (BasicBlock* b : blocks_) {
    for (BasicBlock* s : b->successors()) {
      if (!contains(s)) {
        out.push_back(b);
        break;
      }
    }
  }
  return out;
}

std::vector<BasicBlock*> Loop::exitBlocks() const {
  std::vector<BasicBlock*> out;
  for (BasicBlock* b : blocks_) {
    for (BasicBlock* s : b->successors()) {
      if (!contains(s) &&
          std::find(out.begin(), out.end(), s) == out.end()) {
        out.push_back(s);
      }
    }
  }
  return out;
}

bool Loop::hasDedicatedExits() const {
  for (BasicBlock* e : exitBlocks()) {
    for (BasicBlock* p : e->predecessors()) {
      if (!contains(p)) return false;
    }
  }
  return true;
}

std::size_t Loop::instructionCount() const {
  std::size_t n = 0;
  for (BasicBlock* b : blocks_) n += b->size();
  return n;
}

LoopInfo::LoopInfo(Function& f, const DominatorTree& dt) {
  if (f.isDeclaration()) return;
  // Find back edges: tail -> header where header dominates tail.
  // Discover headers in RPO so outer loops are created before inner ones
  // when headers differ; same-header back edges merge into one loop.
  std::map<BasicBlock*, Loop*> header_loop;
  for (BasicBlock* tail : dt.rpo()) {
    for (BasicBlock* succ : tail->successors()) {
      if (!dt.dominates(succ, tail)) continue;
      BasicBlock* header = succ;
      Loop* loop = nullptr;
      auto it = header_loop.find(header);
      if (it != header_loop.end()) {
        loop = it->second;
      } else {
        loops_.push_back(std::make_unique<Loop>());
        loop = loops_.back().get();
        loop->header_ = header;
        loop->blocks_.insert(header);
        header_loop[header] = loop;
      }
      // Walk backwards from the tail collecting the loop body.
      std::vector<BasicBlock*> stack{tail};
      while (!stack.empty()) {
        BasicBlock* b = stack.back();
        stack.pop_back();
        if (!dt.isReachable(b)) continue;
        if (loop->blocks_.insert(b).second) {
          for (BasicBlock* p : b->predecessors()) stack.push_back(p);
        }
      }
    }
  }

  // Establish nesting: loop A is a child of the smallest loop strictly
  // containing A's header (other than A itself).
  for (auto& a : loops_) {
    Loop* best = nullptr;
    for (auto& b : loops_) {
      if (a.get() == b.get()) continue;
      if (!b->contains(a->header_)) continue;
      if (best == nullptr || best->blocks_.size() > b->blocks_.size()) {
        best = b.get();
      }
    }
    a->parent_ = best;
    if (best != nullptr) {
      best->sub_loops_.push_back(a.get());
    } else {
      top_level_.push_back(a.get());
    }
  }

  // Innermost loop per block: smallest containing loop.
  for (auto& l : loops_) {
    for (BasicBlock* b : l->blocks_) {
      auto it = innermost_.find(b);
      if (it == innermost_.end() ||
          it->second->blocks_.size() > l->blocks_.size()) {
        innermost_[b] = l.get();
      }
    }
  }
}

Loop* LoopInfo::loopFor(BasicBlock* b) const {
  auto it = innermost_.find(b);
  return it == innermost_.end() ? nullptr : it->second;
}

unsigned LoopInfo::loopDepth(BasicBlock* b) const {
  Loop* l = loopFor(b);
  return l == nullptr ? 0 : l->depth();
}

std::vector<Loop*> LoopInfo::loopsInnermostFirst() const {
  std::vector<Loop*> out;
  for (const auto& l : loops_) out.push_back(l.get());
  std::sort(out.begin(), out.end(), [](const Loop* a, const Loop* b) {
    return a->depth() > b->depth();
  });
  return out;
}

}  // namespace posetrl
