#include "analysis/liveness.h"

#include <vector>

#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/instruction.h"

namespace posetrl {

namespace {

/// SSA values liveness tracks: instruction results and arguments. Constants,
/// globals and block labels are always available and never occupy registers.
bool isTracked(const Value* v) {
  return v != nullptr && (v->kind() == Value::Kind::Instruction ||
                          v->kind() == Value::Kind::Argument);
}

}  // namespace

const LivenessInfo::ValueSet LivenessInfo::kEmpty;

LivenessInfo::LivenessInfo(Function& f) {
  if (f.isDeclaration()) return;

  std::vector<const BasicBlock*> blocks;
  blocks.reserve(f.numBlocks());
  std::unordered_map<const BasicBlock*, ValueSet> ue_var;  // Upward-exposed.
  std::unordered_map<const BasicBlock*, ValueSet> defs;
  for (const auto& b : f.blocks()) {
    const BasicBlock* bb = b.get();
    blocks.push_back(bb);
    ValueSet& ue = ue_var[bb];
    ValueSet& def = defs[bb];
    for (const auto& inst : b->insts()) {
      // Phi operands are uses on the incoming edge, not in this block.
      if (inst->opcode() != Opcode::Phi) {
        for (const Value* op : inst->operands())
          if (isTracked(op) && def.count(op) == 0) ue.insert(op);
      }
      if (!inst->type()->isVoid()) def.insert(inst.get());
    }
    live_in_[bb];  // Materialize so liveIn() lookups stay stable.
    live_out_[bb];
  }

  // Backward union dataflow to fixpoint. Iterating blocks in reverse layout
  // order converges in a handful of rounds on reducible CFGs.
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it = blocks.rbegin(); it != blocks.rend(); ++it) {
      const BasicBlock* bb = *it;
      ValueSet out;
      for (BasicBlock* s : bb->successors()) {
        const ValueSet& sin = live_in_[s];
        out.insert(sin.begin(), sin.end());
        for (const PhiInst* phi : s->phis()) {
          const Value* v =
              phi->incomingForBlock(const_cast<BasicBlock*>(bb));
          if (isTracked(v)) out.insert(v);
        }
      }
      ValueSet in = ue_var[bb];
      const ValueSet& def = defs[bb];
      for (const Value* v : out)
        if (def.count(v) == 0) in.insert(v);
      if (out.size() != live_out_[bb].size() ||
          in.size() != live_in_[bb].size()) {
        changed = true;
      }
      live_out_[bb] = std::move(out);
      live_in_[bb] = std::move(in);
    }
  }

  // Pressure: walk each block backward from its live-out set.
  std::size_t live_in_total = 0;
  for (const BasicBlock* bb : blocks) {
    ValueSet live = live_out_[bb];
    max_pressure_ = std::max(max_pressure_, live.size());
    const auto& insts = bb->insts();
    for (auto it = insts.rbegin(); it != insts.rend(); ++it) {
      const Instruction* inst = it->get();
      live.erase(inst);
      if (inst->opcode() != Opcode::Phi) {
        for (const Value* op : inst->operands())
          if (isTracked(op)) live.insert(op);
      }
      max_pressure_ = std::max(max_pressure_, live.size());
    }
    live_in_total += live_in_[bb].size();
  }
  avg_live_in_ = blocks.empty()
                     ? 0.0
                     : static_cast<double>(live_in_total) /
                           static_cast<double>(blocks.size());
}

const LivenessInfo::ValueSet& LivenessInfo::liveIn(const BasicBlock* b) const {
  auto it = live_in_.find(b);
  return it == live_in_.end() ? kEmpty : it->second;
}

const LivenessInfo::ValueSet& LivenessInfo::liveOut(
    const BasicBlock* b) const {
  auto it = live_out_.find(b);
  return it == live_out_.end() ? kEmpty : it->second;
}

}  // namespace posetrl
