#include "analysis/dominators.h"

#include "analysis/cfg.h"
#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/instruction.h"
#include "support/error.h"

namespace posetrl {

const std::vector<BasicBlock*> DominatorTree::kEmptyChildren;
const std::set<BasicBlock*> DominatorTree::kEmptyFrontier;

DominatorTree::DominatorTree(Function& f) : function_(f) {
  rpo_ = reversePostOrder(f);
  for (std::size_t i = 0; i < rpo_.size(); ++i) rpo_index_[rpo_[i]] = i;
  if (rpo_.empty()) return;

  BasicBlock* entry = rpo_.front();
  idom_[entry] = nullptr;

  // Cooper–Harvey–Kennedy "engineered" iterative algorithm.
  const auto intersect = [&](BasicBlock* a, BasicBlock* b) {
    while (a != b) {
      while (rpo_index_.at(a) > rpo_index_.at(b)) a = idom_.at(a);
      while (rpo_index_.at(b) > rpo_index_.at(a)) b = idom_.at(b);
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 1; i < rpo_.size(); ++i) {
      BasicBlock* b = rpo_[i];
      BasicBlock* new_idom = nullptr;
      for (BasicBlock* p : b->predecessors()) {
        if (!rpo_index_.count(p)) continue;  // Unreachable predecessor.
        if (!idom_.count(p)) continue;       // Not processed yet.
        if (new_idom == nullptr) {
          new_idom = p;
        } else {
          new_idom = intersect(p, new_idom);
        }
      }
      POSETRL_CHECK(new_idom != nullptr,
                    "reachable block without processed predecessor");
      auto it = idom_.find(b);
      if (it == idom_.end() || it->second != new_idom) {
        idom_[b] = new_idom;
        changed = true;
      }
    }
  }

  for (BasicBlock* b : rpo_) {
    if (BasicBlock* d = idom_.at(b)) children_[d].push_back(b);
  }

  // Dominance frontiers (Cooper–Harvey–Kennedy).
  for (BasicBlock* b : rpo_) {
    const auto preds = b->predecessors();
    std::size_t reachable_preds = 0;
    for (BasicBlock* p : preds) {
      if (rpo_index_.count(p)) ++reachable_preds;
    }
    if (reachable_preds < 2) continue;
    for (BasicBlock* p : preds) {
      if (!rpo_index_.count(p)) continue;
      BasicBlock* runner = p;
      while (runner != idom_.at(b)) {
        frontier_[runner].insert(b);
        runner = idom_.at(runner);
      }
    }
  }
}

BasicBlock* DominatorTree::idom(BasicBlock* b) const {
  auto it = idom_.find(b);
  return it == idom_.end() ? nullptr : it->second;
}

bool DominatorTree::dominates(BasicBlock* a, BasicBlock* b) const {
  if (a == b) return true;
  if (!rpo_index_.count(a) || !rpo_index_.count(b)) return false;
  const std::size_t limit = rpo_index_.at(a);
  BasicBlock* runner = b;
  while (runner != nullptr && rpo_index_.at(runner) > limit) {
    runner = idom_.at(runner);
  }
  return runner == a;
}

bool DominatorTree::dominatesUse(const Instruction* def,
                                 const Instruction* user) const {
  auto* def_bb = def->parent();
  auto* use_bb = user->parent();
  if (user->opcode() == Opcode::Phi) {
    const auto* phi = static_cast<const PhiInst*>(user);
    // The def must dominate every incoming edge that carries it.
    for (std::size_t i = 0; i < phi->numIncoming(); ++i) {
      if (phi->incomingValue(i) != def) continue;
      if (!dominates(def_bb, phi->incomingBlock(i))) return false;
    }
    return true;
  }
  if (def_bb == use_bb) {
    for (const auto& inst : def_bb->insts()) {
      if (inst.get() == def) return true;
      if (inst.get() == user) return false;
    }
    POSETRL_UNREACHABLE("instructions not found in their block");
  }
  return dominates(def_bb, use_bb);
}

const std::vector<BasicBlock*>& DominatorTree::children(BasicBlock* b) const {
  auto it = children_.find(b);
  return it == children_.end() ? kEmptyChildren : it->second;
}

const std::set<BasicBlock*>& DominatorTree::frontier(BasicBlock* b) const {
  auto it = frontier_.find(b);
  return it == frontier_.end() ? kEmptyFrontier : it->second;
}

}  // namespace posetrl
