#pragma once

/// \file reaching_defs.h
/// Reaching definitions over memory: which stores may reach each load.
/// MiniIR registers are SSA (a register's reaching definition is trivially
/// its unique def), so the interesting dataflow is through memory. Each
/// store defines the base object its pointer traces to (alloca, global, or
/// an unknown escape bucket); forward may-reach union dataflow propagates
/// the live store sets block to block.

#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace posetrl {

class BasicBlock;
class Function;
class Instruction;
class Value;

class ReachingDefs {
 public:
  explicit ReachingDefs(Function& f);

  /// Traces \p ptr through GEPs to its base object; nullptr when the base
  /// is statically unknown (loads through it may see any escaped store).
  static const Value* baseObject(const Value* ptr);

  /// Stores that may reach \p load (same base object, or unknown-base
  /// stores which may alias anything). Empty means the load reads its
  /// base's initial contents only.
  std::vector<const Instruction*> reachingStores(const Instruction* load) const;

  /// Number of loads whose value comes from exactly one reaching store
  /// (forwarding candidates — a measure of how much mem2reg/DSE fuel the
  /// function still holds).
  std::size_t singleReachingLoads() const { return single_reaching_loads_; }
  std::size_t loadCount() const { return load_count_; }
  std::size_t storeCount() const { return store_count_; }
  /// Mean reaching-store count per load.
  double avgReachingPerLoad() const { return avg_reaching_per_load_; }

 private:
  using StoreSet = std::unordered_set<const Instruction*>;

  std::unordered_map<const BasicBlock*, StoreSet> reach_in_;
  std::unordered_map<const Instruction*, std::vector<const Instruction*>>
      per_load_;
  std::size_t single_reaching_loads_ = 0;
  std::size_t load_count_ = 0;
  std::size_t store_count_ = 0;
  double avg_reaching_per_load_ = 0.0;
};

}  // namespace posetrl
