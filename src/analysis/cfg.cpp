#include "analysis/cfg.h"

#include <algorithm>

#include "ir/basic_block.h"
#include "ir/function.h"

namespace posetrl {

std::vector<BasicBlock*> reachableBlocks(Function& f) {
  std::vector<BasicBlock*> order;
  if (f.isDeclaration()) return order;
  std::set<BasicBlock*> seen;
  std::vector<BasicBlock*> stack{f.entry()};
  seen.insert(f.entry());
  while (!stack.empty()) {
    BasicBlock* bb = stack.back();
    stack.pop_back();
    order.push_back(bb);
    for (BasicBlock* s : bb->successors()) {
      if (seen.insert(s).second) stack.push_back(s);
    }
  }
  return order;
}

std::vector<BasicBlock*> postOrder(Function& f) {
  std::vector<BasicBlock*> order;
  if (f.isDeclaration()) return order;
  std::set<BasicBlock*> seen;
  // Iterative post-order DFS.
  struct Frame {
    BasicBlock* block;
    std::vector<BasicBlock*> succs;
    std::size_t next = 0;
  };
  std::vector<Frame> stack;
  stack.push_back({f.entry(), f.entry()->successors()});
  seen.insert(f.entry());
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next < top.succs.size()) {
      BasicBlock* s = top.succs[top.next++];
      if (seen.insert(s).second) {
        stack.push_back({s, s->successors()});
      }
    } else {
      order.push_back(top.block);
      stack.pop_back();
    }
  }
  return order;
}

std::vector<BasicBlock*> reversePostOrder(Function& f) {
  std::vector<BasicBlock*> order = postOrder(f);
  std::reverse(order.begin(), order.end());
  return order;
}

}  // namespace posetrl
