#pragma once

/// \file call_graph.h
/// Direct call graph with bottom-up (callee-first) traversal order. Used by
/// the inliner, functionattrs/rpo-functionattrs, deadargelim and globaldce.

#include <map>
#include <set>
#include <vector>

namespace posetrl {

class Function;
class Module;

/// Direct (non-indirect) call graph over a module.
class CallGraph {
 public:
  explicit CallGraph(Module& m);

  const std::set<Function*>& callees(Function* f) const;
  const std::set<Function*>& callers(Function* f) const;

  /// True when \p f's address escapes (stored in a global initializer or
  /// used as a non-callee operand), so unknown callers must be assumed.
  bool addressTaken(Function* f) const { return address_taken_.count(f) > 0; }

  /// Whether \p f contains any indirect call (callee unknown).
  bool hasIndirectCalls(Function* f) const {
    return has_indirect_.count(f) > 0;
  }

  /// Functions ordered callees-first; members of call cycles appear in an
  /// arbitrary order relative to each other.
  std::vector<Function*> bottomUpOrder() const;

 private:
  std::map<Function*, std::set<Function*>> callees_;
  std::map<Function*, std::set<Function*>> callers_;
  std::set<Function*> address_taken_;
  std::set<Function*> has_indirect_;
  std::vector<Function*> functions_;
  static const std::set<Function*> kEmpty;
};

}  // namespace posetrl
