#include "embed/embed_cache.h"

#include "ir/structural_hash.h"
#include "support/error.h"

namespace posetrl {

EmbedCache::EmbedCache(EmbedCacheConfig config) : config_(config) {
  POSETRL_CHECK(config_.capacity > 0, "embed cache capacity must be positive");
}

std::uint64_t EmbedCache::moduleHash(const Module& m) {
  return moduleContentHash(m);
}

const Embedding& EmbedCache::embed(const Module& m, const Embedder& embedder) {
  return embedWith(m,
                   [&](const Module& mm) { return embedder.embedProgram(mm); });
}

const Embedding& EmbedCache::embedKeyed(std::uint64_t key, const Module& m,
                                        const Embedder& embedder) {
  return embedWithKeyed(
      key, m, [&](const Module& mm) { return embedder.embedProgram(mm); });
}

const Embedding* EmbedCache::lookup(std::uint64_t key) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // mark most recent
  return &it->second->second;
}

const Embedding& EmbedCache::insert(std::uint64_t key, Embedding value) {
  lru_.emplace_front(key, std::move(value));
  index_[key] = lru_.begin();
  if (lru_.size() > config_.capacity) {
    ++stats_.evictions;
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
  return lru_.front().second;
}

void EmbedCache::clear() {
  lru_.clear();
  index_.clear();
}

}  // namespace posetrl
