#pragma once

/// \file embedder.h
/// IR2Vec-style program embeddings (the RL state representation). Mirrors
/// the published IR2Vec structure: a seed vocabulary assigns each
/// fundamental IR entity (opcode, type, operand kind) a deterministic
/// d-dimensional vector; instruction embeddings combine opcode/type/operand
/// vectors with fixed weights; a flow-aware refinement mixes in use-def
/// producers; function and program embeddings aggregate upwards. Programs
/// are represented as 300-dimensional vectors, as in the paper.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace posetrl {

class Module;
class Function;
class Instruction;
class Value;

/// Configuration of the embedding space.
struct EmbeddingConfig {
  int dim = 300;
  std::uint64_t vocab_seed = 0x49523256;  // "IR2V"
  double weight_opcode = 1.0;
  double weight_type = 0.5;
  double weight_operand = 0.2;
  /// Flow refinement: how much of the producers' embeddings flows into a
  /// consumer, and how many propagation rounds run.
  double flow_rate = 0.2;
  int flow_rounds = 2;
};

using Embedding = std::vector<double>;

/// Computes deterministic, flow-aware embeddings of MiniIR entities.
class Embedder {
 public:
  explicit Embedder(EmbeddingConfig config = {});

  const EmbeddingConfig& config() const { return config_; }

  /// Seed vector of a named vocabulary entity (stable across runs).
  Embedding entityVector(const std::string& entity) const;

  /// Symbolic (non-flow) embedding of one instruction.
  Embedding embedInstruction(const Instruction& inst) const;

  /// Flow-aware embedding of a function (sum over refined instructions).
  Embedding embedFunction(const Function& f) const;

  /// Program-level embedding: the RL observation/state vector.
  Embedding embedProgram(const Module& m) const;

 private:
  void accumulate(Embedding& into, const Embedding& from,
                  double scale) const;
  /// Operand-kind vocabulary key for a value.
  static const char* operandKind(const Value& v);
  /// Memoized entityVector — the vocabulary is tiny (opcodes, types,
  /// operand kinds) while programs are large, so caching removes the
  /// dominant cost of embedding computation.
  const Embedding& cachedEntity(const std::string& entity) const;

  EmbeddingConfig config_;
  mutable std::map<std::string, Embedding> entity_cache_;
};

}  // namespace posetrl
