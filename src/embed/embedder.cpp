#include "embed/embedder.h"

#include <cmath>
#include <map>
#include <string>

#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/global_variable.h"
#include "ir/instruction.h"
#include "ir/module.h"
#include "support/hashing.h"
#include "support/rng.h"

namespace posetrl {

Embedder::Embedder(EmbeddingConfig config) : config_(config) {}

Embedding Embedder::entityVector(const std::string& entity) const {
  // Seeded by a stable hash of the entity name: the "vocabulary" needs no
  // training run to exist (IR2Vec's seed vocabulary plays the same role).
  Rng rng(fnv1a(entity) ^ config_.vocab_seed);
  Embedding v(static_cast<std::size_t>(config_.dim));
  const double scale = 1.0 / std::sqrt(static_cast<double>(config_.dim));
  for (double& x : v) x = rng.nextGaussian() * scale;
  return v;
}

const Embedding& Embedder::cachedEntity(const std::string& entity) const {
  auto it = entity_cache_.find(entity);
  if (it != entity_cache_.end()) return it->second;
  return entity_cache_.emplace(entity, entityVector(entity)).first->second;
}

void Embedder::accumulate(Embedding& into, const Embedding& from,
                          double scale) const {
  for (std::size_t i = 0; i < into.size(); ++i) into[i] += scale * from[i];
}

const char* Embedder::operandKind(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::ConstantInt:
    case Value::Kind::ConstantFloat:
    case Value::Kind::ConstantNull:
    case Value::Kind::Undef:
      return "operand:const";
    case Value::Kind::Argument:
      return "operand:arg";
    case Value::Kind::BasicBlock:
      return "operand:label";
    case Value::Kind::GlobalVariable:
      return "operand:global";
    case Value::Kind::Function:
      return "operand:function";
    case Value::Kind::Instruction:
      return "operand:var";
  }
  return "operand:var";
}

Embedding Embedder::embedInstruction(const Instruction& inst) const {
  Embedding v(static_cast<std::size_t>(config_.dim), 0.0);
  std::string op_entity = std::string("opcode:") + opcodeName(inst.opcode());
  if (inst.opcode() == Opcode::ICmp) {
    op_entity += ":";
    op_entity += ICmpInst::predName(static_cast<const ICmpInst&>(inst).pred());
  }
  accumulate(v, cachedEntity(op_entity), config_.weight_opcode);
  accumulate(v, cachedEntity("type:" + inst.type()->str()),
             config_.weight_type);
  for (const Value* operand : inst.operands()) {
    accumulate(v, cachedEntity(operandKind(*operand)),
               config_.weight_operand);
  }
  if (inst.vectorWidth() > 1) {
    accumulate(v, cachedEntity("attr:vector"), config_.weight_type);
  }
  return v;
}

Embedding Embedder::embedFunction(const Function& f) const {
  const std::size_t dim = static_cast<std::size_t>(config_.dim);
  // Symbolic vectors first.
  std::map<const Instruction*, Embedding> vec;
  for (const auto& bb : f.blocks()) {
    for (const auto& inst : bb->insts()) {
      vec[inst.get()] = embedInstruction(*inst);
    }
  }
  // Flow-aware refinement along use-def edges: each instruction absorbs a
  // fraction of its producers' embeddings (reaching-definition flavour).
  for (int round = 0; round < config_.flow_rounds; ++round) {
    std::map<const Instruction*, Embedding> next = vec;
    for (auto& [inst, v] : next) {
      std::size_t producers = 0;
      for (const Value* op : inst->operands()) {
        if (isa<Instruction>(op)) ++producers;
      }
      if (producers == 0) continue;
      const double share = config_.flow_rate / static_cast<double>(producers);
      for (const Value* op : inst->operands()) {
        const auto* def = dynCast<Instruction>(op);
        if (def == nullptr) continue;
        auto it = vec.find(def);
        if (it != vec.end()) accumulate(v, it->second, share);
      }
    }
    vec = std::move(next);
  }
  // Sum in deterministic (block/instruction) order: map iteration order is
  // pointer-based and would make the floating-point sum run-dependent.
  Embedding out(dim, 0.0);
  for (const auto& bb : f.blocks()) {
    for (const auto& inst : bb->insts()) {
      accumulate(out, vec.at(inst.get()), 1.0);
    }
  }
  return out;
}

Embedding Embedder::embedProgram(const Module& m) const {
  Embedding out(static_cast<std::size_t>(config_.dim), 0.0);
  for (const auto& f : m.functions()) {
    if (f->isDeclaration()) continue;
    accumulate(out, embedFunction(*f), 1.0);
  }
  // Globals contribute a light data-shape signal.
  for (const auto& g : m.globals()) {
    accumulate(out, cachedEntity("global:" + g->valueType()->str()), 0.25);
  }
  // Normalize magnitude so programs of very different sizes stay in a
  // comparable numeric range for the Q-network.
  double norm = 0.0;
  for (double x : out) norm += x * x;
  norm = std::sqrt(norm);
  if (norm > 1e-9) {
    const double scale = std::log1p(norm) / norm;
    for (double& x : out) x *= scale;
  }
  return out;
}

}  // namespace posetrl
