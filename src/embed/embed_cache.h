#pragma once

/// \file embed_cache.h
/// Content-hash cache in front of Embedder::embedProgram. Computing the
/// 300-dim program embedding walks every instruction through several flow
/// rounds and dominates PhaseOrderEnv::step; but many steps leave the
/// module textually unchanged — no-op sub-sequences on already-clean IR,
/// sandbox rollbacks after contained faults, and every reset() back to the
/// pristine clone. Those repeats hash to a previously embedded state and
/// skip embedProgram entirely.
///
/// Keying: the structural content hash (ir/structural_hash.h), a single
/// allocation-free walk covering everything the printer serializes — two
/// modules that print identically embed identically, and hash identically.
/// Collisions require two *different* contents sharing a 64-bit hash —
/// negligible against the few thousand states one environment visits.
/// Callers that can prove the module unchanged since the last key (the
/// environment's content-stamp memo) can skip even that walk via the
/// *Keyed entry points, making repeat lookups O(1).

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

#include "embed/embedder.h"

namespace posetrl {

class Module;

struct EmbedCacheConfig {
  /// Retained embeddings (LRU eviction). An episode revisits at most a few
  /// dozen states, and one 300-dim embedding is 2.4 KB, so small is plenty.
  std::size_t capacity = 64;
};

struct EmbedCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;
};

/// LRU cache of program embeddings, keyed by module content hash. Owned by
/// one PhaseOrderEnv (and thus one rollout actor at a time) — not
/// internally synchronized.
class EmbedCache {
 public:
  explicit EmbedCache(EmbedCacheConfig config = {});

  /// Stable content hash of \p m (structural walk; never prints).
  static std::uint64_t moduleHash(const Module& m);

  /// embedProgram(m) through the cache. The returned reference stays valid
  /// until the entry is evicted or clear() is called.
  const Embedding& embed(const Module& m, const Embedder& embedder);

  /// Like embed(), but with a caller-provided key (must equal
  /// moduleHash(m); typically served from a content-stamp memo).
  const Embedding& embedKeyed(std::uint64_t key, const Module& m,
                              const Embedder& embedder);

  /// Generic variant: any deterministic state extractor (e.g. the static
  /// feature vector, analysis/static_features.h) can sit behind the same
  /// content-hash LRU. \p compute runs only on a miss. One cache instance
  /// must serve a single extractor — keys are module hashes, not
  /// (module, extractor) pairs.
  template <typename Compute>
  const Embedding& embedWith(const Module& m, Compute&& compute) {
    return embedWithKeyed(moduleHash(m), m, std::forward<Compute>(compute));
  }

  /// Keyed variant of embedWith (same key contract as embedKeyed).
  template <typename Compute>
  const Embedding& embedWithKeyed(std::uint64_t key, const Module& m,
                                  Compute&& compute) {
    if (const Embedding* hit = lookup(key)) return *hit;
    return insert(key, compute(m));
  }

  const EmbedCacheStats& stats() const { return stats_; }
  std::size_t size() const { return lru_.size(); }
  void clear();

 private:
  using Entry = std::pair<std::uint64_t, Embedding>;

  /// Cache probe: returns the entry (marked most-recent) or nullptr.
  const Embedding* lookup(std::uint64_t key);
  /// Inserts a freshly computed value, evicting the LRU tail if needed.
  const Embedding& insert(std::uint64_t key, Embedding value);

  EmbedCacheConfig config_;
  EmbedCacheStats stats_;
  std::list<Entry> lru_;  ///< Front = most recently used.
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
};

}  // namespace posetrl
