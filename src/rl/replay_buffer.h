#pragma once

/// \file replay_buffer.h
/// Experience replay memory for the DQN agent (Section V-A of the paper:
/// random batches are sampled from the replay memory every µ steps).

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "support/rng.h"

namespace posetrl {

/// One transition (s, a, r, s', done). When `use_mc` is set, `mc_return`
/// carries the full discounted return observed from this state to the end
/// of its episode (Monte-Carlo target) — a sample-efficient alternative to
/// bootstrapped TD targets in deterministic environments.
struct Transition {
  std::vector<double> state;
  std::size_t action = 0;
  double reward = 0.0;
  std::vector<double> next_state;
  bool done = false;
  double mc_return = 0.0;
  bool use_mc = false;
};

/// Fixed-capacity ring buffer with uniform random sampling.
class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity) : capacity_(capacity) {}

  void push(Transition t);
  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Samples \p n transitions uniformly with replacement.
  std::vector<const Transition*> sample(std::size_t n, Rng& rng) const;

  /// Serializes the full buffer (contents and ring cursor) for crash-safe
  /// trainer checkpoints. load() requires a matching capacity.
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::vector<Transition> items_;
};

}  // namespace posetrl
