#pragma once

/// \file replay_buffer.h
/// Experience replay memory for the DQN agent (Section V-A of the paper:
/// random batches are sampled from the replay memory every µ steps).

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <vector>

#include "support/rng.h"

namespace posetrl {

/// One transition (s, a, r, s', done). When `use_mc` is set, `mc_return`
/// carries the full discounted return observed from this state to the end
/// of its episode (Monte-Carlo target) — a sample-efficient alternative to
/// bootstrapped TD targets in deterministic environments.
struct Transition {
  std::vector<double> state;
  std::size_t action = 0;
  double reward = 0.0;
  std::vector<double> next_state;
  bool done = false;
  double mc_return = 0.0;
  bool use_mc = false;
};

/// Walks \p episode backwards attaching discounted reward-to-go returns
/// (Monte-Carlo targets): mc_return[i] = reward[i] + gamma * mc_return[i+1],
/// and sets use_mc on every transition. Shared by the sequential trainer,
/// the parallel actor–learner, and the online serving ingest path so all
/// three produce identical replay payloads for identical episodes.
void annotateMonteCarloReturns(std::vector<Transition>& episode, double gamma);

/// Fixed-capacity ring buffer with uniform random sampling.
class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity) : capacity_(capacity) {}

  void push(Transition t);
  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// The \p i-th stored transition (storage order, not insertion order).
  const Transition& at(std::size_t i) const;

  /// Samples \p n transitions uniformly with replacement. Raises a
  /// recoverable FatalError when the buffer is empty (callers gate on the
  /// warmup threshold, so an empty sample is a caller bug worth containing,
  /// not worth aborting a long training run for).
  std::vector<const Transition*> sample(std::size_t n, Rng& rng) const;

  /// Serializes the full buffer (contents and ring cursor) for crash-safe
  /// trainer checkpoints. load() raises FatalError on a header/capacity
  /// mismatch or a truncated payload.
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::vector<Transition> items_;
};

/// Replay memory for the parallel actor–learner trainer: K independently
/// mutex-guarded ReplayBuffer shards. Each rollout actor owns one shard
/// (shard = actor index) and appends its finished episodes under that
/// shard's lock only, so actors never contend with each other.
///
/// Determinism contract: sample() maps draws onto (shard, slot) via shard
/// prefix sums, so given identical shard contents it returns identical
/// transitions regardless of how thread scheduling interleaved the pushes
/// that produced those contents. The learner must only call sample() at a
/// sync point (no concurrent pushEpisode), both for that contract and
/// because returned pointers are invalidated by later ring overwrites.
class ShardedReplayBuffer {
 public:
  ShardedReplayBuffer(std::size_t num_shards, std::size_t shard_capacity);

  std::size_t numShards() const { return shards_.size(); }
  std::size_t shardCapacity() const { return shard_capacity_; }
  std::size_t shardSize(std::size_t shard) const;
  /// Total transitions held, summed across shards.
  std::size_t size() const;

  /// Appends \p episode to \p shard in order, under that shard's lock.
  void pushEpisode(std::size_t shard, std::vector<Transition> episode);

  /// Read access to one shard's underlying buffer (e.g. to serialize it for
  /// a recovery-equivalence check). Sync points only, like sample().
  const ReplayBuffer& shard(std::size_t i) const;

  /// Samples \p n transitions uniformly with replacement across all
  /// shards. Sync points only — see the class comment. Raises FatalError
  /// when every shard is empty.
  std::vector<const Transition*> sample(std::size_t n, Rng& rng) const;

 private:
  struct Shard {
    mutable std::mutex mu;
    ReplayBuffer buf;
    explicit Shard(std::size_t capacity) : buf(capacity) {}
  };

  std::size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace posetrl
