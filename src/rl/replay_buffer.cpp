#include "rl/replay_buffer.h"

#include <istream>
#include <ostream>
#include <string>

#include "support/error.h"

namespace posetrl {

void annotateMonteCarloReturns(std::vector<Transition>& episode, double gamma) {
  double g = 0.0;
  for (auto it = episode.rbegin(); it != episode.rend(); ++it) {
    g = it->reward + gamma * g;
    it->mc_return = g;
    it->use_mc = true;
  }
}

void ReplayBuffer::push(Transition t) {
  if (items_.size() < capacity_) {
    items_.push_back(std::move(t));
  } else {
    items_[next_] = std::move(t);
    next_ = (next_ + 1) % capacity_;
  }
}

const Transition& ReplayBuffer::at(std::size_t i) const {
  POSETRL_CHECK(i < items_.size(), "replay index out of range: ", i);
  return items_[i];
}

std::vector<const Transition*> ReplayBuffer::sample(std::size_t n,
                                                    Rng& rng) const {
  if (items_.empty()) raiseError("sampling from empty replay buffer");
  std::vector<const Transition*> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(&items_[rng.nextBelow(items_.size())]);
  }
  return out;
}

namespace {

void saveVec(std::ostream& os, const std::vector<double>& v) {
  os << v.size();
  for (double x : v) os << " " << x;
}

void loadVec(std::istream& is, std::vector<double>& v) {
  std::size_t n = 0;
  is >> n;
  POSETRL_CHECK(n <= (1u << 24), "implausible vector length in replay state");
  v.resize(n);
  for (double& x : v) is >> x;
}

}  // namespace

void ReplayBuffer::save(std::ostream& os) const {
  os << "replay " << capacity_ << " " << items_.size() << " " << next_
     << "\n";
  os.precision(17);
  for (const Transition& t : items_) {
    saveVec(os, t.state);
    os << " " << t.action << " " << t.reward << " ";
    saveVec(os, t.next_state);
    os << " " << (t.done ? 1 : 0) << " " << t.mc_return << " "
       << (t.use_mc ? 1 : 0) << "\n";
  }
}

void ReplayBuffer::load(std::istream& is) {
  std::string tag;
  std::size_t capacity = 0, size = 0;
  is >> tag >> capacity >> size >> next_;
  // Corrupt or mismatched replay state is recoverable-I/O territory: raise
  // instead of aborting so callers (checkpoint loaders, tests) can contain
  // it like any other bad file.
  if (tag != "replay") raiseError("bad replay buffer header: " + tag);
  if (capacity != capacity_) {
    raiseError("replay capacity mismatch on load: " +
               std::to_string(capacity) + " vs " + std::to_string(capacity_));
  }
  if (size > capacity) raiseError("replay size exceeds capacity");
  items_.clear();
  items_.resize(size);
  for (Transition& t : items_) {
    int done = 0, use_mc = 0;
    loadVec(is, t.state);
    is >> t.action >> t.reward;
    loadVec(is, t.next_state);
    is >> done >> t.mc_return >> use_mc;
    t.done = done != 0;
    t.use_mc = use_mc != 0;
  }
  if (!is) raiseError("truncated replay buffer payload");
}

ShardedReplayBuffer::ShardedReplayBuffer(std::size_t num_shards,
                                         std::size_t shard_capacity)
    : shard_capacity_(shard_capacity) {
  POSETRL_CHECK(num_shards > 0, "sharded replay needs at least one shard");
  POSETRL_CHECK(shard_capacity > 0, "shard capacity must be positive");
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(shard_capacity));
  }
}

std::size_t ShardedReplayBuffer::shardSize(std::size_t shard) const {
  POSETRL_CHECK(shard < shards_.size(), "shard index out of range");
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  return shards_[shard]->buf.size();
}

const ReplayBuffer& ShardedReplayBuffer::shard(std::size_t i) const {
  POSETRL_CHECK(i < shards_.size(), "shard index out of range");
  return shards_[i]->buf;
}

std::size_t ShardedReplayBuffer::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->buf.size();
  }
  return total;
}

void ShardedReplayBuffer::pushEpisode(std::size_t shard,
                                      std::vector<Transition> episode) {
  POSETRL_CHECK(shard < shards_.size(), "shard index out of range");
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  for (Transition& t : episode) shards_[shard]->buf.push(std::move(t));
}

std::vector<const Transition*> ShardedReplayBuffer::sample(std::size_t n,
                                                           Rng& rng) const {
  // Snapshot shard sizes (and build prefix sums) under the locks, then map
  // each draw to (shard, slot). At a sync point the sizes cannot change
  // between the snapshot and the at() reads below.
  std::vector<std::size_t> prefix(shards_.size() + 1, 0);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::lock_guard<std::mutex> lock(shards_[i]->mu);
    prefix[i + 1] = prefix[i] + shards_[i]->buf.size();
  }
  const std::size_t total = prefix.back();
  if (total == 0) raiseError("sampling from empty sharded replay buffer");
  std::vector<const Transition*> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t idx = rng.nextBelow(total);
    std::size_t shard = 0;
    while (idx >= prefix[shard + 1]) ++shard;
    std::lock_guard<std::mutex> lock(shards_[shard]->mu);
    out.push_back(&shards_[shard]->buf.at(idx - prefix[shard]));
  }
  return out;
}

}  // namespace posetrl
