#include "rl/replay_buffer.h"

#include <istream>
#include <ostream>
#include <string>

#include "support/error.h"

namespace posetrl {

void ReplayBuffer::push(Transition t) {
  if (items_.size() < capacity_) {
    items_.push_back(std::move(t));
  } else {
    items_[next_] = std::move(t);
    next_ = (next_ + 1) % capacity_;
  }
}

std::vector<const Transition*> ReplayBuffer::sample(std::size_t n,
                                                    Rng& rng) const {
  POSETRL_CHECK(!items_.empty(), "sampling from empty replay buffer");
  std::vector<const Transition*> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(&items_[rng.nextBelow(items_.size())]);
  }
  return out;
}

namespace {

void saveVec(std::ostream& os, const std::vector<double>& v) {
  os << v.size();
  for (double x : v) os << " " << x;
}

void loadVec(std::istream& is, std::vector<double>& v) {
  std::size_t n = 0;
  is >> n;
  POSETRL_CHECK(n <= (1u << 24), "implausible vector length in replay state");
  v.resize(n);
  for (double& x : v) is >> x;
}

}  // namespace

void ReplayBuffer::save(std::ostream& os) const {
  os << "replay " << capacity_ << " " << items_.size() << " " << next_
     << "\n";
  os.precision(17);
  for (const Transition& t : items_) {
    saveVec(os, t.state);
    os << " " << t.action << " " << t.reward << " ";
    saveVec(os, t.next_state);
    os << " " << (t.done ? 1 : 0) << " " << t.mc_return << " "
       << (t.use_mc ? 1 : 0) << "\n";
  }
}

void ReplayBuffer::load(std::istream& is) {
  std::string tag;
  std::size_t capacity = 0, size = 0;
  is >> tag >> capacity >> size >> next_;
  POSETRL_CHECK(tag == "replay", "bad replay buffer header: ", tag);
  POSETRL_CHECK(capacity == capacity_,
                "replay capacity mismatch on load: ", capacity, " vs ",
                capacity_);
  POSETRL_CHECK(size <= capacity, "replay size exceeds capacity");
  items_.clear();
  items_.resize(size);
  for (Transition& t : items_) {
    int done = 0, use_mc = 0;
    loadVec(is, t.state);
    is >> t.action >> t.reward;
    loadVec(is, t.next_state);
    is >> done >> t.mc_return >> use_mc;
    t.done = done != 0;
    t.use_mc = use_mc != 0;
  }
  POSETRL_CHECK(static_cast<bool>(is), "truncated replay buffer payload");
}

}  // namespace posetrl
