#include "rl/replay_buffer.h"

#include "support/error.h"

namespace posetrl {

void ReplayBuffer::push(Transition t) {
  if (items_.size() < capacity_) {
    items_.push_back(std::move(t));
  } else {
    items_[next_] = std::move(t);
    next_ = (next_ + 1) % capacity_;
  }
}

std::vector<const Transition*> ReplayBuffer::sample(std::size_t n,
                                                    Rng& rng) const {
  POSETRL_CHECK(!items_.empty(), "sampling from empty replay buffer");
  std::vector<const Transition*> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(&items_[rng.nextBelow(items_.size())]);
  }
  return out;
}

}  // namespace posetrl
