#pragma once

/// \file matrix.h
/// Minimal dense row-major matrix used by the neural-network layers. The
/// paper's agent is a small MLP, so a blocked implementation with no BLAS
/// dependency is sufficient; the hot kernels dispatch to AVX2 at runtime
/// (rl/matrix_simd.h) with a scalar twin that reduces in the exact same
/// order, keeping training traces bit-identical across machines.

#include <cstddef>
#include <vector>

#include "support/error.h"
#include "support/rng.h"

namespace posetrl {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix zeros(std::size_t rows, std::size_t cols) {
    return Matrix(rows, cols, 0.0);
  }

  /// Kaiming-style initialization for ReLU networks.
  static Matrix randomInit(std::size_t rows, std::size_t cols, Rng& rng);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }

  double& at(std::size_t r, std::size_t c) {
    POSETRL_CHECK(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  double at(std::size_t r, std::size_t c) const {
    POSETRL_CHECK(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::vector<double>& raw() { return data_; }
  const std::vector<double>& raw() const { return data_; }

  /// out = this (rows x cols) * v (cols) + bias (rows, optional).
  std::vector<double> matVec(const std::vector<double>& v,
                             const std::vector<double>* bias) const;

  /// C = op(A) * op(B), where op(X) is X or X^T. Cache-blocked GEMM with
  /// runtime-dispatched SIMD kernels (rl/matrix_simd.h); the batched MLP
  /// paths use it so a minibatch costs one GEMM per layer instead of
  /// batch_size matVec calls. Each output cell reduces its inner-product
  /// terms in the same canonical order matVec uses (16-lane interleaved
  /// dots for the A*B^T shape, one mul+add per ascending-k term for the
  /// others), so the result is bit-identical to the equivalent sequence of
  /// matVec calls under either dispatch path (the single-actor trainer's
  /// checkpoint bytes depend on this).
  /// transpose_a and transpose_b must not both be set.
  static Matrix matMul(const Matrix& a, bool transpose_a, const Matrix& b,
                       bool transpose_b);

  /// this += op(A) * op(B) (same contract as matMul). Used for gradient
  /// accumulation, where the product lands on top of existing gradients.
  void addMatMul(const Matrix& a, bool transpose_a, const Matrix& b,
                 bool transpose_b);

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace posetrl
