#pragma once

/// \file mlp.h
/// Fully-connected ReLU network with Adam — the Q-function approximator of
/// the paper's Double DQN agent. Supports single-output-head regression
/// training (Q-learning updates touch one action's head per sample) with
/// Huber loss, gradient accumulation over minibatches, target-network
/// cloning, and text serialization.

#include <iosfwd>
#include <vector>

#include "rl/matrix.h"
#include "support/rng.h"

namespace posetrl {

/// Multi-layer perceptron: Linear -> ReLU -> ... -> Linear.
class Mlp {
 public:
  /// \p sizes = {input, hidden..., output}.
  Mlp(const std::vector<std::size_t>& sizes, Rng& rng);

  std::size_t inputSize() const { return sizes_.front(); }
  std::size_t outputSize() const { return sizes_.back(); }

  /// Forward pass. Pure const (no scratch buffers on the object), so
  /// concurrent forward() calls on one network are safe as long as no
  /// thread is mutating the parameters.
  std::vector<double> forward(const std::vector<double>& x) const;

  /// Batched forward: each row of \p x is one input; returns one output row
  /// per input. One GEMM per layer, and bit-identical per row to forward()
  /// (Matrix::matMul preserves the matVec accumulation order). Same const
  /// thread-safety contract as forward().
  Matrix forwardBatch(const Matrix& x) const;

  /// Accumulates gradients for regressing output \p action toward
  /// \p target under Huber loss (delta = 1). Returns the absolute TD error.
  double accumulateGradient(const std::vector<double>& x, std::size_t action,
                            double target);

  /// Batched gradient accumulation: row i of \p x regresses head
  /// actions[i] toward targets[i]. One GEMM per layer for the weight
  /// gradients and one for each backpropagated activation gradient, and
  /// bit-identical to calling accumulateGradient() row by row (every
  /// gradient cell receives its per-sample terms in the same order).
  /// Returns the summed absolute TD errors.
  double accumulateGradientBatch(const Matrix& x,
                                 const std::vector<std::size_t>& actions,
                                 const std::vector<double>& targets);

  /// Applies one Adam step using the accumulated gradients (averaged over
  /// \p batch_size) and clears them.
  void adamStep(double lr, std::size_t batch_size);

  /// Copies all parameters from \p other (target-network sync).
  void copyParametersFrom(const Mlp& other);

  /// Turns the network into a constant function: zeroes every weight and
  /// bias and sets the output-layer bias to \p output, so forward() returns
  /// \p output for any input. A pinned policy like this is how the online
  /// learning tests and smokes inject a known-bad candidate (one that always
  /// greedily picks a chosen — e.g. fault-injecting — action) to exercise
  /// the canary gate and the post-promotion rollback watchdog.
  void setConstantOutput(const std::vector<double>& output);

  /// Parameter count (for tests/reporting).
  std::size_t parameterCount() const;

  void save(std::ostream& os) const;
  /// Loads parameters saved by save(); the architecture must match.
  void load(std::istream& is);

  /// Full-state serialization for crash-safe checkpoints: weights, biases,
  /// Adam first/second moments and the Adam step counter, so a restored
  /// network continues training bit-exactly. (save()/load() above only carry
  /// the inference parameters.)
  void saveState(std::ostream& os) const;
  void loadState(std::istream& is);

 private:
  struct Layer {
    Matrix w;
    std::vector<double> b;
    // Accumulated gradients.
    Matrix gw;
    std::vector<double> gb;
    // Adam first/second moments.
    Matrix mw, vw;
    std::vector<double> mb, vb;
  };

  std::vector<std::size_t> sizes_;
  std::vector<Layer> layers_;
  std::uint64_t adam_t_ = 0;
};

}  // namespace posetrl
