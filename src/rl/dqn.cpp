#include "rl/dqn.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <string>

#include "support/error.h"

namespace posetrl {

namespace {

std::vector<std::size_t> layerSizes(const DqnConfig& c) {
  std::vector<std::size_t> sizes{c.state_dim};
  for (std::size_t h : c.hidden) sizes.push_back(h);
  sizes.push_back(c.num_actions);
  return sizes;
}

std::size_t argmax(const std::vector<double>& v) {
  POSETRL_CHECK(!v.empty(), "argmax of empty vector");
  std::size_t best = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] > v[best]) best = i;
  }
  return best;
}

}  // namespace

DoubleDqn::DoubleDqn(const DqnConfig& config)
    : config_(config),
      rng_(config.seed),
      online_(layerSizes(config), rng_),
      target_(layerSizes(config), rng_),
      replay_(config.replay_capacity) {
  target_.copyParametersFrom(online_);
}

double DoubleDqn::epsilon() const {
  const double progress = std::min(
      1.0, static_cast<double>(steps_) /
               static_cast<double>(config_.epsilon_decay_steps));
  return config_.epsilon_start +
         (config_.epsilon_end - config_.epsilon_start) * progress;
}

namespace {

bool anyBlocked(const std::vector<bool>* blocked) {
  if (blocked == nullptr) return false;
  for (bool b : *blocked) {
    if (b) return true;
  }
  return false;
}

}  // namespace

std::size_t DoubleDqn::act(const std::vector<double>& state, bool explore,
                           const std::vector<bool>* blocked) {
  const double eps = epsilon();
  if (explore) ++steps_;
  if (explore && rng_.nextBool(eps)) {
    if (!anyBlocked(blocked)) return rng_.nextBelow(config_.num_actions);
    std::vector<std::size_t> allowed;
    for (std::size_t i = 0; i < config_.num_actions; ++i) {
      if (!(*blocked)[i]) allowed.push_back(i);
    }
    POSETRL_CHECK(!allowed.empty(), "all actions blocked");
    return allowed[rng_.nextBelow(allowed.size())];
  }
  return actGreedy(state, blocked);
}

std::size_t DoubleDqn::actGreedy(const std::vector<double>& state,
                                 const std::vector<bool>* blocked) const {
  const std::vector<double> q = online_.forward(state);
  if (!anyBlocked(blocked)) return argmax(q);
  std::size_t best = q.size();
  for (std::size_t i = 0; i < q.size(); ++i) {
    if ((*blocked)[i]) continue;
    if (best == q.size() || q[i] > q[best]) best = i;
  }
  POSETRL_CHECK(best < q.size(), "all actions blocked");
  return best;
}

std::vector<double> DoubleDqn::qValues(
    const std::vector<double>& state) const {
  return online_.forward(state);
}

void DoubleDqn::observe(Transition t) {
  replay_.push(std::move(t));
  if (replay_.size() < config_.learn_start) return;
  if (steps_ % config_.train_every == 0) trainBatch();
  if (updates_ > 0 && updates_ % config_.target_sync_every == 0) {
    target_.copyParametersFrom(online_);
  }
}

void DoubleDqn::trainBatch() {
  const auto batch = replay_.sample(config_.batch_size, rng_);
  double loss = 0.0;
  for (const Transition* t : batch) {
    if (t->use_mc) {
      // Monte-Carlo target: the observed discounted return to episode end.
      loss += online_.accumulateGradient(t->state, t->action, t->mc_return);
      continue;
    }
    double target = t->reward;
    if (!t->done) {
      // Double DQN: the online net selects the best next action; the
      // target net evaluates it.
      const std::size_t best_next = argmax(online_.forward(t->next_state));
      const std::vector<double> target_q = target_.forward(t->next_state);
      target += config_.gamma * target_q[best_next];
    }
    loss += online_.accumulateGradient(t->state, t->action, target);
  }
  online_.adamStep(config_.lr, batch.size());
  last_loss_ = loss / static_cast<double>(batch.size());
  ++updates_;
}

void DoubleDqn::saveModel(std::ostream& os) const { online_.save(os); }

void DoubleDqn::loadModel(std::istream& is) {
  online_.load(is);
  target_.copyParametersFrom(online_);
}

void DoubleDqn::saveCheckpoint(std::ostream& os) const {
  os << "dqn-ckpt v1 " << steps_ << " " << updates_ << " ";
  os.precision(17);
  os << last_loss_ << "\n";
  rng_.save(os);
  online_.saveState(os);
  target_.save(os);
  replay_.save(os);
}

void DoubleDqn::loadCheckpoint(std::istream& is) {
  std::string tag, version;
  is >> tag >> version >> steps_ >> updates_ >> last_loss_;
  POSETRL_CHECK(tag == "dqn-ckpt" && version == "v1",
                "bad DQN checkpoint header");
  rng_.load(is);
  online_.loadState(is);
  target_.load(is);
  replay_.load(is);
  POSETRL_CHECK(static_cast<bool>(is), "truncated DQN checkpoint");
}

}  // namespace posetrl
