#include "rl/dqn.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <string>

#include "support/error.h"

namespace posetrl {

namespace {

std::vector<std::size_t> layerSizes(const DqnConfig& c) {
  std::vector<std::size_t> sizes{c.state_dim};
  for (std::size_t h : c.hidden) sizes.push_back(h);
  sizes.push_back(c.num_actions);
  return sizes;
}

std::size_t argmax(const std::vector<double>& v) {
  POSETRL_CHECK(!v.empty(), "argmax of empty vector");
  std::size_t best = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] > v[best]) best = i;
  }
  return best;
}

}  // namespace

DoubleDqn::DoubleDqn(const DqnConfig& config)
    : config_(config),
      rng_(config.seed),
      online_(layerSizes(config), rng_),
      target_(layerSizes(config), rng_),
      replay_(config.replay_capacity) {
  target_.copyParametersFrom(online_);
}

double DoubleDqn::epsilon() const {
  // Exact endpoints: step 0 is epsilon_start, step epsilon_decay_steps (and
  // beyond) is epsilon_end — not merely within rounding of them.
  if (steps_ == 0) return config_.epsilon_start;
  if (steps_ >= config_.epsilon_decay_steps) return config_.epsilon_end;
  const double progress = static_cast<double>(steps_) /
                          static_cast<double>(config_.epsilon_decay_steps);
  return config_.epsilon_start +
         (config_.epsilon_end - config_.epsilon_start) * progress;
}

std::size_t DoubleDqn::warmupThreshold() const {
  const std::size_t floor_ = config_.min_replay_size > 0
                                 ? config_.min_replay_size
                                 : config_.learn_start;
  return std::max(floor_, config_.batch_size);
}

namespace {

bool anyBlocked(const std::vector<bool>* blocked) {
  if (blocked == nullptr) return false;
  for (bool b : *blocked) {
    if (b) return true;
  }
  return false;
}

}  // namespace

std::size_t DoubleDqn::act(const std::vector<double>& state, bool explore,
                           const std::vector<bool>* blocked) {
  if (explore) {
    // Count this step before reading ε, so the decay position matches the
    // step counter: the step that moves the counter to epsilon_decay_steps
    // draws with exactly epsilon_end. (Reading first lagged the schedule by
    // one step, and the annealed floor was never actually used.)
    ++steps_;
    if (rng_.nextBool(epsilon())) {
      if (!anyBlocked(blocked)) return rng_.nextBelow(config_.num_actions);
      std::vector<std::size_t> allowed;
      for (std::size_t i = 0; i < config_.num_actions; ++i) {
        if (!(*blocked)[i]) allowed.push_back(i);
      }
      POSETRL_CHECK(!allowed.empty(), "all actions blocked");
      return allowed[rng_.nextBelow(allowed.size())];
    }
  }
  return actGreedy(state, blocked);
}

std::size_t DoubleDqn::actGreedy(const std::vector<double>& state,
                                 const std::vector<bool>* blocked) const {
  const std::vector<double> q = online_.forward(state);
  if (!anyBlocked(blocked)) return argmax(q);
  std::size_t best = q.size();
  for (std::size_t i = 0; i < q.size(); ++i) {
    if ((*blocked)[i]) continue;
    if (best == q.size() || q[i] > q[best]) best = i;
  }
  POSETRL_CHECK(best < q.size(), "all actions blocked");
  return best;
}

std::vector<double> DoubleDqn::qValues(
    const std::vector<double>& state) const {
  return online_.forward(state);
}

void DoubleDqn::observe(Transition t) {
  replay_.push(std::move(t));
  if (replay_.size() < warmupThreshold()) return;
  if (steps_ % config_.train_every == 0) trainBatch();
  if (updates_ > 0 && updates_ % config_.target_sync_every == 0) {
    target_.copyParametersFrom(online_);
  }
}

void DoubleDqn::trainBatch() {
  const auto batch = replay_.sample(config_.batch_size, rng_);
  updateFromBatch(batch);
}

double DoubleDqn::trainOnBatch(const std::vector<const Transition*>& batch) {
  POSETRL_CHECK(!batch.empty(), "trainOnBatch on an empty batch");
  const double loss = updateFromBatch(batch);
  // The sequential loop syncs from observe(); here the learner owns the
  // cadence, so sync as soon as the update counter crosses the interval.
  if (updates_ % config_.target_sync_every == 0) {
    target_.copyParametersFrom(online_);
  }
  return loss;
}

/// One gradient step over \p batch. Batched: the whole minibatch runs as
/// one GEMM per layer (forward, backward, and the Double-DQN target
/// forwards) instead of batch_size matVec chains — bit-identical to the
/// former per-sample loop because Matrix::matMul preserves per-cell
/// accumulation order.
double DoubleDqn::updateFromBatch(
    const std::vector<const Transition*>& batch) {
  const std::size_t n = batch.size();
  Matrix states(n, config_.state_dim);
  std::vector<std::size_t> actions(n);
  std::vector<double> targets(n, 0.0);

  // Bootstrapped (non-MC, non-terminal) samples need next-state Q-values
  // from both networks; batch those forwards too.
  std::vector<std::size_t> boot;  // indices into `batch`
  boot.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Transition& t = *batch[i];
    POSETRL_CHECK(t.state.size() == config_.state_dim,
                  "transition state width mismatch");
    std::copy(t.state.begin(), t.state.end(),
              states.data() + i * config_.state_dim);
    actions[i] = t.action;
    if (t.use_mc) {
      targets[i] = t.mc_return;
    } else {
      targets[i] = t.reward;
      if (!t.done) boot.push_back(i);
    }
  }
  if (!boot.empty()) {
    Matrix next_states(boot.size(), config_.state_dim);
    for (std::size_t b = 0; b < boot.size(); ++b) {
      const std::vector<double>& ns = batch[boot[b]]->next_state;
      POSETRL_CHECK(ns.size() == config_.state_dim,
                    "transition next-state width mismatch");
      std::copy(ns.begin(), ns.end(),
                next_states.data() + b * config_.state_dim);
    }
    // Double DQN: the online net selects the best next action; the target
    // net evaluates it.
    const Matrix online_q = online_.forwardBatch(next_states);
    const Matrix target_q = target_.forwardBatch(next_states);
    for (std::size_t b = 0; b < boot.size(); ++b) {
      const double* row = online_q.data() + b * online_q.cols();
      std::size_t best = 0;
      for (std::size_t a = 1; a < online_q.cols(); ++a) {
        if (row[a] > row[best]) best = a;
      }
      targets[boot[b]] += config_.gamma * target_q.at(b, best);
    }
  }
  const double loss = online_.accumulateGradientBatch(states, actions, targets);
  online_.adamStep(config_.lr, n);
  last_loss_ = loss / static_cast<double>(n);
  ++updates_;
  return last_loss_;
}

void DoubleDqn::saveModel(std::ostream& os) const { online_.save(os); }

void DoubleDqn::loadModel(std::istream& is) {
  online_.load(is);
  target_.copyParametersFrom(online_);
}

void DoubleDqn::saveCheckpoint(std::ostream& os) const {
  // v2: the ε-schedule reads its position after the step counter advances
  // (see act()). A v1 checkpoint resumed under v2 semantics would draw
  // exploration with different ε values and silently diverge from its
  // original run, so v1 payloads are rejected rather than reinterpreted.
  os << "dqn-ckpt v2 " << steps_ << " " << updates_ << " ";
  os.precision(17);
  os << last_loss_ << "\n";
  rng_.save(os);
  online_.saveState(os);
  target_.save(os);
  replay_.save(os);
}

void DoubleDqn::loadCheckpoint(std::istream& is) {
  std::string tag, version;
  is >> tag >> version >> steps_ >> updates_ >> last_loss_;
  POSETRL_CHECK(tag == "dqn-ckpt", "bad DQN checkpoint header");
  POSETRL_CHECK(version != "v1",
                "dqn-ckpt v1 predates the ε-schedule fix and cannot resume "
                "bit-exactly; restart training to produce a v2 checkpoint");
  POSETRL_CHECK(version == "v2", "bad DQN checkpoint version: ", version);
  rng_.load(is);
  online_.loadState(is);
  target_.load(is);
  replay_.load(is);
  POSETRL_CHECK(static_cast<bool>(is), "truncated DQN checkpoint");
}

}  // namespace posetrl
