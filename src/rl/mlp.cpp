#include "rl/mlp.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "rl/matrix_simd.h"

namespace posetrl {

Mlp::Mlp(const std::vector<std::size_t>& sizes, Rng& rng) : sizes_(sizes) {
  POSETRL_CHECK(sizes.size() >= 2, "MLP needs at least input and output");
  for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
    Layer layer;
    layer.w = Matrix::randomInit(sizes[i + 1], sizes[i], rng);
    layer.b.assign(sizes[i + 1], 0.0);
    layer.gw = Matrix::zeros(sizes[i + 1], sizes[i]);
    layer.gb.assign(sizes[i + 1], 0.0);
    layer.mw = Matrix::zeros(sizes[i + 1], sizes[i]);
    layer.vw = Matrix::zeros(sizes[i + 1], sizes[i]);
    layer.mb.assign(sizes[i + 1], 0.0);
    layer.vb.assign(sizes[i + 1], 0.0);
    layers_.push_back(std::move(layer));
  }
}

std::vector<double> Mlp::forward(const std::vector<double>& x) const {
  std::vector<double> a = x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    a = layers_[l].w.matVec(a, &layers_[l].b);
    if (l + 1 < layers_.size()) {
      for (double& v : a) v = std::max(0.0, v);
    }
  }
  return a;
}

Matrix Mlp::forwardBatch(const Matrix& x) const {
  POSETRL_CHECK(x.cols() == sizes_.front(),
                "forwardBatch input width mismatch: ", x.cols(), " vs ",
                sizes_.front());
  Matrix a = x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    // a (batch x in) * w^T (in x out) + bias broadcast over rows.
    Matrix next = Matrix::matMul(a, false, layer.w, true);
    for (std::size_t r = 0; r < next.rows(); ++r) {
      double* row = next.data() + r * next.cols();
      for (std::size_t c = 0; c < next.cols(); ++c) row[c] += layer.b[c];
    }
    if (l + 1 < layers_.size()) {
      for (double& v : next.raw()) v = std::max(0.0, v);
    }
    a = std::move(next);
  }
  return a;
}

double Mlp::accumulateGradientBatch(const Matrix& x,
                                    const std::vector<std::size_t>& actions,
                                    const std::vector<double>& targets) {
  const std::size_t batch = x.rows();
  POSETRL_CHECK(actions.size() == batch && targets.size() == batch,
                "accumulateGradientBatch: batch size mismatch");
  // Forward, storing the activation matrix of every layer.
  std::vector<Matrix> acts;
  acts.reserve(layers_.size() + 1);
  acts.push_back(x);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    Matrix next = Matrix::matMul(acts.back(), false, layer.w, true);
    for (std::size_t r = 0; r < next.rows(); ++r) {
      double* row = next.data() + r * next.cols();
      for (std::size_t c = 0; c < next.cols(); ++c) row[c] += layer.b[c];
    }
    if (l + 1 < layers_.size()) {
      for (double& v : next.raw()) v = std::max(0.0, v);
    }
    acts.push_back(std::move(next));
  }
  const Matrix& q = acts.back();
  // Output gradient: only the chosen head of each sample is non-zero
  // (Huber, delta = 1).
  Matrix grad = Matrix::zeros(batch, q.cols());
  double loss = 0.0;
  for (std::size_t s = 0; s < batch; ++s) {
    POSETRL_CHECK(actions[s] < q.cols(), "action index out of range");
    const double td = q.at(s, actions[s]) - targets[s];
    grad.at(s, actions[s]) = std::clamp(td, -1.0, 1.0);
    loss += std::abs(td);
  }
  for (std::size_t li = layers_.size(); li-- > 0;) {
    Layer& layer = layers_[li];
    const Matrix& input = acts[li];
    // dW += grad^T * input; db += column sums of grad, in sample order.
    layer.gw.addMatMul(grad, true, input, false);
    for (std::size_t s = 0; s < batch; ++s) {
      const double* grow = grad.data() + s * grad.cols();
      for (std::size_t c = 0; c < grad.cols(); ++c) layer.gb[c] += grow[c];
    }
    if (li == 0) break;
    // Propagate: dInput = grad * W, masked by the ReLU of layer li-1.
    Matrix next = Matrix::matMul(grad, false, layer.w, false);
    for (std::size_t s = 0; s < batch; ++s) {
      double* nrow = next.data() + s * next.cols();
      const double* arow = input.data() + s * input.cols();
      for (std::size_t c = 0; c < next.cols(); ++c) {
        if (arow[c] <= 0.0) nrow[c] = 0.0;  // ReLU mask.
      }
    }
    grad = std::move(next);
  }
  return loss;
}

double Mlp::accumulateGradient(const std::vector<double>& x,
                               std::size_t action, double target) {
  // Forward, storing activations.
  std::vector<std::vector<double>> acts{x};
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    std::vector<double> a = layers_[l].w.matVec(acts.back(), &layers_[l].b);
    if (l + 1 < layers_.size()) {
      for (double& v : a) v = std::max(0.0, v);
    }
    acts.push_back(std::move(a));
  }
  const std::vector<double>& q = acts.back();
  POSETRL_CHECK(action < q.size(), "action index out of range");
  const double td = q[action] - target;
  // Huber (delta=1): dL/dq = clamp(td, -1, 1).
  const double dq = std::clamp(td, -1.0, 1.0);

  // Backward: only the chosen head has a non-zero output gradient.
  std::vector<double> grad(q.size(), 0.0);
  grad[action] = dq;
  for (std::size_t li = layers_.size(); li-- > 0;) {
    Layer& layer = layers_[li];
    const std::vector<double>& input = acts[li];
    // dW += grad ⊗ input; db += grad.
    for (std::size_t r = 0; r < layer.w.rows(); ++r) {
      if (grad[r] == 0.0) continue;
      double* grow = layer.gw.data() + r * layer.w.cols();
      const double g = grad[r];
      for (std::size_t c = 0; c < layer.w.cols(); ++c) {
        grow[c] += g * input[c];
      }
      layer.gb[r] += g;
    }
    if (li == 0) break;
    // Propagate: dInput = W^T grad, masked by the ReLU of layer li-1.
    std::vector<double> next(layer.w.cols(), 0.0);
    for (std::size_t r = 0; r < layer.w.rows(); ++r) {
      if (grad[r] == 0.0) continue;
      const double* row = layer.w.data() + r * layer.w.cols();
      const double g = grad[r];
      for (std::size_t c = 0; c < layer.w.cols(); ++c) {
        next[c] += g * row[c];
      }
    }
    for (std::size_t c = 0; c < next.size(); ++c) {
      if (acts[li][c] <= 0.0) next[c] = 0.0;  // ReLU mask.
    }
    grad = std::move(next);
  }
  return std::abs(td);
}

namespace {

/// Scalar twin of simd::adamUpdateAvx2 — identical per-element expression
/// order, so both dispatch paths update the parameters bit-identically
/// (every step is elementwise; there is no reduction to re-order).
void adamUpdateScalar(double* w, double* g, double* m, double* v,
                      std::size_t n, double lr, double inv_batch, double bc1,
                      double bc2) {
  for (std::size_t j = 0; j < n; ++j) {
    const double grad = g[j] * inv_batch;
    m[j] = simd::kAdamBeta1 * m[j] + (1.0 - simd::kAdamBeta1) * grad;
    v[j] = simd::kAdamBeta2 * v[j] + (1.0 - simd::kAdamBeta2) * grad * grad;
    const double mh = m[j] / bc1;
    const double vh = v[j] / bc2;
    w[j] -= lr * mh / (std::sqrt(vh) + simd::kAdamEps);
    g[j] = 0.0;
  }
}

void adamUpdate(double* w, double* g, double* m, double* v, std::size_t n,
                double lr, double inv_batch, double bc1, double bc2,
                bool use_avx2) {
#if defined(__x86_64__) || defined(_M_X64)
  if (use_avx2) {
    simd::adamUpdateAvx2(w, g, m, v, n, lr, inv_batch, bc1, bc2);
    return;
  }
#else
  (void)use_avx2;
#endif
  adamUpdateScalar(w, g, m, v, n, lr, inv_batch, bc1, bc2);
}

}  // namespace

void Mlp::adamStep(double lr, std::size_t batch_size) {
  ++adam_t_;
  const double bc1 =
      1.0 - std::pow(simd::kAdamBeta1, static_cast<double>(adam_t_));
  const double bc2 =
      1.0 - std::pow(simd::kAdamBeta2, static_cast<double>(adam_t_));
  const double inv_batch =
      1.0 / static_cast<double>(std::max<std::size_t>(1, batch_size));
  const bool use_avx2 = simd::avx2Active();
  for (Layer& layer : layers_) {
    adamUpdate(layer.w.raw().data(), layer.gw.raw().data(),
               layer.mw.raw().data(), layer.vw.raw().data(), layer.w.size(),
               lr, inv_batch, bc1, bc2, use_avx2);
    adamUpdate(layer.b.data(), layer.gb.data(), layer.mb.data(),
               layer.vb.data(), layer.b.size(), lr, inv_batch, bc1, bc2,
               use_avx2);
  }
}

void Mlp::copyParametersFrom(const Mlp& other) {
  POSETRL_CHECK(sizes_ == other.sizes_, "MLP architecture mismatch");
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    layers_[l].w = other.layers_[l].w;
    layers_[l].b = other.layers_[l].b;
  }
}

void Mlp::setConstantOutput(const std::vector<double>& output) {
  POSETRL_CHECK(output.size() == outputSize(),
                "constant output width must match the output layer");
  for (Layer& layer : layers_) {
    layer.w.fill(0.0);
    std::fill(layer.b.begin(), layer.b.end(), 0.0);
  }
  layers_.back().b = output;
}

std::size_t Mlp::parameterCount() const {
  std::size_t n = 0;
  for (const Layer& layer : layers_) n += layer.w.size() + layer.b.size();
  return n;
}

void Mlp::save(std::ostream& os) const {
  os << "mlp " << sizes_.size();
  for (std::size_t s : sizes_) os << " " << s;
  os << "\n";
  os.precision(17);
  for (const Layer& layer : layers_) {
    for (double v : layer.w.raw()) os << v << " ";
    for (double v : layer.b) os << v << " ";
    os << "\n";
  }
}

void Mlp::load(std::istream& is) {
  std::string tag;
  std::size_t n = 0;
  is >> tag >> n;
  POSETRL_CHECK(tag == "mlp" && n == sizes_.size(), "bad MLP header");
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t s = 0;
    is >> s;
    POSETRL_CHECK(s == sizes_[i], "MLP architecture mismatch on load");
  }
  for (Layer& layer : layers_) {
    for (double& v : layer.w.raw()) is >> v;
    for (double& v : layer.b) is >> v;
  }
  POSETRL_CHECK(static_cast<bool>(is), "truncated MLP payload");
}

void Mlp::saveState(std::ostream& os) const {
  os << "mlp-state " << sizes_.size();
  for (std::size_t s : sizes_) os << " " << s;
  os << " " << adam_t_ << "\n";
  // max_digits10 == 17 round-trips every finite double exactly.
  os.precision(17);
  for (const Layer& layer : layers_) {
    for (double v : layer.w.raw()) os << v << " ";
    for (double v : layer.b) os << v << " ";
    for (double v : layer.mw.raw()) os << v << " ";
    for (double v : layer.vw.raw()) os << v << " ";
    for (double v : layer.mb) os << v << " ";
    for (double v : layer.vb) os << v << " ";
    os << "\n";
  }
}

void Mlp::loadState(std::istream& is) {
  std::string tag;
  std::size_t n = 0;
  is >> tag >> n;
  POSETRL_CHECK(tag == "mlp-state" && n == sizes_.size(),
                "bad MLP state header");
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t s = 0;
    is >> s;
    POSETRL_CHECK(s == sizes_[i], "MLP architecture mismatch on state load");
  }
  is >> adam_t_;
  for (Layer& layer : layers_) {
    for (double& v : layer.w.raw()) is >> v;
    for (double& v : layer.b) is >> v;
    for (double& v : layer.mw.raw()) is >> v;
    for (double& v : layer.vw.raw()) is >> v;
    for (double& v : layer.mb) is >> v;
    for (double& v : layer.vb) is >> v;
    // Checkpoints are taken between batches, where gradients are zero.
    layer.gw.fill(0.0);
    std::fill(layer.gb.begin(), layer.gb.end(), 0.0);
  }
  POSETRL_CHECK(static_cast<bool>(is), "truncated MLP state payload");
}

}  // namespace posetrl
