/// AVX2 kernel bodies (see matrix_simd.h for the bit-identity contract).
/// This translation unit is the only one compiled with -mavx2, and it adds
/// -mno-fma -ffp-contract=off so neither the intrinsics below nor the
/// scalar tails can be contracted into FMA — fusion would skip the
/// intermediate rounding the scalar twins perform.

#include "rl/matrix_simd.h"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cmath>

namespace posetrl::simd {

double dotInterleavedAvx2(const double* x, const double* y, std::size_t k) {
  const std::size_t k16 = k & ~static_cast<std::size_t>(15);
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  for (std::size_t kk = 0; kk < k16; kk += 16) {
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(_mm256_loadu_pd(x + kk),
                                             _mm256_loadu_pd(y + kk)));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(_mm256_loadu_pd(x + kk + 4),
                                             _mm256_loadu_pd(y + kk + 4)));
    acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(_mm256_loadu_pd(x + kk + 8),
                                             _mm256_loadu_pd(y + kk + 8)));
    acc3 = _mm256_add_pd(acc3, _mm256_mul_pd(_mm256_loadu_pd(x + kk + 12),
                                             _mm256_loadu_pd(y + kk + 12)));
  }
  // Register acc_a lane j now holds exactly the ascending-k sum of terms
  // with k ≡ 4a+j (mod 16) — the scalar twin's lanes[16] partials.
  alignas(32) double lanes[16];
  _mm256_store_pd(lanes + 0, acc0);
  _mm256_store_pd(lanes + 4, acc1);
  _mm256_store_pd(lanes + 8, acc2);
  _mm256_store_pd(lanes + 12, acc3);
  for (std::size_t kk = k16; kk < k; ++kk) lanes[kk - k16] += x[kk] * y[kk];
  double t[4];
  for (int j = 0; j < 4; ++j) {
    t[j] = (lanes[j] + lanes[j + 4]) + (lanes[j + 8] + lanes[j + 12]);
  }
  return (t[0] + t[2]) + (t[1] + t[3]);
}

void axpyAvx2(double* y, const double* x, double a, std::size_t n) {
  // Element-wise independent (one mul, one add per y[j]), so any unroll
  // preserves the scalar order bit-for-bit.
  const __m256d av = _mm256_set1_pd(a);
  const std::size_t n8 = n & ~static_cast<std::size_t>(7);
  std::size_t j = 0;
  for (; j < n8; j += 8) {
    const __m256d p0 = _mm256_mul_pd(av, _mm256_loadu_pd(x + j));
    const __m256d p1 = _mm256_mul_pd(av, _mm256_loadu_pd(x + j + 4));
    _mm256_storeu_pd(y + j, _mm256_add_pd(_mm256_loadu_pd(y + j), p0));
    _mm256_storeu_pd(y + j + 4,
                     _mm256_add_pd(_mm256_loadu_pd(y + j + 4), p1));
  }
  if (j + 4 <= n) {
    const __m256d p = _mm256_mul_pd(av, _mm256_loadu_pd(x + j));
    _mm256_storeu_pd(y + j, _mm256_add_pd(_mm256_loadu_pd(y + j), p));
    j += 4;
  }
  for (; j < n; ++j) y[j] += a * x[j];
}

void adamUpdateAvx2(double* w, double* g, double* m, double* v, std::size_t n,
                    double lr, double inv_batch, double bc1, double bc2) {
  const __m256d vinv = _mm256_set1_pd(inv_batch);
  const __m256d vb1 = _mm256_set1_pd(kAdamBeta1);
  const __m256d vb1c = _mm256_set1_pd(1.0 - kAdamBeta1);
  const __m256d vb2 = _mm256_set1_pd(kAdamBeta2);
  const __m256d vb2c = _mm256_set1_pd(1.0 - kAdamBeta2);
  const __m256d vbc1 = _mm256_set1_pd(bc1);
  const __m256d vbc2 = _mm256_set1_pd(bc2);
  const __m256d vlr = _mm256_set1_pd(lr);
  const __m256d veps = _mm256_set1_pd(kAdamEps);
  const __m256d vzero = _mm256_setzero_pd();
  const std::size_t n4 = n & ~static_cast<std::size_t>(3);
  std::size_t j = 0;
  for (; j < n4; j += 4) {
    const __m256d grad = _mm256_mul_pd(_mm256_loadu_pd(g + j), vinv);
    const __m256d mj =
        _mm256_add_pd(_mm256_mul_pd(vb1, _mm256_loadu_pd(m + j)),
                      _mm256_mul_pd(vb1c, grad));
    const __m256d vj =
        _mm256_add_pd(_mm256_mul_pd(vb2, _mm256_loadu_pd(v + j)),
                      _mm256_mul_pd(_mm256_mul_pd(vb2c, grad), grad));
    const __m256d mh = _mm256_div_pd(mj, vbc1);
    const __m256d vh = _mm256_div_pd(vj, vbc2);
    const __m256d upd = _mm256_div_pd(
        _mm256_mul_pd(vlr, mh), _mm256_add_pd(_mm256_sqrt_pd(vh), veps));
    _mm256_storeu_pd(w + j, _mm256_sub_pd(_mm256_loadu_pd(w + j), upd));
    _mm256_storeu_pd(m + j, mj);
    _mm256_storeu_pd(v + j, vj);
    _mm256_storeu_pd(g + j, vzero);
  }
  for (; j < n; ++j) {
    const double grad = g[j] * inv_batch;
    m[j] = kAdamBeta1 * m[j] + (1.0 - kAdamBeta1) * grad;
    v[j] = kAdamBeta2 * v[j] + (1.0 - kAdamBeta2) * grad * grad;
    const double mh = m[j] / bc1;
    const double vh = v[j] / bc2;
    w[j] -= lr * mh / (std::sqrt(vh) + kAdamEps);
    g[j] = 0.0;
  }
}

void axpy2Avx2(double* y, const double* x0, double a0, const double* x1,
               double a1, std::size_t n) {
  const __m256d av0 = _mm256_set1_pd(a0);
  const __m256d av1 = _mm256_set1_pd(a1);
  const std::size_t n4 = n & ~static_cast<std::size_t>(3);
  std::size_t j = 0;
  for (; j < n4; j += 4) {
    const __m256d p0 = _mm256_mul_pd(av0, _mm256_loadu_pd(x0 + j));
    const __m256d p1 = _mm256_mul_pd(av1, _mm256_loadu_pd(x1 + j));
    const __m256d s = _mm256_add_pd(_mm256_add_pd(_mm256_loadu_pd(y + j), p0), p1);
    _mm256_storeu_pd(y + j, s);
  }
  for (; j < n; ++j) y[j] = (y[j] + a0 * x0[j]) + a1 * x1[j];
}

}  // namespace posetrl::simd

#endif  // x86-64
