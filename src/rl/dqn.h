#pragma once

/// \file dqn.h
/// Double Deep Q-Network agent (Section II-B / III-B of the paper): an
/// online network selects actions; a periodically synced target network
/// evaluates them (decoupling selection from evaluation to curb Q-value
/// overestimation). Exploration follows the paper's ε-greedy schedule:
/// ε anneals linearly from 1.0 to 0.01 over a configurable horizon
/// (20 000 steps in the paper).

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "rl/mlp.h"
#include "rl/replay_buffer.h"
#include "support/rng.h"

namespace posetrl {

/// Agent hyper-parameters (defaults follow the paper where stated).
struct DqnConfig {
  std::size_t state_dim = 300;
  std::size_t num_actions = 34;
  std::vector<std::size_t> hidden = {256, 128};
  double lr = 1e-4;               ///< Paper: 10^-4.
  double gamma = 0.9;
  double epsilon_start = 1.0;     ///< Paper: 1.0.
  double epsilon_end = 0.01;      ///< Paper: 0.01.
  std::size_t epsilon_decay_steps = 20000;  ///< Paper: 20000.
  std::size_t replay_capacity = 20000;
  std::size_t batch_size = 32;
  std::size_t learn_start = 64;   ///< Min transitions before training.
  /// Replay warmup: no gradient step runs before the buffer holds
  /// max(min_replay_size, batch_size) transitions (0 defers to
  /// learn_start), so the first batches never oversample a near-empty
  /// buffer. See warmupThreshold().
  std::size_t min_replay_size = 0;
  std::size_t train_every = 4;    ///< The paper's µ.
  std::size_t target_sync_every = 250;
  std::uint64_t seed = 1;
  /// Train Q(s, a) toward observed Monte-Carlo returns instead of
  /// bootstrapped Double-DQN targets. The environment is deterministic, so
  /// MC targets are unbiased and far more sample-efficient at the reduced
  /// training budgets this reproduction runs (the paper's 16-hour runs can
  /// afford plain TD). The trainer fills Transition::mc_return.
  bool mc_returns = true;
};

/// Double DQN agent.
///
/// Thread safety: the const inference surface — actGreedy(), qValues() —
/// is pure (no mutable caches, no lazy state, no RNG draws) and safe to
/// call concurrently from many threads on one shared agent; the serving
/// layer (serve/service.h) relies on this. The mutating surface (act(),
/// observe(), load*/save*) must be externally serialized and must not
/// overlap any inference call.
class DoubleDqn {
 public:
  explicit DoubleDqn(const DqnConfig& config);

  const DqnConfig& config() const { return config_; }

  /// ε-greedy action for \p state (advances the exploration schedule when
  /// \p explore is true). The schedule position includes the current step:
  /// before any exploration epsilon() is exactly epsilon_start, and the
  /// explore-step that moves the counter to epsilon_decay_steps draws with
  /// exactly epsilon_end. When \p blocked is given, actions with
  /// blocked[i] == true are never selected (used by the per-program action
  /// quarantine); at least one action must stay unblocked. With no blocked
  /// actions the RNG stream is identical to the unmasked overload.
  std::size_t act(const std::vector<double>& state, bool explore,
                  const std::vector<bool>* blocked = nullptr);

  /// Greedy action (no exploration, no schedule side effects).
  std::size_t actGreedy(const std::vector<double>& state,
                        const std::vector<bool>* blocked = nullptr) const;

  /// Q-values from the online network.
  std::vector<double> qValues(const std::vector<double>& state) const;

  /// Records a transition and runs a training step when due.
  void observe(Transition t);

  // --- learner surface (parallel actor–learner trainer) -------------------
  // The parallel trainer's rollout actors explore against read-only policy
  // snapshots with their own RNG streams, so the agent never sees their
  // act() calls; the learner drives the agent through these instead. All
  // three are mutating and follow the external-serialization contract above.

  /// Advances the ε schedule by \p n explore-steps taken by rollout actors.
  void noteExploreSteps(std::size_t n) { steps_ += n; }

  /// One batched gradient update on \p batch (same math as the internal
  /// replay-driven step, including the target-network sync cadence).
  /// Returns the mean absolute TD error of the batch.
  double trainOnBatch(const std::vector<const Transition*>& batch);

  /// The online network, e.g. to copy as a rollout actor's read-only
  /// policy snapshot at a sync point.
  const Mlp& onlineNet() const { return online_; }

  /// Replay warmup threshold: max(batch_size, min_replay_size > 0 ?
  /// min_replay_size : learn_start). No gradient step runs below it.
  std::size_t warmupThreshold() const;

  double epsilon() const;
  std::size_t stepsTaken() const { return steps_; }
  std::size_t trainingUpdates() const { return updates_; }
  double lastLoss() const { return last_loss_; }

  void saveModel(std::ostream& os) const;
  void loadModel(std::istream& is);

  /// Full-state checkpoint: online net with Adam moments, target net,
  /// replay buffer, exploration RNG, and the step/update counters — enough
  /// to continue a training run bit-exactly (see faults/checkpoint.h).
  void saveCheckpoint(std::ostream& os) const;
  void loadCheckpoint(std::istream& is);

 private:
  void trainBatch();
  double updateFromBatch(const std::vector<const Transition*>& batch);

  DqnConfig config_;
  Rng rng_;
  Mlp online_;
  Mlp target_;
  ReplayBuffer replay_;
  std::size_t steps_ = 0;
  std::size_t updates_ = 0;
  double last_loss_ = 0.0;
};

}  // namespace posetrl
