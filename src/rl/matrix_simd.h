#pragma once

/// \file matrix_simd.h
/// Runtime-dispatched SIMD kernels behind Matrix's GEMM/matVec hot loops.
///
/// Bit-identity contract: every kernel here computes the *canonical
/// reduction order* its scalar twin in matrix.cpp computes — dot products
/// reduce in sixteen interleaved lanes (lane l sums the terms with
/// k ≡ l mod 16, in ascending k; tail terms land on lanes 0..tail-1; lanes
/// combine as t_j = (l_j + l_{j+4}) + (l_{j+8} + l_{j+12}) for j in 0..3,
/// then (t0+t2)+(t1+t3)), and axpy updates each element with exactly one
/// mul and one add. Sixteen lanes = four independent AVX2 accumulator
/// registers, enough to hide the vaddpd latency chain that a single
/// accumulator serializes on. IEEE-754 doubles make each of those orders
/// deterministic, so forced-scalar and forced-AVX2 runs produce
/// byte-identical training traces. The AVX2 translation unit is compiled
/// with -mno-fma -ffp-contract=off: a fused multiply-add would skip the
/// intermediate rounding the scalar path performs and silently break the
/// contract.
///
/// Dispatch: SimdMode::Auto (the default) uses AVX2 when the CPU supports
/// it. The POSETRL_SIMD environment variable (scalar|avx2|auto, read once)
/// or setSimdMode() force a path — tests use this to compare both.

#include <cstddef>

namespace posetrl::simd {

enum class SimdMode {
  Auto,    ///< AVX2 if the CPU has it, scalar otherwise.
  Scalar,  ///< Force the scalar kernels.
  Avx2,    ///< Force AVX2 (checked against CPU support).
};

/// Overrides the dispatch mode (thread-safe; affects subsequent calls).
/// Forcing Avx2 on a CPU without it is a checked error.
void setSimdMode(SimdMode mode);
SimdMode simdMode();

/// True when the current mode resolves to the AVX2 kernels.
bool avx2Active();

/// Adam hyper-parameters shared by the scalar twin (mlp.cpp) and the AVX2
/// kernel below; defined once so the twins cannot drift apart.
inline constexpr double kAdamBeta1 = 0.9;
inline constexpr double kAdamBeta2 = 0.999;
inline constexpr double kAdamEps = 1e-8;

#if defined(__x86_64__) || defined(_M_X64)
/// sum_k x[k]*y[k] in the canonical 16-lane interleaved order.
double dotInterleavedAvx2(const double* x, const double* y, std::size_t k);
/// One Adam update over n parameters: per element j,
///   grad = g[j]*inv_batch;  m = β1·m + (1-β1)·grad;
///   v = β2·v + ((1-β2)·grad)·grad;  w -= (lr·(m/bc1)) / (sqrt(v/bc2)+ε);
///   g[j] = 0.
/// Purely elementwise — no reductions — and every step (mul, add, div,
/// sqrt) is an individually rounded IEEE operation in the same order as
/// the scalar twin in mlp.cpp, so both paths update bit-identically.
void adamUpdateAvx2(double* w, double* g, double* m, double* v, std::size_t n,
                    double lr, double inv_batch, double bc1, double bc2);
/// y[j] += a * x[j] for j in [0, n).
void axpyAvx2(double* y, const double* x, double a, std::size_t n);
/// y[j] = (y[j] + a0*x0[j]) + a1*x1[j] — two ascending-k GEMM terms per
/// pass over y, each individually rounded, so the per-cell order matches
/// two consecutive axpy calls exactly while halving the C-row traffic.
void axpy2Avx2(double* y, const double* x0, double a0, const double* x1,
               double a1, std::size_t n);
#endif

}  // namespace posetrl::simd
