#include "rl/matrix.h"

#include <algorithm>
#include <cmath>

namespace posetrl {

Matrix Matrix::randomInit(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  const double scale = std::sqrt(2.0 / static_cast<double>(cols));
  for (double& x : m.data_) x = rng.nextGaussian() * scale;
  return m;
}

std::vector<double> Matrix::matVec(const std::vector<double>& v,
                                   const std::vector<double>* bias) const {
  POSETRL_CHECK(v.size() == cols_, "matVec dimension mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * v[c];
    out[r] = acc + (bias != nullptr ? (*bias)[r] : 0.0);
  }
  return out;
}

}  // namespace posetrl
