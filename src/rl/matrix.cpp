#include "rl/matrix.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "rl/matrix_simd.h"

namespace posetrl {

namespace simd {

namespace {

bool cpuHasAvx2() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

SimdMode modeFromEnv() {
  const char* v = std::getenv("POSETRL_SIMD");
  if (v == nullptr) return SimdMode::Auto;
  if (std::strcmp(v, "scalar") == 0) return SimdMode::Scalar;
  if (std::strcmp(v, "avx2") == 0) {
    POSETRL_CHECK(cpuHasAvx2(), "POSETRL_SIMD=avx2 but CPU lacks AVX2");
    return SimdMode::Avx2;
  }
  POSETRL_CHECK(std::strcmp(v, "auto") == 0,
                "POSETRL_SIMD must be scalar|avx2|auto, got: ", v);
  return SimdMode::Auto;
}

std::atomic<SimdMode>& modeSlot() {
  static std::atomic<SimdMode> mode{modeFromEnv()};
  return mode;
}

}  // namespace

void setSimdMode(SimdMode mode) {
  if (mode == SimdMode::Avx2) {
    POSETRL_CHECK(cpuHasAvx2(), "cannot force AVX2: CPU lacks it");
  }
  modeSlot().store(mode, std::memory_order_relaxed);
}

SimdMode simdMode() { return modeSlot().load(std::memory_order_relaxed); }

bool avx2Active() {
  switch (simdMode()) {
    case SimdMode::Scalar: return false;
    case SimdMode::Avx2: return true;
    case SimdMode::Auto: break;
  }
  static const bool has_avx2 = cpuHasAvx2();
  return has_avx2;
}

}  // namespace simd

Matrix Matrix::randomInit(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  const double scale = std::sqrt(2.0 / static_cast<double>(cols));
  for (double& x : m.data_) x = rng.nextGaussian() * scale;
  return m;
}

namespace {

// Tile sizes for the blocked kernels: one C-row tile plus the streamed
// A/B panels stay L1/L2-resident at the network sizes the agent uses.
constexpr std::size_t kBlockK = 64;
constexpr std::size_t kBlockJ = 256;

/// sum_k x[k]*y[k] in the canonical 16-lane interleaved order (see
/// matrix_simd.h): lane l sums the terms with k ≡ l (mod 16) in ascending
/// k, the tail lands on lanes 0..tail-1, lanes combine pairwise as
/// t_j = (l_j + l_{j+4}) + (l_{j+8} + l_{j+12}), then (t0+t2)+(t1+t3).
/// Exactly what four AVX2 accumulator registers compute, so the two
/// dispatch paths are bit-identical.
double dotInterleavedScalar(const double* x, const double* y,
                            std::size_t k) {
  const std::size_t k16 = k & ~static_cast<std::size_t>(15);
  double lanes[16] = {0.0};
  for (std::size_t kk = 0; kk < k16; kk += 16) {
    for (std::size_t l = 0; l < 16; ++l) lanes[l] += x[kk + l] * y[kk + l];
  }
  for (std::size_t kk = k16; kk < k; ++kk) lanes[kk - k16] += x[kk] * y[kk];
  double t[4];
  for (int j = 0; j < 4; ++j) {
    t[j] = (lanes[j] + lanes[j + 4]) + (lanes[j + 8] + lanes[j + 12]);
  }
  return (t[0] + t[2]) + (t[1] + t[3]);
}

/// y[j] += a * x[j]: one mul and one add per element in either path, so
/// vectorizing is trivially order-preserving.
void axpyScalar(double* y, const double* x, double a, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) y[j] += a * x[j];
}

/// Two ascending-k terms per pass over y (see simd::axpy2Avx2): same
/// per-cell rounding sequence as two axpy calls, half the C-row traffic.
void axpy2Scalar(double* y, const double* x0, double a0, const double* x1,
                 double a1, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) y[j] = (y[j] + a0 * x0[j]) + a1 * x1[j];
}

inline double dotCanonical(const double* x, const double* y, std::size_t k,
                           bool use_avx2) {
#if defined(__x86_64__) || defined(_M_X64)
  if (use_avx2) return simd::dotInterleavedAvx2(x, y, k);
#else
  (void)use_avx2;
#endif
  return dotInterleavedScalar(x, y, k);
}

inline void axpyCanonical(double* y, const double* x, double a,
                          std::size_t n, bool use_avx2) {
#if defined(__x86_64__) || defined(_M_X64)
  if (use_avx2) return simd::axpyAvx2(y, x, a, n);
#else
  (void)use_avx2;
#endif
  axpyScalar(y, x, a, n);
}

inline void axpy2Canonical(double* y, const double* x0, double a0,
                           const double* x1, double a1, std::size_t n,
                           bool use_avx2) {
#if defined(__x86_64__) || defined(_M_X64)
  if (use_avx2) return simd::axpy2Avx2(y, x0, a0, x1, a1, n);
#else
  (void)use_avx2;
#endif
  axpy2Scalar(y, x0, a0, x1, a1, n);
}

}  // namespace

std::vector<double> Matrix::matVec(const std::vector<double>& v,
                                   const std::vector<double>* bias) const {
  POSETRL_CHECK(v.size() == cols_, "matVec dimension mismatch");
  const bool use_avx2 = simd::avx2Active();
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    const double acc = dotCanonical(row, v.data(), cols_, use_avx2);
    out[r] = acc + (bias != nullptr ? (*bias)[r] : 0.0);
  }
  return out;
}

void Matrix::addMatMul(const Matrix& a, bool transpose_a, const Matrix& b,
                       bool transpose_b) {
  POSETRL_CHECK(!(transpose_a && transpose_b),
                "addMatMul: at most one operand may be transposed");
  const std::size_t m = transpose_a ? a.cols() : a.rows();
  const std::size_t k = transpose_a ? a.rows() : a.cols();
  const std::size_t kb = transpose_b ? b.cols() : b.rows();
  const std::size_t n = transpose_b ? b.rows() : b.cols();
  POSETRL_CHECK(k == kb, "addMatMul inner dimension mismatch: ", k, " vs ",
                kb);
  POSETRL_CHECK(rows_ == m && cols_ == n,
                "addMatMul output shape mismatch: ", rows_, "x", cols_,
                " vs ", m, "x", n);
  const double* pa = a.data();
  const double* pb = b.data();
  const std::size_t lda = a.cols();
  const std::size_t ldb = b.cols();
  const bool use_avx2 = simd::avx2Active();
  if (!transpose_a && transpose_b) {
    // C[i][j] += sum_k A[i][k] * B[j][k] — rows dotted with rows; block
    // over j so a panel of B rows is reused across every row of A. Each
    // dot reduces in the canonical interleaved order, matching matVec.
    for (std::size_t j0 = 0; j0 < n; j0 += kBlockJ) {
      const std::size_t j1 = std::min(n, j0 + kBlockJ);
      for (std::size_t i = 0; i < m; ++i) {
        const double* arow = pa + i * lda;
        double* crow = data_.data() + i * cols_;
        for (std::size_t j = j0; j < j1; ++j) {
          crow[j] += dotCanonical(arow, pb + j * ldb, k, use_avx2);
        }
      }
    }
  } else if (!transpose_a && !transpose_b) {
    // C[i][j] += sum_k A[i][k] * B[k][j] — ikj order streams B and C rows;
    // k-blocks run in ascending order and k-steps are paired, so each cell
    // still accumulates its terms one individually rounded mul+add at a
    // time in ascending k, while each C-row pass covers two B rows.
    for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
      const std::size_t k1 = std::min(k, k0 + kBlockK);
      for (std::size_t i = 0; i < m; ++i) {
        const double* arow = pa + i * lda;
        double* crow = data_.data() + i * cols_;
        std::size_t kk = k0;
        for (; kk + 1 < k1; kk += 2) {
          axpy2Canonical(crow, pb + kk * ldb, arow[kk],
                         pb + (kk + 1) * ldb, arow[kk + 1], n, use_avx2);
        }
        if (kk < k1) {
          axpyCanonical(crow, pb + kk * ldb, arow[kk], n, use_avx2);
        }
      }
    }
  } else {
    // C[i][j] += sum_k A[k][i] * B[k][j] — a sequence of rank-1 updates in
    // ascending k (the per-sample gradient-accumulation order).
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double* arow = pa + kk * lda;
      const double* brow = pb + kk * ldb;
      for (std::size_t i = 0; i < m; ++i) {
        const double av = arow[i];
        if (av == 0.0) continue;  // sparse output-layer grads
        axpyCanonical(data_.data() + i * cols_, brow, av, n, use_avx2);
      }
    }
  }
}

Matrix Matrix::matMul(const Matrix& a, bool transpose_a, const Matrix& b,
                      bool transpose_b) {
  const std::size_t m = transpose_a ? a.cols() : a.rows();
  const std::size_t n = transpose_b ? b.rows() : b.cols();
  Matrix c = Matrix::zeros(m, n);
  c.addMatMul(a, transpose_a, b, transpose_b);
  return c;
}

}  // namespace posetrl
