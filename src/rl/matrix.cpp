#include "rl/matrix.h"

#include <algorithm>
#include <cmath>

namespace posetrl {

Matrix Matrix::randomInit(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  const double scale = std::sqrt(2.0 / static_cast<double>(cols));
  for (double& x : m.data_) x = rng.nextGaussian() * scale;
  return m;
}

std::vector<double> Matrix::matVec(const std::vector<double>& v,
                                   const std::vector<double>* bias) const {
  POSETRL_CHECK(v.size() == cols_, "matVec dimension mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * v[c];
    out[r] = acc + (bias != nullptr ? (*bias)[r] : 0.0);
  }
  return out;
}

namespace {

// Tile sizes for the blocked kernels: one C-row tile plus the streamed
// A/B panels stay L1/L2-resident at the network sizes the agent uses.
constexpr std::size_t kBlockK = 64;
constexpr std::size_t kBlockJ = 256;

}  // namespace

void Matrix::addMatMul(const Matrix& a, bool transpose_a, const Matrix& b,
                       bool transpose_b) {
  POSETRL_CHECK(!(transpose_a && transpose_b),
                "addMatMul: at most one operand may be transposed");
  const std::size_t m = transpose_a ? a.cols() : a.rows();
  const std::size_t k = transpose_a ? a.rows() : a.cols();
  const std::size_t kb = transpose_b ? b.cols() : b.rows();
  const std::size_t n = transpose_b ? b.rows() : b.cols();
  POSETRL_CHECK(k == kb, "addMatMul inner dimension mismatch: ", k, " vs ",
                kb);
  POSETRL_CHECK(rows_ == m && cols_ == n,
                "addMatMul output shape mismatch: ", rows_, "x", cols_,
                " vs ", m, "x", n);
  const double* pa = a.data();
  const double* pb = b.data();
  const std::size_t lda = a.cols();
  const std::size_t ldb = b.cols();
  if (!transpose_a && transpose_b) {
    // C[i][j] += sum_k A[i][k] * B[j][k] — rows dotted with rows; block
    // over j so a panel of B rows is reused across every row of A.
    for (std::size_t j0 = 0; j0 < n; j0 += kBlockJ) {
      const std::size_t j1 = std::min(n, j0 + kBlockJ);
      for (std::size_t i = 0; i < m; ++i) {
        const double* arow = pa + i * lda;
        double* crow = data_.data() + i * cols_;
        for (std::size_t j = j0; j < j1; ++j) {
          const double* brow = pb + j * ldb;
          double acc = 0.0;
          for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
          crow[j] += acc;
        }
      }
    }
  } else if (!transpose_a && !transpose_b) {
    // C[i][j] += sum_k A[i][k] * B[k][j] — ikj order streams B and C rows;
    // k-blocks run in ascending order so each cell still accumulates its
    // terms in ascending k.
    for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
      const std::size_t k1 = std::min(k, k0 + kBlockK);
      for (std::size_t i = 0; i < m; ++i) {
        const double* arow = pa + i * lda;
        double* crow = data_.data() + i * cols_;
        for (std::size_t kk = k0; kk < k1; ++kk) {
          const double av = arow[kk];
          const double* brow = pb + kk * ldb;
          for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
  } else {
    // C[i][j] += sum_k A[k][i] * B[k][j] — a sequence of rank-1 updates in
    // ascending k (the per-sample gradient-accumulation order).
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double* arow = pa + kk * lda;
      const double* brow = pb + kk * ldb;
      for (std::size_t i = 0; i < m; ++i) {
        const double av = arow[i];
        if (av == 0.0) continue;  // sparse output-layer grads
        double* crow = data_.data() + i * cols_;
        for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

Matrix Matrix::matMul(const Matrix& a, bool transpose_a, const Matrix& b,
                      bool transpose_b) {
  const std::size_t m = transpose_a ? a.cols() : a.rows();
  const std::size_t n = transpose_b ? b.rows() : b.cols();
  Matrix c = Matrix::zeros(m, n);
  c.addMatMul(a, transpose_a, b, transpose_b);
  return c;
}

}  // namespace posetrl
