#include "target/target_info.h"

#include "ir/instruction.h"
#include "support/error.h"

namespace posetrl {

namespace {

/// Base (scalar) execution cost of \p inst on x86-64. Numbers follow the
/// shape of Agner Fog's Skylake tables: cheap ALU ops, 20+-cycle integer
/// division, mid-cost FP, 4-ish-cycle loads.
InstCost x86Cost(const Instruction& inst) {
  switch (inst.opcode()) {
    case Opcode::Alloca: return {0.25, 1.0, 1.0};
    case Opcode::Load: return {0.5, 4.0, 1.0};
    case Opcode::Store: return {1.0, 1.0, 2.0};
    case Opcode::Gep: return {0.5, 1.0, 1.0};
    case Opcode::Ret: return {1.0, 1.0, 2.0};
    case Opcode::Br: return {0.5, 1.0, 1.0};
    case Opcode::CondBr: return {0.5, 1.0, 1.0};
    case Opcode::Switch: return {2.0, 3.0, 4.0};
    case Opcode::Unreachable: return {0.0, 0.0, 0.0};
    case Opcode::Phi: return {0.25, 0.5, 1.0};
    case Opcode::Call: return {2.0, 3.0, 3.0};
    case Opcode::Select: return {0.5, 1.0, 1.0};
    case Opcode::Add:
    case Opcode::Sub: return {0.25, 1.0, 1.0};
    case Opcode::Mul: return {1.0, 3.0, 1.0};
    case Opcode::SDiv:
    case Opcode::UDiv: return {21.0, 26.0, 2.0};
    case Opcode::SRem:
    case Opcode::URem: return {21.0, 29.0, 2.0};
    case Opcode::Shl:
    case Opcode::LShr:
    case Opcode::AShr: return {0.5, 1.0, 1.0};
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor: return {0.25, 1.0, 1.0};
    case Opcode::FAdd:
    case Opcode::FSub: return {0.5, 4.0, 1.0};
    case Opcode::FMul: return {0.5, 4.0, 1.0};
    case Opcode::FDiv: return {4.0, 14.0, 1.0};
    case Opcode::ICmp: return {0.25, 1.0, 1.0};
    case Opcode::FCmp: return {0.5, 3.0, 1.0};
    case Opcode::ZExt:
    case Opcode::SExt:
    case Opcode::Trunc: return {0.25, 1.0, 1.0};
    case Opcode::SIToFP:
    case Opcode::FPToSI: return {1.0, 6.0, 2.0};
  }
  POSETRL_UNREACHABLE("unknown opcode in x86Cost");
}

/// Base (scalar) execution cost on AArch64 (Cortex-A76-ish): similar ALU
/// costs, markedly cheaper integer division, same relative FP ordering.
InstCost a64Cost(const Instruction& inst) {
  switch (inst.opcode()) {
    case Opcode::Alloca: return {0.25, 1.0, 1.0};
    case Opcode::Load: return {0.5, 4.0, 1.0};
    case Opcode::Store: return {1.0, 1.0, 1.0};
    case Opcode::Gep: return {0.5, 1.0, 1.0};
    case Opcode::Ret: return {1.0, 1.0, 1.0};
    case Opcode::Br: return {0.5, 1.0, 1.0};
    case Opcode::CondBr: return {0.5, 1.0, 1.0};
    case Opcode::Switch: return {2.0, 3.0, 4.0};
    case Opcode::Unreachable: return {0.0, 0.0, 0.0};
    case Opcode::Phi: return {0.25, 0.5, 1.0};
    case Opcode::Call: return {2.0, 2.0, 2.0};
    case Opcode::Select: return {0.5, 1.0, 1.0};
    case Opcode::Add:
    case Opcode::Sub: return {0.25, 1.0, 1.0};
    case Opcode::Mul: return {1.0, 3.0, 1.0};
    case Opcode::SDiv:
    case Opcode::UDiv: return {7.0, 12.0, 1.0};
    case Opcode::SRem:
    case Opcode::URem: return {8.0, 15.0, 2.0};
    case Opcode::Shl:
    case Opcode::LShr:
    case Opcode::AShr: return {0.5, 1.0, 1.0};
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor: return {0.25, 1.0, 1.0};
    case Opcode::FAdd:
    case Opcode::FSub: return {0.5, 3.0, 1.0};
    case Opcode::FMul: return {0.5, 3.0, 1.0};
    case Opcode::FDiv: return {5.0, 13.0, 1.0};
    case Opcode::ICmp: return {0.25, 1.0, 1.0};
    case Opcode::FCmp: return {0.5, 2.0, 1.0};
    case Opcode::ZExt:
    case Opcode::SExt:
    case Opcode::Trunc: return {0.25, 1.0, 1.0};
    case Opcode::SIToFP:
    case Opcode::FPToSI: return {1.0, 5.0, 1.0};
  }
  POSETRL_UNREACHABLE("unknown opcode in a64Cost");
}

/// Encoded bytes of one x86-64 instruction (rough averages; variable-length
/// encoding makes small ALU ops cheap and control flow / calls larger).
double x86Bytes(const Instruction& inst) {
  switch (inst.opcode()) {
    case Opcode::Alloca: return 4.0;
    case Opcode::Load:
    case Opcode::Store: return 4.0;
    case Opcode::Gep: return 4.0;  // lea
    case Opcode::Ret: return 1.0;
    case Opcode::Br: return 2.0;
    case Opcode::CondBr: return 4.0;  // jcc (+macro-fused cmp)
    case Opcode::Switch: return 8.0 + 4.0 * inst.numSuccessors();
    case Opcode::Unreachable: return 2.0;  // ud2
    case Opcode::Phi: return 3.0;          // register shuffle at edges
    case Opcode::Call: return 5.0;
    case Opcode::Select: return 6.0;  // cmov + setup
    case Opcode::SDiv:
    case Opcode::UDiv:
    case Opcode::SRem:
    case Opcode::URem: return 5.0;  // cqo + idiv + moves
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv: return 5.0;  // SSE with prefix
    case Opcode::FCmp: return 5.0;
    case Opcode::SIToFP:
    case Opcode::FPToSI: return 5.0;
    default: return 3.0;  // ALU / compare / cast.
  }
}

/// Encoded 4-byte units of one AArch64 instruction.
double a64Units(const Instruction& inst) {
  switch (inst.opcode()) {
    case Opcode::Switch: return 2.0 + inst.numSuccessors();  // cmp+b.eq chain
    case Opcode::Select: return 2.0;  // cmp + csel
    case Opcode::SRem:
    case Opcode::URem: return 2.0;    // sdiv + msub
    case Opcode::Call: return 1.0;    // bl
    case Opcode::CondBr: return 2.0;  // cmp + b.cond
    default: return 1.0;
  }
}

}  // namespace

const TargetInfo& TargetInfo::x86_64() {
  static const TargetInfo info(TargetArch::X86_64, "x86-64",
                               /*dispatch_width=*/4.0,
                               /*fixed_width=*/false);
  return info;
}

const TargetInfo& TargetInfo::aarch64() {
  static const TargetInfo info(TargetArch::AArch64, "aarch64",
                               /*dispatch_width=*/4.0,
                               /*fixed_width=*/true);
  return info;
}

const TargetInfo& TargetInfo::forArch(TargetArch arch) {
  return arch == TargetArch::X86_64 ? x86_64() : aarch64();
}

InstCost TargetInfo::cost(const Instruction& inst) const {
  InstCost c = arch_ == TargetArch::X86_64 ? x86Cost(inst) : a64Cost(inst);
  const unsigned w = inst.vectorWidth();
  if (w > 1) {
    // One w-wide SIMD op replaces w scalar slots; SIMD lanes are slightly
    // more expensive than a lone scalar op, hence the 1.25 group penalty.
    const double scale = 1.25 / static_cast<double>(w);
    c.rthroughput *= scale;
    c.latency *= scale;
    c.uops *= scale;
  }
  return c;
}

double TargetInfo::encodingUnits(const Instruction& inst) const {
  return arch_ == TargetArch::X86_64 ? x86Bytes(inst) : a64Units(inst);
}

}  // namespace posetrl
