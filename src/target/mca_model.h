#pragma once

/// \file mca_model.h
/// Static throughput model — the llvm-mca analog of the paper (R_Throughput
/// numerator of Eqn 3). Per-block cycle estimates from the target cost
/// tables are weighted by static block frequencies, so loop bodies dominate
/// the estimate the way they dominate real execution.

#include "target/target_info.h"

namespace posetrl {

class BasicBlock;
class Function;
class Module;

/// Frequency-weighted cycle estimate for a function or module.
struct ThroughputEstimate {
  double weighted_cycles = 0.0;  ///< Sum of freq(block) * blockCycles(block).
  double weighted_insts = 0.0;   ///< Sum of freq(block) * |block|.

  /// Modeled instructions per cycle (0 when there is no code).
  double throughput() const {
    return weighted_cycles > 0.0 ? weighted_insts / weighted_cycles : 0.0;
  }
};

/// llvm-mca-style static analyzer over MiniIR.
class McaModel {
 public:
  explicit McaModel(const TargetInfo& target) : target_(&target) {}

  /// Estimated cycles for one straight-line execution of \p b.
  double blockCycles(const BasicBlock& b) const;

  /// Frequency-weighted estimate over all reachable blocks of \p f.
  ThroughputEstimate functionEstimate(Function& f) const;

  /// Sum of functionEstimate over every function definition in \p m.
  ThroughputEstimate moduleEstimate(Module& m) const;

 private:
  const TargetInfo* target_;
};

}  // namespace posetrl
