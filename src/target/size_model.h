#pragma once

/// \file size_model.h
/// Object-size model: the stand-in for the paper's "binary size after
/// llvm-strip" measurement (R_BinSize denominator of Eqn 2). Text bytes come
/// from the per-target instruction-encoding estimate, data bytes from global
/// initializers, and a per-symbol overhead models headers/symbol tables.

#include "target/target_info.h"

namespace posetrl {

class Function;
class Module;

/// Section-level decomposition of the modeled object size.
struct SizeBreakdown {
  double text_bytes = 0.0;      ///< Encoded function bodies.
  double data_bytes = 0.0;      ///< Global-variable storage.
  double overhead_bytes = 0.0;  ///< Headers, symbol table, per-symbol cost.

  double total() const { return text_bytes + data_bytes + overhead_bytes; }
};

/// Estimates stripped-object size for one target.
class SizeModel {
 public:
  explicit SizeModel(const TargetInfo& target) : target_(&target) {}

  /// Encoded size of one function body in bytes (0 for declarations). On
  /// fixed-width targets the result is a whole multiple of 4.
  double functionBytes(const Function& f) const;

  /// Full decomposition over every function and global of \p m.
  SizeBreakdown moduleSize(const Module& m) const;

  /// Convenience: moduleSize(m).total().
  double objectBytes(const Module& m) const;

 private:
  const TargetInfo* target_;
};

}  // namespace posetrl
