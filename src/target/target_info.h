#pragma once

/// \file target_info.h
/// Per-architecture cost and encoding models. The paper measures real
/// binaries on x86-64 and AArch64; we substitute a static per-instruction
/// cost table in the llvm-mca style (reciprocal throughput, latency, uops)
/// plus an instruction-encoding size estimate, both consumed by the size
/// model, the throughput model and the interpreter's cycle accounting.

#include <string>

namespace posetrl {

class Instruction;

/// Architectures modeled by the reproduction (the paper's Table IV/V pair).
enum class TargetArch { X86_64, AArch64 };

/// llvm-mca style cost triple for one instruction.
struct InstCost {
  double rthroughput = 0.25;  ///< Reciprocal throughput (cycles at steady state).
  double latency = 1.0;       ///< Result latency in cycles.
  double uops = 1.0;          ///< Decoded micro-ops.
};

/// Immutable description of one target architecture.
class TargetInfo {
 public:
  /// Shared singletons (cheap to look up; never freed).
  static const TargetInfo& forArch(TargetArch arch);
  static const TargetInfo& x86_64();
  static const TargetInfo& aarch64();

  TargetArch arch() const { return arch_; }
  const std::string& name() const { return name_; }

  /// Micro-ops the front end can dispatch per cycle.
  double dispatchWidth() const { return dispatch_width_; }

  /// True when every instruction encodes to a multiple of 4 bytes
  /// (AArch64); false for variable-length encodings (x86-64).
  bool fixedWidthEncoding() const { return fixed_width_; }

  /// Cost of executing \p inst once. Instructions marked with a vector
  /// width w model one w-wide SIMD operation spread over w scalar slots, so
  /// the returned cost is the vector-op cost divided by w.
  InstCost cost(const Instruction& inst) const;

  /// Estimated encoded size of \p inst in bytes (x86-64) or 4-byte units
  /// (AArch64), before vector-group scaling. Consumed by SizeModel.
  double encodingUnits(const Instruction& inst) const;

 private:
  TargetInfo(TargetArch arch, std::string name, double dispatch_width,
             bool fixed_width)
      : arch_(arch),
        name_(std::move(name)),
        dispatch_width_(dispatch_width),
        fixed_width_(fixed_width) {}

  TargetArch arch_;
  std::string name_;
  double dispatch_width_;
  bool fixed_width_;
};

}  // namespace posetrl
