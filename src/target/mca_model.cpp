#include "target/mca_model.h"

#include "analysis/block_frequency.h"
#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/module.h"

namespace posetrl {

double McaModel::blockCycles(const BasicBlock& b) const {
  // Same accounting as the interpreter's dynamic cycle counter: steady-state
  // reciprocal throughput, a latency tax for dependence chains, and a
  // front-end term from uops over the dispatch width.
  double cycles = 0.0;
  for (const auto& inst : b.insts()) {
    const InstCost c = target_->cost(*inst);
    cycles += c.rthroughput + 0.25 * c.latency + c.uops / target_->dispatchWidth();
  }
  return cycles;
}

ThroughputEstimate McaModel::functionEstimate(Function& f) const {
  ThroughputEstimate est;
  if (f.isDeclaration()) return est;
  BlockFrequency freq(f);
  for (auto it = f.blocksBegin(); it != f.blocksEnd(); ++it) {
    BasicBlock* bb = it->get();
    const double w = freq.frequency(bb);
    if (w <= 0.0) continue;  // Unreachable.
    est.weighted_cycles += w * blockCycles(*bb);
    est.weighted_insts += w * static_cast<double>(bb->size());
  }
  return est;
}

ThroughputEstimate McaModel::moduleEstimate(Module& m) const {
  ThroughputEstimate total;
  for (auto it = m.functionsBegin(); it != m.functionsEnd(); ++it) {
    const ThroughputEstimate e = functionEstimate(**it);
    total.weighted_cycles += e.weighted_cycles;
    total.weighted_insts += e.weighted_insts;
  }
  return total;
}

}  // namespace posetrl
