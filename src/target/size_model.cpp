#include "target/size_model.h"

#include <cmath>

#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/global_variable.h"
#include "ir/module.h"

namespace posetrl {

namespace {

// Per-symbol bookkeeping costs (symbol table entry, relocation, alignment
// slack) and the flat object-file header.
constexpr double kHeaderBytes = 64.0;
constexpr double kPerFunctionOverhead = 24.0;
constexpr double kPerGlobalOverhead = 16.0;

// Vector ops encode a little larger than a lone scalar op of the same kind.
constexpr double kVectorEncodingPenalty = 1.25;

}  // namespace

double SizeModel::functionBytes(const Function& f) const {
  if (f.isDeclaration()) return 0.0;
  // Prologue/epilogue: x86-64 frame setup in bytes; AArch64 stp/ldp+ret in
  // 4-byte units.
  double units = target_->fixedWidthEncoding() ? 2.0 : 6.0;
  for (const auto& bb : f.blocks()) {
    for (const auto& inst : bb->insts()) {
      double u = target_->encodingUnits(*inst);
      const unsigned w = inst->vectorWidth();
      if (w > 1) u = u * kVectorEncodingPenalty / static_cast<double>(w);
      units += u;
    }
  }
  if (target_->fixedWidthEncoding()) {
    // Fixed-width ISA: whole instructions only, 4 bytes each.
    return 4.0 * std::ceil(units);
  }
  return units;
}

SizeBreakdown SizeModel::moduleSize(const Module& m) const {
  SizeBreakdown out;
  out.overhead_bytes = kHeaderBytes;
  for (const auto& f : m.functions()) {
    if (f->isDeclaration()) continue;
    out.text_bytes += functionBytes(*f);
    out.overhead_bytes += kPerFunctionOverhead;
  }
  for (const auto& g : m.globals()) {
    const double bytes = static_cast<double>(g->valueType()->byteSize());
    out.data_bytes += bytes < 1.0 ? 1.0 : bytes;
    out.overhead_bytes += kPerGlobalOverhead;
  }
  return out;
}

double SizeModel::objectBytes(const Module& m) const {
  return moduleSize(m).total();
}

}  // namespace posetrl
