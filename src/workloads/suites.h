#pragma once

/// \file suites.h
/// Benchmark-suite definitions mirroring the paper's evaluation setup:
/// SPEC CPU 2017, SPEC CPU 2006 and MiBench suites for validation, and a
/// 130-program llvm-test-suite-style corpus for training. Each named
/// benchmark is a seeded synthetic program whose kernel mix loosely matches
/// the real benchmark's character (loop-dense scientific codes, branchy
/// integer codes, small embedded kernels, ...).

#include <string>
#include <vector>

#include "workloads/generator.h"

namespace posetrl {

/// A named set of program specifications.
struct SuiteSpec {
  std::string name;
  std::vector<ProgramSpec> programs;
};

/// SPEC CPU 2017 analog (13 benchmarks, larger programs).
SuiteSpec spec2017Suite();

/// SPEC CPU 2006 analog (12 benchmarks).
SuiteSpec spec2006Suite();

/// MiBench analog (12 small embedded kernels).
SuiteSpec mibenchSuite();

/// Training corpus in the style of llvm-test-suite single-source programs.
SuiteSpec trainingCorpus(int count = 130, std::uint64_t seed = 2022);

}  // namespace posetrl
