#pragma once

/// \file generator.h
/// Synthetic MiniIR program generator — the stand-in for SPEC CPU
/// 2006/2017, MiBench and the llvm-test-suite single-source corpus (see
/// DESIGN.md §2). Programs are seeded and deterministic, verifier-clean,
/// trap-free and terminating, with observable behaviour (pr.sink calls and
/// a checksum return) so the interpreter can compare semantics before and
/// after optimization.
///
/// Each program is assembled from weighted kernel templates that are
/// deliberate "fodder" for specific Oz passes: redundant expression chains
/// (CSE/GVN), memset-shaped loops (loop-idiom), independent-array loops
/// (distribute/vectorize), struct locals (SROA), branch ladders
/// (jump-threading / correlated-propagation), tiny helpers (inliner),
/// self-recursive accumulators (tailcallelim), float round-trips
/// (float2int), div+rem pairs, dead stores/locals (DSE/DCE), and
/// loop-invariant subexpressions (LICM).

#include <cstdint>
#include <memory>
#include <string>

namespace posetrl {

class Module;

/// Tunable mix of kernel templates; weights need not sum to anything.
struct KernelMix {
  double straightline = 1.0;  ///< Redundant arithmetic chains.
  double reduce_loop = 1.0;   ///< Counted accumulation loops.
  double array_loop = 1.0;    ///< Fill + reduce over a local array.
  double two_array = 0.6;     ///< Independent store loops (distribute).
  double memset_loop = 0.6;   ///< Zero-fill loops (loop-idiom).
  double branchy = 1.0;       ///< If/else ladders with shared subexprs.
  double state_machine = 0.6; ///< Switch-driven loops.
  double struct_local = 0.7;  ///< Aggregate locals (SROA).
  double fp_kernel = 0.6;     ///< sitofp/arith/fptosi round trips.
  double divrem = 0.5;        ///< Paired division/remainder.
  double invariant = 0.8;     ///< Loop-invariant subexpressions (LICM).
  double recursion = 0.4;     ///< Self-recursive accumulators (TCE).
  double nested_loop = 0.8;   ///< Two-level loop nests.
};

/// Full specification of one synthetic program.
struct ProgramSpec {
  std::string name = "prog";
  std::uint64_t seed = 1;
  /// Overall size knob: roughly the number of kernels in the program.
  int kernels = 6;
  /// Upper bound on constant loop trip counts.
  int max_trip = 48;
  /// Number of small helper functions shared by kernels.
  int helpers = 3;
  /// Number of module-level globals.
  int globals = 4;
  /// Emit extra dead / redundant code (optimization headroom).
  bool redundancy = true;
  /// Emit expect/assume hints.
  bool hints = true;
  /// Emit an indirect call through a constant function-pointer global.
  bool funcptr = true;
  KernelMix mix;
};

/// Generates the program described by \p spec. The module verifies cleanly
/// and its @main runs trap-free under the interpreter for any input seed.
std::unique_ptr<Module> generateProgram(const ProgramSpec& spec);

}  // namespace posetrl
