#include "workloads/generator.h"

#include <vector>

#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/global_variable.h"
#include "ir/instruction.h"
#include "ir/ir_builder.h"
#include "ir/module.h"
#include "support/rng.h"

namespace posetrl {
namespace {

/// Builds one synthetic program; all helpers keep the invariants listed in
/// generator.h (verifier-clean, trap-free, terminating, observable).
class ProgramBuilder {
 public:
  explicit ProgramBuilder(const ProgramSpec& spec)
      : spec_(spec),
        rng_(spec.seed ^ 0x706f7365u),  // Decorrelate from other users.
        module_(std::make_unique<Module>(spec.name)),
        b_(module_.get()) {}

  std::unique_ptr<Module> build() {
    ArenaScope arena_scope(module_->arena());
    tc_ = &module_->types();
    input_fn_ = module_->getIntrinsic(IntrinsicId::Input);
    sink_fn_ = module_->getIntrinsic(IntrinsicId::Sink);
    sinkf_fn_ = module_->getIntrinsic(IntrinsicId::SinkF64);
    if (spec_.hints) {
      expect_fn_ = module_->getIntrinsic(IntrinsicId::Expect);
      assume_fn_ = module_->getIntrinsic(IntrinsicId::Assume);
    }
    makeGlobals();
    makeHelpers();
    if (spec_.mix.recursion > 0.0) makeRecursiveHelper();

    std::vector<Function*> kernels;
    for (int k = 0; k < spec_.kernels; ++k) {
      kernels.push_back(makeKernel(k));
    }
    makeMain(kernels);
    return std::move(module_);
  }

 private:
  using Pool = std::vector<Value*>;

  // ---- small utilities ------------------------------------------------

  Value* c64(std::int64_t v) { return module_->i64Const(v); }

  Value* pick(const Pool& pool) {
    return pool[rng_.nextBelow(pool.size())];
  }

  /// A random arithmetic combination of pool values; never traps.
  Value* randomExpr(Pool& pool, int depth) {
    if (depth <= 0 || rng_.nextBool(0.3)) return pick(pool);
    Value* lhs = randomExpr(pool, depth - 1);
    Value* rhs = rng_.nextBool(0.35)
                     ? c64(rng_.nextInt(1, 13))
                     : randomExpr(pool, depth - 1);
    switch (rng_.nextBelow(8)) {
      case 0: return b_.binary(Opcode::Add, lhs, rhs);
      case 1: return b_.binary(Opcode::Sub, lhs, rhs);
      case 2: return b_.binary(Opcode::Mul, lhs, rhs);
      case 3: return b_.binary(Opcode::And, lhs, rhs);
      case 4: return b_.binary(Opcode::Or, lhs, rhs);
      case 5: return b_.binary(Opcode::Xor, lhs, rhs);
      case 6: {
        // Safe division: divisor forced odd-positive.
        Value* div = b_.binary(Opcode::Or, rhs, c64(1));
        Value* pos = b_.binary(Opcode::And, div, c64(0xffff));
        Value* nz = b_.binary(Opcode::Or, pos, c64(1));
        return b_.binary(Opcode::SDiv, lhs, nz);
      }
      default: {
        Value* amount = c64(rng_.nextInt(0, 7));
        return b_.binary(rng_.nextBool() ? Opcode::Shl : Opcode::AShr, lhs,
                         amount);
      }
    }
  }

  /// Emits `sink(v)`.
  void sink(Value* v) { b_.call(sink_fn_, {v}); }

  /// Wraps \p v with an expect hint occasionally.
  Value* maybeExpect(Value* v) {
    if (expect_fn_ != nullptr && rng_.nextBool(0.15)) {
      return b_.call(expect_fn_, {v, c64(rng_.nextInt(0, 3))});
    }
    return v;
  }

  // ---- module-level furniture -----------------------------------------

  void makeGlobals() {
    for (int i = 0; i < spec_.globals; ++i) {
      const std::string name = "g" + std::to_string(i);
      switch (rng_.nextBelow(4)) {
        case 0:
          globals_.push_back(module_->createGlobal(
              name, tc_->i64(), GlobalInit::ofInt(rng_.nextInt(1, 99)),
              GlobalVariable::Linkage::Internal));
          break;
        case 1: {
          // Constant lookup table, power-of-two sized.
          std::vector<std::int64_t> elems;
          for (int e = 0; e < 16; ++e) elems.push_back(rng_.nextInt(0, 255));
          tables_.push_back(module_->createGlobal(
              name, tc_->arrayOf(tc_->i64(), 16),
              GlobalInit::ofIntArray(std::move(elems)),
              GlobalVariable::Linkage::Internal, /*is_const=*/true));
          break;
        }
        case 2:
          globals_.push_back(module_->createGlobal(
              name, tc_->i64(), GlobalInit::zero(),
              GlobalVariable::Linkage::Internal));
          break;
        default:
          // Deliberately unused (globaldce fodder).
          module_->createGlobal(name + ".unused", tc_->i64(),
                                GlobalInit::ofInt(7),
                                GlobalVariable::Linkage::Internal);
          break;
      }
    }
    if (spec_.redundancy) {
      // Duplicate constant tables (constmerge fodder).
      std::vector<std::int64_t> elems{3, 1, 4, 1, 5, 9, 2, 6};
      for (int d = 0; d < 2; ++d) {
        tables_.push_back(module_->createGlobal(
            "dup" + std::to_string(d), tc_->arrayOf(tc_->i64(), 8),
            GlobalInit::ofIntArray(elems),
            GlobalVariable::Linkage::Internal, /*is_const=*/true));
      }
    }
  }

  void makeHelpers() {
    Type* fty = tc_->funcType(tc_->i64(), {tc_->i64()});
    for (int i = 0; i < spec_.helpers; ++i) {
      Function* h = module_->createFunction("helper" + std::to_string(i),
                                            fty,
                                            Function::Linkage::Internal);
      if (rng_.nextBool(0.25)) h->addAttr(FnAttr::NoInline);
      BasicBlock* entry = h->addBlock("entry");
      b_.setInsertPoint(entry);
      Pool pool{h->arg(0), c64(rng_.nextInt(1, 9)), c64(rng_.nextInt(2, 17))};
      Value* r = randomExpr(pool, 2);
      Value* r2 = b_.binary(Opcode::Xor, r, c64(rng_.nextInt(0, 127)));
      b_.ret(r2);
      helpers_.push_back(h);
    }
    if (spec_.funcptr && !helpers_.empty()) {
      funcptr_global_ = module_->createGlobal(
          "fp.helper", tc_->ptrTo(fty),
          GlobalInit::ofFuncPtr(helpers_[0]),
          GlobalVariable::Linkage::Internal, /*is_const=*/true);
    }
  }

  void makeRecursiveHelper() {
    Type* fty = tc_->funcType(tc_->i64(), {tc_->i64(), tc_->i64()});
    Function* rec = module_->createFunction("rec_accum", fty,
                                            Function::Linkage::Internal);
    BasicBlock* entry = rec->addBlock("entry");
    BasicBlock* base = rec->addBlock("base");
    BasicBlock* step = rec->addBlock("step");
    b_.setInsertPoint(entry);
    Value* done = b_.icmp(ICmpInst::Pred::SLE, rec->arg(0), c64(0));
    b_.condBr(done, base, step);
    b_.setInsertPoint(base);
    b_.ret(rec->arg(1));
    b_.setInsertPoint(step);
    Value* n1 = b_.binary(Opcode::Sub, rec->arg(0), c64(1));
    Value* acc = b_.binary(Opcode::Add, rec->arg(1), rec->arg(0));
    Value* r = b_.call(rec, {n1, acc});
    b_.ret(r);
    recursive_ = rec;
  }

  // ---- kernels ----------------------------------------------------------

  Function* makeKernel(int index) {
    // Some kernels carry an extra, unused parameter (deadargelim fodder).
    const bool dead_arg = spec_.redundancy && rng_.nextBool(0.3);
    std::vector<Type*> params{tc_->i64(), tc_->i64()};
    if (dead_arg) params.push_back(tc_->i64());
    Function* f = module_->createFunction(
        "kernel" + std::to_string(index),
        tc_->funcType(tc_->i64(), params), Function::Linkage::Internal);
    BasicBlock* entry = f->addBlock("entry");
    b_.setInsertPoint(entry);

    // Bound the raw arguments so every derived trip count / index is safe.
    Value* x = b_.binary(Opcode::And, f->arg(0), c64(1023));
    Value* y = b_.binary(Opcode::And, f->arg(1), c64(1023));
    Pool pool{x, y, c64(rng_.nextInt(1, 9)), c64(rng_.nextInt(10, 99))};

    std::vector<Value*> results;
    const KernelMix& mix = spec_.mix;
    const std::vector<std::pair<double, int>> weighted{
        {mix.straightline, 0}, {mix.reduce_loop, 1}, {mix.array_loop, 2},
        {mix.two_array, 3},    {mix.memset_loop, 4}, {mix.branchy, 5},
        {mix.state_machine, 6}, {mix.struct_local, 7}, {mix.fp_kernel, 8},
        {mix.divrem, 9},       {mix.invariant, 10},  {mix.recursion, 11},
        {mix.nested_loop, 12},
    };
    std::vector<double> weights;
    for (auto& [w, id] : weighted) weights.push_back(w);

    const int pieces = 1 + static_cast<int>(rng_.nextBelow(3));
    for (int p = 0; p < pieces; ++p) {
      switch (weighted[rng_.nextWeighted(weights)].second) {
        case 0: results.push_back(straightline(pool, f)); break;
        case 1: results.push_back(reduceLoop(pool, f)); break;
        case 2: results.push_back(arrayLoop(pool, f)); break;
        case 3: results.push_back(twoArrayLoop(pool, f)); break;
        case 4: results.push_back(memsetLoop(pool, f)); break;
        case 5: results.push_back(branchy(pool, f)); break;
        case 6: results.push_back(stateMachine(pool, f)); break;
        case 7: results.push_back(structLocal(pool, f)); break;
        case 8: results.push_back(fpKernel(pool, f)); break;
        case 9: results.push_back(divRem(pool, f)); break;
        case 10: results.push_back(invariantLoop(pool, f)); break;
        case 11: results.push_back(recursionCall(pool, f)); break;
        default: results.push_back(nestedLoop(pool, f)); break;
      }
      // Results feed later pieces.
      pool.push_back(results.back());
    }

    // Optional helper / table / global spice.
    if (!helpers_.empty() && rng_.nextBool(0.7)) {
      Function* h = helpers_[rng_.nextBelow(helpers_.size())];
      results.push_back(b_.call(h, {pick(pool)}));
    }
    if (!tables_.empty() && rng_.nextBool(0.6)) {
      GlobalVariable* t = tables_[rng_.nextBelow(tables_.size())];
      const std::int64_t n =
          static_cast<std::int64_t>(t->valueType()->arrayCount());
      Value* idx = b_.binary(Opcode::And, pick(pool), c64(n - 1));
      Value* p = b_.gep(t, {c64(0), idx});
      results.push_back(b_.load(p));
    }
    if (!globals_.empty() && rng_.nextBool(0.5)) {
      GlobalVariable* g = globals_[rng_.nextBelow(globals_.size())];
      Value* old = b_.load(g);
      Value* next = b_.binary(Opcode::Add, old, pick(pool));
      b_.store(next, g);
      results.push_back(next);
    }
    if (funcptr_global_ != nullptr && rng_.nextBool(0.5)) {
      Value* fp = b_.load(funcptr_global_);
      results.push_back(b_.callIndirect(tc_->i64(), fp, {pick(pool)}));
    }
    if (spec_.redundancy) {
      // Dead computation chain.
      Value* dead = randomExpr(pool, 2);
      b_.binary(Opcode::Mul, dead, c64(3));
    }

    Value* acc = results[0];
    for (std::size_t i = 1; i < results.size(); ++i) {
      acc = b_.binary(Opcode::Xor, acc, results[i]);
    }
    b_.ret(acc);
    return f;
  }

  /// Redundant arithmetic chain (CSE/GVN/reassociate fodder).
  Value* straightline(Pool& pool, Function*) {
    Value* a = randomExpr(pool, 3);
    Value* b1 = b_.binary(Opcode::Add, a, c64(5));
    // Exact duplicate of b1.
    Value* b2 = b_.binary(Opcode::Add, a, c64(5));
    Value* c = b_.binary(Opcode::Mul, b1, b2);
    // Constants scattered for reassociation: ((x + 1) + y) + 2.
    Value* r1 = b_.binary(Opcode::Add, pick(pool), c64(1));
    Value* r2 = b_.binary(Opcode::Add, r1, c);
    Value* r3 = b_.binary(Opcode::Add, r2, c64(2));
    if (spec_.redundancy) {
      b_.binary(Opcode::Sub, r3, r3);  // Dead, folds to 0.
    }
    return b_.binary(Opcode::Xor, r3, pick(pool));
  }

  /// While-shaped counted loop (rotate fodder) reducing f(i).
  Value* reduceLoop(Pool& pool, Function* f) {
    const std::int64_t n = rng_.nextInt(4, spec_.max_trip);
    Value* bound = rng_.nextBool(0.5)
                       ? c64(n)
                       : b_.binary(Opcode::And, pick(pool), c64(31));
    BasicBlock* pre = b_.insertBlock();
    BasicBlock* header = f->addBlock("loop.h");
    BasicBlock* body = f->addBlock("loop.b");
    BasicBlock* exit = f->addBlock("loop.x");
    Value* seed = pick(pool);
    b_.br(header);

    b_.setInsertPoint(header);
    PhiInst* iv = b_.phi(tc_->i64());
    PhiInst* acc = b_.phi(tc_->i64());
    Value* cond = b_.icmp(ICmpInst::Pred::SLT, iv, bound);
    b_.condBr(cond, body, exit);

    b_.setInsertPoint(body);
    Value* term = b_.binary(Opcode::Mul, iv, c64(rng_.nextInt(1, 7)));
    Value* mixed = b_.binary(Opcode::Add, term, seed);
    Value* acc_next = b_.binary(Opcode::Add, acc, mixed);
    Value* iv_next = b_.binary(Opcode::Add, iv, c64(1));
    b_.br(header);

    iv->addIncoming(c64(0), pre);
    iv->addIncoming(iv_next, body);
    acc->addIncoming(c64(0), pre);
    acc->addIncoming(acc_next, body);

    b_.setInsertPoint(exit);
    return acc;
  }

  /// Do-while-shaped fill + reduce over a local array.
  Value* arrayLoop(Pool& pool, Function* f) {
    const std::int64_t n = rng_.nextBool(0.4) ? 64 : 16;
    AllocaInst* buf = b_.alloca_(tc_->arrayOf(tc_->i64(), n));
    if (spec_.hints && rng_.nextBool(0.5)) {
      // Alignment fact for alignment-from-assumptions to harvest.
      Function* aa = module_->getAssumeAligned(buf->allocatedType());
      b_.call(aa, {buf, c64(16)});
    }
    Value* seed = pick(pool);
    BasicBlock* pre = b_.insertBlock();

    // Fill loop (single block, vectorize candidate).
    BasicBlock* fill = f->addBlock("fill");
    BasicBlock* mid = f->addBlock("mid");
    b_.br(fill);
    b_.setInsertPoint(fill);
    PhiInst* i1 = b_.phi(tc_->i64());
    Value* p = b_.gep(buf, {c64(0), i1});
    Value* v = b_.binary(Opcode::Add, b_.binary(Opcode::Mul, i1, c64(3)),
                         seed);
    b_.store(v, p);
    Value* i1n = b_.binary(Opcode::Add, i1, c64(1));
    Value* d1 = b_.icmp(ICmpInst::Pred::SGE, i1n, c64(n));
    b_.condBr(d1, mid, fill);
    i1->addIncoming(c64(0), pre);
    i1->addIncoming(i1n, fill);

    // Reduce loop.
    b_.setInsertPoint(mid);
    BasicBlock* red = f->addBlock("reduce");
    BasicBlock* out = f->addBlock("out");
    b_.br(red);
    b_.setInsertPoint(red);
    PhiInst* i2 = b_.phi(tc_->i64());
    PhiInst* s = b_.phi(tc_->i64());
    Value* p2 = b_.gep(buf, {c64(0), i2});
    Value* lv = b_.load(p2);
    Value* s_next = b_.binary(Opcode::Add, s, lv);
    Value* i2n = b_.binary(Opcode::Add, i2, c64(1));
    Value* d2 = b_.icmp(ICmpInst::Pred::SGE, i2n, c64(n));
    b_.condBr(d2, out, red);
    i2->addIncoming(c64(0), mid);
    i2->addIncoming(i2n, red);
    s->addIncoming(c64(0), mid);
    s->addIncoming(s_next, red);

    b_.setInsertPoint(out);
    if (spec_.redundancy) {
      // Dead local array: stored to, never read (DSE fodder).
      AllocaInst* dead = b_.alloca_(tc_->arrayOf(tc_->i64(), 4));
      Value* dp = b_.gep(dead, {c64(0), c64(1)});
      b_.store(s_next, dp);
      b_.store(c64(0), dp);
    }
    return s_next;
  }

  /// Single-block loop writing two independent arrays (distribute fodder).
  Value* twoArrayLoop(Pool& pool, Function* f) {
    const std::int64_t n = rng_.nextBool(0.4) ? 64 : 32;
    AllocaInst* a = b_.alloca_(tc_->arrayOf(tc_->i64(), n));
    AllocaInst* c = b_.alloca_(tc_->arrayOf(tc_->i64(), n));
    Value* seed = pick(pool);
    BasicBlock* pre = b_.insertBlock();
    BasicBlock* loop = f->addBlock("two");
    BasicBlock* out = f->addBlock("two.x");
    b_.br(loop);
    b_.setInsertPoint(loop);
    PhiInst* iv = b_.phi(tc_->i64());
    Value* pa = b_.gep(a, {c64(0), iv});
    Value* va = b_.binary(Opcode::Mul, iv, c64(5));
    b_.store(va, pa);
    Value* pc = b_.gep(c, {c64(0), iv});
    Value* vc = b_.binary(Opcode::Add, iv, seed);
    b_.store(vc, pc);
    Value* ivn = b_.binary(Opcode::Add, iv, c64(1));
    Value* done = b_.icmp(ICmpInst::Pred::SGE, ivn, c64(n));
    b_.condBr(done, out, loop);
    iv->addIncoming(c64(0), pre);
    iv->addIncoming(ivn, loop);

    b_.setInsertPoint(out);
    Value* p1 = b_.gep(a, {c64(0), c64(7)});
    Value* p2 = b_.gep(c, {c64(0), c64(3)});
    return b_.binary(Opcode::Add, b_.load(p1), b_.load(p2));
  }

  /// Zero-fill loop (loop-idiom fodder) followed by a couple of reads.
  Value* memsetLoop(Pool& pool, Function* f) {
    const std::int64_t n = 1 << rng_.nextInt(3, 6);
    AllocaInst* buf = b_.alloca_(tc_->arrayOf(tc_->i64(), n));
    BasicBlock* pre = b_.insertBlock();
    BasicBlock* loop = f->addBlock("mset");
    BasicBlock* out = f->addBlock("mset.x");
    b_.br(loop);
    b_.setInsertPoint(loop);
    PhiInst* iv = b_.phi(tc_->i64());
    Value* p = b_.gep(buf, {c64(0), iv});
    b_.store(c64(0), p);
    Value* ivn = b_.binary(Opcode::Add, iv, c64(1));
    Value* done = b_.icmp(ICmpInst::Pred::SGE, ivn, c64(n));
    b_.condBr(done, out, loop);
    iv->addIncoming(c64(0), pre);
    iv->addIncoming(ivn, loop);

    b_.setInsertPoint(out);
    Value* idx = b_.binary(Opcode::And, pick(pool), c64(n - 1));
    Value* pr = b_.gep(buf, {c64(0), idx});
    Value* r = b_.load(pr);
    // Store something non-zero afterwards so the buffer isn't dead.
    b_.store(b_.binary(Opcode::Add, r, c64(1)), pr);
    Value* r2 = b_.load(pr);
    return b_.binary(Opcode::Add, r, r2);
  }

  /// Branch ladder with duplicated subexpressions and a correlated
  /// recomparison (jump-threading / correlated-propagation fodder).
  Value* branchy(Pool& pool, Function* f) {
    Value* x = pick(pool);
    Value* y = pick(pool);
    Value* cond = b_.icmp(ICmpInst::Pred::SLT, x, y);
    BasicBlock* t = f->addBlock("br.t");
    BasicBlock* e = f->addBlock("br.e");
    BasicBlock* join = f->addBlock("br.j");
    BasicBlock* head = b_.insertBlock();
    b_.condBr(cond, t, e);

    b_.setInsertPoint(t);
    Value* vt = b_.binary(Opcode::Add, b_.binary(Opcode::Mul, x, c64(3)),
                          y);
    b_.br(join);
    b_.setInsertPoint(e);
    Value* ve = b_.binary(Opcode::Sub, b_.binary(Opcode::Mul, x, c64(3)),
                          y);
    b_.br(join);

    b_.setInsertPoint(join);
    PhiInst* merged = b_.phi(tc_->i64());
    merged->addIncoming(vt, t);
    merged->addIncoming(ve, e);
    // Correlated re-test of the same condition.
    Value* cond2 = b_.icmp(ICmpInst::Pred::SLT, x, y);
    Value* sel = b_.select(maybeExpectI1(cond2), merged,
                           b_.binary(Opcode::Add, merged, c64(9)));
    (void)head;
    return sel;
  }

  Value* maybeExpectI1(Value* v) { return v; }

  /// Switch-driven bounded state machine.
  Value* stateMachine(Pool& pool, Function* f) {
    Value* steps = b_.binary(Opcode::And, pick(pool), c64(15));
    BasicBlock* pre = b_.insertBlock();
    BasicBlock* header = f->addBlock("sm.h");
    BasicBlock* dispatch = f->addBlock("sm.d");
    BasicBlock* s0 = f->addBlock("sm.s0");
    BasicBlock* s1 = f->addBlock("sm.s1");
    BasicBlock* s2 = f->addBlock("sm.s2");
    BasicBlock* latch = f->addBlock("sm.l");
    BasicBlock* out = f->addBlock("sm.x");
    b_.br(header);

    b_.setInsertPoint(header);
    PhiInst* iv = b_.phi(tc_->i64());
    PhiInst* state = b_.phi(tc_->i64());
    PhiInst* acc = b_.phi(tc_->i64());
    Value* cond = b_.icmp(ICmpInst::Pred::SLT, iv, steps);
    b_.condBr(cond, dispatch, out);

    b_.setInsertPoint(dispatch);
    SwitchInst* sw = b_.switchOp(state, s2);
    sw->addCase(module_->i64Const(0), s0);
    sw->addCase(module_->i64Const(1), s1);

    b_.setInsertPoint(s0);
    Value* a0 = b_.binary(Opcode::Add, acc, c64(1));
    b_.br(latch);
    b_.setInsertPoint(s1);
    Value* a1 = b_.binary(Opcode::Add, acc, c64(10));
    b_.br(latch);
    b_.setInsertPoint(s2);
    Value* a2 = b_.binary(Opcode::Xor, acc, c64(0x5a));
    b_.br(latch);

    b_.setInsertPoint(latch);
    PhiInst* acc_next = b_.phi(tc_->i64());
    acc_next->addIncoming(a0, s0);
    acc_next->addIncoming(a1, s1);
    acc_next->addIncoming(a2, s2);
    PhiInst* st_next = b_.phi(tc_->i64());
    st_next->addIncoming(c64(1), s0);
    st_next->addIncoming(c64(2), s1);
    st_next->addIncoming(c64(0), s2);
    Value* ivn = b_.binary(Opcode::Add, iv, c64(1));
    b_.br(header);

    iv->addIncoming(c64(0), pre);
    iv->addIncoming(ivn, latch);
    state->addIncoming(c64(0), pre);
    state->addIncoming(st_next, latch);
    acc->addIncoming(c64(0), pre);
    acc->addIncoming(acc_next, latch);

    b_.setInsertPoint(out);
    return acc;
  }

  /// Aggregate local traffic (SROA fodder).
  Value* structLocal(Pool& pool, Function*) {
    Type* st = tc_->structOf({tc_->i64(), tc_->i64(), tc_->i32()});
    AllocaInst* s = b_.alloca_(st);
    Value* f0 = b_.gep(s, {c64(0), module_->i64Const(0)});
    Value* f1 = b_.gep(s, {c64(0), module_->i64Const(1)});
    Value* f2 = b_.gep(s, {c64(0), module_->i64Const(2)});
    Value* x = pick(pool);
    b_.store(x, f0);
    b_.store(b_.binary(Opcode::Add, x, c64(11)), f1);
    Value* narrow = b_.castOp(Opcode::Trunc, tc_->i32(), pick(pool));
    b_.store(narrow, f2);
    Value* v0 = b_.load(f0);
    Value* v1 = b_.load(f1);
    Value* v2 = b_.load(f2);
    Value* wide = b_.castOp(Opcode::SExt, tc_->i64(), v2);
    return b_.binary(Opcode::Add, b_.binary(Opcode::Mul, v0, v1), wide);
  }

  /// Float round-trip on narrow integers (float2int fodder).
  Value* fpKernel(Pool& pool, Function*) {
    Value* narrow = b_.castOp(Opcode::Trunc, tc_->i16(), pick(pool));
    Value* fa = b_.castOp(Opcode::SIToFP, tc_->f64(), narrow);
    Value* fm = b_.binary(Opcode::FMul, fa,
                          module_->constantFloat(rng_.nextInt(2, 9)));
    Value* fs = b_.binary(Opcode::FAdd, fm,
                          module_->constantFloat(rng_.nextInt(1, 5)));
    if (rng_.nextBool(0.3)) {
      b_.call(sinkf_fn_, {fs});
    }
    Value* back = b_.castOp(Opcode::FPToSI, tc_->i64(), fs);
    return back;
  }

  /// Paired division and remainder by the same operands.
  Value* divRem(Pool& pool, Function*) {
    Value* x = pick(pool);
    Value* den = c64(rng_.nextInt(3, 17));
    Value* q = b_.binary(Opcode::SDiv, x, den);
    Value* r = b_.binary(Opcode::SRem, x, den);
    return b_.binary(Opcode::Add, b_.binary(Opcode::Mul, q, c64(2)), r);
  }

  /// Loop with a hoistable invariant subexpression.
  Value* invariantLoop(Pool& pool, Function* f) {
    const std::int64_t n = rng_.nextInt(6, spec_.max_trip);
    Value* a = pick(pool);
    Value* b2 = pick(pool);
    BasicBlock* pre = b_.insertBlock();
    BasicBlock* header = f->addBlock("inv.h");
    BasicBlock* body = f->addBlock("inv.b");
    BasicBlock* exit = f->addBlock("inv.x");
    b_.br(header);

    b_.setInsertPoint(header);
    PhiInst* iv = b_.phi(tc_->i64());
    PhiInst* acc = b_.phi(tc_->i64());
    Value* cond = b_.icmp(ICmpInst::Pred::SLT, iv, c64(n));
    b_.condBr(cond, body, exit);

    b_.setInsertPoint(body);
    // Invariant computation recomputed every iteration.
    Value* inv1 = b_.binary(Opcode::Mul, a, b2);
    Value* inv2 = b_.binary(Opcode::Add, inv1, c64(17));
    Value* acc_next = b_.binary(
        Opcode::Add, acc, b_.binary(Opcode::Xor, inv2, iv));
    Value* ivn = b_.binary(Opcode::Add, iv, c64(1));
    b_.br(header);

    iv->addIncoming(c64(0), pre);
    iv->addIncoming(ivn, body);
    acc->addIncoming(c64(0), pre);
    acc->addIncoming(acc_next, body);

    b_.setInsertPoint(exit);
    return acc;
  }

  Value* recursionCall(Pool& pool, Function*) {
    if (recursive_ == nullptr) return pick(pool);
    Value* n = b_.binary(Opcode::And, pick(pool), c64(31));
    return b_.call(recursive_, {n, c64(0)});
  }

  /// Two-level nest with an inner reduction.
  Value* nestedLoop(Pool& pool, Function* f) {
    const std::int64_t outer_n = rng_.nextInt(3, 8);
    const std::int64_t inner_n = rng_.nextInt(3, 8);
    Value* seed = pick(pool);
    BasicBlock* pre = b_.insertBlock();
    BasicBlock* oh = f->addBlock("n.oh");
    BasicBlock* ih = f->addBlock("n.ih");
    BasicBlock* ib = f->addBlock("n.ib");
    BasicBlock* ol = f->addBlock("n.ol");
    BasicBlock* out = f->addBlock("n.x");
    b_.br(oh);

    b_.setInsertPoint(oh);
    PhiInst* i = b_.phi(tc_->i64());
    PhiInst* acc = b_.phi(tc_->i64());
    Value* ocond = b_.icmp(ICmpInst::Pred::SLT, i, c64(outer_n));
    b_.condBr(ocond, ih, out);

    b_.setInsertPoint(ih);
    PhiInst* j = b_.phi(tc_->i64());
    PhiInst* inner_acc = b_.phi(tc_->i64());
    Value* icond = b_.icmp(ICmpInst::Pred::SLT, j, c64(inner_n));
    b_.condBr(icond, ib, ol);

    b_.setInsertPoint(ib);
    Value* prod = b_.binary(Opcode::Mul, i, j);
    Value* mixed = b_.binary(Opcode::Add, prod, seed);
    Value* ia_next = b_.binary(Opcode::Add, inner_acc, mixed);
    Value* jn = b_.binary(Opcode::Add, j, c64(1));
    b_.br(ih);

    b_.setInsertPoint(ol);
    Value* acc_next = b_.binary(Opcode::Add, acc, inner_acc);
    Value* in = b_.binary(Opcode::Add, i, c64(1));
    b_.br(oh);

    j->addIncoming(c64(0), oh);
    j->addIncoming(jn, ib);
    inner_acc->addIncoming(c64(0), oh);
    inner_acc->addIncoming(ia_next, ib);
    i->addIncoming(c64(0), pre);
    i->addIncoming(in, ol);
    acc->addIncoming(c64(0), pre);
    acc->addIncoming(acc_next, ol);

    b_.setInsertPoint(out);
    return acc;
  }

  // ---- main --------------------------------------------------------------

  void makeMain(const std::vector<Function*>& kernels) {
    Function* main_fn = module_->createFunction(
        "main", tc_->funcType(tc_->i64(), {}),
        Function::Linkage::External);
    BasicBlock* entry = main_fn->addBlock("entry");
    b_.setInsertPoint(entry);
    Value* acc = c64(0);
    int input_idx = 0;
    for (Function* k : kernels) {
      Value* in1 = b_.call(input_fn_, {c64(input_idx++)});
      Value* in2 = b_.call(input_fn_, {c64(input_idx++)});
      std::vector<Value*> args{in1, in2};
      while (args.size() < k->numArgs()) args.push_back(c64(input_idx * 7));
      Value* r = b_.call(k, args);
      sink(r);
      acc = b_.binary(Opcode::Xor, acc, r);
      acc = b_.binary(Opcode::Add, acc, c64(1));
    }
    // Fold in mutable global state so cross-kernel stores are observable.
    for (GlobalVariable* g : globals_) {
      Value* gv = b_.load(g);
      acc = b_.binary(Opcode::Xor, acc, gv);
    }
    b_.ret(acc);
  }

  const ProgramSpec& spec_;
  Rng rng_;
  std::unique_ptr<Module> module_;
  IRBuilder b_;
  TypeContext* tc_ = nullptr;
  Function* input_fn_ = nullptr;
  Function* sink_fn_ = nullptr;
  Function* sinkf_fn_ = nullptr;
  Function* expect_fn_ = nullptr;
  Function* assume_fn_ = nullptr;
  Function* recursive_ = nullptr;
  std::vector<Function*> helpers_;
  std::vector<GlobalVariable*> globals_;
  std::vector<GlobalVariable*> tables_;
  GlobalVariable* funcptr_global_ = nullptr;
};

}  // namespace

std::unique_ptr<Module> generateProgram(const ProgramSpec& spec) {
  ProgramBuilder builder(spec);
  return builder.build();
}

}  // namespace posetrl
