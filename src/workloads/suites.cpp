#include "workloads/suites.h"

#include "support/rng.h"

namespace posetrl {

namespace {

/// Kernel-mix archetypes named after the dominant character of the codes
/// they imitate.
KernelMix loopScience() {
  KernelMix mix;
  mix.reduce_loop = 2.0;
  mix.array_loop = 2.0;
  mix.two_array = 1.6;
  mix.nested_loop = 2.0;
  mix.fp_kernel = 1.5;
  mix.invariant = 1.5;
  mix.branchy = 0.4;
  mix.state_machine = 0.1;
  mix.recursion = 0.1;
  return mix;
}

KernelMix branchyInteger() {
  KernelMix mix;
  mix.branchy = 2.2;
  mix.state_machine = 1.8;
  mix.straightline = 1.4;
  mix.divrem = 1.0;
  mix.recursion = 0.8;
  mix.reduce_loop = 0.8;
  mix.array_loop = 0.6;
  mix.fp_kernel = 0.2;
  return mix;
}

KernelMix mediaKernel() {
  KernelMix mix;
  mix.array_loop = 2.2;
  mix.two_array = 2.0;
  mix.memset_loop = 1.4;
  mix.struct_local = 1.2;
  mix.reduce_loop = 1.2;
  mix.invariant = 1.0;
  mix.branchy = 0.8;
  return mix;
}

KernelMix embeddedTiny() {
  KernelMix mix;
  mix.straightline = 1.6;
  mix.reduce_loop = 1.4;
  mix.divrem = 1.2;
  mix.memset_loop = 1.0;
  mix.struct_local = 0.8;
  mix.branchy = 1.2;
  mix.nested_loop = 0.5;
  mix.fp_kernel = 0.6;
  return mix;
}

ProgramSpec make(const std::string& name, std::uint64_t seed, int kernels,
                 int helpers, int globals, const KernelMix& mix) {
  ProgramSpec spec;
  spec.name = name;
  spec.seed = seed;
  spec.kernels = kernels;
  spec.helpers = helpers;
  spec.globals = globals;
  spec.mix = mix;
  return spec;
}

}  // namespace

SuiteSpec spec2017Suite() {
  SuiteSpec suite;
  suite.name = "SPEC-2017";
  suite.programs = {
      make("508.namd", 170801, 12, 4, 5, loopScience()),
      make("510.parest", 171002, 14, 5, 6, loopScience()),
      make("511.povray", 171103, 13, 5, 5, mediaKernel()),
      make("519.lbm", 171904, 10, 3, 4, loopScience()),
      make("520.omnetpp", 172005, 14, 6, 7, branchyInteger()),
      make("523.xalancbmk", 172306, 15, 6, 7, branchyInteger()),
      make("525.x264", 172507, 13, 4, 5, mediaKernel()),
      make("526.blender", 172608, 15, 5, 6, mediaKernel()),
      make("531.deepsjeng", 173109, 12, 5, 5, branchyInteger()),
      make("538.imagick", 173810, 14, 4, 5, mediaKernel()),
      make("541.leela", 174111, 12, 5, 5, branchyInteger()),
      make("544.nab", 174412, 11, 4, 4, loopScience()),
      make("557.xz", 175713, 12, 4, 5, branchyInteger()),
  };
  return suite;
}

SuiteSpec spec2006Suite() {
  SuiteSpec suite;
  suite.name = "SPEC-2006";
  suite.programs = {
      make("401.bzip2", 640101, 11, 4, 5, branchyInteger()),
      make("403.gcc", 640302, 15, 6, 7, branchyInteger()),
      make("429.mcf", 642903, 9, 3, 4, branchyInteger()),
      make("433.milc", 643304, 11, 4, 4, loopScience()),
      make("445.gobmk", 644505, 13, 5, 6, branchyInteger()),
      make("450.soplex", 645006, 12, 4, 5, loopScience()),
      make("456.hmmer", 645607, 11, 4, 5, loopScience()),
      make("458.sjeng", 645808, 12, 5, 5, branchyInteger()),
      make("462.libquantum", 646209, 9, 3, 4, loopScience()),
      make("464.h264ref", 646410, 13, 4, 5, mediaKernel()),
      make("470.lbm", 647011, 9, 3, 4, loopScience()),
      make("473.astar", 647312, 10, 4, 4, branchyInteger()),
  };
  return suite;
}

SuiteSpec mibenchSuite() {
  SuiteSpec suite;
  suite.name = "MiBench";
  suite.programs = {
      make("basicmath", 900101, 5, 2, 2, embeddedTiny()),
      make("bitcount", 900202, 4, 2, 2, embeddedTiny()),
      make("qsort", 900303, 5, 2, 3, branchyInteger()),
      make("susan", 900404, 6, 2, 3, mediaKernel()),
      make("jpeg", 900505, 7, 3, 3, mediaKernel()),
      make("dijkstra", 900606, 5, 2, 3, branchyInteger()),
      make("patricia", 900707, 5, 2, 3, branchyInteger()),
      make("stringsearch", 900808, 4, 2, 2, embeddedTiny()),
      make("blowfish", 900909, 6, 2, 2, embeddedTiny()),
      make("sha", 901010, 5, 2, 2, embeddedTiny()),
      make("crc32", 901111, 4, 2, 2, embeddedTiny()),
      make("fft", 901212, 6, 2, 3, loopScience()),
  };
  return suite;
}

SuiteSpec trainingCorpus(int count, std::uint64_t seed) {
  SuiteSpec suite;
  suite.name = "llvm-test-suite";
  Rng rng(seed);
  const KernelMix archetypes[4] = {loopScience(), branchyInteger(),
                                   mediaKernel(), embeddedTiny()};
  for (int i = 0; i < count; ++i) {
    ProgramSpec spec;
    spec.name = "ts/prog" + std::to_string(i);
    spec.seed = rng.next();
    spec.kernels = static_cast<int>(rng.nextInt(2, 7));
    spec.helpers = static_cast<int>(rng.nextInt(1, 4));
    spec.globals = static_cast<int>(rng.nextInt(1, 5));
    spec.mix = archetypes[rng.nextBelow(4)];
    suite.programs.push_back(spec);
  }
  return suite;
}

}  // namespace posetrl
