#pragma once

/// \file trainer.h
/// Training loop of the POSET-RL agent: episodes cycle over the training
/// corpus (the paper uses 130 llvm-test-suite single-source programs); each
/// episode rolls the ε-greedy policy for a fixed number of steps, feeding
/// transitions into the Double DQN's replay memory.
///
/// The loop is crash-safe: with `checkpoint_path` set it periodically
/// serializes the complete training state (agent weights + Adam moments,
/// target net, replay buffer, ε-schedule position, both RNG streams, step
/// counter, per-program quarantines) with atomic tmp+rename writes, and
/// resumeTraining() continues a killed run bit-exactly from the last
/// checkpoint — at most one checkpoint interval of work is lost.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/environment.h"
#include "rl/dqn.h"

namespace posetrl {

class Module;

/// Training-run parameters.
struct TrainConfig {
  EnvConfig env;
  DqnConfig agent;
  /// Total environment steps (the paper trains 1005 steps/iteration for
  /// many iterations; benchmarks here use reduced budgets).
  std::size_t total_steps = 2000;
  std::uint64_t seed = 7;
  bool verbose = false;
  /// Explicit action space. When null, chosen by the agent's head count
  /// (manual vs ODG sub-sequences); set it to train over a custom space,
  /// e.g. one with fault-injection actions appended.
  const std::vector<SubSequence>* actions = nullptr;
  /// Crash-safe checkpointing: empty disables. Checkpoints are taken at the
  /// first episode boundary after every `checkpoint_every_steps` env steps.
  std::string checkpoint_path;
  std::size_t checkpoint_every_steps = 500;
  /// Concurrent rollout actors. 1 (the default) runs the sequential loop —
  /// bit-exact with earlier releases and with checkpoint/resume; >= 2
  /// dispatches to the round-based actor–learner pipeline
  /// (core/parallel_trainer.h), which is deterministic for a fixed actor
  /// count but does not support checkpointing.
  std::size_t num_actors = 1;
};

/// Summary statistics of a training run.
struct TrainStats {
  std::size_t episodes = 0;
  std::size_t steps = 0;
  double mean_episode_reward = 0.0;
  double final_epsilon = 0.0;
  std::vector<double> episode_rewards;
  /// Contained pass faults observed during training (sandboxed actions that
  /// rolled back), keyed by FaultKind name, plus the actions the
  /// per-program quarantine masked as a result.
  std::size_t faults = 0;
  std::map<std::string, std::size_t> faults_by_kind;
  std::size_t quarantined_actions = 0;
  std::size_t checkpoints_written = 0;
  /// Analysis-cache counters summed over every training environment:
  /// dominator/loop-info/liveness/... queries served from cache vs rebuilt,
  /// plus pass-contract checks run at sandbox pass boundaries.
  AnalysisCacheStats analysis;
  /// Embedding/static-feature cache counters summed over every environment.
  EmbedCacheStats embed_cache;
};

/// Trains an agent over \p corpus (unoptimized modules). The returned agent
/// is ready for greedy deployment. Every program must outlive the call.
struct TrainResult {
  std::unique_ptr<DoubleDqn> agent;
  TrainStats stats;
};

TrainResult trainAgent(const std::vector<const Module*>& corpus,
                       const TrainConfig& config);

/// The action space a run over \p config trains on: config.actions when
/// set, otherwise the manual or ODG sub-sequences matching the agent's head
/// count. Checks that the head count and action-space size agree. Shared by
/// the sequential and parallel training loops.
const std::vector<SubSequence>& resolveTrainActions(const TrainConfig& config);

/// Continues a run from a checkpoint written by trainAgent. The corpus and
/// config must match the original run; the resumed run replays the exact
/// trajectory the uninterrupted run would have taken (same seeds, same
/// episode rewards). Raises FatalError if the checkpoint is missing or
/// corrupt.
TrainResult resumeTraining(const std::vector<const Module*>& corpus,
                           const TrainConfig& config,
                           const std::string& checkpoint_path);

/// Serialization helpers for trained models. Writes are atomic
/// (tmp + rename); loads raise FatalError on short or corrupt files instead
/// of aborting.
void saveAgentToFile(const DoubleDqn& agent, const std::string& path);
void loadAgentFromFile(DoubleDqn& agent, const std::string& path);

}  // namespace posetrl
