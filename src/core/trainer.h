#pragma once

/// \file trainer.h
/// Training loop of the POSET-RL agent: episodes cycle over the training
/// corpus (the paper uses 130 llvm-test-suite single-source programs); each
/// episode rolls the ε-greedy policy for a fixed number of steps, feeding
/// transitions into the Double DQN's replay memory.

#include <memory>
#include <string>
#include <vector>

#include "core/environment.h"
#include "rl/dqn.h"

namespace posetrl {

class Module;

/// Training-run parameters.
struct TrainConfig {
  EnvConfig env;
  DqnConfig agent;
  /// Total environment steps (the paper trains 1005 steps/iteration for
  /// many iterations; benchmarks here use reduced budgets).
  std::size_t total_steps = 2000;
  std::uint64_t seed = 7;
  bool verbose = false;
};

/// Summary statistics of a training run.
struct TrainStats {
  std::size_t episodes = 0;
  std::size_t steps = 0;
  double mean_episode_reward = 0.0;
  double final_epsilon = 0.0;
  std::vector<double> episode_rewards;
};

/// Trains an agent over \p corpus (unoptimized modules). The returned agent
/// is ready for greedy deployment. Every program must outlive the call.
struct TrainResult {
  std::unique_ptr<DoubleDqn> agent;
  TrainStats stats;
};

TrainResult trainAgent(const std::vector<const Module*>& corpus,
                       const TrainConfig& config);

/// Serialization helpers for trained models.
void saveAgentToFile(const DoubleDqn& agent, const std::string& path);
void loadAgentFromFile(DoubleDqn& agent, const std::string& path);

}  // namespace posetrl
