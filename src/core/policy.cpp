#include "core/policy.h"

#include "ir/clone.h"
#include "ir/module.h"
#include "passes/pass.h"

namespace posetrl {

PolicyRollout applyPolicy(const DoubleDqn& agent, const Module& program,
                          const std::vector<SubSequence>& actions,
                          const EnvConfig& config) {
  PhaseOrderEnv env(program, actions, config);
  Embedding state = env.reset();
  PolicyRollout rollout;
  bool done = false;
  while (!done) {
    // The quarantine mask blocks actions that already faulted repeatedly on
    // this program; actGreedy then falls back to the best unblocked Q.
    const std::vector<bool>& mask = env.actionMask();
    std::size_t available = 0;
    for (std::size_t i = 0; i < mask.size(); ++i) {
      if (!mask[i]) ++available;
    }
    if (available == 0) {
      // Everything got quarantined mid-rollout: end the episode with the
      // best-so-far working module rather than letting actGreedy abort on
      // "all actions blocked" (mirrors CompileService::process).
      break;
    }
    const std::size_t action = agent.actGreedy(state, &mask);
    rollout.action_sequence.push_back(action);
    PhaseOrderEnv::StepResult sr = env.step(action);
    PolicyStep step;
    step.action = action;
    step.reward = sr.reward;
    step.faulted = sr.faulted;
    if (sr.faulted) {
      ++rollout.faults;
      step.fault = std::move(sr.fault);
    }
    rollout.steps.push_back(std::move(step));
    state = std::move(sr.state);
    done = sr.done;
  }
  rollout.size_bytes = env.currentSize();
  rollout.quarantined = env.quarantine().numQuarantined();
  rollout.optimized = cloneModule(env.workingModule());
  return rollout;
}

std::unique_ptr<Module> applyPipeline(
    const Module& program, const std::vector<std::string>& passes) {
  std::unique_ptr<Module> m = cloneModule(program);
  runPassSequence(*m, passes, /*verify_each=*/false);
  return m;
}

}  // namespace posetrl
