#include "core/policy.h"

#include "ir/clone.h"
#include "ir/module.h"
#include "passes/pass.h"

namespace posetrl {

PolicyRollout applyPolicy(const DoubleDqn& agent, const Module& program,
                          const std::vector<SubSequence>& actions,
                          const EnvConfig& config) {
  PhaseOrderEnv env(program, actions, config);
  Embedding state = env.reset();
  PolicyRollout rollout;
  bool done = false;
  while (!done) {
    const std::size_t action = agent.actGreedy(state);
    rollout.action_sequence.push_back(action);
    PhaseOrderEnv::StepResult sr = env.step(action);
    state = std::move(sr.state);
    done = sr.done;
  }
  rollout.size_bytes = env.currentSize();
  rollout.optimized = cloneModule(env.workingModule());
  return rollout;
}

std::unique_ptr<Module> applyPipeline(
    const Module& program, const std::vector<std::string>& passes) {
  std::unique_ptr<Module> m = cloneModule(program);
  runPassSequence(*m, passes, /*verify_each=*/false);
  return m;
}

}  // namespace posetrl
