#include "core/environment.h"

#include "ir/clone.h"
#include "ir/module.h"
#include "lint/instrumentation.h"
#include "passes/pass.h"
#include "support/error.h"

namespace posetrl {

PhaseOrderEnv::PhaseOrderEnv(const Module& program,
                             const std::vector<SubSequence>& actions,
                             EnvConfig config)
    : config_(config),
      actions_(&actions),
      pristine_(cloneModule(program)),
      size_model_(TargetInfo::forArch(config.arch)),
      mca_model_(TargetInfo::forArch(config.arch)),
      embedder_(config.embedding),
      embed_cache_(config.embed_cache),
      quarantine_(actions.size(), config.quarantine_threshold) {
  POSETRL_CHECK(!actions.empty(), "environment needs a non-empty action space");
  base_size_ = size_model_.objectBytes(*pristine_);
  base_cycles_ = mca_model_.moduleEstimate(*pristine_).weighted_cycles;
  base_throughput_ = mca_model_.moduleEstimate(*pristine_).throughput();
  POSETRL_CHECK(base_size_ > 0.0, "program has zero base size");
}

PhaseOrderEnv::~PhaseOrderEnv() = default;

Embedding PhaseOrderEnv::reset() {
  working_ = cloneModule(*pristine_);
  // The previous working module is gone; cached analyses point into it, and
  // the verifier's skip cache is keyed by its function pointers.
  analysis_.invalidateAll();
  verifier_.clearCache();
  last_size_ = size_model_.objectBytes(*working_);
  const ThroughputEstimate est = mca_model_.moduleEstimate(*working_);
  last_cycles_ = est.weighted_cycles;
  last_throughput_ = est.throughput();
  steps_in_episode_ = 0;
  return embedWorking();
}

Embedding PhaseOrderEnv::embedWorking() {
  if (config_.state_kind == StateKind::StaticFeatures) {
    const auto compute = [this](const Module&) {
      return extractStaticFeatures(*working_, analysis_);
    };
    if (!config_.cache_embeddings) return compute(*working_);
    return embed_cache_.embedWith(*working_, compute);
  }
  if (!config_.cache_embeddings) return embedder_.embedProgram(*working_);
  return embed_cache_.embed(*working_, embedder_);
}

SandboxConfig PhaseOrderEnv::effectiveSandboxConfig() {
  SandboxConfig sc = config_.sandbox;
  sc.verify = config_.verify_actions;
  sc.contracts = config_.check_contracts;
  sc.oracle = config_.oracle_actions;
  // Between-action work in this environment is read-only (state extraction,
  // reward models) and every module swap clears the caches below, so the
  // verifier skip cache and the armed boundary snapshot stay warm across
  // steps.
  sc.fast_verifier = &verifier_;
  sc.trust_armed_boundary = true;
  return sc;
}

PhaseOrderEnv::StepResult PhaseOrderEnv::step(std::size_t index) {
  POSETRL_CHECK(working_ != nullptr, "step() before reset()");
  POSETRL_CHECK(index < actions_->size(), "action index out of range");

  // Install this environment's analysis cache as the ambient manager for
  // the duration of the step: the sandbox's fast verifier and contract
  // checker, any analysis-using pass, and the static-feature extractor all
  // hit the same per-function cache, which survives across steps for
  // functions the applied passes did not touch.
  AnalysisScope analysis_scope(analysis_);

  if (config_.sandbox_actions) {
    SandboxOutcome out = runActionSandboxed(
        working_, (*actions_)[index].passes, effectiveSandboxConfig());
    if (!out.ok) {
      // The sandbox already rolled the working module back to the pre-step
      // snapshot — a different Module object, so the verifier's pointer-
      // keyed skip cache must go (the analysis cache was already dropped by
      // the rollback's invalidateAll). The episode continues with a
      // penalized reward and the fault goes on this (program, action)
      // pair's quarantine record.
      // Deadline expiry is the caller's clock running out, not the action's
      // misbehaviour — it is contained like any fault but never quarantines.
      ++faults_;
      verifier_.clearCache();
      if (out.fault.kind != FaultKind::DeadlineExpired) {
        quarantine_.recordFault(index);
      }
      ++steps_in_episode_;
      StepResult result;
      // The rollback restored the pre-step module bytes, so with caching on
      // this re-embedding is a guaranteed hit.
      result.state = embedWorking();
      result.reward = config_.fault_penalty;
      result.done = steps_in_episode_ >= config_.episode_length;
      result.faulted = true;
      result.fault = std::move(out.fault);
      result.fault.action = index;
      return result;
    }
  } else if (config_.verify_actions) {
    // Instrumented run: a pass that breaks the IR aborts with its own name
    // instead of corrupting the reward signal steps later.
    InstrumentOptions iopts;
    iopts.verify = true;
    iopts.abort_on_failure = true;
    PassInstrumentation instr(iopts);
    runPassSequence(*working_, (*actions_)[index].passes, instr);
  } else {
    runPassSequence(*working_, (*actions_)[index].passes,
                    /*verify_each=*/false);
  }

  const double size = size_model_.objectBytes(*working_);
  const ThroughputEstimate est = mca_model_.moduleEstimate(*working_);

  // Paper Eqns 2 & 3: deltas between consecutive states, normalized by the
  // unoptimized program's metrics. The throughput component is expressed as
  // estimated-cycle reduction relative to the unoptimized cycles — the
  // exact mirror of Eqn 2 — so both components live on the same [0,1]-ish
  // scale and the paper's α=10 > β=5 ordering genuinely weights size more.
  const double r_binsize = (last_size_ - size) / base_size_;
  const double r_throughput =
      base_cycles_ > 0.0
          ? (last_cycles_ - est.weighted_cycles) / base_cycles_
          : 0.0;
  const double reward =
      config_.alpha * r_binsize + config_.beta * r_throughput;  // Eqn 1.

  last_size_ = size;
  last_cycles_ = est.weighted_cycles;
  last_throughput_ = est.throughput();
  ++steps_in_episode_;

  StepResult result;
  result.state = embedWorking();
  result.reward = reward;
  result.done = steps_in_episode_ >= config_.episode_length;
  return result;
}

double PhaseOrderEnv::currentSize() const { return last_size_; }
double PhaseOrderEnv::currentThroughput() const { return last_throughput_; }

Module& PhaseOrderEnv::workingModule() {
  POSETRL_CHECK(working_ != nullptr, "no working module before reset()");
  return *working_;
}

}  // namespace posetrl
