#include "core/environment.h"

#include "ir/clone.h"
#include "ir/module.h"
#include "lint/instrumentation.h"
#include "passes/pass.h"
#include "support/error.h"

namespace posetrl {

PhaseOrderEnv::PhaseOrderEnv(const Module& program,
                             const std::vector<SubSequence>& actions,
                             EnvConfig config)
    : config_(config),
      actions_(&actions),
      pristine_(cloneModule(program)),
      size_model_(TargetInfo::forArch(config.arch)),
      mca_model_(TargetInfo::forArch(config.arch)),
      embedder_(config.embedding),
      embed_cache_(config.embed_cache),
      quarantine_(actions.size(), config.quarantine_threshold) {
  POSETRL_CHECK(!actions.empty(), "environment needs a non-empty action space");
  base_size_ = size_model_.objectBytes(*pristine_);
  base_cycles_ = mca_model_.moduleEstimate(*pristine_).weighted_cycles;
  base_throughput_ = mca_model_.moduleEstimate(*pristine_).throughput();
  POSETRL_CHECK(base_size_ > 0.0, "program has zero base size");
}

PhaseOrderEnv::~PhaseOrderEnv() = default;

Embedding PhaseOrderEnv::reset() {
  if (working_ == nullptr) {
    // First episode: materialize the working clone once and capture its
    // pristine content into a flat snapshot. Every later reset() restores
    // that snapshot in place instead of cloning — same Module object, same
    // Function/GlobalVariable objects, same interned constants.
    working_ = cloneModule(*pristine_);
    pristine_snapshot_.capture(*working_);
    analysis_.invalidateAll();
    verifier_.clearCache();
    embed_key_valid_ = false;
    pristine_embed_key_valid_ = false;
    // Reward-model metrics of the pristine state, computed once: every
    // later reset() restores bit-identical content (stamp reverts to
    // pristine_stamp_ as the proof), so these two O(instructions) walks
    // never run again on the reset path.
    pristine_stamp_ = working_->contentStamp();
    pristine_size_ = size_model_.objectBytes(*working_);
    const ThroughputEstimate est = mca_model_.moduleEstimate(*working_);
    pristine_cycles_ = est.weighted_cycles;
    pristine_throughput_ = est.throughput();
  } else {
    const ModuleSnapshot::RestoreResult restored =
        pristine_snapshot_.restoreInto(*working_);
    // Restored blocks/instructions are new objects; the analysis cache's
    // generation-stamped entries self-invalidate lazily on their next
    // query, but an armed contract boundary fingerprints content that no
    // longer exists and must be disarmed now.
    analysis_.disarmBoundary();
    if (!restored.symbols_preserved) verifier_.clearCache();
    // The restore reverts the content stamp along with the content, so the
    // stamp-keyed embedding memo stays coherent — no invalidation needed.
  }
  last_size_ = pristine_size_;
  last_cycles_ = pristine_cycles_;
  last_throughput_ = pristine_throughput_;
  metrics_stamp_ = working_->contentStamp();
  steps_in_episode_ = 0;
  return embedWorking();
}

Embedding PhaseOrderEnv::embedWorking() {
  if (!config_.cache_embeddings) {
    if (config_.state_kind == StateKind::StaticFeatures) {
      return extractStaticFeatures(*working_, analysis_);
    }
    return embedder_.embedProgram(*working_);
  }
  // O(1) cache keys on repeats: every mutation path bumps the module's
  // content stamp (and every rollback reverts it), so an unchanged stamp
  // proves the structural hash is unchanged. Only stamp changes pay the
  // O(instructions) hash walk — and nothing here ever prints the module.
  const std::uint64_t stamp = working_->contentStamp();
  if (!embed_key_valid_ || embed_key_stamp_ != stamp) {
    if (pristine_embed_key_valid_ && stamp == pristine_stamp_) {
      // reset() reverted to pristine content; its key is already known.
      embed_key_ = pristine_embed_key_;
    } else {
      embed_key_ = EmbedCache::moduleHash(*working_);
      if (stamp == pristine_stamp_) {
        pristine_embed_key_ = embed_key_;
        pristine_embed_key_valid_ = true;
      }
    }
    embed_key_stamp_ = stamp;
    embed_key_valid_ = true;
  }
  if (config_.state_kind == StateKind::StaticFeatures) {
    return embed_cache_.embedWithKeyed(
        embed_key_, *working_, [this](const Module&) {
          return extractStaticFeatures(*working_, analysis_);
        });
  }
  return embed_cache_.embedKeyed(embed_key_, *working_, embedder_);
}

SandboxConfig PhaseOrderEnv::effectiveSandboxConfig() {
  SandboxConfig sc = config_.sandbox;
  sc.verify = config_.verify_actions;
  sc.contracts = config_.check_contracts;
  sc.oracle = config_.oracle_actions;
  // Between-action work in this environment is read-only (state extraction,
  // reward models) and every restore path clears or self-invalidates the
  // affected caches, so the verifier skip cache and the armed boundary
  // snapshot stay warm across steps.
  sc.fast_verifier = &verifier_;
  sc.trust_armed_boundary = true;
  sc.snapshot_scratch = &step_snapshot_;
  return sc;
}

PhaseOrderEnv::StepResult PhaseOrderEnv::step(std::size_t index) {
  POSETRL_CHECK(working_ != nullptr, "step() before reset()");
  POSETRL_CHECK(index < actions_->size(), "action index out of range");

  // Install this environment's analysis cache as the ambient manager for
  // the duration of the step: the sandbox's fast verifier and contract
  // checker, any analysis-using pass, and the static-feature extractor all
  // hit the same per-function cache, which survives across steps for
  // functions the applied passes did not touch.
  AnalysisScope analysis_scope(analysis_);

  if (config_.sandbox_actions) {
    SandboxOutcome out = runActionSandboxed(
        working_, (*actions_)[index].passes, effectiveSandboxConfig());
    if (!out.ok) {
      // The sandbox already rolled the working module back in place (same
      // Module object, content stamp reverted) and handled cache hygiene:
      // the armed boundary is disarmed, the analysis cache self-invalidates
      // via generation stamps, and the verifier's pointer-keyed skip cache
      // was cleared iff symbols were recreated. The episode continues with
      // a penalized reward and the fault goes on this (program, action)
      // pair's quarantine record.
      // Deadline expiry is the caller's clock running out, not the action's
      // misbehaviour — it is contained like any fault but never quarantines.
      ++faults_;
      if (out.fault.kind != FaultKind::DeadlineExpired) {
        quarantine_.recordFault(index);
      }
      ++steps_in_episode_;
      StepResult result;
      // The rollback restored the pre-step module bytes, so with caching on
      // this re-embedding is a guaranteed hit.
      result.state = embedWorking();
      result.reward = config_.fault_penalty;
      result.done = steps_in_episode_ >= config_.episode_length;
      result.faulted = true;
      result.fault = std::move(out.fault);
      result.fault.action = index;
      return result;
    }
  } else if (config_.verify_actions) {
    // Instrumented run: a pass that breaks the IR aborts with its own name
    // instead of corrupting the reward signal steps later.
    InstrumentOptions iopts;
    iopts.verify = true;
    iopts.abort_on_failure = true;
    PassInstrumentation instr(iopts);
    runPassSequence(*working_, (*actions_)[index].passes, instr);
  } else {
    runPassSequence(*working_, (*actions_)[index].passes,
                    /*verify_each=*/false);
  }

  // Reward-model metrics, memoized on the content stamp: an action the
  // contract checker verified as a no-op left the module bytes untouched,
  // so its size/cycle deltas are exactly zero — skip both model walks.
  double size = last_size_;
  double cycles = last_cycles_;
  double throughput = last_throughput_;
  if (working_->contentStamp() != metrics_stamp_) {
    size = size_model_.objectBytes(*working_);
    const ThroughputEstimate est = mca_model_.moduleEstimate(*working_);
    cycles = est.weighted_cycles;
    throughput = est.throughput();
    metrics_stamp_ = working_->contentStamp();
  }

  // Paper Eqns 2 & 3: deltas between consecutive states, normalized by the
  // unoptimized program's metrics. The throughput component is expressed as
  // estimated-cycle reduction relative to the unoptimized cycles — the
  // exact mirror of Eqn 2 — so both components live on the same [0,1]-ish
  // scale and the paper's α=10 > β=5 ordering genuinely weights size more.
  const double r_binsize = (last_size_ - size) / base_size_;
  const double r_throughput =
      base_cycles_ > 0.0 ? (last_cycles_ - cycles) / base_cycles_ : 0.0;
  const double reward =
      config_.alpha * r_binsize + config_.beta * r_throughput;  // Eqn 1.

  last_size_ = size;
  last_cycles_ = cycles;
  last_throughput_ = throughput;
  ++steps_in_episode_;

  StepResult result;
  result.state = embedWorking();
  result.reward = reward;
  result.done = steps_in_episode_ >= config_.episode_length;
  return result;
}

double PhaseOrderEnv::currentSize() const { return last_size_; }
double PhaseOrderEnv::currentThroughput() const { return last_throughput_; }

Module& PhaseOrderEnv::workingModule() {
  POSETRL_CHECK(working_ != nullptr, "no working module before reset()");
  // Non-const access may mutate the module behind the environment's back;
  // bump the stamp so the embedding-key memo never serves a stale hash.
  working_->bumpContentStamp();
  return *working_;
}

}  // namespace posetrl
