#pragma once

/// \file environment.h
/// The RL environment of Fig. 3: state = IR2Vec-style program embedding,
/// action = applying one pass sub-sequence with the optimizer, reward =
/// α·R_BinSize + β·R_Throughput (Eqns 1–3, α=10, β=5) where sizes come
/// from the object-size model and throughput from the llvm-mca analog.

#include <memory>
#include <vector>

#include "core/oz_sequence.h"
#include "embed/embedder.h"
#include "target/mca_model.h"
#include "target/size_model.h"
#include "target/target_info.h"

namespace posetrl {

class Module;

/// Environment parameters (paper defaults).
struct EnvConfig {
  TargetArch arch = TargetArch::X86_64;
  double alpha = 10.0;  ///< Weight of the size reward (paper: 10).
  double beta = 5.0;    ///< Weight of the throughput reward (paper: 5).
  int episode_length = 15;
  EmbeddingConfig embedding;
  /// Run the structural verifier after every applied sub-sequence and abort
  /// with the offending pass name on failure (lint/instrumentation.h). A
  /// miscompiling pass otherwise silently corrupts the reward signal, so
  /// this defaults on in debug builds; it is off in release builds where
  /// training throughput dominates.
#ifdef NDEBUG
  bool verify_actions = false;
#else
  bool verify_actions = true;
#endif
};

/// Phase-ordering environment over one program.
class PhaseOrderEnv {
 public:
  /// \p program is the unoptimized module; the environment keeps a pristine
  /// copy and works on clones, so episodes are independent.
  PhaseOrderEnv(const Module& program,
                const std::vector<SubSequence>& actions, EnvConfig config);
  ~PhaseOrderEnv();

  std::size_t numActions() const { return actions_->size(); }
  const EnvConfig& config() const { return config_; }

  /// Starts a fresh episode on a pristine clone; returns the initial state.
  Embedding reset();

  struct StepResult {
    Embedding state;
    double reward = 0.0;
    bool done = false;
  };

  /// Applies action \p index (one pass sub-sequence) to the working module.
  StepResult step(std::size_t index);

  // --- metrics of the working module ---
  double currentSize() const;
  double currentThroughput() const;
  /// Metrics of the unoptimized program (reward denominators, Eqns 2–3).
  double baseSize() const { return base_size_; }
  double baseThroughput() const { return base_throughput_; }
  /// The working module (e.g. to measure or print after a rollout).
  Module& workingModule();

 private:
  EnvConfig config_;
  const std::vector<SubSequence>* actions_;
  std::unique_ptr<Module> pristine_;
  std::unique_ptr<Module> working_;
  SizeModel size_model_;
  McaModel mca_model_;
  Embedder embedder_;
  double base_size_ = 0.0;
  double base_cycles_ = 0.0;
  double base_throughput_ = 0.0;
  double last_size_ = 0.0;
  double last_cycles_ = 0.0;
  double last_throughput_ = 0.0;
  int steps_in_episode_ = 0;
};

}  // namespace posetrl
