#pragma once

/// \file environment.h
/// The RL environment of Fig. 3: state = IR2Vec-style program embedding,
/// action = applying one pass sub-sequence with the optimizer, reward =
/// α·R_BinSize + β·R_Throughput (Eqns 1–3, α=10, β=5) where sizes come
/// from the object-size model and throughput from the llvm-mca analog.
///
/// Actions execute inside a fault sandbox (faults/sandbox.h): the working
/// module is snapshotted before every sub-sequence; a throwing, invariant-
/// breaking, IR-exploding or fuel-exhausting pass rolls back to the snapshot
/// and yields a penalized reward plus a structured FaultReport instead of
/// killing the run. Actions that fault repeatedly on this program are
/// quarantined (faults/quarantine.h) and masked out of later selections.

#include <cstddef>
#include <memory>
#include <vector>

#include "analysis/analysis_manager.h"
#include "analysis/fast_verifier.h"
#include "analysis/static_features.h"
#include "core/oz_sequence.h"
#include "embed/embed_cache.h"
#include "embed/embedder.h"
#include "faults/fault.h"
#include "faults/quarantine.h"
#include "faults/sandbox.h"
#include "ir/snapshot.h"
#include "target/mca_model.h"
#include "target/size_model.h"
#include "target/target_info.h"

namespace posetrl {

class Module;

/// Which observation vector the environment feeds the agent.
enum class StateKind {
  /// IR2Vec-style flow-aware program embedding (embed/embedder.h); the
  /// paper's 300-dim state.
  IrEmbedding,
  /// AutoPhase-style static feature vector (analysis/static_features.h):
  /// kStaticFeatureDim counts and dataflow summaries backed by the cached
  /// analysis manager. Much cheaper per step; used for ablations.
  StaticFeatures,
};

/// Environment parameters (paper defaults).
struct EnvConfig {
  TargetArch arch = TargetArch::X86_64;
  double alpha = 10.0;  ///< Weight of the size reward (paper: 10).
  double beta = 5.0;    ///< Weight of the throughput reward (paper: 5).
  int episode_length = 15;
  EmbeddingConfig embedding;
  /// Observation fed to the agent; see StateKind. The agent's
  /// DqnConfig::state_dim must match stateDim().
  StateKind state_kind = StateKind::IrEmbedding;
  /// Dimension of the state vector step()/reset() return under the current
  /// state_kind — what DqnConfig::state_dim must be set to.
  std::size_t stateDim() const {
    return state_kind == StateKind::StaticFeatures
               ? kStaticFeatureDim
               : static_cast<std::size_t>(embedding.dim);
  }
  /// Run the structural verifier after every applied pass. With the sandbox
  /// enabled a verify failure is contained (rollback + fault report); with
  /// the sandbox disabled it aborts with the offending pass name.
  /// Default-on in all build modes: the incremental hash-skipping verifier
  /// (analysis/fast_verifier.h) re-checks only functions the pass actually
  /// touched, so the steady-state cost per step is small.
  bool verify_actions = true;
  /// Diff each pass's declared preserved analyses (Pass::preserved())
  /// against the observed IR delta; broken promises roll back with a
  /// FaultKind::ContractViolation attributed to the pass. Requires
  /// sandbox_actions; ignored on the unsandboxed paths.
  bool check_contracts = true;
  /// Contain pass faults (snapshot/rollback) instead of crashing. Budgets
  /// live in `sandbox`; its verify/contracts/oracle switches are slaved to
  /// verify_actions / check_contracts / oracle_actions.
  bool sandbox_actions = true;
  /// Also run the miscompile oracle after every pass (expensive).
  bool oracle_actions = false;
  SandboxConfig sandbox;
  /// Reward returned for a contained faulting action (the module is rolled
  /// back, so the honest delta-reward is 0; a mild penalty teaches the
  /// agent to avoid the action even before quarantine kicks in).
  double fault_penalty = -1.0;
  /// Faults on the same action before it is quarantined (0 disables).
  std::size_t quarantine_threshold = 2;
  /// Content-hash embedding cache: steps whose pass sub-sequence left the
  /// module unchanged (no-op sequences, fault rollbacks) and every reset()
  /// reuse a previously computed embedding instead of re-running
  /// embedProgram. Purely a throughput optimization — cached and uncached
  /// runs are bit-identical (embeddings are deterministic).
  bool cache_embeddings = true;
  EmbedCacheConfig embed_cache;
};

/// Phase-ordering environment over one program.
class PhaseOrderEnv {
 public:
  /// \p program is the unoptimized module; the environment keeps a pristine
  /// copy and a flat snapshot of it, so episodes are independent.
  PhaseOrderEnv(const Module& program,
                const std::vector<SubSequence>& actions, EnvConfig config);
  ~PhaseOrderEnv();

  std::size_t numActions() const { return actions_->size(); }
  const EnvConfig& config() const { return config_; }

  /// Starts a fresh episode; returns the initial state. The first call
  /// clones the pristine module; later calls restore the working module in
  /// place from the pristine snapshot (same Module object, same symbols),
  /// skipping the per-episode clone/destroy of the whole object graph.
  Embedding reset();

  struct StepResult {
    Embedding state;
    double reward = 0.0;
    bool done = false;
    bool faulted = false;  ///< The action faulted and was rolled back.
    FaultReport fault;     ///< Valid when `faulted`.
  };

  /// Applies action \p index (one pass sub-sequence) to the working module.
  StepResult step(std::size_t index);

  // --- metrics of the working module ---
  double currentSize() const;
  double currentThroughput() const;
  /// Metrics of the unoptimized program (reward denominators, Eqns 2–3).
  double baseSize() const { return base_size_; }
  double baseThroughput() const { return base_throughput_; }
  /// The working module (e.g. to measure or print after a rollout).
  Module& workingModule();

  // --- fault tolerance ---
  /// Actions currently quarantined on this program (true = masked); pass to
  /// DoubleDqn::act so episodes route around pathological pairs.
  const std::vector<bool>& actionMask() const { return quarantine_.mask(); }
  ActionQuarantine& quarantine() { return quarantine_; }
  const ActionQuarantine& quarantine() const { return quarantine_; }
  /// Total contained faults across all episodes on this program.
  std::size_t faultCount() const { return faults_; }

  /// Embedding-cache hit/miss counters (zeros when caching is disabled).
  const EmbedCacheStats& embedCacheStats() const {
    return embed_cache_.stats();
  }

  /// The environment's persistent analysis cache: installed as the ambient
  /// manager around every sandboxed action, so the fast verifier, the
  /// contract checker, analysis-using passes and the static-feature
  /// extractor all share one set of per-function results across steps.
  AnalysisManager& analysisManager() { return analysis_; }
  const AnalysisCacheStats& analysisStats() const { return analysis_.stats(); }

 private:
  SandboxConfig effectiveSandboxConfig();
  /// State extraction of the working module (embedding or static features),
  /// through the content-hash cache when enabled.
  Embedding embedWorking();

  EnvConfig config_;
  const std::vector<SubSequence>* actions_;
  std::unique_ptr<Module> pristine_;
  std::unique_ptr<Module> working_;
  SizeModel size_model_;
  McaModel mca_model_;
  Embedder embedder_;
  EmbedCache embed_cache_;
  AnalysisManager analysis_;
  /// Flat snapshot of the working module in its pristine state, captured on
  /// the first reset(); later resets restore it in place.
  ModuleSnapshot pristine_snapshot_;
  /// Reusable per-step snapshot buffer handed to the sandbox
  /// (SandboxConfig::snapshot_scratch), so capture reuses flat-buffer
  /// capacity instead of re-allocating every step.
  ModuleSnapshot step_snapshot_;
  /// (contentStamp -> contentHash) memo backing O(1) embedding-cache keys:
  /// an unchanged stamp proves the structural hash is unchanged, so repeat
  /// lookups skip even the hash walk. Invalidated when the working Module
  /// object itself is replaced.
  std::uint64_t embed_key_stamp_ = 0;
  std::uint64_t embed_key_ = 0;
  bool embed_key_valid_ = false;
  /// Content stamp last_size_/last_cycles_/last_throughput_ were computed
  /// at: a step whose action left the stamp unchanged (contract-verified
  /// no-op) skips both reward-model walks — its true delta is zero.
  std::uint64_t metrics_stamp_ = 0;
  /// Pristine-state memos: every reset() restores the identical content, so
  /// its reward-model metrics and embedding key are computed once on the
  /// first episode and reused for free afterwards (the restored content
  /// stamp equals pristine_stamp_, proving content equality).
  std::uint64_t pristine_stamp_ = 0;
  double pristine_size_ = 0.0;
  double pristine_cycles_ = 0.0;
  double pristine_throughput_ = 0.0;
  std::uint64_t pristine_embed_key_ = 0;
  bool pristine_embed_key_valid_ = false;
  /// Persistent fast verifier shared with every sandboxed action, so the
  /// clean-hash skip cache survives across steps; its pointer-keyed cache is
  /// cleared whenever module symbols are recreated (restore paths report
  /// this via RestoreResult/SandboxOutcome::symbols_preserved).
  FastVerifier verifier_;
  ActionQuarantine quarantine_;
  std::size_t faults_ = 0;
  double base_size_ = 0.0;
  double base_cycles_ = 0.0;
  double base_throughput_ = 0.0;
  double last_size_ = 0.0;
  double last_cycles_ = 0.0;
  double last_throughput_ = 0.0;
  int steps_in_episode_ = 0;
};

}  // namespace posetrl
