#pragma once

/// \file oz_sequence.h
/// The paper's pass-sequence data: the LLVM-10 -Oz transformation sequence
/// (Table I), the 15 manually grouped sub-sequences (Table II), and the 34
/// ODG-derived sub-sequences (Table III). These sub-sequences form the two
/// RL action spaces evaluated in the paper.

#include <string>
#include <vector>

namespace posetrl {

/// One action: an ordered list of pass names.
struct SubSequence {
  int id = 0;  ///< 1-based row number from the paper's table.
  std::vector<std::string> passes;

  /// "-pass1 -pass2 ..." rendering.
  std::string str() const;
};

/// The -Oz sequence of Table I as pass names, in order.
const std::vector<std::string>& ozPassNames();

/// Table I rendered as a flag string.
std::string ozSequenceString();

/// An O3-flavoured pipeline (used by the Fig. 1 baseline): same pass set
/// with speed-oriented ordering and aggressive loop transforms up front.
const std::vector<std::string>& o3PassNames();

/// Table II: the 15 manual sub-sequences.
const std::vector<SubSequence>& manualSubSequences();

/// Table III: the 34 ODG sub-sequences.
const std::vector<SubSequence>& odgSubSequences();

}  // namespace posetrl
