#include "core/parallel_trainer.h"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <map>
#include <string>
#include <thread>
#include <utility>

#include "ir/module.h"
#include "support/error.h"
#include "support/rng.h"

namespace posetrl {

namespace {

/// ε-greedy selection against a read-only policy snapshot — the actor-side
/// mirror of DoubleDqn::act (same draw order: one Bernoulli, then either a
/// uniform action draw or a greedy forward), so the exploration statistics
/// match the agent's even though the agent never sees these calls.
std::size_t selectAction(const Mlp& policy, const std::vector<double>& state,
                         const std::vector<bool>& blocked, double eps,
                         Rng& rng) {
  const std::size_t num_actions = policy.outputSize();
  const bool any_blocked =
      std::find(blocked.begin(), blocked.end(), true) != blocked.end();
  if (rng.nextBool(eps)) {
    if (!any_blocked) return rng.nextBelow(num_actions);
    std::vector<std::size_t> allowed;
    for (std::size_t i = 0; i < num_actions; ++i) {
      if (!blocked[i]) allowed.push_back(i);
    }
    POSETRL_CHECK(!allowed.empty(), "all actions blocked");
    return allowed[rng.nextBelow(allowed.size())];
  }
  const std::vector<double> q = policy.forward(state);
  std::size_t best = q.size();
  for (std::size_t i = 0; i < q.size(); ++i) {
    if (any_blocked && blocked[i]) continue;
    if (best == q.size() || q[i] > q[best]) best = i;
  }
  POSETRL_CHECK(best < q.size(), "all actions blocked");
  return best;
}

/// One rollout actor: a private environment cache plus two private RNG
/// streams. Lives for the whole run; runs one episode per round.
struct Actor {
  Actor(std::size_t index, std::size_t corpus_size, std::uint64_t prog_seed,
        std::uint64_t explore_seed)
      : index(index),
        envs(corpus_size),
        prog_rng(Rng::forStream(prog_seed, index + 1)),
        explore_rng(Rng::forStream(explore_seed, index + 1)) {}

  std::size_t index;
  std::vector<std::unique_ptr<PhaseOrderEnv>> envs;
  Rng prog_rng;
  Rng explore_rng;

  // Per-round results, read by the learner after the round barrier.
  std::size_t steps = 0;
  bool ran_episode = false;
  double episode_reward = 0.0;
  std::size_t faults = 0;
  std::map<std::string, std::size_t> faults_by_kind;

  /// Rolls one episode of at most \p quota steps against \p policy with the
  /// frozen \p eps, pushing the finished episode into this actor's shard.
  void runRound(const std::vector<const Module*>& corpus,
                const std::vector<SubSequence>& actions,
                const TrainConfig& config, const Mlp& policy, double eps,
                std::size_t quota, ShardedReplayBuffer& replay) {
    steps = 0;
    ran_episode = false;
    episode_reward = 0.0;
    faults = 0;
    faults_by_kind.clear();
    if (quota == 0) return;

    const std::size_t pi = prog_rng.nextBelow(corpus.size());
    if (envs[pi] == nullptr) {
      envs[pi] =
          std::make_unique<PhaseOrderEnv>(*corpus[pi], actions, config.env);
    }
    PhaseOrderEnv& env = *envs[pi];
    std::vector<double> state = env.reset();
    std::vector<Transition> episode;
    bool done = false;
    while (!done && steps < quota) {
      const std::size_t action =
          selectAction(policy, state, env.actionMask(), eps, explore_rng);
      PhaseOrderEnv::StepResult sr = env.step(action);
      if (sr.faulted) {
        ++faults;
        ++faults_by_kind[faultKindName(sr.fault.kind)];
      }
      Transition t;
      t.state = std::move(state);
      t.action = action;
      t.reward = sr.reward;
      t.next_state = sr.state;
      t.done = sr.done;
      episode.push_back(std::move(t));
      state = std::move(sr.state);
      episode_reward += sr.reward;
      done = sr.done;
      ++steps;
    }
    if (config.agent.mc_returns) {
      annotateMonteCarloReturns(episode, config.agent.gamma);
    }
    replay.pushEpisode(index, std::move(episode));
    ran_episode = true;
  }
};

}  // namespace

TrainResult runParallelTraining(const std::vector<const Module*>& corpus,
                                const TrainConfig& config) {
  POSETRL_CHECK(!corpus.empty(), "training corpus is empty");
  POSETRL_CHECK(config.num_actors >= 2,
                "runParallelTraining needs num_actors >= 2");
  if (!config.checkpoint_path.empty()) {
    raiseError(
        "checkpointing is not supported with num_actors > 1; drop "
        "--checkpoint or train with a single actor");
  }
  const std::vector<SubSequence>& actions = resolveTrainActions(config);

  TrainResult result;
  result.agent = std::make_unique<DoubleDqn>(config.agent);
  DoubleDqn& agent = *result.agent;

  const std::size_t num_actors = config.num_actors;
  ShardedReplayBuffer replay(
      num_actors,
      std::max<std::size_t>(1, config.agent.replay_capacity / num_actors));
  Rng learner_rng = Rng::forStream(config.agent.seed, 0);

  std::vector<std::unique_ptr<Actor>> actors;
  actors.reserve(num_actors);
  for (std::size_t a = 0; a < num_actors; ++a) {
    actors.push_back(std::make_unique<Actor>(a, corpus.size(), config.seed,
                                             config.agent.seed));
  }

  const std::size_t episode_len =
      static_cast<std::size_t>(std::max(config.env.episode_length, 1));
  std::size_t steps = 0;
  std::size_t pending = 0;  // env steps not yet paid for with updates
  double reward_sum_all = 0.0;

  while (steps < config.total_steps) {
    // Snapshot the policy and freeze ε for the round; actors only ever read
    // these while the learner waits at the barrier.
    const Mlp policy = agent.onlineNet();
    const double eps = agent.epsilon();

    // Per-actor step quotas from the remaining budget: every actor gets a
    // full episode until the budget runs short, then actors fill in actor
    // order and the last active one truncates — total steps land exactly on
    // total_steps, mirroring the sequential loop's end-of-run truncation.
    const std::size_t remaining = config.total_steps - steps;
    std::vector<std::size_t> quotas(num_actors, 0);
    for (std::size_t a = 0; a < num_actors; ++a) {
      const std::size_t offset = a * episode_len;
      if (remaining > offset) {
        quotas[a] = std::min(episode_len, remaining - offset);
      }
    }

    std::vector<std::thread> threads;
    std::vector<std::exception_ptr> errors(num_actors);
    threads.reserve(num_actors);
    for (std::size_t a = 0; a < num_actors; ++a) {
      threads.emplace_back([&, a] {
        try {
          actors[a]->runRound(corpus, actions, config, policy, eps, quotas[a],
                              replay);
        } catch (...) {
          errors[a] = std::current_exception();
        }
      });
    }
    for (std::thread& t : threads) t.join();
    for (const std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }

    // Merge in actor order — the only order the stats ever see, however the
    // threads were actually scheduled.
    std::size_t round_steps = 0;
    for (const auto& actor : actors) {
      round_steps += actor->steps;
      if (actor->ran_episode) {
        result.stats.episode_rewards.push_back(actor->episode_reward);
        reward_sum_all += actor->episode_reward;
        ++result.stats.episodes;
      }
      result.stats.faults += actor->faults;
      for (const auto& [kind, count] : actor->faults_by_kind) {
        result.stats.faults_by_kind[kind] += count;
      }
    }
    POSETRL_CHECK(round_steps > 0, "parallel training round made no progress");
    steps += round_steps;
    agent.noteExploreSteps(round_steps);

    // Sequential cadence: one batched update per train_every env steps, but
    // only once the replay warmup is met — steps taken before warmup are
    // skipped, not deferred, exactly like DoubleDqn::observe.
    pending += round_steps;
    if (replay.size() < agent.warmupThreshold()) {
      pending = 0;
    } else {
      const std::size_t train_every = std::max<std::size_t>(
          1, config.agent.train_every);
      while (pending >= train_every) {
        agent.trainOnBatch(
            replay.sample(config.agent.batch_size, learner_rng));
        pending -= train_every;
      }
    }

    if (config.verbose) {
      std::fprintf(stderr,
                   "[train] round done: episodes %zu steps %zu eps %.3f\n",
                   result.stats.episodes, steps, agent.epsilon());
    }
  }

  result.stats.steps = steps;
  result.stats.mean_episode_reward =
      result.stats.episodes > 0
          ? reward_sum_all / static_cast<double>(result.stats.episodes)
          : 0.0;
  result.stats.final_epsilon = agent.epsilon();
  for (const auto& actor : actors) {
    for (const auto& env : actor->envs) {
      if (env != nullptr) {
        result.stats.quarantined_actions += env->quarantine().numQuarantined();
        result.stats.analysis.accumulate(env->analysisStats());
        const EmbedCacheStats& ec = env->embedCacheStats();
        result.stats.embed_cache.hits += ec.hits;
        result.stats.embed_cache.misses += ec.misses;
        result.stats.embed_cache.evictions += ec.evictions;
      }
    }
  }
  return result;
}

}  // namespace posetrl
