#pragma once

/// \file odg.h
/// The Oz Dependence Graph (ODG) of Section IV-B / Fig. 4: nodes are the
/// unique passes of the Oz sequence, with an edge for every consecutive
/// pair. Nodes whose degree exceeds a threshold k are *critical nodes*;
/// walking the graph from critical node to critical node yields the
/// sub-sequence action space of Table III.

#include <map>
#include <set>
#include <string>
#include <vector>

namespace posetrl {

/// Builds and queries the ODG for a given pass sequence.
class OzDependenceGraph {
 public:
  /// Constructs the graph from \p sequence (consecutive pairs -> edges).
  explicit OzDependenceGraph(const std::vector<std::string>& sequence);

  /// Unique pass names (nodes).
  const std::set<std::string>& nodes() const { return nodes_; }

  /// Unique successors of \p pass (passes that directly follow it in Oz).
  const std::set<std::string>& successors(const std::string& pass) const;

  /// Unique predecessors of \p pass.
  const std::set<std::string>& predecessors(const std::string& pass) const;

  /// Node degree: number of distinct neighbours counted per direction
  /// (|preds| + |succs|) — the measure under which the paper reports
  /// simplifycfg:11, instcombine:10, loop-simplify:8.
  std::size_t degree(const std::string& pass) const;

  /// Nodes with degree >= \p k, the paper's critical nodes (k >= 8).
  std::vector<std::string> criticalNodes(std::size_t k = 8) const;

  /// Enumerates simple walks that start at a critical node, follow
  /// successor edges through non-critical nodes, and stop on reaching
  /// another critical node (exclusive) or a dead end. Deduplicated and
  /// sorted; capped at \p max_walks.
  std::vector<std::vector<std::string>> subSequenceWalks(
      std::size_t k = 8, std::size_t max_walks = 256) const;

  std::size_t edgeCount() const { return edge_count_; }

 private:
  std::set<std::string> nodes_;
  std::map<std::string, std::set<std::string>> succ_;
  std::map<std::string, std::set<std::string>> pred_;
  std::size_t edge_count_ = 0;
  static const std::set<std::string> kEmpty;
};

}  // namespace posetrl
