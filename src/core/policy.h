#pragma once

/// \file policy.h
/// Greedy deployment of a trained agent on one program, plus the
/// size/runtime comparison against the stock -Oz pipeline used throughout
/// the paper's evaluation (Tables IV & V, Fig. 5).

#include <cstdint>
#include <memory>
#include <vector>

#include "core/environment.h"
#include "rl/dqn.h"

namespace posetrl {

class Module;

/// One step of a deployed rollout, including the fault data the sandbox
/// attributes to contained failures (faults/fault.h).
struct PolicyStep {
  std::size_t action = 0;  ///< Chosen sub-sequence id.
  double reward = 0.0;
  bool faulted = false;    ///< The action faulted and was rolled back.
  FaultReport fault;       ///< Valid when `faulted`.
};

/// Result of applying a trained policy to one program.
struct PolicyRollout {
  std::vector<std::size_t> action_sequence;  ///< Chosen sub-sequence ids.
  std::vector<PolicyStep> steps;             ///< Per-step outcome detail.
  std::unique_ptr<Module> optimized;         ///< Program after the rollout.
  double size_bytes = 0.0;                   ///< Modeled object size.
  std::size_t faults = 0;        ///< Contained faults during the rollout.
  std::size_t quarantined = 0;   ///< Actions masked by rollout end.
};

/// Rolls out the greedy policy for `config.episode_length` actions. Action
/// selection respects the environment's quarantine mask: an action that
/// faults its way past the quarantine threshold is masked out and the
/// next-best Q-value is taken instead of re-picking the blocked argmax
/// forever. Contained faults surface in `steps`/`faults` instead of being
/// dropped.
PolicyRollout applyPolicy(const DoubleDqn& agent, const Module& program,
                          const std::vector<SubSequence>& actions,
                          const EnvConfig& config);

/// Applies a fixed pass pipeline (e.g. ozPassNames()) to a clone of
/// \p program and returns the optimized module.
std::unique_ptr<Module> applyPipeline(const Module& program,
                                      const std::vector<std::string>& passes);

}  // namespace posetrl
