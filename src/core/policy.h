#pragma once

/// \file policy.h
/// Greedy deployment of a trained agent on one program, plus the
/// size/runtime comparison against the stock -Oz pipeline used throughout
/// the paper's evaluation (Tables IV & V, Fig. 5).

#include <cstdint>
#include <memory>
#include <vector>

#include "core/environment.h"
#include "rl/dqn.h"

namespace posetrl {

class Module;

/// Result of applying a trained policy to one program.
struct PolicyRollout {
  std::vector<std::size_t> action_sequence;  ///< Chosen sub-sequence ids.
  std::unique_ptr<Module> optimized;         ///< Program after the rollout.
  double size_bytes = 0.0;                   ///< Modeled object size.
};

/// Rolls out the greedy policy for `config.episode_length` actions.
PolicyRollout applyPolicy(const DoubleDqn& agent, const Module& program,
                          const std::vector<SubSequence>& actions,
                          const EnvConfig& config);

/// Applies a fixed pass pipeline (e.g. ozPassNames()) to a clone of
/// \p program and returns the optimized module.
std::unique_ptr<Module> applyPipeline(const Module& program,
                                      const std::vector<std::string>& passes);

}  // namespace posetrl
