#include "core/oz_sequence.h"

#include "passes/pass.h"
#include "support/error.h"

namespace posetrl {

std::string SubSequence::str() const {
  std::string out;
  for (const auto& p : passes) {
    if (!out.empty()) out += " ";
    out += "-" + p;
  }
  return out;
}

namespace {

/// Table I of the paper (LLVM-10 -Oz). Two fragments were garbled in the
/// paper's text ("-loop-inster"); they are restored here from LLVM-10's
/// actual -Oz pipeline, consistent with the manual groups of Table II
/// (groups 6-8 contain -tailcallelim/-reassociate and
/// -indvars/-loop-idiom, which therefore must appear in Table I).
constexpr const char* kOzSequence =
    "-ee-instrument -simplifycfg -sroa -early-cse -lower-expect "
    "-forceattrs -inferattrs -ipsccp -called-value-propagation -attributor "
    "-globalopt -mem2reg -deadargelim -instcombine -simplifycfg -prune-eh "
    "-inline -functionattrs -sroa -early-cse-memssa -speculative-execution "
    "-jump-threading -correlated-propagation -simplifycfg -instcombine "
    "-tailcallelim -simplifycfg -reassociate "
    "-loop-simplify -lcssa -loop-rotate -licm -loop-unswitch -simplifycfg "
    "-instcombine -loop-simplify -lcssa -indvars -loop-idiom "
    "-loop-deletion -loop-unroll -mldst-motion -gvn -memcpyopt -sccp -bdce "
    "-instcombine -jump-threading -correlated-propagation -dse "
    "-loop-simplify -lcssa -licm -adce -simplifycfg -instcombine -barrier "
    "-elim-avail-extern -rpo-functionattrs -globalopt -globaldce "
    "-float2int -lower-constant-intrinsics -loop-simplify -lcssa "
    "-loop-rotate -loop-distribute -loop-vectorize -loop-simplify "
    "-loop-load-elim -instcombine -simplifycfg -instcombine "
    "-loop-simplify -lcssa -loop-unroll -instcombine -loop-simplify "
    "-lcssa -licm -alignment-from-assumptions -strip-dead-prototypes "
    "-globaldce -constmerge -loop-simplify -lcssa -loop-sink -instsimplify "
    "-div-rem-pairs -simplifycfg";

/// O3-flavoured pipeline used as the Fig. 1 speed baseline. It mirrors how
/// LLVM's -O3 actually differs from -Oz: the pipeline *structure* is the
/// same, and the divergence is in thresholds — aggressive inlining
/// (inline-o3), partial loop unrolling (loop-unroll-o3), larger-budget
/// repeated unswitching (loop-unswitch-o3) — plus dropping the
/// size-oriented -loop-sink. Computed below by substituting into Table I.
std::vector<std::string> buildO3FromOz() {
  std::vector<std::string> out;
  for (const std::string& p :
       parsePassSequence(kOzSequence, /*strict=*/true)) {
    if (p == "inline") {
      out.push_back("inline-o3");
    } else if (p == "loop-unswitch") {
      out.push_back("loop-unswitch-o3");
    } else if (p == "loop-sink") {
      continue;  // Pure size optimization; not part of O3.
    } else {
      out.push_back(p);
    }
  }
  // Partial unrolling belongs only in the *late* unroll position (after the
  // vectorizer) — unrolling earlier inflates loop bodies past the
  // vectorizer's thresholds and loses its much larger win.
  for (auto it = out.rbegin(); it != out.rend(); ++it) {
    if (*it == "loop-unroll") {
      *it = "loop-unroll-o3";
      break;
    }
  }
  return out;
}

std::vector<SubSequence> parseTable(
    const std::vector<const char*>& rows) {
  std::vector<SubSequence> out;
  int id = 1;
  for (const char* row : rows) {
    SubSequence sub;
    sub.id = id++;
    sub.passes = parsePassSequence(row, /*strict=*/true);
    POSETRL_CHECK(!sub.passes.empty(), "empty sub-sequence row");
    out.push_back(std::move(sub));
  }
  return out;
}

}  // namespace

const std::vector<std::string>& ozPassNames() {
  static const std::vector<std::string> names =
      parsePassSequence(kOzSequence, /*strict=*/true);
  return names;
}

std::string ozSequenceString() { return kOzSequence; }

const std::vector<std::string>& o3PassNames() {
  static const std::vector<std::string> names = buildO3FromOz();
  return names;
}

const std::vector<SubSequence>& manualSubSequences() {
  static const std::vector<SubSequence> subs = parseTable({
      // Table II, rows 1-15 (OCR fixes: lessa->lcssa, adee->adce,
      // simplifyefg->simplifycfg).
      "-ee-instrument -simplifycfg -sroa -early-cse -lower-expect "
      "-forceattrs -inferattrs -mem2reg",
      "-ipsccp -called-value-propagation -attributor -globalopt",
      "-deadargelim -instcombine -simplifycfg",
      "-prune-eh -inline -functionattrs -barrier",
      "-sroa -early-cse-memssa -speculative-execution -jump-threading "
      "-correlated-propagation",
      "-simplifycfg -instcombine -tailcallelim -simplifycfg -reassociate",
      "-loop-simplify -lcssa -loop-rotate -licm -loop-unswitch "
      "-simplifycfg -instcombine",
      "-loop-simplify -lcssa -indvars -loop-idiom -loop-deletion "
      "-loop-unroll",
      "-mldst-motion -gvn -memcpyopt -sccp -bdce -instcombine "
      "-jump-threading -correlated-propagation -dse",
      "-loop-simplify -lcssa -licm -adce -simplifycfg -instcombine",
      "-barrier -elim-avail-extern -rpo-functionattrs -globalopt "
      "-globaldce -float2int -lower-constant-intrinsics",
      "-loop-simplify -lcssa -loop-rotate -loop-distribute "
      "-loop-vectorize",
      "-loop-simplify -loop-load-elim -instcombine -simplifycfg "
      "-instcombine",
      "-loop-simplify -lcssa -loop-unroll -instcombine -loop-simplify "
      "-lcssa -licm -alignment-from-assumptions",
      "-strip-dead-prototypes -globaldce -constmerge -loop-simplify "
      "-lcssa -loop-sink -instsimplify -div-rem-pairs -simplifycfg",
  });
  return subs;
}

const std::vector<SubSequence>& odgSubSequences() {
  static const std::vector<SubSequence> subs = parseTable({
      // Table III, rows 1-34 (the paper's row numbering wraps long rows;
      // restored to 34 distinct sequences).
      "-instcombine -barrier -elim-avail-extern -rpo-functionattrs "
      "-globalopt -globaldce -constmerge",
      "-instcombine -barrier -elim-avail-extern -rpo-functionattrs "
      "-globalopt -globaldce -float2int -lower-constant-intrinsics",
      "-instcombine -barrier -elim-avail-extern -rpo-functionattrs "
      "-globalopt -mem2reg -deadargelim",
      "-instcombine -jump-threading -correlated-propagation -dse",
      "-instcombine -jump-threading -correlated-propagation",
      "-instcombine",
      "-instcombine -tailcallelim",
      "-loop-simplify -lcssa -indvars -loop-idiom -loop-deletion "
      "-loop-unroll",
      "-loop-simplify -lcssa -indvars -loop-idiom -loop-deletion "
      "-loop-unroll -mldst-motion -gvn -memcpyopt -sccp -bdce",
      "-loop-simplify -lcssa -licm -adce",
      "-loop-simplify -lcssa -licm -alignmentfromassumptions "
      "-strip-dead-prototypes -globaldce -constmerge",
      "-loop-simplify -lcssa -licm -alignmentfromassumptions "
      "-strip-dead-prototypes -globaldce -float2int "
      "-lower-constant-intrinsics",
      "-loop-simplify -lcssa -licm -loop-unswitch",
      "-loop-simplify -lcssa -loop-rotate -licm -adce",
      "-loop-simplify -lcssa -loop-rotate -licm "
      "-alignmentfromassumptions -strip-dead-prototypes -globaldce "
      "-constmerge",
      "-loop-simplify -lcssa -loop-rotate -licm "
      "-alignmentfromassumptions -strip-dead-prototypes -globaldce "
      "-float2int -lower-constant-intrinsics",
      "-loop-simplify -lcssa -loop-rotate -licm -loop-unswitch",
      "-loop-simplify -lcssa -loop-rotate -loop-distribute "
      "-loop-vectorize",
      "-loop-simplify -lcssa -loop-sink -instsimplify -div-rem-pairs "
      "-simplifycfg",
      "-loop-simplify -lcssa -loop-unroll",
      "-loop-simplify -lcssa -loop-unroll -mldst-motion -gvn -memcpyopt "
      "-sccp -bdce",
      "-loop-simplify -loop-load-elim",
      "-simplifycfg",
      "-simplifycfg -prune-eh -inline -functionattrs -sroa -early-cse "
      "-lower-expect -forceattrs -inferattrs -ipsccp "
      "-called-value-propagation -attributor -globalopt -globaldce "
      "-constmerge -barrier",
      "-simplifycfg -prune-eh -inline -functionattrs -sroa -early-cse "
      "-lower-expect -forceattrs -inferattrs -ipsccp "
      "-called-value-propagation -attributor -globalopt -globaldce "
      "-float2int -lower-constant-intrinsics -barrier",
      "-simplifycfg -prune-eh -inline -functionattrs -sroa -early-cse "
      "-lower-expect -forceattrs -inferattrs -ipsccp "
      "-called-value-propagation -attributor -globalopt -mem2reg "
      "-deadargelim -barrier",
      "-simplifycfg -prune-eh -inline -functionattrs -sroa "
      "-early-cse-memssa -speculative-execution -jump-threading "
      "-correlated-propagation -dse -barrier",
      "-simplifycfg -prune-eh -inline -functionattrs -sroa "
      "-early-cse-memssa -speculative-execution -jump-threading "
      "-correlated-propagation -barrier",
      "-simplifycfg -reassociate",
      "-simplifycfg -sroa -early-cse -lower-expect -forceattrs "
      "-inferattrs -ipsccp -called-value-propagation -attributor "
      "-globalopt -globaldce -constmerge",
      "-simplifycfg -sroa -early-cse -lower-expect -forceattrs "
      "-inferattrs -ipsccp -called-value-propagation -attributor "
      "-globalopt -globaldce -float2int -lower-constant-intrinsics",
      "-simplifycfg -sroa -early-cse -lower-expect -forceattrs "
      "-inferattrs -ipsccp -called-value-propagation -attributor "
      "-globalopt -mem2reg -deadargelim",
      "-simplifycfg -sroa -early-cse-memssa -speculative-execution "
      "-jump-threading -correlated-propagation -dse",
      "-simplifycfg -sroa -early-cse-memssa -speculative-execution "
      "-jump-threading -correlated-propagation",
  });
  POSETRL_CHECK(subs.size() == 34, "Table III must have 34 rows");
  return subs;
}

}  // namespace posetrl
