#include "core/odg.h"

#include <algorithm>

namespace posetrl {

const std::set<std::string> OzDependenceGraph::kEmpty;

OzDependenceGraph::OzDependenceGraph(
    const std::vector<std::string>& sequence) {
  for (const std::string& p : sequence) nodes_.insert(p);
  for (std::size_t i = 0; i + 1 < sequence.size(); ++i) {
    const std::string& a = sequence[i];
    const std::string& b = sequence[i + 1];
    if (a == b) continue;
    if (succ_[a].insert(b).second) ++edge_count_;
    pred_[b].insert(a);
  }
}

const std::set<std::string>& OzDependenceGraph::successors(
    const std::string& pass) const {
  auto it = succ_.find(pass);
  return it == succ_.end() ? kEmpty : it->second;
}

const std::set<std::string>& OzDependenceGraph::predecessors(
    const std::string& pass) const {
  auto it = pred_.find(pass);
  return it == pred_.end() ? kEmpty : it->second;
}

std::size_t OzDependenceGraph::degree(const std::string& pass) const {
  return successors(pass).size() + predecessors(pass).size();
}

std::vector<std::string> OzDependenceGraph::criticalNodes(
    std::size_t k) const {
  std::vector<std::string> out;
  for (const std::string& n : nodes_) {
    if (degree(n) >= k) out.push_back(n);
  }
  return out;
}

std::vector<std::vector<std::string>> OzDependenceGraph::subSequenceWalks(
    std::size_t k, std::size_t max_walks) const {
  const std::vector<std::string> critical_list = criticalNodes(k);
  const std::set<std::string> critical(critical_list.begin(),
                                       critical_list.end());
  std::set<std::vector<std::string>> walks;

  // DFS over simple paths from each critical node; a path is emitted when
  // it runs into another critical node (exclusive) or a dead end.
  struct Frame {
    std::vector<std::string> path;
  };
  for (const std::string& start : critical_list) {
    std::vector<Frame> stack{{std::vector<std::string>{start}}};
    while (!stack.empty() && walks.size() < max_walks) {
      Frame frame = std::move(stack.back());
      stack.pop_back();
      const std::string& tail = frame.path.back();
      bool extended = false;
      for (const std::string& next : successors(tail)) {
        if (critical.count(next)) {
          walks.insert(frame.path);
          continue;
        }
        if (std::find(frame.path.begin(), frame.path.end(), next) !=
            frame.path.end()) {
          continue;  // Keep walks simple.
        }
        Frame child = frame;
        child.path.push_back(next);
        stack.push_back(std::move(child));
        extended = true;
      }
      if (!extended && successors(tail).empty()) {
        walks.insert(frame.path);
      }
    }
  }
  return {walks.begin(), walks.end()};
}

}  // namespace posetrl
