#include "core/trainer.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/parallel_trainer.h"
#include "faults/checkpoint.h"
#include "ir/module.h"
#include "support/error.h"
#include "support/rng.h"

namespace posetrl {

namespace {

/// Shared implementation of trainAgent/resumeTraining. When \p resume_from
/// is non-null the loop starts from the restored state instead of scratch.
TrainResult runTraining(const std::vector<const Module*>& corpus,
                        const TrainConfig& config,
                        const TrainerCheckpoint* resume_from) {
  POSETRL_CHECK(!corpus.empty(), "training corpus is empty");
  // Sweep the orphaned tmp a save interrupted mid-publish may have left —
  // the checkpoint itself is intact (rename is atomic), only debris remains.
  if (!config.checkpoint_path.empty()) gcCheckpointTmp(config.checkpoint_path);
  TrainResult result;
  result.agent = std::make_unique<DoubleDqn>(config.agent);
  DoubleDqn& agent = *result.agent;

  // One environment per program, constructed lazily and cached (the action
  // space must match the agent's head count).
  const std::vector<SubSequence>& actions = resolveTrainActions(config);

  std::vector<std::unique_ptr<PhaseOrderEnv>> envs(corpus.size());
  Rng rng(config.seed);

  std::size_t steps = 0;
  double reward_sum_all = 0.0;

  // Quarantine state restored from a checkpoint for environments that have
  // not been recreated yet; applied lazily at env construction.
  std::map<std::size_t, std::string> pending_quarantines;

  if (resume_from != nullptr) {
    steps = resume_from->steps;
    result.stats.steps = steps;
    result.stats.episodes = resume_from->episodes;
    result.stats.episode_rewards = resume_from->episode_rewards;
    for (double r : resume_from->episode_rewards) reward_sum_all += r;
    rng = resume_from->rng;
    {
      ScopedFaultTrap trap;  // corrupt agent payload -> FatalError
      std::istringstream is(resume_from->agent_blob);
      agent.loadCheckpoint(is);
    }
    for (const QuarantineSnapshot& q : resume_from->quarantines) {
      POSETRL_CHECK(q.program_index < corpus.size(),
                    "checkpoint quarantine for program ", q.program_index,
                    " outside the corpus");
      pending_quarantines[q.program_index] = q.blob;
    }
  }

  std::size_t last_checkpoint_steps = steps;
  const auto maybeCheckpoint = [&]() {
    if (config.checkpoint_path.empty()) return;
    // Interval-gated and only ever called at episode boundaries: a
    // checkpoint must never capture a mid-episode (or end-of-run truncated)
    // state, or a resumed run would diverge from the uninterrupted one.
    if (steps - last_checkpoint_steps < config.checkpoint_every_steps) return;
    TrainerCheckpoint ckpt;
    ckpt.steps = steps;
    ckpt.episodes = result.stats.episodes;
    ckpt.episode_rewards = result.stats.episode_rewards;
    ckpt.rng = rng;
    std::ostringstream agent_os;
    agent.saveCheckpoint(agent_os);
    ckpt.agent_blob = agent_os.str();
    for (std::size_t pi = 0; pi < envs.size(); ++pi) {
      std::string blob;
      if (envs[pi] != nullptr && envs[pi]->quarantine().totalFaults() > 0) {
        std::ostringstream qs;
        envs[pi]->quarantine().save(qs);
        blob = qs.str();
      } else if (auto it = pending_quarantines.find(pi);
                 it != pending_quarantines.end()) {
        blob = it->second;  // restored but untouched since resume
      }
      if (!blob.empty()) ckpt.quarantines.push_back({pi, std::move(blob)});
    }
    saveCheckpointFile(config.checkpoint_path, ckpt);
    last_checkpoint_steps = steps;
    ++result.stats.checkpoints_written;
  };

  while (steps < config.total_steps) {
    const std::size_t pi = rng.nextBelow(corpus.size());
    if (envs[pi] == nullptr) {
      envs[pi] = std::make_unique<PhaseOrderEnv>(*corpus[pi], actions,
                                                 config.env);
      if (auto it = pending_quarantines.find(pi);
          it != pending_quarantines.end()) {
        std::istringstream qs(it->second);
        envs[pi]->quarantine().load(qs);
        pending_quarantines.erase(it);
      }
    }
    PhaseOrderEnv& env = *envs[pi];
    Embedding state = env.reset();
    double episode_reward = 0.0;
    bool done = false;
    std::vector<Transition> episode;
    while (!done && steps < config.total_steps) {
      const std::size_t action =
          agent.act(state, /*explore=*/true, &env.actionMask());
      PhaseOrderEnv::StepResult sr = env.step(action);
      if (sr.faulted) {
        ++result.stats.faults;
        ++result.stats.faults_by_kind[faultKindName(sr.fault.kind)];
        if (config.verbose) {
          std::fprintf(stderr, "[train] contained %s\n",
                       sr.fault.str().c_str());
        }
      }
      Transition t;
      t.state = std::move(state);
      t.action = action;
      t.reward = sr.reward;
      t.next_state = sr.state;
      t.done = sr.done;
      episode.push_back(std::move(t));
      state = std::move(sr.state);
      episode_reward += sr.reward;
      done = sr.done;
      ++steps;
    }
    // Attach Monte-Carlo returns (discounted reward-to-go) when enabled,
    // then feed the episode into the replay memory.
    if (config.agent.mc_returns) {
      annotateMonteCarloReturns(episode, config.agent.gamma);
    }
    for (Transition& t : episode) agent.observe(std::move(t));
    result.stats.episode_rewards.push_back(episode_reward);
    reward_sum_all += episode_reward;
    ++result.stats.episodes;
    maybeCheckpoint();
    if (config.verbose && result.stats.episodes % 10 == 0) {
      std::fprintf(stderr,
                   "[train] episode %zu steps %zu eps %.3f reward %.3f\n",
                   result.stats.episodes, steps, agent.epsilon(),
                   episode_reward);
    }
  }
  result.stats.steps = steps;
  result.stats.mean_episode_reward =
      result.stats.episodes > 0
          ? reward_sum_all / static_cast<double>(result.stats.episodes)
          : 0.0;
  result.stats.final_epsilon = agent.epsilon();
  for (const auto& env : envs) {
    if (env != nullptr) {
      result.stats.quarantined_actions += env->quarantine().numQuarantined();
      result.stats.analysis.accumulate(env->analysisStats());
      const EmbedCacheStats& ec = env->embedCacheStats();
      result.stats.embed_cache.hits += ec.hits;
      result.stats.embed_cache.misses += ec.misses;
      result.stats.embed_cache.evictions += ec.evictions;
    }
  }
  return result;
}

}  // namespace

const std::vector<SubSequence>& resolveTrainActions(const TrainConfig& config) {
  const std::vector<SubSequence>& actions =
      config.actions != nullptr
          ? *config.actions
          : (config.agent.num_actions == manualSubSequences().size()
                 ? manualSubSequences()
                 : odgSubSequences());
  POSETRL_CHECK(actions.size() == config.agent.num_actions,
                "agent head count must match the action-space size");
  return actions;
}

TrainResult trainAgent(const std::vector<const Module*>& corpus,
                       const TrainConfig& config) {
  if (config.num_actors >= 2) return runParallelTraining(corpus, config);
  return runTraining(corpus, config, nullptr);
}

TrainResult resumeTraining(const std::vector<const Module*>& corpus,
                           const TrainConfig& config,
                           const std::string& checkpoint_path) {
  if (config.num_actors >= 2) {
    raiseError(
        "resume is not supported with num_actors > 1; checkpoints capture a "
        "single sequential trajectory");
  }
  const TrainerCheckpoint ckpt = loadCheckpointFile(checkpoint_path);
  return runTraining(corpus, config, &ckpt);
}

void saveAgentToFile(const DoubleDqn& agent, const std::string& path) {
  std::ostringstream os;
  agent.saveModel(os);
  writeFileAtomic(path, os.str());
}

void loadAgentFromFile(DoubleDqn& agent, const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) raiseError("cannot open model file: " + path);
  // Short or corrupt payloads raise FatalError (via the trap) instead of
  // aborting the process with half-loaded weights.
  ScopedFaultTrap trap;
  agent.loadModel(is);
}

}  // namespace posetrl
