#include "core/trainer.h"

#include <cstdio>
#include <fstream>

#include "ir/module.h"
#include "support/error.h"
#include "support/rng.h"

namespace posetrl {

TrainResult trainAgent(const std::vector<const Module*>& corpus,
                       const TrainConfig& config) {
  POSETRL_CHECK(!corpus.empty(), "training corpus is empty");
  TrainResult result;
  result.agent = std::make_unique<DoubleDqn>(config.agent);
  DoubleDqn& agent = *result.agent;

  // One environment per program, constructed lazily and cached (the action
  // space must match the agent's head count).
  const std::vector<SubSequence>& actions =
      config.agent.num_actions == manualSubSequences().size()
          ? manualSubSequences()
          : odgSubSequences();
  POSETRL_CHECK(actions.size() == config.agent.num_actions,
                "agent head count must match an action-space size");

  std::vector<std::unique_ptr<PhaseOrderEnv>> envs(corpus.size());
  Rng rng(config.seed);

  std::size_t steps = 0;
  double reward_sum_all = 0.0;
  while (steps < config.total_steps) {
    const std::size_t pi = rng.nextBelow(corpus.size());
    if (envs[pi] == nullptr) {
      envs[pi] = std::make_unique<PhaseOrderEnv>(*corpus[pi], actions,
                                                 config.env);
    }
    PhaseOrderEnv& env = *envs[pi];
    Embedding state = env.reset();
    double episode_reward = 0.0;
    bool done = false;
    std::vector<Transition> episode;
    while (!done && steps < config.total_steps) {
      const std::size_t action = agent.act(state, /*explore=*/true);
      PhaseOrderEnv::StepResult sr = env.step(action);
      Transition t;
      t.state = std::move(state);
      t.action = action;
      t.reward = sr.reward;
      t.next_state = sr.state;
      t.done = sr.done;
      episode.push_back(std::move(t));
      state = std::move(sr.state);
      episode_reward += sr.reward;
      done = sr.done;
      ++steps;
    }
    // Attach Monte-Carlo returns (discounted reward-to-go) when enabled,
    // then feed the episode into the replay memory.
    if (config.agent.mc_returns) {
      double g = 0.0;
      for (auto it = episode.rbegin(); it != episode.rend(); ++it) {
        g = it->reward + config.agent.gamma * g;
        it->mc_return = g;
        it->use_mc = true;
      }
    }
    for (Transition& t : episode) agent.observe(std::move(t));
    result.stats.episode_rewards.push_back(episode_reward);
    reward_sum_all += episode_reward;
    ++result.stats.episodes;
    if (config.verbose && result.stats.episodes % 10 == 0) {
      std::fprintf(stderr,
                   "[train] episode %zu steps %zu eps %.3f reward %.3f\n",
                   result.stats.episodes, steps, agent.epsilon(),
                   episode_reward);
    }
  }
  result.stats.steps = steps;
  result.stats.mean_episode_reward =
      result.stats.episodes > 0
          ? reward_sum_all / static_cast<double>(result.stats.episodes)
          : 0.0;
  result.stats.final_epsilon = agent.epsilon();
  return result;
}

void saveAgentToFile(const DoubleDqn& agent, const std::string& path) {
  std::ofstream os(path);
  POSETRL_CHECK(os.good(), "cannot open model file for writing: ", path);
  agent.saveModel(os);
}

void loadAgentFromFile(DoubleDqn& agent, const std::string& path) {
  std::ifstream is(path);
  POSETRL_CHECK(is.good(), "cannot open model file: ", path);
  agent.loadModel(is);
}

}  // namespace posetrl
