#pragma once

/// \file parallel_trainer.h
/// Parallel actor–learner training pipeline (dispatched from trainAgent when
/// TrainConfig::num_actors >= 2).
///
/// Architecture: training proceeds in rounds. At the start of a round the
/// learner copies the agent's online network into a read-only policy
/// snapshot and freezes the current ε; N rollout actors then run one
/// episode each, concurrently, against that snapshot — every actor owns its
/// private PhaseOrderEnv cache (one env per corpus program, embedding cache
/// and quarantine included), a private program-selection RNG stream and a
/// private exploration RNG stream (Rng::forStream(seed, actor + 1), so
/// streams never collide with each other or with the agent's own
/// Rng(seed)). Finished episodes are Monte-Carlo annotated and appended to
/// the actor's own shard of a ShardedReplayBuffer. After the round barrier
/// the learner merges actor statistics in actor order, advances the shared
/// ε-schedule by the round's step count, and runs the due number of batched
/// gradient updates (DoubleDqn::trainOnBatch — one GEMM per layer) at the
/// sequential loop's cadence of one update per train_every env steps, gated
/// on the replay warmup threshold.
///
/// Determinism contract: for a fixed num_actors the run is bit-reproducible
/// regardless of thread scheduling. Every source of nondeterminism is
/// pinned at a sync point — per-round step quotas are computed from the
/// remaining budget alone, each actor's RNG streams are derived from the
/// seeds and the actor index, episodes land in per-actor shards (so replay
/// contents are independent of push interleaving), stats merge in actor
/// order, and the learner samples only between rounds. Different actor
/// counts produce different (equally valid) trajectories.
///
/// Not supported: checkpoint/resume. The crash-safe checkpoint format
/// captures one sequential trajectory; a parallel run would need per-actor
/// env and RNG state it has no slots for. runParallelTraining raises a
/// recoverable FatalError when checkpoint_path is set rather than silently
/// writing checkpoints a resume could not honour.

#include "core/trainer.h"

namespace posetrl {

/// Trains with config.num_actors concurrent rollout actors. Requires
/// num_actors >= 2 (trainAgent routes smaller values to the bit-exact
/// sequential loop) and an empty checkpoint_path.
TrainResult runParallelTraining(const std::vector<const Module*>& corpus,
                                const TrainConfig& config);

}  // namespace posetrl
