#pragma once

/// \file transform_utils.h
/// Building blocks shared by many passes: dead-code sweeps, unreachable
/// block removal, constant folding / instruction simplification, edge
/// splitting and block merging.

#include <cstdint>

namespace posetrl {

class Module;
class Function;
class BasicBlock;
class Instruction;
class Value;

/// Removes trivially dead instructions (no uses, removable) to a fixpoint.
bool deleteDeadInstructions(Function& f);

/// Replaces all uses of \p inst with \p replacement and erases \p inst.
void replaceAndErase(Instruction* inst, Value* replacement);

/// Deletes blocks unreachable from the entry (fixing phis; values defined
/// in removed blocks are replaced by undef in any remaining — necessarily
/// unreachable-handled — users).
bool removeUnreachableBlocks(Function& f);

/// Attempts to fold \p inst to an existing Value (constant or operand).
/// Returns nullptr if no fold applies. Never creates new instructions.
Value* simplifyInstruction(Instruction* inst, Module& m);

/// Splits the CFG edge pred->succ by inserting a forwarding block; updates
/// phis in \p succ. Returns the new block.
BasicBlock* splitEdge(BasicBlock* pred, BasicBlock* succ);

/// Merges \p bb into its single predecessor when legal (pred has single
/// successor bb, bb has single predecessor pred, no phis in bb that can't be
/// resolved). Returns true on success.
bool mergeBlockIntoPredecessor(BasicBlock* bb);

/// Folds phis with a single incoming value or all-identical incoming values
/// throughout the function.
bool foldTrivialPhis(Function& f);

}  // namespace posetrl
