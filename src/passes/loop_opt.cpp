/// \file loop_opt.cpp
/// Counted-loop optimizations: -loop-deletion (removes side-effect-free
/// finite loops whose values are unused), -indvars (replaces escaped
/// induction-variable values of constant-trip loops with their closed
/// forms), -loop-idiom (rewrites memset-shaped store loops into the memset
/// intrinsic), and -loop-load-elim (cross-iteration store-to-load
/// forwarding in single-block loops).

#include <set>
#include <vector>

#include "analysis/analysis_manager.h"
#include "analysis/dominators.h"
#include "analysis/loop_info.h"
#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/instruction.h"
#include "ir/ir_builder.h"
#include "ir/module.h"
#include "passes/all_passes.h"
#include "passes/loop_utils.h"
#include "passes/transform_utils.h"

namespace posetrl {
namespace {

constexpr std::int64_t kTripSimLimit = 1 << 16;

/// True when no instruction in the loop writes memory or has observable
/// effects (calls are rejected wholesale unless readnone).
bool loopIsSideEffectFree(const Loop& loop) {
  for (BasicBlock* bb : loop.blocks()) {
    for (const auto& inst : bb->insts()) {
      if (inst->opcode() == Opcode::Store) return false;
      if (inst->opcode() == Opcode::Call) {
        const auto* call = static_cast<const CallInst*>(inst.get());
        Function* callee = call->calledFunction();
        if (callee == nullptr || !callee->hasAttr(FnAttr::ReadNone)) {
          return false;
        }
      }
      if (inst->opcode() == Opcode::Unreachable) return false;
      if (inst->mayTrap()) return false;
    }
  }
  return true;
}

/// True when no value defined in the loop is used outside it.
bool loopValuesUnusedOutside(const Loop& loop) {
  for (BasicBlock* bb : loop.blocks()) {
    for (const auto& inst : bb->insts()) {
      for (Instruction* user : inst->users()) {
        if (auto* phi = dynCast<PhiInst>(user)) {
          // A phi use counts as outside when the phi lives outside.
          if (!loop.contains(phi->parent())) return false;
          continue;
        }
        if (!loop.contains(user->parent())) return false;
      }
    }
  }
  return true;
}

class LoopDeletionPass : public FunctionPass {
 public:
  std::string_view name() const override { return "loop-deletion"; }

 protected:
  bool runOnFunction(Function& f) override {
    bool changed = false;
    AnalysisManager local_am;
    AnalysisManager& am = AnalysisManager::currentOr(local_am);
    for (int round = 0; round < 8; ++round) {
      const LoopInfo& li = am.loopInfo(f);
      bool local = false;
      for (Loop* loop : li.loopsInnermostFirst()) {
        if (tryDelete(*loop, f)) {
          local = true;
          break;  // Structures stale.
        }
      }
      changed |= local;
      if (!local) break;
    }
    return changed;
  }

 private:
  bool tryDelete(Loop& loop, Function& f) {
    CountedLoop cl;
    if (!matchCountedLoop(&loop, cl)) return false;
    // Provably finite (bounded simulation succeeds).
    if (cl.simulateTripCount(kTripSimLimit) < 0) return false;
    if (!loopIsSideEffectFree(loop)) return false;
    if (!loopValuesUnusedOutside(loop)) return false;
    if (loop.subLoops().size() > 0) return false;
    const auto exits = loop.exitBlocks();
    if (exits.size() != 1) return false;
    BasicBlock* exit = exits[0];
    // Exit phis must not distinguish where the loop left from.
    for (PhiInst* phi : exit->phis()) {
      Value* uniform = nullptr;
      for (std::size_t i = 0; i < phi->numIncoming(); ++i) {
        if (!loop.contains(phi->incomingBlock(i))) continue;
        Value* v = phi->incomingValue(i);
        if (!isLoopInvariant(loop, v)) return false;
        if (uniform == nullptr) uniform = v;
        if (uniform != v) return false;
      }
    }

    // Redirect the preheader straight to the exit.
    BasicBlock* ph = cl.preheader;
    Instruction* ph_term = ph->terminator();
    Module& m = *f.parent();
    for (PhiInst* phi : exit->phis()) {
      Value* uniform = nullptr;
      for (std::size_t i = phi->numIncoming(); i-- > 0;) {
        if (loop.contains(phi->incomingBlock(i))) {
          uniform = phi->incomingValue(i);
          phi->removeIncoming(phi->incomingBlock(i));
        }
      }
      if (uniform != nullptr) phi->addIncoming(uniform, ph);
    }
    ph_term->eraseFromParent();
    IRBuilder b(&m);
    b.setInsertPoint(ph);
    b.br(exit);
    removeUnreachableBlocks(f);
    foldTrivialPhis(f);
    deleteDeadInstructions(f);
    return true;
  }
};

class IndVarSimplifyPass : public FunctionPass {
 public:
  std::string_view name() const override { return "indvars"; }

 protected:
  bool runOnFunction(Function& f) override {
    bool changed = false;
    AnalysisManager local_am;
    const LoopInfo& li = AnalysisManager::currentOr(local_am).loopInfo(f);
    Module& m = *f.parent();
    for (Loop* loop : li.loopsInnermostFirst()) {
      CountedLoop cl;
      if (!matchCountedLoop(loop, cl)) continue;
      const std::int64_t branch_execs = cl.simulateTripCount(kTripSimLimit);
      if (branch_execs <= 0) continue;
      // Closed-form final values of iv / iv_next at loop exit.
      const auto* init_c = dynCast<ConstantInt>(cl.init);
      if (init_c == nullptr) continue;
      const unsigned bits = cl.iv->type()->intBits();
      const std::int64_t iv_exit = ConstantInt::canonicalize(
          init_c->value() + (branch_execs - 1) * cl.step, bits);
      const std::int64_t ivn_exit =
          ConstantInt::canonicalize(iv_exit + cl.step, bits);
      // Replace uses outside the loop.
      for (auto [def, val] :
           {std::pair<Instruction*, std::int64_t>{cl.iv, iv_exit},
            std::pair<Instruction*, std::int64_t>{cl.iv_next, ivn_exit}}) {
        std::vector<Instruction*> users(def->users().begin(),
                                        def->users().end());
        for (Instruction* user : users) {
          bool outside;
          if (auto* phi = dynCast<PhiInst>(user)) {
            outside = !loop->contains(phi->parent());
          } else {
            outside = !loop->contains(user->parent());
          }
          if (!outside) continue;
          ConstantInt* c = m.constantInt(def->type(), val);
          for (std::size_t i = 0; i < user->numOperands(); ++i) {
            if (user->operand(i) == def) user->setOperand(i, c);
          }
          changed = true;
        }
      }
    }
    changed |= deleteDeadInstructions(f);
    return changed;
  }
};

class LoopIdiomPass : public FunctionPass {
 public:
  std::string_view name() const override { return "loop-idiom"; }

 protected:
  bool runOnFunction(Function& f) override {
    bool changed = false;
    AnalysisManager local_am;
    AnalysisManager& am = AnalysisManager::currentOr(local_am);
    for (int round = 0; round < 4; ++round) {
      const LoopInfo& li = am.loopInfo(f);
      bool local = false;
      for (Loop* loop : li.loopsInnermostFirst()) {
        if (tryMemset(*loop, f)) {
          local = true;
          break;
        }
      }
      changed |= local;
      if (!local) break;
    }
    return changed;
  }

 private:
  /// Matches single-block loops of the shape
  ///   for (i = 0; i < N; ++i) buf[i] = C;   (C constant, same-byte pattern)
  /// and rewrites them to pr.memset.<T>.
  bool tryMemset(Loop& loop, Function& f) {
    if (loop.blocks().size() != 1) return false;
    CountedLoop cl;
    if (!matchCountedLoop(&loop, cl)) return false;
    if (cl.step != 1) return false;
    const auto* init_c = dynCast<ConstantInt>(cl.init);
    if (init_c == nullptr || !init_c->isZero()) return false;
    const std::int64_t trips = cl.simulateTripCount(kTripSimLimit);
    if (trips <= 0) return false;
    if (!loopValuesUnusedOutside(loop)) return false;

    BasicBlock* body = cl.header;
    // Expected contents: iv phi, gep, store, iv_next, cond, condbr. Allow
    // no other instructions.
    StoreInst* store = nullptr;
    GepInst* gep = nullptr;
    for (const auto& inst : body->insts()) {
      Instruction* i = inst.get();
      if (i == cl.iv || i == cl.iv_next || i == cl.cond ||
          i == cl.exit_branch) {
        continue;
      }
      if (auto* s = dynCast<StoreInst>(i)) {
        if (store != nullptr) return false;
        store = s;
        continue;
      }
      if (auto* g = dynCast<GepInst>(i)) {
        if (gep != nullptr) return false;
        gep = g;
        continue;
      }
      return false;
    }
    if (store == nullptr || gep == nullptr) return false;
    if (store->pointer() != gep) return false;
    auto* value_c = dynCast<ConstantInt>(store->value());
    if (value_c == nullptr) return false;
    Type* elem = store->value()->type();
    // The byte pattern must be uniform (zero, or any value for i8).
    std::uint8_t byte = 0;
    if (elem->byteSize() == 1) {
      byte = static_cast<std::uint8_t>(value_c->zextValue());
    } else {
      const std::uint64_t raw = value_c->zextValue();
      byte = static_cast<std::uint8_t>(raw & 0xff);
      for (std::uint64_t b = 0; b < elem->byteSize(); ++b) {
        if (((raw >> (8 * b)) & 0xff) != byte) return false;
      }
    }
    // gep must be buf[0][iv] (or buf[iv]) with an invariant base.
    if (!isLoopInvariant(loop, gep->base())) return false;
    Value* idx = nullptr;
    if (gep->numIndices() == 1) {
      idx = gep->index(0);
      if (gep->sourceElement() != elem) return false;
    } else if (gep->numIndices() == 2) {
      auto* zero = dynCast<ConstantInt>(gep->index(0));
      if (zero == nullptr || !zero->isZero()) return false;
      idx = gep->index(1);
      if (!gep->sourceElement()->isArray() ||
          gep->sourceElement()->arrayElement() != elem) {
        return false;
      }
    } else {
      return false;
    }
    if (idx != cl.iv) return false;
    // Exit phis must carry loop-invariant values (validated before any
    // mutation below).
    for (PhiInst* phi : cl.exit_block->phis()) {
      for (std::size_t i = 0; i < phi->numIncoming(); ++i) {
        if (loop.contains(phi->incomingBlock(i)) &&
            !isLoopInvariant(loop, phi->incomingValue(i))) {
          return false;
        }
      }
    }

    // Build the replacement in the preheader.
    Module& m = *f.parent();
    BasicBlock* ph = cl.preheader;
    Instruction* ph_term = ph->terminator();
    IRBuilder b(&m);
    // Base pointer of element type.
    Value* base_elem_ptr = nullptr;
    if (gep->numIndices() == 1) {
      base_elem_ptr = gep->base();
    } else {
      auto first = std::make_unique<GepInst>(
          m.types().ptrTo(elem), gep->sourceElement(), gep->base(),
          std::vector<Value*>{m.i64Const(0), m.i64Const(0)},
          f.nextValueName());
      base_elem_ptr = ph->insertBefore(ph_term, std::move(first));
    }
    // Count in elements; the IV may be narrower than i64.
    Value* count = m.i64Const(trips);
    Function* memset_fn = m.getMemsetFor(elem);
    auto call = std::make_unique<CallInst>(
        m.types().voidTy(), memset_fn,
        std::vector<Value*>{base_elem_ptr,
                            m.constantInt(m.types().i8(),
                                          static_cast<std::int64_t>(byte)),
                            count},
        "");
    ph->insertBefore(ph_term, std::move(call));

    // Delete the loop: preheader jumps straight to the exit.
    BasicBlock* exit = cl.exit_block;
    for (PhiInst* phi : exit->phis()) {
      for (std::size_t i = phi->numIncoming(); i-- > 0;) {
        if (loop.contains(phi->incomingBlock(i))) {
          Value* v = phi->incomingValue(i);
          phi->removeIncoming(phi->incomingBlock(i));
          phi->addIncoming(v, ph);
        }
      }
    }
    ph_term->eraseFromParent();
    b.setInsertPoint(ph);
    b.br(exit);
    removeUnreachableBlocks(f);
    deleteDeadInstructions(f);
    return true;
  }
};

class LoopLoadElimPass : public FunctionPass {
 public:
  std::string_view name() const override { return "loop-load-elim"; }

 protected:
  bool runOnFunction(Function& f) override {
    bool changed = false;
    AnalysisManager local_am;
    const LoopInfo& li = AnalysisManager::currentOr(local_am).loopInfo(f);
    Module& m = *f.parent();
    for (Loop* loop : li.loopsInnermostFirst()) {
      if (loop->blocks().size() != 1) continue;
      BasicBlock* body = loop->header();
      BasicBlock* ph = loop->preheader();
      if (ph == nullptr || loop->singleLatch() != body) continue;
      // Find a load-before-store pair on the same invariant pointer with no
      // other memory writers in the block.
      LoadInst* load = nullptr;
      StoreInst* store = nullptr;
      bool other_writes = false;
      for (const auto& inst : body->insts()) {
        if (auto* ld = dynCast<LoadInst>(inst.get())) {
          if (load == nullptr && store == nullptr &&
              isLoopInvariant(*loop, ld->pointer())) {
            load = ld;
          }
          continue;
        }
        if (auto* st = dynCast<StoreInst>(inst.get())) {
          if (store == nullptr && load != nullptr &&
              st->pointer() == load->pointer()) {
            store = st;
          } else {
            other_writes = true;
          }
          continue;
        }
        if (inst->mayWriteMemory()) other_writes = true;
      }
      if (load == nullptr || store == nullptr || other_writes) continue;

      // Initial value read once in the preheader; thereafter the stored
      // value flows around the back edge.
      Instruction* ph_term = ph->terminator();
      auto init = std::make_unique<LoadInst>(load->type(), load->pointer(),
                                             f.nextValueName());
      Instruction* init_raw = ph->insertBefore(ph_term, std::move(init));
      auto phi = std::make_unique<PhiInst>(load->type(), f.nextValueName());
      auto* phi_raw = static_cast<PhiInst*>(body->pushFront(std::move(phi)));
      phi_raw->addIncoming(init_raw, ph);
      phi_raw->addIncoming(store->value(), body);
      replaceAndErase(load, phi_raw);
      changed = true;
      (void)m;
    }
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> createLoopDeletionPass() {
  return std::make_unique<LoopDeletionPass>();
}

std::unique_ptr<Pass> createIndVarSimplifyPass() {
  return std::make_unique<IndVarSimplifyPass>();
}

std::unique_ptr<Pass> createLoopIdiomPass() {
  return std::make_unique<LoopIdiomPass>();
}

std::unique_ptr<Pass> createLoopLoadElimPass() {
  return std::make_unique<LoopLoadElimPass>();
}

}  // namespace posetrl
