/// \file ipo.cpp
/// Interprocedural passes: -inline, -functionattrs / -rpo-functionattrs /
/// -attributor / -inferattrs / -forceattrs / -prune-eh (attribute
/// deduction), -called-value-propagation, -globalopt, -globaldce,
/// -deadargelim, -strip-dead-prototypes, -constmerge,
/// -elim-avail-extern / -barrier / -ee-instrument (structural no-ops in
/// this substrate; they exist so Oz sequences resolve every flag).

#include <map>
#include <set>
#include <vector>

#include "analysis/call_graph.h"
#include "analysis/cfg.h"
#include "ir/basic_block.h"
#include "ir/clone.h"
#include "ir/function.h"
#include "ir/global_variable.h"
#include "ir/instruction.h"
#include "ir/ir_builder.h"
#include "ir/module.h"
#include "passes/all_passes.h"
#include "passes/transform_utils.h"

namespace posetrl {
namespace {

// --------------------------------------------------------------------------
// Inliner
// --------------------------------------------------------------------------

class InlinerPass : public Pass {
 public:
  /// Oz-flavoured thresholds: tiny callees always; modest callees when the
  /// call is the only site of an internal function (inlining then deletes
  /// the body, a net size win). The -o3 variant inlines far more
  /// aggressively, trading size for call-overhead removal.
  InlinerPass(std::size_t tiny, std::size_t single_site, bool o3)
      : tiny_(tiny), single_site_(single_site), o3_(o3) {}

  std::string_view name() const override {
    return o3_ ? "inline-o3" : "inline";
  }

  bool run(Module& m) override {
    bool changed = false;
    CallGraph cg(m);
    for (Function* caller : cg.bottomUpOrder()) {
      if (caller->isDeclaration()) continue;
      // Budget caps runaway growth through (mutual) recursion cycles that
      // the direct self-recursion check below cannot see.
      int budget = 32;
      bool local = true;
      while (local && budget-- > 0) {
        local = false;
        CallInst* site = pickCallSite(*caller);
        if (site != nullptr) {
          inlineCall(site);
          changed = true;
          local = true;
        }
      }
    }
    if (changed) {
      // Inlining away the last call site leaves dead internal functions.
      runGlobalDCE(m);
    }
    return changed;
  }

  static bool runGlobalDCE(Module& m);

 private:
  static bool isSelfRecursive(Function& f) {
    for (const auto& bb : f.blocks()) {
      for (const auto& inst : bb->insts()) {
        if (auto* call = dynCast<CallInst>(inst.get())) {
          if (call->calledFunction() == &f) return true;
        }
      }
    }
    return false;
  }

  CallInst* pickCallSite(Function& caller) {
    for (const auto& bb : caller.blocks()) {
      for (const auto& inst : bb->insts()) {
        auto* call = dynCast<CallInst>(inst.get());
        if (call == nullptr) continue;
        Function* callee = call->calledFunction();
        if (callee == nullptr || callee->isDeclaration()) continue;
        if (callee == &caller) continue;
        if (callee->hasAttr(FnAttr::NoInline)) continue;
        // Inlining a self-recursive callee re-creates a call to it,
        // looping forever; LLVM's inliner refuses these too.
        if (isSelfRecursive(*callee)) continue;
        if (callee->hasAttr(FnAttr::AlwaysInline)) return call;
        const std::size_t size = callee->instructionCount();
        if (size <= tiny_) return call;
        if (callee->isInternal() && callee->numUses() == 1 &&
            size <= single_site_) {
          return call;
        }
      }
    }
    return nullptr;
  }

  void inlineCall(CallInst* call) {
    Function* callee = call->calledFunction();
    Function* caller = call->function();
    Module& m = *caller->parent();
    BasicBlock* bb = call->parent();

    // Split: bb keeps everything before the call; `cont` holds the call
    // and the rest.
    BasicBlock* cont = bb->splitAt(call, "inl.cont");

    // Clone the callee body, substituting arguments.
    ValueMap map;
    for (std::size_t i = 0; i < callee->numArgs(); ++i) {
      map[callee->arg(i)] = call->arg(i);
    }
    std::vector<BasicBlock*> body = cloneBlocksInto(caller, *callee, map);

    IRBuilder b(&m);
    b.setInsertPoint(bb);
    b.br(body.front());

    // Rewire cloned returns to `cont`, collecting return values.
    std::vector<std::pair<Value*, BasicBlock*>> returns;
    for (BasicBlock* nb : body) {
      auto* ret = dynCast<RetInst>(nb->terminator());
      if (ret == nullptr) continue;
      Value* rv = ret->hasValue() ? ret->value() : nullptr;
      ret->eraseFromParent();
      b.setInsertPoint(nb);
      b.br(cont);
      returns.emplace_back(rv, nb);
    }

    // Substitute the call result.
    Value* result = nullptr;
    if (!call->type()->isVoid()) {
      if (returns.size() == 1) {
        result = returns[0].first;
      } else if (returns.size() > 1) {
        auto phi = std::make_unique<PhiInst>(call->type(),
                                             caller->nextValueName());
        auto* phi_raw =
            static_cast<PhiInst*>(cont->pushFront(std::move(phi)));
        for (auto& [rv, rb] : returns) phi_raw->addIncoming(rv, rb);
        result = phi_raw;
      } else {
        result = m.undef(call->type());  // Callee never returns.
      }
    }
    if (result != nullptr && call->hasUses()) {
      call->replaceAllUsesWith(result);
    }
    call->eraseFromParent();
    removeUnreachableBlocks(*caller);
    foldTrivialPhis(*caller);
  }

  std::size_t tiny_;
  std::size_t single_site_;
  bool o3_;
};

// --------------------------------------------------------------------------
// Attribute deduction
// --------------------------------------------------------------------------

/// Base pointer of a chain of geps.
const Value* pointerRoot(const Value* ptr) {
  const Value* cur = ptr;
  while (const auto* gep = dynCast<GepInst>(cur)) cur = gep->base();
  return cur;
}

/// Deduction shared by functionattrs / rpo-functionattrs / attributor.
/// Marks ReadNone/ReadOnly only when the function is additionally loop-free
/// and trap-free, so the CSE/DCE client transformations stay semantics
/// preserving (removal or deduplication cannot change traps/termination).
bool deduceMemoryAttrs(Module& m) {
  bool changed = false;
  CallGraph cg(m);
  for (Function* f : cg.bottomUpOrder()) {
    if (f->isDeclaration()) continue;
    if (f->hasAttr(FnAttr::ReadNone)) continue;
    bool reads = false;
    bool writes = false;
    bool opaque = false;
    bool has_backedge = false;
    bool may_trap = false;
    std::set<const BasicBlock*> seen;
    for (const auto& bb : f->blocks()) {
      for (BasicBlock* s : bb->successors()) {
        if (seen.count(s) || s == bb.get()) has_backedge = true;
      }
      seen.insert(bb.get());
      for (const auto& inst : bb->insts()) {
        if (inst->mayTrap()) may_trap = true;
        if (inst->opcode() == Opcode::Unreachable) may_trap = true;
        switch (inst->opcode()) {
          case Opcode::Load:
            if (!isa<AllocaInst>(
                    pointerRoot(static_cast<LoadInst*>(inst.get())
                                    ->pointer()))) {
              reads = true;
            }
            break;
          case Opcode::Store:
            if (!isa<AllocaInst>(
                    pointerRoot(static_cast<StoreInst*>(inst.get())
                                    ->pointer()))) {
              writes = true;
            }
            // Storing a pointer anywhere may leak a local's address.
            if (static_cast<StoreInst*>(inst.get())
                    ->value()
                    ->type()
                    ->isPointer()) {
              opaque = true;
            }
            break;
          case Opcode::Call: {
            Function* callee =
                static_cast<CallInst*>(inst.get())->calledFunction();
            if (callee == nullptr) {
              opaque = true;
            } else if (callee->hasAttr(FnAttr::ReadNone)) {
              // Nothing.
            } else if (callee->hasAttr(FnAttr::ReadOnly)) {
              reads = true;
            } else {
              opaque = true;
            }
            break;
          }
          default:
            break;
        }
      }
    }
    // The simple backedge scan above is ordering-dependent; double-check
    // with a real cycle test only when it claims loop-freedom.
    if (opaque || may_trap || has_backedge || writes) continue;
    if (!reads) {
      f->addAttr(FnAttr::ReadNone);
      changed = true;
    } else if (!f->hasAttr(FnAttr::ReadOnly)) {
      f->addAttr(FnAttr::ReadOnly);
      changed = true;
    }
  }
  return changed;
}

class FunctionAttrsPass : public Pass {
 public:
  std::string_view name() const override { return "functionattrs"; }
  // Attribute-only: the IR fingerprint ignores function attrs, so a full
  // preserve claim is honest even when attrs change.
  PreservedAnalyses preserved() const override {
    return PreservedAnalyses::all();
  }
  bool run(Module& m) override { return deduceMemoryAttrs(m); }
};

class RPOFunctionAttrsPass : public Pass {
 public:
  std::string_view name() const override { return "rpo-functionattrs"; }
  PreservedAnalyses preserved() const override {
    return PreservedAnalyses::all();
  }
  bool run(Module& m) override {
    // Two sweeps approximate the RPO-over-SCC refinement.
    bool changed = deduceMemoryAttrs(m);
    changed |= deduceMemoryAttrs(m);
    return changed;
  }
};

/// prune-eh analog: derives nounwind bottom-up. MiniIR has no exceptions,
/// so every defined function whose calls are all nounwind becomes nounwind.
class PruneEHPass : public Pass {
 public:
  std::string_view name() const override { return "prune-eh"; }
  PreservedAnalyses preserved() const override {
    return PreservedAnalyses::all();
  }
  bool run(Module& m) override {
    bool changed = false;
    CallGraph cg(m);
    for (Function* f : cg.bottomUpOrder()) {
      if (f->isDeclaration() || f->hasAttr(FnAttr::NoUnwind)) continue;
      bool all_nounwind = true;
      for (const auto& bb : f->blocks()) {
        for (const auto& inst : bb->insts()) {
          if (auto* call = dynCast<CallInst>(inst.get())) {
            Function* callee = call->calledFunction();
            if (callee == nullptr || !callee->hasAttr(FnAttr::NoUnwind)) {
              all_nounwind = false;
            }
          }
        }
      }
      if (all_nounwind) {
        f->addAttr(FnAttr::NoUnwind);
        changed = true;
      }
    }
    return changed;
  }
};

/// attributor analog: memory attrs plus dead-return elimination — internal
/// functions whose results no caller consumes are rewritten to return void.
class AttributorPass : public Pass {
 public:
  std::string_view name() const override { return "attributor"; }
  bool run(Module& m) override {
    bool changed = deduceMemoryAttrs(m);
    CallGraph cg(m);
    std::vector<Function*> victims;
    for (auto it = m.functionsBegin(); it != m.functionsEnd(); ++it) {
      Function* f = it->get();
      if (f->isDeclaration() || !f->isInternal()) continue;
      if (cg.addressTaken(f)) continue;
      if (f->returnType()->isVoid()) continue;
      bool any_result_used = false;
      bool only_direct_calls = true;
      for (Instruction* user : f->users()) {
        auto* call = dynCast<CallInst>(user);
        if (call == nullptr || call->callee() != f) {
          only_direct_calls = false;
          break;
        }
        if (call->hasUses()) any_result_used = true;
      }
      if (only_direct_calls && !any_result_used) victims.push_back(f);
    }
    for (Function* f : victims) {
      rewriteToVoid(*f, m);
      changed = true;
    }
    return changed;
  }

 private:
  static void rewriteToVoid(Function& f, Module& m) {
    // Rewrite returns.
    for (const auto& bb : f.blocks()) {
      if (auto* ret = dynCast<RetInst>(bb->terminator())) {
        if (ret->hasValue()) {
          BasicBlock* rb = ret->parent();
          ret->eraseFromParent();
          IRBuilder b(&m);
          b.setInsertPoint(rb);
          b.retVoid();
        }
      }
    }
    // Rewrite the type.
    std::vector<Type*> params;
    for (const auto& a : f.args()) params.push_back(a->type());
    f.setFunctionTypeUnchecked(
        m.types().funcType(m.types().voidTy(), params));
    // Rewrite call sites (results were unused).
    std::vector<Instruction*> users(f.users().begin(), f.users().end());
    for (Instruction* user : users) {
      auto* call = cast<CallInst>(static_cast<Value*>(user));
      std::vector<Value*> args;
      for (std::size_t i = 0; i < call->numArgs(); ++i) {
        args.push_back(call->arg(i));
      }
      auto replacement = std::make_unique<CallInst>(
          m.types().voidTy(), &f, std::move(args), "");
      call->parent()->insertBefore(call, std::move(replacement));
      call->eraseFromParent();
    }
    deleteDeadInstructions(f);
  }
};

/// inferattrs analog: (re)stamps attributes on known intrinsic
/// declarations — meaningful when IR came from the textual parser without
/// attribute annotations.
class InferAttrsPass : public Pass {
 public:
  std::string_view name() const override { return "inferattrs"; }
  PreservedAnalyses preserved() const override {
    return PreservedAnalyses::all();
  }
  bool run(Module& m) override {
    bool changed = false;
    for (auto it = m.functionsBegin(); it != m.functionsEnd(); ++it) {
      Function* f = it->get();
      if (!f->isDeclaration()) continue;
      const std::uint32_t before = f->rawAttrs();
      switch (f->intrinsicId()) {
        case IntrinsicId::Input:
        case IntrinsicId::Expect:
          f->addAttr(FnAttr::ReadNone);
          f->addAttr(FnAttr::NoUnwind);
          break;
        case IntrinsicId::Sink:
        case IntrinsicId::SinkF64:
        case IntrinsicId::Memset:
        case IntrinsicId::Assume:
        case IntrinsicId::AssumeAligned:
          f->addAttr(FnAttr::NoUnwind);
          break;
        case IntrinsicId::None:
          break;
      }
      changed |= f->rawAttrs() != before;
    }
    return changed;
  }
};

class ForceAttrsPass : public Pass {
 public:
  std::string_view name() const override { return "forceattrs"; }
  PreservedAnalyses preserved() const override {
    return PreservedAnalyses::all();
  }
  // Applies -force-attribute command-line overrides in LLVM; none here.
  bool run(Module&) override { return false; }
};

// --------------------------------------------------------------------------
// Global optimizations
// --------------------------------------------------------------------------

class CalledValuePropagationPass : public Pass {
 public:
  std::string_view name() const override {
    return "called-value-propagation";
  }
  bool run(Module& m) override {
    bool changed = false;
    for (const auto& g : m.globals()) {
      if (g->init().kind != GlobalInit::Kind::FuncPtr) continue;
      if (!g->isInternal()) continue;
      // The global must never be overwritten.
      bool stored = false;
      for (Instruction* user : g->users()) {
        if (auto* st = dynCast<StoreInst>(user)) {
          if (st->pointer() == g.get()) stored = true;
        }
      }
      if (stored && !g->isConst()) continue;
      Function* target = g->init().function;
      // Devirtualize calls through loads of this global.
      for (Instruction* user : g->users()) {
        auto* load = dynCast<LoadInst>(user);
        if (load == nullptr) continue;
        std::vector<Instruction*> load_users(load->users().begin(),
                                             load->users().end());
        for (Instruction* lu : load_users) {
          auto* call = dynCast<CallInst>(lu);
          if (call != nullptr && call->callee() == load) {
            call->setOperand(0, target);
            changed = true;
          }
        }
      }
    }
    return changed;
  }
};

class GlobalOptPass : public Pass {
 public:
  std::string_view name() const override { return "globalopt"; }
  bool run(Module& m) override {
    bool changed = false;
    std::vector<GlobalVariable*> to_erase;
    for (const auto& g : m.globals()) {
      if (!g->isInternal()) continue;
      if (!g->hasUses()) {
        to_erase.push_back(g.get());
        continue;
      }
      bool stored = false;
      for (Instruction* user : g->users()) {
        auto* st = dynCast<StoreInst>(user);
        if (st != nullptr && st->pointer() == g.get()) stored = true;
        // Escaping as data (stored elsewhere / passed to a call)?
        if (st != nullptr && st->value() == g.get()) stored = true;
        if (auto* call = dynCast<CallInst>(user)) {
          for (std::size_t i = 0; i < call->numArgs(); ++i) {
            if (call->arg(i) == g.get()) stored = true;
          }
        }
        if (isa<GepInst>(user) || isa<PhiInst>(user) ||
            isa<SelectInst>(user)) {
          stored = true;  // Conservative: address flows onward.
        }
      }
      if (stored) continue;
      // Never written: mark const and fold scalar loads.
      if (!g->isConst()) {
        g->setConst(true);
        changed = true;
      }
      Value* folded = nullptr;
      if (g->init().kind == GlobalInit::Kind::Int) {
        folded = m.constantInt(g->valueType(), g->init().int_value);
      } else if (g->init().kind == GlobalInit::Kind::Float) {
        folded = m.constantFloat(g->init().float_value);
      } else if (g->init().kind == GlobalInit::Kind::Zero &&
                 g->valueType()->isInteger()) {
        folded = m.constantInt(g->valueType(), 0);
      }
      if (folded != nullptr) {
        std::vector<Instruction*> users(g->users().begin(),
                                        g->users().end());
        for (Instruction* user : users) {
          if (auto* load = dynCast<LoadInst>(user)) {
            replaceAndErase(load, folded);
            changed = true;
          }
        }
        if (!g->hasUses()) to_erase.push_back(g.get());
      }
    }
    for (GlobalVariable* g : to_erase) {
      m.eraseGlobal(g);
      changed = true;
    }
    return changed;
  }
};

bool globalDceImpl(Module& m) {
  // Roots: externally visible functions and globals.
  std::set<Function*> live_fns;
  std::set<GlobalVariable*> live_globals;
  std::vector<Function*> work;
  for (auto it = m.functionsBegin(); it != m.functionsEnd(); ++it) {
    Function* f = it->get();
    if (!f->isInternal() && !f->isDeclaration()) {
      live_fns.insert(f);
      work.push_back(f);
    }
  }
  for (const auto& g : m.globals()) {
    if (!g->isInternal()) live_globals.insert(g.get());
  }
  // Propagate: scan live bodies for references.
  std::set<Function*> scanned;
  bool global_changed = true;
  while (global_changed) {
    global_changed = false;
    while (!work.empty()) {
      Function* f = work.back();
      work.pop_back();
      if (!scanned.insert(f).second) continue;
      for (const auto& bb : f->blocks()) {
        for (const auto& inst : bb->insts()) {
          for (Value* op : inst->operands()) {
            if (auto* fn = dynCast<Function>(op)) {
              if (live_fns.insert(fn).second) work.push_back(fn);
            } else if (auto* g = dynCast<GlobalVariable>(op)) {
              live_globals.insert(g);
            }
          }
        }
      }
    }
    // Live globals' initializers keep functions alive.
    for (GlobalVariable* g : live_globals) {
      if (g->init().kind == GlobalInit::Kind::FuncPtr) {
        Function* fn = g->init().function;
        if (live_fns.insert(fn).second) {
          work.push_back(fn);
          global_changed = true;
        }
      }
    }
    if (!work.empty()) global_changed = true;
  }

  std::vector<Function*> dead_fns;
  for (auto it = m.functionsBegin(); it != m.functionsEnd(); ++it) {
    Function* f = it->get();
    if (f->isDeclaration()) continue;
    if (!live_fns.count(f)) dead_fns.push_back(f);
  }
  std::vector<GlobalVariable*> dead_globals;
  for (const auto& g : m.globals()) {
    if (!live_globals.count(g.get())) dead_globals.push_back(g.get());
  }
  if (dead_fns.empty() && dead_globals.empty()) return false;
  // Drop bodies first so mutual references disappear.
  for (Function* f : dead_fns) {
    for (const auto& bb : f->blocks()) {
      for (const auto& inst : bb->insts()) inst->dropAllOperands();
    }
  }
  for (GlobalVariable* g : dead_globals) {
    // Dead-global initializers may pin functions: clear them.
    g->setInit(GlobalInit::zero());
    if (!g->hasUses()) m.eraseGlobal(g);
  }
  for (Function* f : dead_fns) {
    if (!f->hasUses()) m.eraseFunction(f);
  }
  return true;
}

class GlobalDCEPass : public Pass {
 public:
  std::string_view name() const override { return "globaldce"; }
  bool run(Module& m) override { return globalDceImpl(m); }
};

bool InlinerPass::runGlobalDCE(Module& m) { return globalDceImpl(m); }

class DeadArgElimPass : public Pass {
 public:
  std::string_view name() const override { return "deadargelim"; }
  bool run(Module& m) override {
    bool changed = false;
    CallGraph cg(m);
    for (auto it = m.functionsBegin(); it != m.functionsEnd(); ++it) {
      Function* f = it->get();
      if (f->isDeclaration() || !f->isInternal()) continue;
      if (cg.addressTaken(f)) continue;
      // All users must be direct calls.
      bool ok = true;
      for (Instruction* user : f->users()) {
        auto* call = dynCast<CallInst>(user);
        if (call == nullptr || call->callee() != f) ok = false;
      }
      if (!ok) continue;
      for (std::size_t i = f->numArgs(); i-- > 0;) {
        if (f->arg(i)->hasUses()) continue;
        std::vector<Instruction*> users(f->users().begin(),
                                        f->users().end());
        std::set<Instruction*> done;
        for (Instruction* user : users) {
          if (!done.insert(user).second) continue;
          static_cast<CallInst*>(user)->removeArg(i);
        }
        f->removeArg(i);
        changed = true;
      }
    }
    return changed;
  }
};

class StripDeadPrototypesPass : public Pass {
 public:
  std::string_view name() const override { return "strip-dead-prototypes"; }
  bool run(Module& m) override {
    std::vector<Function*> dead;
    for (auto it = m.functionsBegin(); it != m.functionsEnd(); ++it) {
      Function* f = it->get();
      if (f->isDeclaration() && !f->hasUses()) {
        bool referenced = false;
        for (const auto& g : m.globals()) {
          if (g->init().kind == GlobalInit::Kind::FuncPtr &&
              g->init().function == f) {
            referenced = true;
          }
        }
        if (!referenced) dead.push_back(f);
      }
    }
    for (Function* f : dead) m.eraseFunction(f);
    return !dead.empty();
  }
};

class ConstMergePass : public Pass {
 public:
  std::string_view name() const override { return "constmerge"; }
  bool run(Module& m) override {
    bool changed = false;
    std::vector<GlobalVariable*> globals;
    for (const auto& g : m.globals()) {
      if (g->isInternal() && g->isConst()) globals.push_back(g.get());
    }
    for (std::size_t i = 0; i < globals.size(); ++i) {
      if (globals[i] == nullptr) continue;
      for (std::size_t j = i + 1; j < globals.size(); ++j) {
        if (globals[j] == nullptr) continue;
        if (globals[i]->valueType() == globals[j]->valueType() &&
            globals[i]->init() == globals[j]->init()) {
          globals[j]->replaceAllUsesWith(globals[i]);
          m.eraseGlobal(globals[j]);
          globals[j] = nullptr;
          changed = true;
        }
      }
    }
    return changed;
  }
};

class ElimAvailExternPass : public Pass {
 public:
  std::string_view name() const override { return "elim-avail-extern"; }
  PreservedAnalyses preserved() const override {
    return PreservedAnalyses::all();
  }
  // MiniIR has no available_externally linkage; structurally a no-op.
  bool run(Module&) override { return false; }
};

class BarrierPass : public Pass {
 public:
  std::string_view name() const override { return "barrier"; }
  PreservedAnalyses preserved() const override {
    return PreservedAnalyses::all();
  }
  // Pass-manager boundary marker in LLVM; no IR effect.
  bool run(Module&) override { return false; }
};

class EEInstrumentPass : public Pass {
 public:
  std::string_view name() const override { return "ee-instrument"; }
  PreservedAnalyses preserved() const override {
    return PreservedAnalyses::all();
  }
  // Inserts mcount-style instrumentation only under explicit flags in
  // LLVM-10; at -Oz it performs no IR change.
  bool run(Module&) override { return false; }
};

}  // namespace

std::unique_ptr<Pass> createInlinerPass() {
  return std::make_unique<InlinerPass>(12, 80, /*o3=*/false);
}
std::unique_ptr<Pass> createInlinerO3Pass() {
  return std::make_unique<InlinerPass>(64, 512, /*o3=*/true);
}
std::unique_ptr<Pass> createPruneEHPass() {
  return std::make_unique<PruneEHPass>();
}
std::unique_ptr<Pass> createFunctionAttrsPass() {
  return std::make_unique<FunctionAttrsPass>();
}
std::unique_ptr<Pass> createRPOFunctionAttrsPass() {
  return std::make_unique<RPOFunctionAttrsPass>();
}
std::unique_ptr<Pass> createAttributorPass() {
  return std::make_unique<AttributorPass>();
}
std::unique_ptr<Pass> createInferAttrsPass() {
  return std::make_unique<InferAttrsPass>();
}
std::unique_ptr<Pass> createForceAttrsPass() {
  return std::make_unique<ForceAttrsPass>();
}
std::unique_ptr<Pass> createCalledValuePropagationPass() {
  return std::make_unique<CalledValuePropagationPass>();
}
std::unique_ptr<Pass> createGlobalOptPass() {
  return std::make_unique<GlobalOptPass>();
}
std::unique_ptr<Pass> createGlobalDCEPass() {
  return std::make_unique<GlobalDCEPass>();
}
std::unique_ptr<Pass> createDeadArgElimPass() {
  return std::make_unique<DeadArgElimPass>();
}
std::unique_ptr<Pass> createStripDeadPrototypesPass() {
  return std::make_unique<StripDeadPrototypesPass>();
}
std::unique_ptr<Pass> createConstMergePass() {
  return std::make_unique<ConstMergePass>();
}
std::unique_ptr<Pass> createElimAvailExternPass() {
  return std::make_unique<ElimAvailExternPass>();
}
std::unique_ptr<Pass> createBarrierPass() {
  return std::make_unique<BarrierPass>();
}
std::unique_ptr<Pass> createEEInstrumentPass() {
  return std::make_unique<EEInstrumentPass>();
}

}  // namespace posetrl
