/// \file mem2reg.cpp
/// -mem2reg and -sroa analogs. mem2reg promotes scalar allocas whose address
/// never escapes into SSA values with classic IDF phi placement; sroa first
/// splits aggregate allocas into scalar pieces (via constant-index GEPs) and
/// then promotes the pieces.

#include <map>
#include <set>
#include <vector>

#include "analysis/analysis_manager.h"
#include "analysis/dominators.h"
#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/instruction.h"
#include "ir/ir_builder.h"
#include "ir/module.h"
#include "passes/all_passes.h"
#include "passes/transform_utils.h"

namespace posetrl {
namespace {

/// True when \p alloca is promotable: first-class payload and every use is
/// a load from it or a store *to* it (address never escapes).
bool isPromotable(AllocaInst* alloca) {
  if (!alloca->allocatedType()->isFirstClass()) return false;
  for (Instruction* user : alloca->users()) {
    if (auto* load = dynCast<LoadInst>(user)) {
      (void)load;
      continue;
    }
    if (auto* store = dynCast<StoreInst>(user)) {
      if (store->value() == alloca) return false;  // Address escapes.
      continue;
    }
    return false;
  }
  return true;
}

/// Promotes one alloca to SSA form. Assumes the function has no
/// unreachable blocks (the caller cleans those first).
void promoteOne(Function& f, AllocaInst* alloca, const DominatorTree& dt) {
  Module& m = *f.parent();
  Type* ty = alloca->allocatedType();

  // Blocks containing stores (definitions).
  std::set<BasicBlock*> def_blocks;
  for (Instruction* user : alloca->users()) {
    if (user->opcode() == Opcode::Store) def_blocks.insert(user->parent());
  }

  // Iterated dominance frontier -> phi placement.
  std::set<BasicBlock*> phi_blocks;
  std::vector<BasicBlock*> work(def_blocks.begin(), def_blocks.end());
  while (!work.empty()) {
    BasicBlock* b = work.back();
    work.pop_back();
    for (BasicBlock* frontier : dt.frontier(b)) {
      if (phi_blocks.insert(frontier).second) work.push_back(frontier);
    }
  }
  std::map<BasicBlock*, PhiInst*> phis;
  for (BasicBlock* b : phi_blocks) {
    auto phi = std::make_unique<PhiInst>(ty, f.nextValueName());
    phis[b] = static_cast<PhiInst*>(b->pushFront(std::move(phi)));
  }

  // Renaming: DFS over the dominator tree carrying the current value.
  struct Frame {
    BasicBlock* block;
    Value* incoming;
  };
  std::vector<Frame> stack{{f.entry(), nullptr}};
  std::set<BasicBlock*> visited;
  while (!stack.empty()) {
    auto [block, cur] = stack.back();
    stack.pop_back();
    if (!visited.insert(block).second) continue;

    if (auto it = phis.find(block); it != phis.end()) cur = it->second;

    std::vector<Instruction*> insts;
    for (const auto& inst : block->insts()) insts.push_back(inst.get());
    for (Instruction* inst : insts) {
      if (auto* load = dynCast<LoadInst>(inst)) {
        if (load->pointer() == alloca) {
          Value* v = cur != nullptr ? cur : m.undef(ty);
          replaceAndErase(load, v);
        }
      } else if (auto* store = dynCast<StoreInst>(inst)) {
        if (store->pointer() == alloca) {
          cur = store->value();
          store->eraseFromParent();
        }
      }
    }

    // Feed successors' phis; then recurse into dominator children.
    std::set<BasicBlock*> fed;
    for (BasicBlock* succ : block->successors()) {
      if (!fed.insert(succ).second) continue;
      auto it = phis.find(succ);
      if (it != phis.end()) {
        it->second->addIncoming(cur != nullptr ? cur : m.undef(ty), block);
      }
    }
    for (BasicBlock* child : dt.children(block)) {
      stack.push_back({child, cur});
    }
  }

  POSETRL_CHECK(!alloca->hasUses(), "promoted alloca still has uses");
  alloca->eraseFromParent();
}

/// Shared engine: promotes every promotable alloca in \p f.
bool promoteAllocas(Function& f) {
  bool changed = removeUnreachableBlocks(f);
  std::vector<AllocaInst*> promotable;
  for (const auto& bb : f.blocks()) {
    for (const auto& inst : bb->insts()) {
      if (auto* a = dynCast<AllocaInst>(inst.get())) {
        if (isPromotable(a)) promotable.push_back(a);
      }
    }
  }
  if (promotable.empty()) return changed;
  AnalysisManager local_am;
  const DominatorTree& dt = AnalysisManager::currentOr(local_am).dominators(f);
  for (AllocaInst* a : promotable) promoteOne(f, a, dt);
  foldTrivialPhis(f);
  deleteDeadInstructions(f);
  return true;
}

class Mem2RegPass : public FunctionPass {
 public:
  std::string_view name() const override { return "mem2reg"; }

 protected:
  bool runOnFunction(Function& f) override { return promoteAllocas(f); }
};

/// Leaf scalar pieces of an aggregate type.
void collectLeaves(Type* t, std::uint64_t offset,
                   std::vector<std::pair<std::uint64_t, Type*>>& out) {
  if (t->isFirstClass()) {
    out.emplace_back(offset, t);
    return;
  }
  if (t->isArray()) {
    Type* e = t->arrayElement();
    for (std::uint64_t i = 0; i < t->arrayCount(); ++i) {
      collectLeaves(e, offset + i * e->byteSize(), out);
    }
    return;
  }
  if (t->isStruct()) {
    const auto& fields = t->structFields();
    for (std::size_t i = 0; i < fields.size(); ++i) {
      collectLeaves(fields[i], offset + t->structFieldOffset(i), out);
    }
  }
}

/// Byte offset addressed by an all-constant-index gep, or -1 when the first
/// index is non-zero / indices don't resolve to a first-class leaf.
std::int64_t constantGepOffset(GepInst* gep) {
  auto* first = dynCast<ConstantInt>(gep->index(0));
  if (first == nullptr || !first->isZero()) return -1;
  std::uint64_t offset = 0;
  Type* cur = gep->sourceElement();
  for (std::size_t i = 1; i < gep->numIndices(); ++i) {
    auto* c = dynCast<ConstantInt>(gep->index(i));
    if (c == nullptr || c->value() < 0) return -1;
    if (cur->isArray()) {
      cur = cur->arrayElement();
      offset += static_cast<std::uint64_t>(c->value()) * cur->byteSize();
    } else if (cur->isStruct()) {
      const auto idx = static_cast<std::size_t>(c->value());
      if (idx >= cur->structFields().size()) return -1;
      offset += cur->structFieldOffset(idx);
      cur = cur->structFields()[idx];
    } else {
      return -1;
    }
  }
  if (!cur->isFirstClass()) return -1;
  return static_cast<std::int64_t>(offset);
}

/// Splits one aggregate alloca into scalar allocas; true on success.
bool splitAggregateAlloca(Function& f, AllocaInst* alloca) {
  Type* agg = alloca->allocatedType();
  std::vector<std::pair<std::uint64_t, Type*>> leaves;
  collectLeaves(agg, 0, leaves);
  if (leaves.empty() || leaves.size() > 64) return false;

  // Every user must be a constant-offset gep whose users are loads/stores
  // of the leaf exactly at that offset.
  struct Rewrite {
    GepInst* gep;
    std::size_t leaf;
  };
  std::vector<Rewrite> rewrites;
  for (Instruction* user : alloca->users()) {
    auto* gep = dynCast<GepInst>(user);
    if (gep == nullptr || gep->base() != alloca) return false;
    const std::int64_t off = constantGepOffset(gep);
    if (off < 0) return false;
    std::size_t leaf = leaves.size();
    for (std::size_t i = 0; i < leaves.size(); ++i) {
      if (leaves[i].first == static_cast<std::uint64_t>(off) &&
          gep->type()->pointee() == leaves[i].second) {
        leaf = i;
        break;
      }
    }
    if (leaf == leaves.size()) return false;
    for (Instruction* gu : gep->users()) {
      if (auto* st = dynCast<StoreInst>(gu)) {
        if (st->value() == gep) return false;
      } else if (!isa<LoadInst>(gu)) {
        return false;
      }
    }
    rewrites.push_back({gep, leaf});
  }

  // Materialize the scalar allocas next to the original.
  Module& m = *f.parent();
  std::vector<AllocaInst*> pieces(leaves.size(), nullptr);
  for (const Rewrite& rw : rewrites) {
    if (pieces[rw.leaf] == nullptr) {
      auto piece = std::make_unique<AllocaInst>(
          m.types().ptrTo(leaves[rw.leaf].second), leaves[rw.leaf].second,
          f.nextValueName());
      pieces[rw.leaf] = static_cast<AllocaInst*>(
          alloca->parent()->insertBefore(alloca, std::move(piece)));
    }
  }
  for (const Rewrite& rw : rewrites) {
    replaceAndErase(rw.gep, pieces[rw.leaf]);
  }
  POSETRL_CHECK(!alloca->hasUses(), "split alloca still has uses");
  alloca->eraseFromParent();
  return true;
}

class SROAPass : public FunctionPass {
 public:
  std::string_view name() const override { return "sroa"; }

 protected:
  bool runOnFunction(Function& f) override {
    bool changed = false;
    std::vector<AllocaInst*> aggregates;
    for (const auto& bb : f.blocks()) {
      for (const auto& inst : bb->insts()) {
        if (auto* a = dynCast<AllocaInst>(inst.get())) {
          if (a->allocatedType()->isAggregate()) aggregates.push_back(a);
        }
      }
    }
    for (AllocaInst* a : aggregates) changed |= splitAggregateAlloca(f, a);
    // LLVM's SROA also performs promotion of the (new and old) scalars.
    changed |= promoteAllocas(f);
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> createMem2RegPass() {
  return std::make_unique<Mem2RegPass>();
}

std::unique_ptr<Pass> createSROAPass() { return std::make_unique<SROAPass>(); }

}  // namespace posetrl
