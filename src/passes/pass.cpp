#include "passes/pass.h"

#include <functional>
#include <map>

#include "ir/function.h"
#include "ir/module.h"
#include "ir/verifier.h"
#include "lint/instrumentation.h"
#include "passes/all_passes.h"
#include "support/error.h"
#include "support/fuel.h"
#include "support/string_utils.h"

namespace posetrl {

bool FunctionPass::run(Module& module) {
  bool changed = false;
  for (auto it = module.functionsBegin(); it != module.functionsEnd(); ++it) {
    Function& f = **it;
    if (f.isDeclaration()) continue;
    // Cooperative budget hook: a no-op outside the fault sandbox, lets the
    // sandbox interrupt runaway pipelines between functions.
    FuelScope::consume();
    changed |= runOnFunction(f);
  }
  return changed;
}

namespace {

using Factory = std::function<std::unique_ptr<Pass>()>;

std::map<std::string, Factory, std::less<>>& factoryTable() {
  static std::map<std::string, Factory, std::less<>> table = {
      {"simplifycfg", createSimplifyCfgPass},
      {"instsimplify", createInstSimplifyPass},
      {"instcombine", createInstCombinePass},
      {"reassociate", createReassociatePass},
      {"speculative-execution", createSpeculativeExecutionPass},
      {"jump-threading", createJumpThreadingPass},
      {"correlated-propagation", createCorrelatedPropagationPass},
      {"tailcallelim", createTailCallElimPass},
      {"float2int", createFloat2IntPass},
      {"div-rem-pairs", createDivRemPairsPass},
      {"lower-expect", createLowerExpectPass},
      {"lower-constant-intrinsics", createLowerConstantIntrinsicsPass},
      {"alignment-from-assumptions", createAlignmentFromAssumptionsPass},
      {"mem2reg", createMem2RegPass},
      {"sroa", createSROAPass},
      {"early-cse", createEarlyCSEPass},
      {"early-cse-memssa", createEarlyCSEMemSSAPass},
      {"gvn", createGVNPass},
      {"dse", createDSEPass},
      {"memcpyopt", createMemCpyOptPass},
      {"mldst-motion", createMLSMPass},
      {"dce", createDCEPass},
      {"adce", createADCEPass},
      {"bdce", createBDCEPass},
      {"sccp", createSCCPPass},
      {"ipsccp", createIPSCCPPass},
      {"loop-simplify", createLoopSimplifyPass},
      {"lcssa", createLCSSAPass},
      {"licm", createLICMPass},
      {"loop-rotate", createLoopRotatePass},
      {"loop-unswitch", createLoopUnswitchPass},
      {"loop-deletion", createLoopDeletionPass},
      {"loop-unroll", createLoopUnrollPass},
      {"loop-unroll-o3", createLoopUnrollO3Pass},
      {"loop-unswitch-o3", createLoopUnswitchO3Pass},
      {"inline-o3", createInlinerO3Pass},
      {"indvars", createIndVarSimplifyPass},
      {"loop-idiom", createLoopIdiomPass},
      {"loop-distribute", createLoopDistributePass},
      {"loop-vectorize", createLoopVectorizePass},
      {"loop-load-elim", createLoopLoadElimPass},
      {"loop-sink", createLoopSinkPass},
      {"inline", createInlinerPass},
      {"prune-eh", createPruneEHPass},
      {"functionattrs", createFunctionAttrsPass},
      {"rpo-functionattrs", createRPOFunctionAttrsPass},
      {"attributor", createAttributorPass},
      {"inferattrs", createInferAttrsPass},
      {"forceattrs", createForceAttrsPass},
      {"called-value-propagation", createCalledValuePropagationPass},
      {"globalopt", createGlobalOptPass},
      {"globaldce", createGlobalDCEPass},
      {"deadargelim", createDeadArgElimPass},
      {"strip-dead-prototypes", createStripDeadPrototypesPass},
      {"constmerge", createConstMergePass},
      {"elim-avail-extern", createElimAvailExternPass},
      {"barrier", createBarrierPass},
      {"ee-instrument", createEEInstrumentPass},
  };
  return table;
}

/// Alternate spellings seen in the paper's tables.
std::string canonicalName(std::string_view name) {
  while (!name.empty() && name.front() == '-') name.remove_prefix(1);
  std::string n(name);
  if (n == "alignmentfromassumptions") return "alignment-from-assumptions";
  if (n == "early-cse-memssa" || n == "early-cse-mem-ssa") return n == "early-cse-mem-ssa" ? "early-cse-memssa" : n;
  if (n == "licm") return "licm";
  return n;
}

}  // namespace

std::unique_ptr<Pass> createPass(std::string_view name) {
  const std::string canon = canonicalName(name);
  auto it = factoryTable().find(canon);
  if (it == factoryTable().end()) return nullptr;
  return it->second();
}

std::vector<std::string> allPassNames() {
  std::vector<std::string> names;
  for (const auto& [name, factory] : factoryTable()) names.push_back(name);
  return names;
}

void registerPass(const std::string& name,
                  std::function<std::unique_ptr<Pass>()> factory) {
  POSETRL_CHECK(!name.empty(), "registerPass needs a name");
  factoryTable()[name] = std::move(factory);
}

std::vector<std::string> parsePassSequence(std::string_view sequence,
                                           bool strict) {
  std::vector<std::string> out;
  for (const std::string& token : splitString(sequence, ' ')) {
    const std::string name = canonicalName(trimString(token));
    if (name.empty()) continue;
    if (factoryTable().count(name) == 0) {
      POSETRL_CHECK(!strict, "unknown pass in sequence: ", name);
      continue;
    }
    out.push_back(name);
  }
  return out;
}

bool runPassSequence(Module& module,
                     const std::vector<std::string>& pass_names,
                     bool verify_each) {
  ArenaScope arena_scope(module.arena());
  bool changed = false;
  // Conservative content-stamp bump: this path has no contract checker to
  // catch a pass lying about `changed`, so any non-empty sequence may have
  // mutated the module.
  if (!pass_names.empty()) module.bumpContentStamp();
  for (const std::string& name : pass_names) {
    std::unique_ptr<Pass> pass = createPass(name);
    POSETRL_CHECK(pass != nullptr, "unknown pass: ", name);
    changed |= pass->run(module);
    if (verify_each) {
      const VerifyResult r = verifyModule(module);
      POSETRL_CHECK(r.ok(), "IR broken after pass -", name, ":\n",
                    r.message());
    }
  }
  return changed;
}

bool runPassSequence(Module& module,
                     const std::vector<std::string>& pass_names,
                     PassInstrumentation& instr) {
  std::vector<std::unique_ptr<Pass>> owned;
  std::vector<Pass*> passes;
  owned.reserve(pass_names.size());
  for (const std::string& name : pass_names) {
    std::unique_ptr<Pass> pass = createPass(name);
    POSETRL_CHECK(pass != nullptr, "unknown pass: ", name);
    passes.push_back(pass.get());
    owned.push_back(std::move(pass));
  }
  return runPasses(module, passes, &instr);
}

bool runPasses(Module& module, const std::vector<Pass*>& passes,
               PassInstrumentation* instr) {
  ArenaScope arena_scope(module.arena());
  if (!passes.empty()) module.bumpContentStamp();
  if (instr != nullptr) instr->beginSequence(module);
  bool changed = false;
  for (Pass* pass : passes) {
    POSETRL_CHECK(pass != nullptr, "null pass in runPasses");
    if (instr != nullptr) instr->beforePass(*pass, module);
    const bool pass_changed = pass->run(module);
    changed |= pass_changed;
    if (instr != nullptr) instr->afterPass(*pass, module, pass_changed);
  }
  return changed;
}

}  // namespace posetrl
