/// \file loop_canon.cpp
/// Loop canonicalization: -loop-simplify (preheaders, single latches,
/// dedicated exits), -lcssa (loop-closed SSA phis at exits), and
/// -loop-rotate (while -> do-while with a guard in the old preheader).

#include <map>
#include <set>
#include <vector>

#include "analysis/analysis_manager.h"
#include "analysis/dominators.h"
#include "analysis/loop_info.h"
#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/instruction.h"
#include "ir/ir_builder.h"
#include "ir/module.h"
#include "passes/all_passes.h"
#include "passes/loop_utils.h"
#include "passes/transform_utils.h"

namespace posetrl {
namespace {

/// Reroutes the \p preds edges into \p target through a fresh block, moving
/// the matching phi entries of \p target into new phis in that block.
/// Shared machinery for preheader insertion and latch unification.
BasicBlock* funnelEdges(BasicBlock* target,
                        const std::vector<BasicBlock*>& preds,
                        const std::string& name) {
  Function* f = target->parent();
  Module* m = f->parent();
  BasicBlock* funnel = f->addBlock(name);
  IRBuilder b(m);
  b.setInsertPoint(funnel);
  b.br(target);

  for (PhiInst* phi : target->phis()) {
    if (preds.size() == 1) {
      // Just retarget the incoming block.
      const std::size_t idx = phi->indexOfBlock(preds[0]);
      POSETRL_CHECK(idx != static_cast<std::size_t>(-1),
                    "phi missing funneled pred");
      phi->setOperand(2 * idx + 1, funnel);
      continue;
    }
    auto merged = std::make_unique<PhiInst>(phi->type(), f->nextValueName());
    auto* merged_raw = static_cast<PhiInst*>(
        funnel->pushFront(std::move(merged)));
    for (BasicBlock* p : preds) {
      const std::size_t idx = phi->indexOfBlock(p);
      POSETRL_CHECK(idx != static_cast<std::size_t>(-1),
                    "phi missing funneled pred");
      merged_raw->addIncoming(phi->incomingValue(idx), p);
      phi->removeIncoming(p);
    }
    phi->addIncoming(merged_raw, funnel);
  }
  for (BasicBlock* p : preds) {
    Instruction* term = p->terminator();
    for (std::size_t i = 0; i < term->numSuccessors(); ++i) {
      if (term->successor(i) == target) term->setSuccessor(i, funnel);
    }
  }
  return funnel;
}

class LoopSimplifyPass : public FunctionPass {
 public:
  std::string_view name() const override { return "loop-simplify"; }

 protected:
  bool runOnFunction(Function& f) override {
    bool changed = removeUnreachableBlocks(f);
    AnalysisManager local_am;
    AnalysisManager& am = AnalysisManager::currentOr(local_am);
    // Loop structures change as we edit; re-query until stable (the manager
    // rebuilds automatically once the function hash moves).
    for (int round = 0; round < 8; ++round) {
      const LoopInfo& li = am.loopInfo(f);
      bool local = false;
      for (Loop* loop : li.loopsInnermostFirst()) {
        // 1. Preheader.
        if (loop->preheader() == nullptr) {
          const auto outside = loop->outsidePredecessors();
          if (!outside.empty()) {
            funnelEdges(loop->header(), outside, "preheader");
            local = true;
            break;  // Analyses stale.
          }
        }
        // 2. Single latch.
        if (loop->singleLatch() == nullptr) {
          const auto latches = loop->latches();
          if (latches.size() > 1) {
            funnelEdges(loop->header(), latches, "latch");
            local = true;
            break;
          }
        }
        // 3. Dedicated exits.
        bool split_any = false;
        for (BasicBlock* exit : loop->exitBlocks()) {
          bool outside_pred = false;
          for (BasicBlock* p : exit->predecessors()) {
            if (!loop->contains(p)) outside_pred = true;
          }
          if (!outside_pred) continue;
          for (BasicBlock* p : exit->predecessors()) {
            if (loop->contains(p)) {
              splitEdge(p, exit);
              split_any = true;
            }
          }
        }
        if (split_any) {
          local = true;
          break;
        }
      }
      changed |= local;
      if (!local) break;
    }
    return changed;
  }
};

class LCSSAPass : public FunctionPass {
 public:
  std::string_view name() const override { return "lcssa"; }

 protected:
  bool runOnFunction(Function& f) override {
    bool changed = false;
    AnalysisManager local_am;
    AnalysisManager& am = AnalysisManager::currentOr(local_am);
    const DominatorTree& dt = am.dominators(f);
    const LoopInfo& li = am.loopInfo(f);
    for (Loop* loop : li.loopsInnermostFirst()) {
      changed |= runOnLoop(*loop, dt, f);
    }
    return changed;
  }

 private:
  bool runOnLoop(Loop& loop, const DominatorTree& dt, Function& f) {
    bool changed = false;
    const auto exits = loop.exitBlocks();
    if (exits.empty()) return false;
    for (BasicBlock* bb : loop.blocks()) {
      std::vector<Instruction*> defs;
      for (const auto& inst : bb->insts()) {
        if (!inst->type()->isVoid()) defs.push_back(inst.get());
      }
      for (Instruction* def : defs) {
        // Uses outside the loop (for phis: the incoming block must be
        // outside).
        std::vector<Instruction*> outside_users;
        for (Instruction* user : def->users()) {
          if (auto* phi = dynCast<PhiInst>(user)) {
            bool outside = false;
            for (std::size_t i = 0; i < phi->numIncoming(); ++i) {
              if (phi->incomingValue(i) == def &&
                  !loop.contains(phi->incomingBlock(i))) {
                outside = true;
              }
            }
            if (outside) outside_users.push_back(user);
          } else if (!loop.contains(user->parent())) {
            outside_users.push_back(user);
          }
        }
        if (outside_users.empty()) continue;
        // Insert a closing phi at each exit the def dominates; rewrite the
        // uses that a single closing phi dominates.
        std::map<BasicBlock*, PhiInst*> closing;
        for (BasicBlock* exit : exits) {
          if (!dt.isReachable(exit)) continue;
          if (!dt.dominates(def->parent(), exit)) continue;
          if (!loop.hasDedicatedExits()) continue;
          auto phi = std::make_unique<PhiInst>(def->type(),
                                               f.nextValueName());
          auto* raw = static_cast<PhiInst*>(exit->pushFront(std::move(phi)));
          for (BasicBlock* p : exit->predecessors()) {
            raw->addIncoming(def, p);
          }
          closing[exit] = raw;
        }
        if (closing.empty()) continue;
        for (Instruction* user : outside_users) {
          PhiInst* replacement = nullptr;
          if (auto* uphi = dynCast<PhiInst>(user)) {
            // Use the closing phi that dominates the incoming edge.
            for (std::size_t i = 0; i < uphi->numIncoming(); ++i) {
              if (uphi->incomingValue(i) != def) continue;
              BasicBlock* in_bb = uphi->incomingBlock(i);
              for (auto& [exit, cphi] : closing) {
                if (cphi == uphi) continue;
                if (dt.dominates(exit, in_bb)) {
                  uphi->setIncomingValue(i, cphi);
                  changed = true;
                  break;
                }
              }
            }
            continue;
          }
          for (auto& [exit, cphi] : closing) {
            if (dt.dominates(exit, user->parent()) && cphi != user) {
              replacement = cphi;
              break;
            }
          }
          if (replacement != nullptr) {
            for (std::size_t i = 0; i < user->numOperands(); ++i) {
              if (user->operand(i) == def) user->setOperand(i, replacement);
            }
            changed = true;
          }
        }
        // Drop closing phis that ended up unused.
        for (auto& [exit, cphi] : closing) {
          if (!cphi->hasUses()) cphi->eraseFromParent();
        }
      }
    }
    return changed;
  }
};

class LoopRotatePass : public FunctionPass {
 public:
  std::string_view name() const override { return "loop-rotate"; }

 protected:
  bool runOnFunction(Function& f) override {
    bool changed = false;
    AnalysisManager local_am;
    AnalysisManager& am = AnalysisManager::currentOr(local_am);
    for (int round = 0; round < 4; ++round) {
      const LoopInfo& li = am.loopInfo(f);
      bool local = false;
      for (Loop* loop : li.loopsInnermostFirst()) {
        if (rotate(*loop, f)) {
          local = true;
          break;  // Analyses stale.
        }
      }
      changed |= local;
      if (!local) break;
    }
    return changed;
  }

 private:
  static constexpr std::size_t kMaxHeaderSize = 24;

  bool rotate(Loop& loop, Function& f) {
    BasicBlock* ph = loop.preheader();
    BasicBlock* header = loop.header();
    BasicBlock* latch = loop.singleLatch();
    if (ph == nullptr || latch == nullptr) return false;
    if (header == latch) return false;  // Already do-while shaped.
    auto* cbr = dynCast<CondBrInst>(header->terminator());
    if (cbr == nullptr) return false;
    const bool then_in = loop.contains(cbr->thenBlock());
    const bool else_in = loop.contains(cbr->elseBlock());
    if (then_in == else_in) return false;  // Header must be exiting.
    BasicBlock* body = then_in ? cbr->thenBlock() : cbr->elseBlock();
    BasicBlock* exit = then_in ? cbr->elseBlock() : cbr->thenBlock();
    if (body == header || exit == header || body == exit) return false;
    // Require the simple shape produced by loop-simplify: the body entry
    // and the exit are reached only from the header, and the header is the
    // only exiting block.
    if (body->singlePredecessor() != header) return false;
    if (exit->singlePredecessor() != header) return false;
    for (BasicBlock* bb : loop.blocks()) {
      if (bb == header) continue;
      for (BasicBlock* s : bb->successors()) {
        if (!loop.contains(s)) return false;
      }
    }
    if (header->size() > kMaxHeaderSize) return false;

    Module& m = *f.parent();

    std::vector<PhiInst*> header_phis = header->phis();
    // A latch-incoming value defined in the header itself (another phi or a
    // header-resident computation) would need shifted-by-one plumbing after
    // rotation (the phi's value at iteration k is the header computation of
    // iteration k-1, but the SSA name would refer to iteration k's); this
    // simplified rotation bails out on those.
    for (PhiInst* phi : header_phis) {
      Value* latch_in = phi->incomingForBlock(latch);
      if (auto* li = dynCast<Instruction>(latch_in)) {
        if (li->parent() == header) return false;
      }
    }

    // Map from header values to their first-iteration equivalents in ph.
    std::map<const Value*, Value*> first_iter;
    for (PhiInst* phi : header_phis) {
      first_iter[phi] = phi->incomingForBlock(ph);
    }
    // Clone non-phi, non-terminator instructions into ph (before its br).
    Instruction* ph_term = ph->terminator();
    std::vector<Instruction*> header_body;
    for (auto it = header->firstNonPhi(); it != header->end(); ++it) {
      if (!(*it)->isTerminator()) header_body.push_back(it->get());
    }
    for (Instruction* inst : header_body) {
      Instruction* clone = inst->clone();
      if (!clone->type()->isVoid()) clone->setName(f.nextValueName());
      ph->insertBefore(ph_term, std::unique_ptr<Instruction>(clone));
      for (std::size_t i = 0; i < clone->numOperands(); ++i) {
        auto it = first_iter.find(clone->operand(i));
        if (it != first_iter.end()) clone->setOperand(i, it->second);
      }
      first_iter[inst] = clone;
    }

    // Latch-side (iteration >= 2) values of header defs.
    std::map<const Value*, Value*> from_latch;
    for (PhiInst* phi : header_phis) {
      from_latch[phi] = phi->incomingForBlock(latch);
    }
    for (Instruction* inst : header_body) from_latch[inst] = inst;

    // Values needing merge phis in body/exit.
    std::vector<Value*> defs;
    for (PhiInst* phi : header_phis) defs.push_back(phi);
    for (Instruction* inst : header_body) {
      if (!inst->type()->isVoid()) defs.push_back(inst);
    }

    // Collect external uses before rewiring (snapshot).
    struct UseSite {
      Instruction* user;
      std::size_t index;
    };
    std::map<Value*, std::vector<UseSite>> body_uses;
    std::map<Value*, std::vector<UseSite>> exit_uses;
    for (Value* def : defs) {
      for (Instruction* user : def->users()) {
        if (user->parent() == header) continue;
        // Phis in body/exit with an incoming edge from the header are
        // patched directly below (their edge values must dominate the
        // header, not the phi's block).
        if (user->opcode() == Opcode::Phi &&
            (user->parent() == body || user->parent() == exit)) {
          continue;
        }
        for (std::size_t i = 0; i < user->numOperands(); ++i) {
          if (user->operand(i) != def) continue;
          const bool in_loop = loop.contains(user->parent());
          if (in_loop) {
            body_uses[def].push_back({user, i});
          } else {
            exit_uses[def].push_back({user, i});
          }
        }
      }
    }

    // Patch pre-existing phis in body/exit: the header edge now carries the
    // latch-side value, and a fresh edge from ph carries the
    // first-iteration value.
    const auto patch_phis = [&](BasicBlock* target) {
      for (PhiInst* phi : target->phis()) {
        const std::size_t idx = phi->indexOfBlock(header);
        if (idx == static_cast<std::size_t>(-1)) continue;
        Value* v = phi->incomingValue(idx);
        Value* v_first = first_iter.count(v) ? first_iter.at(v) : v;
        Value* v_latch = from_latch.count(v) ? from_latch.at(v) : v;
        phi->setIncomingValue(idx, v_latch);
        phi->addIncoming(v_first, ph);
      }
    };
    patch_phis(body);
    patch_phis(exit);

    // Rewire the CFG: ph now tests the first-iteration condition.
    Value* guard_cond = cbr->condition();
    auto git = first_iter.find(guard_cond);
    Value* ph_cond = git != first_iter.end() ? git->second : guard_cond;
    ph_term->eraseFromParent();
    {
      IRBuilder b(&m);
      b.setInsertPoint(ph);
      if (then_in) {
        b.condBr(ph_cond, body, exit);
      } else {
        b.condBr(ph_cond, exit, body);
      }
    }

    // Merge phis at body and exit for every header def with uses there.
    const auto make_merge = [&](BasicBlock* at, Value* def) -> PhiInst* {
      auto phi = std::make_unique<PhiInst>(def->type(), f.nextValueName());
      auto* raw = static_cast<PhiInst*>(at->pushFront(std::move(phi)));
      raw->addIncoming(first_iter.at(def), ph);
      raw->addIncoming(from_latch.count(def) ? from_latch.at(def) : def,
                       header);
      return raw;
    };
    for (Value* def : defs) {
      if (auto uit = body_uses.find(def); uit != body_uses.end()) {
        PhiInst* merge = make_merge(body, def);
        for (const UseSite& site : uit->second) {
          if (site.user == merge) continue;
          site.user->setOperand(site.index, merge);
        }
      }
      if (auto uit = exit_uses.find(def); uit != exit_uses.end()) {
        PhiInst* merge = make_merge(exit, def);
        for (const UseSite& site : uit->second) {
          if (site.user == merge) continue;
          site.user->setOperand(site.index, merge);
        }
      }
    }

    // Header phis now see a single predecessor (the latch): fold them to
    // their latch values.
    for (PhiInst* phi : header_phis) {
      Value* latch_value = phi->incomingForBlock(latch);
      phi->replaceAllUsesWith(latch_value);
      phi->eraseFromParent();
    }
    foldTrivialPhis(f);
    deleteDeadInstructions(f);
    return true;
  }
};

}  // namespace

std::unique_ptr<Pass> createLoopSimplifyPass() {
  return std::make_unique<LoopSimplifyPass>();
}

std::unique_ptr<Pass> createLCSSAPass() {
  return std::make_unique<LCSSAPass>();
}

std::unique_ptr<Pass> createLoopRotatePass() {
  return std::make_unique<LoopRotatePass>();
}

}  // namespace posetrl
