#include "passes/transform_utils.h"

#include <set>
#include <vector>

#include "analysis/cfg.h"
#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/instruction.h"
#include "ir/ir_builder.h"
#include "ir/module.h"
#include "support/error.h"

namespace posetrl {

bool deleteDeadInstructions(Function& f) {
  bool changed = false;
  bool local_change = true;
  while (local_change) {
    local_change = false;
    for (const auto& bb : f.blocks()) {
      // Collect first: erasing invalidates iteration.
      std::vector<Instruction*> dead;
      for (const auto& inst : bb->insts()) {
        if (!inst->hasUses() && inst->isRemovableIfUnused()) {
          dead.push_back(inst.get());
        }
      }
      for (Instruction* inst : dead) {
        inst->eraseFromParent();
        local_change = true;
        changed = true;
      }
    }
  }
  return changed;
}

void replaceAndErase(Instruction* inst, Value* replacement) {
  inst->replaceAllUsesWith(replacement);
  inst->eraseFromParent();
}

bool removeUnreachableBlocks(Function& f) {
  if (f.isDeclaration()) return false;
  std::set<BasicBlock*> reachable;
  for (BasicBlock* b : reachableBlocks(f)) reachable.insert(b);
  std::vector<BasicBlock*> dead;
  for (const auto& bb : f.blocks()) {
    if (!reachable.count(bb.get())) dead.push_back(bb.get());
  }
  if (dead.empty()) return false;
  // 1. Remove incoming phi edges from dead predecessors (terminators must
  //    still be intact here).
  for (BasicBlock* bb : dead) bb->removeFromSuccessorPhis();
  // 2. Drop all operand references held by dead code.
  for (BasicBlock* bb : dead) {
    for (const auto& inst : bb->insts()) inst->dropAllOperands();
  }
  // 3. Defensively detach any remaining uses (cannot occur in verified IR).
  Module* m = f.parent();
  for (BasicBlock* bb : dead) {
    for (const auto& inst : bb->insts()) {
      if (inst->hasUses()) {
        inst->replaceAllUsesWith(m->undef(inst->type()));
      }
    }
  }
  for (BasicBlock* bb : dead) f.eraseBlock(bb);
  return true;
}

namespace {

/// Evaluates an integer binary op over canonical constants; returns false
/// when the operation cannot be folded (division by zero / overflow).
bool foldIntBinary(Opcode op, std::int64_t a, std::int64_t b, unsigned bits,
                   std::int64_t& out) {
  const auto zext = [bits](std::int64_t v) {
    return bits == 64 ? static_cast<std::uint64_t>(v)
                      : static_cast<std::uint64_t>(v) & ((1ull << bits) - 1);
  };
  switch (op) {
    case Opcode::Add: out = a + b; return true;
    case Opcode::Sub: out = a - b; return true;
    case Opcode::Mul: out = a * b; return true;
    case Opcode::SDiv:
      if (b == 0 || (a == INT64_MIN && b == -1)) return false;
      out = a / b;
      return true;
    case Opcode::UDiv:
      if (b == 0) return false;
      out = static_cast<std::int64_t>(zext(a) / zext(b));
      return true;
    case Opcode::SRem:
      if (b == 0 || (a == INT64_MIN && b == -1)) return false;
      out = a % b;
      return true;
    case Opcode::URem:
      if (b == 0) return false;
      out = static_cast<std::int64_t>(zext(a) % zext(b));
      return true;
    case Opcode::Shl:
      out = static_cast<std::int64_t>(zext(a) << (zext(b) % bits));
      return true;
    case Opcode::LShr:
      out = static_cast<std::int64_t>(zext(a) >> (zext(b) % bits));
      return true;
    case Opcode::AShr:
      out = a >> (zext(b) % bits);
      return true;
    case Opcode::And: out = a & b; return true;
    case Opcode::Or: out = a | b; return true;
    case Opcode::Xor: out = a ^ b; return true;
    default: return false;
  }
}

Value* simplifyIntBinary(Instruction* inst, Module& m) {
  Value* lhs = inst->operand(0);
  Value* rhs = inst->operand(1);
  auto* cl = dynCast<ConstantInt>(lhs);
  auto* cr = dynCast<ConstantInt>(rhs);
  Type* t = inst->type();

  if (cl != nullptr && cr != nullptr) {
    std::int64_t out = 0;
    if (foldIntBinary(inst->opcode(), cl->value(), cr->value(), t->intBits(),
                      out)) {
      return m.constantInt(t, out);
    }
    return nullptr;
  }

  switch (inst->opcode()) {
    case Opcode::Add:
      if (cr != nullptr && cr->isZero()) return lhs;
      if (cl != nullptr && cl->isZero()) return rhs;
      break;
    case Opcode::Sub:
      if (cr != nullptr && cr->isZero()) return lhs;
      if (lhs == rhs) return m.constantInt(t, 0);
      break;
    case Opcode::Mul:
      if (cr != nullptr && cr->isOne()) return lhs;
      if (cl != nullptr && cl->isOne()) return rhs;
      if ((cr != nullptr && cr->isZero()) || (cl != nullptr && cl->isZero())) {
        return m.constantInt(t, 0);
      }
      break;
    case Opcode::SDiv:
    case Opcode::UDiv:
      if (cr != nullptr && cr->isOne()) return lhs;
      break;
    case Opcode::SRem:
    case Opcode::URem:
      if (cr != nullptr && cr->isOne()) return m.constantInt(t, 0);
      break;
    case Opcode::Shl:
    case Opcode::LShr:
    case Opcode::AShr:
      if (cr != nullptr && cr->isZero()) return lhs;
      if (cl != nullptr && cl->isZero()) return m.constantInt(t, 0);
      break;
    case Opcode::And:
      if (lhs == rhs) return lhs;
      if ((cr != nullptr && cr->isZero()) || (cl != nullptr && cl->isZero())) {
        return m.constantInt(t, 0);
      }
      if (cr != nullptr && cr->isAllOnes()) return lhs;
      if (cl != nullptr && cl->isAllOnes()) return rhs;
      break;
    case Opcode::Or:
      if (lhs == rhs) return lhs;
      if (cr != nullptr && cr->isZero()) return lhs;
      if (cl != nullptr && cl->isZero()) return rhs;
      if (cr != nullptr && cr->isAllOnes()) return rhs;
      if (cl != nullptr && cl->isAllOnes()) return lhs;
      break;
    case Opcode::Xor:
      if (lhs == rhs) return m.constantInt(t, 0);
      if (cr != nullptr && cr->isZero()) return lhs;
      if (cl != nullptr && cl->isZero()) return rhs;
      break;
    default:
      break;
  }
  return nullptr;
}

Value* simplifyFloatBinary(Instruction* inst, Module& m) {
  auto* cl = dynCast<ConstantFloat>(inst->operand(0));
  auto* cr = dynCast<ConstantFloat>(inst->operand(1));
  if (cl == nullptr || cr == nullptr) return nullptr;
  switch (inst->opcode()) {
    case Opcode::FAdd: return m.constantFloat(cl->value() + cr->value());
    case Opcode::FSub: return m.constantFloat(cl->value() - cr->value());
    case Opcode::FMul: return m.constantFloat(cl->value() * cr->value());
    case Opcode::FDiv: return m.constantFloat(cl->value() / cr->value());
    default: return nullptr;
  }
}

Value* simplifyCast(Instruction* inst, Module& m) {
  auto* c = dynCast<ConstantInt>(inst->operand(0));
  Type* to = inst->type();
  switch (inst->opcode()) {
    case Opcode::SExt:
    case Opcode::Trunc:
      if (c != nullptr) return m.constantInt(to, c->value());
      return nullptr;
    case Opcode::ZExt:
      if (c != nullptr) {
        return m.constantInt(to, static_cast<std::int64_t>(c->zextValue()));
      }
      return nullptr;
    case Opcode::SIToFP:
      if (c != nullptr) {
        return m.constantFloat(static_cast<double>(c->value()));
      }
      return nullptr;
    case Opcode::FPToSI: {
      auto* cf = dynCast<ConstantFloat>(inst->operand(0));
      if (cf != nullptr && cf->value() >= -9.2e18 && cf->value() <= 9.2e18) {
        return m.constantInt(to, static_cast<std::int64_t>(cf->value()));
      }
      return nullptr;
    }
    default:
      return nullptr;
  }
}

}  // namespace

Value* simplifyInstruction(Instruction* inst, Module& m) {
  if (inst->isIntBinaryOp()) return simplifyIntBinary(inst, m);
  if (inst->isFloatBinaryOp()) return simplifyFloatBinary(inst, m);
  if (inst->isCast()) return simplifyCast(inst, m);
  switch (inst->opcode()) {
    case Opcode::ICmp: {
      auto* cmp = static_cast<ICmpInst*>(inst);
      auto* cl = dynCast<ConstantInt>(cmp->lhs());
      auto* cr = dynCast<ConstantInt>(cmp->rhs());
      Type* ot = cmp->lhs()->type();
      if (cl != nullptr && cr != nullptr && ot->isInteger()) {
        return m.i1Const(ICmpInst::evaluate(cmp->pred(), cl->value(),
                                            cr->value(), ot->intBits()));
      }
      if (cmp->lhs() == cmp->rhs()) {
        switch (cmp->pred()) {
          case ICmpInst::Pred::EQ:
          case ICmpInst::Pred::SLE:
          case ICmpInst::Pred::SGE:
          case ICmpInst::Pred::ULE:
          case ICmpInst::Pred::UGE:
            return m.i1Const(true);
          default:
            return m.i1Const(false);
        }
      }
      return nullptr;
    }
    case Opcode::FCmp: {
      auto* cmp = static_cast<FCmpInst*>(inst);
      auto* cl = dynCast<ConstantFloat>(cmp->lhs());
      auto* cr = dynCast<ConstantFloat>(cmp->rhs());
      if (cl != nullptr && cr != nullptr) {
        return m.i1Const(
            FCmpInst::evaluate(cmp->pred(), cl->value(), cr->value()));
      }
      return nullptr;
    }
    case Opcode::Select: {
      auto* sel = static_cast<SelectInst*>(inst);
      if (auto* c = dynCast<ConstantInt>(sel->condition())) {
        return c->isZero() ? sel->falseValue() : sel->trueValue();
      }
      if (sel->trueValue() == sel->falseValue()) return sel->trueValue();
      return nullptr;
    }
    case Opcode::Phi: {
      auto* phi = static_cast<PhiInst*>(inst);
      if (phi->numIncoming() == 0) return m.undef(phi->type());
      return phi->uniformValue();
    }
    case Opcode::Gep: {
      auto* gep = static_cast<GepInst*>(inst);
      if (gep->type() != gep->base()->type()) return nullptr;
      for (std::size_t i = 0; i < gep->numIndices(); ++i) {
        auto* c = dynCast<ConstantInt>(gep->index(i));
        if (c == nullptr || !c->isZero()) return nullptr;
      }
      return gep->base();
    }
    default:
      return nullptr;
  }
}

BasicBlock* splitEdge(BasicBlock* pred, BasicBlock* succ) {
  Function* f = pred->parent();
  Module* m = f->parent();
  BasicBlock* mid = f->addBlockAfter(pred, "split");
  IRBuilder b(m);
  b.setInsertPoint(mid);
  b.br(succ);
  Instruction* term = pred->terminator();
  POSETRL_CHECK(term != nullptr, "splitEdge on unterminated block");
  bool redirected = false;
  for (std::size_t i = 0; i < term->numSuccessors(); ++i) {
    if (term->successor(i) == succ) {
      term->setSuccessor(i, mid);
      redirected = true;
    }
  }
  POSETRL_CHECK(redirected, "splitEdge: no edge pred->succ");
  for (PhiInst* phi : succ->phis()) {
    const std::size_t idx = phi->indexOfBlock(pred);
    if (idx != static_cast<std::size_t>(-1)) {
      phi->setOperand(2 * idx + 1, mid);
    }
  }
  return mid;
}

bool mergeBlockIntoPredecessor(BasicBlock* bb) {
  BasicBlock* pred = bb->singlePredecessor();
  if (pred == nullptr || pred == bb) return false;
  if (pred->singleSuccessor() != bb) return false;
  Instruction* pterm = pred->terminator();
  if (pterm == nullptr || pterm->opcode() != Opcode::Br) return false;

  // Phis in bb have exactly one incoming (from pred): fold them.
  for (PhiInst* phi : bb->phis()) {
    POSETRL_CHECK(phi->numIncoming() == 1, "phi arity in merge");
    Value* in = phi->incomingValue(0);
    phi->replaceAllUsesWith(in);
  }
  while (!bb->empty() && bb->front()->opcode() == Opcode::Phi) {
    bb->front()->eraseFromParent();
  }

  pterm->eraseFromParent();
  while (!bb->empty()) {
    Instruction* inst = bb->front();
    std::unique_ptr<Instruction> owned = inst->removeFromParent();
    pred->pushBack(std::move(owned));
  }
  // Successor phis (and nothing else) still refer to bb; repoint to pred.
  bb->replaceAllUsesWith(pred);
  bb->eraseFromParent();
  return true;
}

bool foldTrivialPhis(Function& f) {
  bool changed = false;
  bool local = true;
  Module* m = f.parent();
  while (local) {
    local = false;
    for (const auto& bb : f.blocks()) {
      std::vector<PhiInst*> phis = bb->phis();
      for (PhiInst* phi : phis) {
        Value* repl = nullptr;
        if (phi->numIncoming() == 0) {
          repl = m->undef(phi->type());
        } else {
          repl = phi->uniformValue();
        }
        if (repl != nullptr && repl != phi) {
          replaceAndErase(phi, repl);
          changed = true;
          local = true;
        }
      }
    }
  }
  return changed;
}

}  // namespace posetrl
