/// \file dse.cpp
/// -dse analog: kills stores overwritten before any possible read, and all
/// stores into allocas that are never loaded (write-only locals).

#include <map>
#include <set>
#include <vector>

#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/instruction.h"
#include "passes/all_passes.h"
#include "passes/transform_utils.h"

namespace posetrl {
namespace {

class DSEPass : public FunctionPass {
 public:
  std::string_view name() const override { return "dse"; }
  // Erases dead stores only; never touches control flow.
  PreservedAnalyses preserved() const override {
    return PreservedAnalyses::cfg();
  }

 protected:
  bool runOnFunction(Function& f) override {
    bool changed = false;
    changed |= killOverwrittenStores(f);
    changed |= killWriteOnlyAllocas(f);
    return changed;
  }

 private:
  /// Within each block, walking backwards: a store to P is dead when a
  /// later store to P precedes any instruction that might read memory.
  bool killOverwrittenStores(Function& f) {
    bool changed = false;
    for (const auto& bb : f.blocks()) {
      std::vector<Instruction*> insts;
      for (const auto& inst : bb->insts()) insts.push_back(inst.get());
      // overwritten[P] = true while walking backwards until a reader.
      std::set<const Value*> overwritten;
      std::vector<Instruction*> dead;
      for (auto it = insts.rbegin(); it != insts.rend(); ++it) {
        Instruction* inst = *it;
        if (auto* store = dynCast<StoreInst>(inst)) {
          if (overwritten.count(store->pointer())) {
            dead.push_back(store);
          } else {
            overwritten.insert(store->pointer());
          }
          continue;
        }
        // Any potential read (or call) invalidates everything we know —
        // there is no alias analysis, so be conservative.
        if (inst->mayReadMemory() || inst->opcode() == Opcode::Call) {
          overwritten.clear();
        }
      }
      for (Instruction* store : dead) {
        store->eraseFromParent();
        changed = true;
      }
    }
    return changed;
  }

  /// Stores into an alloca that is never loaded (and never escapes) are
  /// unobservable.
  bool killWriteOnlyAllocas(Function& f) {
    std::vector<StoreInst*> dead;
    for (const auto& bb : f.blocks()) {
      for (const auto& inst : bb->insts()) {
        auto* alloca = dynCast<AllocaInst>(inst.get());
        if (alloca == nullptr) continue;
        bool write_only = true;
        for (Instruction* user : alloca->users()) {
          auto* store = dynCast<StoreInst>(user);
          if (store == nullptr || store->value() == alloca) {
            write_only = false;
            break;
          }
        }
        if (!write_only) continue;
        for (Instruction* user : alloca->users()) {
          dead.push_back(cast<StoreInst>(static_cast<Value*>(user)));
        }
      }
    }
    // A store may appear twice (value == pointer impossible here, but the
    // users list could still repeat); dedupe.
    std::set<StoreInst*> unique(dead.begin(), dead.end());
    for (StoreInst* store : unique) store->eraseFromParent();
    bool changed = !unique.empty();
    changed |= deleteDeadInstructions(f);
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> createDSEPass() { return std::make_unique<DSEPass>(); }

}  // namespace posetrl
