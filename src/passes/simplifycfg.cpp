/// \file simplifycfg.cpp
/// CFG cleanup analog of LLVM's -simplifycfg: folds constant branches,
/// removes unreachable blocks, merges straight-line block chains, bypasses
/// empty forwarding blocks, and simplifies degenerate switches.

#include <vector>

#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/instruction.h"
#include "ir/ir_builder.h"
#include "ir/module.h"
#include "passes/all_passes.h"
#include "passes/transform_utils.h"

namespace posetrl {
namespace {

/// Rewrites \p pred's terminator edge set after one of its conditional
/// targets was proven dead: successor phis of the dropped target lose the
/// incoming edge from \p pred unless another edge remains.
void fixPhisAfterEdgeRemoval(BasicBlock* pred, BasicBlock* dropped) {
  // Does pred still branch to `dropped`?
  Instruction* term = pred->terminator();
  bool still_edge = false;
  if (term != nullptr) {
    for (std::size_t i = 0; i < term->numSuccessors(); ++i) {
      if (term->successor(i) == dropped) still_edge = true;
    }
  }
  if (still_edge) return;
  for (PhiInst* phi : dropped->phis()) {
    if (phi->indexOfBlock(pred) != static_cast<std::size_t>(-1)) {
      phi->removeIncoming(pred);
    }
  }
}

/// condbr const/identical-successor folding and switch simplification.
bool foldBranches(Function& f) {
  Module* m = f.parent();
  bool changed = false;
  for (const auto& bb : f.blocks()) {
    Instruction* term = bb->terminator();
    if (term == nullptr) continue;
    if (auto* cbr = dynCast<CondBrInst>(term)) {
      BasicBlock* then_bb = cbr->thenBlock();
      BasicBlock* else_bb = cbr->elseBlock();
      BasicBlock* target = nullptr;
      BasicBlock* dead = nullptr;
      if (auto* c = dynCast<ConstantInt>(cbr->condition())) {
        target = c->isZero() ? else_bb : then_bb;
        dead = c->isZero() ? then_bb : else_bb;
      } else if (then_bb == else_bb) {
        target = then_bb;
      }
      if (target != nullptr) {
        cbr->eraseFromParent();
        IRBuilder b(m);
        b.setInsertPoint(bb.get());
        b.br(target);
        if (dead != nullptr && dead != target) {
          fixPhisAfterEdgeRemoval(bb.get(), dead);
        }
        changed = true;
      }
      continue;
    }
    if (auto* sw = dynCast<SwitchInst>(term)) {
      // Constant scrutinee: pick the target directly.
      if (auto* c = dynCast<ConstantInt>(sw->condition())) {
        BasicBlock* target = sw->defaultBlock();
        for (std::size_t i = 0; i < sw->numCases(); ++i) {
          if (sw->caseValue(i)->value() == c->value()) {
            target = sw->caseBlock(i);
            break;
          }
        }
        std::vector<BasicBlock*> all_targets{sw->defaultBlock()};
        for (std::size_t i = 0; i < sw->numCases(); ++i) {
          all_targets.push_back(sw->caseBlock(i));
        }
        sw->eraseFromParent();
        IRBuilder b(m);
        b.setInsertPoint(bb.get());
        b.br(target);
        for (BasicBlock* t : all_targets) {
          if (t != target) fixPhisAfterEdgeRemoval(bb.get(), t);
        }
        changed = true;
        continue;
      }
      // All destinations identical: plain branch.
      bool uniform = true;
      for (std::size_t i = 0; i < sw->numCases(); ++i) {
        if (sw->caseBlock(i) != sw->defaultBlock()) uniform = false;
      }
      if (uniform) {
        BasicBlock* target = sw->defaultBlock();
        sw->eraseFromParent();
        IRBuilder b(m);
        b.setInsertPoint(bb.get());
        b.br(target);
        changed = true;
        continue;
      }
      // Cases that go to the default block are redundant.
      for (std::size_t i = sw->numCases(); i-- > 0;) {
        if (sw->caseBlock(i) == sw->defaultBlock()) {
          sw->removeCase(i);
          changed = true;
        }
      }
    }
  }
  return changed;
}

/// Bypasses blocks that contain only an unconditional branch.
bool removeForwardingBlocks(Function& f) {
  bool changed = false;
  std::vector<BasicBlock*> candidates;
  for (const auto& bb : f.blocks()) {
    if (bb.get() == f.entry()) continue;
    if (bb->size() != 1) continue;
    Instruction* term = bb->terminator();
    if (term == nullptr || term->opcode() != Opcode::Br) continue;
    BasicBlock* target = term->successor(0);
    if (target == bb.get()) continue;
    candidates.push_back(bb.get());
  }
  for (BasicBlock* bb : candidates) {
    BasicBlock* target = bb->terminator()->successor(0);
    const auto preds = bb->predecessors();
    if (preds.empty()) continue;  // Unreachable; handled elsewhere.
    // Legality: for any pred P that is already a predecessor of target, the
    // phi values flowing from P and from bb must agree.
    bool legal = true;
    for (PhiInst* phi : target->phis()) {
      Value* via_bb = phi->incomingForBlock(bb);
      for (BasicBlock* p : preds) {
        const std::size_t pidx = phi->indexOfBlock(p);
        if (pidx != static_cast<std::size_t>(-1) &&
            phi->incomingValue(pidx) != via_bb) {
          legal = false;
        }
        // Phi values defined as the bypassed block's phis can't be remapped
        // (we have none: bb has size 1), but a value defined elsewhere must
        // dominate the new edges; conservatively require non-instruction or
        // dominance via pred — here we only allow when via_bb is not defined
        // in bb (always true, bb has no defs).
      }
    }
    if (!legal) continue;
    for (PhiInst* phi : target->phis()) {
      Value* via_bb = phi->incomingForBlock(bb);
      phi->removeIncoming(bb);
      for (BasicBlock* p : preds) {
        if (phi->indexOfBlock(p) == static_cast<std::size_t>(-1)) {
          phi->addIncoming(via_bb, p);
        }
      }
    }
    // Redirect predecessors.
    for (BasicBlock* p : preds) {
      Instruction* pterm = p->terminator();
      for (std::size_t i = 0; i < pterm->numSuccessors(); ++i) {
        if (pterm->successor(i) == bb) pterm->setSuccessor(i, target);
      }
    }
    // bb is now unreachable; removeUnreachableBlocks will collect it.
    changed = true;
  }
  return changed;
}

bool mergeChains(Function& f) {
  bool changed = true;
  bool any = false;
  while (changed) {
    changed = false;
    for (const auto& bb : f.blocks()) {
      if (bb.get() == f.entry()) continue;
      if (mergeBlockIntoPredecessor(bb.get())) {
        changed = true;
        any = true;
        break;  // Iterator invalidated.
      }
    }
  }
  return any;
}

class SimplifyCfgPass : public FunctionPass {
 public:
  std::string_view name() const override { return "simplifycfg"; }

 protected:
  bool runOnFunction(Function& f) override {
    bool changed = false;
    bool local = true;
    while (local) {
      local = false;
      local |= foldBranches(f);
      local |= removeUnreachableBlocks(f);
      local |= foldTrivialPhis(f);
      local |= removeForwardingBlocks(f);
      local |= removeUnreachableBlocks(f);
      local |= mergeChains(f);
      changed |= local;
    }
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> createSimplifyCfgPass() {
  return std::make_unique<SimplifyCfgPass>();
}

}  // namespace posetrl
