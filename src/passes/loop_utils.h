#pragma once

/// \file loop_utils.h
/// Shared helpers for the loop passes: invariance queries and the
/// counted-loop pattern matcher (a miniature SCEV) used by indvars,
/// loop-unroll, loop-idiom, loop-vectorize and loop-deletion.

#include <cstdint>

#include "analysis/loop_info.h"
#include "ir/instruction.h"

namespace posetrl {

class Value;
class Module;

/// True when \p v is defined outside \p loop (constants/args/globals count).
bool isLoopInvariant(const Loop& loop, const Value* v);

/// A canonical counted loop:
///   iv   = phi [init, preheader], [iv_next, latch]
///   iv_next = add iv, step        (constant step)
///   cond = icmp pred, X, Y        with {X, Y} drawn from {iv, iv_next,
///                                  loop-invariant values}
///   condbr cond, A, B             where exactly one successor leaves the
///                                  loop; the branch sits in the header or
///                                  the (single) latch.
struct CountedLoop {
  Loop* loop = nullptr;
  BasicBlock* preheader = nullptr;
  BasicBlock* header = nullptr;
  BasicBlock* latch = nullptr;
  PhiInst* iv = nullptr;
  Instruction* iv_next = nullptr;
  std::int64_t step = 0;
  Value* init = nullptr;          ///< Incoming value from the preheader.
  ICmpInst* cond = nullptr;
  CondBrInst* exit_branch = nullptr;
  BasicBlock* exit_block = nullptr;      ///< Successor outside the loop.
  BasicBlock* continue_block = nullptr;  ///< Successor inside the loop.

  /// Exact trip count when init and the compared bound are constants and
  /// simulation exits within \p limit iterations; -1 otherwise.
  std::int64_t simulateTripCount(std::int64_t limit) const;
};

/// Matches \p loop against the counted pattern; requires a preheader and a
/// single latch. Returns false when the loop is not in that shape.
bool matchCountedLoop(Loop* loop, CountedLoop& out);

}  // namespace posetrl
