/// \file scalar_misc.cpp
/// The remaining Oz scalar passes: -speculative-execution, -jump-threading,
/// -correlated-propagation, -tailcallelim, -float2int, -div-rem-pairs,
/// -lower-expect, -lower-constant-intrinsics, -alignment-from-assumptions,
/// -memcpyopt, and -mldst-motion.

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "analysis/analysis_manager.h"
#include "analysis/dominators.h"
#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/instruction.h"
#include "ir/ir_builder.h"
#include "ir/module.h"
#include "passes/all_passes.h"
#include "passes/transform_utils.h"

namespace posetrl {
namespace {

/// Hoists a few cheap, pure instructions from conditional successors into
/// the branching block (ILP exposure; mirrors -speculative-execution).
class SpeculativeExecutionPass : public FunctionPass {
 public:
  std::string_view name() const override { return "speculative-execution"; }
  // Hoists instructions into existing predecessors; CFG untouched.
  PreservedAnalyses preserved() const override {
    return PreservedAnalyses::cfg();
  }

  static constexpr std::size_t kMaxHoist = 4;

 protected:
  bool runOnFunction(Function& f) override {
    bool changed = false;
    for (const auto& bb : f.blocks()) {
      auto* cbr = dynCast<CondBrInst>(bb->terminator());
      if (cbr == nullptr) continue;
      for (BasicBlock* succ : {cbr->thenBlock(), cbr->elseBlock()}) {
        if (succ->singlePredecessor() != bb.get()) continue;
        changed |= hoistFrom(*succ, *bb, cbr);
      }
    }
    return changed;
  }

 private:
  bool hoistFrom(BasicBlock& from, BasicBlock& into, Instruction* before) {
    bool changed = false;
    std::size_t hoisted = 0;
    std::vector<Instruction*> insts;
    for (const auto& inst : from.insts()) insts.push_back(inst.get());
    for (Instruction* inst : insts) {
      if (hoisted >= kMaxHoist) break;
      if (inst->isTerminator() || inst->opcode() == Opcode::Phi) continue;
      if (inst->mayReadMemory() || inst->mayWriteMemory()) continue;
      if (inst->mayTrap() || inst->type()->isVoid()) continue;
      if (inst->opcode() == Opcode::Alloca) continue;
      // All operands must be defined at the hoist point.
      bool available = true;
      for (const Value* op : inst->operands()) {
        const auto* d = dynCast<Instruction>(op);
        if (d != nullptr && d->parent() == &from) available = false;
      }
      if (!available) continue;
      inst->moveBefore(before);
      ++hoisted;
      changed = true;
    }
    return changed;
  }
};

/// Threads edges through blocks that only merge phis into a conditional
/// branch: when a predecessor's incoming phi value decides the branch, the
/// predecessor jumps straight to the decided target.
class JumpThreadingPass : public FunctionPass {
 public:
  std::string_view name() const override { return "jump-threading"; }

 protected:
  bool runOnFunction(Function& f) override {
    bool changed = false;
    bool local = true;
    while (local) {
      local = false;
      for (const auto& bb : f.blocks()) {
        if (threadThrough(*bb, f)) {
          local = true;
          changed = true;
          break;  // CFG changed; restart scan.
        }
      }
    }
    if (changed) {
      removeUnreachableBlocks(f);
      foldTrivialPhis(f);
    }
    return changed;
  }

 private:
  bool threadThrough(BasicBlock& bb, Function& f) {
    if (&bb == f.entry()) return false;
    auto* cbr = dynCast<CondBrInst>(bb.terminator());
    if (cbr == nullptr) return false;
    auto* cond_phi = dynCast<PhiInst>(cbr->condition());
    if (cond_phi == nullptr || cond_phi->parent() != &bb) return false;
    // The block must carry no other computation (so bypassing it is safe)
    // and no other phis (their merge would be lost on the threaded path).
    if (bb.phis().size() != 1 || bb.size() != 2) return false;
    if (cbr->thenBlock() == &bb || cbr->elseBlock() == &bb) return false;
    // Threaded paths bypass the phi's definition, so nothing else may
    // consume it.
    if (cond_phi->numUses() != 1) return false;

    for (std::size_t i = 0; i < cond_phi->numIncoming(); ++i) {
      auto* c = dynCast<ConstantInt>(cond_phi->incomingValue(i));
      if (c == nullptr) continue;
      BasicBlock* pred = cond_phi->incomingBlock(i);
      BasicBlock* target = c->isZero() ? cbr->elseBlock() : cbr->thenBlock();
      if (target == &bb || pred == &bb) continue;
      // Thread pred -> target directly.
      Instruction* pterm = pred->terminator();
      for (std::size_t s = 0; s < pterm->numSuccessors(); ++s) {
        if (pterm->successor(s) == &bb) pterm->setSuccessor(s, target);
      }
      cond_phi->removeIncoming(pred);
      // target's phis gain an incoming from pred; the value that flowed
      // through bb for this edge is the phi value (only cond_phi exists,
      // and its uses beyond the branch would block threading).
      for (PhiInst* phi : target->phis()) {
        const std::size_t bidx = phi->indexOfBlock(&bb);
        if (bidx == static_cast<std::size_t>(-1)) continue;
        Value* v = phi->incomingValue(bidx);
        if (v == cond_phi) v = c;
        if (phi->indexOfBlock(pred) == static_cast<std::size_t>(-1)) {
          phi->addIncoming(v, pred);
        }
      }
      return true;
    }
    return false;
  }
};

/// Replaces comparisons that are implied by a dominating branch condition:
/// inside the (solely) true-reached region the condition is true, inside
/// the false-reached region it is false.
class CorrelatedPropagationPass : public FunctionPass {
 public:
  std::string_view name() const override { return "correlated-propagation"; }
  // Rewrites comparison operands to constants; branches stay in place.
  PreservedAnalyses preserved() const override {
    return PreservedAnalyses::cfg();
  }

 protected:
  bool runOnFunction(Function& f) override {
    bool changed = false;
    Module& m = *f.parent();
    AnalysisManager local_am;
    const DominatorTree& dt =
        AnalysisManager::currentOr(local_am).dominators(f);
    for (const auto& bb : f.blocks()) {
      auto* cbr = dynCast<CondBrInst>(bb->terminator());
      if (cbr == nullptr) continue;
      auto* cond = dynCast<ICmpInst>(cbr->condition());
      if (cond == nullptr) continue;
      if (cbr->thenBlock() == cbr->elseBlock()) continue;
      for (bool branch_true : {true, false}) {
        BasicBlock* region =
            branch_true ? cbr->thenBlock() : cbr->elseBlock();
        if (region->singlePredecessor() != bb.get()) continue;
        changed |= propagateIn(region, cond, branch_true, dt, m);
      }
    }
    changed |= deleteDeadInstructions(f);
    return changed;
  }

 private:
  /// Rewrites recomputations of \p cond (same predicate and operands, or
  /// the inverse predicate) in every block dominated by \p region.
  bool propagateIn(BasicBlock* region, ICmpInst* cond, bool value,
                   const DominatorTree& dt, Module& m) {
    bool changed = false;
    std::vector<BasicBlock*> work{region};
    while (!work.empty()) {
      BasicBlock* bb = work.back();
      work.pop_back();
      std::vector<Instruction*> insts;
      for (const auto& inst : bb->insts()) insts.push_back(inst.get());
      for (Instruction* inst : insts) {
        auto* cmp = dynCast<ICmpInst>(inst);
        if (cmp == nullptr || cmp == cond) continue;
        if (cmp->lhs() != cond->lhs() || cmp->rhs() != cond->rhs()) continue;
        if (cmp->pred() == cond->pred()) {
          replaceAndErase(cmp, m.i1Const(value));
          changed = true;
        } else if (cmp->pred() == ICmpInst::inverse(cond->pred())) {
          replaceAndErase(cmp, m.i1Const(!value));
          changed = true;
        }
      }
      for (BasicBlock* child : dt.children(bb)) work.push_back(child);
    }
    return changed;
  }
};

/// Turns self-recursive tail calls into loops.
class TailCallElimPass : public FunctionPass {
 public:
  std::string_view name() const override { return "tailcallelim"; }

 protected:
  bool runOnFunction(Function& f) override {
    // Find tail sites: call of f immediately followed by a return of the
    // call's result (or a bare return for void).
    struct TailSite {
      CallInst* call;
      RetInst* ret;
    };
    std::vector<TailSite> sites;
    for (const auto& bb : f.blocks()) {
      if (bb->size() < 2) continue;
      auto* ret = dynCast<RetInst>(bb->terminator());
      if (ret == nullptr) continue;
      // The instruction just before the terminator.
      auto it = bb->insts().end();
      --it;
      --it;
      auto* call = dynCast<CallInst>(it->get());
      if (call == nullptr || call->calledFunction() != &f) continue;
      if (ret->hasValue() && ret->value() != call) continue;
      if (!ret->hasValue() && !call->type()->isVoid()) continue;
      // The result may only feed the return, or the call can't be elided.
      if (!call->type()->isVoid() && call->numUses() != 1) continue;
      sites.push_back({call, ret});
    }
    if (sites.empty()) return false;
    if (!f.entry()->phis().empty()) return false;  // Degenerate entry.

    Module& m = *f.parent();
    // New entry that jumps to the old entry (which becomes the loop head).
    BasicBlock* head = f.entry();
    BasicBlock* new_entry = f.addBlock("tailrecurse.entry");
    f.makeEntry(new_entry);
    IRBuilder b(&m);
    b.setInsertPoint(new_entry);
    b.br(head);

    // One phi per argument.
    std::vector<PhiInst*> arg_phis;
    for (std::size_t i = 0; i < f.numArgs(); ++i) {
      auto phi = std::make_unique<PhiInst>(f.arg(i)->type(),
                                           f.nextValueName());
      auto* raw = static_cast<PhiInst*>(head->pushFront(std::move(phi)));
      arg_phis.push_back(raw);
    }
    for (std::size_t i = 0; i < f.numArgs(); ++i) {
      f.arg(i)->replaceAllUsesWith(arg_phis[i]);
      arg_phis[i]->addIncoming(f.arg(i), new_entry);
    }

    // Rewrite each tail site into a back edge.
    for (const TailSite& site : sites) {
      BasicBlock* sb = site.call->parent();
      for (std::size_t i = 0; i < f.numArgs(); ++i) {
        arg_phis[i]->addIncoming(site.call->arg(i), sb);
      }
      site.ret->eraseFromParent();
      POSETRL_CHECK(!site.call->hasUses() ||
                        (site.call->numUses() == 0),
                    "tail call result still used");
      site.call->eraseFromParent();
      b.setInsertPoint(sb);
      b.br(head);
    }
    foldTrivialPhis(f);
    return true;
  }
};

/// Demotes float arithmetic whose inputs come from narrow integers and
/// whose only consumer converts back to integer (exact in f64 for <=16-bit
/// sources with one add/sub/mul).
class Float2IntPass : public FunctionPass {
 public:
  std::string_view name() const override { return "float2int"; }
  PreservedAnalyses preserved() const override {
    return PreservedAnalyses::cfg();
  }

 protected:
  bool runOnFunction(Function& f) override {
    Module& m = *f.parent();
    bool changed = false;
    for (const auto& bb : f.blocks()) {
      std::vector<Instruction*> insts;
      for (const auto& inst : bb->insts()) insts.push_back(inst.get());
      for (Instruction* inst : insts) {
        if (inst->opcode() != Opcode::FPToSI) continue;
        auto* fop = dynCast<Instruction>(inst->operand(0));
        if (fop == nullptr || fop->parent() == nullptr) continue;
        Opcode int_op;
        switch (fop->opcode()) {
          case Opcode::FAdd: int_op = Opcode::Add; break;
          case Opcode::FSub: int_op = Opcode::Sub; break;
          case Opcode::FMul: int_op = Opcode::Mul; break;
          default: continue;
        }
        Value* a = narrowIntSource(fop->operand(0));
        Value* b = narrowIntSource(fop->operand(1));
        if (a == nullptr || b == nullptr) continue;
        // Compute in i64 (exact), then adjust to the target width.
        Value* wa = widenTo64(a, inst, m, f);
        Value* wb = widenTo64(b, inst, m, f);
        auto* op = new BinaryInst(int_op, m.types().i64(), wa, wb,
                                  f.nextValueName());
        inst->parent()->insertBefore(inst, std::unique_ptr<Instruction>(op));
        Value* result = op;
        if (inst->type() != m.types().i64()) {
          auto* tr = new CastInst(Opcode::Trunc, inst->type(), result,
                                  f.nextValueName());
          inst->parent()->insertBefore(inst,
                                       std::unique_ptr<Instruction>(tr));
          result = tr;
        }
        replaceAndErase(inst, result);
        changed = true;
      }
    }
    changed |= deleteDeadInstructions(f);
    return changed;
  }

 private:
  /// The narrow (<= 16-bit) integer behind a sitofp, or an exactly
  /// representable small float constant; nullptr otherwise.
  static Value* narrowIntSource(Value* v) {
    if (auto* conv = dynCast<Instruction>(v)) {
      if (conv->opcode() == Opcode::SIToFP) {
        Type* src = conv->operand(0)->type();
        if (src->isInteger() && src->intBits() <= 16) {
          return conv->operand(0);
        }
      }
      return nullptr;
    }
    if (auto* cf = dynCast<ConstantFloat>(v)) {
      const double d = cf->value();
      if (d == static_cast<double>(static_cast<std::int64_t>(d)) &&
          d >= -32768.0 && d <= 32767.0) {
        return cf;  // Marker; widened specially below.
      }
    }
    return nullptr;
  }

  static Value* widenTo64(Value* v, Instruction* before, Module& m,
                          Function& f) {
    if (auto* cf = dynCast<ConstantFloat>(v)) {
      return m.i64Const(static_cast<std::int64_t>(cf->value()));
    }
    if (v->type() == m.types().i64()) return v;
    auto* ext = new CastInst(Opcode::SExt, m.types().i64(), v,
                             f.nextValueName());
    before->parent()->insertBefore(before,
                                   std::unique_ptr<Instruction>(ext));
    return ext;
  }
};

/// When both x/y and x%y are computed, rewrites the remainder as
/// x - (x/y)*y, trading a second division for a multiply-subtract.
class DivRemPairsPass : public FunctionPass {
 public:
  std::string_view name() const override { return "div-rem-pairs"; }
  PreservedAnalyses preserved() const override {
    return PreservedAnalyses::cfg();
  }

 protected:
  bool runOnFunction(Function& f) override {
    Module& m = *f.parent();
    AnalysisManager local_am;
    const DominatorTree& dt =
        AnalysisManager::currentOr(local_am).dominators(f);
    bool changed = false;
    // Collect divisions first.
    std::vector<Instruction*> divs;
    for (const auto& bb : f.blocks()) {
      for (const auto& inst : bb->insts()) {
        if (inst->opcode() == Opcode::SDiv ||
            inst->opcode() == Opcode::UDiv) {
          divs.push_back(inst.get());
        }
      }
    }
    for (Instruction* div : divs) {
      const Opcode rem_op =
          div->opcode() == Opcode::SDiv ? Opcode::SRem : Opcode::URem;
      std::vector<Instruction*> rems;
      for (const auto& bb : f.blocks()) {
        for (const auto& inst : bb->insts()) {
          if (inst->opcode() == rem_op &&
              inst->operand(0) == div->operand(0) &&
              inst->operand(1) == div->operand(1) &&
              dt.dominatesUse(div, inst.get())) {
            rems.push_back(inst.get());
          }
        }
      }
      for (Instruction* rem : rems) {
        auto* mul = new BinaryInst(Opcode::Mul, rem->type(), div,
                                   div->operand(1), f.nextValueName());
        rem->parent()->insertBefore(rem, std::unique_ptr<Instruction>(mul));
        auto* sub = new BinaryInst(Opcode::Sub, rem->type(),
                                   rem->operand(0), mul, f.nextValueName());
        rem->parent()->insertBefore(rem, std::unique_ptr<Instruction>(sub));
        replaceAndErase(rem, sub);
        changed = true;
      }
      (void)m;
    }
    return changed;
  }
};

/// Lowers pr.expect calls to their first argument.
class LowerExpectPass : public FunctionPass {
 public:
  std::string_view name() const override { return "lower-expect"; }
  PreservedAnalyses preserved() const override {
    return PreservedAnalyses::cfg();
  }

 protected:
  bool runOnFunction(Function& f) override {
    bool changed = false;
    for (const auto& bb : f.blocks()) {
      std::vector<Instruction*> insts;
      for (const auto& inst : bb->insts()) insts.push_back(inst.get());
      for (Instruction* inst : insts) {
        auto* call = dynCast<CallInst>(inst);
        if (call == nullptr) continue;
        Function* callee = call->calledFunction();
        if (callee == nullptr ||
            callee->intrinsicId() != IntrinsicId::Expect) {
          continue;
        }
        replaceAndErase(call, call->arg(0));
        changed = true;
      }
    }
    return changed;
  }
};

/// Folds/removes optimizer-hint intrinsics left in the IR: satisfied
/// assumes and any remaining expect calls.
class LowerConstantIntrinsicsPass : public FunctionPass {
 public:
  std::string_view name() const override {
    return "lower-constant-intrinsics";
  }
  PreservedAnalyses preserved() const override {
    return PreservedAnalyses::cfg();
  }

 protected:
  bool runOnFunction(Function& f) override {
    bool changed = false;
    for (const auto& bb : f.blocks()) {
      std::vector<Instruction*> insts;
      for (const auto& inst : bb->insts()) insts.push_back(inst.get());
      for (Instruction* inst : insts) {
        auto* call = dynCast<CallInst>(inst);
        if (call == nullptr) continue;
        Function* callee = call->calledFunction();
        if (callee == nullptr) continue;
        if (callee->intrinsicId() == IntrinsicId::Expect) {
          replaceAndErase(call, call->arg(0));
          changed = true;
        } else if (callee->intrinsicId() == IntrinsicId::Assume) {
          if (auto* c = dynCast<ConstantInt>(call->arg(0))) {
            (void)c;
            call->eraseFromParent();
            changed = true;
          }
        }
      }
    }
    return changed;
  }
};

/// Transfers pr.assume_aligned facts onto the alignment metadata of loads
/// and stores through the asserted pointer, then drops the assumption.
class AlignmentFromAssumptionsPass : public FunctionPass {
 public:
  std::string_view name() const override {
    return "alignment-from-assumptions";
  }
  PreservedAnalyses preserved() const override {
    return PreservedAnalyses::cfg();
  }

 protected:
  bool runOnFunction(Function& f) override {
    bool changed = false;
    for (const auto& bb : f.blocks()) {
      std::vector<Instruction*> insts;
      for (const auto& inst : bb->insts()) insts.push_back(inst.get());
      for (Instruction* inst : insts) {
        auto* call = dynCast<CallInst>(inst);
        if (call == nullptr) continue;
        Function* callee = call->calledFunction();
        if (callee == nullptr ||
            callee->intrinsicId() != IntrinsicId::AssumeAligned) {
          continue;
        }
        Value* ptr = call->arg(0);
        auto* align_c = dynCast<ConstantInt>(call->arg(1));
        if (align_c != nullptr && align_c->value() > 0) {
          const auto align = static_cast<unsigned>(align_c->value());
          const auto mark = [&](Value* p, unsigned a) {
            for (Instruction* user : p->users()) {
              if (auto* load = dynCast<LoadInst>(user)) {
                if (load->pointer() == p && load->alignment() < a) {
                  load->setAlignment(a);
                  changed = true;
                }
              } else if (auto* store = dynCast<StoreInst>(user)) {
                if (store->pointer() == p && store->alignment() < a) {
                  store->setAlignment(a);
                  changed = true;
                }
              }
            }
          };
          mark(ptr, align);
          // Element accesses through geps of an aligned base inherit the
          // gcd of the base alignment and the element size.
          for (Instruction* user : ptr->users()) {
            auto* gep = dynCast<GepInst>(user);
            if (gep == nullptr || gep->base() != ptr) continue;
            const std::uint64_t elem =
                gep->type()->pointee()->byteSize();
            if (elem == 0) continue;
            const unsigned derived =
                static_cast<unsigned>(std::min<std::uint64_t>(align, elem));
            if (derived >= 8) mark(gep, derived);
          }
        }
        call->eraseFromParent();
        changed = true;
      }
    }
    return changed;
  }
};

/// Merges runs of adjacent constant stores with a uniform byte pattern into
/// a single memset intrinsic call.
class MemCpyOptPass : public FunctionPass {
 public:
  std::string_view name() const override { return "memcpyopt"; }
  PreservedAnalyses preserved() const override {
    return PreservedAnalyses::cfg();
  }

  static constexpr std::size_t kMinRun = 4;

 protected:
  bool runOnFunction(Function& f) override {
    Module& m = *f.parent();
    bool changed = false;
    for (const auto& bb : f.blocks()) {
      changed |= mergeInBlock(*bb, m, f);
    }
    changed |= deleteDeadInstructions(f);
    return changed;
  }

 private:
  struct Candidate {
    StoreInst* store;
    GepInst* gep;
    Value* base;
    std::int64_t index;
    std::uint8_t byte;
    Type* elem;
  };

  bool mergeInBlock(BasicBlock& bb, Module& m, Function& f) {
    // Collect maximal runs of consecutive store(gep(base,[0,c]), K)
    // instructions (allowing the geps themselves in between).
    std::vector<Candidate> run;
    std::vector<std::vector<Candidate>> runs;
    const auto flush = [&]() {
      if (run.size() >= kMinRun) runs.push_back(run);
      run.clear();
    };
    for (const auto& inst : bb.insts()) {
      if (auto* gep = dynCast<GepInst>(inst.get())) {
        (void)gep;  // Geps feeding the stores are allowed inside a run.
        continue;
      }
      auto* store = dynCast<StoreInst>(inst.get());
      if (store == nullptr) {
        flush();
        continue;
      }
      Candidate c;
      if (!matchStore(store, c)) {
        flush();
        continue;
      }
      if (!run.empty() &&
          (run.back().base != c.base || run.back().byte != c.byte ||
           run.back().elem != c.elem ||
           run.back().index + 1 != c.index)) {
        flush();
      }
      run.push_back(c);
    }
    flush();

    for (const auto& r : runs) {
      // Replace the run with one memset over [first.index, last.index].
      StoreInst* first = r.front().store;
      Type* elem = r.front().elem;
      auto gep = std::make_unique<GepInst>(
          m.types().ptrTo(elem), r.front().gep->sourceElement(),
          r.front().base,
          std::vector<Value*>{m.i64Const(0), m.i64Const(r.front().index)},
          f.nextValueName());
      Instruction* start_ptr =
          first->parent()->insertBefore(first, std::move(gep));
      Function* memset_fn = m.getMemsetFor(elem);
      auto call = std::make_unique<CallInst>(
          m.types().voidTy(), memset_fn,
          std::vector<Value*>{
              start_ptr,
              m.constantInt(m.types().i8(),
                            static_cast<std::int64_t>(r.front().byte)),
              m.i64Const(static_cast<std::int64_t>(r.size()))},
          "");
      first->parent()->insertBefore(first, std::move(call));
      for (const Candidate& c : r) c.store->eraseFromParent();
    }
    return !runs.empty();
  }

  static bool matchStore(StoreInst* store, Candidate& out) {
    auto* value = dynCast<ConstantInt>(store->value());
    if (value == nullptr) return false;
    auto* gep = dynCast<GepInst>(store->pointer());
    if (gep == nullptr || gep->numIndices() != 2) return false;
    auto* zero = dynCast<ConstantInt>(gep->index(0));
    auto* idx = dynCast<ConstantInt>(gep->index(1));
    if (zero == nullptr || !zero->isZero() || idx == nullptr) return false;
    if (!gep->sourceElement()->isArray()) return false;
    Type* elem = gep->sourceElement()->arrayElement();
    if (!elem->isInteger()) return false;
    // Uniform byte pattern.
    const std::uint64_t raw = value->zextValue();
    const std::uint8_t byte = static_cast<std::uint8_t>(raw & 0xff);
    for (std::uint64_t b = 0; b < elem->byteSize(); ++b) {
      if (((raw >> (8 * b)) & 0xff) != byte) return false;
    }
    out = {store, gep, gep->base(), idx->value(), byte, elem};
    return true;
  }
};

/// Merges identical-pointer stores from both arms of a diamond into the
/// join block (merged-load/store motion).
class MLSMPass : public FunctionPass {
 public:
  std::string_view name() const override { return "mldst-motion"; }
  // Sinks/hoists memory ops between existing diamond blocks.
  PreservedAnalyses preserved() const override {
    return PreservedAnalyses::cfg();
  }

 protected:
  bool runOnFunction(Function& f) override {
    Module& m = *f.parent();
    bool changed = false;
    for (const auto& bb : f.blocks()) {
      auto* cbr = dynCast<CondBrInst>(bb->terminator());
      if (cbr == nullptr) continue;
      BasicBlock* t = cbr->thenBlock();
      BasicBlock* e = cbr->elseBlock();
      if (t == e) continue;
      if (t->singlePredecessor() != bb.get() ||
          e->singlePredecessor() != bb.get()) {
        continue;
      }
      BasicBlock* join = t->singleSuccessor();
      if (join == nullptr || e->singleSuccessor() != join) continue;
      if (join->predecessors().size() != 2) continue;
      // Last non-terminator in each arm must be a store to the same
      // pointer, with the pointer defined above the diamond.
      StoreInst* st = lastStore(*t);
      StoreInst* se = lastStore(*e);
      if (st == nullptr || se == nullptr) continue;
      if (st->pointer() != se->pointer()) continue;
      auto* pdef = dynCast<Instruction>(st->pointer());
      if (pdef != nullptr && (pdef->parent() == t || pdef->parent() == e)) {
        continue;
      }
      // Values must be available at the join (they are: defined in their
      // arm or above, and the phi reads them on the matching edge).
      auto phi = std::make_unique<PhiInst>(st->value()->type(),
                                           f.nextValueName());
      auto* phi_raw = static_cast<PhiInst*>(join->pushFront(std::move(phi)));
      phi_raw->addIncoming(st->value(), t);
      phi_raw->addIncoming(se->value(), e);
      auto merged = std::make_unique<StoreInst>(m.types().voidTy(), phi_raw,
                                                st->pointer());
      BasicBlock::iterator pos = join->firstNonPhi();
      if (pos == join->end()) {
        join->pushBack(std::move(merged));
      } else {
        join->insertBefore(pos->get(), std::move(merged));
      }
      st->eraseFromParent();
      se->eraseFromParent();
      changed = true;
    }
    return changed;
  }

 private:
  static StoreInst* lastStore(BasicBlock& bb) {
    if (bb.size() < 2) return nullptr;
    auto it = bb.insts().end();
    --it;  // Terminator.
    --it;  // Candidate store.
    return dynCast<StoreInst>(it->get());
  }
};

}  // namespace

std::unique_ptr<Pass> createSpeculativeExecutionPass() {
  return std::make_unique<SpeculativeExecutionPass>();
}
std::unique_ptr<Pass> createJumpThreadingPass() {
  return std::make_unique<JumpThreadingPass>();
}
std::unique_ptr<Pass> createCorrelatedPropagationPass() {
  return std::make_unique<CorrelatedPropagationPass>();
}
std::unique_ptr<Pass> createTailCallElimPass() {
  return std::make_unique<TailCallElimPass>();
}
std::unique_ptr<Pass> createFloat2IntPass() {
  return std::make_unique<Float2IntPass>();
}
std::unique_ptr<Pass> createDivRemPairsPass() {
  return std::make_unique<DivRemPairsPass>();
}
std::unique_ptr<Pass> createLowerExpectPass() {
  return std::make_unique<LowerExpectPass>();
}
std::unique_ptr<Pass> createLowerConstantIntrinsicsPass() {
  return std::make_unique<LowerConstantIntrinsicsPass>();
}
std::unique_ptr<Pass> createAlignmentFromAssumptionsPass() {
  return std::make_unique<AlignmentFromAssumptionsPass>();
}
std::unique_ptr<Pass> createMemCpyOptPass() {
  return std::make_unique<MemCpyOptPass>();
}
std::unique_ptr<Pass> createMLSMPass() {
  return std::make_unique<MLSMPass>();
}

}  // namespace posetrl
