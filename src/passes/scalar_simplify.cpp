/// \file scalar_simplify.cpp
/// Peephole passes: -instsimplify (fold-only), -instcombine (canonicalizing
/// rewrites), and -reassociate (commutative chain re-association to expose
/// constant folding).

#include <algorithm>
#include <vector>

#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/instruction.h"
#include "ir/module.h"
#include "passes/all_passes.h"
#include "passes/transform_utils.h"

namespace posetrl {
namespace {

bool isPowerOfTwo(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

unsigned log2u(std::uint64_t v) {
  unsigned n = 0;
  while (v > 1) {
    v >>= 1;
    ++n;
  }
  return n;
}

/// Applies simplifyInstruction to a fixpoint across the function.
bool simplifyAll(Function& f) {
  Module& m = *f.parent();
  bool changed = false;
  bool local = true;
  while (local) {
    local = false;
    for (const auto& bb : f.blocks()) {
      std::vector<Instruction*> insts;
      for (const auto& inst : bb->insts()) insts.push_back(inst.get());
      for (Instruction* inst : insts) {
        if (Value* v = simplifyInstruction(inst, m)) {
          replaceAndErase(inst, v);
          changed = true;
          local = true;
        }
      }
    }
  }
  return changed;
}

class InstSimplifyPass : public FunctionPass {
 public:
  std::string_view name() const override { return "instsimplify"; }

 protected:
  bool runOnFunction(Function& f) override {
    bool changed = simplifyAll(f);
    changed |= deleteDeadInstructions(f);
    return changed;
  }
};

/// One canonicalizing rewrite of \p inst; returns true if anything changed.
bool combineOnce(Instruction* inst, Module& m) {
  // Canonicalize constants to the right-hand side of commutative ops.
  if (inst->isCommutative() && inst->operand(0)->isConstant() &&
      !inst->operand(1)->isConstant()) {
    Value* l = inst->operand(0);
    inst->setOperand(0, inst->operand(1));
    inst->setOperand(1, l);
    return true;
  }
  if (auto* cmp = dynCast<ICmpInst>(inst)) {
    if (cmp->lhs()->isConstant() && !cmp->rhs()->isConstant()) {
      Value* l = cmp->lhs();
      cmp->setOperand(0, cmp->rhs());
      cmp->setOperand(1, l);
      cmp->setPred(ICmpInst::swapped(cmp->pred()));
      return true;
    }
    // icmp eq/ne (sub x, y), 0  ->  icmp eq/ne x, y
    if ((cmp->pred() == ICmpInst::Pred::EQ ||
         cmp->pred() == ICmpInst::Pred::NE)) {
      auto* rz = dynCast<ConstantInt>(cmp->rhs());
      auto* sub = dynCast<Instruction>(cmp->lhs());
      if (rz != nullptr && rz->isZero() && sub != nullptr &&
          sub->opcode() == Opcode::Sub) {
        cmp->setOperand(0, sub->operand(0));
        cmp->setOperand(1, sub->operand(1));
        return true;
      }
    }
    return false;
  }

  auto* cr = dynCast<ConstantInt>(
      inst->numOperands() == 2 ? inst->operand(1) : nullptr);
  Type* t = inst->type();

  switch (inst->opcode()) {
    case Opcode::Mul:
      if (cr != nullptr && cr->value() > 0 &&
          isPowerOfTwo(static_cast<std::uint64_t>(cr->value()))) {
        // x * 2^k -> x << k
        auto* shl = new BinaryInst(
            Opcode::Shl, t, inst->operand(0),
            m.constantInt(t, log2u(static_cast<std::uint64_t>(cr->value()))),
            inst->name());
        inst->parent()->insertBefore(inst,
                                     std::unique_ptr<Instruction>(shl));
        replaceAndErase(inst, shl);
        return true;
      }
      break;
    case Opcode::UDiv:
      if (cr != nullptr && isPowerOfTwo(cr->zextValue())) {
        auto* shr = new BinaryInst(Opcode::LShr, t, inst->operand(0),
                                   m.constantInt(t, log2u(cr->zextValue())),
                                   inst->name());
        inst->parent()->insertBefore(inst,
                                     std::unique_ptr<Instruction>(shr));
        replaceAndErase(inst, shr);
        return true;
      }
      break;
    case Opcode::URem:
      if (cr != nullptr && isPowerOfTwo(cr->zextValue())) {
        auto* mask = new BinaryInst(
            Opcode::And, t, inst->operand(0),
            m.constantInt(t, static_cast<std::int64_t>(cr->zextValue() - 1)),
            inst->name());
        inst->parent()->insertBefore(inst,
                                     std::unique_ptr<Instruction>(mask));
        replaceAndErase(inst, mask);
        return true;
      }
      break;
    case Opcode::Add:
      if (inst->operand(0) == inst->operand(1)) {
        auto* shl = new BinaryInst(Opcode::Shl, t, inst->operand(0),
                                   m.constantInt(t, 1), inst->name());
        inst->parent()->insertBefore(inst,
                                     std::unique_ptr<Instruction>(shl));
        replaceAndErase(inst, shl);
        return true;
      }
      [[fallthrough]];
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor: {
      // (x op c1) op c2 -> x op (c1 op c2)
      if (cr == nullptr) break;
      auto* inner = dynCast<Instruction>(inst->operand(0));
      if (inner == nullptr || inner->opcode() != inst->opcode()) break;
      auto* ci = dynCast<ConstantInt>(inner->operand(1));
      if (ci == nullptr) break;
      std::int64_t combined = 0;
      switch (inst->opcode()) {
        case Opcode::Add: combined = ci->value() + cr->value(); break;
        case Opcode::And: combined = ci->value() & cr->value(); break;
        case Opcode::Or: combined = ci->value() | cr->value(); break;
        case Opcode::Xor: combined = ci->value() ^ cr->value(); break;
        default: return false;
      }
      inst->setOperand(0, inner->operand(0));
      inst->setOperand(1, m.constantInt(t, combined));
      return true;
    }
    case Opcode::ZExt:
    case Opcode::SExt: {
      auto* inner = dynCast<Instruction>(inst->operand(0));
      if (inner != nullptr && inner->opcode() == inst->opcode()) {
        // ext(ext x) -> ext x (single wider extension).
        inst->setOperand(0, inner->operand(0));
        return true;
      }
      break;
    }
    case Opcode::FAdd:
    case Opcode::FSub: {
      auto* cf = dynCast<ConstantFloat>(inst->operand(1));
      if (cf != nullptr && cf->value() == 0.0) {
        replaceAndErase(inst, inst->operand(0));
        return true;
      }
      break;
    }
    case Opcode::FMul:
    case Opcode::FDiv: {
      auto* cf = dynCast<ConstantFloat>(inst->operand(1));
      if (cf != nullptr && cf->value() == 1.0) {
        replaceAndErase(inst, inst->operand(0));
        return true;
      }
      break;
    }
    case Opcode::CondBr: {
      // condbr (xor c, true), A, B -> condbr c, B, A
      auto* cbr = static_cast<CondBrInst*>(inst);
      auto* x = dynCast<Instruction>(cbr->condition());
      if (x != nullptr && x->opcode() == Opcode::Xor) {
        auto* c1 = dynCast<ConstantInt>(x->operand(1));
        if (c1 != nullptr && c1->isOne() && x->type()->intBits() == 1) {
          BasicBlock* then_bb = cbr->thenBlock();
          BasicBlock* else_bb = cbr->elseBlock();
          cbr->setOperand(0, x->operand(0));
          cbr->setSuccessor(0, else_bb);
          cbr->setSuccessor(1, then_bb);
          return true;
        }
      }
      break;
    }
    case Opcode::Select: {
      // select (xor c, true), a, b -> select c, b, a
      auto* sel = static_cast<SelectInst*>(inst);
      auto* x = dynCast<Instruction>(sel->condition());
      if (x != nullptr && x->opcode() == Opcode::Xor) {
        auto* c1 = dynCast<ConstantInt>(x->operand(1));
        if (c1 != nullptr && c1->isOne() && x->type()->intBits() == 1) {
          Value* tv = sel->trueValue();
          Value* fv = sel->falseValue();
          sel->setOperand(0, x->operand(0));
          sel->setOperand(1, fv);
          sel->setOperand(2, tv);
          return true;
        }
      }
      break;
    }
    default:
      break;
  }
  return false;
}

class InstCombinePass : public FunctionPass {
 public:
  std::string_view name() const override { return "instcombine"; }

 protected:
  bool runOnFunction(Function& f) override {
    Module& m = *f.parent();
    bool changed = false;
    bool local = true;
    while (local) {
      local = simplifyAll(f);
      for (const auto& bb : f.blocks()) {
        std::vector<Instruction*> insts;
        for (const auto& inst : bb->insts()) insts.push_back(inst.get());
        for (Instruction* inst : insts) {
          local |= combineOnce(inst, m);
        }
      }
      changed |= local;
    }
    changed |= deleteDeadInstructions(f);
    return changed;
  }
};

/// Re-associates chains of a commutative, associative opcode so constants
/// cluster together: ((x + 1) + y) + 2  ->  x + y + (1 + 2).
class ReassociatePass : public FunctionPass {
 public:
  std::string_view name() const override { return "reassociate"; }
  // Reorders operand chains; no control-flow edits.
  PreservedAnalyses preserved() const override {
    return PreservedAnalyses::cfg();
  }

 protected:
  bool runOnFunction(Function& f) override {
    Module& m = *f.parent();
    bool changed = false;
    for (const auto& bb : f.blocks()) {
      std::vector<Instruction*> insts;
      for (const auto& inst : bb->insts()) insts.push_back(inst.get());
      for (Instruction* inst : insts) {
        changed |= reassociate(inst, m);
      }
    }
    changed |= deleteDeadInstructions(f);
    return changed;
  }

 private:
  static bool isReassociable(Opcode op) {
    switch (op) {
      case Opcode::Add:
      case Opcode::Mul:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
        return true;
      default:
        return false;
    }
  }

  /// Collects the flattened leaf operands of a same-opcode tree rooted at
  /// \p inst, restricted to single-use internal nodes in the same block.
  void collectLeaves(Instruction* root, Instruction* node,
                     std::vector<Value*>& leaves) {
    for (std::size_t i = 0; i < 2; ++i) {
      Value* op = node->operand(i);
      auto* op_inst = dynCast<Instruction>(op);
      if (op_inst != nullptr && op_inst->opcode() == root->opcode() &&
          op_inst->numUses() == 1 && op_inst->parent() == root->parent()) {
        collectLeaves(root, op_inst, leaves);
      } else {
        leaves.push_back(op);
      }
    }
  }

  bool reassociate(Instruction* inst, Module& m) {
    if (!isReassociable(inst->opcode())) return false;
    std::vector<Value*> leaves;
    collectLeaves(inst, inst, leaves);
    if (leaves.size() < 3) return false;
    // Count constants; only rebuild when at least two can be merged.
    std::size_t n_const = 0;
    for (Value* v : leaves) {
      if (isa<ConstantInt>(v)) ++n_const;
    }
    if (n_const < 2) return false;
    // Partition: non-constants first, constants last (folded by
    // simplifyInstruction on a later sweep or right here).
    std::stable_partition(leaves.begin(), leaves.end(), [](Value* v) {
      return !isa<ConstantInt>(v);
    });
    // Rebuild a left-leaning chain before `inst`.
    Value* acc = leaves[0];
    for (std::size_t i = 1; i < leaves.size(); ++i) {
      auto* node =
          new BinaryInst(inst->opcode(), inst->type(), acc, leaves[i],
                         inst->function()->nextValueName());
      inst->parent()->insertBefore(inst, std::unique_ptr<Instruction>(node));
      if (Value* s = simplifyInstruction(node, m)) {
        node->eraseFromParent();
        acc = s;
      } else {
        acc = node;
      }
    }
    replaceAndErase(inst, acc);
    return true;
  }
};

}  // namespace

std::unique_ptr<Pass> createInstSimplifyPass() {
  return std::make_unique<InstSimplifyPass>();
}

std::unique_ptr<Pass> createInstCombinePass() {
  return std::make_unique<InstCombinePass>();
}

std::unique_ptr<Pass> createReassociatePass() {
  return std::make_unique<ReassociatePass>();
}

}  // namespace posetrl
