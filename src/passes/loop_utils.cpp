#include "passes/loop_utils.h"

#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/value.h"

namespace posetrl {

bool isLoopInvariant(const Loop& loop, const Value* v) {
  const auto* inst = dynCast<Instruction>(v);
  if (inst == nullptr) return true;  // Constants, args, globals, functions.
  return !loop.contains(inst->parent());
}

std::int64_t CountedLoop::simulateTripCount(std::int64_t limit) const {
  const auto* init_c = dynCast<ConstantInt>(init);
  if (init_c == nullptr) return -1;
  const unsigned bits = iv->type()->intBits();
  std::int64_t ivv = init_c->value();
  for (std::int64_t k = 0; k < limit; ++k) {
    const std::int64_t next =
        ConstantInt::canonicalize(ivv + step, bits);
    // Evaluate the exit condition for this iteration.
    const auto eval_operand = [&](const Value* v, bool& ok) -> std::int64_t {
      if (v == iv) return ivv;
      if (v == iv_next) return next;
      if (const auto* c = dynCast<ConstantInt>(v)) return c->value();
      ok = false;
      return 0;
    };
    bool ok = true;
    const std::int64_t lhs = eval_operand(cond->lhs(), ok);
    const std::int64_t rhs = eval_operand(cond->rhs(), ok);
    if (!ok) return -1;
    const bool cond_val = ICmpInst::evaluate(cond->pred(), lhs, rhs, bits);
    const bool exits = (exit_branch->thenBlock() == exit_block) == cond_val;
    // Returns the number of times the branch's block executes.
    if (exits) return k + 1;
    ivv = next;
  }
  return -1;
}

bool matchCountedLoop(Loop* loop, CountedLoop& out) {
  out = CountedLoop();
  out.loop = loop;
  out.preheader = loop->preheader();
  if (out.preheader == nullptr) return false;
  out.header = loop->header();
  out.latch = loop->singleLatch();
  if (out.latch == nullptr) return false;

  // Find the IV: a header phi of integer type whose latch incoming is
  // `add iv, const`.
  for (PhiInst* phi : out.header->phis()) {
    if (!phi->type()->isInteger()) continue;
    if (phi->numIncoming() != 2) continue;
    const std::size_t ph_idx = phi->indexOfBlock(out.preheader);
    const std::size_t latch_idx = phi->indexOfBlock(out.latch);
    if (ph_idx == static_cast<std::size_t>(-1) ||
        latch_idx == static_cast<std::size_t>(-1)) {
      continue;
    }
    auto* next = dynCast<Instruction>(phi->incomingValue(latch_idx));
    if (next == nullptr || next->opcode() != Opcode::Add) continue;
    if (!loop->contains(next->parent())) continue;
    auto* step_c = dynCast<ConstantInt>(next->operand(1));
    if (next->operand(0) != phi || step_c == nullptr || step_c->isZero()) {
      continue;
    }
    out.iv = phi;
    out.iv_next = next;
    out.step = step_c->value();
    out.init = phi->incomingValue(ph_idx);
    break;
  }
  if (out.iv == nullptr) return false;

  // The exiting branch: a condbr in the header or the latch with exactly
  // one successor outside the loop, conditioned on an icmp over the IV.
  for (BasicBlock* candidate : {out.header, out.latch}) {
    auto* cbr = dynCast<CondBrInst>(candidate->terminator());
    if (cbr == nullptr) continue;
    const bool then_in = loop->contains(cbr->thenBlock());
    const bool else_in = loop->contains(cbr->elseBlock());
    if (then_in == else_in) continue;
    auto* cmp = dynCast<ICmpInst>(cbr->condition());
    if (cmp == nullptr) continue;
    const auto involves_iv = [&](const Value* v) {
      return v == out.iv || v == out.iv_next;
    };
    const auto invariant_or_iv = [&](const Value* v) {
      return involves_iv(v) || isLoopInvariant(*loop, v);
    };
    if (!involves_iv(cmp->lhs()) && !involves_iv(cmp->rhs())) continue;
    if (!invariant_or_iv(cmp->lhs()) || !invariant_or_iv(cmp->rhs())) {
      continue;
    }
    out.cond = cmp;
    out.exit_branch = cbr;
    out.exit_block = then_in ? cbr->elseBlock() : cbr->thenBlock();
    out.continue_block = then_in ? cbr->thenBlock() : cbr->elseBlock();
    return true;
  }
  return false;
}

}  // namespace posetrl
