#pragma once

/// \file pass.h
/// Pass interface and registry. Passes are keyed by the exact flag names
/// LLVM-10's -Oz pipeline uses (Table I of the paper), so the Oz sequence,
/// the manual sub-sequences (Table II) and the ODG sub-sequences (Table III)
/// can be expressed as strings of those names.

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/analysis_manager.h"

namespace posetrl {

class Module;
class Function;
class PassInstrumentation;

/// A transformation over a whole module.
class Pass {
 public:
  virtual ~Pass() = default;

  /// Flag name without the leading dash, e.g. "simplifycfg".
  virtual std::string_view name() const = 0;

  /// Runs the transformation; returns true when the IR changed.
  virtual bool run(Module& module) = 0;

  /// Analyses this pass promises to keep valid across run(). The default is
  /// the safe answer (nothing); a pass opts in per analysis, and the
  /// pass-contract checker diffs the declaration against the observed IR
  /// delta at every pass boundary — a pass that promises more than it keeps
  /// is flagged with its name attached. Cache invalidation itself never
  /// trusts this (it is hash-driven), so a wrong declaration can only
  /// produce a contract report, not a miscompile.
  virtual PreservedAnalyses preserved() const {
    return PreservedAnalyses::none();
  }
};

/// Convenience base for per-function transformations.
class FunctionPass : public Pass {
 public:
  bool run(Module& module) final;

 protected:
  virtual bool runOnFunction(Function& f) = 0;
};

/// Creates the pass registered under \p name (aliases like
/// "alignmentfromassumptions" vs "alignment-from-assumptions" both resolve);
/// returns nullptr for unknown names.
std::unique_ptr<Pass> createPass(std::string_view name);

/// All canonical registered pass names.
std::vector<std::string> allPassNames();

/// Registers (or replaces) a pass factory under \p name, making it reachable
/// from createPass / parsePassSequence / runPassSequence. Used by tests to
/// inject deliberately broken passes into instrumented pipelines, and by
/// downstream tools to extend the action space without editing the table.
void registerPass(const std::string& name,
                  std::function<std::unique_ptr<Pass>()> factory);

/// Parses a pass-sequence string like "-simplifycfg -sroa -early-cse" into
/// pass names (leading dashes optional). Aborts on unknown passes when
/// \p strict, otherwise skips them.
std::vector<std::string> parsePassSequence(std::string_view sequence,
                                           bool strict = true);

/// Runs \p pass_names over \p module in order; returns true if any changed
/// the IR. With \p verify_each, runs the IR verifier after every pass and
/// aborts with the offending pass name on failure (used by tests).
bool runPassSequence(Module& module,
                     const std::vector<std::string>& pass_names,
                     bool verify_each = false);

/// Instrumented variant: \p instr.beginSequence runs before the first pass
/// and \p instr.afterPass after every pass, so verifier/lint/oracle failures
/// are attributed to the offending pass (see lint/instrumentation.h).
bool runPassSequence(Module& module,
                     const std::vector<std::string>& pass_names,
                     PassInstrumentation& instr);

/// Runs already-constructed passes (not necessarily registered ones) with
/// optional instrumentation; the building block of both runPassSequence
/// overloads and of tests that inject custom passes.
bool runPasses(Module& module, const std::vector<Pass*>& passes,
               PassInstrumentation* instr = nullptr);

}  // namespace posetrl
