/// \file dce.cpp
/// Dead-code elimination family: -dce (trivial sweep), -adce (aggressive,
/// liveness-seeded from observable effects — removes dead phi cycles), and
/// -bdce (bit-tracking: values none of whose bits are demanded become zero).

#include <map>
#include <set>
#include <vector>

#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/instruction.h"
#include "ir/module.h"
#include "passes/all_passes.h"
#include "passes/transform_utils.h"

namespace posetrl {
namespace {

class DCEPass : public FunctionPass {
 public:
  std::string_view name() const override { return "dce"; }
  // Deletes unused instructions only; terminators are never dead.
  PreservedAnalyses preserved() const override {
    return PreservedAnalyses::cfg();
  }

 protected:
  bool runOnFunction(Function& f) override {
    return deleteDeadInstructions(f);
  }
};

/// Roots of liveness: instructions whose removal would change behaviour.
bool isLiveRoot(const Instruction& inst) {
  if (inst.isTerminator()) return true;  // Control structure kept intact.
  if (!inst.isRemovableIfUnused()) return true;
  return false;
}

class ADCEPass : public FunctionPass {
 public:
  std::string_view name() const override { return "adce"; }
  // Liveness roots include every terminator, so control flow is kept.
  PreservedAnalyses preserved() const override {
    return PreservedAnalyses::cfg();
  }

 protected:
  bool runOnFunction(Function& f) override {
    std::set<const Instruction*> live;
    std::vector<const Instruction*> work;
    for (const auto& bb : f.blocks()) {
      for (const auto& inst : bb->insts()) {
        if (isLiveRoot(*inst)) {
          live.insert(inst.get());
          work.push_back(inst.get());
        }
      }
    }
    while (!work.empty()) {
      const Instruction* inst = work.back();
      work.pop_back();
      for (const Value* op : inst->operands()) {
        if (const auto* def = dynCast<Instruction>(op)) {
          if (live.insert(def).second) work.push_back(def);
        }
      }
    }
    bool changed = false;
    // Erase dead instructions; phi cycles may be mutually-referencing, so
    // detach all dead operands first.
    std::vector<Instruction*> dead;
    for (const auto& bb : f.blocks()) {
      for (const auto& inst : bb->insts()) {
        if (!live.count(inst.get())) dead.push_back(inst.get());
      }
    }
    if (dead.empty()) return false;
    for (Instruction* inst : dead) inst->dropAllOperands();
    Module* m = f.parent();
    for (Instruction* inst : dead) {
      if (inst->hasUses()) {
        // Only other dead instructions can still refer to it; make those
        // references inert before erasing.
        inst->replaceAllUsesWith(m->undef(inst->type()));
      }
    }
    for (Instruction* inst : dead) {
      inst->eraseFromParent();
      changed = true;
    }
    return changed;
  }
};

/// Demanded-bits DCE. Computes, for each integer instruction, the bit mask
/// its users actually consume; an instruction with no demanded bits is
/// replaced by zero.
class BDCEPass : public FunctionPass {
 public:
  std::string_view name() const override { return "bdce"; }
  PreservedAnalyses preserved() const override {
    return PreservedAnalyses::cfg();
  }

 protected:
  bool runOnFunction(Function& f) override {
    Module& m = *f.parent();
    // demanded[v] accumulates bits demanded by v's users.
    std::map<const Instruction*, std::uint64_t> demanded;
    const auto all_bits = [](Type* t) {
      const unsigned b = t->intBits();
      return b == 64 ? ~0ull : ((1ull << b) - 1);
    };

    // Seed: every non-integer-valued or externally observable use demands
    // all bits of its integer operands, refined by user opcode below.
    bool changed = true;
    int iterations = 0;
    std::map<const Instruction*, std::uint64_t> result;
    while (changed && ++iterations < 8) {
      changed = false;
      for (const auto& bb : f.blocks()) {
        for (const auto& inst : bb->insts()) {
          if (!inst->type()->isInteger()) continue;
          std::uint64_t mask = 0;
          if (!inst->hasUses()) {
            mask = 0;
          }
          for (const Instruction* user : inst->users()) {
            mask |= demandFromUser(*user, inst.get(), all_bits, result);
            if (mask == all_bits(inst->type())) break;
          }
          mask &= all_bits(inst->type());
          auto it = result.find(inst.get());
          if (it == result.end() || it->second != mask) {
            result[inst.get()] = mask;
            changed = true;
          }
        }
      }
    }

    bool any = false;
    std::vector<Instruction*> zeroed;
    for (const auto& bb : f.blocks()) {
      for (const auto& inst : bb->insts()) {
        if (!inst->type()->isInteger()) continue;
        if (!inst->hasUses()) continue;
        if (!inst->isRemovableIfUnused()) continue;
        auto it = result.find(inst.get());
        if (it != result.end() && it->second == 0) {
          zeroed.push_back(inst.get());
        }
      }
    }
    for (Instruction* inst : zeroed) {
      inst->replaceAllUsesWith(m.constantInt(inst->type(), 0));
      any = true;
    }
    any |= deleteDeadInstructions(f);
    return any;
  }

 private:
  template <typename AllBitsFn>
  std::uint64_t demandFromUser(
      const Instruction& user, const Instruction* operand,
      const AllBitsFn& all_bits,
      const std::map<const Instruction*, std::uint64_t>& result) const {
    const auto user_demand = [&]() -> std::uint64_t {
      if (!user.type()->isInteger()) return ~0ull;
      auto it = result.find(&user);
      return it == result.end() ? all_bits(user.type()) : it->second;
    };
    switch (user.opcode()) {
      case Opcode::And: {
        // Bits masked off by a constant are not demanded from the other
        // operand.
        const Value* other =
            user.operand(0) == operand ? user.operand(1) : user.operand(0);
        if (const auto* c = dynCast<ConstantInt>(other)) {
          return user_demand() & c->zextValue();
        }
        return user_demand();
      }
      case Opcode::Trunc:
        return all_bits(user.type());
      case Opcode::ZExt:
        return user_demand() & all_bits(operand->type());
      case Opcode::Shl: {
        if (user.operand(0) == operand) {
          if (const auto* c = dynCast<ConstantInt>(user.operand(1))) {
            const unsigned bits = user.type()->intBits();
            const std::uint64_t sh = c->zextValue() % bits;
            return user_demand() >> sh;
          }
        }
        return ~0ull;
      }
      case Opcode::LShr: {
        if (user.operand(0) == operand) {
          if (const auto* c = dynCast<ConstantInt>(user.operand(1))) {
            const unsigned bits = user.type()->intBits();
            const std::uint64_t sh = c->zextValue() % bits;
            return (user_demand() << sh) & all_bits(user.type());
          }
        }
        return ~0ull;
      }
      case Opcode::Or:
      case Opcode::Xor:
        return user_demand();
      default:
        return ~0ull;
    }
  }
};

}  // namespace

std::unique_ptr<Pass> createDCEPass() { return std::make_unique<DCEPass>(); }

std::unique_ptr<Pass> createADCEPass() { return std::make_unique<ADCEPass>(); }

std::unique_ptr<Pass> createBDCEPass() { return std::make_unique<BDCEPass>(); }

}  // namespace posetrl
