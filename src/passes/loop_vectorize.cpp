/// \file loop_vectorize.cpp
/// -loop-vectorize and -loop-distribute analogs.
///
/// Vectorization is modeled as exact unroll-by-VF with SIMD marking: the
/// loop is unrolled four-wide, every data-processing copy is tagged with
/// vectorWidth(4), and the size/throughput models treat each 4-group as one
/// SIMD instruction. Semantics are bit-exact (it *is* an unroll), so the
/// interpreter-based equivalence tests hold, while the cost models see
/// the speed/size profile of vector code.
///
/// Distribution splits a single-block loop whose body contains independent
/// store computations into consecutive loops (one per store slice), the
/// enabling transform the Oz pipeline runs right before vectorization.

#include <map>
#include <set>
#include <vector>

#include "analysis/analysis_manager.h"
#include "analysis/dominators.h"
#include "analysis/loop_info.h"
#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/global_variable.h"
#include "ir/instruction.h"
#include "ir/ir_builder.h"
#include "ir/module.h"
#include "passes/all_passes.h"
#include "passes/loop_utils.h"
#include "passes/transform_utils.h"

namespace posetrl {
namespace {

constexpr std::int64_t kSimLimit = 1 << 16;

/// The base object of a pointer chain, when it is provably a distinct
/// object (alloca or global); nullptr otherwise.
const Value* baseObject(const Value* ptr) {
  const Value* cur = ptr;
  while (const auto* gep = dynCast<GepInst>(cur)) cur = gep->base();
  if (isa<AllocaInst>(cur) || isa<GlobalVariable>(cur)) return cur;
  return nullptr;
}

bool loopValuesUnusedOutsideLocal(const Loop& loop) {
  for (BasicBlock* bb : loop.blocks()) {
    for (const auto& inst : bb->insts()) {
      for (Instruction* user : inst->users()) {
        if (!loop.contains(user->parent())) return false;
      }
    }
  }
  return true;
}

class LoopVectorizePass : public FunctionPass {
 public:
  std::string_view name() const override { return "loop-vectorize"; }

  static constexpr unsigned kVF = 4;
  static constexpr std::size_t kMaxBodySize = 32;

 protected:
  bool runOnFunction(Function& f) override {
    bool changed = false;
    AnalysisManager local_am;
    AnalysisManager& am = AnalysisManager::currentOr(local_am);
    for (int round = 0; round < 4; ++round) {
      const LoopInfo& li = am.loopInfo(f);
      bool local = false;
      for (Loop* loop : li.loopsInnermostFirst()) {
        if (vectorize(*loop, f)) {
          local = true;
          break;
        }
      }
      changed |= local;
      if (!local) break;
    }
    return changed;
  }

 private:
  bool vectorize(Loop& loop, Function& f) {
    if (loop.blocks().size() != 1) return false;
    CountedLoop cl;
    if (!matchCountedLoop(&loop, cl)) return false;
    BasicBlock* body = cl.header;
    if (cl.exit_branch->parent() != body) return false;
    if (cl.step != 1) return false;
    if (body->size() > kMaxBodySize) return false;
    if (body->phis().size() != 1) return false;  // Only the IV.
    const std::int64_t trips = cl.simulateTripCount(kSimLimit);
    if (trips < 8 || trips % kVF != 0) return false;
    if (!loopValuesUnusedOutsideLocal(loop)) return false;
    // Already vectorized (LLVM records llvm.loop.isvectorized metadata and
    // refuses to re-vectorize; the vector marks play that role here).
    for (const auto& inst : body->insts()) {
      if (inst->vectorWidth() > 1) return false;
    }

    // Body instructions (excluding IV machinery) must be vectorizable:
    // pure arithmetic/casts/selects, geps indexed by the IV with distinct
    // base objects, and loads/stores whose base objects don't overlap.
    std::vector<Instruction*> lane_insts;
    std::set<const Value*> load_bases;
    std::set<const Value*> store_bases;
    for (const auto& inst : body->insts()) {
      Instruction* i = inst.get();
      if (i == cl.iv || i == cl.iv_next || i == cl.cond ||
          i == cl.exit_branch) {
        continue;
      }
      switch (i->opcode()) {
        case Opcode::Gep: {
          if (!isLoopInvariant(loop, static_cast<GepInst*>(i)->base())) {
            return false;
          }
          lane_insts.push_back(i);
          break;
        }
        case Opcode::Load: {
          const Value* base =
              baseObject(static_cast<LoadInst*>(i)->pointer());
          if (base == nullptr) return false;
          load_bases.insert(base);
          lane_insts.push_back(i);
          break;
        }
        case Opcode::Store: {
          const Value* base =
              baseObject(static_cast<StoreInst*>(i)->pointer());
          if (base == nullptr) return false;
          store_bases.insert(base);
          lane_insts.push_back(i);
          break;
        }
        case Opcode::Select:
        case Opcode::ICmp:
        case Opcode::FCmp:
          lane_insts.push_back(i);
          break;
        default:
          if (i->isBinaryOp() || i->isCast()) {
            if (i->mayTrap()) return false;
            lane_insts.push_back(i);
            break;
          }
          return false;
      }
    }
    for (const Value* sb : store_bases) {
      if (load_bases.count(sb)) return false;
    }
    if (lane_insts.empty()) return false;

    // The exit test must still fire exactly after trips iterations with the
    // widened step.
    {
      CountedLoop widened = cl;
      widened.step = kVF;
      const std::int64_t wide_trips = widened.simulateTripCount(kSimLimit);
      if (wide_trips != trips / kVF) return false;
    }

    // Build lanes 1..VF-1 just before the terminator (everything they use —
    // the IV, invariants, and their own lane-local clones — dominates that
    // point; cross-lane memory order is irrelevant because store targets
    // are disjoint from load targets and lane addresses never collide).
    Module& m = *f.parent();
    Instruction* insert_pos = cl.exit_branch;
    std::vector<Value*> lane_iv(kVF);
    lane_iv[0] = cl.iv;
    for (unsigned k = 1; k < kVF; ++k) {
      auto* add = new BinaryInst(Opcode::Add, cl.iv->type(), cl.iv,
                                 m.constantInt(cl.iv->type(), k),
                                 f.nextValueName());
      body->insertBefore(insert_pos, std::unique_ptr<Instruction>(add));
      lane_iv[k] = add;
    }
    // Mark lane 0.
    for (Instruction* i : lane_insts) i->setVectorWidth(kVF);
    for (unsigned k = 1; k < kVF; ++k) {
      std::map<const Value*, Value*> vmap;
      vmap[cl.iv] = lane_iv[k];
      for (Instruction* i : lane_insts) {
        Instruction* clone = i->clone();
        if (!clone->type()->isVoid()) clone->setName(f.nextValueName());
        clone->setVectorWidth(kVF);
        body->insertBefore(insert_pos, std::unique_ptr<Instruction>(clone));
        for (std::size_t oi = 0; oi < clone->numOperands(); ++oi) {
          auto it = vmap.find(clone->operand(oi));
          if (it != vmap.end()) clone->setOperand(oi, it->second);
        }
        vmap[i] = clone;
      }
    }
    // Widen the IV step.
    cl.iv_next->setOperand(1, m.constantInt(cl.iv->type(), kVF));
    return true;
  }
};

class LoopDistributePass : public FunctionPass {
 public:
  std::string_view name() const override { return "loop-distribute"; }

  static constexpr std::size_t kMaxBodySize = 48;

 protected:
  bool runOnFunction(Function& f) override {
    AnalysisManager local_am;
    const LoopInfo& li = AnalysisManager::currentOr(local_am).loopInfo(f);
    for (Loop* loop : li.loopsInnermostFirst()) {
      if (distribute(*loop, f)) return true;  // One split per run.
    }
    return false;
  }

 private:
  bool distribute(Loop& loop, Function& f) {
    if (loop.blocks().size() != 1) return false;
    CountedLoop cl;
    if (!matchCountedLoop(&loop, cl)) return false;
    BasicBlock* body = cl.header;
    if (cl.exit_branch->parent() != body) return false;
    if (body->size() > kMaxBodySize) return false;
    if (body->phis().size() != 1) return false;
    if (!loopValuesUnusedOutsideLocal(loop)) return false;

    // Gather stores and ensure there are no loads or calls (no aliasing
    // reasoning needed then — store slices are trivially independent when
    // they write distinct base objects).
    std::vector<StoreInst*> stores;
    for (const auto& inst : body->insts()) {
      if (auto* st = dynCast<StoreInst>(inst.get())) {
        if (baseObject(st->pointer()) == nullptr) return false;
        stores.push_back(st);
      } else if (inst->mayReadMemory() ||
                 inst->opcode() == Opcode::Call) {
        return false;
      }
    }
    if (stores.size() < 2) return false;
    std::set<const Value*> bases;
    for (StoreInst* st : stores) {
      if (!bases.insert(baseObject(st->pointer())).second) return false;
    }

    // Backward slice per store (within the block), excluding IV machinery.
    const std::set<Instruction*> shared{cl.iv, cl.iv_next, cl.cond,
                                        cl.exit_branch};
    std::vector<std::set<Instruction*>> slices;
    for (StoreInst* st : stores) {
      std::set<Instruction*> slice;
      std::vector<Instruction*> work{st};
      while (!work.empty()) {
        Instruction* i = work.back();
        work.pop_back();
        if (shared.count(i) || !slice.insert(i).second) continue;
        for (Value* op : i->operands()) {
          auto* d = dynCast<Instruction>(op);
          if (d != nullptr && d->parent() == body && !shared.count(d)) {
            work.push_back(d);
          }
        }
      }
      slices.push_back(std::move(slice));
    }
    // Every non-shared instruction must belong to at least one slice
    // (nothing unaccounted, e.g. an effectful stray op).
    for (const auto& inst : body->insts()) {
      if (shared.count(inst.get())) continue;
      bool in_any = false;
      for (const auto& s : slices) {
        if (s.count(inst.get())) in_any = true;
      }
      if (!in_any) return false;
    }
    // Require at least two disjoint slices (shared arithmetic gets
    // duplicated, which is fine; fully-overlapping slices mean no benefit).
    bool any_disjoint = false;
    for (std::size_t i = 0; i < slices.size(); ++i) {
      for (std::size_t j = i + 1; j < slices.size(); ++j) {
        bool overlap = false;
        for (Instruction* x : slices[i]) {
          if (slices[j].count(x)) overlap = true;
        }
        if (!overlap) any_disjoint = true;
      }
    }
    if (!any_disjoint) return false;

    // Exit phi incomings from the loop must be invariant (the exit edge
    // will come from the last copy).
    for (PhiInst* phi : cl.exit_block->phis()) {
      const std::size_t idx = phi->indexOfBlock(body);
      if (idx != static_cast<std::size_t>(-1) &&
          !isLoopInvariant(loop, phi->incomingValue(idx))) {
        return false;
      }
    }

    // Build one loop per slice: the original keeps slice 0; each further
    // slice gets a cloned block chained after the previous loop's exit.
    Module& m = *f.parent();
    BasicBlock* prev_exit_src = body;  // Block whose exit edge we re-route.
    BasicBlock* final_exit = cl.exit_block;
    for (std::size_t s = 1; s < slices.size(); ++s) {
      BasicBlock* copy = f.addBlock("dist");
      std::map<const Value*, Value*> vmap;
      std::vector<Instruction*> clones;
      for (const auto& inst : body->insts()) {
        Instruction* clone = inst->clone();
        if (!clone->type()->isVoid()) clone->setName(f.nextValueName());
        copy->pushBack(std::unique_ptr<Instruction>(clone));
        vmap[inst.get()] = clone;
        clones.push_back(clone);
      }
      for (Instruction* clone : clones) {
        for (std::size_t oi = 0; oi < clone->numOperands(); ++oi) {
          auto it = vmap.find(clone->operand(oi));
          if (it != vmap.end()) clone->setOperand(oi, it->second);
        }
      }
      // Self-edges: the cloned branch still targets `body`; retarget to the
      // copy, and the cloned phi's incoming blocks likewise.
      auto* cbr = cast<CondBrInst>(vmap.at(cl.exit_branch));
      for (std::size_t i = 0; i < cbr->numSuccessors(); ++i) {
        if (cbr->successor(i) == body) cbr->setSuccessor(i, copy);
      }
      auto* iv_copy = cast<PhiInst>(vmap.at(cl.iv));
      for (std::size_t i = 0; i < iv_copy->numIncoming(); ++i) {
        if (iv_copy->incomingBlock(i) == body) {
          iv_copy->setOperand(2 * i + 1, copy);
        }
        if (iv_copy->incomingBlock(i) == cl.preheader) {
          // A bridge block becomes this loop's preheader.
          // (Patched below once the bridge exists.)
        }
      }
      // Bridge: previous loop exits into it; it enters this copy.
      BasicBlock* bridge = f.addBlock("dist.ph");
      {
        IRBuilder b(&m);
        b.setInsertPoint(bridge);
        b.br(copy);
      }
      const std::size_t ph_idx = iv_copy->indexOfBlock(cl.preheader);
      POSETRL_CHECK(ph_idx != static_cast<std::size_t>(-1),
                    "distribute: iv phi lost preheader edge");
      iv_copy->setOperand(2 * ph_idx + 1, bridge);

      // Re-route the previous exit edge into the bridge.
      Instruction* prev_term = prev_exit_src->terminator();
      for (std::size_t i = 0; i < prev_term->numSuccessors(); ++i) {
        if (prev_term->successor(i) == final_exit) {
          prev_term->setSuccessor(i, bridge);
        }
      }
      // Delete the other slices' instructions from this copy, and slice s
      // from all previous loops... (handled after the loop for clarity).
      pruneCopy(copy, clones, vmap, slices, s, shared);
      prev_exit_src = copy;
    }
    // Final copy exits to the original exit: move phi incomings.
    for (PhiInst* phi : final_exit->phis()) {
      const std::size_t idx = phi->indexOfBlock(body);
      if (idx != static_cast<std::size_t>(-1)) {
        Value* v = phi->incomingValue(idx);
        phi->removeIncoming(body);
        phi->addIncoming(v, prev_exit_src);
      }
    }
    // Prune the original body down to slice 0.
    std::vector<Instruction*> to_erase;
    for (const auto& inst : body->insts()) {
      if (shared.count(inst.get())) continue;
      if (!slices[0].count(inst.get())) to_erase.push_back(inst.get());
    }
    for (auto it = to_erase.rbegin(); it != to_erase.rend(); ++it) {
      if (!(*it)->hasUses()) (*it)->eraseFromParent();
    }
    deleteDeadInstructions(f);
    return true;
  }

  static void pruneCopy(BasicBlock* copy,
                        const std::vector<Instruction*>& clones,
                        const std::map<const Value*, Value*>& vmap,
                        const std::vector<std::set<Instruction*>>& slices,
                        std::size_t keep, const std::set<Instruction*>& shared) {
    (void)copy;
    // Erase clones whose originals are neither shared nor in slice `keep`.
    std::set<const Value*> keep_set;
    for (Instruction* i : slices[keep]) keep_set.insert(vmap.at(i));
    for (Instruction* i : shared) keep_set.insert(vmap.at(i));
    for (auto it = clones.rbegin(); it != clones.rend(); ++it) {
      if (!keep_set.count(*it) && !(*it)->hasUses()) {
        (*it)->eraseFromParent();
      }
    }
  }
};

}  // namespace

std::unique_ptr<Pass> createLoopVectorizePass() {
  return std::make_unique<LoopVectorizePass>();
}

std::unique_ptr<Pass> createLoopDistributePass() {
  return std::make_unique<LoopDistributePass>();
}

}  // namespace posetrl
