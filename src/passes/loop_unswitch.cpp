/// \file loop_unswitch.cpp
/// -loop-unswitch analog: hoists a loop-invariant conditional branch out of
/// the loop by cloning the loop body into a "condition true" and a
/// "condition false" version. A classic size-for-speed trade, which is why
/// its placement inside Oz orderings matters to the RL agent.

#include <map>
#include <set>
#include <vector>

#include "analysis/analysis_manager.h"
#include "analysis/dominators.h"
#include "analysis/loop_info.h"
#include "ir/basic_block.h"
#include "ir/clone.h"
#include "ir/function.h"
#include "ir/instruction.h"
#include "ir/ir_builder.h"
#include "ir/module.h"
#include "passes/all_passes.h"
#include "passes/loop_utils.h"
#include "passes/transform_utils.h"

namespace posetrl {
namespace {

class LoopUnswitchPass : public FunctionPass {
 public:
  LoopUnswitchPass(std::size_t max_loop_size, int max_unswitches, bool o3)
      : max_loop_size_(max_loop_size),
        max_unswitches_(max_unswitches),
        o3_(o3) {}

  std::string_view name() const override {
    return o3_ ? "loop-unswitch-o3" : "loop-unswitch";
  }

 protected:
  bool runOnFunction(Function& f) override {
    // Cost-capped like LLVM: at most a few unswitches per run, bounding
    // size growth.
    bool changed = false;
    AnalysisManager local_am;
    AnalysisManager& am = AnalysisManager::currentOr(local_am);
    for (int round = 0; round < max_unswitches_; ++round) {
      const LoopInfo& li = am.loopInfo(f);
      bool local = false;
      for (Loop* loop : li.loopsInnermostFirst()) {
        if (unswitch(*loop, f)) {
          local = true;
          break;
        }
      }
      changed |= local;
      if (!local) break;
    }
    return changed;
  }

 private:
  std::size_t max_loop_size_;
  int max_unswitches_;
  bool o3_;
  bool unswitch(Loop& loop, Function& f) {
    if (!loop.subLoops().empty()) return false;
    if (loop.instructionCount() > max_loop_size_) return false;
    BasicBlock* ph = loop.preheader();
    if (ph == nullptr) return false;
    if (!loop.hasDedicatedExits()) return false;

    // Find an invariant conditional branch that is not the only exit test.
    CondBrInst* invariant_branch = nullptr;
    for (BasicBlock* bb : loop.blocks()) {
      auto* cbr = dynCast<CondBrInst>(bb->terminator());
      if (cbr == nullptr) continue;
      if (isa<ConstantInt>(cbr->condition())) continue;  // simplifycfg's job.
      if (!isLoopInvariant(loop, cbr->condition())) continue;
      if (cbr->thenBlock() == cbr->elseBlock()) continue;
      invariant_branch = cbr;
      break;
    }
    if (invariant_branch == nullptr) return false;
    Value* cond = invariant_branch->condition();

    // Every outside use of a loop value must flow through an exit-block phi
    // (loop-closed SSA); otherwise the cloned path would bypass the def.
    const auto exit_blocks = loop.exitBlocks();
    const std::set<BasicBlock*> exits(exit_blocks.begin(),
                                      exit_blocks.end());
    for (BasicBlock* bb : loop.blocks()) {
      for (const auto& inst : bb->insts()) {
        for (Instruction* user : inst->users()) {
          if (loop.contains(user->parent())) continue;
          if (user->opcode() != Opcode::Phi ||
              !exits.count(user->parent())) {
            return false;
          }
        }
      }
    }

    // Clone the whole loop.
    ValueMap map;
    // Build a temporary function-like clone source: clone only loop blocks.
    // cloneBlocksInto clones entire functions, so do it manually here.
    std::vector<BasicBlock*> originals(loop.blocks().begin(),
                                       loop.blocks().end());
    for (BasicBlock* bb : originals) {
      BasicBlock* nb = f.addBlock(bb->name() + ".us");
      map[bb] = nb;
    }
    std::vector<Instruction*> new_insts;
    for (BasicBlock* bb : originals) {
      auto* nb = cast<BasicBlock>(map.at(bb));
      for (const auto& inst : bb->insts()) {
        Instruction* clone = inst->clone();
        if (!clone->type()->isVoid()) clone->setName(f.nextValueName());
        nb->pushBack(std::unique_ptr<Instruction>(clone));
        map[inst.get()] = clone;
        new_insts.push_back(clone);
      }
    }
    for (Instruction* inst : new_insts) {
      for (std::size_t i = 0; i < inst->numOperands(); ++i) {
        auto it = map.find(inst->operand(i));
        if (it != map.end()) inst->setOperand(i, it->second);
      }
    }

    auto* new_header = cast<BasicBlock>(map.at(loop.header()));

    // Cloned header phis still name `ph` as an incoming block; a fresh
    // pre-header for the clone takes that role.
    BasicBlock* ph2 = f.addBlock("preheader.us");
    {
      IRBuilder b(f.parent());
      b.setInsertPoint(ph2);
      b.br(new_header);
    }
    for (PhiInst* phi : new_header->phis()) {
      const std::size_t idx = phi->indexOfBlock(ph);
      if (idx != static_cast<std::size_t>(-1)) {
        phi->setOperand(2 * idx + 1, ph2);
      }
    }

    // Exit blocks gain predecessors from the cloned exiting blocks: extend
    // their phis with the mapped values.
    for (BasicBlock* bb : originals) {
      for (BasicBlock* succ : bb->successors()) {
        if (loop.contains(succ)) continue;
        for (PhiInst* phi : succ->phis()) {
          const std::size_t idx = phi->indexOfBlock(bb);
          if (idx == static_cast<std::size_t>(-1)) continue;
          Value* v = phi->incomingValue(idx);
          auto it = map.find(v);
          phi->addIncoming(it != map.end() ? it->second : v,
                           cast<BasicBlock>(map.at(bb)));
        }
      }
    }

    // Split the entry: ph picks a version by the invariant condition.
    Instruction* ph_term = ph->terminator();
    BasicBlock* orig_header = loop.header();
    ph_term->eraseFromParent();
    {
      IRBuilder b(f.parent());
      b.setInsertPoint(ph);
      b.condBr(cond, orig_header, ph2);
    }

    // Specialize both versions: in the original the condition is true; in
    // the clone it is false.
    specializeBranch(invariant_branch, /*taken=*/true);
    auto* cloned_branch = cast<CondBrInst>(map.at(invariant_branch));
    specializeBranch(cloned_branch, /*taken=*/false);

    removeUnreachableBlocks(f);
    foldTrivialPhis(f);
    deleteDeadInstructions(f);
    return true;
  }

  static void specializeBranch(CondBrInst* cbr, bool taken) {
    BasicBlock* live = taken ? cbr->thenBlock() : cbr->elseBlock();
    BasicBlock* dead = taken ? cbr->elseBlock() : cbr->thenBlock();
    BasicBlock* bb = cbr->parent();
    Module* m = bb->parent()->parent();
    auto* br = new BrInst(m->types().voidTy(), live);
    bb->insertBefore(cbr, std::unique_ptr<Instruction>(br));
    cbr->eraseFromParent();
    if (dead != live) {
      for (PhiInst* phi : dead->phis()) {
        if (phi->indexOfBlock(bb) != static_cast<std::size_t>(-1)) {
          phi->removeIncoming(bb);
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<Pass> createLoopUnswitchPass() {
  return std::make_unique<LoopUnswitchPass>(48, 1, /*o3=*/false);
}

std::unique_ptr<Pass> createLoopUnswitchO3Pass() {
  return std::make_unique<LoopUnswitchPass>(160, 3, /*o3=*/true);
}

}  // namespace posetrl
