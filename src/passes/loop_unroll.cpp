/// \file loop_unroll.cpp
/// -loop-unroll analog. Two registered flavours mirror LLVM's
/// threshold-driven behaviour:
///   loop-unroll     (Oz thresholds)  — full unrolling of tiny
///                   constant-trip loops only (size-neutral or shrinking).
///   loop-unroll-o3  (O3 thresholds)  — additionally unrolls mid-size
///                   counted loops by a factor of 4, trading code size for
///                   branch/IV overhead (the classic O3 speed-for-size
///                   trade that Fig. 1 of the paper measures).

#include <map>
#include <vector>

#include "analysis/analysis_manager.h"
#include "analysis/dominators.h"
#include "analysis/loop_info.h"
#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/instruction.h"
#include "ir/ir_builder.h"
#include "ir/module.h"
#include "passes/all_passes.h"
#include "passes/loop_utils.h"
#include "passes/transform_utils.h"

namespace posetrl {
namespace {

class LoopUnrollPass : public FunctionPass {
 public:
  explicit LoopUnrollPass(bool aggressive) : aggressive_(aggressive) {}

  std::string_view name() const override {
    return aggressive_ ? "loop-unroll-o3" : "loop-unroll";
  }

  /// Trip-count and size thresholds tuned for size-oriented unrolling.
  static constexpr std::int64_t kMaxTrips = 8;
  static constexpr std::size_t kMaxBodySize = 24;
  /// Partial-unroll parameters (aggressive mode only).
  static constexpr unsigned kPartialFactor = 4;
  static constexpr std::size_t kPartialBodyMax = 32;
  static constexpr std::int64_t kPartialTripMax = 1 << 14;

 protected:
  bool runOnFunction(Function& f) override {
    bool changed = false;
    AnalysisManager local_am;
    AnalysisManager& am = AnalysisManager::currentOr(local_am);
    for (int round = 0; round < 8; ++round) {
      const LoopInfo& li = am.loopInfo(f);
      bool local = false;
      for (Loop* loop : li.loopsInnermostFirst()) {
        if (fullyUnroll(*loop, f)) {
          local = true;
          break;
        }
        if (aggressive_ && partiallyUnroll(*loop, f)) {
          local = true;
          break;
        }
      }
      changed |= local;
      if (!local) break;
    }
    return changed;
  }

 private:
  bool aggressive_;

  /// Unrolls a single-block counted loop by kPartialFactor: lanes are
  /// emitted sequentially (lane k re-derives the IV as iv + k*step and
  /// threads non-IV phis through the previous lane's latch values), so
  /// memory-operation order — and therefore semantics — is exactly the
  /// original iteration order.
  bool partiallyUnroll(Loop& loop, Function& f) {
    if (loop.blocks().size() != 1) return false;
    CountedLoop cl;
    if (!matchCountedLoop(&loop, cl)) return false;
    BasicBlock* body = cl.header;
    if (cl.exit_branch->parent() != body) return false;
    const std::int64_t trips = cl.simulateTripCount(kPartialTripMax);
    if (trips < 2 * kPartialFactor || trips % kPartialFactor != 0) {
      return false;
    }
    if (body->size() > kPartialBodyMax) return false;
    // All loop values must stay inside (exit users would need final-value
    // plumbing per lane).
    for (const auto& inst : body->insts()) {
      for (Instruction* user : inst->users()) {
        if (user->parent() != body) return false;
      }
    }
    // The exit test must still fire exactly at `trips` with the widened
    // step.
    {
      CountedLoop widened = cl;
      widened.step = cl.step * kPartialFactor;
      if (widened.simulateTripCount(kPartialTripMax) !=
          trips / kPartialFactor) {
        return false;
      }
    }
    // The exit condition must depend only on the IV (a condition over
    // another phi would be evaluated once per group instead of per lane).
    const auto iv_only = [&](const Value* v) {
      return v == cl.iv || v == cl.iv_next || isLoopInvariant(loop, v);
    };
    if (!iv_only(cl.cond->lhs()) || !iv_only(cl.cond->rhs())) return false;
    // iv_next will jump by factor*step; any other consumer of it would see
    // the group-stride value instead of the per-lane one.
    for (Instruction* user : cl.iv_next->users()) {
      if (user != cl.cond && user != cl.iv) return false;
    }

    Module& m = *f.parent();
    std::vector<PhiInst*> phis = body->phis();
    // Lane-local instructions: everything except phis, iv_next, cond,
    // terminator.
    std::vector<Instruction*> lane_insts;
    for (auto it = body->firstNonPhi(); it != body->end(); ++it) {
      Instruction* i = it->get();
      if (i == cl.iv_next || i == cl.cond || i->isTerminator()) continue;
      lane_insts.push_back(i);
    }

    Instruction* insert_pos = cl.exit_branch;
    // prev_latch maps each phi to the value flowing around the back edge
    // from the previous lane.
    std::map<PhiInst*, Value*> prev_latch;
    for (PhiInst* phi : phis) {
      prev_latch[phi] = phi->incomingForBlock(body);
    }
    for (unsigned k = 1; k < kPartialFactor; ++k) {
      std::map<const Value*, Value*> vmap;
      // IV of lane k.
      auto* lane_iv = new BinaryInst(
          Opcode::Add, cl.iv->type(), cl.iv,
          m.constantInt(cl.iv->type(), cl.step * static_cast<int>(k)),
          f.nextValueName());
      body->insertBefore(insert_pos, std::unique_ptr<Instruction>(lane_iv));
      vmap[cl.iv] = lane_iv;
      // Non-IV phis enter lane k holding the previous lane's latch value.
      for (PhiInst* phi : phis) {
        if (phi == cl.iv) continue;
        vmap[phi] = prev_latch.at(phi);
      }
      for (Instruction* i : lane_insts) {
        Instruction* clone = i->clone();
        if (!clone->type()->isVoid()) clone->setName(f.nextValueName());
        body->insertBefore(insert_pos, std::unique_ptr<Instruction>(clone));
        for (std::size_t oi = 0; oi < clone->numOperands(); ++oi) {
          auto vit = vmap.find(clone->operand(oi));
          if (vit != vmap.end()) clone->setOperand(oi, vit->second);
        }
        vmap[i] = clone;
      }
      // Latch values leaving lane k.
      for (PhiInst* phi : phis) {
        if (phi == cl.iv) continue;
        Value* lv = phi->incomingForBlock(body);
        auto vit = vmap.find(lv);
        prev_latch[phi] = vit != vmap.end() ? vit->second : lv;
      }
    }
    // Back-edge updates: the IV steps by factor*step; other phis take the
    // final lane's values.
    cl.iv_next->setOperand(
        1, m.constantInt(cl.iv->type(),
                         cl.step * static_cast<int>(kPartialFactor)));
    for (PhiInst* phi : phis) {
      if (phi == cl.iv) continue;
      const std::size_t idx = phi->indexOfBlock(body);
      phi->setIncomingValue(idx, prev_latch.at(phi));
    }
    return true;
  }

  bool fullyUnroll(Loop& loop, Function& f) {
    if (loop.blocks().size() != 1) return false;
    CountedLoop cl;
    if (!matchCountedLoop(&loop, cl)) return false;
    BasicBlock* body = cl.header;  // Single block: header == latch.
    if (cl.exit_branch->parent() != body) return false;
    const std::int64_t trips = cl.simulateTripCount(kMaxTrips + 1);
    if (trips <= 0 || trips > kMaxTrips) return false;
    if (body->size() > kMaxBodySize) return false;

    Module& m = *f.parent();
    BasicBlock* ph = cl.preheader;
    BasicBlock* exit = cl.exit_block;

    // Values carried around the back edge: all header phis.
    std::vector<PhiInst*> phis = body->phis();
    // Current value of each phi entering iteration k.
    std::map<PhiInst*, Value*> cur;
    for (PhiInst* phi : phis) {
      cur[phi] = phi->incomingForBlock(ph);
    }

    // Non-phi, non-terminator body instructions in order.
    std::vector<Instruction*> body_insts;
    for (auto it = body->firstNonPhi(); it != body->end(); ++it) {
      if (!(*it)->isTerminator()) body_insts.push_back(it->get());
    }

    // Unrolled copies are emitted straight into a chain of new blocks (one
    // per iteration keeps the printer readable and the blocks mergeable).
    Instruction* ph_term = ph->terminator();
    std::vector<BasicBlock*> copies;
    std::map<const Value*, Value*> last_map;
    for (std::int64_t k = 0; k < trips; ++k) {
      BasicBlock* uk = f.addBlock("unroll");
      copies.push_back(uk);
      std::map<const Value*, Value*> vmap;
      for (PhiInst* phi : phis) vmap[phi] = cur[phi];
      for (Instruction* inst : body_insts) {
        Instruction* clone = inst->clone();
        if (!clone->type()->isVoid()) clone->setName(f.nextValueName());
        uk->pushBack(std::unique_ptr<Instruction>(clone));
        for (std::size_t i = 0; i < clone->numOperands(); ++i) {
          auto it = vmap.find(clone->operand(i));
          if (it != vmap.end()) clone->setOperand(i, it->second);
        }
        vmap[inst] = clone;
      }
      // Next iteration's phi inputs come from this copy's latch values.
      for (PhiInst* phi : phis) {
        Value* latch_v = phi->incomingForBlock(body);
        auto it = vmap.find(latch_v);
        cur[phi] = it != vmap.end() ? it->second : latch_v;
      }
      last_map = std::move(vmap);
    }
    // Wire the chain: ph -> u0 -> ... -> u_{trips-1} -> exit.
    ph_term->setSuccessor(0, copies.front());
    IRBuilder b(&m);
    for (std::size_t k = 0; k + 1 < copies.size(); ++k) {
      b.setInsertPoint(copies[k]);
      b.br(copies[k + 1]);
    }
    b.setInsertPoint(copies.back());
    b.br(exit);

    // Rewrite external references to loop-defined values with their final
    // copies, and retarget exit phis.
    const auto final_value = [&](Value* v) -> Value* {
      auto it = last_map.find(v);
      return it != last_map.end() ? it->second : v;
    };
    for (PhiInst* phi : exit->phis()) {
      const std::size_t idx = phi->indexOfBlock(body);
      if (idx == static_cast<std::size_t>(-1)) continue;
      Value* v = phi->incomingValue(idx);
      // The value leaving the loop is the one live during the final
      // iteration: last_map holds both the phis' entry values and the body
      // defs' final clones for that iteration.
      Value* out = final_value(v);
      phi->removeIncoming(body);
      phi->addIncoming(out, copies.back());
    }
    // Direct external uses (lcssa may be absent).
    std::vector<std::pair<Instruction*, Value*>> replacements;
    for (PhiInst* phi : phis) {
      replacements.emplace_back(phi, final_value(phi));
    }
    for (Instruction* inst : body_insts) {
      replacements.emplace_back(inst, final_value(inst));
    }
    for (auto& [def, out] : replacements) {
      std::vector<Instruction*> users(def->users().begin(),
                                      def->users().end());
      for (Instruction* user : users) {
        if (user->parent() == body) continue;
        for (std::size_t i = 0; i < user->numOperands(); ++i) {
          if (user->operand(i) == def) user->setOperand(i, out);
        }
      }
    }
    removeUnreachableBlocks(f);
    foldTrivialPhis(f);
    deleteDeadInstructions(f);
    return true;
  }
};

}  // namespace

std::unique_ptr<Pass> createLoopUnrollPass() {
  return std::make_unique<LoopUnrollPass>(/*aggressive=*/false);
}

std::unique_ptr<Pass> createLoopUnrollO3Pass() {
  return std::make_unique<LoopUnrollPass>(/*aggressive=*/true);
}

}  // namespace posetrl
