/// \file licm.cpp
/// -licm analog (hoists loop-invariant pure computation to the preheader;
/// hoists invariant loads out of write-free loops) and the -loop-sink
/// analog (moves loop computations used only after the loop into the exit,
/// the code-sinking direction Oz favours).

#include <set>
#include <vector>

#include "analysis/analysis_manager.h"
#include "analysis/dominators.h"
#include "analysis/loop_info.h"
#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/instruction.h"
#include "ir/module.h"
#include "passes/all_passes.h"
#include "passes/loop_utils.h"
#include "passes/transform_utils.h"

namespace posetrl {
namespace {

class LICMPass : public FunctionPass {
 public:
  std::string_view name() const override { return "licm"; }
  // Moves invariant instructions to existing preheaders; CFG untouched.
  PreservedAnalyses preserved() const override {
    return PreservedAnalyses::cfg();
  }

 protected:
  bool runOnFunction(Function& f) override {
    bool changed = false;
    AnalysisManager local_am;
    const LoopInfo& li = AnalysisManager::currentOr(local_am).loopInfo(f);
    // Outermost-first so hoisted code can keep moving outward on later
    // iterations of the inner loops' own processing.
    auto loops = li.loopsInnermostFirst();
    for (auto it = loops.rbegin(); it != loops.rend(); ++it) {
      changed |= hoistFromLoop(**it);
    }
    return changed;
  }

 private:
  bool hoistFromLoop(Loop& loop) {
    BasicBlock* ph = loop.preheader();
    if (ph == nullptr) return false;
    Instruction* ph_term = ph->terminator();
    if (ph_term == nullptr) return false;

    // Loads are hoistable only when nothing in the loop writes memory.
    bool loop_writes = false;
    for (BasicBlock* bb : loop.blocks()) {
      for (const auto& inst : bb->insts()) {
        if (inst->mayWriteMemory()) loop_writes = true;
      }
    }

    bool changed = false;
    bool local = true;
    while (local) {
      local = false;
      for (BasicBlock* bb : loop.blocks()) {
        std::vector<Instruction*> insts;
        for (const auto& inst : bb->insts()) insts.push_back(inst.get());
        for (Instruction* inst : insts) {
          if (!canHoist(*inst, loop, loop_writes)) continue;
          bool invariant_ops = true;
          for (const Value* op : inst->operands()) {
            if (!isLoopInvariant(loop, op)) invariant_ops = false;
          }
          if (!invariant_ops) continue;
          inst->moveBefore(ph_term);
          changed = true;
          local = true;
        }
      }
    }
    return changed;
  }

  /// Pure, non-trapping, speculatively executable instructions — plus loads
  /// from invariant pointers when the loop is write-free (a load that runs
  /// in the loop may not run at the preheader, but hoisting a load is safe
  /// here because a trap would already be possible on the first iteration;
  /// we stay stricter and additionally require the load's block to dominate
  /// every latch, i.e. it executes on every iteration).
  bool canHoist(const Instruction& inst, Loop& loop, bool loop_writes) const {
    switch (inst.opcode()) {
      case Opcode::Phi:
      case Opcode::Alloca:
      case Opcode::Store:
      case Opcode::Call:
        return false;
      case Opcode::Load: {
        if (loop_writes) return false;
        // Must be guaranteed to execute: block dominates the latch.
        // Deliberately NOT routed through the ambient AnalysisManager: by
        // this point the pass has moved instructions, and re-querying the
        // manager for this function would destroy the cached LoopInfo whose
        // Loop objects runOnFunction is still iterating.
        DominatorTree dt(*inst.function());
        BasicBlock* latch = loop.singleLatch();
        if (latch == nullptr) return false;
        return dt.dominates(inst.parent(), latch);
      }
      default:
        if (inst.isTerminator()) return false;
        if (inst.mayTrap()) return false;
        return !inst.type()->isVoid();
    }
  }
};

class LoopSinkPass : public FunctionPass {
 public:
  std::string_view name() const override { return "loop-sink"; }
  PreservedAnalyses preserved() const override {
    return PreservedAnalyses::cfg();
  }

 protected:
  bool runOnFunction(Function& f) override {
    bool changed = false;
    AnalysisManager local_am;
    const LoopInfo& li = AnalysisManager::currentOr(local_am).loopInfo(f);
    for (Loop* loop : li.loopsInnermostFirst()) {
      changed |= sinkFromLoop(*loop);
    }
    return changed;
  }

 private:
  bool sinkFromLoop(Loop& loop) {
    const auto exits = loop.exitBlocks();
    if (exits.size() != 1) return false;
    BasicBlock* exit = exits[0];
    if (!loop.hasDedicatedExits()) return false;

    bool changed = false;
    bool local = true;
    while (local) {
      local = false;
      for (BasicBlock* bb : loop.blocks()) {
        std::vector<Instruction*> insts;
        for (const auto& inst : bb->insts()) insts.push_back(inst.get());
        for (Instruction* inst : insts) {
          if (inst->isTerminator() || inst->opcode() == Opcode::Phi) continue;
          if (inst->type()->isVoid()) continue;
          if (inst->mayReadMemory() || inst->mayWriteMemory()) continue;
          if (inst->mayTrap()) continue;
          // Operands must remain valid at the exit.
          bool invariant_ops = true;
          for (const Value* op : inst->operands()) {
            if (!isLoopInvariant(loop, op)) invariant_ops = false;
          }
          if (!invariant_ops) continue;
          // Every use must be outside the loop and not a phi (phi uses
          // require the value at the edge's predecessor).
          bool sinkable = inst->hasUses();
          for (Instruction* user : inst->users()) {
            if (user->opcode() == Opcode::Phi ||
                loop.contains(user->parent())) {
              sinkable = false;
            }
          }
          if (!sinkable) continue;
          std::unique_ptr<Instruction> owned = inst->removeFromParent();
          Instruction* raw = owned.get();
          BasicBlock::iterator pos = exit->firstNonPhi();
          if (pos == exit->end()) {
            exit->pushBack(std::move(owned));
          } else {
            exit->insertBefore(pos->get(), std::move(owned));
          }
          (void)raw;
          changed = true;
          local = true;
        }
      }
    }
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> createLICMPass() { return std::make_unique<LICMPass>(); }

std::unique_ptr<Pass> createLoopSinkPass() {
  return std::make_unique<LoopSinkPass>();
}

}  // namespace posetrl
